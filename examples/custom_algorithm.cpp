// Plugging YOUR OWN CSM algorithm into ParaCOSM.
//
// The paper's integration contract (§4): the user supplies (i) a search-tree
// traversal routine and (ii) a filtering rule; ParaCOSM supplies both levels
// of parallelism. This example implements a deliberately small algorithm —
// NLF-filtered direct enumeration, no index — by deriving from
// BacktrackBase, and shows it running under the framework unchanged.
//
// Build & run:  ./build/examples/custom_algorithm
#include <cstdio>

#include "csm/backtrack.hpp"
#include "graph/generators.hpp"
#include "paracosm/paracosm.hpp"
#include "util/rng.hpp"

using namespace paracosm;

namespace {

/// A user algorithm: GraphFlow-style enumeration with an extra
/// neighbor-label-frequency candidate filter, and an NLF-based filtering
/// rule so the batch executor can classify updates.
class NlfMatcher final : public csm::BacktrackBase {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "nlf-matcher";
  }

  // Filtering rule (classifier stage 3): a match through edge (u,v) needs
  // NLF containment at both endpoints; prove its absence and the update is
  // safe. There is no index, so nothing else can be affected.
  [[nodiscard]] bool ads_safe(const graph::GraphUpdate& upd) const override {
    if (!upd.is_edge_op()) return false;
    const auto& g = *graph_;
    if (!g.has_vertex(upd.u) || !g.has_vertex(upd.v)) return false;
    const bool insert = upd.is_insert();
    for (const auto& [u1, u2] : query_->matching_edges(
             g.label(upd.u), g.label(upd.v), upd.label, false)) {
      if (nlf_ok(u1, upd.u, insert, g.label(upd.v)) &&
          nlf_ok(u2, upd.v, insert, g.label(upd.u)))
        return false;  // cannot rule a match out -> unsafe
    }
    return true;
  }

 protected:
  // Traversal-side candidate filter, invoked inside the (framework-driven,
  // possibly parallel) search.
  [[nodiscard]] bool candidate_ok(graph::VertexId qu,
                                  graph::VertexId dv) const override {
    return nlf_ok(qu, dv, false, 0);
  }

 private:
  [[nodiscard]] bool nlf_ok(graph::VertexId qu, graph::VertexId dv, bool bump,
                            graph::Label bumped_label) const {
    for (const auto& nb : query_->neighbors(qu)) {
      const graph::Label l = query_->label(nb.v);
      std::uint32_t have = graph_->nlf(dv, l);
      if (bump && l == bumped_label) ++have;
      if (have < query_->nlf(qu, l)) return false;
    }
    return true;
  }
};

}  // namespace

int main() {
  util::Rng rng(21);
  graph::DataGraph g =
      graph::generate_power_law(graph::amazon_spec(/*scale=*/0.25), rng);
  const auto query = graph::extract_query(g, 5, rng);
  if (!query) {
    std::fprintf(stderr, "query extraction failed\n");
    return 1;
  }
  auto stream = graph::make_insert_stream(g, 0.10, rng);
  std::printf("custom algorithm under ParaCOSM: %s\n", query->describe().c_str());
  std::printf("stream: %zu updates\n\n", stream.size());

  NlfMatcher matcher;
  engine::Config config;
  config.threads = 8;
  engine::ParaCosm pc(matcher, *query, g, config);
  const engine::StreamResult result = pc.process_stream(stream);

  std::printf("matches found: %llu (search nodes: %llu)\n",
              static_cast<unsigned long long>(result.positive),
              static_cast<unsigned long long>(result.nodes));
  std::printf("safe in parallel: %llu, unsafe sequential: %llu (%.2f%% unsafe)\n",
              static_cast<unsigned long long>(result.safe_applied),
              static_cast<unsigned long long>(result.unsafe_sequential),
              result.classifier.unsafe_percent());
  std::printf("simulated multicore makespan %.3f ms vs 1-thread work %.3f ms\n",
              static_cast<double>(result.stats.simulated_makespan_ns()) / 1e6,
              static_cast<double>(result.stats.sequential_equivalent_ns()) / 1e6);
  return 0;
}
