// Fraud detection over a streaming transaction graph — the financial
// risk-control scenario that motivates CSM in the paper's introduction
// (ByteGraph performs exactly this kind of pattern matching for risk
// control, §3.1).
//
// Vertices are accounts: retail (label 0), merchant (1), mule (2). Edges are
// transfer relationships. The fraud pattern is a "mule ring": two retail
// accounts both feeding a mule that pays a merchant which routes money back
// to one of the retail accounts — a 4-vertex cycle with a chord. The example
// streams randomized transfers with a few planted rings and raises an alert
// the moment a ring closes; expired alerts (edge removal, e.g. a reversed
// transaction) are retracted.
//
// Build & run:  ./build/examples/fraud_detection [--accounts N]
#include <cstdio>
#include <string>

#include "csm/symbi.hpp"
#include "graph/generators.hpp"
#include "paracosm/paracosm.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

using namespace paracosm;

namespace {

constexpr graph::Label kRetail = 0, kMerchant = 1, kMule = 2;

/// The mule-ring pattern: retail -> mule <- retail, mule -> merchant,
/// merchant -> retail (undirected labeled edges; direction abstracted away).
graph::QueryGraph fraud_pattern() {
  return graph::QueryGraph({kRetail, kRetail, kMule, kMerchant},
                           {{0, 2, 0}, {1, 2, 0}, {2, 3, 0}, {3, 0, 0}});
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("fraud_detection", "streaming mule-ring detection demo");
  cli.option("accounts", "400", "number of accounts")
      .option("transfers", "1500", "number of streamed transfers")
      .option("seed", "7", "random seed");
  if (!cli.parse(argc, argv)) return cli.exit_code();

  const auto accounts = static_cast<std::uint32_t>(cli.get_int("accounts"));
  const auto transfers = static_cast<std::uint64_t>(cli.get_int("transfers"));
  util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));

  // Account population: 80% retail, 15% merchant, 5% mule.
  graph::DataGraph ledger;
  for (std::uint32_t i = 0; i < accounts; ++i) {
    const double p = rng.uniform();
    ledger.add_vertex(p < 0.80 ? kRetail : (p < 0.95 ? kMerchant : kMule));
  }

  const graph::QueryGraph pattern = fraud_pattern();
  csm::Symbi algorithm;  // DCS index prunes the vast majority of transfers
  engine::Config config;
  config.threads = 8;
  engine::ParaCosm monitor(algorithm, pattern, ledger, config);

  std::uint64_t alerts = 0;
  monitor.set_match_callback([&](std::span<const csm::Assignment> ring) {
    ++alerts;
    if (alerts <= 10) {
      std::printf("  ALERT #%llu — mule ring:", static_cast<unsigned long long>(alerts));
      for (const auto& a : ring) std::printf(" acct%u", a.dv);
      std::printf("\n");
    }
  });

  std::printf("monitoring %u accounts for mule rings (%llu transfers)...\n\n",
              accounts, static_cast<unsigned long long>(transfers));

  // Pick role representatives for planting rings among the noise.
  std::vector<graph::VertexId> retail, merchants, mules;
  for (graph::VertexId v = 0; v < accounts; ++v) {
    if (ledger.label(v) == kRetail) retail.push_back(v);
    if (ledger.label(v) == kMerchant) merchants.push_back(v);
    if (ledger.label(v) == kMule) mules.push_back(v);
  }

  std::uint64_t positives = 0, negatives = 0, reversals = 0, planted = 0;
  std::vector<graph::Edge> history;
  std::vector<graph::Edge> pending_ring;  // planted ring edges drip-fed
  for (std::uint64_t t = 0; t < transfers; ++t) {
    // Occasionally plant a full mule ring, its edges interleaved with noise.
    if (pending_ring.empty() && rng.chance(0.01) && !mules.empty() &&
        !merchants.empty() && retail.size() >= 2) {
      const auto r1 = retail[rng.bounded(retail.size())];
      const auto r2 = retail[rng.bounded(retail.size())];
      const auto mule = mules[rng.bounded(mules.size())];
      const auto shop = merchants[rng.bounded(merchants.size())];
      if (r1 != r2) {
        pending_ring = {{r1, mule, 0}, {r2, mule, 0}, {mule, shop, 0}, {shop, r1, 0}};
        ++planted;
      }
    }
    graph::Edge edge;
    if (!pending_ring.empty() && rng.chance(0.5)) {
      edge = pending_ring.back();
      pending_ring.pop_back();
    } else if (!history.empty() && rng.chance(0.05)) {
      // Reversal: an earlier transfer is rolled back (edge deletion).
      const graph::Edge e = history[rng.bounded(history.size())];
      const auto out = monitor.process(graph::GraphUpdate::remove_edge(e.u, e.v, 0));
      negatives += out.negative;
      ++reversals;
      continue;
    } else {
      edge = {static_cast<graph::VertexId>(rng.bounded(accounts)),
              static_cast<graph::VertexId>(rng.bounded(accounts)), 0};
    }
    if (edge.u == edge.v) continue;
    const auto out = monitor.process(graph::GraphUpdate::insert_edge(edge.u, edge.v, 0));
    if (out.applied) history.push_back(edge);
    positives += out.positive;
  }
  std::printf("\nplanted rings: %llu\n", static_cast<unsigned long long>(planted));

  std::printf("\nprocessed %llu transfers (%llu reversals)\n",
              static_cast<unsigned long long>(transfers),
              static_cast<unsigned long long>(reversals));
  std::printf("rings detected: %llu   rings retracted: %llu\n",
              static_cast<unsigned long long>(positives),
              static_cast<unsigned long long>(negatives));
  std::printf("ledger: %u accounts, %llu live transfer edges\n",
              ledger.num_vertices(),
              static_cast<unsigned long long>(ledger.num_edges()));
  return 0;
}
