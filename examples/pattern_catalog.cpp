// Pattern catalogue monitoring (multi-query extension).
//
// Production CSM deployments watch a catalogue of patterns, not one: a risk
// system tracks many fraud typologies simultaneously. This example registers
// four patterns — with different CSM algorithms per pattern — over a single
// shared transaction stream via MultiQueryEngine, where an update is handled
// in the fast parallel path only if it is safe for EVERY registered pattern.
//
// Build & run:  ./build/examples/pattern_catalog [--events N]
#include <cstdio>

#include "graph/generators.hpp"
#include "paracosm/multi_query.hpp"
#include "util/cli.hpp"

using namespace paracosm;

int main(int argc, char** argv) {
  util::Cli cli("pattern_catalog", "multi-pattern monitoring demo");
  cli.option("accounts", "500", "number of accounts")
      .option("events", "3000", "number of streamed transfers")
      .option("threads", "8", "worker threads")
      .option("seed", "5", "random seed");
  if (!cli.parse(argc, argv)) return cli.exit_code();

  const auto accounts = static_cast<std::uint32_t>(cli.get_int("accounts"));
  const auto events = static_cast<std::uint64_t>(cli.get_int("events"));
  util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));

  // Account roles: retail (0), merchant (1), mule (2), processor (3).
  graph::DataGraph ledger;
  for (std::uint32_t i = 0; i < accounts; ++i) {
    const double p = rng.uniform();
    ledger.add_vertex(p < 0.7 ? 0u : (p < 0.9 ? 1u : (p < 0.97 ? 2u : 3u)));
  }

  engine::Config config;
  config.threads = static_cast<unsigned>(cli.get_int("threads"));
  engine::MultiQueryEngine monitor(ledger, config);

  struct Pattern {
    const char* name;
    const char* algorithm;
  };
  const std::vector<Pattern> catalogue{
      {"mule ring (retail->mule->merchant->retail)", "symbi"},
      {"fan-in (two retail feeding one mule)", "turboflux"},
      {"layering chain (mule->processor->merchant)", "graphflow"},
      {"processor triangle", "newsp"},
  };
  monitor.add_query("symbi",
                    graph::QueryGraph({0, 2, 1}, {{0, 1, 0}, {1, 2, 0}, {2, 0, 0}}));
  monitor.add_query("turboflux", graph::QueryGraph({0, 0, 2}, {{0, 2, 0}, {1, 2, 0}}));
  monitor.add_query("graphflow",
                    graph::QueryGraph({2, 3, 1}, {{0, 1, 0}, {1, 2, 0}}));
  monitor.add_query("newsp",
                    graph::QueryGraph({3, 3, 1}, {{0, 1, 0}, {1, 2, 0}, {0, 2, 0}}));

  std::vector<graph::GraphUpdate> stream;
  stream.reserve(events);
  for (std::uint64_t t = 0; t < events; ++t) {
    const auto a = static_cast<graph::VertexId>(rng.bounded(accounts));
    const auto b = static_cast<graph::VertexId>(rng.bounded(accounts));
    if (a != b) stream.push_back(graph::GraphUpdate::insert_edge(a, b, 0));
  }

  std::printf("monitoring %zu patterns over %zu transfers...\n\n",
              monitor.num_queries(), stream.size());
  const engine::MultiStreamResult result = monitor.process_stream(stream);

  for (std::size_t i = 0; i < catalogue.size(); ++i)
    std::printf("  %-48s [%9s] %llu hits\n", catalogue[i].name,
                catalogue[i].algorithm,
                static_cast<unsigned long long>(result.positive[i]));
  std::printf("\nupdates: %llu processed, %llu fast-path (safe for every "
              "pattern), %llu sequential\n",
              static_cast<unsigned long long>(result.updates_processed),
              static_cast<unsigned long long>(result.safe_applied),
              static_cast<unsigned long long>(result.unsafe_sequential));
  std::printf("simulated multicore makespan %.3f ms (1-thread work %.3f ms)\n",
              static_cast<double>(result.stats.simulated_makespan_ns()) / 1e6,
              static_cast<double>(result.stats.sequential_equivalent_ns()) / 1e6);
  return 0;
}
