// Quickstart: continuous subgraph matching in the spirit of the paper's
// running example (Figure 1) — a labeled triangle pattern over a small
// evolving graph.
//
//   1. insert e(v0, v2) -> completes the first triangle (positive match);
//   2. insert e(v4, v5) -> completes a second triangle (positive match);
//   3. delete e(v1, v2) -> the first triangle expires (negative match).
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "csm/graphflow.hpp"
#include "paracosm/paracosm.hpp"

using namespace paracosm;

int main() {
  // Query Q: a triangle with vertex labels A(0) - B(1) - C(2).
  graph::QueryGraph query({0, 1, 2}, {{0, 1, 0}, {1, 2, 0}, {0, 2, 0}});
  std::printf("query: %s\n", query.describe().c_str());

  // Data graph G: two would-be triangles, each missing one edge.
  graph::DataGraph g;
  for (const graph::Label l : {0u, 1u, 2u, 0u, 1u, 2u}) g.add_vertex(l);
  g.add_edge(0, 1, 0);  // v0(A) - v1(B)
  g.add_edge(1, 2, 0);  // v1(B) - v2(C)
  g.add_edge(3, 4, 0);  // v3(A) - v4(B)
  g.add_edge(3, 5, 0);  // v3(A) - v5(C)

  // Wrap a single-threaded CSM algorithm with ParaCOSM. The framework needs
  // only what every CsmAlgorithm provides: a traversal routine (seeds +
  // expand) and a filtering rule (ads_safe).
  csm::GraphFlow algorithm;
  engine::Config config;
  config.threads = 4;
  engine::ParaCosm pc(algorithm, query, g, config);

  pc.set_match_callback([](std::span<const csm::Assignment> mapping) {
    std::printf("  match:");
    for (const auto& a : mapping) std::printf(" (u%u->v%u)", a.qv, a.dv);
    std::printf("\n");
  });

  const auto report = [](const char* what, const csm::UpdateOutcome& out) {
    std::printf("  => %llu new, %llu expired (%s)\n\n",
                static_cast<unsigned long long>(out.positive),
                static_cast<unsigned long long>(out.negative), what);
  };

  std::printf("\ninsert e(v0, v2):\n");
  report("first triangle completed", pc.process(graph::GraphUpdate::insert_edge(0, 2, 0)));

  std::printf("insert e(v4, v5):\n");
  report("second triangle completed", pc.process(graph::GraphUpdate::insert_edge(4, 5, 0)));

  std::printf("delete e(v1, v2):\n");
  report("first triangle expired", pc.process(graph::GraphUpdate::remove_edge(1, 2, 0)));

  std::printf("graph now has %u vertices / %llu edges\n", g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));
  return 0;
}
