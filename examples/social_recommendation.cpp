// Real-time recommendation over a social stream — the online motif
// detection use case of Gupta et al. (Twitter) cited by the paper: detect
// "diamond" co-engagement motifs (two users engaging with the same pair of
// items) as follow/engage edges stream in, using inter-update batching for
// throughput.
//
// Vertices: users (label 0) and items (label 1). The motif is the 4-cycle
// user-item-user-item. The example streams engagement edges through
// ParaCOSM's batch executor and reports throughput plus the classifier's
// per-stage effectiveness — the numbers that make inter-update parallelism
// worthwhile on this kind of workload.
//
// Build & run:  ./build/examples/social_recommendation [--users N]
#include <cstdio>

#include "csm/turboflux.hpp"
#include "graph/generators.hpp"
#include "paracosm/paracosm.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

using namespace paracosm;

int main(int argc, char** argv) {
  util::Cli cli("social_recommendation", "streaming co-engagement motif demo");
  cli.option("users", "600", "number of users")
      .option("items", "300", "number of items")
      .option("events", "4000", "number of engagement events")
      .option("threads", "8", "worker threads")
      .option("seed", "11", "random seed");
  if (!cli.parse(argc, argv)) return cli.exit_code();

  const auto users = static_cast<std::uint32_t>(cli.get_int("users"));
  const auto items = static_cast<std::uint32_t>(cli.get_int("items"));
  const auto events = static_cast<std::uint64_t>(cli.get_int("events"));
  util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));

  // Users are label 0; items carry a category label 1..4 (movies, music,
  // articles, products). The motif targets movie/music co-engagement, so
  // engagements with other categories are classified safe by stage 1.
  graph::DataGraph network;
  for (std::uint32_t i = 0; i < users; ++i) network.add_vertex(0);
  std::vector<graph::Label> item_label(items);
  for (std::uint32_t i = 0; i < items; ++i) {
    item_label[i] = 1 + static_cast<graph::Label>(rng.bounded(4));
    network.add_vertex(item_label[i]);
  }

  // Diamond motif: u0(user) - i0(movie) - u1(user) - i1(music) - u0.
  graph::QueryGraph motif({0, 1, 0, 2}, {{0, 1, 0}, {1, 2, 0}, {2, 3, 0}, {3, 0, 0}});

  // Pre-build the engagement stream (Zipf-flavoured item popularity).
  std::vector<graph::GraphUpdate> stream;
  stream.reserve(events);
  for (std::uint64_t t = 0; t < events; ++t) {
    const auto user = static_cast<graph::VertexId>(rng.bounded(users));
    const double z = rng.uniform();
    const auto item =
        static_cast<graph::VertexId>(users + static_cast<std::uint32_t>(z * z * items));
    stream.push_back(graph::GraphUpdate::insert_edge(user, item, 0));
  }

  csm::TurboFlux algorithm;
  engine::Config config;
  config.threads = static_cast<unsigned>(cli.get_int("threads"));
  config.batch_size = 64;
  engine::ParaCosm recommender(algorithm, motif, network, config);

  std::printf("streaming %llu engagement events through the batch executor...\n",
              static_cast<unsigned long long>(events));
  const engine::StreamResult result = recommender.process_stream(stream);

  const double wall_s = static_cast<double>(result.wall_ns) / 1e9;
  std::printf("\nco-engagement motifs discovered: %llu\n",
              static_cast<unsigned long long>(result.positive));
  std::printf("updates processed: %llu in %.3fs (%.0f updates/s wall)\n",
              static_cast<unsigned long long>(result.updates_processed), wall_s,
              wall_s > 0 ? static_cast<double>(result.updates_processed) / wall_s : 0);
  std::printf("batches: %llu, safe applied in parallel: %llu, unsafe sequential: %llu\n",
              static_cast<unsigned long long>(result.batches),
              static_cast<unsigned long long>(result.safe_applied),
              static_cast<unsigned long long>(result.unsafe_sequential));
  const auto& c = result.classifier;
  std::printf("classifier: %llu label-safe, %llu degree-safe, %llu ads-safe, "
              "%llu unsafe (%.2f%% unsafe)\n",
              static_cast<unsigned long long>(c.safe_label),
              static_cast<unsigned long long>(c.safe_degree),
              static_cast<unsigned long long>(c.safe_ads),
              static_cast<unsigned long long>(c.unsafe_updates), c.unsafe_percent());
  std::printf("simulated multicore makespan: %.3f ms (1-thread work: %.3f ms)\n",
              static_cast<double>(result.stats.simulated_makespan_ns()) / 1e6,
              static_cast<double>(result.stats.sequential_equivalent_ns()) / 1e6);
  return 0;
}
