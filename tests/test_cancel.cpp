// Cooperative cancellation (ISSUE 4): CancelToken epoch semantics, the
// watchdog, and the end-to-end guarantee the service layer depends on — a
// raised token stops enumeration in EVERY executor configuration while
// leaving the graph and ADS exactly as if the searches had finished, so an
// uncancelled continuation is oracle-exact.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "paracosm/paracosm.hpp"
#include "service/service.hpp"
#include "tests/test_support.hpp"
#include "util/cancel.hpp"
#include "verify/oracle_mirror.hpp"

namespace paracosm {
namespace {

using testing::SmallWorkload;
using testing::make_workload;

TEST(CancelToken, EpochSemantics) {
  util::CancelToken token;
  const std::uint64_t e1 = token.arm();
  EXPECT_FALSE(token.is_cancelled(e1));

  token.cancel(e1);
  EXPECT_TRUE(token.is_cancelled(e1));

  // Re-arming opens a fresh scope the old cancel cannot touch.
  const std::uint64_t e2 = token.arm();
  EXPECT_GT(e2, e1);
  EXPECT_FALSE(token.is_cancelled(e2));

  // A LATE cancel aimed at the old epoch stays a no-op for the new scope.
  token.cancel(e1);
  EXPECT_FALSE(token.is_cancelled(e2));

  token.cancel_current();
  EXPECT_TRUE(token.is_cancelled(e2));
}

TEST(CancelToken, DefaultViewIsInert) {
  util::CancelView view;
  EXPECT_FALSE(view.active());
  EXPECT_FALSE(view.cancelled());

  util::CancelToken token;
  const util::CancelView armed = util::arm_view(token);
  EXPECT_TRUE(armed.active());
  EXPECT_FALSE(armed.cancelled());
  token.cancel(armed.epoch);
  EXPECT_TRUE(armed.cancelled());
}

TEST(Watchdog, CancelsOverdueEpochOnly) {
  util::CancelToken token;
  service::Watchdog dog;

  // Disarmed in time: no cancel.
  const std::uint64_t e1 = token.arm();
  dog.arm(&token, e1, util::Clock::now() + std::chrono::seconds(10));
  dog.disarm(e1);
  EXPECT_FALSE(token.is_cancelled(e1));
  EXPECT_EQ(dog.cancels(), 0u);

  // Deadline already passed: the watchdog must fire.
  const std::uint64_t e2 = token.arm();
  dog.arm(&token, e2, util::Clock::now() - std::chrono::milliseconds(1));
  for (int i = 0; i < 2000 && !token.is_cancelled(e2); ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_TRUE(token.is_cancelled(e2));
  EXPECT_EQ(dog.cancels(), 1u);

  // The fired cancel is pinned to e2; the next scope starts clean.
  const std::uint64_t e3 = token.arm();
  EXPECT_FALSE(token.is_cancelled(e3));
}

struct ExecCase {
  const char* name;
  bool inner;
  engine::Scheduler scheduler;
  unsigned threads;
};

std::vector<ExecCase> executor_matrix() {
  std::vector<ExecCase> cases{{"sequential", false, engine::Scheduler::kCentralQueue, 1}};
  for (const unsigned t : {1u, 2u, 4u, 8u}) {
    cases.push_back({"central", true, engine::Scheduler::kCentralQueue, t});
    cases.push_back({"stealing", true, engine::Scheduler::kWorkStealing, t});
  }
  return cases;
}

engine::Config exec_config(const ExecCase& c) {
  engine::Config cfg;
  cfg.threads = c.threads;
  cfg.split_depth = 3;
  cfg.inner_parallelism = c.inner;
  cfg.inter_parallelism = false;
  cfg.scheduler = c.scheduler;
  cfg.queue_spin_iters = 1;
  cfg.pool_spin_iters = 1;
  return cfg;
}

// The service-layer contract, per executor × thread count: process the first
// half of the stream with the token already raised (the deterministic
// "watchdog fired" image), the second half uncancelled. Cancelled updates may
// under-report ΔM but never invent matches; graph and ADS must track the
// mirror exactly throughout, and the uncancelled continuation must be
// oracle-exact — cancellation leaves no residue.
TEST(CancelExecutors, DegradedPrefixThenExactSuffix) {
  for (const ExecCase& ec : executor_matrix()) {
    SCOPED_TRACE(std::string(ec.name) + " x" + std::to_string(ec.threads));
    SmallWorkload wl = make_workload(/*seed=*/177);
    ASSERT_FALSE(wl.stream.empty());

    const auto alg = csm::make_algorithm("turboflux");
    verify::OracleMirror oracle(wl.query, wl.graph, alg->uses_edge_labels(),
                                /*strict=*/false);
    engine::ParaCosm pc(*alg, wl.query, wl.graph, exec_config(ec));

    util::CancelToken token;
    const std::size_t half = wl.stream.size() / 2;
    for (std::size_t i = 0; i < wl.stream.size(); ++i) {
      const graph::GraphUpdate& upd = wl.stream[i];
      const verify::OracleDelta& want = oracle.step(upd);
      csm::UpdateOutcome out;
      if (i < half) {
        const util::CancelView view = util::arm_view(token);
        token.cancel(view.epoch);
        out = pc.process(upd, {}, view);
        EXPECT_LE(out.positive, want.positive) << "update " << i;
        EXPECT_LE(out.negative, want.negative) << "update " << i;
      } else {
        out = pc.process(upd);
        EXPECT_EQ(out.positive, want.positive) << "update " << i;
        EXPECT_EQ(out.negative, want.negative) << "update " << i;
        EXPECT_FALSE(out.cancelled) << "update " << i;
      }
      EXPECT_EQ(out.applied, want.applied) << "update " << i;
    }

    // Maintenance must have been exact regardless of cancelled searches.
    EXPECT_TRUE(wl.graph.same_structure(oracle.graph())) << "graph diverged";
    const auto fresh = csm::make_algorithm("turboflux");
    fresh->attach(wl.query, wl.graph);
    EXPECT_EQ(alg->ads_checksum(), fresh->ads_checksum())
        << "ADS diverged from a fresh attach";
  }
}

// A pre-cancelled whole-stream run must set the cancelled bit on the result
// when any search was actually cut short, and never crash or corrupt state.
TEST(CancelExecutors, StreamResultPropagatesCancelledBit) {
  SmallWorkload wl = make_workload(/*seed=*/991);
  const auto alg = csm::make_algorithm("graphflow");
  engine::Config cfg;
  cfg.threads = 4;
  cfg.inter_parallelism = false;
  cfg.queue_spin_iters = 1;
  cfg.pool_spin_iters = 1;
  engine::ParaCosm pc(*alg, wl.query, wl.graph, cfg);

  util::CancelToken token;
  const util::CancelView view = util::arm_view(token);
  token.cancel(view.epoch);
  const engine::StreamResult r = pc.process_stream(wl.stream, {}, view);
  EXPECT_EQ(r.updates_processed, wl.stream.size());

  const auto fresh = csm::make_algorithm("graphflow");
  fresh->attach(wl.query, wl.graph);
  EXPECT_EQ(alg->ads_checksum(), fresh->ads_checksum());
  (void)r.cancelled;  // may be false if every search finished pre-check
}

}  // namespace
}  // namespace paracosm
