// Edge cases and race coverage for the batch executor's striped work cursor
// (paracosm/shard_cursor.hpp). The multithreaded cases run in a loop so the
// TSan CI job gets many interleavings; the invariant throughout is exactly
// the one the batch executor relies on: every index in [0, total) is claimed
// exactly once, across any mix of own-shard claims and steals.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "paracosm/shard_cursor.hpp"

namespace paracosm::engine {
namespace {

TEST(ShardCursor, EmptyRangeYieldsNposForEveryWorker) {
  ShardedCursor cursor(0, 4);
  for (unsigned wid = 0; wid < 4; ++wid)
    EXPECT_EQ(cursor.claim(wid), ShardedCursor::npos);
}

TEST(ShardCursor, ZeroWorkersClampsToOne) {
  ShardedCursor cursor(3, 0);
  EXPECT_EQ(cursor.claim(0), 0u);
  EXPECT_EQ(cursor.claim(0), 1u);
  EXPECT_EQ(cursor.claim(0), 2u);
  EXPECT_EQ(cursor.claim(0), ShardedCursor::npos);
}

TEST(ShardCursor, SingleElementFoundByDistantWorker) {
  // total=1, workers=4: only shard 0 is non-empty; worker 2 must walk the
  // empty shards 2 and 3 before stealing the element from shard 0.
  ShardedCursor cursor(1, 4);
  EXPECT_EQ(cursor.claim(2), 0u);
  for (unsigned wid = 0; wid < 4; ++wid)
    EXPECT_EQ(cursor.claim(wid), ShardedCursor::npos);
}

TEST(ShardCursor, MoreWorkersThanWork) {
  // 3 elements across 8 shards: shards 3..7 are empty from the start, and
  // every element is still claimed exactly once.
  ShardedCursor cursor(3, 8);
  std::vector<bool> seen(3, false);
  for (unsigned wid = 7;; --wid) {  // claim from the empty end first
    const std::size_t j = cursor.claim(wid % 8);
    if (j == ShardedCursor::npos) break;
    ASSERT_LT(j, seen.size());
    EXPECT_FALSE(seen[j]) << "index " << j << " claimed twice";
    seen[j] = true;
  }
  for (std::size_t j = 0; j < seen.size(); ++j) EXPECT_TRUE(seen[j]) << j;
}

TEST(ShardCursor, OneWorkerDrainsAllShards) {
  // The straggler-steal path: worker 3 alone claims everything, draining its
  // own shard first and then the other three in ring order.
  constexpr std::size_t kTotal = 17;
  ShardedCursor cursor(kTotal, 4);
  std::vector<bool> seen(kTotal, false);
  std::size_t claims = 0;
  for (std::size_t j = cursor.claim(3); j != ShardedCursor::npos;
       j = cursor.claim(3)) {
    ASSERT_LT(j, kTotal);
    EXPECT_FALSE(seen[j]);
    seen[j] = true;
    ++claims;
  }
  EXPECT_EQ(claims, kTotal);
}

TEST(ShardCursor, AllWorkersStealFromOneShard) {
  // total < workers puts all elements in shard 0; every thread races the
  // same cursor (the pure-contention worst case). Looped for TSan coverage.
  constexpr unsigned kWorkers = 8;
  for (int iter = 0; iter < 50; ++iter) {
    constexpr std::size_t kTotal = 4;  // shards 4..7 empty, 0..3 single-element
    ShardedCursor cursor(kTotal, kWorkers);
    std::atomic<std::uint32_t> claim_mask{0};
    std::atomic<unsigned> double_claims{0};
    std::vector<std::thread> threads;
    threads.reserve(kWorkers);
    for (unsigned wid = 0; wid < kWorkers; ++wid) {
      threads.emplace_back([&, wid] {
        for (std::size_t j = cursor.claim(wid); j != ShardedCursor::npos;
             j = cursor.claim(wid)) {
          const std::uint32_t bit = 1u << j;
          if (claim_mask.fetch_or(bit, std::memory_order_relaxed) & bit)
            double_claims.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (std::thread& t : threads) t.join();
    EXPECT_EQ(double_claims.load(), 0u);
    EXPECT_EQ(claim_mask.load(), (1u << kTotal) - 1);
  }
}

TEST(ShardCursor, ExhaustionRaceClaimsEachIndexExactlyOnce) {
  // 8 threads hammer a 64-element cursor to exhaustion; the CAS loop must
  // never let a losing thief push a cursor past its shard end (overshoot
  // would surface as a double claim or a lost index).
  constexpr unsigned kWorkers = 8;
  constexpr std::size_t kTotal = 64;
  for (int iter = 0; iter < 100; ++iter) {
    ShardedCursor cursor(kTotal, kWorkers);
    std::vector<std::atomic<std::uint32_t>> counts(kTotal);
    for (auto& c : counts) c.store(0, std::memory_order_relaxed);
    std::vector<std::thread> threads;
    threads.reserve(kWorkers);
    for (unsigned wid = 0; wid < kWorkers; ++wid) {
      threads.emplace_back([&, wid] {
        for (std::size_t j = cursor.claim(wid); j != ShardedCursor::npos;
             j = cursor.claim(wid))
          counts[j].fetch_add(1, std::memory_order_relaxed);
      });
    }
    for (std::thread& t : threads) t.join();
    for (std::size_t j = 0; j < kTotal; ++j)
      ASSERT_EQ(counts[j].load(), 1u) << "index " << j << " iter " << iter;
    // Drained: every worker sees npos afterwards.
    for (unsigned wid = 0; wid < kWorkers; ++wid)
      EXPECT_EQ(cursor.claim(wid), ShardedCursor::npos);
  }
}

}  // namespace
}  // namespace paracosm::engine
