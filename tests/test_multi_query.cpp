// Multi-query engine: per-query totals must match independent single-query
// sequential runs over the same stream, for heterogeneous algorithm mixes.
#include <gtest/gtest.h>

#include "paracosm/multi_query.hpp"
#include "tests/test_support.hpp"

namespace paracosm::testing {
namespace {

using engine::Config;
using engine::MultiQueryEngine;
using engine::MultiStreamResult;

struct QuerySpec {
  std::string algorithm;
  graph::QueryGraph query;
};

std::pair<std::uint64_t, std::uint64_t> single_query_totals(
    const graph::DataGraph& base, const graph::QueryGraph& q,
    const std::string& algorithm, const std::vector<graph::GraphUpdate>& stream) {
  auto alg = csm::make_algorithm(algorithm);
  graph::DataGraph g = base;
  csm::SequentialEngine eng(*alg, q, g);
  std::uint64_t pos = 0, neg = 0;
  for (const auto& upd : stream) {
    const auto out = eng.process(upd);
    pos += out.positive;
    neg += out.negative;
  }
  return {pos, neg};
}

TEST(MultiQueryEngine, MatchesIndependentSingleQueryRuns) {
  util::Rng rng(777);
  graph::DataGraph base = graph::generate_erdos_renyi(40, 100, 3, 2, rng);
  std::vector<QuerySpec> specs;
  for (const auto name : {"graphflow", "symbi", "turboflux"}) {
    const auto q = graph::extract_query(base, 4, rng);
    ASSERT_TRUE(q.has_value());
    specs.push_back({std::string(name), *q});
  }
  auto stream = graph::make_mixed_stream(base, 0.3, 0.4, rng);

  // Expected: independent sequential runs.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> expected;
  for (const auto& spec : specs)
    expected.push_back(single_query_totals(base, spec.query, spec.algorithm, stream));

  // Multi-query engine over one shared graph.
  graph::DataGraph g = base;
  Config cfg;
  cfg.threads = 3;
  MultiQueryEngine engine(g, cfg);
  for (const auto& spec : specs) engine.add_query(spec.algorithm, spec.query);
  ASSERT_EQ(engine.num_queries(), specs.size());
  const MultiStreamResult result = engine.process_stream(stream);

  EXPECT_FALSE(result.timed_out);
  EXPECT_EQ(result.updates_processed, stream.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(result.positive[i], expected[i].first) << specs[i].algorithm;
    EXPECT_EQ(result.negative[i], expected[i].second) << specs[i].algorithm;
  }
}

TEST(MultiQueryEngine, SafeOnlyWhenSafeForEveryQuery) {
  // Query 1 matches label pair (0,1); query 2 matches (2,3). An edge with
  // labels (2,3) is unsafe for query 2 even though query 1 filters it.
  graph::DataGraph g;
  for (const graph::Label l : {0u, 1u, 2u, 3u}) g.add_vertex(l);
  Config cfg;
  cfg.threads = 2;
  MultiQueryEngine engine(g, cfg);
  engine.add_query("graphflow", graph::QueryGraph({0, 1}, {{0, 1, 0}}));
  engine.add_query("graphflow", graph::QueryGraph({2, 3}, {{0, 1, 0}}));

  const std::vector<graph::GraphUpdate> stream{
      graph::GraphUpdate::insert_edge(2, 3, 0)};
  const MultiStreamResult result = engine.process_stream(stream);
  EXPECT_EQ(result.unsafe_sequential, 1u);
  EXPECT_EQ(result.positive[0], 0u);
  EXPECT_EQ(result.positive[1], 1u);
}

TEST(MultiQueryEngine, HandlesVertexOps) {
  util::Rng rng(888);
  graph::DataGraph base = graph::generate_erdos_renyi(24, 60, 2, 1, rng);
  const auto q = graph::extract_query(base, 3, rng);
  ASSERT_TRUE(q.has_value());

  std::vector<graph::GraphUpdate> stream{
      graph::GraphUpdate::insert_vertex(500, 0),
      graph::GraphUpdate::insert_edge(500, 0, 0),
      graph::GraphUpdate::remove_vertex(500),
  };
  const auto expected = single_query_totals(base, *q, "symbi", stream);

  graph::DataGraph g = base;
  MultiQueryEngine engine(g, Config{.threads = 2});
  engine.add_query("symbi", *q);
  const MultiStreamResult result = engine.process_stream(stream);
  EXPECT_EQ(result.positive[0], expected.first);
  EXPECT_EQ(result.negative[0], expected.second);
  EXPECT_FALSE(g.has_vertex(500));
}

TEST(MultiQueryEngine, RejectsUnknownAlgorithm) {
  graph::DataGraph g;
  g.add_vertex(0);
  g.add_vertex(1);
  MultiQueryEngine engine(g);
  EXPECT_THROW(engine.add_query("nope", graph::QueryGraph({0, 1}, {{0, 1, 0}})),
               std::invalid_argument);
}

}  // namespace
}  // namespace paracosm::testing
