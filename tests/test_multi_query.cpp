// Multi-query engine: per-query totals must match independent single-query
// sequential runs over the same stream, for heterogeneous algorithm mixes.
#include <gtest/gtest.h>

#include "paracosm/multi_query.hpp"
#include "tests/test_support.hpp"

namespace paracosm::testing {
namespace {

using engine::Config;
using engine::MultiQueryEngine;
using engine::MultiStreamResult;

struct QuerySpec {
  std::string algorithm;
  graph::QueryGraph query;
};

std::pair<std::uint64_t, std::uint64_t> single_query_totals(
    const graph::DataGraph& base, const graph::QueryGraph& q,
    const std::string& algorithm, const std::vector<graph::GraphUpdate>& stream) {
  auto alg = csm::make_algorithm(algorithm);
  graph::DataGraph g = base;
  csm::SequentialEngine eng(*alg, q, g);
  std::uint64_t pos = 0, neg = 0;
  for (const auto& upd : stream) {
    const auto out = eng.process(upd);
    pos += out.positive;
    neg += out.negative;
  }
  return {pos, neg};
}

TEST(MultiQueryEngine, MatchesIndependentSingleQueryRuns) {
  util::Rng rng(777);
  graph::DataGraph base = graph::generate_erdos_renyi(40, 100, 3, 2, rng);
  std::vector<QuerySpec> specs;
  for (const auto name : {"graphflow", "symbi", "turboflux"}) {
    const auto q = graph::extract_query(base, 4, rng);
    ASSERT_TRUE(q.has_value());
    specs.push_back({std::string(name), *q});
  }
  auto stream = graph::make_mixed_stream(base, 0.3, 0.4, rng);

  // Expected: independent sequential runs.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> expected;
  for (const auto& spec : specs)
    expected.push_back(single_query_totals(base, spec.query, spec.algorithm, stream));

  // Multi-query engine over one shared graph.
  graph::DataGraph g = base;
  Config cfg;
  cfg.threads = 3;
  MultiQueryEngine engine(g, cfg);
  for (const auto& spec : specs) engine.add_query(spec.algorithm, spec.query);
  ASSERT_EQ(engine.num_queries(), specs.size());
  const MultiStreamResult result = engine.process_stream(stream);

  EXPECT_FALSE(result.timed_out);
  EXPECT_EQ(result.updates_processed, stream.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(result.positive[i], expected[i].first) << specs[i].algorithm;
    EXPECT_EQ(result.negative[i], expected[i].second) << specs[i].algorithm;
  }
}

TEST(MultiQueryEngine, SafeOnlyWhenSafeForEveryQuery) {
  // Query 1 matches label pair (0,1); query 2 matches (2,3). An edge with
  // labels (2,3) is unsafe for query 2 even though query 1 filters it.
  graph::DataGraph g;
  for (const graph::Label l : {0u, 1u, 2u, 3u}) g.add_vertex(l);
  Config cfg;
  cfg.threads = 2;
  MultiQueryEngine engine(g, cfg);
  engine.add_query("graphflow", graph::QueryGraph({0, 1}, {{0, 1, 0}}));
  engine.add_query("graphflow", graph::QueryGraph({2, 3}, {{0, 1, 0}}));

  const std::vector<graph::GraphUpdate> stream{
      graph::GraphUpdate::insert_edge(2, 3, 0)};
  const MultiStreamResult result = engine.process_stream(stream);
  EXPECT_EQ(result.unsafe_sequential, 1u);
  EXPECT_EQ(result.positive[0], 0u);
  EXPECT_EQ(result.positive[1], 1u);
}

TEST(MultiQueryEngine, HandlesVertexOps) {
  util::Rng rng(888);
  graph::DataGraph base = graph::generate_erdos_renyi(24, 60, 2, 1, rng);
  const auto q = graph::extract_query(base, 3, rng);
  ASSERT_TRUE(q.has_value());

  std::vector<graph::GraphUpdate> stream{
      graph::GraphUpdate::insert_vertex(500, 0),
      graph::GraphUpdate::insert_edge(500, 0, 0),
      graph::GraphUpdate::remove_vertex(500),
  };
  const auto expected = single_query_totals(base, *q, "symbi", stream);

  graph::DataGraph g = base;
  MultiQueryEngine engine(g, Config{.threads = 2});
  engine.add_query("symbi", *q);
  const MultiStreamResult result = engine.process_stream(stream);
  EXPECT_EQ(result.positive[0], expected.first);
  EXPECT_EQ(result.negative[0], expected.second);
  EXPECT_FALSE(g.has_vertex(500));
}

TEST(MultiQueryEngine, RejectsUnknownAlgorithm) {
  graph::DataGraph g;
  g.add_vertex(0);
  g.add_vertex(1);
  MultiQueryEngine engine(g);
  EXPECT_THROW(engine.add_query("nope", graph::QueryGraph({0, 1}, {{0, 1, 0}})),
               std::invalid_argument);
}

TEST(MultiQueryEngine, DuplicateQueriesShareAClassAndMatch) {
  util::Rng rng(991);
  graph::DataGraph base = graph::generate_erdos_renyi(36, 90, 3, 2, rng);
  const auto qa = graph::extract_query(base, 4, rng);
  const auto qb = graph::extract_query(base, 3, rng);
  ASSERT_TRUE(qa.has_value() && qb.has_value());
  auto stream = graph::make_mixed_stream(base, 0.3, 0.4, rng);

  const auto expect_a = single_query_totals(base, *qa, "symbi", stream);
  const auto expect_b = single_query_totals(base, *qb, "graphflow", stream);

  graph::DataGraph g = base;
  MultiQueryEngine engine(g, Config{.threads = 2});
  const std::size_t h0 = engine.add_query("symbi", *qa);
  const std::size_t h1 = engine.add_query("symbi", *qa);   // duplicate: shared
  const std::size_t h2 = engine.add_query("graphflow", *qb);
  const std::size_t h3 = engine.add_query("graphflow", *qa);  // same pattern,
                                                              // other algorithm
  EXPECT_EQ(engine.num_queries(), 4u);
  EXPECT_EQ(engine.num_classes(), 3u);  // h0+h1 share; h2, h3 are their own

  const MultiStreamResult r = engine.process_stream(stream);
  EXPECT_EQ(r.positive[h0], expect_a.first);
  EXPECT_EQ(r.negative[h0], expect_a.second);
  EXPECT_EQ(r.positive[h1], expect_a.first);   // fan-out, not re-search
  EXPECT_EQ(r.negative[h1], expect_a.second);
  EXPECT_EQ(r.positive[h2], expect_b.first);
  EXPECT_EQ(r.negative[h2], expect_b.second);
  EXPECT_EQ(r.positive[h3], expect_a.first);   // cross-algorithm agreement
  EXPECT_EQ(r.negative[h3], expect_a.second);
  EXPECT_GT(r.mq.searches_shared, 0u);  // the duplicate rode shared searches
}

TEST(MultiQueryEngine, SharingOffMatchesSharingOn) {
  util::Rng rng(414);
  graph::DataGraph base = graph::generate_erdos_renyi(32, 80, 3, 2, rng);
  const auto q = graph::extract_query(base, 4, rng);
  ASSERT_TRUE(q.has_value());
  auto stream = graph::make_mixed_stream(base, 0.3, 0.4, rng);

  graph::DataGraph g1 = base, g2 = base;
  MultiQueryEngine shared(g1, Config{.threads = 2});
  MultiQueryEngine independent(g2, Config{.threads = 2});
  independent.set_shared_evaluation(false);
  for (MultiQueryEngine* e : {&shared, &independent}) {
    e->add_query("symbi", *q);
    e->add_query("symbi", *q);
  }
  EXPECT_EQ(shared.num_classes(), 1u);
  EXPECT_EQ(independent.num_classes(), 2u);

  const MultiStreamResult rs = shared.process_stream(stream);
  const MultiStreamResult ri = independent.process_stream(stream);
  for (std::size_t h = 0; h < 2; ++h) {
    EXPECT_EQ(rs.positive[h], ri.positive[h]);
    EXPECT_EQ(rs.negative[h], ri.negative[h]);
  }
}

TEST(MultiQueryEngine, AddMidStreamSeesOnlyLaterUpdates) {
  util::Rng rng(515);
  graph::DataGraph base = graph::generate_erdos_renyi(36, 90, 3, 2, rng);
  const auto qa = graph::extract_query(base, 4, rng);
  const auto qb = graph::extract_query(base, 3, rng);
  ASSERT_TRUE(qa.has_value() && qb.has_value());
  auto stream = graph::make_mixed_stream(base, 0.3, 0.4, rng);
  ASSERT_GE(stream.size(), 2u);
  const std::size_t mid = stream.size() / 2;
  const std::vector<graph::GraphUpdate> first(stream.begin(),
                                              stream.begin() + mid);
  const std::vector<graph::GraphUpdate> second(stream.begin() + mid,
                                               stream.end());

  // Expected for the late query: a sequential run that warms through the
  // first half without counting — state identical to "registered at mid".
  std::uint64_t want_pos = 0, want_neg = 0;
  {
    auto alg = csm::make_algorithm("graphflow");
    graph::DataGraph g = base;
    csm::SequentialEngine eng(*alg, *qb, g);
    for (std::size_t i = 0; i < stream.size(); ++i) {
      const auto out = eng.process(stream[i]);
      if (i < mid) continue;
      want_pos += out.positive;
      want_neg += out.negative;
    }
  }

  graph::DataGraph g = base;
  MultiQueryEngine engine(g, Config{.threads = 2});
  engine.add_query("symbi", *qa);
  const MultiStreamResult r1 = engine.process_stream(first);
  const std::size_t hb = engine.add_query("graphflow", *qb);
  EXPECT_EQ(r1.positive.size(), 1u);  // registered after the first result
  const MultiStreamResult r2 = engine.process_stream(second);
  EXPECT_EQ(r2.positive[hb], want_pos);
  EXPECT_EQ(r2.negative[hb], want_neg);
}

TEST(MultiQueryEngine, RemoveFreesClassesAndReusesHandles) {
  util::Rng rng(616);
  graph::DataGraph base = graph::generate_erdos_renyi(30, 70, 3, 2, rng);
  const auto qa = graph::extract_query(base, 4, rng);
  const auto qb = graph::extract_query(base, 3, rng);
  ASSERT_TRUE(qa.has_value() && qb.has_value());
  auto stream = graph::make_mixed_stream(base, 0.3, 0.4, rng);

  graph::DataGraph g = base;
  MultiQueryEngine engine(g, Config{.threads = 1});
  const std::size_t h0 = engine.add_query("symbi", *qa);
  const std::size_t h1 = engine.add_query("symbi", *qa);  // shares h0's class
  const std::size_t h2 = engine.add_query("graphflow", *qb);
  EXPECT_EQ(engine.num_queries(), 3u);
  EXPECT_EQ(engine.num_classes(), 2u);

  // Removing one member keeps the class alive for the other.
  EXPECT_TRUE(engine.remove_query(h0));
  EXPECT_EQ(engine.num_queries(), 2u);
  EXPECT_EQ(engine.num_classes(), 2u);
  // Removing the last member releases the class (and its index entries).
  EXPECT_TRUE(engine.remove_query(h1));
  EXPECT_EQ(engine.num_classes(), 1u);
  // Stale/double removal is rejected.
  EXPECT_FALSE(engine.remove_query(h0));
  EXPECT_FALSE(engine.remove_query(engine.num_slots() + 7));

  // A freed handle is recycled; the catalogue keeps working after churn.
  const std::size_t h3 = engine.add_query("turboflux", *qa);
  EXPECT_TRUE(h3 == h0 || h3 == h1);
  EXPECT_EQ(engine.num_queries(), 2u);
  EXPECT_EQ(engine.num_classes(), 2u);

  const auto expect_a = single_query_totals(base, *qa, "turboflux", stream);
  const auto expect_b = single_query_totals(base, *qb, "graphflow", stream);
  const MultiStreamResult r = engine.process_stream(stream);
  EXPECT_EQ(r.positive[h3], expect_a.first);
  EXPECT_EQ(r.negative[h3], expect_a.second);
  EXPECT_EQ(r.positive[h2], expect_b.first);
  EXPECT_EQ(r.negative[h2], expect_b.second);
  // The slot freed for good reports nothing.
  const std::size_t dead = h3 == h0 ? h1 : h0;
  EXPECT_EQ(r.positive[dead], 0u);
  EXPECT_EQ(r.negative[dead], 0u);
}

TEST(MultiQueryEngine, SharedTierCountersAccount) {
  util::Rng rng(717);
  graph::DataGraph base = graph::generate_erdos_renyi(36, 90, 3, 2, rng);
  std::vector<graph::QueryGraph> queries;
  for (int i = 0; i < 3; ++i) {
    const auto q = graph::extract_query(base, 4, rng);
    ASSERT_TRUE(q.has_value());
    queries.push_back(*q);
  }
  auto stream = graph::make_mixed_stream(base, 0.3, 0.4, rng);

  graph::DataGraph g = base;
  MultiQueryEngine engine(g, Config{.threads = 2});
  for (const auto& q : queries) engine.add_query("graphflow", q);
  const MultiStreamResult r = engine.process_stream(stream);

  EXPECT_GT(r.mq.updates_classified, 0u);
  // Structurally invalid updates (duplicate inserts, ghost deletes) classify
  // without probing; every structurally valid edge op probes exactly once.
  EXPECT_GT(r.mq.index_probes, 0u);
  EXPECT_LE(r.mq.index_probes, r.mq.updates_classified);
  // Every (query, update) verdict is settled by exactly one tier.
  EXPECT_GT(r.mq.verdicts_by_index + r.mq.verdicts_grouped, 0u);
  EXPECT_EQ((r.mq.verdicts_by_index + r.mq.verdicts_grouped) %
                engine.num_queries(),
            0u);
}

}  // namespace
}  // namespace paracosm::testing
