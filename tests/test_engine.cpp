// Tests for the sequential engine: maintenance contract, breakdown
// accounting, no-op handling, vertex cascades and timeouts.
#include <gtest/gtest.h>

#include "tests/test_support.hpp"

namespace paracosm::csm {
namespace {

using testing::make_workload;
using testing::SmallWorkload;

TEST(SequentialEngine, DuplicateInsertAndPhantomRemoveAreNoOps) {
  SmallWorkload wl = make_workload(10, 24, 50, 2, 1, 4, 0.0, 0.0);
  auto alg = make_algorithm("graphflow");
  SequentialEngine engine(*alg, wl.query, wl.graph);
  const auto edges = wl.graph.edge_list();
  ASSERT_FALSE(edges.empty());
  const auto& e = edges.front();

  const auto dup =
      engine.process(graph::GraphUpdate::insert_edge(e.u, e.v, e.elabel));
  EXPECT_FALSE(dup.applied);
  EXPECT_EQ(dup.delta_matches(), 0u);

  graph::VertexId missing_v = 0;
  for (graph::VertexId v = 1; v < wl.graph.vertex_capacity(); ++v)
    if (!wl.graph.has_edge(0, v) && v != 0) {
      missing_v = v;
      break;
    }
  const auto phantom =
      engine.process(graph::GraphUpdate::remove_edge(0, missing_v, 0));
  EXPECT_FALSE(phantom.applied);
}

TEST(SequentialEngine, BreakdownAccumulatesAndResets) {
  SmallWorkload wl = make_workload(11, 32, 80, 2, 1, 4);
  auto alg = make_algorithm("symbi");
  SequentialEngine engine(*alg, wl.query, wl.graph);
  for (const auto& upd : wl.stream) engine.process(upd);
  EXPECT_GT(engine.ads_update_ns(), 0);
  EXPECT_GT(engine.find_matches_ns(), 0);
  engine.reset_breakdown();
  EXPECT_EQ(engine.ads_update_ns(), 0);
  EXPECT_EQ(engine.find_matches_ns(), 0);
}

TEST(SequentialEngine, VertexRemoveExpiresMatchesThroughIt) {
  // Triangle query on a triangle: removing a corner expires all mappings.
  graph::DataGraph g;
  for (int i = 0; i < 3; ++i) g.add_vertex(0);
  g.add_edge(0, 1, 0);
  g.add_edge(1, 2, 0);
  g.add_edge(0, 2, 0);
  graph::QueryGraph q({0, 0, 0}, {{0, 1, 0}, {1, 2, 0}, {0, 2, 0}});
  auto alg = make_algorithm("turboflux");
  SequentialEngine engine(*alg, q, g);
  EXPECT_EQ(engine.initial_matches(), 6u);
  const auto out = engine.process(graph::GraphUpdate::remove_vertex(1));
  EXPECT_EQ(out.negative, 6u);
  EXPECT_FALSE(g.has_vertex(1));
  EXPECT_EQ(engine.initial_matches(), 0u);
}

TEST(SequentialEngine, VertexInsertThenConnect) {
  graph::DataGraph g;
  g.add_vertex(0);
  g.add_vertex(1);
  g.add_edge(0, 1, 0);
  graph::QueryGraph q({0, 1, 0}, {{0, 1, 0}, {1, 2, 0}});
  auto alg = make_algorithm("symbi");
  SequentialEngine engine(*alg, q, g);
  const auto ins = engine.process(graph::GraphUpdate::insert_vertex(2, 0));
  EXPECT_TRUE(ins.applied);
  const auto connect = engine.process(graph::GraphUpdate::insert_edge(1, 2, 0));
  // u0 and u2 both carry label 0, so the v0-v1-v2 path hosts two mappings.
  EXPECT_EQ(connect.positive, 2u);
}

TEST(SequentialEngine, TimeoutFlagsOutcome) {
  util::Rng rng(12);
  graph::DataGraph g = graph::generate_erdos_renyi(64, 1400, 1, 1, rng);
  const auto q = graph::extract_query(g, 8, rng);
  ASSERT_TRUE(q.has_value());
  auto stream = graph::make_insert_stream(g, 0.05, rng);
  auto alg = make_algorithm("graphflow");
  SequentialEngine engine(*alg, *q, g);
  bool timed_out = false;
  for (const auto& upd : stream) {
    const auto out =
        engine.process(upd, util::Clock::now() - std::chrono::milliseconds(1));
    timed_out = timed_out || out.timed_out;
  }
  EXPECT_TRUE(timed_out);
}

TEST(SequentialEngine, ReattachResetsState) {
  SmallWorkload wl = make_workload(13, 24, 60, 2, 1, 4);
  auto alg = make_algorithm("calig");
  std::uint64_t first_total = 0, second_total = 0;
  {
    graph::DataGraph g = wl.graph;
    SequentialEngine engine(*alg, wl.query, g);
    for (const auto& upd : wl.stream) first_total += engine.process(upd).delta_matches();
  }
  {
    graph::DataGraph g = wl.graph;
    SequentialEngine engine(*alg, wl.query, g);  // re-attach same instance
    for (const auto& upd : wl.stream)
      second_total += engine.process(upd).delta_matches();
  }
  EXPECT_EQ(first_total, second_total);
}

TEST(AlgorithmRegistry, NamesAndFactoriesAgree) {
  const auto names = algorithm_names();
  EXPECT_EQ(names.size(), 5u);
  for (const auto name : names) {
    auto alg = make_algorithm(name);
    ASSERT_NE(alg, nullptr) << name;
    EXPECT_EQ(alg->name(), name);
  }
  EXPECT_EQ(make_algorithm("does-not-exist"), nullptr);
}

TEST(AlgorithmTraits, AdsAndEdgeLabelFlags) {
  EXPECT_FALSE(make_algorithm("graphflow")->has_ads());
  EXPECT_FALSE(make_algorithm("newsp")->has_ads());
  EXPECT_TRUE(make_algorithm("turboflux")->has_ads());
  EXPECT_TRUE(make_algorithm("symbi")->has_ads());
  EXPECT_TRUE(make_algorithm("calig")->has_ads());
  EXPECT_FALSE(make_algorithm("calig")->uses_edge_labels());
  EXPECT_TRUE(make_algorithm("symbi")->uses_edge_labels());
}

}  // namespace
}  // namespace paracosm::csm
