// Tests for the dataset stand-in generators and the query/stream extraction
// protocol (paper §5.1).
#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace paracosm::graph {
namespace {

TEST(DatasetSpecs, PresetsMatchTable5Characteristics) {
  const auto lj = livejournal_spec();
  EXPECT_EQ(lj.num_vertex_labels, 30u);
  EXPECT_EQ(lj.num_edge_labels, 1u);
  EXPECT_NEAR(lj.avg_degree, 17.68, 0.01);
  const auto ls = lsbench_spec();
  EXPECT_EQ(ls.num_vertex_labels, 1u);
  EXPECT_EQ(ls.num_edge_labels, 44u);
  const auto ok = orkut_spec();
  EXPECT_EQ(ok.num_vertex_labels, 20u);
  EXPECT_EQ(ok.num_edge_labels, 20u);
  EXPECT_EQ(all_dataset_specs().size(), 4u);
  EXPECT_TRUE(dataset_spec_by_name("amazon").has_value());
  EXPECT_FALSE(dataset_spec_by_name("unknown").has_value());
}

TEST(DatasetSpecs, ScalingAffectsOnlyVertexCount) {
  const auto base = amazon_spec();
  const auto half = amazon_spec(0.5);
  EXPECT_NEAR(half.num_vertices, base.num_vertices / 2, 2);
  EXPECT_EQ(half.num_vertex_labels, base.num_vertex_labels);
  EXPECT_DOUBLE_EQ(half.avg_degree, base.avg_degree);
}

TEST(PowerLawGenerator, HitsTargetDegreeAndLabels) {
  util::Rng rng(1);
  const auto spec = livejournal_spec(0.1);
  const DataGraph g = generate_power_law(spec, rng);
  EXPECT_EQ(g.num_vertices(), spec.num_vertices);
  EXPECT_NEAR(g.average_degree(), spec.avg_degree, spec.avg_degree * 0.25);
  EXPECT_LE(g.num_vertex_labels(), spec.num_vertex_labels);
  EXPECT_GT(g.num_vertex_labels(), spec.num_vertex_labels / 2);
  // Heavy tail: the max degree should far exceed the average.
  EXPECT_GT(g.max_degree(), static_cast<std::uint32_t>(3 * spec.avg_degree));
}

TEST(PowerLawGenerator, DeterministicForSeed) {
  util::Rng a(5), b(5);
  const DataGraph ga = generate_power_law(amazon_spec(0.1), a);
  const DataGraph gb = generate_power_law(amazon_spec(0.1), b);
  EXPECT_TRUE(ga.same_structure(gb));
}

TEST(ErdosRenyi, ProducesRequestedEdges) {
  util::Rng rng(2);
  const DataGraph g = generate_erdos_renyi(100, 300, 4, 2, rng);
  EXPECT_EQ(g.num_vertices(), 100u);
  EXPECT_EQ(g.num_edges(), 300u);
}

TEST(QueryExtraction, ProducesConnectedInducedSubgraph) {
  util::Rng rng(3);
  const DataGraph g = generate_power_law(amazon_spec(0.2), rng);
  for (const std::uint32_t size : {4u, 6u, 8u, 10u}) {
    const auto q = extract_query(g, size, rng);
    ASSERT_TRUE(q.has_value()) << "size " << size;
    EXPECT_EQ(q->num_vertices(), size);
    EXPECT_TRUE(q->connected());
    EXPECT_GE(q->num_edges(), size - 1);  // at least a tree
  }
}

TEST(QueryExtraction, LabelsComeFromDataGraph) {
  util::Rng rng(4);
  const DataGraph g = generate_power_law(orkut_spec(0.1), rng);
  const auto q = extract_query(g, 5, rng);
  ASSERT_TRUE(q.has_value());
  for (VertexId u = 0; u < q->num_vertices(); ++u)
    EXPECT_LT(q->label(u), orkut_spec().num_vertex_labels);
}

TEST(QueryExtraction, FailsGracefullyOnTinyGraph) {
  DataGraph g;
  g.add_vertex(0);
  util::Rng rng(5);
  EXPECT_FALSE(extract_query(g, 4, rng).has_value());
}

TEST(ExtractQueries, ReturnsRequestedCount) {
  util::Rng rng(6);
  const DataGraph g = generate_power_law(amazon_spec(0.2), rng);
  const auto queries = extract_queries(g, 6, 10, rng);
  EXPECT_EQ(queries.size(), 10u);
}

TEST(InsertStream, RemovesSampledEdgesFromGraph) {
  util::Rng rng(7);
  DataGraph g = generate_erdos_renyi(200, 1000, 3, 2, rng);
  const auto before = g.num_edges();
  const auto stream = make_insert_stream(g, 0.10, rng);
  EXPECT_EQ(stream.size(), 100u);
  EXPECT_EQ(g.num_edges(), before - stream.size());
  for (const auto& upd : stream) {
    EXPECT_EQ(upd.op, UpdateOp::kInsertEdge);
    EXPECT_FALSE(g.has_edge(upd.u, upd.v));
  }
  // Replaying the stream restores the edge count.
  for (const auto& upd : stream) EXPECT_TRUE(g.apply(upd));
  EXPECT_EQ(g.num_edges(), before);
}

TEST(MixedStream, AppendsDeletionsOfInsertedEdges) {
  util::Rng rng(8);
  DataGraph g = generate_erdos_renyi(100, 600, 3, 2, rng);
  const auto stream = make_mixed_stream(g, 0.2, 0.5, rng);
  std::size_t inserts = 0, deletes = 0;
  for (const auto& upd : stream) {
    if (upd.op == UpdateOp::kInsertEdge) ++inserts;
    if (upd.op == UpdateOp::kRemoveEdge) ++deletes;
  }
  EXPECT_EQ(inserts, 120u);
  EXPECT_EQ(deletes, 60u);
  // Every deletion targets an edge inserted earlier in the stream.
  for (const auto& upd : stream) {
    if (upd.op != UpdateOp::kRemoveEdge) continue;
    const bool found = std::any_of(
        stream.begin(), stream.end(), [&](const GraphUpdate& other) {
          return other.op == UpdateOp::kInsertEdge &&
                 ((other.u == upd.u && other.v == upd.v) ||
                  (other.u == upd.v && other.v == upd.u));
        });
    EXPECT_TRUE(found);
  }
}

}  // namespace
}  // namespace paracosm::graph
