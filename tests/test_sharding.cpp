// Integration tests for sharded operation (DESIGN.md §12). These spawn real
// `paracosm_shard` worker processes through the supervisor/coordinator stack
// and hold the merged ΔM byte-identical to a single-process engine run under
// clean, crash-recovery, failover and transport-fault conditions.
//
// The kill matrix is the acceptance gate: across 2/3/4 shards, 9 seeded
// (shard, seq) kill cells each — 27 injection points — plus a clean and a
// drop/dup/corrupt/delay lane per topology, every run must recover with zero
// updates dropped and an identical fold_delta checksum.
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <span>
#include <string>

#include <gtest/gtest.h>

#include "csm/algorithm.hpp"
#include "graph/graph_io.hpp"
#include "paracosm/paracosm.hpp"
#include "shard/coordinator.hpp"
#include "shard/partition.hpp"
#include "shard/supervisor.hpp"
#include "util/checksum.hpp"
#include "verify/shard_check.hpp"

namespace paracosm {
namespace {

/// Resolve the worker binary relative to this test executable
/// (build/tests/test_sharding -> build/tools/paracosm_shard) and export it
/// before any Supervisor exists, so the tests do not depend on the cwd ctest
/// happens to pick.
const struct ShardBinEnv {
  ShardBinEnv() {
    char exe[4096];
    const ssize_t n = ::readlink("/proc/self/exe", exe, sizeof exe - 1);
    if (n <= 0) return;
    exe[n] = '\0';
    std::string dir(exe);
    const auto slash = dir.rfind('/');
    if (slash == std::string::npos) return;
    dir.resize(slash);
    const std::string candidate = dir + "/../tools/paracosm_shard";
    if (::access(candidate.c_str(), X_OK) == 0)
      ::setenv("PARACOSM_SHARD_BIN", candidate.c_str(), /*overwrite=*/0);
  }
} g_shard_bin_env;

std::string fresh_dir(const std::string& leaf) {
  const std::string dir = ::testing::TempDir() + "paracosm-" + leaf;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// Single-process ground truth: totals plus the fold_delta checksum over the
/// full per-update ΔM mapping stream (same fold as the coordinator's merge).
struct Oracle {
  std::uint64_t positive = 0;
  std::uint64_t negative = 0;
  std::uint64_t checksum = util::kFnv1aOffset;
};

Oracle run_oracle(const verify::FuzzCase& c, unsigned threads) {
  auto alg = csm::make_algorithm("graphflow");
  graph::DataGraph g = c.graph;
  engine::Config config;
  config.threads = threads;
  config.inter_parallelism = false;
  engine::ParaCosm pc(*alg, c.queries.front(), g, config);
  std::vector<csm::Assignment> buf;
  pc.set_match_callback([&buf](std::span<const csm::Assignment> m) {
    buf.insert(buf.end(), m.begin(), m.end());
  });
  Oracle out;
  for (std::uint64_t seq = 0; seq < c.stream.size(); ++seq) {
    buf.clear();
    const csm::UpdateOutcome o = pc.process(c.stream[seq]);
    out.positive += o.positive;
    out.negative += o.negative;
    out.checksum = shard::fold_delta(out.checksum, seq, o.positive, o.negative, buf);
  }
  return out;
}

void run_matrix(std::uint32_t n_shards, std::uint64_t seed) {
  const verify::FuzzCase c = verify::generate_case(seed);
  verify::ShardCheckOptions opts;
  opts.n_shards = n_shards;
  opts.kill_points = 9;
  opts.threads = 2;
  opts.transport_faults = true;
  opts.dir = fresh_dir("shardmatrix-" + std::to_string(n_shards));
  for (const verify::Divergence& d : verify::check_shard_case(c, opts))
    ADD_FAILURE() << d.to_string();
}

TEST(ShardMatrix, TwoShardsSurviveNineKillsAndTransportFaults) {
  run_matrix(2, 101);
}
TEST(ShardMatrix, ThreeShardsSurviveNineKillsAndTransportFaults) {
  run_matrix(3, 202);
}
TEST(ShardMatrix, FourShardsSurviveNineKillsAndTransportFaults) {
  run_matrix(4, 303);
}

TEST(ShardFailover, ExhaustedBudgetFailsOwnershipOverWithIdenticalDelta) {
  const verify::FuzzCase c = verify::generate_case(77);
  ASSERT_FALSE(c.stream.empty());
  const std::string dir = fresh_dir("shardfailover");
  const std::string graph_path = dir + "/case.graph";
  const std::string query_path = dir + "/case.query";
  graph::save_data_graph_file(c.graph, graph_path);
  graph::save_query_graph_file(c.queries.front(), query_path);

  // Arm the kill at a sequence shard 1 OWNS, so its death lands in the owner
  // phase: with a zero restart budget the supervisor must declare it
  // permanently dead and the coordinator must fail the update over to shard 0
  // — which has not applied it yet (owner-first ordering) and re-enumerates
  // it from identical state.
  std::int64_t kill_at = -1;
  for (std::uint64_t seq = c.stream.size() / 2; seq < c.stream.size(); ++seq) {
    if (shard::owner_shard(c.stream[seq], 2) == 1) {
      kill_at = static_cast<std::int64_t>(seq);
      break;
    }
  }
  ASSERT_GE(kill_at, 0) << "seed 77 routes no late update to shard 1";

  shard::CoordinatorOptions copts;
  copts.sup.n_shards = 2;
  copts.sup.graph_path = graph_path;
  copts.sup.query_path = query_path;
  copts.sup.worker_threads = 2;
  copts.sup.dir = dir;
  copts.sup.restart_budget = 0;
  copts.sup.kill_shard = 1;
  copts.sup.kill_at = kill_at;
  copts.policy.attempt_timeout_ms = 2000;

  shard::Coordinator coord(copts);
  ASSERT_TRUE(coord.start()) << coord.error();
  for (const graph::GraphUpdate& upd : c.stream)
    ASSERT_TRUE(coord.process(upd)) << coord.error();
  const shard::CoordinatorReport report = coord.finish();

  EXPECT_TRUE(report.error.empty()) << report.error;
  EXPECT_EQ(report.processed, c.stream.size()) << "updates dropped";
  EXPECT_TRUE(report.shards[1].permanently_dead);
  EXPECT_GE(report.failovers, 1u);
  EXPECT_EQ(report.restarts, 0u);  // budget 0: death is final, never respawned

  const Oracle oracle = run_oracle(c, copts.sup.worker_threads);
  EXPECT_EQ(report.positive, oracle.positive);
  EXPECT_EQ(report.negative, oracle.negative);
  EXPECT_EQ(report.delta_checksum, oracle.checksum)
      << "degraded run diverged from the single-process oracle";
}

TEST(ShardRecovery, KilledOwnerIsRestartedAndReplaysItsWal) {
  const verify::FuzzCase c = verify::generate_case(55);
  ASSERT_FALSE(c.stream.empty());
  const std::string dir = fresh_dir("shardrecovery");
  const std::string graph_path = dir + "/case.graph";
  const std::string query_path = dir + "/case.query";
  graph::save_data_graph_file(c.graph, graph_path);
  graph::save_query_graph_file(c.queries.front(), query_path);

  shard::CoordinatorOptions copts;
  copts.sup.n_shards = 2;
  copts.sup.graph_path = graph_path;
  copts.sup.query_path = query_path;
  copts.sup.worker_threads = 2;
  copts.sup.dir = dir;
  copts.sup.kill_shard = 0;
  copts.sup.kill_at = static_cast<std::int64_t>(c.stream.size() / 2);
  copts.policy.attempt_timeout_ms = 2000;

  shard::Coordinator coord(copts);
  ASSERT_TRUE(coord.start()) << coord.error();
  for (const graph::GraphUpdate& upd : c.stream)
    ASSERT_TRUE(coord.process(upd)) << coord.error();
  const shard::CoordinatorReport report = coord.finish();

  EXPECT_TRUE(report.error.empty()) << report.error;
  EXPECT_EQ(report.processed, c.stream.size());
  EXPECT_EQ(report.restarts, 1u);
  EXPECT_GE(report.deferred_replays, 1u) << "the in-flight update must be "
                                            "resent after recovery, not dropped";
  EXPECT_FALSE(report.shards[0].permanently_dead);
  // The respawned worker recovered through its WAL: the crash happened right
  // after the kill sequence's append, so at least that suffix replays.
  EXPECT_GE(report.shards[0].hello_replayed, 1u);

  const Oracle oracle = run_oracle(c, copts.sup.worker_threads);
  EXPECT_EQ(report.positive, oracle.positive);
  EXPECT_EQ(report.negative, oracle.negative);
  EXPECT_EQ(report.delta_checksum, oracle.checksum);
}

TEST(ShardWorker, SigtermDrainsFlushesDurabilityAndExitsZero) {
  const verify::FuzzCase c = verify::generate_case(11);
  const std::string dir = fresh_dir("shardsigterm");
  const std::string graph_path = dir + "/case.graph";
  const std::string query_path = dir + "/case.query";
  graph::save_data_graph_file(c.graph, graph_path);
  graph::save_query_graph_file(c.queries.front(), query_path);

  shard::SupervisorOptions sopts;
  sopts.n_shards = 1;
  sopts.graph_path = graph_path;
  sopts.query_path = query_path;
  sopts.dir = dir;
  shard::Supervisor sup(sopts);
  ASSERT_TRUE(sup.start_all());
  const pid_t pid = sup.proc(0).pid;
  ASSERT_GT(pid, 0);

  // Feed a few updates so the drain has durable state to flush.
  shard::Channel& chan = *sup.proc(0).chan;
  const std::uint64_t feed = std::min<std::uint64_t>(c.stream.size(), 6);
  for (std::uint64_t seq = 0; seq < feed; ++seq) {
    shard::Frame req;
    req.type = shard::FrameType::kApply;
    req.flags = shard::kFlagOwner;
    req.seq = seq;
    req.payload = shard::wire::encode_apply(c.stream[seq]);
    ASSERT_EQ(chan.send(req, 5000), shard::TransportError::kOk);
    shard::Frame ack;
    ASSERT_EQ(chan.recv(ack, 10000), shard::TransportError::kOk);
    ASSERT_EQ(ack.type, shard::FrameType::kApplyAck);
    ASSERT_EQ(ack.seq, seq);
  }

  ASSERT_EQ(::kill(pid, SIGTERM), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status)) << "worker must drain on SIGTERM, not die of it";
  EXPECT_EQ(WEXITSTATUS(status), 0);
  // Graceful shutdown flushes durability: the WAL and the final snapshot are
  // on disk even though no kShutdown was ever sent.
  EXPECT_TRUE(std::filesystem::exists(dir + "/shard-0.wal"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/shard-0.snap"));

  // The test reaped the worker itself; tell the supervisor so its destructor
  // does not SIGKILL a recycled pid.
  sup.proc(0).alive = false;
  sup.proc(0).pid = -1;
}

}  // namespace
}  // namespace paracosm
