// Topology-layer tests (DESIGN.md §10): sysfs parsing against canned trees
// written to a temp dir, graceful degradation, affinity restriction, worker
// assignment packing, and distance-sorted victim tables.
#include "util/hw_topo.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace paracosm::util {
namespace {

namespace fs = std::filesystem;

class SysfsFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("paracosm_hw_topo_" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  void add_cpu(unsigned id, long package, long core) {
    const fs::path topo =
        root_ / "devices" / "system" / "cpu" / ("cpu" + std::to_string(id)) /
        "topology";
    fs::create_directories(topo);
    write(topo / "physical_package_id", std::to_string(package));
    write(topo / "core_id", std::to_string(core));
  }

  /// A cpu directory with no topology attributes (degraded kernel tree).
  void add_bare_cpu(unsigned id) {
    fs::create_directories(root_ / "devices" / "system" / "cpu" /
                           ("cpu" + std::to_string(id)));
  }

  void add_node(unsigned id, const std::string& cpulist) {
    const fs::path node =
        root_ / "devices" / "system" / "node" / ("node" + std::to_string(id));
    fs::create_directories(node);
    write(node / "cpulist", cpulist);
  }

  /// Distractor entries the cpu-dir scan must skip.
  void add_noise() {
    fs::create_directories(root_ / "devices" / "system" / "cpu" / "cpufreq");
    fs::create_directories(root_ / "devices" / "system" / "cpu" / "cpuidle");
    write(root_ / "devices" / "system" / "cpu" / "possible", "0-63");
  }

  [[nodiscard]] std::string root() const { return root_.string(); }

 private:
  static void write(const fs::path& p, const std::string& text) {
    std::ofstream out(p);
    out << text << "\n";
  }

  fs::path root_;
};

const TopoCpu* find_cpu(const HwTopology& t, unsigned os_id) {
  for (const TopoCpu& c : t.cpus)
    if (c.cpu == os_id) return &c;
  return nullptr;
}

// --- synthetic shapes -------------------------------------------------------

TEST(HwTopo, FlatShape) {
  const HwTopology t = HwTopology::flat(4);
  EXPECT_EQ(t.num_cpus(), 4u);
  EXPECT_EQ(t.num_nodes, 1u);
  EXPECT_EQ(t.num_cores, 4u);
  EXPECT_FALSE(t.smt);
  EXPECT_EQ(t.source, TopoSource::kFlat);
  for (const TopoCpu& c : t.cpus) EXPECT_EQ(c.node, 0u);
}

TEST(HwTopo, EmulatedTwoNode) {
  const HwTopology t = HwTopology::emulated(2, 4);
  EXPECT_EQ(t.num_cpus(), 8u);
  EXPECT_EQ(t.num_nodes, 2u);
  EXPECT_EQ(t.num_cores, 8u);
  EXPECT_FALSE(t.smt);
  EXPECT_EQ(t.source, TopoSource::kEmulated);
  EXPECT_EQ(find_cpu(t, 3)->node, 0u);
  EXPECT_EQ(find_cpu(t, 4)->node, 1u);
}

TEST(HwTopo, EmulatedSmt) {
  const HwTopology t = HwTopology::emulated(2, 4, 2);
  EXPECT_EQ(t.num_cpus(), 8u);
  EXPECT_EQ(t.num_nodes, 2u);
  EXPECT_EQ(t.num_cores, 4u);  // 2 cores per node, 2 siblings each
  EXPECT_TRUE(t.smt);
  // cpus 0,1 share core 0; cpus 2,3 share core 1.
  EXPECT_EQ(find_cpu(t, 0)->core, find_cpu(t, 1)->core);
  EXPECT_NE(find_cpu(t, 1)->core, find_cpu(t, 2)->core);
}

TEST(HwTopo, ParseSpec) {
  ASSERT_TRUE(HwTopology::parse_spec("2x4").has_value());
  EXPECT_EQ(HwTopology::parse_spec("2x4")->num_nodes, 2u);
  ASSERT_TRUE(HwTopology::parse_spec("2x8x2").has_value());
  EXPECT_TRUE(HwTopology::parse_spec("2x8x2")->smt);
  EXPECT_FALSE(HwTopology::parse_spec("").has_value());
  EXPECT_FALSE(HwTopology::parse_spec("2x").has_value());
  EXPECT_FALSE(HwTopology::parse_spec("x4").has_value());
  EXPECT_FALSE(HwTopology::parse_spec("2x4x2x2").has_value());
  EXPECT_FALSE(HwTopology::parse_spec("abc").has_value());
  EXPECT_FALSE(HwTopology::parse_spec("0x4").has_value());
  EXPECT_FALSE(HwTopology::parse_spec("4").has_value());
  EXPECT_FALSE(HwTopology::parse_spec("100000x100000").has_value());
}

// --- sysfs parsing ----------------------------------------------------------

TEST_F(SysfsFixture, SingleSocketNoNodeDir) {
  for (unsigned i = 0; i < 4; ++i) add_cpu(i, 0, static_cast<long>(i));
  add_noise();
  const HwTopology t = HwTopology::from_sysfs(root());
  EXPECT_EQ(t.source, TopoSource::kSysfs);
  EXPECT_EQ(t.num_cpus(), 4u);
  EXPECT_EQ(t.num_nodes, 1u);
  EXPECT_EQ(t.num_packages, 1u);
  EXPECT_EQ(t.num_cores, 4u);
  EXPECT_FALSE(t.smt);
}

TEST_F(SysfsFixture, TwoSocketWithNodes) {
  for (unsigned i = 0; i < 4; ++i) add_cpu(i, 0, static_cast<long>(i));
  for (unsigned i = 4; i < 8; ++i) add_cpu(i, 1, static_cast<long>(i - 4));
  add_node(0, "0-3");
  add_node(1, "4-7");
  const HwTopology t = HwTopology::from_sysfs(root());
  EXPECT_EQ(t.num_cpus(), 8u);
  EXPECT_EQ(t.num_nodes, 2u);
  EXPECT_EQ(t.num_packages, 2u);
  EXPECT_EQ(t.num_cores, 8u);  // same core_id on different packages = distinct
  EXPECT_EQ(find_cpu(t, 2)->node, 0u);
  EXPECT_EQ(find_cpu(t, 6)->node, 1u);
  EXPECT_NE(find_cpu(t, 0)->core, find_cpu(t, 4)->core);
}

TEST_F(SysfsFixture, SmtSiblingsShareCore) {
  // cpulist with a comma: node covers both sibling ranges.
  add_cpu(0, 0, 0);
  add_cpu(1, 0, 1);
  add_cpu(2, 0, 0);  // SMT sibling of cpu0
  add_cpu(3, 0, 1);  // SMT sibling of cpu1
  add_node(0, "0-1,2-3");
  const HwTopology t = HwTopology::from_sysfs(root());
  EXPECT_TRUE(t.smt);
  EXPECT_EQ(t.num_cores, 2u);
  EXPECT_EQ(find_cpu(t, 0)->core, find_cpu(t, 2)->core);
  EXPECT_EQ(find_cpu(t, 1)->core, find_cpu(t, 3)->core);
  EXPECT_NE(find_cpu(t, 0)->core, find_cpu(t, 1)->core);
}

TEST_F(SysfsFixture, HotplugHoleInCpuList) {
  add_cpu(0, 0, 0);
  add_cpu(1, 0, 1);
  // cpu2 offline/hotplugged out: directory absent entirely.
  add_cpu(3, 0, 3);
  add_node(0, "0-1,3");
  const HwTopology t = HwTopology::from_sysfs(root());
  EXPECT_EQ(t.num_cpus(), 3u);
  EXPECT_EQ(find_cpu(t, 2), nullptr);
  EXPECT_NE(find_cpu(t, 3), nullptr);
}

TEST_F(SysfsFixture, SparsePackageIdsAreDensified) {
  add_cpu(0, 3, 0);
  add_cpu(1, 7, 0);
  const HwTopology t = HwTopology::from_sysfs(root());
  EXPECT_EQ(t.num_packages, 2u);
  EXPECT_EQ(find_cpu(t, 0)->package, 0u);
  EXPECT_EQ(find_cpu(t, 1)->package, 1u);
}

TEST_F(SysfsFixture, MissingTopologyAttrsDegradePerCpu) {
  add_bare_cpu(0);
  add_bare_cpu(1);
  const HwTopology t = HwTopology::from_sysfs(root());
  EXPECT_EQ(t.source, TopoSource::kSysfs);
  EXPECT_EQ(t.num_cpus(), 2u);
  EXPECT_EQ(t.num_cores, 2u);  // core = own cpu id fallback
  EXPECT_FALSE(t.smt);
}

TEST_F(SysfsFixture, MissingTreeFallsBackToFlat) {
  const HwTopology t = HwTopology::from_sysfs(root() + "/does_not_exist");
  EXPECT_EQ(t.source, TopoSource::kFlat);
  EXPECT_GE(t.num_cpus(), 1u);
  EXPECT_EQ(t.num_nodes, 1u);
}

TEST_F(SysfsFixture, AffinityMaskRestrictsCpus) {
  for (unsigned i = 0; i < 8; ++i) add_cpu(i, i / 4, static_cast<long>(i % 4));
  add_node(0, "0-3");
  add_node(1, "4-7");
  const std::vector<unsigned> allowed = {1, 2, 5};
  const HwTopology t = HwTopology::from_sysfs(root(), allowed);
  EXPECT_EQ(t.num_cpus(), 3u);
  EXPECT_EQ(find_cpu(t, 0), nullptr);
  EXPECT_NE(find_cpu(t, 5), nullptr);
  EXPECT_EQ(t.num_nodes, 2u);
}

TEST(HwTopo, AffinityCpuCountPositive) {
  EXPECT_GE(affinity_cpu_count(), 1u);
  const auto cpus = affinity_cpus();
  EXPECT_EQ(cpus.size(), affinity_cpu_count());
  EXPECT_TRUE(std::is_sorted(cpus.begin(), cpus.end()));
}

TEST(HwTopo, DetectNeverFails) {
  const HwTopology t = HwTopology::detect();
  EXPECT_GE(t.num_cpus(), 1u);
  EXPECT_GE(t.num_nodes, 1u);
  const HwTopology& c = HwTopology::cached();
  EXPECT_EQ(c.num_cpus(), t.num_cpus());
}

// --- worker assignment ------------------------------------------------------

TEST(HwTopo, AssignFillsCoresBeforeSmtSiblings) {
  // 1 node, 2 cores, 2-way SMT: cpus (0,1)=core0, (2,3)=core1.
  const HwTopology t = HwTopology::emulated(1, 4, 2);
  const auto a = assign_workers(t, 4);
  ASSERT_EQ(a.size(), 4u);
  // First two workers land on distinct cores; SMT siblings only after.
  EXPECT_NE(a[0].core, a[1].core);
  EXPECT_EQ(a[2].core, a[0].core);
  EXPECT_EQ(a[3].core, a[1].core);
}

TEST(HwTopo, AssignFillsNodeBeforeNextNode) {
  const HwTopology t = HwTopology::emulated(2, 4);
  const auto a = assign_workers(t, 8);
  ASSERT_EQ(a.size(), 8u);
  for (unsigned w = 0; w < 4; ++w) EXPECT_EQ(a[w].node, 0u) << "worker " << w;
  for (unsigned w = 4; w < 8; ++w) EXPECT_EQ(a[w].node, 1u) << "worker " << w;
}

TEST(HwTopo, AssignWrapsWhenOversubscribed) {
  const HwTopology t = HwTopology::emulated(1, 2);
  const auto a = assign_workers(t, 5);
  ASSERT_EQ(a.size(), 5u);
  EXPECT_EQ(a[0].cpu, a[2].cpu);
  EXPECT_EQ(a[1].cpu, a[3].cpu);
  EXPECT_EQ(a[0].cpu, a[4].cpu);
}

// --- victim tables ----------------------------------------------------------

TEST(HwTopo, StealDistanceTiers) {
  const TopoCpu a{0, 0, 0, 0};
  const TopoCpu sibling{1, 0, 0, 0};
  const TopoCpu neighbor{2, 1, 0, 0};
  const TopoCpu remote{4, 2, 1, 1};
  EXPECT_EQ(steal_distance(a, sibling), StealDistance::kLocal);
  EXPECT_EQ(steal_distance(a, neighbor), StealDistance::kSameNode);
  EXPECT_EQ(steal_distance(a, remote), StealDistance::kRemote);
}

TEST(HwTopo, VictimListsAreDistanceSorted) {
  const HwTopology t = HwTopology::emulated(2, 4, 2);
  const auto a = assign_workers(t, 8);
  const VictimTable vt = make_victim_table(a);
  ASSERT_EQ(vt.n, 8u);
  EXPECT_TRUE(vt.has_remote());
  for (unsigned w = 0; w < vt.n; ++w) {
    const auto row = vt.of(w);
    ASSERT_EQ(row.size(), 7u);
    for (std::size_t i = 1; i < row.size(); ++i)
      EXPECT_LE(static_cast<int>(row[i - 1].dist), static_cast<int>(row[i].dist))
          << "worker " << w << " victim slot " << i;
    // remote_begin points at the first kRemote entry.
    const std::uint32_t rb = vt.remote_begin[w];
    for (std::uint32_t i = 0; i < rb; ++i)
      EXPECT_NE(row[i].dist, StealDistance::kRemote);
    for (std::uint32_t i = rb; i < row.size(); ++i)
      EXPECT_EQ(row[i].dist, StealDistance::kRemote);
    // Distance matrix agrees with the sorted list.
    for (const Victim& v : row)
      EXPECT_EQ(vt.distance(w, v.wid), v.dist);
  }
  // 8 workers over 2 nodes of 4: each worker sees 3 near, 4 remote victims.
  for (unsigned w = 0; w < vt.n; ++w) EXPECT_EQ(vt.remote_begin[w], 3u);
}

TEST(HwTopo, VictimTableFlatHasNoRemote) {
  const HwTopology t = HwTopology::flat(4);
  const auto a = assign_workers(t, 4);
  const VictimTable vt = make_victim_table(a);
  EXPECT_FALSE(vt.has_remote());
  for (unsigned w = 0; w < vt.n; ++w) {
    EXPECT_EQ(vt.remote_begin[w], 3u);
    for (const Victim& v : vt.of(w))
      EXPECT_EQ(v.dist, StealDistance::kSameNode);
  }
}

TEST(HwTopo, VictimTableSmtSiblingFirst) {
  // 1 node, 2 cores, 2-way SMT, 4 workers: worker w's first victim shares
  // its core.
  const HwTopology t = HwTopology::emulated(1, 4, 2);
  const auto a = assign_workers(t, 4);
  const VictimTable vt = make_victim_table(a);
  for (unsigned w = 0; w < 4; ++w) {
    const auto row = vt.of(w);
    EXPECT_EQ(row[0].dist, StealDistance::kLocal) << "worker " << w;
    EXPECT_EQ(a[row[0].wid].core, a[w].core) << "worker " << w;
  }
}

}  // namespace
}  // namespace paracosm::util
