// End-to-end equivalence of the parallel framework with the sequential
// engine: for every algorithm, thread count, split depth and batch mode, the
// ParaCOSM-processed stream must produce exactly the sequential ΔM totals,
// and the executors' bookkeeping must add up.
#include <gtest/gtest.h>

#include "paracosm/paracosm.hpp"
#include "csm/oracle.hpp"
#include "tests/test_support.hpp"

namespace paracosm::testing {
namespace {

using engine::BatchMode;
using engine::Scheduler;
using engine::Config;
using engine::ParaCosm;
using engine::StreamResult;

std::pair<std::uint64_t, std::uint64_t> sequential_totals(const std::string& name,
                                                          const SmallWorkload& wl) {
  auto alg = csm::make_algorithm(name);
  graph::DataGraph g = wl.graph;
  csm::SequentialEngine eng(*alg, wl.query, g);
  std::uint64_t pos = 0, neg = 0;
  for (const auto& upd : wl.stream) {
    const auto out = eng.process(upd);
    pos += out.positive;
    neg += out.negative;
  }
  return {pos, neg};
}

struct PcCase {
  std::string algorithm;
  unsigned threads;
  std::uint32_t split_depth;
  bool inter;
  BatchMode mode;
  std::uint64_t seed;
};

class ParaCosmEquivalence : public ::testing::TestWithParam<PcCase> {};

TEST_P(ParaCosmEquivalence, StreamTotalsMatchSequential) {
  const PcCase& c = GetParam();
  SmallWorkload wl = make_workload(c.seed, 36, 90, 3, 2, 5);
  const auto [pos, neg] = sequential_totals(c.algorithm, wl);

  auto alg = csm::make_algorithm(c.algorithm);
  Config cfg;
  cfg.threads = c.threads;
  cfg.split_depth = c.split_depth;
  cfg.inter_parallelism = c.inter;
  cfg.batch_mode = c.mode;
  graph::DataGraph g = wl.graph;
  ParaCosm pc(*alg, wl.query, g, cfg);
  const StreamResult result = pc.process_stream(wl.stream);

  EXPECT_EQ(result.positive, pos) << "positive matches diverge";
  EXPECT_EQ(result.negative, neg) << "negative matches diverge";
  EXPECT_FALSE(result.timed_out);
  if (c.inter) {
    EXPECT_GT(result.batches, 0u);
    EXPECT_EQ(result.classifier.total,
              result.safe_applied + result.unsafe_sequential);
  }
}

std::vector<PcCase> equivalence_cases() {
  std::vector<PcCase> cases;
  std::uint64_t seed = 101;
  for (const auto name : csm::algorithm_names()) {
    for (const unsigned threads : {1u, 2u, 4u}) {
      cases.push_back({std::string(name), threads, 3, true, BatchMode::kStrict, seed});
      cases.push_back({std::string(name), threads, 3, false, BatchMode::kStrict, seed});
      ++seed;
    }
    cases.push_back({std::string(name), 4, 0, true, BatchMode::kStrict, seed++});
    cases.push_back({std::string(name), 4, 16, true, BatchMode::kStrict, seed++});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ParaCosmEquivalence,
                         ::testing::ValuesIn(equivalence_cases()),
                         [](const ::testing::TestParamInfo<PcCase>& info) {
                           const PcCase& c = info.param;
                           return c.algorithm + "_t" + std::to_string(c.threads) +
                                  "_d" + std::to_string(c.split_depth) +
                                  (c.inter ? "_inter" : "_inner") + "_s" +
                                  std::to_string(c.seed);
                         });

TEST(ParaCosmSingleUpdate, ParallelSearchEqualsSequentialPerUpdate) {
  SmallWorkload wl = make_workload(777, 40, 120, 2, 1, 5);
  auto seq_alg = csm::make_algorithm("graphflow");
  graph::DataGraph g1 = wl.graph;
  csm::SequentialEngine eng(*seq_alg, wl.query, g1);

  auto par_alg = csm::make_algorithm("graphflow");
  Config cfg;
  cfg.threads = 4;
  cfg.split_depth = 2;
  graph::DataGraph g2 = wl.graph;
  ParaCosm pc(*par_alg, wl.query, g2, cfg);

  for (const auto& upd : wl.stream) {
    const auto a = eng.process(upd);
    const auto b = pc.process(upd);
    EXPECT_EQ(a.positive, b.positive);
    EXPECT_EQ(a.negative, b.negative);
    EXPECT_EQ(a.applied, b.applied);
  }
  EXPECT_TRUE(g1.same_structure(g2));
}

TEST(ParaCosmLoadBalance, StaticPartitionStillCorrect) {
  SmallWorkload wl = make_workload(888, 36, 100, 2, 1, 4);
  const auto [pos, neg] = sequential_totals("turboflux", wl);
  auto alg = csm::make_algorithm("turboflux");
  Config cfg;
  cfg.threads = 4;
  cfg.dynamic_balance = false;  // Figure 10 "unbalanced" baseline
  cfg.inter_parallelism = false;
  graph::DataGraph g = wl.graph;
  ParaCosm pc(*alg, wl.query, g, cfg);
  const StreamResult result = pc.process_stream(wl.stream);
  EXPECT_EQ(result.positive, pos);
  EXPECT_EQ(result.negative, neg);
}

TEST(ParaCosmTimeout, ExpiredDeadlineFlagsTimeoutAndStops) {
  SmallWorkload wl = make_workload(999, 48, 140, 1, 1, 5);
  auto alg = csm::make_algorithm("graphflow");
  Config cfg;
  cfg.threads = 2;
  graph::DataGraph g = wl.graph;
  ParaCosm pc(*alg, wl.query, g, cfg);
  const auto past = util::Clock::now() - std::chrono::seconds(1);
  const StreamResult result = pc.process_stream(wl.stream, past);
  EXPECT_TRUE(result.timed_out);
  EXPECT_LT(result.updates_processed, wl.stream.size());
}

TEST(ParaCosmStats, WorkerAccountingAddsUp) {
  SmallWorkload wl = make_workload(1234, 40, 120, 2, 1, 5);
  auto alg = csm::make_algorithm("graphflow");
  Config cfg;
  cfg.threads = 4;
  graph::DataGraph g = wl.graph;
  ParaCosm pc(*alg, wl.query, g, cfg);
  const StreamResult result = pc.process_stream(wl.stream);
  EXPECT_EQ(result.stats.workers.size(), 4u);
  EXPECT_GE(result.stats.simulated_makespan_ns(), result.stats.serial_ns);
  EXPECT_GE(result.stats.sequential_equivalent_ns(),
            result.stats.simulated_makespan_ns());
  std::uint64_t worker_matches = 0;
  for (const auto& w : result.stats.workers) worker_matches += w.matches;
  // Matches found by workers (inner executor) are those of unsafe updates.
  EXPECT_LE(worker_matches, result.delta_matches());
}

TEST(ParaCosmVertexOps, VertexInsertAndCascadingRemove) {
  SmallWorkload wl = make_workload(555, 24, 60, 2, 1, 4, 0.0, 0.0);
  auto alg = csm::make_algorithm("symbi");
  graph::DataGraph g = wl.graph;
  Config cfg;
  cfg.threads = 2;
  ParaCosm pc(*alg, wl.query, g, cfg);

  // Count matches through vertex 0's edges by deleting the vertex.
  graph::DataGraph mirror = g;
  const std::uint64_t before = csm::count_all_matches(wl.query, mirror);
  mirror.remove_vertex(0);
  const std::uint64_t after = csm::count_all_matches(wl.query, mirror);

  const auto out = pc.process(graph::GraphUpdate::remove_vertex(0));
  EXPECT_EQ(out.negative, before - after);
  EXPECT_FALSE(g.has_vertex(0));

  const auto out2 = pc.process(graph::GraphUpdate::insert_vertex(9000, 1));
  EXPECT_TRUE(out2.applied);
  EXPECT_TRUE(g.has_vertex(9000));
}

// The work-stealing scheduler must be a drop-in replacement: identical
// stream totals for every algorithm.
TEST(ParaCosmScheduler, WorkStealingMatchesSequential) {
  SmallWorkload wl = make_workload(6060, 36, 90, 2, 1, 5);
  for (const auto name : csm::algorithm_names()) {
    const auto [pos, neg] = sequential_totals(std::string(name), wl);
    auto alg = csm::make_algorithm(name);
    Config cfg;
    cfg.threads = 4;
    cfg.scheduler = Scheduler::kWorkStealing;
    graph::DataGraph g = wl.graph;
    ParaCosm pc(*alg, wl.query, g, cfg);
    const StreamResult r = pc.process_stream(wl.stream);
    EXPECT_EQ(r.positive, pos) << name;
    EXPECT_EQ(r.negative, neg) << name;
  }
}

// Paper-faithful batch mode: on these deterministic workloads (where the
// rare compositional corner case does not occur) it must agree with the
// sequential totals too, and never defer for conflicts.
TEST(ParaCosmBatchModes, PaperModeAgreesOnStandardWorkloads) {
  for (const std::uint64_t seed : {2024ULL, 2025ULL}) {
    SmallWorkload wl = make_workload(seed, 36, 90, 3, 2, 5);
    const auto [pos, neg] = sequential_totals("symbi", wl);
    auto alg = csm::make_algorithm("symbi");
    Config cfg;
    cfg.threads = 4;
    cfg.batch_mode = BatchMode::kPaper;
    graph::DataGraph g = wl.graph;
    ParaCosm pc(*alg, wl.query, g, cfg);
    const StreamResult r = pc.process_stream(wl.stream);
    EXPECT_EQ(r.positive, pos) << "seed " << seed;
    EXPECT_EQ(r.negative, neg) << "seed " << seed;
    EXPECT_EQ(r.deferred_conflicts, 0u);
  }
}

// Strict mode must defer the second of two safe updates sharing an endpoint
// within one batch — and still produce the correct result.
TEST(ParaCosmBatchModes, StrictModeDefersEndpointConflicts) {
  // Query over labels (0,1); data edges between label-5 vertices are always
  // stage-1 safe. Three safe inserts share vertex `hub`.
  graph::DataGraph g;
  g.add_vertex(0);
  g.add_vertex(1);
  const auto hub = g.add_vertex(5);
  const auto a = g.add_vertex(5);
  const auto b = g.add_vertex(5);
  const auto c = g.add_vertex(5);
  g.add_edge(0, 1, 0);
  graph::QueryGraph q({0, 1}, {{0, 1, 0}});

  const std::vector<graph::GraphUpdate> stream{
      graph::GraphUpdate::insert_edge(hub, a, 0),
      graph::GraphUpdate::insert_edge(hub, b, 0),
      graph::GraphUpdate::insert_edge(hub, c, 0),
  };
  auto alg = csm::make_algorithm("graphflow");
  Config cfg;
  cfg.threads = 2;
  cfg.batch_size = 3;
  cfg.batch_mode = BatchMode::kStrict;
  ParaCosm pc(*alg, q, g, cfg);
  const StreamResult r = pc.process_stream(stream);
  EXPECT_EQ(r.deferred_conflicts, 2u);  // one per re-batched suffix
  EXPECT_EQ(r.updates_processed, 3u);
  EXPECT_EQ(r.delta_matches(), 0u);
  EXPECT_TRUE(g.has_edge(hub, a));
  EXPECT_TRUE(g.has_edge(hub, b));
  EXPECT_TRUE(g.has_edge(hub, c));
}

// The match callback must deliver every ΔM mapping exactly once, and each
// delivered mapping must be a genuine subgraph-isomorphism embedding.
TEST(ParaCosmCallback, DeliversValidMappingsExactlyOnce) {
  SmallWorkload wl = make_workload(31415, 40, 110, 2, 1, 4, 0.3, 0.0);
  auto alg = csm::make_algorithm("turboflux");
  Config cfg;
  cfg.threads = 4;
  cfg.split_depth = 2;
  graph::DataGraph g = wl.graph;
  ParaCosm pc(*alg, wl.query, g, cfg);

  std::uint64_t delivered = 0;
  bool all_valid = true;
  pc.set_match_callback([&](std::span<const csm::Assignment> mapping) {
    ++delivered;
    if (mapping.size() != wl.query.num_vertices()) all_valid = false;
    // Injectivity + full edge preservation.
    std::vector<graph::VertexId> image(wl.query.num_vertices());
    for (const auto& a : mapping) image[a.qv] = a.dv;
    for (std::size_t i = 0; i < mapping.size(); ++i)
      for (std::size_t j = i + 1; j < mapping.size(); ++j)
        if (mapping[i].dv == mapping[j].dv) all_valid = false;
    for (const auto& e : wl.query.edges()) {
      const auto el = g.edge_label(image[e.u], image[e.v]);
      if (!el || *el != e.elabel) all_valid = false;
    }
  });

  const StreamResult r = pc.process_stream(wl.stream);
  EXPECT_EQ(delivered, r.delta_matches());
  EXPECT_TRUE(all_valid);
}

// Long-stream stress: interleave edge inserts/removes and vertex ops, and
// require the framework's final graph and cumulative ΔM to agree with the
// sequential engine on the identical stream.
TEST(ParaCosmStress, MixedOpsLongStreamMatchesSequential) {
  util::Rng rng(4242);
  graph::DataGraph base = graph::generate_erdos_renyi(48, 110, 3, 2, rng);
  auto q = graph::extract_query(base, 4, rng);
  ASSERT_TRUE(q.has_value());

  // Build a stream with all four op kinds (fresh vertices get connected).
  std::vector<graph::GraphUpdate> stream;
  graph::DataGraph sim = base;  // only to pick valid ops
  graph::VertexId next_vertex = sim.vertex_capacity();
  for (int i = 0; i < 400; ++i) {
    const double roll = rng.uniform();
    if (roll < 0.55) {
      const auto u = static_cast<graph::VertexId>(rng.bounded(sim.vertex_capacity()));
      const auto v = static_cast<graph::VertexId>(rng.bounded(sim.vertex_capacity()));
      const auto upd = graph::GraphUpdate::insert_edge(
          u, v, static_cast<graph::Label>(rng.bounded(2)));
      stream.push_back(upd);
      sim.apply(upd);
    } else if (roll < 0.85) {
      const auto edges = sim.edge_list();
      if (edges.empty()) continue;
      const auto& e = edges[rng.bounded(edges.size())];
      stream.push_back(graph::GraphUpdate::remove_edge(e.u, e.v, e.elabel));
      sim.remove_edge(e.u, e.v);
    } else if (roll < 0.95) {
      const auto upd = graph::GraphUpdate::insert_vertex(
          next_vertex++, static_cast<graph::Label>(rng.bounded(3)));
      stream.push_back(upd);
      sim.apply(upd);
    } else {
      const auto v = static_cast<graph::VertexId>(rng.bounded(sim.vertex_capacity()));
      if (!sim.has_vertex(v)) continue;
      stream.push_back(graph::GraphUpdate::remove_vertex(v));
      sim.remove_vertex(v);
    }
  }

  for (const auto name : csm::algorithm_names()) {
    auto seq_alg = csm::make_algorithm(name);
    graph::DataGraph g1 = base;
    csm::SequentialEngine eng(*seq_alg, *q, g1);
    std::uint64_t seq_pos = 0, seq_neg = 0;
    for (const auto& upd : stream) {
      const auto out = eng.process(upd);
      seq_pos += out.positive;
      seq_neg += out.negative;
    }

    auto par_alg = csm::make_algorithm(name);
    graph::DataGraph g2 = base;
    Config cfg;
    cfg.threads = 3;
    cfg.split_depth = 2;
    ParaCosm pc(*par_alg, *q, g2, cfg);
    const StreamResult r = pc.process_stream(stream);

    EXPECT_EQ(r.positive, seq_pos) << name;
    EXPECT_EQ(r.negative, seq_neg) << name;
    EXPECT_TRUE(g1.same_structure(g2)) << name;
  }
}

}  // namespace
}  // namespace paracosm::testing
