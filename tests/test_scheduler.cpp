// Randomized scheduler torture test: the lock-free runtime must be
// observably identical to sequential enumeration. For every update we
// collect the FULL match set (not just the count) through the match
// callback and require the delivered streams to be byte-identical across
//   sequential  ×  inner-dynamic  ×  inner-static  ×  work-stealing
// at 1/2/4/8 threads — exercising the deterministic per-worker-buffer merge
// (match_buffer.hpp) and the Chase–Lev termination protocol under real
// search trees. Degenerate shapes (empty tree, single seed) are covered
// explicitly; tiny spin budgets force the park/unpark path.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "paracosm/inner_executor.hpp"
#include "paracosm/steal_executor.hpp"
#include "paracosm/worker_pool.hpp"
#include "tests/test_support.hpp"

namespace paracosm::engine {
namespace {

using MatchSet = std::vector<std::vector<csm::Assignment>>;

/// Callback that records every delivered mapping.
struct Collector {
  MatchSet matches;
  std::function<void(std::span<const csm::Assignment>)> fn =
      [this](std::span<const csm::Assignment> m) {
        matches.emplace_back(m.begin(), m.end());
      };
};

bool mapping_less(const std::vector<csm::Assignment>& a,
                  const std::vector<csm::Assignment>& b) {
  return std::lexicographical_compare(
      a.begin(), a.end(), b.begin(), b.end(),
      [](const csm::Assignment& x, const csm::Assignment& y) {
        return x.qv != y.qv ? x.qv < y.qv : x.dv < y.dv;
      });
}

/// Sequential reference: expand every seed with a plain sink, then sort the
/// collected mappings with the executors' published (qv, dv) order.
MatchSet sequential_reference(const csm::CsmAlgorithm& alg,
                              const std::vector<csm::SearchTask>& seeds) {
  Collector ref;
  csm::MatchSink sink;
  sink.on_match = ref.fn;
  for (const csm::SearchTask& task : seeds) alg.expand(task, sink, nullptr);
  std::sort(ref.matches.begin(), ref.matches.end(), mapping_less);
  return ref.matches;
}

struct TortureCase {
  std::uint64_t seed;
  std::string_view algorithm;
  std::uint32_t split_depth;
};

class SchedulerTortureTest : public ::testing::TestWithParam<TortureCase> {};

TEST_P(SchedulerTortureTest, AllExecutorsDeliverIdenticalMatchSets) {
  const TortureCase& tc = GetParam();
  testing::SmallWorkload wl =
      testing::make_workload(tc.seed, 48, 150, 2, 1, 5, 0.0, 0.0);
  auto alg = csm::make_algorithm(tc.algorithm);
  alg->attach(wl.query, wl.graph);
  util::Rng rng(tc.seed ^ 0x5eedULL);
  auto stream = graph::make_insert_stream(wl.graph, 0.3, rng);
  ASSERT_FALSE(stream.empty());

  // Tiny spin budget: every run exercises park/unpark, not just spinning.
  const QueueKnobs knobs{.spin_iters = 8};
  struct Rig {
    std::unique_ptr<WorkerPool> pool;
    std::unique_ptr<InnerExecutor> inner_dyn;
    std::unique_ptr<InnerExecutor> inner_static;
    std::unique_ptr<StealingExecutor> stealing;
    std::unique_ptr<StealingExecutor> stealing_topo;  ///< topology-ordered sweep
  };
  // Policy-only emulated 2-node topology (never pins): the topology-aware
  // victim order must deliver the exact same byte-identical match stream as
  // the flat sweep — distance ordering is a performance policy, not a
  // semantic one (ISSUE 7 acceptance criterion).
  const util::HwTopology topo = util::HwTopology::emulated(2, 4);
  std::vector<Rig> rigs;
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    Rig rig;
    PoolOptions popts;
    popts.spin_iters = 8;
    popts.topology = &topo;
    rig.pool = std::make_unique<WorkerPool>(threads, popts);
    rig.inner_dyn = std::make_unique<InnerExecutor>(*rig.pool, tc.split_depth,
                                                    /*dynamic=*/true, knobs);
    rig.inner_static = std::make_unique<InnerExecutor>(*rig.pool, tc.split_depth,
                                                       /*dynamic=*/false, knobs);
    rig.stealing =
        std::make_unique<StealingExecutor>(*rig.pool, tc.split_depth, knobs);
    QueueKnobs topo_knobs = knobs;
    topo_knobs.victims = &rig.pool->victim_table();
    topo_knobs.topo_order = true;
    rig.stealing_topo =
        std::make_unique<StealingExecutor>(*rig.pool, tc.split_depth, topo_knobs);
    rigs.push_back(std::move(rig));
  }

  for (const auto& upd : stream) {
    ASSERT_TRUE(wl.graph.add_edge(upd.u, upd.v, upd.label));
    alg->on_edge_inserted(upd);
    std::vector<csm::SearchTask> seeds;
    alg->seeds(upd, seeds);

    const MatchSet expected = sequential_reference(*alg, seeds);
    for (Rig& rig : rigs) {
      const unsigned threads = rig.pool->size();
      {
        Collector got;
        const InnerRunResult r = rig.inner_dyn->run(*alg, seeds, {}, &got.fn);
        EXPECT_EQ(got.matches, expected) << "inner-dynamic t" << threads;
        EXPECT_EQ(r.matches, expected.size()) << "inner-dynamic t" << threads;
      }
      {
        Collector got;
        const InnerRunResult r = rig.inner_static->run(*alg, seeds, {}, &got.fn);
        EXPECT_EQ(got.matches, expected) << "inner-static t" << threads;
        EXPECT_EQ(r.matches, expected.size()) << "inner-static t" << threads;
      }
      {
        Collector got;
        const InnerRunResult r = rig.stealing->run(*alg, seeds, {}, &got.fn);
        EXPECT_EQ(got.matches, expected) << "stealing t" << threads;
        EXPECT_EQ(r.matches, expected.size()) << "stealing t" << threads;
      }
      {
        Collector got;
        const InnerRunResult r = rig.stealing_topo->run(*alg, seeds, {}, &got.fn);
        EXPECT_EQ(got.matches, expected) << "stealing-topo t" << threads;
        EXPECT_EQ(r.matches, expected.size()) << "stealing-topo t" << threads;
        // Per-distance counters partition successful steals.
        const ParallelStats& st = r.stats;
        EXPECT_EQ(st.total_steals_local() + st.total_steals_same_node() +
                      st.total_steals_remote(),
                  st.total_steals_succeeded())
            << "stealing-topo t" << threads;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SchedulerTortureTest,
    ::testing::Values(TortureCase{11, "graphflow", 3},
                      TortureCase{23, "symbi", 0},
                      TortureCase{37, "graphflow", 8},
                      TortureCase{59, "turboflux", 4}),
    [](const ::testing::TestParamInfo<TortureCase>& info) {
      return std::string(info.param.algorithm) + "_s" +
             std::to_string(info.param.seed) + "_d" +
             std::to_string(info.param.split_depth);
    });

TEST(SchedulerTorture, EmptyTreeIsANoOpOnEveryExecutor) {
  testing::SmallWorkload wl = testing::make_workload(3);
  auto alg = csm::make_algorithm("graphflow");
  alg->attach(wl.query, wl.graph);
  for (unsigned threads : {1u, 4u, 8u}) {
    WorkerPool pool(threads, 8);
    InnerExecutor inner(pool, 4, true, QueueKnobs{.spin_iters = 8});
    StealingExecutor stealing(pool, 4, QueueKnobs{.spin_iters = 8});
    Collector got;
    EXPECT_EQ(inner.run(*alg, {}, {}, &got.fn).matches, 0u);
    EXPECT_EQ(stealing.run(*alg, {}, {}, &got.fn).matches, 0u);
    EXPECT_TRUE(got.matches.empty());
  }
}

TEST(SchedulerTorture, SingleSeedMatchesSequential) {
  testing::SmallWorkload wl = testing::make_workload(91, 40, 130, 2, 1, 4, 0.0, 0.0);
  auto alg = csm::make_algorithm("graphflow");
  alg->attach(wl.query, wl.graph);
  util::Rng rng(17);
  auto stream = graph::make_insert_stream(wl.graph, 0.2, rng);
  WorkerPool pool(8, 8);
  InnerExecutor inner(pool, 4, true, QueueKnobs{.spin_iters = 8});
  StealingExecutor stealing(pool, 4, QueueKnobs{.spin_iters = 8});
  for (const auto& upd : stream) {
    ASSERT_TRUE(wl.graph.add_edge(upd.u, upd.v, upd.label));
    alg->on_edge_inserted(upd);
    std::vector<csm::SearchTask> seeds;
    alg->seeds(upd, seeds);
    if (seeds.empty()) continue;
    seeds.resize(1);  // a one-seed tree: everything hinges on splitting
    const MatchSet expected = sequential_reference(*alg, seeds);
    Collector a, b;
    EXPECT_EQ(inner.run(*alg, seeds, {}, &a.fn).matches, expected.size());
    EXPECT_EQ(stealing.run(*alg, seeds, {}, &b.fn).matches, expected.size());
    EXPECT_EQ(a.matches, expected);
    EXPECT_EQ(b.matches, expected);
  }
}

/// Repeated runs on one persistent executor must not leak state across runs
/// (warm deques, recycled nodes, counter export).
TEST(SchedulerTorture, PersistentQueueIsCleanAcrossRuns) {
  testing::SmallWorkload wl = testing::make_workload(77, 48, 150, 2, 1, 5, 0.0, 0.0);
  auto alg = csm::make_algorithm("symbi");
  alg->attach(wl.query, wl.graph);
  util::Rng rng(4);
  auto stream = graph::make_insert_stream(wl.graph, 0.3, rng);
  WorkerPool pool(4, 8);
  StealingExecutor stealing(pool, 3, QueueKnobs{.spin_iters = 8});
  for (const auto& upd : stream) {
    ASSERT_TRUE(wl.graph.add_edge(upd.u, upd.v, upd.label));
    alg->on_edge_inserted(upd);
    std::vector<csm::SearchTask> seeds;
    alg->seeds(upd, seeds);
    const MatchSet expected = sequential_reference(*alg, seeds);
    for (int rep = 0; rep < 3; ++rep) {
      Collector got;
      const InnerRunResult r = stealing.run(*alg, seeds, {}, &got.fn);
      ASSERT_EQ(r.matches, expected.size()) << "rep " << rep;
      ASSERT_EQ(got.matches, expected) << "rep " << rep;
    }
  }
}

}  // namespace
}  // namespace paracosm::engine
