// Randomized differential fuzzing: many small random workloads, every
// algorithm, sequential engine vs ParaCOSM vs the recompute oracle. Any
// divergence anywhere in the stack (index maintenance, classifier, batch
// semantics, executors) surfaces as a count mismatch here.
#include <gtest/gtest.h>

#include "paracosm/paracosm.hpp"
#include "tests/test_support.hpp"

namespace paracosm::testing {
namespace {

struct FuzzCase {
  std::uint64_t seed;
  std::uint32_t n, m, vlabels, elabels, qsize;
};

class FuzzDifferential : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(FuzzDifferential, AllEnginesAgreeWithOracle) {
  const FuzzCase& c = GetParam();
  SmallWorkload wl =
      make_workload(c.seed, c.n, c.m, c.vlabels, c.elabels, c.qsize, 0.4, 0.5);
  if (wl.query.num_vertices() == 0) GTEST_SKIP() << "workload construction failed";

  // Oracle pass: per-update expected deltas.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> expected;  // (pos, neg)
  {
    graph::DataGraph mirror = wl.graph;
    std::uint64_t before = csm::count_all_matches(wl.query, mirror);
    for (const auto& upd : wl.stream) {
      mirror.apply(upd);
      const std::uint64_t after = csm::count_all_matches(wl.query, mirror);
      if (upd.op == graph::UpdateOp::kInsertEdge)
        expected.emplace_back(after - before, 0);
      else
        expected.emplace_back(0, before - after);
      before = after;
    }
  }
  std::uint64_t want_pos = 0, want_neg = 0;
  for (const auto& [p, n2] : expected) {
    want_pos += p;
    want_neg += n2;
  }

  for (const auto name : csm::algorithm_names()) {
    if (name == "calig" && c.elabels > 1) continue;  // edge-label-blind
    // Sequential engine, update by update.
    {
      auto alg = csm::make_algorithm(name);
      graph::DataGraph g = wl.graph;
      csm::SequentialEngine eng(*alg, wl.query, g);
      for (std::size_t i = 0; i < wl.stream.size(); ++i) {
        const auto out = eng.process(wl.stream[i]);
        ASSERT_EQ(out.positive, expected[i].first)
            << name << " seed " << c.seed << " update " << i;
        ASSERT_EQ(out.negative, expected[i].second)
            << name << " seed " << c.seed << " update " << i;
      }
    }
    // Full framework, whole stream.
    {
      auto alg = csm::make_algorithm(name);
      graph::DataGraph g = wl.graph;
      engine::Config cfg;
      cfg.threads = 1 + static_cast<unsigned>(c.seed % 4);
      cfg.split_depth = static_cast<std::uint32_t>(c.seed % 6);
      cfg.batch_size = 1 + static_cast<unsigned>(c.seed % 50);
      engine::ParaCosm pc(*alg, wl.query, g, cfg);
      const auto r = pc.process_stream(wl.stream);
      EXPECT_EQ(r.positive, want_pos) << name << " seed " << c.seed;
      EXPECT_EQ(r.negative, want_neg) << name << " seed " << c.seed;
    }
  }
}

std::vector<FuzzCase> fuzz_cases() {
  std::vector<FuzzCase> cases;
  util::Rng rng(0xf0cca);
  for (std::uint64_t i = 0; i < 24; ++i) {
    FuzzCase c;
    c.seed = 10000 + i * 137;
    c.n = static_cast<std::uint32_t>(rng.range(12, 48));
    c.m = static_cast<std::uint32_t>(rng.range(c.n, 3 * c.n));
    c.vlabels = static_cast<std::uint32_t>(rng.range(1, 4));
    c.elabels = static_cast<std::uint32_t>(rng.range(1, 3));
    c.qsize = static_cast<std::uint32_t>(rng.range(3, 6));
    cases.push_back(c);
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(RandomWorkloads, FuzzDifferential,
                         ::testing::ValuesIn(fuzz_cases()),
                         [](const ::testing::TestParamInfo<FuzzCase>& info) {
                           return "seed" + std::to_string(info.param.seed);
                         });

}  // namespace
}  // namespace paracosm::testing
