// Tier-1 differential fuzz smoke: 32 fixed seeds through the full
// verification matrix of src/verify — every CSM algorithm × {sequential,
// inner-parallel, batch} executor × {1,2,4,8} threads, reconciled against
// the recompute oracle at full mapping granularity. Any divergence anywhere
// in the stack (index maintenance, classifier, batch semantics, executors,
// match delivery) fails here with a replayable seed.
//
// The long-running sweep lives behind the `fuzz_soak` CTest configuration
// (tests/CMakeLists.txt) and in tools/paracosm_fuzz; this suite is the
// <30 s tier-1 slice (label `fuzz_smoke`).
#include <gtest/gtest.h>

#include "verify/fuzzer.hpp"

namespace paracosm::verify {
namespace {

class FuzzSmoke : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSmoke, FullMatrixAgreesWithOracle) {
  const std::uint64_t seed = GetParam();
  const FuzzCase c = generate_case(seed);
  ASSERT_FALSE(c.queries.empty()) << "seed " << seed << ": no query extracted";
  ASSERT_FALSE(c.stream.empty()) << "seed " << seed << ": empty stream";

  CheckOptions opts;
  opts.stop_at_first = false;  // report every divergent cell, not just one
  for (const Divergence& d : check_case(c, opts)) ADD_FAILURE() << d.to_string();
}

// Seeds 0..31: a fixed slice of the 200-seed acceptance sweep
// (`paracosm_fuzz --seeds 200`), so a local failure always reproduces with
// `paracosm_fuzz --seed N --shrink`.
std::vector<std::uint64_t> smoke_seeds() {
  std::vector<std::uint64_t> seeds(32);
  for (std::uint64_t i = 0; i < seeds.size(); ++i) seeds[i] = i;
  return seeds;
}

INSTANTIATE_TEST_SUITE_P(SeededCases, FuzzSmoke, ::testing::ValuesIn(smoke_seeds()),
                         [](const ::testing::TestParamInfo<std::uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace paracosm::verify
