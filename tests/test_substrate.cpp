// Property tests for the matching substrate: the label-partitioned adjacency
// must be observationally identical to a naive reference under randomized
// insert/remove streams, the incrementally maintained NLF (segment widths +
// packed signature) must equal the O(d) recount after every update, label
// buckets must stay exact under churn-driven lazy compaction, and the
// epoch-stamped used-check must agree with the linear scan it replaced.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "csm/scratch.hpp"
#include "graph/data_graph.hpp"
#include "graph/generators.hpp"
#include "graph/nlf_signature.hpp"
#include "graph/query_graph.hpp"
#include "util/rng.hpp"

namespace paracosm::testing {
namespace {

using graph::DataGraph;
using graph::Label;
using graph::Neighbor;
using graph::VertexId;

/// Naive reference model: labels + alive set + edge map.
struct RefGraph {
  std::vector<std::optional<Label>> labels;  // nullopt = dead/absent
  std::map<std::pair<VertexId, VertexId>, Label> edges;  // key u < v

  static std::pair<VertexId, VertexId> key(VertexId u, VertexId v) {
    return {std::min(u, v), std::max(u, v)};
  }
  [[nodiscard]] bool alive(VertexId v) const {
    return v < labels.size() && labels[v].has_value();
  }
  [[nodiscard]] std::optional<Label> edge_label(VertexId u, VertexId v) const {
    const auto it = edges.find(key(u, v));
    return it == edges.end() ? std::nullopt : std::optional<Label>(it->second);
  }
};

void check_vertex_invariants(const DataGraph& g, const RefGraph& ref, VertexId v) {
  if (!ref.alive(v)) return;
  // Reference adjacency (neighbor -> elabel) and NLF of v.
  std::map<VertexId, Label> adj;
  std::map<Label, std::uint32_t> nlf;
  for (const auto& [key, el] : ref.edges) {
    VertexId other = graph::kInvalidVertex;
    if (key.first == v) other = key.second;
    if (key.second == v) other = key.first;
    if (other == graph::kInvalidVertex) continue;
    adj[other] = el;
    ++nlf[*ref.labels[other]];
  }

  ASSERT_EQ(g.degree(v), adj.size());
  const auto nbrs = g.neighbors(v);
  std::set<VertexId> seen;
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    const auto it = adj.find(nbrs[i].v);
    ASSERT_NE(it, adj.end()) << "phantom neighbor";
    EXPECT_EQ(it->second, nbrs[i].elabel);
    EXPECT_TRUE(seen.insert(nbrs[i].v).second) << "duplicate neighbor";
    if (i > 0) {
      // Canonical (neighbor label, id) order.
      const Label pl = g.label(nbrs[i - 1].v);
      const Label cl = g.label(nbrs[i].v);
      EXPECT_TRUE(pl < cl || (pl == cl && nbrs[i - 1].v < nbrs[i].v))
          << "adjacency not sorted by (label, id)";
    }
  }

  // NLF: cache == recount == reference, over present AND absent labels.
  std::array<std::uint32_t, graph::kNlfSigLanes> lanes{};
  for (Label l = 0; l < 12; ++l) {
    const auto it = nlf.find(l);
    const std::uint32_t want = it == nlf.end() ? 0 : it->second;
    EXPECT_EQ(g.nlf(v, l), want);
    EXPECT_EQ(g.nlf_recount(v, l), want);
    const auto seg = g.neighbors_with_label(v, l);
    EXPECT_EQ(seg.size(), want);
    for (const auto& nb : seg) EXPECT_EQ(g.label(nb.v), l);
    lanes[graph::nlf_sig_lane(l)] += want;
  }
  // Signature must equal the one rebuilt from exact lane totals.
  graph::NlfSig want_sig = 0;
  for (unsigned lane = 0; lane < graph::kNlfSigLanes; ++lane)
    want_sig = graph::nlf_sig_with_lane(want_sig, lane, lanes[lane]);
  EXPECT_EQ(g.nlf_signature(v), want_sig);
}

void check_graph_matches_reference(const DataGraph& g, const RefGraph& ref,
                                   util::Rng& rng) {
  ASSERT_EQ(g.num_edges(), ref.edges.size());
  std::uint32_t alive = 0;
  for (VertexId v = 0; v < ref.labels.size(); ++v)
    if (ref.alive(v)) ++alive;
  ASSERT_EQ(g.num_vertices(), alive);

  // Every reference edge is present with the right label; random pairs agree.
  for (const auto& [key, el] : ref.edges) {
    ASSERT_EQ(g.edge_label(key.first, key.second), std::optional<Label>(el));
    ASSERT_EQ(g.edge_label(key.second, key.first), std::optional<Label>(el));
  }
  const std::uint32_t cap = g.vertex_capacity();
  for (int i = 0; i < 64; ++i) {
    const auto u = static_cast<VertexId>(rng.bounded(cap + 2));
    const auto v = static_cast<VertexId>(rng.bounded(cap + 2));
    EXPECT_EQ(g.edge_label(u, v), ref.edge_label(u, v));
    EXPECT_EQ(g.has_edge(u, v), ref.edge_label(u, v).has_value());
  }

  // Label buckets: view, materialized list, and O(1) count are exact.
  for (Label l = 0; l < 12; ++l) {
    std::set<VertexId> want;
    for (VertexId v = 0; v < ref.labels.size(); ++v)
      if (ref.alive(v) && *ref.labels[v] == l) want.insert(v);
    EXPECT_EQ(g.count_vertices_with_label(l), want.size());
    std::set<VertexId> via_view;
    for (const VertexId v : g.label_view(l))
      EXPECT_TRUE(via_view.insert(v).second) << "duplicate in label view";
    EXPECT_EQ(via_view, want);
    const auto materialized = g.vertices_with_label(l);
    EXPECT_EQ(std::set<VertexId>(materialized.begin(), materialized.end()), want);
  }
}

TEST(Substrate, AdjacencyMatchesReferenceUnderRandomStreams) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    util::Rng rng(seed);
    DataGraph g;
    RefGraph ref;
    const std::uint32_t max_v = 48;
    for (int step = 0; step < 1500; ++step) {
      const auto u = static_cast<VertexId>(rng.bounded(max_v));
      const auto v = static_cast<VertexId>(rng.bounded(max_v));
      const auto l = static_cast<Label>(rng.bounded(10));
      const double dice = rng.uniform();
      if (dice < 0.25) {  // insert vertex
        g.add_vertex_with_id(u, l);
        if (u >= ref.labels.size()) ref.labels.resize(u + 1);
        if (!ref.labels[u].has_value()) {
          ref.labels[u] = l;
        } else if (*ref.labels[u] != l) {
          ref.labels[u] = l;  // relabel (edges keep their labels)
        }
      } else if (dice < 0.60) {  // insert edge
        const bool ok = g.add_edge(u, v, l);
        const bool expect_ok = u != v && ref.alive(u) && ref.alive(v) &&
                               !ref.edge_label(u, v).has_value();
        EXPECT_EQ(ok, expect_ok);
        if (ok) ref.edges[RefGraph::key(u, v)] = l;
      } else if (dice < 0.85) {  // remove edge
        const auto got = g.remove_edge(u, v);
        EXPECT_EQ(got, ref.edge_label(u, v));
        if (got) ref.edges.erase(RefGraph::key(u, v));
      } else {  // remove vertex
        const std::size_t removed = g.remove_vertex(u);
        if (ref.alive(u)) {
          std::size_t want = 0;
          for (auto it = ref.edges.begin(); it != ref.edges.end();) {
            if (it->first.first == u || it->first.second == u) {
              it = ref.edges.erase(it);
              ++want;
            } else {
              ++it;
            }
          }
          EXPECT_EQ(removed, want);
          ref.labels[u] = std::nullopt;
        } else {
          EXPECT_EQ(removed, 0u);
        }
      }
      if (step % 50 == 0) check_graph_matches_reference(g, ref, rng);
      // NLF/adjacency invariants at the touched vertices after every step.
      check_vertex_invariants(g, ref, u);
      check_vertex_invariants(g, ref, v);
    }
    check_graph_matches_reference(g, ref, rng);
    for (VertexId v = 0; v < g.vertex_capacity(); ++v)
      check_vertex_invariants(g, ref, v);
  }
}

TEST(Substrate, CachedNlfEqualsRecountOnGeneratedGraphs) {
  util::Rng rng(7);
  DataGraph g = graph::generate_erdos_renyi(512, 4096, 9, 3, rng);
  // Churn some edges, checking endpoint NLF cache == recount after each op.
  for (int step = 0; step < 2000; ++step) {
    const auto u = static_cast<VertexId>(rng.bounded(512));
    const auto v = static_cast<VertexId>(rng.bounded(512));
    if (rng.chance(0.5))
      g.add_edge(u, v, static_cast<Label>(rng.bounded(3)));
    else
      g.remove_edge(u, v);
    for (Label l = 0; l < 9; ++l) {
      ASSERT_EQ(g.nlf(u, l), g.nlf_recount(u, l));
      ASSERT_EQ(g.nlf(v, l), g.nlf_recount(v, l));
    }
  }
}

TEST(Substrate, SignatureContainmentIsSound) {
  // If the exact NLF of data vertex v dominates query vertex u's NLF, the
  // packed signatures must also report containment (no false rejects).
  util::Rng rng(11);
  DataGraph g = graph::generate_erdos_renyi(256, 2048, 6, 2, rng);
  for (int i = 0; i < 200; ++i) {
    const auto q = graph::extract_query(g, 2 + rng.bounded(4), rng);
    if (!q) continue;
    for (VertexId u = 0; u < q->num_vertices(); ++u) {
      for (int probe = 0; probe < 32; ++probe) {
        const auto v = static_cast<VertexId>(rng.bounded(256));
        bool dominates = true;
        for (const auto& [l, need] : q->nlf_items(u))
          if (g.nlf(v, l) < need) dominates = false;
        if (dominates) {
          EXPECT_TRUE(graph::nlf_sig_covers(g.nlf_signature(v), q->nlf_signature(u)));
        }
      }
    }
  }
}

TEST(Substrate, LabelBucketsCompactUnderChurn) {
  // Heavy add/remove cycles on one label: counts and views must stay exact
  // and the bucket must not grow without bound (dead fraction is capped).
  util::Rng rng(13);
  DataGraph g;
  std::set<VertexId> alive;
  for (int step = 0; step < 5000; ++step) {
    const auto v = static_cast<VertexId>(rng.bounded(64));
    if (rng.chance(0.5)) {
      g.add_vertex_with_id(v, 1);
      alive.insert(v);
    } else {
      g.remove_vertex(v);
      alive.erase(v);
    }
    ASSERT_EQ(g.count_vertices_with_label(1), alive.size());
  }
  std::set<VertexId> got;
  for (const VertexId v : g.label_view(1)) got.insert(v);
  EXPECT_EQ(got, alive);
}

TEST(Substrate, EpochUsedCheckMatchesLinearScan) {
  util::Rng rng(17);
  csm::SearchScratch s;
  for (int task = 0; task < 300; ++task) {
    const std::uint32_t cap = 64 + static_cast<std::uint32_t>(rng.bounded(64));
    s.prepare(8, cap);
    std::vector<csm::Assignment> assigned;
    // Random injective partial match with interleaved probes and backtracks.
    for (int op = 0; op < 40; ++op) {
      const double dice = rng.uniform();
      if (dice < 0.4 && assigned.size() < 8) {
        const auto dv = static_cast<VertexId>(rng.bounded(cap));
        bool dup = false;
        for (const auto& a : assigned) dup = dup || a.dv == dv;
        if (!dup) {
          assigned.push_back({static_cast<VertexId>(assigned.size()), dv});
          s.mark_used(dv);
        }
      } else if (dice < 0.6 && !assigned.empty()) {
        s.clear_used(assigned.back().dv);
        assigned.pop_back();
      } else {
        const auto w = static_cast<VertexId>(rng.bounded(cap));
        bool linear = false;
        for (const auto& a : assigned) linear = linear || a.dv == w;
        ASSERT_EQ(s.is_used(w), linear);
      }
    }
  }
}

TEST(Substrate, EpochUsedSurvivesManyPrepares) {
  // Stale marks from earlier tasks must never leak into a fresh task.
  csm::SearchScratch s;
  for (int task = 0; task < 10000; ++task) {
    s.prepare(4, 32);
    ASSERT_FALSE(s.is_used(task % 32));
    s.mark_used(task % 32);
    ASSERT_TRUE(s.is_used(task % 32));
  }
}

TEST(Substrate, SameStructureAgreesAcrossInsertionOrders) {
  // The canonical (label, id) adjacency order must make structural equality
  // insensitive to the order edges were inserted in.
  util::Rng rng(19);
  DataGraph a;
  DataGraph b;
  for (int i = 0; i < 32; ++i) {
    const auto l = static_cast<Label>(rng.bounded(5));
    a.add_vertex(l);
    b.add_vertex(l);
  }
  std::vector<graph::Edge> edges;
  for (int i = 0; i < 100; ++i) {
    const auto u = static_cast<VertexId>(rng.bounded(32));
    const auto v = static_cast<VertexId>(rng.bounded(32));
    const auto l = static_cast<Label>(rng.bounded(3));
    if (a.add_edge(u, v, l)) edges.push_back({u, v, l});
  }
  rng.shuffle(edges);
  for (const auto& e : edges) b.add_edge(e.u, e.v, e.elabel);
  EXPECT_TRUE(a.same_structure(b));
  EXPECT_TRUE(b.same_structure(a));
}

}  // namespace
}  // namespace paracosm::testing
