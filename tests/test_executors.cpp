// Tests for the parallel building blocks: Chase–Lev deque, task queue,
// worker pool, and the inner-update executor (Algorithm 2).
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <thread>
#include <vector>

#include "paracosm/cl_deque.hpp"
#include "paracosm/inner_executor.hpp"
#include "paracosm/steal_executor.hpp"
#include "paracosm/task_queue.hpp"
#include "paracosm/worker_pool.hpp"
#include "tests/test_support.hpp"

namespace paracosm::engine {
namespace {

csm::SearchTask make_task(std::uint32_t depth) {
  csm::SearchTask t;
  for (std::uint32_t i = 0; i < depth; ++i) t.assigned.push_back({i, i});
  return t;
}

TEST(ChaseLevDeque, OwnerPopsLifoThiefStealsFifo) {
  std::array<int, 3> vals = {10, 20, 30};
  ChaseLevDeque<int*> dq;
  for (int& v : vals) dq.push_bottom(&v);
  EXPECT_EQ(dq.size_approx(), 3u);
  EXPECT_EQ(dq.steal_top(), &vals[0]);   // FIFO from the top
  EXPECT_EQ(dq.pop_bottom(), &vals[2]);  // LIFO from the bottom
  EXPECT_EQ(dq.pop_bottom(), &vals[1]);
  EXPECT_EQ(dq.pop_bottom(), nullptr);
  EXPECT_EQ(dq.steal_top(), nullptr);
  EXPECT_TRUE(dq.empty_approx());
}

TEST(ChaseLevDeque, GrowsPastInitialCapacityPreservingOrder) {
  constexpr int kItems = 1000;
  std::vector<int> vals(kItems);
  ChaseLevDeque<int*> dq(8);
  const std::size_t cap0 = dq.capacity();
  for (int i = 0; i < kItems; ++i) dq.push_bottom(&vals[i]);
  EXPECT_GT(dq.capacity(), cap0);
  EXPECT_EQ(dq.size_approx(), static_cast<std::size_t>(kItems));
  for (int i = 0; i < kItems; ++i) EXPECT_EQ(dq.steal_top(), &vals[i]);
  EXPECT_EQ(dq.steal_top(), nullptr);
}

TEST(ChaseLevDeque, ConcurrentStealsClaimEveryElementExactlyOnce) {
  constexpr int kItems = 20000;
  constexpr int kThieves = 3;
  std::vector<int> vals(kItems);
  std::vector<std::atomic<int>> claimed(kItems);
  ChaseLevDeque<int*> dq;

  std::atomic<bool> done{false};
  std::atomic<int> total{0};
  std::vector<std::thread> thieves;
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      while (!done.load(std::memory_order_acquire) || !dq.empty_approx()) {
        if (int* p = dq.steal_top()) {
          claimed[static_cast<std::size_t>(p - vals.data())].fetch_add(1);
          total.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  // Owner: interleave pushes with occasional pops.
  for (int i = 0; i < kItems; ++i) {
    dq.push_bottom(&vals[i]);
    if ((i & 7) == 0) {
      if (int* p = dq.pop_bottom()) {
        claimed[static_cast<std::size_t>(p - vals.data())].fetch_add(1);
        total.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  done.store(true, std::memory_order_release);
  for (auto& t : thieves) t.join();
  while (int* p = dq.pop_bottom()) {  // anything the thieves left behind
    claimed[static_cast<std::size_t>(p - vals.data())].fetch_add(1);
    total.fetch_add(1, std::memory_order_relaxed);
  }
  EXPECT_EQ(total.load(), kItems);
  for (int i = 0; i < kItems; ++i) EXPECT_EQ(claimed[i].load(), 1) << "item " << i;
}

TEST(TaskQueue, SeedTryPopRetireSingleThread) {
  TaskQueue queue(1);
  queue.seed(make_task(2));
  queue.seed(make_task(3));
  EXPECT_EQ(queue.approx_size(), 2u);
  EXPECT_EQ(queue.in_flight(), 2);
  auto t1 = queue.try_pop();
  ASSERT_TRUE(t1.has_value());
  EXPECT_EQ(t1->depth(), 2u);  // FIFO
  queue.retire();
  auto t2 = queue.pop_or_finish(0);
  ASSERT_TRUE(t2.has_value());
  EXPECT_EQ(t2->depth(), 3u);
  queue.retire();
  EXPECT_EQ(queue.in_flight(), 0);
  EXPECT_FALSE(queue.pop_or_finish(0).has_value());
}

TEST(TaskQueue, TryPopOnEmptyReturnsNullopt) {
  TaskQueue queue(4);
  EXPECT_FALSE(queue.try_pop().has_value());
  EXPECT_FALSE(queue.pop_or_finish(2).has_value());
}

TEST(TaskQueue, OwnerPushIsLifoForOwnerFifoForTryPop) {
  TaskQueue queue(2);
  queue.push(0, make_task(1));
  queue.push(0, make_task(2));
  queue.push(0, make_task(3));
  auto own = queue.pop_or_finish(0);
  ASSERT_TRUE(own.has_value());
  EXPECT_EQ(own->depth(), 3u);  // owner pops its own deque LIFO
  auto stolen = queue.pop_or_finish(1);
  ASSERT_TRUE(stolen.has_value());
  EXPECT_EQ(stolen->depth(), 1u);  // thief steals the oldest
  queue.retire();
  queue.retire();
  auto last = queue.pop_or_finish(1);
  ASSERT_TRUE(last.has_value());
  queue.retire();
  EXPECT_EQ(queue.in_flight(), 0);
}

TEST(TaskQueue, MpmcStressCompletesAllTasks) {
  constexpr unsigned kWorkers = 4;
  TaskQueue queue(kWorkers, QueueKnobs{.spin_iters = 16});
  constexpr int kSeeds = 64;
  constexpr int kChildrenPerSeed = 16;
  for (int i = 0; i < kSeeds; ++i) queue.seed(make_task(1));

  std::atomic<int> executed{0};
  std::vector<std::thread> workers;
  for (unsigned w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      while (auto task = queue.pop_or_finish(w)) {
        if (task->depth() == 1)
          for (int c = 0; c < kChildrenPerSeed; ++c) queue.push(w, make_task(2));
        executed.fetch_add(1, std::memory_order_relaxed);
        queue.retire();
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(executed.load(), kSeeds + kSeeds * kChildrenPerSeed);
  EXPECT_EQ(queue.in_flight(), 0);
  EXPECT_EQ(queue.approx_size(), 0u);

  // Scheduler counters drained into WorkerStats.
  WorkerStats ws;
  for (unsigned w = 0; w < kWorkers; ++w) queue.export_counters(w, ws);
  EXPECT_GE(ws.steals_attempted, ws.steals_succeeded);
}

TEST(MutexTaskQueue, BaselineKeepsOldContract) {
  MutexTaskQueue queue;
  queue.push(make_task(2));
  queue.push(make_task(3));
  EXPECT_EQ(queue.approx_size(), 2u);
  EXPECT_EQ(queue.in_flight(), 2);
  auto t1 = queue.try_pop();
  ASSERT_TRUE(t1.has_value());
  EXPECT_EQ(t1->depth(), 2u);  // FIFO
  queue.retire();
  auto t2 = queue.pop_or_finish();
  ASSERT_TRUE(t2.has_value());
  queue.retire();
  EXPECT_EQ(queue.in_flight(), 0);
  EXPECT_FALSE(queue.pop_or_finish().has_value());
}

TEST(MutexTaskQueue, MpmcStressCompletesAllTasks) {
  MutexTaskQueue queue;
  constexpr int kSeeds = 64;
  constexpr int kChildrenPerSeed = 16;
  for (int i = 0; i < kSeeds; ++i) queue.push(make_task(1));

  std::atomic<int> executed{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&] {
      while (auto task = queue.pop_or_finish()) {
        if (task->depth() == 1)
          for (int c = 0; c < kChildrenPerSeed; ++c) queue.push(make_task(2));
        executed.fetch_add(1, std::memory_order_relaxed);
        queue.retire();
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(executed.load(), kSeeds + kSeeds * kChildrenPerSeed);
  EXPECT_EQ(queue.in_flight(), 0);
}

TEST(WorkerPool, RunsJobOnEveryWorker) {
  WorkerPool pool(5);
  EXPECT_EQ(pool.size(), 5u);
  std::vector<std::atomic<int>> hits(5);
  pool.run([&](unsigned wid) { hits[wid].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(WorkerPool, SequentialRunsReuseWorkers) {
  WorkerPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round)
    pool.run([&](unsigned) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 150);
}

TEST(WorkerPool, ZeroThreadsClampedToOne) {
  WorkerPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  bool ran = false;
  pool.run([&](unsigned) { ran = true; });
  EXPECT_TRUE(ran);
}

TEST(WorkerPool, ReportsDispatchOverhead) {
  WorkerPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 10; ++round) {
    pool.run([&](unsigned) { total.fetch_add(1); });
    EXPECT_GE(pool.last_dispatch_ns(), 0);
  }
  EXPECT_EQ(total.load(), 30);
}

TEST(WorkerPool, ParksWhenSpinBudgetIsZero) {
  WorkerPool pool(2, /*spin_iters=*/0);
  const std::uint64_t parks0 = pool.total_parks();
  std::atomic<int> total{0};
  for (int round = 0; round < 5; ++round)
    pool.run([&](unsigned) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 10);
  // With no spin window every worker must have parked at least once.
  EXPECT_GT(pool.total_parks(), parks0);
}

struct ExecCase {
  unsigned threads;
  std::uint32_t split_depth;
  bool dynamic;
};

class InnerExecutorTest : public ::testing::TestWithParam<ExecCase> {};

TEST_P(InnerExecutorTest, MatchesSequentialEnumeration) {
  const ExecCase& c = GetParam();
  testing::SmallWorkload wl = testing::make_workload(321, 48, 140, 2, 1, 5, 0.0, 0.0);
  auto alg = csm::make_algorithm("graphflow");
  alg->attach(wl.query, wl.graph);

  // Collect per-update seeds over a synthetic set of probe edges: use real
  // stream updates applied to the graph.
  util::Rng rng(5);
  auto stream = graph::make_insert_stream(wl.graph, 0.25, rng);
  WorkerPool pool(c.threads);
  InnerExecutor executor(pool, c.split_depth, c.dynamic);

  for (const auto& upd : stream) {
    ASSERT_TRUE(wl.graph.add_edge(upd.u, upd.v, upd.label));
    alg->on_edge_inserted(upd);
    std::vector<csm::SearchTask> seeds;
    alg->seeds(upd, seeds);

    csm::MatchSink seq;
    for (const auto& task : seeds) alg->expand(task, seq, nullptr);

    const InnerRunResult par = executor.run(*alg, seeds);
    EXPECT_EQ(par.matches, seq.matches);
    EXPECT_FALSE(par.timed_out);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, InnerExecutorTest,
    ::testing::Values(ExecCase{1, 4, true}, ExecCase{2, 4, true},
                      ExecCase{4, 0, true}, ExecCase{4, 2, true},
                      ExecCase{4, 8, true}, ExecCase{8, 3, true},
                      ExecCase{4, 4, false}, ExecCase{2, 0, false}),
    [](const ::testing::TestParamInfo<ExecCase>& info) {
      return "t" + std::to_string(info.param.threads) + "_d" +
             std::to_string(info.param.split_depth) +
             (info.param.dynamic ? "_dyn" : "_static");
    });

class StealingExecutorTest
    : public ::testing::TestWithParam<std::pair<unsigned, std::uint32_t>> {};

TEST_P(StealingExecutorTest, MatchesSequentialEnumeration) {
  const auto& [threads, split_depth] = GetParam();
  testing::SmallWorkload wl = testing::make_workload(876, 48, 140, 2, 1, 5, 0.0, 0.0);
  auto alg = csm::make_algorithm("symbi");
  alg->attach(wl.query, wl.graph);
  util::Rng rng(9);
  auto stream = graph::make_insert_stream(wl.graph, 0.25, rng);
  WorkerPool pool(threads);
  StealingExecutor executor(pool, split_depth);
  for (const auto& upd : stream) {
    ASSERT_TRUE(wl.graph.add_edge(upd.u, upd.v, upd.label));
    alg->on_edge_inserted(upd);
    std::vector<csm::SearchTask> seeds;
    alg->seeds(upd, seeds);
    csm::MatchSink seq;
    for (const auto& task : seeds) alg->expand(task, seq, nullptr);
    const InnerRunResult par = executor.run(*alg, seeds);
    EXPECT_EQ(par.matches, seq.matches);
    EXPECT_FALSE(par.timed_out);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, StealingExecutorTest,
                         ::testing::Values(std::pair{1u, 4u}, std::pair{2u, 0u},
                                           std::pair{4u, 2u}, std::pair{4u, 8u},
                                           std::pair{8u, 3u}),
                         [](const auto& info) {
                           return "t" + std::to_string(info.param.first) + "_d" +
                                  std::to_string(info.param.second);
                         });

TEST(StealingExecutor, EmptySeedsAreANoOp) {
  WorkerPool pool(2);
  StealingExecutor executor(pool, 4);
  auto alg = csm::make_algorithm("graphflow");
  testing::SmallWorkload wl = testing::make_workload(2);
  alg->attach(wl.query, wl.graph);
  const InnerRunResult r = executor.run(*alg, {});
  EXPECT_EQ(r.matches, 0u);
}

TEST(InnerExecutor, EmptySeedsAreANoOp) {
  WorkerPool pool(2);
  InnerExecutor executor(pool, 4, true);
  auto alg = csm::make_algorithm("graphflow");
  testing::SmallWorkload wl = testing::make_workload(1);
  alg->attach(wl.query, wl.graph);
  const InnerRunResult r = executor.run(*alg, {});
  EXPECT_EQ(r.matches, 0u);
  EXPECT_EQ(r.nodes, 0u);
}

TEST(InnerExecutor, WorkerStatsAccountAllNodes) {
  testing::SmallWorkload wl = testing::make_workload(654, 40, 120, 1, 1, 4, 0.0, 0.0);
  auto alg = csm::make_algorithm("graphflow");
  alg->attach(wl.query, wl.graph);
  util::Rng rng(6);
  auto stream = graph::make_insert_stream(wl.graph, 0.2, rng);
  WorkerPool pool(4);
  InnerExecutor executor(pool, 3, true);
  for (const auto& upd : stream) {
    wl.graph.add_edge(upd.u, upd.v, upd.label);
    std::vector<csm::SearchTask> seeds;
    alg->seeds(upd, seeds);
    if (seeds.empty()) continue;
    const InnerRunResult r = executor.run(*alg, seeds);
    std::uint64_t worker_nodes = 0, worker_matches = 0;
    for (const auto& w : r.stats.workers) {
      worker_nodes += w.nodes;
      worker_matches += w.matches;
    }
    // Total = init-phase nodes + worker nodes.
    EXPECT_GE(r.nodes, worker_nodes);
    EXPECT_GE(r.matches, worker_matches);
    EXPECT_GE(r.stats.sequential_equivalent_ns(), r.stats.simulated_makespan_ns());
  }
}

TEST(InnerExecutor, DeadlineAbortsAndTerminates) {
  util::Rng rng(77);
  graph::DataGraph g = graph::generate_erdos_renyi(64, 1400, 1, 1, rng);
  auto q = graph::extract_query(g, 8, rng);
  ASSERT_TRUE(q.has_value());
  auto alg = csm::make_algorithm("graphflow");
  auto stream = graph::make_insert_stream(g, 0.05, rng);
  alg->attach(*q, g);
  WorkerPool pool(4);
  InnerExecutor executor(pool, 4, true);
  bool saw_timeout = false;
  for (const auto& upd : stream) {
    g.add_edge(upd.u, upd.v, upd.label);
    std::vector<csm::SearchTask> seeds;
    alg->seeds(upd, seeds);
    if (seeds.empty()) continue;
    const InnerRunResult r =
        executor.run(*alg, seeds, util::Clock::now() - std::chrono::milliseconds(1));
    saw_timeout = saw_timeout || r.timed_out;
  }
  EXPECT_TRUE(saw_timeout);
}

}  // namespace
}  // namespace paracosm::engine
