// Merge determinism for the per-worker match sinks
// (paracosm/match_buffer.hpp). The delivery contract of csm/match.hpp says
// the emitted sequence is a pure function of the match *set* — so any
// distribution of the same mappings across any number of worker buffers, in
// any interleaving, must merge to a byte-identical stream. Duplicate
// (qv,dv) mappings must survive the merge (ΔM is reconciled as a multiset).
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "paracosm/match_buffer.hpp"
#include "util/rng.hpp"

namespace paracosm::engine {
namespace {

using csm::Assignment;

std::vector<std::vector<Assignment>> make_mappings(std::uint64_t seed,
                                                   std::size_t count) {
  util::Rng rng(seed);
  std::vector<std::vector<Assignment>> mappings;
  mappings.reserve(count + count / 4);
  for (std::size_t i = 0; i < count; ++i) {
    std::vector<Assignment> m;
    const std::size_t arity = 2 + rng.range(0, 3);
    for (std::size_t qv = 0; qv < arity; ++qv)
      m.push_back(Assignment{static_cast<graph::VertexId>(qv),
                             static_cast<graph::VertexId>(rng.range(0, 15))});
    mappings.push_back(std::move(m));
    if (i % 4 == 0) mappings.push_back(mappings.back());  // exact duplicate
  }
  return mappings;
}

/// Render the emitted stream as one string: byte-identical outputs compare
/// equal iff the delivery order and content are identical.
std::string merged_transcript(std::span<MatchBuffer> buffers) {
  std::string out;
  emit_merged_sorted(buffers, [&](std::span<const Assignment> m) {
    for (const Assignment& a : m)
      out += std::to_string(a.qv) + ":" + std::to_string(a.dv) + ",";
    out += ";";
  });
  return out;
}

TEST(MatchBuffer, EmptyBuffersEmitNothing) {
  std::vector<MatchBuffer> buffers(8);
  EXPECT_EQ(merged_transcript(buffers), "");
}

TEST(MatchBuffer, EightWorkerInterleavingMatchesSingleWorkerByteForByte) {
  const auto mappings = make_mappings(0xbeef, 64);

  // Single worker: everything lands in one buffer, in generation order.
  std::vector<MatchBuffer> single(1);
  for (const auto& m : mappings) single[0].append(m);
  const std::string want = merged_transcript(single);
  EXPECT_FALSE(want.empty());

  // 8 workers, three different interleavings of the same multiset: round
  // robin, blocked, and a seeded shuffle of the emission order.
  {
    std::vector<MatchBuffer> buffers(8);
    for (std::size_t i = 0; i < mappings.size(); ++i)
      buffers[i % 8].append(mappings[i]);
    EXPECT_EQ(merged_transcript(buffers), want);
  }
  {
    std::vector<MatchBuffer> buffers(8);
    const std::size_t block = (mappings.size() + 7) / 8;
    for (std::size_t i = 0; i < mappings.size(); ++i)
      buffers[i / block].append(mappings[i]);
    EXPECT_EQ(merged_transcript(buffers), want);
  }
  {
    std::vector<std::size_t> order(mappings.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    util::Rng rng(7);
    for (std::size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1], order[rng.range(0, i - 1)]);
    std::vector<MatchBuffer> buffers(8);
    for (std::size_t k = 0; k < order.size(); ++k)
      buffers[order[k] % 8].append(mappings[order[k]]);
    EXPECT_EQ(merged_transcript(buffers), want);
  }
}

TEST(MatchBuffer, ConcurrentAppendsMergeDeterministically) {
  // Real threads, each appending to its own buffer (the actual usage): the
  // per-thread slices are deterministic but the wall-clock interleaving is
  // not — the merged output must not care.
  const auto mappings = make_mappings(0xfeed, 96);
  std::vector<MatchBuffer> single(1);
  for (const auto& m : mappings) single[0].append(m);
  const std::string want = merged_transcript(single);

  for (int iter = 0; iter < 20; ++iter) {
    std::vector<MatchBuffer> buffers(8);
    std::vector<std::thread> threads;
    threads.reserve(8);
    for (unsigned wid = 0; wid < 8; ++wid) {
      threads.emplace_back([&, wid] {
        for (std::size_t i = wid; i < mappings.size(); i += 8)
          buffers[wid].append(mappings[i]);
      });
    }
    for (std::thread& t : threads) t.join();
    EXPECT_EQ(merged_transcript(buffers), want) << "iter " << iter;
  }
}

TEST(MatchBuffer, DuplicateMappingsAreDeliveredOncePerEmission) {
  const std::vector<Assignment> m{{0, 3}, {1, 5}};
  std::vector<MatchBuffer> buffers(4);
  buffers[0].append(m);
  buffers[2].append(m);
  buffers[3].append(m);
  std::size_t emissions = 0;
  emit_merged_sorted(buffers, [&](std::span<const Assignment> got) {
    ASSERT_EQ(got.size(), m.size());
    EXPECT_TRUE(std::equal(got.begin(), got.end(), m.begin()));
    ++emissions;
  });
  EXPECT_EQ(emissions, 3u);  // multiset semantics: duplicates not collapsed
}

TEST(MatchBuffer, MergeClearsBuffersButKeepsThemReusable) {
  std::vector<MatchBuffer> buffers(2);
  buffers[0].append(std::vector<Assignment>{{0, 1}});
  buffers[1].append(std::vector<Assignment>{{0, 2}});
  EXPECT_EQ(merged_transcript(buffers), "0:1,;0:2,;");
  for (const MatchBuffer& b : buffers) EXPECT_TRUE(b.empty());
  // Reuse after clear: fresh content only.
  buffers[1].append(std::vector<Assignment>{{0, 9}});
  EXPECT_EQ(merged_transcript(buffers), "0:9,;");
}

}  // namespace
}  // namespace paracosm::engine
