// Unit tests for the verification subsystem itself: the oracle's ground
// truth on hand-built graphs, repro round-tripping, and the self-test the
// issue demands — an intentionally-injected classifier bug must be caught by
// the fuzzer and shrunk to a handful of updates.
#include <gtest/gtest.h>

#include <sstream>

#include "verify/fuzzer.hpp"
#include "verify/repro.hpp"
#include "verify/shrinker.hpp"

namespace paracosm::verify {
namespace {

using graph::DataGraph;
using graph::GraphUpdate;
using graph::QueryGraph;

// --- oracle ground truth ---------------------------------------------------

// Data: v0(l0) — v1(l1), plus v2(l1) initially isolated.
// Query: q0(l0) — q1(l1). One match initially; inserting (0,2) adds one;
// deleting (0,1) removes one.
TEST(OracleMirror, CountsAndMappingsOnHandBuiltGraph) {
  DataGraph g;
  g.add_vertex_with_id(0, 0);
  g.add_vertex_with_id(1, 1);
  g.add_vertex_with_id(2, 1);
  g.add_edge(0, 1, 0);

  QueryGraph q({0, 1}, {graph::Edge{0, 1, 0}});

  OracleMirror oracle(q, g, /*use_edge_labels=*/true, /*strict=*/true);
  EXPECT_EQ(oracle.match_count(), 1u);

  const OracleDelta& ins = oracle.step(GraphUpdate::insert_edge(0, 2, 0));
  EXPECT_TRUE(ins.applied);
  EXPECT_EQ(ins.positive, 1u);
  EXPECT_EQ(ins.negative, 0u);
  ASSERT_EQ(ins.appeared.size(), 1u);
  const CanonMatch want{{0, 0}, {1, 2}};
  EXPECT_EQ(ins.appeared[0], want);
  EXPECT_EQ(oracle.match_count(), 2u);

  const OracleDelta& del = oracle.step(GraphUpdate::remove_edge(0, 1));
  EXPECT_TRUE(del.applied);
  EXPECT_EQ(del.positive, 0u);
  EXPECT_EQ(del.negative, 1u);
  ASSERT_EQ(del.expired.size(), 1u);
  const CanonMatch gone{{0, 0}, {1, 1}};
  EXPECT_EQ(del.expired[0], gone);
  EXPECT_EQ(oracle.match_count(), 1u);

  // Duplicate insert and phantom removal are no-ops.
  const OracleDelta& dup = oracle.step(GraphUpdate::insert_edge(0, 2, 0));
  EXPECT_FALSE(dup.applied);
  EXPECT_EQ(dup.positive, 0u);
  const OracleDelta& phantom = oracle.step(GraphUpdate::remove_edge(0, 1));
  EXPECT_FALSE(phantom.applied);
  EXPECT_EQ(phantom.negative, 0u);
}

TEST(DeltaReconciler, FlagsCountAndMappingMismatches) {
  OracleDelta want;
  want.positive = 1;
  want.appeared.push_back(CanonMatch{{0, 0}, {1, 2}});

  DeltaReconciler rec;
  // Count mismatch: engine reported nothing.
  auto err = rec.reconcile(want, /*got_positive=*/0, /*got_negative=*/0,
                           /*check_mappings=*/true);
  ASSERT_TRUE(err.has_value());

  // Right count, wrong mapping: strict mode still diverges.
  const std::vector<Assignment> wrong{{0, 0}, {1, 1}};
  rec.clear();
  rec.observe(wrong);
  err = rec.reconcile(want, 1, 0, /*check_mappings=*/true);
  ASSERT_TRUE(err.has_value());

  // ...but passes in counting mode — which is exactly why strict mode exists.
  EXPECT_FALSE(rec.reconcile(want, 1, 0, /*check_mappings=*/false).has_value());

  // Exact mapping: clean.
  const std::vector<Assignment> right{{1, 2}, {0, 0}};  // any order in
  rec.clear();
  rec.observe(right);
  EXPECT_FALSE(rec.reconcile(want, 1, 0, /*check_mappings=*/true).has_value());
}

// --- repro round-trip ------------------------------------------------------

TEST(Repro, RoundTripsCaseAndCellMetadata) {
  Repro r;
  r.fuzz_case = generate_case(3);
  ASSERT_FALSE(r.fuzz_case.queries.empty());
  Divergence d;
  d.seed = 3;
  d.algorithm = "turboflux";
  d.lane = Lane::kBatch;
  d.threads = 4;
  d.query_index = 1;
  d.update_index = 7;
  d.message = "delta count mismatch:\nmulti-line detail";
  r.cell = d;

  std::stringstream ss;
  save_repro(r, ss);
  const Repro back = load_repro(ss);

  EXPECT_EQ(back.fuzz_case.seed, r.fuzz_case.seed);
  EXPECT_EQ(back.fuzz_case.queries.size(), r.fuzz_case.queries.size());
  EXPECT_EQ(back.fuzz_case.stream.size(), r.fuzz_case.stream.size());
  EXPECT_TRUE(back.fuzz_case.graph.same_structure(r.fuzz_case.graph));
  ASSERT_TRUE(back.cell.has_value());
  EXPECT_EQ(back.cell->algorithm, "turboflux");
  EXPECT_EQ(back.cell->lane, Lane::kBatch);
  EXPECT_EQ(back.cell->threads, 4u);
  EXPECT_EQ(back.cell->query_index, 1u);
  ASSERT_TRUE(back.cell->update_index.has_value());
  EXPECT_EQ(*back.cell->update_index, 7u);

  // The stream must replay identically: same ops on the same endpoints.
  for (std::size_t i = 0; i < r.fuzz_case.stream.size(); ++i) {
    EXPECT_EQ(back.fuzz_case.stream[i].op, r.fuzz_case.stream[i].op) << i;
    EXPECT_EQ(back.fuzz_case.stream[i].u, r.fuzz_case.stream[i].u) << i;
    EXPECT_EQ(back.fuzz_case.stream[i].v, r.fuzz_case.stream[i].v) << i;
  }
}

TEST(Repro, LoadRejectsMalformedInput) {
  std::stringstream truncated("# paracosm_fuzz repro v1\nmeta seed 1\n%graph\n");
  EXPECT_THROW((void)load_repro(truncated), std::runtime_error);
  std::stringstream wrong_magic("# something else\n");
  EXPECT_THROW((void)load_repro(wrong_magic), std::runtime_error);
}

// --- fault-injection self-test (acceptance criterion) -----------------------

// An intentionally-injected classifier unsoundness — ads_safe leaking a
// deterministic subset of unsafe updates as "safe" — must be (a) caught by
// the batch-lane fuzzer and (b) shrunk to a repro of at most 10 updates.
TEST(FaultInjection, InjectedClassifierBugIsCaughtAndShrunk) {
  const AlgorithmFactory fault = make_classifier_fault_factory(/*leak_mod=*/3);

  CheckOptions opts;
  opts.factory = fault;
  // The leak only matters where the classifier gates enumeration: batch lane.
  opts.lanes = {{Lane::kBatch, 1}, {Lane::kBatch, 4}};
  opts.stop_at_first = true;

  std::optional<Divergence> found;
  FuzzCase failing;
  for (std::uint64_t seed = 0; seed < 20 && !found; ++seed) {
    FuzzCase c = generate_case(seed);
    auto divs = check_case(c, opts);
    if (!divs.empty()) {
      found = divs.front();
      failing = std::move(c);
    }
  }
  ASSERT_TRUE(found.has_value())
      << "fault-injected classifier survived 20 seeds — the harness is blind";

  ShrinkOptions sopts;
  sopts.factory = fault;
  const ShrinkResult res = shrink(failing, *found, sopts);
  EXPECT_LE(res.reduced.stream.size(), 10u)
      << "shrinker left " << res.reduced.stream.size() << " updates";
  EXPECT_EQ(res.divergence.algorithm, found->algorithm);
  EXPECT_GT(res.predicate_runs, 0u);

  // The shrunk case must still diverge under the fault, and the repro must
  // survive a serialization round trip *still diverging*.
  Repro r;
  r.fuzz_case = res.reduced;
  r.cell = res.divergence;
  std::stringstream ss;
  save_repro(r, ss);
  const Repro back = load_repro(ss);
  EXPECT_FALSE(check_repro(back, fault).empty())
      << "shrunk repro no longer reproduces after round trip";

  // And with the real (sound) classifier the same cell is clean — the
  // divergence is attributable to the injected fault, nothing else.
  EXPECT_TRUE(check_repro(back).empty());
}

}  // namespace
}  // namespace paracosm::verify
