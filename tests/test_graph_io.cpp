// Round-trip and error-handling tests for the benchmark text format.
#include <gtest/gtest.h>

#include <sstream>

#include "graph/graph_io.hpp"

namespace paracosm::graph {
namespace {

TEST(GraphIo, DataGraphRoundTrip) {
  DataGraph g;
  for (const Label l : {0u, 1u, 2u}) g.add_vertex(l);
  g.add_edge(0, 1, 7);
  g.add_edge(1, 2, 8);
  std::stringstream buffer;
  save_data_graph(g, buffer);
  const DataGraph loaded = load_data_graph(buffer);
  EXPECT_TRUE(g.same_structure(loaded));
}

TEST(GraphIo, QueryGraphRoundTrip) {
  QueryGraph q({0, 1, 2}, {{0, 1, 3}, {1, 2, 4}});
  std::stringstream buffer;
  save_query_graph(q, buffer);
  const QueryGraph loaded = load_query_graph(buffer);
  EXPECT_EQ(loaded.num_vertices(), 3u);
  EXPECT_EQ(loaded.num_edges(), 2u);
  EXPECT_EQ(loaded.edge_label(0, 1), 3u);
  EXPECT_EQ(loaded.edge_label(1, 2), 4u);
  EXPECT_EQ(loaded.label(2), 2u);
}

TEST(GraphIo, UpdateStreamRoundTrip) {
  const std::vector<GraphUpdate> stream{
      GraphUpdate::insert_edge(1, 2, 3), GraphUpdate::remove_edge(4, 5, 6),
      GraphUpdate::insert_vertex(7, 8), GraphUpdate::remove_vertex(9)};
  std::stringstream buffer;
  save_update_stream(stream, buffer);
  const auto loaded = load_update_stream(buffer);
  EXPECT_EQ(loaded, stream);
}

TEST(GraphIo, ParsesOptionalFieldsAndComments) {
  std::stringstream in(
      "# comment\n"
      "% another\n"
      "t 1\n"
      "v 0 5 3\n"      // with degree hint
      "v 1 6\n"        // without
      "e 0 1\n");      // edge label omitted -> 0
  const DataGraph g = load_data_graph(in);
  EXPECT_EQ(g.num_vertices(), 2u);
  EXPECT_EQ(g.edge_label(0, 1), 0u);
}

TEST(GraphIo, StreamEdgeWithoutSignIsInsert) {
  std::stringstream in("e 3 4 1\n");
  const auto stream = load_update_stream(in);
  ASSERT_EQ(stream.size(), 1u);
  EXPECT_EQ(stream[0].op, UpdateOp::kInsertEdge);
}

TEST(GraphIo, MalformedInputThrows) {
  std::stringstream bad_vertex("v abc\n");
  EXPECT_THROW((void)load_data_graph(bad_vertex), std::runtime_error);
  std::stringstream bad_tag("x 1 2\n");
  EXPECT_THROW((void)load_data_graph(bad_tag), std::runtime_error);
  std::stringstream bad_update("+q 1 2\n");
  EXPECT_THROW((void)load_update_stream(bad_update), std::runtime_error);
}

TEST(GraphIo, ParseExceptionCarriesLineNumberAndText) {
  std::stringstream in("v 0 1\nv 1 2\ne 0 zebra\n");
  try {
    (void)load_data_graph(in);
    FAIL() << "expected ParseException";
  } catch (const ParseException& e) {
    EXPECT_EQ(e.error().line_no, 3u);
    EXPECT_EQ(e.error().line, "e 0 zebra");
    EXPECT_NE(e.error().to_string().find("line 3"), std::string::npos);
  }
}

TEST(GraphIo, CollectorSkipsBadLinesAndKeepsGood) {
  std::stringstream in(
      "v 0 1\n"
      "v bogus\n"       // arity/numeric error
      "v 1 2\n"
      "e 0 1 -3\n"      // negative label
      "e 0 1 4\n"
      "z what\n");      // unknown tag
  std::vector<ParseError> errors;
  const DataGraph g = load_data_graph(in, &errors);
  EXPECT_EQ(g.num_vertices(), 2u);
  EXPECT_EQ(g.edge_label(0, 1), 4u);
  ASSERT_EQ(errors.size(), 3u);
  EXPECT_EQ(errors[0].line_no, 2u);
  EXPECT_EQ(errors[1].line_no, 4u);
  EXPECT_EQ(errors[2].line_no, 6u);
}

TEST(GraphIo, AdmissionCapsRejectHugeIdsAndLabels) {
  // A hostile id just past kMaxVertexId must be a parse error, not a
  // multi-gigabyte dense-vector resize.
  const std::string huge_v = "v " + std::to_string(kMaxVertexId + 1) + " 0\n";
  std::stringstream in_v(huge_v);
  EXPECT_THROW((void)load_data_graph(in_v), ParseException);

  const std::string huge_l = "v 0 " + std::to_string(kMaxLabel + 1) + "\n";
  std::stringstream in_l(huge_l);
  std::vector<ParseError> errors;
  const DataGraph g = load_data_graph(in_l, &errors);
  EXPECT_EQ(g.num_vertices(), 0u);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].line_no, 1u);

  std::stringstream in_s("+e 1 " + std::to_string(kMaxVertexId + 1) + " 0\n");
  EXPECT_THROW((void)load_update_stream(in_s), ParseException);
}

TEST(GraphIo, StreamCollectorKeepsGoodUpdates) {
  std::stringstream in("+e 1 2 3\n-e nope\n-v 4\n");
  std::vector<ParseError> errors;
  const auto stream = load_update_stream(in, &errors);
  ASSERT_EQ(stream.size(), 2u);
  EXPECT_EQ(stream[0], GraphUpdate::insert_edge(1, 2, 3));
  EXPECT_EQ(stream[1], GraphUpdate::remove_vertex(4));
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].line_no, 2u);
}

TEST(GraphIo, MissingFileThrows) {
  EXPECT_THROW((void)load_data_graph_file("/nonexistent/path.graph"),
               std::runtime_error);
}

TEST(GraphIo, FileRoundTrip) {
  DataGraph g;
  g.add_vertex(1);
  g.add_vertex(2);
  g.add_edge(0, 1, 9);
  const std::string path = "test_io_roundtrip.graph";
  save_data_graph_file(g, path);
  const DataGraph loaded = load_data_graph_file(path);
  EXPECT_TRUE(g.same_structure(loaded));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace paracosm::graph
