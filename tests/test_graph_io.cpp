// Round-trip and error-handling tests for the benchmark text format.
#include <gtest/gtest.h>

#include <sstream>

#include "graph/graph_io.hpp"

namespace paracosm::graph {
namespace {

TEST(GraphIo, DataGraphRoundTrip) {
  DataGraph g;
  for (const Label l : {0u, 1u, 2u}) g.add_vertex(l);
  g.add_edge(0, 1, 7);
  g.add_edge(1, 2, 8);
  std::stringstream buffer;
  save_data_graph(g, buffer);
  const DataGraph loaded = load_data_graph(buffer);
  EXPECT_TRUE(g.same_structure(loaded));
}

TEST(GraphIo, QueryGraphRoundTrip) {
  QueryGraph q({0, 1, 2}, {{0, 1, 3}, {1, 2, 4}});
  std::stringstream buffer;
  save_query_graph(q, buffer);
  const QueryGraph loaded = load_query_graph(buffer);
  EXPECT_EQ(loaded.num_vertices(), 3u);
  EXPECT_EQ(loaded.num_edges(), 2u);
  EXPECT_EQ(loaded.edge_label(0, 1), 3u);
  EXPECT_EQ(loaded.edge_label(1, 2), 4u);
  EXPECT_EQ(loaded.label(2), 2u);
}

TEST(GraphIo, UpdateStreamRoundTrip) {
  const std::vector<GraphUpdate> stream{
      GraphUpdate::insert_edge(1, 2, 3), GraphUpdate::remove_edge(4, 5, 6),
      GraphUpdate::insert_vertex(7, 8), GraphUpdate::remove_vertex(9)};
  std::stringstream buffer;
  save_update_stream(stream, buffer);
  const auto loaded = load_update_stream(buffer);
  EXPECT_EQ(loaded, stream);
}

TEST(GraphIo, ParsesOptionalFieldsAndComments) {
  std::stringstream in(
      "# comment\n"
      "% another\n"
      "t 1\n"
      "v 0 5 3\n"      // with degree hint
      "v 1 6\n"        // without
      "e 0 1\n");      // edge label omitted -> 0
  const DataGraph g = load_data_graph(in);
  EXPECT_EQ(g.num_vertices(), 2u);
  EXPECT_EQ(g.edge_label(0, 1), 0u);
}

TEST(GraphIo, StreamEdgeWithoutSignIsInsert) {
  std::stringstream in("e 3 4 1\n");
  const auto stream = load_update_stream(in);
  ASSERT_EQ(stream.size(), 1u);
  EXPECT_EQ(stream[0].op, UpdateOp::kInsertEdge);
}

TEST(GraphIo, MalformedInputThrows) {
  std::stringstream bad_vertex("v abc\n");
  EXPECT_THROW((void)load_data_graph(bad_vertex), std::runtime_error);
  std::stringstream bad_tag("x 1 2\n");
  EXPECT_THROW((void)load_data_graph(bad_tag), std::runtime_error);
  std::stringstream bad_update("+q 1 2\n");
  EXPECT_THROW((void)load_update_stream(bad_update), std::runtime_error);
}

TEST(GraphIo, MissingFileThrows) {
  EXPECT_THROW((void)load_data_graph_file("/nonexistent/path.graph"),
               std::runtime_error);
}

TEST(GraphIo, FileRoundTrip) {
  DataGraph g;
  g.add_vertex(1);
  g.add_vertex(2);
  g.add_edge(0, 1, 9);
  const std::string path = "test_io_roundtrip.graph";
  save_data_graph_file(g, path);
  const DataGraph loaded = load_data_graph_file(path);
  EXPECT_TRUE(g.same_structure(loaded));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace paracosm::graph
