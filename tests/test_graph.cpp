// Unit tests for the graph substrate: DataGraph and QueryGraph semantics.
#include <gtest/gtest.h>

#include "graph/data_graph.hpp"
#include "graph/query_graph.hpp"

namespace paracosm::graph {
namespace {

TEST(DataGraph, AddVertexAssignsDenseIds) {
  DataGraph g;
  EXPECT_EQ(g.add_vertex(5), 0u);
  EXPECT_EQ(g.add_vertex(6), 1u);
  EXPECT_EQ(g.num_vertices(), 2u);
  EXPECT_EQ(g.label(0), 5u);
  EXPECT_EQ(g.label(1), 6u);
}

TEST(DataGraph, AddVertexWithIdFillsGaps) {
  DataGraph g;
  g.add_vertex_with_id(5, 9);
  EXPECT_TRUE(g.has_vertex(5));
  EXPECT_FALSE(g.has_vertex(3));
  EXPECT_EQ(g.vertex_capacity(), 6u);
  EXPECT_EQ(g.num_vertices(), 1u);
}

TEST(DataGraph, AddEdgeIsUndirectedAndLabeled) {
  DataGraph g;
  g.add_vertex(0);
  g.add_vertex(0);
  ASSERT_TRUE(g.add_edge(0, 1, 7));
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_EQ(g.edge_label(0, 1), 7u);
  EXPECT_EQ(g.edge_label(1, 0), 7u);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 1u);
}

TEST(DataGraph, DuplicateAndSelfLoopRejected) {
  DataGraph g;
  g.add_vertex(0);
  g.add_vertex(0);
  ASSERT_TRUE(g.add_edge(0, 1, 0));
  EXPECT_FALSE(g.add_edge(0, 1, 3));  // duplicate keeps original label
  EXPECT_EQ(g.edge_label(0, 1), 0u);
  EXPECT_FALSE(g.add_edge(0, 0, 0));  // self loop
  EXPECT_FALSE(g.add_edge(0, 99, 0));  // missing endpoint
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(DataGraph, RemoveEdgeReturnsLabel) {
  DataGraph g;
  g.add_vertex(0);
  g.add_vertex(0);
  g.add_edge(0, 1, 4);
  const auto removed = g.remove_edge(0, 1);
  ASSERT_TRUE(removed.has_value());
  EXPECT_EQ(*removed, 4u);
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_FALSE(g.remove_edge(0, 1).has_value());  // phantom removal
}

TEST(DataGraph, NeighborsStaySorted) {
  DataGraph g;
  for (int i = 0; i < 6; ++i) g.add_vertex(0);
  g.add_edge(0, 4, 0);
  g.add_edge(0, 1, 0);
  g.add_edge(0, 3, 0);
  const auto nbrs = g.neighbors(0);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_TRUE(nbrs[0].v < nbrs[1].v && nbrs[1].v < nbrs[2].v);
}

TEST(DataGraph, RemoveVertexCascades) {
  DataGraph g;
  for (int i = 0; i < 4; ++i) g.add_vertex(1);
  g.add_edge(0, 1, 0);
  g.add_edge(0, 2, 0);
  g.add_edge(1, 2, 0);
  EXPECT_EQ(g.remove_vertex(0), 2u);
  EXPECT_FALSE(g.has_vertex(0));
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_TRUE(g.vertices_with_label(1).size() == 3);
}

TEST(DataGraph, ApplyDispatchesAllOps) {
  DataGraph g;
  g.add_vertex(0);
  g.add_vertex(0);
  EXPECT_TRUE(g.apply(GraphUpdate::insert_edge(0, 1, 2)));
  EXPECT_TRUE(g.apply(GraphUpdate::remove_edge(0, 1)));
  EXPECT_TRUE(g.apply(GraphUpdate::insert_vertex(5, 3)));
  EXPECT_TRUE(g.has_vertex(5));
  EXPECT_TRUE(g.apply(GraphUpdate::remove_vertex(5)));
  EXPECT_FALSE(g.apply(GraphUpdate::remove_vertex(5)));
}

TEST(DataGraph, NlfCountsNeighborLabels) {
  DataGraph g;
  g.add_vertex(0);
  g.add_vertex(1);
  g.add_vertex(1);
  g.add_vertex(2);
  g.add_edge(0, 1, 0);
  g.add_edge(0, 2, 0);
  g.add_edge(0, 3, 0);
  EXPECT_EQ(g.nlf(0, 1), 2u);
  EXPECT_EQ(g.nlf(0, 2), 1u);
  EXPECT_EQ(g.nlf(0, 9), 0u);
}

TEST(DataGraph, EdgeListNormalized) {
  DataGraph g;
  for (int i = 0; i < 3; ++i) g.add_vertex(0);
  g.add_edge(2, 0, 5);
  g.add_edge(1, 2, 6);
  const auto edges = g.edge_list();
  ASSERT_EQ(edges.size(), 2u);
  for (const auto& e : edges) EXPECT_LT(e.u, e.v);
}

TEST(DataGraph, SameStructureDetectsDifferences) {
  DataGraph a, b;
  for (int i = 0; i < 3; ++i) {
    a.add_vertex(i);
    b.add_vertex(i);
  }
  a.add_edge(0, 1, 0);
  b.add_edge(0, 1, 0);
  EXPECT_TRUE(a.same_structure(b));
  b.add_edge(1, 2, 0);
  EXPECT_FALSE(a.same_structure(b));
}

TEST(DataGraph, CopyIsIndependent) {
  DataGraph a;
  a.add_vertex(0);
  a.add_vertex(0);
  a.add_edge(0, 1, 0);
  DataGraph b = a;
  b.remove_edge(0, 1);
  EXPECT_TRUE(a.has_edge(0, 1));
  EXPECT_FALSE(b.has_edge(0, 1));
}

TEST(DataGraph, StatsHelpers) {
  DataGraph g;
  for (const Label l : {0u, 0u, 1u, 2u}) g.add_vertex(l);
  g.add_edge(0, 1, 3);
  g.add_edge(0, 2, 4);
  g.add_edge(0, 3, 3);
  EXPECT_EQ(g.max_degree(), 3u);
  EXPECT_EQ(g.num_vertex_labels(), 3u);
  EXPECT_EQ(g.num_edge_labels(), 2u);
  EXPECT_DOUBLE_EQ(g.average_degree(), 1.5);
}

TEST(QueryGraph, ValidatesInput) {
  EXPECT_THROW(QueryGraph({0, 1}, {{0, 0, 0}}), std::invalid_argument);  // self loop
  EXPECT_THROW(QueryGraph({0, 1}, {{0, 1, 0}, {1, 0, 0}}), std::invalid_argument);
  EXPECT_THROW(QueryGraph({0, 1}, {{0, 5, 0}}), std::invalid_argument);  // range
}

TEST(QueryGraph, ConnectivityDetection) {
  EXPECT_TRUE(QueryGraph({0, 1, 2}, {{0, 1, 0}, {1, 2, 0}}).connected());
  EXPECT_FALSE(QueryGraph({0, 1, 2}, {{0, 1, 0}}).connected());
  EXPECT_TRUE(QueryGraph({}, {}).connected());
}

TEST(QueryGraph, NlfSignature) {
  QueryGraph q({0, 1, 1, 2}, {{0, 1, 0}, {0, 2, 0}, {0, 3, 0}});
  EXPECT_EQ(q.nlf(0, 1), 2u);
  EXPECT_EQ(q.nlf(0, 2), 1u);
  EXPECT_EQ(q.nlf(1, 0), 1u);
  EXPECT_EQ(q.nlf(1, 2), 0u);
}

TEST(QueryGraph, LabelTriplesBothOrientations) {
  QueryGraph q({3, 4}, {{0, 1, 9}});
  EXPECT_TRUE(q.label_triple_exists(3, 4, 9));
  EXPECT_TRUE(q.label_triple_exists(4, 3, 9));
  EXPECT_FALSE(q.label_triple_exists(3, 4, 8));
  EXPECT_FALSE(q.label_triple_exists(3, 3, 9));
}

TEST(QueryGraph, MatchingEdgesRespectsOrientationAndElabels) {
  QueryGraph q({0, 1, 0}, {{0, 1, 5}, {1, 2, 6}});
  const auto pairs = q.matching_edges(0, 1, 5);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].first, 0u);
  EXPECT_EQ(pairs[0].second, 1u);
  // Reversed data labels give the reversed query pair.
  const auto rev = q.matching_edges(1, 0, 5);
  ASSERT_EQ(rev.size(), 1u);
  EXPECT_EQ(rev[0].first, 1u);
  // Ignoring edge labels matches both query edges with compatible endpoints.
  const auto blind = q.matching_edges(0, 1, 99, /*ignore_edge_labels=*/true);
  EXPECT_EQ(blind.size(), 2u);  // (0,1) via edge 0-1 and (2,1) via edge 1-2
}

TEST(QueryGraph, SymmetricLabelEdgeMatchesBothWays) {
  QueryGraph q({0, 0}, {{0, 1, 0}});
  // Both endpoints share a label: one data edge can seed both orientations.
  EXPECT_EQ(q.matching_edges(0, 0, 0).size(), 2u);
}

// apply_checked must classify every rejection precisely while staying
// state-equivalent to apply(): it changes the graph iff apply() would.
TEST(DataGraph, ApplyCheckedClassifiesEdgeOps) {
  DataGraph g;
  g.add_vertex(1);
  g.add_vertex(2);

  EXPECT_EQ(g.apply_checked(GraphUpdate::insert_edge(0, 1, 5)),
            MutationStatus::kApplied);
  EXPECT_EQ(g.apply_checked(GraphUpdate::insert_edge(0, 1, 9)),
            MutationStatus::kDuplicateEdge);
  EXPECT_EQ(g.edge_label(0, 1), 5u);  // rejection did not relabel
  EXPECT_EQ(g.apply_checked(GraphUpdate::insert_edge(0, 0, 0)),
            MutationStatus::kSelfLoop);
  EXPECT_EQ(g.apply_checked(GraphUpdate::insert_edge(0, 7, 0)),
            MutationStatus::kMissingVertex);
  EXPECT_EQ(g.apply_checked(GraphUpdate::remove_edge(1, 0)),
            MutationStatus::kApplied);
  EXPECT_EQ(g.apply_checked(GraphUpdate::remove_edge(0, 1)),
            MutationStatus::kMissingEdge);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(DataGraph, ApplyCheckedClassifiesVertexOps) {
  DataGraph g;
  g.add_vertex(3);

  EXPECT_EQ(g.apply_checked(GraphUpdate::insert_vertex(0, 3)),
            MutationStatus::kVertexExists);
  // Same id, different label: a relabel is allowed through (apply() parity).
  EXPECT_EQ(g.apply_checked(GraphUpdate::insert_vertex(0, 4)),
            MutationStatus::kApplied);
  EXPECT_EQ(g.label(0), 4u);
  EXPECT_EQ(g.apply_checked(GraphUpdate::insert_vertex(6, 1)),
            MutationStatus::kApplied);
  EXPECT_EQ(g.apply_checked(GraphUpdate::remove_vertex(6)),
            MutationStatus::kApplied);
  EXPECT_EQ(g.apply_checked(GraphUpdate::remove_vertex(6)),
            MutationStatus::kMissingVertex);
  EXPECT_EQ(g.apply_checked(GraphUpdate::remove_vertex(99)),
            MutationStatus::kMissingVertex);
}

TEST(DataGraph, ApplyCheckedRejectsIdsBeyondAdmissionCaps) {
  DataGraph g;
  g.add_vertex(0);
  const VertexId huge = kMaxVertexId + 1;
  EXPECT_EQ(g.apply_checked(GraphUpdate::insert_edge(0, huge, 0)),
            MutationStatus::kInvalidId);
  EXPECT_EQ(g.apply_checked(GraphUpdate::insert_vertex(huge, 0)),
            MutationStatus::kInvalidId);
  EXPECT_EQ(g.apply_checked(GraphUpdate::insert_vertex(1, kMaxLabel + 1)),
            MutationStatus::kInvalidId);
  EXPECT_EQ(g.apply_checked(GraphUpdate::remove_vertex(huge)),
            MutationStatus::kInvalidId);
  // Nothing leaked into the dense vectors.
  EXPECT_EQ(g.vertex_capacity(), 1u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(DataGraph, ApplyCheckedMatchesApplyOnEveryStatus) {
  const std::vector<GraphUpdate> probes{
      GraphUpdate::insert_vertex(0, 1), GraphUpdate::insert_vertex(1, 1),
      GraphUpdate::insert_edge(0, 1, 2), GraphUpdate::insert_edge(0, 1, 2),
      GraphUpdate::insert_edge(2, 3, 0), GraphUpdate::remove_edge(0, 1),
      GraphUpdate::remove_edge(0, 1),   GraphUpdate::remove_vertex(1),
      GraphUpdate::remove_vertex(1)};
  DataGraph checked, plain;
  for (const GraphUpdate& upd : probes) {
    const bool changed =
        checked.apply_checked(upd) == MutationStatus::kApplied;
    // apply() on vertex inserts always reports true (relabel semantics);
    // everything else must agree exactly.
    const bool plain_changed = plain.apply(upd);
    if (upd.op != UpdateOp::kInsertVertex) {
      EXPECT_EQ(changed, plain_changed);
    }
    EXPECT_TRUE(checked.same_structure(plain));
  }
}

}  // namespace
}  // namespace paracosm::graph
