// Structural tests for the query DAG orientation used by the candidate
// indexes (BFS levels, arc slots, tree-vs-full arc counts).
#include <gtest/gtest.h>

#include "csm/candidate_index.hpp"
#include "graph/generators.hpp"
#include "tests/test_support.hpp"

namespace paracosm::csm {
namespace {

using graph::QueryGraph;

TEST(QueryDag, TreeKeepsExactlyNMinusOneArcs) {
  QueryGraph q({0, 1, 2, 0, 1},
               {{0, 1, 0}, {1, 2, 0}, {2, 3, 0}, {3, 4, 0}, {0, 4, 0}, {1, 3, 0}});
  const QueryDag tree = QueryDag::build(q, /*spanning_tree_only=*/true);
  const QueryDag full = QueryDag::build(q, /*spanning_tree_only=*/false);
  std::size_t tree_arcs = 0, full_arcs = 0;
  for (const auto& kids : tree.children) tree_arcs += kids.size();
  for (const auto& kids : full.children) full_arcs += kids.size();
  EXPECT_EQ(tree_arcs, q.num_vertices() - 1);
  EXPECT_EQ(full_arcs, q.num_edges());
}

TEST(QueryDag, RootHasMaxDegree) {
  QueryGraph q({0, 1, 2, 0}, {{0, 1, 0}, {1, 2, 0}, {1, 3, 0}});
  const QueryDag dag = QueryDag::build(q, false);
  EXPECT_EQ(dag.root, 1u);  // degree 3
  EXPECT_TRUE(dag.parents[dag.root].empty());
}

TEST(QueryDag, SlotsAreConsistentInverseIndices) {
  testing::SmallWorkload wl = testing::make_workload(17, 24, 60, 2, 1, 6);
  for (const bool tree : {true, false}) {
    const QueryDag dag = QueryDag::build(wl.query, tree);
    for (graph::VertexId u = 0; u < wl.query.num_vertices(); ++u) {
      for (std::size_t ci = 0; ci < dag.children[u].size(); ++ci) {
        const auto& arc = dag.children[u][ci];
        // children[u][ci].slot indexes u inside parents[arc.other].
        ASSERT_LT(arc.slot, dag.parents[arc.other].size());
        EXPECT_EQ(dag.parents[arc.other][arc.slot].other, u);
        // ...and the reverse arc's slot points back at ci.
        EXPECT_EQ(dag.parents[arc.other][arc.slot].slot, ci);
      }
    }
  }
}

TEST(QueryDag, TopoRespectsArcDirections) {
  testing::SmallWorkload wl = testing::make_workload(18, 24, 60, 2, 1, 6);
  const QueryDag dag = QueryDag::build(wl.query, false);
  std::vector<std::uint32_t> position(wl.query.num_vertices());
  for (std::uint32_t i = 0; i < dag.topo.size(); ++i) position[dag.topo[i]] = i;
  for (graph::VertexId u = 0; u < wl.query.num_vertices(); ++u)
    for (const auto& arc : dag.children[u])
      EXPECT_LT(position[u], position[arc.other]);
}

TEST(QueryDag, EveryNonRootVertexHasAParent) {
  testing::SmallWorkload wl = testing::make_workload(19, 24, 60, 2, 1, 5);
  for (const bool tree : {true, false}) {
    const QueryDag dag = QueryDag::build(wl.query, tree);
    for (graph::VertexId u = 0; u < wl.query.num_vertices(); ++u) {
      if (u == dag.root) continue;
      EXPECT_FALSE(dag.parents[u].empty()) << "vertex " << u;
    }
  }
}

}  // namespace
}  // namespace paracosm::csm
