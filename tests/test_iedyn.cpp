// IEDyn (tree-query specialist): correctness against the oracle, rejection
// of cyclic queries, and the exactness property that motivates it — on
// acyclic queries the candidate DP has no dead entries.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "csm/iedyn.hpp"
#include "csm/oracle.hpp"
#include "paracosm/paracosm.hpp"
#include "tests/test_support.hpp"

namespace paracosm::testing {
namespace {

/// Reduce a (possibly cyclic) extracted query to its BFS spanning tree.
graph::QueryGraph tree_of(const graph::QueryGraph& q) {
  std::vector<graph::Label> labels(q.num_vertices());
  for (graph::VertexId u = 0; u < q.num_vertices(); ++u) labels[u] = q.label(u);
  std::vector<graph::Edge> edges;
  std::vector<bool> seen(q.num_vertices(), false);
  std::vector<graph::VertexId> frontier{0};
  seen[0] = true;
  while (!frontier.empty()) {
    const graph::VertexId u = frontier.back();
    frontier.pop_back();
    for (const auto& nb : q.neighbors(u)) {
      if (seen[nb.v]) continue;
      seen[nb.v] = true;
      edges.push_back({u, nb.v, nb.elabel});
      frontier.push_back(nb.v);
    }
  }
  return graph::QueryGraph(std::move(labels), std::move(edges));
}

SmallWorkload tree_workload(std::uint64_t seed) {
  SmallWorkload wl = make_workload(seed, 32, 72, 3, 2, 5);
  wl.query = tree_of(wl.query);
  return wl;
}

class IEDynOracleTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IEDynOracleTest, MatchesOracleOnTreeQueries) {
  auto alg = csm::make_algorithm("iedyn");
  ASSERT_NE(alg, nullptr);
  check_against_oracle(*alg, tree_workload(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, IEDynOracleTest, ::testing::Values(64, 65, 66, 67));

TEST(IEDyn, RejectsCyclicQueries) {
  graph::QueryGraph triangle({0, 0, 0}, {{0, 1, 0}, {1, 2, 0}, {0, 2, 0}});
  graph::DataGraph g;
  for (int i = 0; i < 3; ++i) g.add_vertex(0);
  auto alg = csm::make_algorithm("iedyn");
  EXPECT_THROW(alg->attach(triangle, g), std::invalid_argument);
}

TEST(IEDyn, AgreesWithSymbiOnTreeQueries) {
  for (const std::uint64_t seed : {71ULL, 72ULL}) {
    SmallWorkload wl = tree_workload(seed);
    std::uint64_t totals[2] = {0, 0};
    int i = 0;
    for (const auto name : {"iedyn", "symbi"}) {
      auto alg = csm::make_algorithm(name);
      graph::DataGraph g = wl.graph;
      csm::SequentialEngine eng(*alg, wl.query, g);
      for (const auto& upd : wl.stream) totals[i] += eng.process(upd).delta_matches();
      ++i;
    }
    EXPECT_EQ(totals[0], totals[1]);
  }
}

// The exactness property: on a tree query, every candidate pair of the index
// appears in at least one full match (no dead candidates).
TEST(IEDyn, CandidateDpIsExactOnTrees) {
  // Keep the full graph (no held-out stream): the query's extraction site
  // then guarantees at least one injective match.
  // Seed chosen so the extracted tree query keeps the injectivity slack
  // below the bound; the extraction walk depends on adjacency order, so the
  // seed is re-tuned whenever the canonical neighbor order changes.
  SmallWorkload wl = make_workload(82, 32, 72, 3, 2, 5, 0.0, 0.0);
  wl.query = tree_of(wl.query);
  auto raw = csm::make_algorithm("iedyn");
  auto* alg = dynamic_cast<csm::IEDyn*>(raw.get());
  ASSERT_NE(alg, nullptr);
  alg->attach(wl.query, wl.graph);

  // Collect (u, v) participation from full enumeration.
  std::set<std::pair<graph::VertexId, graph::VertexId>> in_matches;
  csm::MatchSink sink;
  sink.on_match = [&](std::span<const csm::Assignment> mapping) {
    for (const auto& a : mapping) in_matches.emplace(a.qv, a.dv);
  };
  csm::enumerate_all_matches(wl.query, wl.graph, sink);

  ASSERT_FALSE(in_matches.empty());
  // Injectivity is the one constraint the DP cannot see (its guarantee is a
  // homomorphism): a candidate may be dead only because every completion
  // would reuse a vertex. Require the DP to be a superset with bounded
  // injectivity slack.
  std::uint64_t candidates = 0, dead = 0;
  for (graph::VertexId u = 0; u < wl.query.num_vertices(); ++u) {
    for (graph::VertexId v = 0; v < wl.graph.vertex_capacity(); ++v) {
      const bool cand = alg->index().candidate(u, v);
      const bool matched = in_matches.contains({u, v});
      if (matched) {
        EXPECT_TRUE(cand) << "candidate DP missed a real match vertex";
      }
      if (cand) {
        ++candidates;
        if (!matched) ++dead;
      }
    }
  }
  if (candidates > 0) {
    EXPECT_LE(static_cast<double>(dead) / static_cast<double>(candidates), 0.5);
  }
}

TEST(IEDyn, RunsUnderParaCosm) {
  SmallWorkload wl = tree_workload(91);
  std::uint64_t seq_total = 0;
  {
    auto alg = csm::make_algorithm("iedyn");
    graph::DataGraph g = wl.graph;
    csm::SequentialEngine eng(*alg, wl.query, g);
    for (const auto& upd : wl.stream) seq_total += eng.process(upd).delta_matches();
  }
  auto alg = csm::make_algorithm("iedyn");
  engine::Config cfg;
  cfg.threads = 4;
  graph::DataGraph g = wl.graph;
  engine::ParaCosm pc(*alg, wl.query, g, cfg);
  const engine::StreamResult r = pc.process_stream(wl.stream);
  EXPECT_EQ(r.delta_matches(), seq_total);
}

}  // namespace
}  // namespace paracosm::testing
