// Tests for the bench harness substrate: workload construction follows the
// paper's protocol and the runner produces consistent results across modes.
#include <gtest/gtest.h>

#include "bench_common/reporting.hpp"
#include "bench_common/runner.hpp"
#include "bench_common/workload.hpp"

namespace paracosm::bench {
namespace {

Workload tiny_workload() {
  graph::DatasetSpec spec{"tiny", 300, 8.0, 4, 2};
  return build_workload(spec, 4, 3, 0.10, 2024);
}

TEST(Workload, FollowsThePaperProtocol) {
  const Workload wl = tiny_workload();
  EXPECT_EQ(wl.queries.size(), 3u);
  for (const auto& q : wl.queries) {
    EXPECT_EQ(q.num_vertices(), 4u);
    EXPECT_TRUE(q.connected());
  }
  // ~10% of edges held out as insertions.
  const double total_edges =
      static_cast<double>(wl.graph.num_edges() + wl.stream.size());
  EXPECT_NEAR(static_cast<double>(wl.stream.size()) / total_edges, 0.10, 0.02);
  for (const auto& upd : wl.stream)
    EXPECT_EQ(upd.op, graph::UpdateOp::kInsertEdge);
}

TEST(Workload, DeterministicInSeed) {
  const Workload a = tiny_workload();
  const Workload b = tiny_workload();
  EXPECT_TRUE(a.graph.same_structure(b.graph));
  ASSERT_EQ(a.stream.size(), b.stream.size());
  for (std::size_t i = 0; i < a.stream.size(); ++i)
    EXPECT_EQ(a.stream[i], b.stream[i]);
}

TEST(Workload, StripEdgeLabelsZeroesEverything) {
  const Workload wl = tiny_workload();
  const Workload stripped = strip_edge_labels(wl);
  EXPECT_EQ(stripped.graph.num_edges(), wl.graph.num_edges());
  EXPECT_EQ(stripped.graph.num_edge_labels(), 1u);
  for (const auto& e : stripped.graph.edge_list()) EXPECT_EQ(e.elabel, 0u);
  for (const auto& upd : stripped.stream) EXPECT_EQ(upd.label, 0u);
  for (const auto& q : stripped.queries)
    for (const auto& e : q.edges()) EXPECT_EQ(e.elabel, 0u);
  // Vertex labels must be preserved.
  for (graph::VertexId v = 0; v < wl.graph.vertex_capacity(); ++v) {
    if (wl.graph.has_vertex(v)) {
      EXPECT_EQ(stripped.graph.label(v), wl.graph.label(v));
    }
  }
}

TEST(Runner, AllModesAgreeOnMatchTotals) {
  const Workload wl = tiny_workload();
  std::uint64_t reference = 0;
  bool first = true;
  for (const Mode mode :
       {Mode::kSequential, Mode::kInnerOnly, Mode::kInterOnly, Mode::kFull}) {
    RunConfig cfg;
    cfg.algorithm = "turboflux";
    cfg.mode = mode;
    cfg.threads = 3;
    const RunResult r = run_stream(wl, wl.queries.front(), cfg);
    EXPECT_TRUE(r.success) << mode_name(mode);
    if (first) {
      reference = r.delta_matches;
      first = false;
    } else {
      EXPECT_EQ(r.delta_matches, reference) << mode_name(mode);
    }
  }
}

TEST(Runner, SequentialReportsBreakdown) {
  const Workload wl = tiny_workload();
  RunConfig cfg;
  cfg.algorithm = "symbi";
  cfg.mode = Mode::kSequential;
  const RunResult r = run_stream(wl, wl.queries.front(), cfg);
  EXPECT_TRUE(r.success);
  EXPECT_GT(r.ads_ms + r.search_ms, 0.0);
  EXPECT_DOUBLE_EQ(r.sim_makespan_ms, r.cpu_ms);
}

TEST(Runner, ParallelReportsWorkerTimes) {
  const Workload wl = tiny_workload();
  RunConfig cfg;
  cfg.algorithm = "graphflow";
  cfg.mode = Mode::kFull;
  cfg.threads = 4;
  const RunResult r = run_stream(wl, wl.queries.front(), cfg);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.worker_busy_ns.size(), 4u);
  EXPECT_LE(r.sim_makespan_ms, r.cpu_ms + 1e-6);
  EXPECT_GT(r.classifier.total, 0u);
}

TEST(Runner, ExpiredBudgetMarksFailure) {
  const Workload wl = tiny_workload();
  RunConfig cfg;
  cfg.algorithm = "graphflow";
  cfg.mode = Mode::kSequential;
  cfg.timeout_ms = 1;  // stream processing will exceed 1 ms of budget rarely;
  // force failure deterministically by shrinking further via wall_factor on
  // the parallel path instead.
  cfg.mode = Mode::kFull;
  cfg.threads = 2;
  cfg.wall_factor = 0.0001;
  const RunResult r = run_stream(wl, wl.queries.front(), cfg);
  // Either the wall budget expired or the makespan exceeded 1 ms — both are
  // reported as failure.
  EXPECT_FALSE(r.success);
}

TEST(Runner, AggregateSuccessRate) {
  const Workload wl = tiny_workload();
  RunConfig cfg;
  cfg.algorithm = "newsp";
  cfg.mode = Mode::kSequential;
  const AggregateResult agg = run_all_queries(wl, cfg);
  EXPECT_DOUBLE_EQ(agg.success_rate, 100.0);
  EXPECT_GE(agg.mean_ms, 0.0);
}

TEST(Reporting, FormatSpeedupCases) {
  EXPECT_EQ(format_speedup(100, 25, true, true), "4.00x");
  EXPECT_EQ(format_speedup(100, 25, true, false), "TO");     // value timed out
  EXPECT_EQ(format_speedup(0, 25, false, true), ">TO");      // baseline timed out
  EXPECT_EQ(format_speedup(100, 0, true, true), "-");        // degenerate
}

TEST(Reporting, ResultsPathShape) {
  EXPECT_EQ(results_path("abc"), "results/abc.csv");
}

TEST(Reporting, ModeNames) {
  EXPECT_STREQ(mode_name(Mode::kSequential), "sequential");
  EXPECT_STREQ(mode_name(Mode::kInnerOnly), "inner");
  EXPECT_STREQ(mode_name(Mode::kInterOnly), "inter");
  EXPECT_STREQ(mode_name(Mode::kFull), "paracosm");
}

}  // namespace
}  // namespace paracosm::bench
