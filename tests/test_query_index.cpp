// Shared-evaluation data structures (ISSUE 6): the query bitmap, the label
// triple index (probe hit ⟺ the query has a matching edge — the kSafeLabel
// guarantee), the canonical key behind sub-pattern sharing (isomorphism
// invariance), and the NLF anchor table (a reject proves ΔM == 0).
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "csm/engine.hpp"
#include "paracosm/pattern_share.hpp"
#include "paracosm/query_index.hpp"
#include "tests/test_support.hpp"

namespace paracosm::testing {
namespace {

using engine::AnchorTable;
using engine::QueryBitmap;
using engine::QueryIndex;
using engine::canonical_query_key;

TEST(QueryBitmap, SetTestClearGrowAndIterate) {
  QueryBitmap b;
  EXPECT_FALSE(b.any());
  EXPECT_EQ(b.count(), 0u);
  for (const std::size_t bit : {0u, 1u, 63u, 64u, 200u, 1023u}) b.set(bit);
  for (const std::size_t bit : {0u, 1u, 63u, 64u, 200u, 1023u})
    EXPECT_TRUE(b.test(bit)) << bit;
  EXPECT_FALSE(b.test(2));
  EXPECT_FALSE(b.test(4096));  // past the end: false, no growth
  EXPECT_EQ(b.count(), 6u);

  std::vector<std::size_t> seen;
  b.for_each_set([&](std::size_t bit) { seen.push_back(bit); });
  EXPECT_EQ(seen, (std::vector<std::size_t>{0, 1, 63, 64, 200, 1023}));

  b.clear(63);
  b.clear(5000);  // out of range: no-op
  EXPECT_FALSE(b.test(63));
  EXPECT_EQ(b.count(), 5u);

  QueryBitmap other;
  other.set(63);
  other.set(2000);
  b.or_with(other);
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(2000));
  EXPECT_TRUE(b.test(1023));

  b.reset();
  EXPECT_FALSE(b.any());
  EXPECT_EQ(b.count(), 0u);
}

TEST(QueryIndex, ProbeMatchesBruteForceMatchingEdges) {
  util::Rng rng(4242);
  std::vector<graph::QueryGraph> queries;
  graph::DataGraph base = graph::generate_erdos_renyi(40, 110, 4, 3, rng);
  for (int i = 0; i < 6; ++i) {
    const auto q = graph::extract_query(base, 3 + (i % 3), rng);
    ASSERT_TRUE(q.has_value());
    queries.push_back(*q);
  }

  QueryIndex index;
  // Classes 0..4 exact; class 5 edge-label-blind (calig mode).
  for (std::size_t c = 0; c < queries.size(); ++c)
    index.add_class(c, queries[c], /*ignore_edge_labels=*/c == 5);

  QueryBitmap hits;
  for (graph::Label lu = 0; lu < 5; ++lu) {
    for (graph::Label lv = 0; lv < 5; ++lv) {
      for (graph::Label le = 0; le < 4; ++le) {
        hits.reset();
        index.probe(lu, lv, le, hits);
        for (std::size_t c = 0; c < queries.size(); ++c) {
          const bool expect =
              !queries[c].matching_edges(lu, lv, le, c == 5).empty();
          EXPECT_EQ(hits.test(c), expect)
              << "class " << c << " triple (" << lu << "," << lv << "," << le
              << ")";
        }
      }
    }
  }

  // remove_class erases exactly that class's bits.
  index.remove_class(2, queries[2], false);
  index.remove_class(5, queries[5], true);
  for (graph::Label lu = 0; lu < 5; ++lu)
    for (graph::Label lv = 0; lv < 5; ++lv)
      for (graph::Label le = 0; le < 4; ++le) {
        hits.reset();
        index.probe(lu, lv, le, hits);
        EXPECT_FALSE(hits.test(2));
        EXPECT_FALSE(hits.test(5));
        for (const std::size_t c : {0u, 1u, 3u, 4u})
          EXPECT_EQ(hits.test(c),
                    !queries[c].matching_edges(lu, lv, le, false).empty());
      }
}

/// Rebuild a query with its vertices renamed by `perm` (perm[old] = new).
graph::QueryGraph permuted(const graph::QueryGraph& q,
                           const std::vector<graph::VertexId>& perm) {
  const std::uint32_t n = q.num_vertices();
  std::vector<graph::Label> labels(n);
  for (graph::VertexId v = 0; v < n; ++v) labels[perm[v]] = q.label(v);
  std::vector<graph::Edge> edges;
  for (const graph::Edge& e : q.edges())
    edges.push_back({perm[e.u], perm[e.v], e.elabel});
  return graph::QueryGraph(labels, edges);
}

TEST(CanonicalQueryKey, InvariantUnderVertexPermutation) {
  util::Rng rng(333);
  graph::DataGraph base = graph::generate_erdos_renyi(40, 110, 3, 2, rng);
  for (int trial = 0; trial < 8; ++trial) {
    const auto q = graph::extract_query(base, 3 + (trial % 4), rng);
    ASSERT_TRUE(q.has_value());
    const std::string key = canonical_query_key(*q);
    EXPECT_FALSE(key.empty());

    std::vector<graph::VertexId> perm(q->num_vertices());
    std::iota(perm.begin(), perm.end(), 0);
    for (int shuffle = 0; shuffle < 4; ++shuffle) {
      for (std::size_t i = perm.size(); i > 1; --i)
        std::swap(perm[i - 1], perm[rng() % i]);
      EXPECT_EQ(canonical_query_key(permuted(*q, perm)), key)
          << "trial " << trial << " shuffle " << shuffle;
    }
  }
}

TEST(CanonicalQueryKey, DistinguishesLabelsAndStructure) {
  // Path with different vertex labels.
  const graph::QueryGraph path_a({0, 1, 2}, {{0, 1, 0}, {1, 2, 0}});
  const graph::QueryGraph path_b({0, 1, 1}, {{0, 1, 0}, {1, 2, 0}});
  EXPECT_NE(canonical_query_key(path_a), canonical_query_key(path_b));
  // Path vs triangle over the same labels.
  const graph::QueryGraph tri({0, 1, 2}, {{0, 1, 0}, {1, 2, 0}, {2, 0, 0}});
  EXPECT_NE(canonical_query_key(path_a), canonical_query_key(tri));
  // Edge labels matter.
  const graph::QueryGraph path_c({0, 1, 2}, {{0, 1, 1}, {1, 2, 0}});
  EXPECT_NE(canonical_query_key(path_a), canonical_query_key(path_c));
}

TEST(AnchorTable, RejectImpliesZeroDeltaM) {
  // For every update the sequential engine enumerates, check the anchor
  // filter first: when no anchor of the class passes (insert checked after
  // the edge exists, delete before removal — matching run_searches), the
  // engine must report ΔM == 0 for that update. The other direction is not
  // claimed (anchors may pass with no match).
  util::Rng rng(2024);
  graph::DataGraph base = graph::generate_erdos_renyi(32, 70, 3, 2, rng);
  const auto q = graph::extract_query(base, 4, rng);
  ASSERT_TRUE(q.has_value());
  auto stream = graph::make_mixed_stream(base, 0.4, 0.4, rng);

  AnchorTable anchors;
  anchors.add_class(0, *q, /*ignore_edge_labels=*/false);

  auto alg = csm::make_algorithm("graphflow");
  graph::DataGraph g = base;
  csm::SequentialEngine eng(*alg, *q, g);
  QueryBitmap passing;
  std::uint64_t checked = 0;
  std::uint64_t rejects = 0;
  for (const graph::GraphUpdate& upd : stream) {
    bool rejected = false;
    if (upd.op == graph::UpdateOp::kInsertEdge && g.has_vertex(upd.u) &&
        g.has_vertex(upd.v) && upd.u != upd.v && !g.has_edge(upd.u, upd.v)) {
      // Evaluate against the post-insert signatures the engine will see.
      graph::DataGraph probe = g;
      probe.add_edge(upd.u, upd.v, upd.label);
      passing.reset();
      anchors.filter(probe.label(upd.u), probe.label(upd.v), upd.label,
                     probe.nlf_signature(upd.u), probe.nlf_signature(upd.v),
                     passing, checked);
      rejected = !passing.test(0);
    } else if (upd.op == graph::UpdateOp::kRemoveEdge && g.has_vertex(upd.u) &&
               g.has_vertex(upd.v)) {
      const auto le = g.edge_label(upd.u, upd.v);
      if (le) {
        passing.reset();
        anchors.filter(g.label(upd.u), g.label(upd.v), *le,
                       g.nlf_signature(upd.u), g.nlf_signature(upd.v), passing,
                       checked);
        rejected = !passing.test(0);
      }
    }
    const auto out = eng.process(upd);
    if (rejected) {
      ++rejects;
      EXPECT_EQ(out.positive, 0u);
      EXPECT_EQ(out.negative, 0u);
    }
  }
  EXPECT_GT(checked, 0u);  // the filter actually evaluated anchors
  // remove_class empties the table: nothing passes, nothing is checked.
  anchors.remove_class(0, *q, false);
  EXPECT_EQ(anchors.num_entries(), 0u);
}

}  // namespace
}  // namespace paracosm::testing
