// Tests of the pre-ADS aggregate-invariant batch certifier (DESIGN.md §13.4,
// paracosm/invariant_stage.hpp).
//
// The certifier's one obligation is soundness: a certified batch must have
// ΔM == 0 for every update in it, under any interleaving the parallel apply
// can produce. The tests pin:
//
//   * certificate arithmetic at the deficit boundary (unit);
//   * fuzzed streams: an invariant-on engine produces byte-identical ΔM
//     (full mapping granularity) to an invariant-off engine, across the
//     index-free algorithms and several thread counts — certifying an
//     unsafe batch would show up here as a divergence;
//   * counter conservation: batches_checked == batches, lanes_certified ==
//     ClassifierStats::safe_invariant, and every batch is classified by
//     exactly one of {cpu backend, wide backend, certificate};
//   * incremental O(1) maintenance equals a from-scratch rebuild after
//     delete-heavy streams (including vertex-removal cascades);
//   * the engine's gates: no stage for ADS-bearing algorithms or kPaper
//     batches, regardless of Config::invariant_stage.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <tuple>
#include <vector>

#include "paracosm/invariant_stage.hpp"
#include "paracosm/paracosm.hpp"
#include "tests/test_support.hpp"

namespace paracosm::engine {
namespace {

using ::paracosm::testing::make_workload;
using ::paracosm::testing::SmallWorkload;
using graph::DataGraph;
using graph::GraphUpdate;
using graph::QueryGraph;

// ------------------------------------------------------------------- unit

/// Query: a triangle over labels (0,1,2) with edge label 1 everywhere —
/// need[] holds three distinct triples, one edge each... except (0,1),(1,2),
/// (0,2) are all distinct, so every triple needs exactly 1.
[[nodiscard]] QueryGraph triangle_query() {
  return QueryGraph({0, 1, 2},
                    {{0, 1, 1}, {1, 2, 1}, {0, 2, 1}});
}

TEST(InvariantStage, CertifiesExactlyUpToTheDeficit) {
  const QueryGraph q = triangle_query();
  DataGraph g;
  g.add_vertex(0);  // label 0
  g.add_vertex(1);
  g.add_vertex(2);
  // Empty graph: every triple has count 0, need 1 — deficit 1.
  InvariantStage stage(q, g, /*edge_label_blind=*/false);
  EXPECT_TRUE(stage.certify_batch(0));
  // One insert could fill a deficit-1 triple... but only one triple of the
  // three, so some triple stays deficient: still certifiable.
  EXPECT_TRUE(stage.certify_batch(0));

  // Now fill two of the three triples.
  ASSERT_TRUE(g.add_edge(0, 1, 1));
  stage.on_edge(0, 1, 1, +1);
  ASSERT_TRUE(g.add_edge(1, 2, 1));
  stage.on_edge(1, 2, 1, +1);
  // (0,2) still at count 0, need 1: a 0-insert batch is certifiable, a
  // 1-insert batch is NOT (that insert could complete the triangle).
  EXPECT_TRUE(stage.certify_batch(0));
  EXPECT_FALSE(stage.certify_batch(1));
}

TEST(InvariantStage, BlindStageFoldsEdgeLabelsTogether) {
  const QueryGraph q = triangle_query();
  DataGraph g;
  g.add_vertex(0);
  g.add_vertex(1);
  g.add_vertex(2);
  InvariantStage stage(q, g, /*edge_label_blind=*/true);
  // A blind stage must count an edge with ANY edge label into the triple.
  ASSERT_TRUE(g.add_edge(0, 1, 7));
  stage.on_edge(0, 1, 7, +1);
  for (const auto& t : stage.triples())
    if (t.lmin == 0 && t.lmax == 1) EXPECT_EQ(t.count, 1);
}

TEST(InvariantStage, EndpointLabelOrderIsNormalized) {
  const QueryGraph q = triangle_query();
  DataGraph g;
  g.add_vertex(0);
  g.add_vertex(1);
  g.add_vertex(2);
  InvariantStage stage(q, g, /*edge_label_blind=*/false);
  // Reporting (lv, lu) instead of (lu, lv) must hit the same triple.
  stage.on_edge(1, 0, 1, +1);
  for (const auto& t : stage.triples())
    if (t.lmin == 0 && t.lmax == 1) EXPECT_EQ(t.count, 1);
  stage.on_edge(0, 1, 1, -1);
  for (const auto& t : stage.triples()) EXPECT_EQ(t.count, 0);
}

// ------------------------------------------------- fuzzed ΔM equivalence

using Mapping = std::vector<csm::Assignment>;

[[nodiscard]] StreamResult run_stream(csm::CsmAlgorithm& alg, SmallWorkload& wl,
                                      bool invariant_on, unsigned threads,
                                      std::vector<Mapping>* mappings = nullptr) {
  Config cfg;
  cfg.threads = threads;
  cfg.batch_size = 4;
  cfg.invariant_stage = invariant_on;
  ParaCosm pc(alg, wl.query, wl.graph, cfg);
  if (mappings)
    pc.set_match_callback([mappings](std::span<const csm::Assignment> m) {
      mappings->emplace_back(m.begin(), m.end());
    });
  return pc.process_stream(wl.stream);
}

TEST(InvariantStageFuzz, CertifiedRunsMatchUncertifiedAtMappingGranularity) {
  for (const char* name : {"graphflow", "newsp"}) {
    for (std::uint64_t seed : {1u, 5u, 9u, 14u, 21u, 33u}) {
      SmallWorkload off_wl = make_workload(seed);
      SmallWorkload on_wl = off_wl;

      auto off_alg = csm::make_algorithm(name);
      auto on_alg = csm::make_algorithm(name);
      ASSERT_NE(off_alg, nullptr);
      ASSERT_NE(on_alg, nullptr);
      ASSERT_FALSE(off_alg->has_ads()) << name;

      std::vector<Mapping> off_maps, on_maps;
      const StreamResult off =
          run_stream(*off_alg, off_wl, false, /*threads=*/2, &off_maps);
      const StreamResult on =
          run_stream(*on_alg, on_wl, true, /*threads=*/2, &on_maps);

      EXPECT_EQ(off.positive, on.positive) << name << " seed " << seed;
      EXPECT_EQ(off.negative, on.negative) << name << " seed " << seed;
      // The deterministic delivery contract holds for both engines, so the
      // mapping sequences must be byte-identical, not just the totals.
      EXPECT_EQ(off_maps, on_maps) << name << " seed " << seed;
      EXPECT_TRUE(on_wl.graph.same_structure(off_wl.graph))
          << name << " seed " << seed;
    }
  }
}

TEST(InvariantStageFuzz, CountersConserveAcrossSeeds) {
  std::uint64_t total_certified_batches = 0;
  for (std::uint64_t seed : {2u, 6u, 10u, 18u, 27u, 40u}) {
    // Single-label workloads whose stream rebuilds most of the graph: the
    // lone label triple starts deficient (need == query edges, count ==
    // the few surviving initial edges), so early batches are certifiable.
    SmallWorkload wl =
        make_workload(seed, /*n=*/24, /*m=*/40, /*vlabels=*/1, /*elabels=*/1,
                      /*query_size=*/6, /*insert_fraction=*/0.95,
                      /*delete_fraction=*/0.3);
    auto alg = csm::make_algorithm("graphflow");
    ASSERT_NE(alg, nullptr);
    const StreamResult r = run_stream(*alg, wl, true, /*threads=*/2);

    // Every batch is checked; every certified lane is tallied exactly once.
    EXPECT_EQ(r.invariant.batches_checked, r.batches) << "seed " << seed;
    EXPECT_EQ(r.classifier.safe_invariant, r.invariant.lanes_certified)
        << "seed " << seed;
    EXPECT_LE(r.invariant.batches_certified, r.invariant.batches_checked);
    // Exactly one classification route per batch.
    EXPECT_EQ(r.backend_cpu.batches + r.backend_wide.batches +
                  r.invariant.batches_certified,
              r.batches)
        << "seed " << seed;
    total_certified_batches += r.invariant.batches_certified;
  }
  // The sweep must actually exercise the certificate, or the equivalence
  // tests above prove nothing. Streams start from a sparse prefix where
  // deficits are common, so certified batches should exist.
  EXPECT_GT(total_certified_batches, 0u)
      << "no batch was ever certified — the stage is dead code in this sweep";
}

// Deterministic certified path: a 3-edge single-label path query over an
// initially empty graph — need[(0,0,0)] == 3, so a 2-insert batch is
// certifiable exactly while count + 2 < 3, i.e. for the very first batch.
TEST(InvariantStage, DeterministicBatchCertificationThroughTheEngine) {
  const QueryGraph q({0, 0, 0, 0}, {{0, 1, 0}, {1, 2, 0}, {2, 3, 0}});

  const auto build_stream = [] {
    // Endpoint-disjoint pairs first so strict mode can apply both lanes of
    // the certified batch, then the stitching edges that share endpoints.
    std::vector<GraphUpdate> s;
    for (graph::VertexId v = 0; v + 1 < 8; v += 2)
      s.push_back(GraphUpdate::insert_edge(v, v + 1, 0));
    for (graph::VertexId v = 1; v + 1 < 8; v += 2)
      s.push_back(GraphUpdate::insert_edge(v, v + 1, 0));
    return s;
  };

  auto on_alg = csm::make_algorithm("graphflow");
  auto off_alg = csm::make_algorithm("graphflow");
  ASSERT_NE(on_alg, nullptr);
  ASSERT_NE(off_alg, nullptr);

  const auto run = [&](csm::CsmAlgorithm& alg, bool invariant_on) {
    DataGraph g;
    for (int v = 0; v < 8; ++v) (void)g.add_vertex(0);
    Config cfg;
    cfg.threads = 2;
    cfg.batch_size = 2;
    cfg.invariant_stage = invariant_on;
    ParaCosm pc(alg, q, g, cfg);
    const std::vector<GraphUpdate> stream = build_stream();
    return pc.process_stream(stream);
  };

  const StreamResult on = run(*on_alg, true);
  const StreamResult off = run(*off_alg, false);

  EXPECT_GE(on.invariant.batches_certified, 1u)
      << "the first 2-insert batch (count 0 + 2 < need 3) must certify";
  EXPECT_GE(on.invariant.lanes_certified, 2u);
  EXPECT_EQ(on.classifier.safe_invariant, on.invariant.lanes_certified);
  EXPECT_EQ(on.backend_cpu.batches + on.backend_wide.batches +
                on.invariant.batches_certified,
            on.batches);
  // Soundness on this exact trace: identical ΔM with and without the stage.
  EXPECT_EQ(on.positive, off.positive);
  EXPECT_EQ(on.negative, off.negative);
}

// --------------------------------------- incremental vs recomputed counts

using TripleKey = std::tuple<graph::Label, graph::Label, graph::Label>;

[[nodiscard]] std::map<TripleKey, std::int64_t> counts_of(
    const InvariantStage& s) {
  std::map<TripleKey, std::int64_t> m;
  for (const auto& t : s.triples()) m[{t.lmin, t.lmax, t.elabel}] = t.count;
  return m;
}

TEST(InvariantStageFuzz, IncrementalCountsEqualRebuildAfterDeleteHeavyStreams) {
  for (std::uint64_t seed : {3u, 8u, 13u, 29u}) {
    // Delete-heavy: most of the stream removes edges, including via vertex
    // removals' cascades (make_mixed_stream emits edge ops; the engine's
    // vertex paths are covered by the relabel/removal unit tests).
    SmallWorkload wl =
        make_workload(seed, /*n=*/32, /*m=*/72, /*vlabels=*/3, /*elabels=*/2,
                      /*query_size=*/4, /*insert_fraction=*/0.2,
                      /*delete_fraction=*/0.8);
    auto alg = csm::make_algorithm("graphflow");
    ASSERT_NE(alg, nullptr);

    Config cfg;
    cfg.threads = 2;
    cfg.batch_size = 4;
    cfg.invariant_stage = true;
    ParaCosm pc(*alg, wl.query, wl.graph, cfg);
    ASSERT_NE(pc.invariant_stage(), nullptr);
    (void)pc.process_stream(wl.stream);

    // A fresh stage built over the final graph is the recompute oracle.
    const InvariantStage oracle(wl.query, wl.graph,
                                !alg->uses_edge_labels());
    EXPECT_EQ(counts_of(*pc.invariant_stage()), counts_of(oracle))
        << "seed " << seed
        << ": O(1) maintenance drifted from the true counts";
  }
}

TEST(InvariantStage, VertexRemovalCascadeKeepsCountsExact) {
  SmallWorkload wl = make_workload(/*seed=*/17);
  auto alg = csm::make_algorithm("graphflow");
  ASSERT_NE(alg, nullptr);
  Config cfg;
  cfg.threads = 2;
  cfg.invariant_stage = true;
  ParaCosm pc(*alg, wl.query, wl.graph, cfg);
  ASSERT_NE(pc.invariant_stage(), nullptr);

  // Remove every other live vertex through the engine (cascading edge
  // removals route through process_edge's maintenance hooks).
  std::vector<graph::VertexId> victims;
  for (graph::VertexId v = 0; v < wl.graph.vertex_capacity(); v += 2)
    if (wl.graph.has_vertex(v)) victims.push_back(v);
  for (graph::VertexId v : victims)
    (void)pc.process(GraphUpdate::remove_vertex(v));

  const InvariantStage oracle(wl.query, wl.graph, !alg->uses_edge_labels());
  EXPECT_EQ(counts_of(*pc.invariant_stage()), counts_of(oracle));
}

// ----------------------------------------------------------------- gating

TEST(InvariantStageGate, AdsAlgorithmsAndPaperModeDisableTheStage) {
  SmallWorkload wl = make_workload(/*seed=*/4);

  {
    auto ads_alg = csm::make_algorithm("turboflux");
    ASSERT_NE(ads_alg, nullptr);
    ASSERT_TRUE(ads_alg->has_ads());
    Config cfg;
    cfg.invariant_stage = true;
    SmallWorkload w = wl;
    ParaCosm pc(*ads_alg, w.query, w.graph, cfg);
    EXPECT_EQ(pc.invariant_stage(), nullptr)
        << "an ADS-bearing algorithm must never get the stage";
    const StreamResult r = pc.process_stream(w.stream);
    EXPECT_EQ(r.invariant.batches_checked, 0u);
    EXPECT_EQ(r.classifier.safe_invariant, 0u);
  }
  {
    auto alg = csm::make_algorithm("graphflow");
    ASSERT_NE(alg, nullptr);
    Config cfg;
    cfg.invariant_stage = true;
    cfg.batch_mode = BatchMode::kPaper;
    SmallWorkload w = wl;
    ParaCosm pc(*alg, w.query, w.graph, cfg);
    EXPECT_EQ(pc.invariant_stage(), nullptr)
        << "kPaper duplicate lanes would corrupt sequential maintenance";
  }
  {
    auto alg = csm::make_algorithm("graphflow");
    ASSERT_NE(alg, nullptr);
    Config cfg;  // invariant_stage defaults to false
    SmallWorkload w = wl;
    ParaCosm pc(*alg, w.query, w.graph, cfg);
    EXPECT_EQ(pc.invariant_stage(), nullptr) << "the knob defaults off";
  }
  {
    auto alg = csm::make_algorithm("graphflow");
    ASSERT_NE(alg, nullptr);
    Config cfg;
    cfg.invariant_stage = true;
    SmallWorkload w = wl;
    ParaCosm pc(*alg, w.query, w.graph, cfg);
    EXPECT_NE(pc.invariant_stage(), nullptr)
        << "index-free + kStrict is exactly where the stage engages";
  }
}

}  // namespace
}  // namespace paracosm::engine
