// End-to-end observability tests (ISSUE 5): drive a fixed update stream with
// tracing enabled and check the recorded span tree against the engine's own
// accounting — task spans nest inside update spans, batch spans contain only
// the safe phases, counts match StreamResult exactly — and that tracing is
// purely observational (match delivery is byte-identical traced vs untraced).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "csm/algorithm.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/trace_ring.hpp"
#include "paracosm/paracosm.hpp"
#include "service/service.hpp"
#include "tests/test_support.hpp"

namespace paracosm {
namespace {

using graph::GraphUpdate;
using obs::EventKind;
using obs::RingSnapshot;
using obs::TraceEvent;
using obs::TraceRegistry;

#if defined(PARACOSM_TRACE_ENABLED)

struct TraceLevelGuard {
  ~TraceLevelGuard() { obs::set_trace_level(0); }
};

// A span as a closed wall-clock interval; instants have end == start.
struct Interval {
  std::int64_t start;
  std::int64_t end;
};

[[nodiscard]] bool contains(const Interval& outer, const Interval& inner) {
  return outer.start <= inner.start && inner.end <= outer.end;
}

[[nodiscard]] bool contained_in_any(const std::vector<Interval>& outers,
                                    const Interval& inner) {
  for (const Interval& o : outers)
    if (contains(o, inner)) return true;
  return false;
}

struct CollectedTrace {
  std::vector<RingSnapshot> rings;

  [[nodiscard]] std::uint64_t count(EventKind kind) const {
    std::uint64_t n = 0;
    for (const RingSnapshot& ring : rings)
      for (const TraceEvent& ev : ring.events)
        if (ev.kind == static_cast<std::uint32_t>(kind)) ++n;
    return n;
  }

  [[nodiscard]] std::vector<Interval> intervals(EventKind kind) const {
    std::vector<Interval> out;
    for (const RingSnapshot& ring : rings)
      for (const TraceEvent& ev : ring.events)
        if (ev.kind == static_cast<std::uint32_t>(kind))
          out.push_back({ev.ts_ns,
                         ev.dur_ns < 0 ? ev.ts_ns : ev.ts_ns + ev.dur_ns});
    return out;
  }

  [[nodiscard]] std::uint64_t total_dropped() const {
    std::uint64_t n = 0;
    for (const RingSnapshot& ring : rings) n += ring.dropped;
    return n;
  }
};

// Reset the registry for a fresh run and size rings so nothing is dropped
// (dropped events would invalidate the exact count assertions below).
void reset_tracing(std::size_t ring_capacity) {
  obs::set_trace_level(0);
  TraceRegistry::instance().clear();
  TraceRegistry::instance().set_ring_capacity(ring_capacity);
}

CollectedTrace collect_tracing() {
  obs::set_trace_level(0);
  return CollectedTrace{TraceRegistry::instance().collect()};
}

// ~500-update mixed stream; deterministic in the seed.
testing::SmallWorkload fixed_workload() {
  testing::SmallWorkload wl =
      testing::make_workload(/*seed=*/17, /*n=*/128, /*m=*/950);
  EXPECT_GE(wl.stream.size(), 300u);
  if (wl.stream.size() > 500) wl.stream.resize(500);
  return wl;
}

engine::Config fast_config(unsigned threads) {
  engine::Config cfg;
  cfg.threads = threads;
  cfg.batch_size = 8;
  cfg.queue_spin_iters = 1;
  cfg.pool_spin_iters = 1;
  return cfg;
}

// ------------------------------------------------------------ span tree

TEST(ObsIntegration, SpanTreeMatchesEngineAccounting) {
  TraceLevelGuard guard;
  reset_tracing(1 << 16);
  testing::SmallWorkload wl = fixed_workload();
  const auto alg = csm::make_algorithm("graphflow");

  obs::set_trace_level(1);  // before the ctor: workers name their lanes
  engine::ParaCosm pc(*alg, wl.query, wl.graph, fast_config(4));
  const engine::StreamResult res = pc.process_stream(wl.stream);
  const CollectedTrace trace = collect_tracing();

  ASSERT_EQ(trace.total_dropped(), 0u) << "grow the test ring capacity";
  EXPECT_EQ(res.updates_processed, wl.stream.size());
  EXPECT_EQ(res.updates_processed, res.safe_applied + res.unsafe_sequential);

  // Exact correspondence between the trace and the engine's own counters:
  // one kUpdate span per unsafe (sequentially processed) update, one
  // kSafeApply instant per batch-applied safe update, one kBatch span per
  // batch, and at least one kClassify span per processed update (deferred
  // updates are re-classified in a later batch).
  EXPECT_EQ(trace.count(EventKind::kUpdate), res.unsafe_sequential);
  EXPECT_EQ(trace.count(EventKind::kSafeApply), res.safe_applied);
  EXPECT_EQ(trace.count(EventKind::kBatch), res.batches);
  EXPECT_GE(trace.count(EventKind::kClassify), res.updates_processed);
  // One kBatchBackend completion per classified batch, and the per-backend
  // counters partition the stream's batches exactly (DESIGN.md §11).
  EXPECT_EQ(trace.count(EventKind::kBatchBackend), res.batches);
  EXPECT_EQ(res.backend_cpu.batches + res.backend_wide.batches, res.batches);
  EXPECT_GT(res.unsafe_sequential, 0u) << "stream exercised no searches";
  EXPECT_GT(res.safe_applied, 0u) << "stream exercised no batch fast path";

  // Level 1 excludes the per-search-node instants.
  EXPECT_EQ(trace.count(EventKind::kBacktrackEnter), 0u);
  EXPECT_EQ(trace.count(EventKind::kPrune), 0u);
  EXPECT_EQ(trace.count(EventKind::kEmit), 0u);

  const std::vector<Interval> updates = trace.intervals(EventKind::kUpdate);
  const std::vector<Interval> batches = trace.intervals(EventKind::kBatch);

  // Every task expansion happens during some update's span (the update span
  // closes only after the worker pool quiesced).
  for (const Interval& task : trace.intervals(EventKind::kTaskExpand))
    EXPECT_TRUE(contained_in_any(updates, task))
        << "task span outside every update span";

  // Batch spans cover classify + safe-apply only: classification spans and
  // safe-apply instants land inside them, unsafe update spans never do.
  for (const Interval& c : trace.intervals(EventKind::kClassify))
    EXPECT_TRUE(contained_in_any(batches, c))
        << "classify span outside every batch span";
  for (const Interval& s : trace.intervals(EventKind::kSafeApply))
    EXPECT_TRUE(contained_in_any(batches, s))
        << "safe-apply instant outside every batch span";
  for (const Interval& u : updates)
    for (const Interval& b : batches)
      EXPECT_FALSE(u.start < b.end && b.start < u.end)
          << "unsafe update span overlaps a batch span";

  // Per-lane epoch stamps are strictly monotonic (consecutive: no drops).
  for (const RingSnapshot& ring : trace.rings)
    for (std::size_t i = 1; i < ring.events.size(); ++i)
      ASSERT_EQ(ring.events[i].seq, ring.events[i - 1].seq + 1)
          << "lane " << ring.name;

  // Worker lanes got named by the pool; batch spans live on the caller lane.
  bool saw_worker = false;
  for (const RingSnapshot& ring : trace.rings)
    saw_worker |= ring.name.rfind("worker ", 0) == 0;
  EXPECT_TRUE(saw_worker);

  // The collected trace exports to a loadable Chrome trace.
  const std::string path = ::testing::TempDir() + "/obs_integration_trace.json";
  obs::write_chrome_trace(path, trace.rings);
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(buf.str().find("\"name\":\"update\""), std::string::npos);
  EXPECT_NE(buf.str().find("\"name\":\"batch\""), std::string::npos);
}

// ------------------------------------------------ backend counter conservation

TEST(ObsIntegration, BackendCountersConserveStreamAccounting) {
  TraceLevelGuard guard;
  for (const auto kind :
       {engine::BatchBackendKind::kCpu, engine::BatchBackendKind::kWide,
        engine::BatchBackendKind::kAuto}) {
    testing::SmallWorkload wl = fixed_workload();
    const auto alg = csm::make_algorithm("graphflow");
    engine::Config cfg = fast_config(4);
    cfg.batch_backend = kind;
    engine::ParaCosm pc(*alg, wl.query, wl.graph, cfg);
    const engine::StreamResult res = pc.process_stream(wl.stream);

    const engine::BatchBackendStats& bc = res.backend_cpu;
    const engine::BatchBackendStats& bw = res.backend_wide;
    // Every batch is classified by exactly one backend; every classified
    // lane lands in exactly one verdict bucket; every wide lane is resolved
    // exactly once (prepass, mask stage, or scalar fallback).
    EXPECT_EQ(bc.batches + bw.batches, res.batches);
    for (const engine::BatchBackendStats* s : {&bc, &bw})
      EXPECT_EQ(s->lanes,
                s->safe_label + s->safe_degree + s->safe_ads + s->unsafe_lanes);
    EXPECT_EQ(bw.lanes, bw.wide_resolved() + bw.scalar_fallbacks);
    EXPECT_EQ(bw.batches, bw.avx2_batches + bw.swar_batches);
    // Deferred updates are re-classified in a later batch, so classified
    // lanes can only exceed the processed-update count.
    EXPECT_GE(bc.lanes + bw.lanes, res.updates_processed);
#ifdef PARACOSM_VERIFY
    // One shadow diff per wide batch; a divergence throws, so a finished
    // stream implies every diff ran clean.
    EXPECT_EQ(bw.verify_diffs, bw.batches);
#else
    EXPECT_EQ(bw.verify_diffs, 0u);
#endif
    if (kind == engine::BatchBackendKind::kCpu) EXPECT_EQ(bw.batches, 0u);
    if (kind == engine::BatchBackendKind::kWide) EXPECT_EQ(bc.batches, 0u);
  }
}

// ------------------------------------------- tracing is purely observational

// Serialize the deterministic merged match delivery (csm/match.hpp contract)
// so two runs can be compared byte-for-byte.
std::vector<std::uint32_t> run_and_serialize_matches(int trace_level) {
  testing::SmallWorkload wl = fixed_workload();
  const auto alg = csm::make_algorithm("graphflow");
  obs::set_trace_level(trace_level);
  engine::ParaCosm pc(*alg, wl.query, wl.graph, fast_config(4));
  std::vector<std::uint32_t> bytes;
  pc.set_match_callback([&bytes](std::span<const csm::Assignment> m) {
    for (const csm::Assignment& a : m) {
      bytes.push_back(a.qv);
      bytes.push_back(a.dv);
    }
    bytes.push_back(~0u);  // delivery separator
  });
  const engine::StreamResult res = pc.process_stream(wl.stream);
  obs::set_trace_level(0);
  bytes.push_back(static_cast<std::uint32_t>(res.positive));
  bytes.push_back(static_cast<std::uint32_t>(res.negative));
  return bytes;
}

TEST(ObsIntegration, TracedRunDeliversIdenticalMatches) {
  TraceLevelGuard guard;
  reset_tracing(1 << 16);
  const std::vector<std::uint32_t> untraced = run_and_serialize_matches(0);
  const std::vector<std::uint32_t> traced = run_and_serialize_matches(1);
  EXPECT_GT(untraced.size(), 2u) << "workload produced no matches";
  EXPECT_EQ(traced, untraced);
}

// ------------------------------------------------- level 2 search instants

TEST(ObsIntegration, LevelTwoRecordsPerNodeInstants) {
  TraceLevelGuard guard;
  reset_tracing(1 << 17);  // per-node instants are plentiful
  testing::SmallWorkload wl = testing::make_workload(/*seed=*/5);
  const auto alg = csm::make_algorithm("graphflow");

  // Raise the level only after construction: the offline attach stage also
  // backtracks (initial matches), and those per-node instants would otherwise
  // break the exact kEmit == ΔM correspondence below.
  engine::ParaCosm pc(*alg, wl.query, wl.graph, fast_config(2));
  obs::set_trace_level(2);
  const engine::StreamResult res = pc.process_stream(wl.stream);
  const CollectedTrace trace = collect_tracing();

  ASSERT_EQ(trace.total_dropped(), 0u) << "grow the test ring capacity";
  EXPECT_GT(trace.count(EventKind::kBacktrackEnter), 0u);
  // One kEmit instant per emitted mapping — exactly the ΔM the run reported.
  EXPECT_EQ(trace.count(EventKind::kEmit), res.positive + res.negative);
  EXPECT_GT(res.positive + res.negative, 0u) << "workload produced no matches";
}

// ---------------------------------------------------------- service layer

TEST(ObsIntegration, ServiceSpansAndPeriodicMetricsFlush) {
  TraceLevelGuard guard;
  reset_tracing(1 << 16);
  testing::SmallWorkload wl = testing::make_workload(/*seed=*/400);
  const auto alg = csm::make_algorithm("graphflow");

  engine::Config cfg = fast_config(2);
  cfg.inter_parallelism = false;
  obs::set_trace_level(1);
  engine::ParaCosm pc(*alg, wl.query, wl.graph, cfg);

  service::ServiceOptions sopts;
  sopts.wal_path = ::testing::TempDir() + "/obs_service.wal";
  sopts.metrics_path = ::testing::TempDir() + "/obs_service_metrics.json";
  sopts.metrics_every = 10;
  service::ServiceReport report;
  {
    service::StreamService svc(pc, sopts);
    for (const GraphUpdate& u : wl.stream) (void)svc.submit(u);
    report = svc.finish();
  }
  const CollectedTrace trace = collect_tracing();

  ASSERT_TRUE(report.error.empty()) << report.error;
  ASSERT_EQ(trace.total_dropped(), 0u);
  EXPECT_EQ(report.stats.processed, wl.stream.size());

  // One service span per processed update; one WAL append + fsync span per
  // durable record; one metrics-flush span per snapshot written (periodic
  // flushes every 10 updates plus the final flush in finish()).
  EXPECT_EQ(trace.count(EventKind::kServiceUpdate), report.stats.processed);
  EXPECT_EQ(trace.count(EventKind::kWalAppend), report.stats.wal_records);
  EXPECT_EQ(trace.count(EventKind::kWalFsync), report.stats.wal_records);
  EXPECT_EQ(report.stats.metrics_flushes,
            report.stats.processed / sopts.metrics_every + 1);
  EXPECT_EQ(trace.count(EventKind::kMetricsFlush), report.stats.metrics_flushes);

  // WAL spans nest inside their update's service span.
  const std::vector<Interval> service_spans =
      trace.intervals(EventKind::kServiceUpdate);
  for (const Interval& w : trace.intervals(EventKind::kWalAppend))
    EXPECT_TRUE(contained_in_any(service_spans, w));
  for (const Interval& f : trace.intervals(EventKind::kWalFsync))
    EXPECT_TRUE(contained_in_any(service_spans, f));

  // The consumer thread named its lane, and it owns the service spans.
  bool saw_service_lane = false;
  for (const RingSnapshot& ring : trace.rings) {
    if (ring.name != "service") continue;
    saw_service_lane = true;
    std::uint64_t spans = 0;
    for (const TraceEvent& ev : ring.events)
      if (ev.kind == static_cast<std::uint32_t>(EventKind::kServiceUpdate))
        ++spans;
    EXPECT_EQ(spans, report.stats.processed);
  }
  EXPECT_TRUE(saw_service_lane);

  // The histogram-backed report covers every update, and the metrics file on
  // disk carries the end-of-run totals.
  EXPECT_EQ(report.latency.count(), report.stats.processed);
  std::ifstream in(sopts.metrics_path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(
      buf.str().find("\"service.processed\": " +
                     std::to_string(report.stats.processed)),
      std::string::npos)
      << buf.str();
  EXPECT_NE(buf.str().find("\"service.latency_ns.p99\""), std::string::npos);
}

#else  // !PARACOSM_TRACE_ENABLED

TEST(ObsIntegration, SkippedWithoutTraceInstrumentation) {
  GTEST_SKIP() << "built with PARACOSM_TRACE=OFF — no instrumentation points";
}

#endif

}  // namespace
}  // namespace paracosm
