// Soundness of the update type classifier (the heart of inter-update
// parallelism): every update classified safe must (a) produce an empty ΔM
// and (b) leave the auxiliary structure semantically unchanged. A single
// violation would make the batch executor silently wrong, so this is tested
// exhaustively over random streams for every algorithm.
#include <gtest/gtest.h>

#include "paracosm/classifier.hpp"
#include "tests/test_support.hpp"

namespace paracosm::testing {
namespace {

using engine::UpdateClass;
using engine::UpdateClassifier;

class ClassifierSoundness
    : public ::testing::TestWithParam<std::pair<std::string, std::uint64_t>> {};

TEST_P(ClassifierSoundness, SafeImpliesEmptyDeltaM) {
  const auto& [name, seed] = GetParam();
  auto alg = csm::make_algorithm(name);
  ASSERT_NE(alg, nullptr);
  SmallWorkload wl = make_workload(seed, 40, 100, 3, 2, 5);
  csm::SequentialEngine eng(*alg, wl.query, wl.graph);
  UpdateClassifier classifier(wl.query, wl.graph, *alg);
  std::uint64_t safe_count = 0;
  for (const auto& upd : wl.stream) {
    const UpdateClass verdict = classifier.classify(upd);
    const csm::UpdateOutcome out = eng.process(upd);
    if (engine::is_safe(verdict)) {
      ++safe_count;
      EXPECT_EQ(out.delta_matches(), 0u)
          << name << ": update classified safe produced matches";
    }
  }
  // Real workloads are dominated by safe updates (paper Table 4); make sure
  // the property was actually exercised.
  EXPECT_GT(safe_count, 0u) << name;
}

TEST_P(ClassifierSoundness, SafeInsertLeavesIndexEqualToRebuild) {
  const auto& [name, seed] = GetParam();
  auto alg = csm::make_algorithm(name);
  ASSERT_NE(alg, nullptr);
  if (!alg->has_ads()) GTEST_SKIP() << "no ADS to validate";
  // Re-attach per update is expensive; validate on a smaller workload.
  SmallWorkload wl = make_workload(seed + 7, 24, 56, 2, 1, 4);
  csm::SequentialEngine eng(*alg, wl.query, wl.graph);
  UpdateClassifier classifier(wl.query, wl.graph, *alg);
  for (const auto& upd : wl.stream) {
    const bool safe = engine::is_safe(classifier.classify(upd));
    eng.process(upd);
    if (!safe) continue;
    // After a safe update the incremental state must equal a fresh build;
    // verified indirectly: a re-attached twin algorithm enumerates the same
    // ΔM for every subsequent update (states_equal is covered per-index in
    // test_indexes.cpp; here we check at algorithm level).
    auto twin = csm::make_algorithm(name);
    twin->attach(wl.query, wl.graph);
    graph::DataGraph probe_graph = wl.graph;
    // No cheap deep-equality across algorithms: compare seed sets on a few
    // synthetic probes.
    for (const auto& e : wl.query.edges()) {
      std::vector<csm::SearchTask> a, b;
      const auto probe = graph::GraphUpdate::insert_edge(0, 1, e.elabel);
      if (!wl.graph.has_edge(0, 1)) continue;
      alg->seeds(probe, a);
      twin->seeds(probe, b);
      EXPECT_EQ(a.size(), b.size()) << name;
    }
  }
}

std::vector<std::pair<std::string, std::uint64_t>> classifier_cases() {
  std::vector<std::pair<std::string, std::uint64_t>> cases;
  for (const auto name : csm::algorithm_names())
    for (std::uint64_t seed : {3ULL, 13ULL, 23ULL})
      cases.emplace_back(std::string(name), seed);
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, ClassifierSoundness,
                         ::testing::ValuesIn(classifier_cases()),
                         [](const auto& info) {
                           return info.param.first + "_seed" +
                                  std::to_string(info.param.second);
                         });

TEST(ClassifierStages, LabelMismatchIsStage1Safe) {
  // Query uses labels {0,1}; an edge between two label-5 vertices matches no
  // triple and must be classified safe by stage 1 for every algorithm.
  graph::DataGraph g;
  for (int i = 0; i < 6; ++i) g.add_vertex(i < 3 ? 0u : 1u);
  const auto a = g.add_vertex(5);
  const auto b = g.add_vertex(5);
  g.add_edge(0, 3, 0);
  g.add_edge(1, 4, 0);
  graph::QueryGraph q({0, 1}, {{0, 1, 0}});
  for (const auto name : csm::algorithm_names()) {
    auto alg = csm::make_algorithm(name);
    alg->attach(q, g);
    UpdateClassifier classifier(q, g, *alg);
    EXPECT_EQ(classifier.classify(graph::GraphUpdate::insert_edge(a, b, 0)),
              UpdateClass::kSafeLabel)
        << name;
  }
}

TEST(ClassifierStages, MatchCreatingInsertIsUnsafe) {
  // Inserting the exact missing edge of a would-be match must be unsafe.
  graph::DataGraph g;
  g.add_vertex(0);
  g.add_vertex(1);
  g.add_vertex(2);
  g.add_edge(0, 1, 0);
  g.add_edge(1, 2, 0);
  graph::QueryGraph q({0, 1, 2}, {{0, 1, 0}, {1, 2, 0}, {0, 2, 0}});
  for (const auto name : csm::algorithm_names()) {
    auto alg = csm::make_algorithm(name);
    alg->attach(q, g);
    UpdateClassifier classifier(q, g, *alg);
    EXPECT_EQ(classifier.classify(graph::GraphUpdate::insert_edge(0, 2, 0)),
              UpdateClass::kUnsafe)
        << name;
  }
}

TEST(ClassifierStages, VertexOpsAndNoOpsRouteSequentially) {
  SmallWorkload wl = make_workload(61);
  auto alg = csm::make_algorithm("graphflow");
  alg->attach(wl.query, wl.graph);
  UpdateClassifier classifier(wl.query, wl.graph, *alg);
  EXPECT_EQ(classifier.classify(graph::GraphUpdate::insert_vertex(9999, 0)),
            UpdateClass::kUnsafe);
  EXPECT_EQ(classifier.classify(graph::GraphUpdate::remove_vertex(0)),
            UpdateClass::kUnsafe);
  // Phantom removal (edge absent) and duplicate insert are sequential no-ops.
  graph::VertexId u = 0, v = 0;
  for (graph::VertexId cand = 1; cand < wl.graph.vertex_capacity(); ++cand)
    if (!wl.graph.has_edge(0, cand)) {
      v = cand;
      break;
    }
  EXPECT_EQ(classifier.classify(graph::GraphUpdate::remove_edge(u, v, 0)),
            UpdateClass::kUnsafe);
}

}  // namespace
}  // namespace paracosm::testing
