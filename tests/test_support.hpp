// Shared helpers for the test suite: small random workloads and the
// oracle-diff harness every correctness test builds on.
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "csm/algorithm.hpp"
#include "csm/engine.hpp"
#include "csm/oracle.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace paracosm::testing {

using graph::DataGraph;
using graph::GraphUpdate;
using graph::QueryGraph;

struct SmallWorkload {
  DataGraph graph;                  // initial state (stream edges removed)
  QueryGraph query;
  std::vector<GraphUpdate> stream;  // insertions then deletions
};

/// Random Erdos–Renyi workload with a query extracted from the full graph
/// (so matches are guaranteed to exist somewhere along the stream).
inline SmallWorkload make_workload(std::uint64_t seed, std::uint32_t n = 32,
                                   std::uint64_t m = 72, std::uint32_t vlabels = 3,
                                   std::uint32_t elabels = 2,
                                   std::uint32_t query_size = 4,
                                   double insert_fraction = 0.35,
                                   double delete_fraction = 0.5) {
  util::Rng rng(seed);
  for (int attempt = 0; attempt < 64; ++attempt) {
    DataGraph g = graph::generate_erdos_renyi(n, m, vlabels, elabels, rng);
    auto q = graph::extract_query(g, query_size, rng);
    if (!q) continue;
    auto stream = graph::make_mixed_stream(g, insert_fraction, delete_fraction, rng);
    if (insert_fraction > 0.0 && stream.empty()) continue;
    return SmallWorkload{std::move(g), std::move(*q), std::move(stream)};
  }
  ADD_FAILURE() << "could not build a workload for seed " << seed;
  return {};
}

/// Drive `alg` through the stream with the sequential engine, checking every
/// ΔM against the brute-force recompute oracle. Returns total |ΔM|.
inline std::uint64_t check_against_oracle(csm::CsmAlgorithm& alg, SmallWorkload wl) {
  DataGraph mirror = wl.graph;  // oracle's copy, updated in lock-step
  csm::SequentialEngine engine(alg, wl.query, wl.graph);
  const bool elabels = alg.uses_edge_labels();
  std::uint64_t total = 0;
  std::uint64_t before = csm::count_all_matches(wl.query, mirror, elabels);
  for (std::size_t idx = 0; idx < wl.stream.size(); ++idx) {
    const GraphUpdate& upd = wl.stream[idx];
    mirror.apply(upd);
    const std::uint64_t after = csm::count_all_matches(wl.query, mirror, elabels);
    const csm::UpdateOutcome out = engine.process(upd);
    if (upd.op == graph::UpdateOp::kInsertEdge) {
      EXPECT_EQ(out.positive, after - before)
          << alg.name() << ": wrong ΔM+ at update " << idx;
      EXPECT_EQ(out.negative, 0u);
    } else if (upd.op == graph::UpdateOp::kRemoveEdge) {
      EXPECT_EQ(out.negative, before - after)
          << alg.name() << ": wrong ΔM- at update " << idx;
      EXPECT_EQ(out.positive, 0u);
    }
    total += out.delta_matches();
    before = after;
  }
  return total;
}

}  // namespace paracosm::testing
