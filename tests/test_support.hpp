// Shared helpers for the test suite: small random workloads and the
// oracle-diff harness every correctness test builds on.
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "csm/algorithm.hpp"
#include "csm/engine.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"
#include "verify/oracle_mirror.hpp"

namespace paracosm::testing {

using graph::DataGraph;
using graph::GraphUpdate;
using graph::QueryGraph;

struct SmallWorkload {
  DataGraph graph;                  // initial state (stream edges removed)
  QueryGraph query;
  std::vector<GraphUpdate> stream;  // insertions then deletions
};

/// Random Erdos–Renyi workload with a query extracted from the full graph
/// (so matches are guaranteed to exist somewhere along the stream).
inline SmallWorkload make_workload(std::uint64_t seed, std::uint32_t n = 32,
                                   std::uint64_t m = 72, std::uint32_t vlabels = 3,
                                   std::uint32_t elabels = 2,
                                   std::uint32_t query_size = 4,
                                   double insert_fraction = 0.35,
                                   double delete_fraction = 0.5) {
  util::Rng rng(seed);
  for (int attempt = 0; attempt < 64; ++attempt) {
    DataGraph g = graph::generate_erdos_renyi(n, m, vlabels, elabels, rng);
    auto q = graph::extract_query(g, query_size, rng);
    if (!q) continue;
    auto stream = graph::make_mixed_stream(g, insert_fraction, delete_fraction, rng);
    if (insert_fraction > 0.0 && stream.empty()) continue;
    return SmallWorkload{std::move(g), std::move(*q), std::move(stream)};
  }
  ADD_FAILURE() << "could not build a workload for seed " << seed;
  return {};
}

/// Drive `alg` through the stream with the sequential engine, checking every
/// ΔM against the recompute oracle (src/verify). Returns total |ΔM|.
inline std::uint64_t check_against_oracle(csm::CsmAlgorithm& alg, SmallWorkload wl) {
  // Snapshot into the oracle before the engine starts mutating wl.graph.
  verify::OracleMirror oracle(wl.query, wl.graph, alg.uses_edge_labels(),
                              /*strict=*/false);
  csm::SequentialEngine engine(alg, wl.query, wl.graph);
  std::uint64_t total = 0;
  for (std::size_t idx = 0; idx < wl.stream.size(); ++idx) {
    const GraphUpdate& upd = wl.stream[idx];
    const verify::OracleDelta& want = oracle.step(upd);
    const csm::UpdateOutcome out = engine.process(upd);
    EXPECT_EQ(out.positive, want.positive)
        << alg.name() << ": wrong ΔM+ at update " << idx;
    EXPECT_EQ(out.negative, want.negative)
        << alg.name() << ": wrong ΔM- at update " << idx;
    total += out.delta_matches();
  }
  return total;
}

}  // namespace paracosm::testing
