// Cross-validation of every CSM algorithm against the brute-force oracle:
// the central correctness property of the whole library. Each algorithm must
// report exactly the incremental matches (positive and negative) that a full
// recompute observes, over randomized graphs and mixed update streams.
#include <gtest/gtest.h>

#include "tests/test_support.hpp"

namespace paracosm::testing {
namespace {

struct Case {
  std::string algorithm;
  std::uint64_t seed;
};

class AlgorithmOracleTest : public ::testing::TestWithParam<Case> {};

TEST_P(AlgorithmOracleTest, MatchesOracleOnMixedStream) {
  const auto& param = GetParam();
  auto alg = csm::make_algorithm(param.algorithm);
  ASSERT_NE(alg, nullptr);
  check_against_oracle(*alg, make_workload(param.seed));
}

TEST_P(AlgorithmOracleTest, MatchesOracleOnDenserGraph) {
  const auto& param = GetParam();
  auto alg = csm::make_algorithm(param.algorithm);
  ASSERT_NE(alg, nullptr);
  check_against_oracle(*alg, make_workload(param.seed + 1000, /*n=*/24, /*m=*/96,
                                           /*vlabels=*/2, /*elabels=*/1,
                                           /*query_size=*/4));
}

TEST_P(AlgorithmOracleTest, MatchesOracleOnLargerQuery) {
  const auto& param = GetParam();
  auto alg = csm::make_algorithm(param.algorithm);
  ASSERT_NE(alg, nullptr);
  check_against_oracle(*alg, make_workload(param.seed + 2000, /*n=*/40, /*m=*/90,
                                           /*vlabels=*/3, /*elabels=*/2,
                                           /*query_size=*/6));
}

TEST_P(AlgorithmOracleTest, MatchesOracleOnSingleLabelGraph) {
  const auto& param = GetParam();
  auto alg = csm::make_algorithm(param.algorithm);
  ASSERT_NE(alg, nullptr);
  // One vertex label, one edge label: everything collides, stressing the
  // search itself rather than the filters.
  check_against_oracle(*alg, make_workload(param.seed + 3000, /*n=*/16, /*m=*/28,
                                           /*vlabels=*/1, /*elabels=*/1,
                                           /*query_size=*/3));
}

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  auto names = csm::algorithm_names();
  names.push_back("rapidflow");  // general-purpose but outside the paper's five
  for (const auto name : names)
    for (std::uint64_t seed : {11ULL, 22ULL, 33ULL, 44ULL})
      cases.push_back({std::string(name), seed});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, AlgorithmOracleTest,
                         ::testing::ValuesIn(all_cases()),
                         [](const ::testing::TestParamInfo<Case>& info) {
                           return info.param.algorithm + "_seed" +
                                  std::to_string(info.param.seed);
                         });

// All five algorithms must agree with each other on identical streams
// (pairwise consistency complements the oracle check, catching oracle bugs).
TEST(AlgorithmAgreement, AllAlgorithmsReportIdenticalTotals) {
  for (const std::uint64_t seed : {7ULL, 77ULL}) {
    std::uint64_t reference = 0;
    bool first = true;
    auto agreement_names = csm::algorithm_names();
    agreement_names.push_back("rapidflow");
    for (const auto name : agreement_names) {
      if (name == "calig") continue;  // edge-label-blind: different semantics
      auto alg = csm::make_algorithm(name);
      SmallWorkload wl = make_workload(seed);
      csm::SequentialEngine engine(*alg, wl.query, wl.graph);
      std::uint64_t total = 0;
      for (const auto& upd : wl.stream) total += engine.process(upd).delta_matches();
      if (first) {
        reference = total;
        first = false;
      } else {
        EXPECT_EQ(total, reference) << name << " disagrees on seed " << seed;
      }
    }
  }
}

// The recomputation baseline must agree with the incremental algorithms
// (kept out of the big parameterized sweep — it recounts per update).
TEST(RecomputeBaseline, AgreesWithIncrementalAlgorithms) {
  SmallWorkload wl = make_workload(55, 24, 56, 2, 1, 4);
  std::uint64_t incremental_pos = 0, incremental_neg = 0;
  {
    auto alg = csm::make_algorithm("symbi");
    SmallWorkload copy = wl;
    csm::SequentialEngine engine(*alg, copy.query, copy.graph);
    for (const auto& upd : copy.stream) {
      const auto out = engine.process(upd);
      incremental_pos += out.positive;
      incremental_neg += out.negative;
    }
  }
  auto baseline = csm::make_algorithm("incisomatch");
  ASSERT_NE(baseline, nullptr);
  csm::SequentialEngine engine(*baseline, wl.query, wl.graph);
  std::uint64_t pos = 0, neg = 0;
  for (const auto& upd : wl.stream) {
    const auto out = engine.process(upd);
    pos += out.positive;
    neg += out.negative;
  }
  EXPECT_EQ(pos, incremental_pos);
  EXPECT_EQ(neg, incremental_neg);
}

// Deletion streams must exactly undo insertion streams: inserting E then
// deleting E yields symmetric positive/negative totals.
TEST(AlgorithmSymmetry, InsertThenDeleteIsSymmetric) {
  for (const auto name : csm::algorithm_names()) {
    util::Rng rng(99);
    graph::DataGraph g = graph::generate_erdos_renyi(24, 60, 2, 1, rng);
    auto q = graph::extract_query(g, 4, rng);
    ASSERT_TRUE(q.has_value());
    auto inserts = graph::make_insert_stream(g, 0.3, rng);
    auto alg = csm::make_algorithm(name);
    csm::SequentialEngine engine(*alg, *q, g);
    std::uint64_t positive = 0, negative = 0;
    for (const auto& upd : inserts) positive += engine.process(upd).positive;
    for (auto it = inserts.rbegin(); it != inserts.rend(); ++it)
      negative += engine
                      .process(graph::GraphUpdate::remove_edge(it->u, it->v, it->label))
                      .negative;
    EXPECT_EQ(positive, negative) << name;
  }
}

}  // namespace
}  // namespace paracosm::testing
