// Deterministic tests of the feedback-control subsystem (DESIGN.md §13).
//
// The controllers are pure functions of their scripted signal traces — no
// threads, no clocks — so every property here is exact, not statistical:
//
//   * convergence: a constant out-of-band signal moves the value
//     monotonically until a clamp, then the controller is quiescent;
//   * clamping: saturated steps count `clamped` and never restart cooldown;
//   * cooldown: decisions in N epochs are bounded by ceil(N/(cooldown+1)),
//     on every trace including adversarial oscillation (no limit cycle);
//   * accounting: every epoch lands in exactly one stats bucket;
//   * plane wiring: synthetic BatchSample/SearchSample epochs publish the
//     expected knobs into the TuningView with a matching decision log;
//   * the TuningView regression: knobs republished after engine
//     construction take effect at the next batch/search — the old
//     Config-baked-at-construction behaviour is pinned as fixed.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "control/control_plane.hpp"
#include "control/controller.hpp"
#include "control/signals.hpp"
#include "control/tuning.hpp"
#include "paracosm/paracosm.hpp"
#include "tests/test_support.hpp"

namespace paracosm::control {
namespace {

using ::paracosm::testing::make_workload;
using ::paracosm::testing::SmallWorkload;

[[nodiscard]] ControllerConfig basic_policy() {
  ControllerConfig c;
  c.lo = 0.3;
  c.hi = 0.7;
  c.min_value = 1;
  c.max_value = 32;
  c.cooldown = 0;
  c.grow_add = 2;
  c.grow_mul = 1.0;
  c.shrink_mul = 0.5;
  return c;
}

/// Epochs must partition into the four outcome buckets.
void expect_accounting(const AimdController& ctl) {
  const ControlStats& s = ctl.stats();
  EXPECT_EQ(s.epochs,
            s.in_band + s.cooldown_suppressed + s.clamped + s.decisions);
  EXPECT_EQ(s.decisions, s.grows + s.shrinks);
}

TEST(AimdController, ConstantHighSignalGrowsMonotonicallyToMaxThenQuiesces) {
  AimdController ctl(Knob::kBatchSize, basic_policy(), 4);
  std::uint32_t prev = ctl.value();
  bool saturated = false;
  for (int i = 0; i < 40; ++i) {
    const Decision d = ctl.step(1.0);
    EXPECT_GE(ctl.value(), prev) << "growth must be monotone";
    if (saturated) {
      EXPECT_FALSE(d.changed) << "saturated controller must be quiescent";
      EXPECT_EQ(ctl.value(), ctl.config().max_value);
    }
    saturated = ctl.value() == ctl.config().max_value;
    prev = ctl.value();
  }
  EXPECT_EQ(ctl.value(), 32u);
  EXPECT_GT(ctl.stats().clamped, 0u);
  expect_accounting(ctl);
}

TEST(AimdController, ConstantLowSignalShrinksToMinThenQuiesces) {
  AimdController ctl(Knob::kBatchSize, basic_policy(), 32);
  std::uint32_t prev = ctl.value();
  for (int i = 0; i < 40; ++i) {
    (void)ctl.step(0.0);
    EXPECT_LE(ctl.value(), prev) << "shrink must be monotone";
    prev = ctl.value();
  }
  EXPECT_EQ(ctl.value(), ctl.config().min_value);
  EXPECT_GT(ctl.stats().clamped, 0u);
  expect_accounting(ctl);
}

TEST(AimdController, InBandSignalNeverMoves) {
  AimdController ctl(Knob::kSplitDepth, basic_policy(), 7);
  for (int i = 0; i < 25; ++i) (void)ctl.step(0.5);
  EXPECT_EQ(ctl.value(), 7u);
  EXPECT_EQ(ctl.stats().decisions, 0u);
  EXPECT_EQ(ctl.stats().in_band, 25u);
  expect_accounting(ctl);
}

TEST(AimdController, SignalIsClampedIntoUnitInterval) {
  AimdController grow(Knob::kBatchSize, basic_policy(), 4);
  const Decision d1 = grow.step(42.0);  // treated as 1.0
  EXPECT_TRUE(d1.changed);
  EXPECT_TRUE(d1.grew);
  AimdController shrink(Knob::kBatchSize, basic_policy(), 4);
  const Decision d2 = shrink.step(-3.0);  // treated as 0.0
  EXPECT_TRUE(d2.changed);
  EXPECT_FALSE(d2.grew);
}

TEST(AimdController, CooldownSuppressesAndBoundsDecisionRate) {
  ControllerConfig cfg = basic_policy();
  cfg.cooldown = 2;
  AimdController ctl(Knob::kBatchSize, cfg, 1);
  const int kEpochs = 12;
  std::vector<int> decision_epochs;
  for (int i = 0; i < kEpochs; ++i)
    if (ctl.step(1.0).changed) decision_epochs.push_back(i);
  // ceil(12 / 3) = 4 decisions, spaced exactly cooldown+1 apart.
  ASSERT_EQ(decision_epochs.size(), 4u);
  EXPECT_EQ(decision_epochs, (std::vector<int>{0, 3, 6, 9}));
  EXPECT_EQ(ctl.stats().cooldown_suppressed, 8u);
  expect_accounting(ctl);
}

TEST(AimdController, ClampedStepDoesNotRestartCooldown) {
  ControllerConfig cfg = basic_policy();
  cfg.cooldown = 3;
  cfg.max_value = 4;
  AimdController ctl(Knob::kBatchSize, cfg, 4);  // already saturated
  for (int i = 0; i < 10; ++i) {
    (void)ctl.step(1.0);
    EXPECT_EQ(ctl.cooldown_remaining(), 0u)
        << "a clamped (no-move) step must not arm the cooldown";
  }
  EXPECT_EQ(ctl.stats().clamped, 10u);
  EXPECT_EQ(ctl.stats().decisions, 0u);
}

TEST(AimdController, ShrinkAlwaysStrictlyDecreasesAboveMin) {
  ControllerConfig cfg = basic_policy();
  cfg.shrink_mul = 0.99;  // floor(v * 0.99) == v for small v without the guard
  cfg.min_value = 0;
  AimdController ctl(Knob::kSplitDepth, cfg, 3);
  EXPECT_TRUE(ctl.step(0.0).changed);
  EXPECT_EQ(ctl.value(), 2u);
  EXPECT_TRUE(ctl.step(0.0).changed);
  EXPECT_EQ(ctl.value(), 1u);
  EXPECT_TRUE(ctl.step(0.0).changed);
  EXPECT_EQ(ctl.value(), 0u);
  EXPECT_FALSE(ctl.step(0.0).changed);  // at min: clamped
}

TEST(AimdController, RampTraceConvergesIntoBandAndHolds) {
  AimdController ctl(Knob::kBatchSize, basic_policy(), 16);
  // Ramp 0 -> 1 over 50 epochs: shrink phase, hold band, grow phase.
  std::uint32_t after_band = 0;
  for (int i = 0; i < 50; ++i) {
    const double sig = static_cast<double>(i) / 49.0;
    (void)ctl.step(sig);
    if (sig <= 0.7) after_band = ctl.value();
  }
  // While the signal was at or below hi the controller never grew.
  EXPECT_LE(after_band, 16u);
  // The tail of the ramp is out-of-band high: it must have grown again.
  EXPECT_GT(ctl.value(), after_band);
  expect_accounting(ctl);
}

TEST(AimdController, BurstTraceRecoversAndHolds) {
  ControllerConfig cfg = basic_policy();
  cfg.cooldown = 1;
  AimdController ctl(Knob::kBatchSize, cfg, 16);
  // Burst of unsafe pressure (low signal), then a calm in-band tail.
  for (int i = 0; i < 6; ++i) (void)ctl.step(0.0);
  const std::uint32_t after_burst = ctl.value();
  EXPECT_LT(after_burst, 16u);
  for (int i = 0; i < 20; ++i) (void)ctl.step(0.5);
  EXPECT_EQ(ctl.value(), after_burst) << "in-band tail must hold, not drift";
}

TEST(AimdController, OscillatingSignalHasNoLimitCycle) {
  // Adversarial alternation 1,0,1,0,... — the worst case for oscillation.
  for (std::uint32_t cooldown : {0u, 1u, 2u, 5u}) {
    ControllerConfig cfg = basic_policy();
    cfg.cooldown = cooldown;
    AimdController ctl(Knob::kBatchSize, cfg, 8);
    const int kEpochs = 200;
    std::uint64_t decisions = 0;
    for (int i = 0; i < kEpochs; ++i) {
      if (ctl.step(i % 2 == 0 ? 1.0 : 0.0).changed) ++decisions;
      EXPECT_GE(ctl.value(), cfg.min_value);
      EXPECT_LE(ctl.value(), cfg.max_value);
    }
    // The decision-rate bound holds on ANY trace, including this one.
    const std::uint64_t bound =
        (kEpochs + cooldown) / (cooldown + 1);  // ceil(N / (cooldown+1))
    EXPECT_LE(decisions, bound) << "cooldown=" << cooldown;
    expect_accounting(ctl);
  }
}

// ---------------------------------------------------------------- the plane

[[nodiscard]] BatchSample safe_batch(std::uint32_t lanes) {
  BatchSample s;
  s.lanes = lanes;
  s.safe_prefix = lanes;
  s.classify_ns = 1000;
  s.batch_ns = 2000;
  return s;
}

[[nodiscard]] BatchSample unsafe_batch(std::uint32_t lanes) {
  BatchSample s;
  s.lanes = lanes;
  s.safe_prefix = 0;
  s.hit_unsafe = true;
  s.classify_ns = 1000;
  s.batch_ns = 2000;
  return s;
}

TEST(ControlPlane, SafeHeavyEpochsGrowTheBatchCut) {
  TuningView tuning(/*split_depth=*/4, /*batch_size=*/4, /*wide=*/512);
  ControlPlaneOptions opts;
  opts.epoch_batches = 1;
  ControlPlane plane(tuning, opts);

  const std::uint64_t v0 = tuning.version();
  for (int i = 0; i < 6; ++i) plane.on_batch(safe_batch(8));
  EXPECT_GT(tuning.batch_size(), 4u) << "all-safe epochs must open the cut";
  EXPECT_GT(tuning.version(), v0) << "publishes must go through the view";
  EXPECT_EQ(plane.epoch(), 6u);
  // All-cpu epochs also earn a wide-cutoff exploration probe, so filter.
  std::size_t batch_decisions = 0;
  for (const DecisionRecord& d : plane.decisions())
    if (d.knob == Knob::kBatchSize) ++batch_decisions;
  EXPECT_GT(batch_decisions, 0u);
  EXPECT_EQ(plane.decisions().size(), plane.stats().decisions);
}

TEST(ControlPlane, UnsafeHeavyEpochsShrinkTheBatchCut) {
  TuningView tuning(4, 64, 512);
  ControlPlaneOptions opts;
  opts.epoch_batches = 1;
  ControlPlane plane(tuning, opts);
  for (int i = 0; i < 10; ++i) plane.on_batch(unsafe_batch(8));
  EXPECT_LT(tuning.batch_size(), 64u);
  EXPECT_EQ(tuning.batch_size(), plane.batch_controller().value());
}

TEST(ControlPlane, CertifiedBatchesCountAsFullySafe) {
  // Certified batches report safe_prefix == 0 only because classification
  // was bypassed; the certificate itself proves them safe. The plane must
  // treat a certified-heavy epoch as a reason to grow, not shrink.
  TuningView tuning(4, 8, 512);
  ControlPlaneOptions opts;
  opts.epoch_batches = 1;
  ControlPlane plane(tuning, opts);
  for (int i = 0; i < 6; ++i) {
    BatchSample s = safe_batch(8);
    s.certified = true;
    s.safe_prefix = 0;  // adversarial: no per-lane tally at all
    plane.on_batch(s);
  }
  EXPECT_GT(tuning.batch_size(), 8u);
}

TEST(ControlPlane, ImbalancedSearchesGrowSplitDepth) {
  TuningView tuning(2, 4, 512);
  ControlPlaneOptions opts;
  opts.epoch_batches = 1;
  opts.adapt_batch_size = false;  // isolate the split controller
  ControlPlane plane(tuning, opts);
  for (int i = 0; i < 12; ++i) {
    SearchSample ss;
    ss.workers = 4;
    ss.tasks = 100;
    ss.max_busy_ns = 1'000'000;   // one worker did everything
    ss.total_busy_ns = 1'000'000; // imbalance == workers -> signal 1.0
    plane.on_search(ss);
    plane.on_batch(unsafe_batch(4));
  }
  EXPECT_GT(tuning.split_depth(), 2u);
}

TEST(ControlPlane, TinySearchesShrinkSplitDepthDespiteImbalance) {
  // An indivisible micro-search reads as maximally imbalanced (one worker,
  // one task), but splitting it finer can only add queue overhead. The work
  // floor must override the artifactual grow signal with a shrink.
  TuningView tuning(6, 4, 512);
  ControlPlaneOptions opts;
  opts.epoch_batches = 1;
  opts.adapt_batch_size = false;
  ControlPlane plane(tuning, opts);
  for (int i = 0; i < 12; ++i) {
    SearchSample ss;
    ss.workers = 4;
    ss.tasks = 1;
    ss.max_busy_ns = 2'000;    // 2us of work: far below the 20us floor
    ss.total_busy_ns = 2'000;  // imbalance == workers -> raw signal 1.0
    plane.on_search(ss);
    plane.on_batch(unsafe_batch(4));
  }
  EXPECT_LT(tuning.split_depth(), 6u)
      << "micro-search epochs must shrink depth, not chase imbalance";

  // Disabling the floor restores the raw imbalance signal (growth).
  TuningView raw_tuning(6, 4, 512);
  ControlPlaneOptions raw_opts = opts;
  raw_opts.min_search_busy_ns = 0;
  ControlPlane raw_plane(raw_tuning, raw_opts);
  for (int i = 0; i < 12; ++i) {
    SearchSample ss;
    ss.workers = 4;
    ss.tasks = 1;
    ss.max_busy_ns = 2'000;
    ss.total_busy_ns = 2'000;
    raw_plane.on_search(ss);
    raw_plane.on_batch(unsafe_batch(4));
  }
  EXPECT_GT(raw_tuning.split_depth(), 6u);
}

TEST(ControlPlane, BalancedLowOverheadSearchesHoldSplitDepth) {
  TuningView tuning(6, 4, 512);
  ControlPlaneOptions opts;
  opts.epoch_batches = 1;
  opts.adapt_batch_size = false;
  ControlPlane plane(tuning, opts);
  for (int i = 0; i < 12; ++i) {
    SearchSample ss;
    ss.workers = 4;
    ss.tasks = 100;
    ss.offloads = 10;  // 0.1 offloads/task, below the overhead gate
    ss.max_busy_ns = 250'000;    // perfectly even
    ss.total_busy_ns = 1'000'000;
    plane.on_search(ss);
    plane.on_batch(unsafe_batch(4));
  }
  EXPECT_EQ(tuning.split_depth(), 6u)
      << "splitting that isn't hurting must be left alone";
}

TEST(ControlPlane, BalancedHighOverheadSearchesShrinkSplitDepth) {
  TuningView tuning(6, 4, 512);
  ControlPlaneOptions opts;
  opts.epoch_batches = 1;
  opts.adapt_batch_size = false;
  ControlPlane plane(tuning, opts);
  for (int i = 0; i < 12; ++i) {
    SearchSample ss;
    ss.workers = 4;
    ss.tasks = 100;
    ss.offloads = 90;  // 0.9 offloads/task: splitting is churning
    ss.max_busy_ns = 250'000;
    ss.total_busy_ns = 1'000'000;
    plane.on_search(ss);
    plane.on_batch(unsafe_batch(4));
  }
  EXPECT_LT(tuning.split_depth(), 6u);
}

TEST(ControlPlane, WideCutoffFollowsRelativeBackendCost) {
  TuningView tuning(4, 4, 256);
  ControlPlaneOptions opts;
  opts.epoch_batches = 1;
  opts.adapt_batch_size = false;
  opts.adapt_split_depth = false;
  ControlPlane plane(tuning, opts);
  // Alternate backends; cpu classifies a lane 9x cheaper than wide.
  for (int i = 0; i < 16; ++i) {
    BatchSample s = unsafe_batch(10);
    s.wide_backend = i % 2 == 0;
    s.classify_ns = s.wide_backend ? 9000 : 1000;
    plane.on_batch(s);
  }
  EXPECT_LT(tuning.wide_auto_cutoff(), 256u)
      << "cheap cpu must pull the crossover down";

  // And the mirror image: wide 9x cheaper pulls it up.
  TuningView tuning2(4, 4, 256);
  ControlPlane plane2(tuning2, opts);
  for (int i = 0; i < 16; ++i) {
    BatchSample s = unsafe_batch(10);
    s.wide_backend = i % 2 == 0;
    s.classify_ns = s.wide_backend ? 1000 : 9000;
    plane2.on_batch(s);
  }
  EXPECT_GT(tuning2.wide_auto_cutoff(), 256u);
}

TEST(ControlPlane, OneSidedRoutingProbesTheStarvedBackend) {
  // A cutoff that routes every batch to one backend starves the other side
  // of cost samples, so the genuine comparison can never fire. A streak of
  // one-sided epochs must trigger exploration probes toward the starved
  // backend until routing mixes.
  TuningView tuning(4, 4, 512);
  ControlPlaneOptions opts;
  opts.epoch_batches = 1;
  opts.adapt_batch_size = false;
  opts.adapt_split_depth = false;
  ControlPlane plane(tuning, opts);
  for (int i = 0; i < 40; ++i) {
    BatchSample s = unsafe_batch(10);
    s.wide_backend = true;  // all-wide: cpu EWMA never gets a sample
    plane.on_batch(s);
  }
  EXPECT_LT(tuning.wide_auto_cutoff(), 512u)
      << "all-wide streaks must probe the cutoff downward";

  // Mirror image: all-cpu routing probes the cutoff upward.
  TuningView tuning2(4, 4, 4);
  ControlPlane plane2(tuning2, opts);
  for (int i = 0; i < 40; ++i) {
    BatchSample s = unsafe_batch(10);
    s.wide_backend = false;
    plane2.on_batch(s);
  }
  EXPECT_GT(tuning2.wide_auto_cutoff(), 4u);

  // With probing disabled, one-sided routing leaves the cutoff frozen.
  TuningView tuning3(4, 4, 512);
  ControlPlaneOptions frozen = opts;
  frozen.explore_epochs = 0;
  ControlPlane plane3(tuning3, frozen);
  for (int i = 0; i < 40; ++i) {
    BatchSample s = unsafe_batch(10);
    s.wide_backend = true;
    plane3.on_batch(s);
  }
  EXPECT_EQ(tuning3.wide_auto_cutoff(), 512u);
}

TEST(ControlPlane, FlushClosesAPartialEpoch) {
  TuningView tuning(4, 4, 512);
  ControlPlaneOptions opts;
  opts.epoch_batches = 100;  // never ticks on its own in this test
  ControlPlane plane(tuning, opts);
  plane.on_batch(safe_batch(8));
  EXPECT_EQ(plane.epoch(), 0u);
  plane.flush();
  EXPECT_EQ(plane.epoch(), 1u);
  EXPECT_EQ(plane.last_snapshot().lanes, 8u);
  plane.flush();  // nothing accumulated: no-op
  EXPECT_EQ(plane.epoch(), 1u);
}

TEST(AdmissionControllerTest, PressureShrinksCalmRestoresTheWatermark) {
  AdmissionOptions opts;
  opts.p99_target_ns = 1'000'000;
  AdmissionController ctl(/*queue_capacity=*/256, opts);
  EXPECT_EQ(ctl.watermark(), 256u) << "starts at capacity (static behaviour)";

  ServiceSample hot;
  hot.queue_depth = 250;
  hot.queue_capacity = 256;
  hot.p99_ns = 10'000'000;  // 10x over target
  for (int i = 0; i < 8; ++i) (void)ctl.step(hot);
  const std::uint32_t low = ctl.watermark();
  EXPECT_LT(low, 256u) << "overload must degrade earlier";
  EXPECT_GE(low, 256u / 16) << "clamped at the policy floor";

  ServiceSample calm;
  calm.queue_depth = 0;
  calm.queue_capacity = 256;
  calm.p99_ns = 10'000;  // well under target
  for (int i = 0; i < 32; ++i) (void)ctl.step(calm);
  EXPECT_EQ(ctl.watermark(), 256u) << "calm windows restore full admission";
  EXPECT_EQ(ctl.decisions().size(), ctl.stats().decisions);
}

// ------------------------------------------------- TuningView engine plumbing

// Regression for the Config-baked-at-construction bug: mutating knobs on a
// LIVE engine must take effect at the next batch boundary. Before the
// TuningView, Config::batch_size was read once per stream and split depth
// was copied into the executors' constructors, so post-construction retunes
// were silently ignored.
TEST(TuningViewPlumbing, BatchCutRepublishTakesEffectPerBatch) {
  SmallWorkload wl = make_workload(/*seed=*/7);
  auto alg = csm::make_algorithm("graphflow");
  ASSERT_NE(alg, nullptr);

  engine::Config cfg;
  cfg.threads = 2;
  cfg.batch_size = 8;
  engine::ParaCosm pc(*alg, wl.query, wl.graph, cfg);

  // k == 1: every batch holds exactly one update, so the engine advances
  // one update per loop iteration — batches == updates processed.
  pc.tuning().set_batch_size(1);
  const engine::StreamResult one = pc.process_stream(wl.stream);
  EXPECT_EQ(one.batches, one.updates_processed)
      << "batch_size=1 republished post-construction must be honoured";

  // Replaying the (now largely no-op) stream with a huge cut must produce
  // far fewer batches than updates — the knob moved again mid-life.
  pc.tuning().set_batch_size(1000);
  const engine::StreamResult big = pc.process_stream(wl.stream);
  EXPECT_LT(big.batches, std::max<std::uint64_t>(big.updates_processed, 2));
}

TEST(TuningViewPlumbing, WideCutoffRepublishRoutesBackends) {
  SmallWorkload wl = make_workload(/*seed=*/11);
  auto alg = csm::make_algorithm("graphflow");
  ASSERT_NE(alg, nullptr);

  engine::Config cfg;
  cfg.threads = 2;  // >1, so kAuto actually consults the cutoff
  cfg.batch_backend = engine::BatchBackendKind::kAuto;
  engine::ParaCosm pc(*alg, wl.query, wl.graph, cfg);

  pc.tuning().set_wide_auto_cutoff(0);  // nothing fits under the cutoff
  const engine::StreamResult all_cpu = pc.process_stream(wl.stream);
  EXPECT_EQ(all_cpu.backend_wide.batches, 0u);
  EXPECT_EQ(all_cpu.backend_cpu.batches, all_cpu.batches);

  pc.tuning().set_wide_auto_cutoff(1u << 30);  // everything fits
  const engine::StreamResult all_wide = pc.process_stream(wl.stream);
  EXPECT_EQ(all_wide.backend_cpu.batches, 0u);
  EXPECT_EQ(all_wide.backend_wide.batches, all_wide.batches);
}

TEST(TuningViewPlumbing, SplitDepthRepublishKeepsResultsExact) {
  // Correctness invariance: tuning changes alter WHEN/HOW work is scheduled,
  // never WHAT is computed. Replay the same workload with the split depth
  // retuned mid-stream and compare ΔM against an untouched engine.
  SmallWorkload wl1 = make_workload(/*seed=*/23);
  SmallWorkload wl2 = wl1;  // same initial state and stream

  auto a1 = csm::make_algorithm("graphflow");
  auto a2 = csm::make_algorithm("graphflow");
  ASSERT_NE(a1, nullptr);
  ASSERT_NE(a2, nullptr);

  engine::Config cfg;
  cfg.threads = 4;
  engine::ParaCosm base(*a1, wl1.query, wl1.graph, cfg);
  engine::ParaCosm tuned(*a2, wl2.query, wl2.graph, cfg);

  const std::size_t half = wl1.stream.size() / 2;
  const std::span<const graph::GraphUpdate> s1(wl1.stream);
  const std::span<const graph::GraphUpdate> s2(wl2.stream);

  const engine::StreamResult b1 = base.process_stream(s1.subspan(0, half));
  const engine::StreamResult b2 = base.process_stream(s1.subspan(half));

  const engine::StreamResult t1 = tuned.process_stream(s2.subspan(0, half));
  tuned.tuning().set_split_depth(0);  // mid-stream retune
  const engine::StreamResult t2 = tuned.process_stream(s2.subspan(half));

  EXPECT_EQ(b1.positive + b2.positive, t1.positive + t2.positive);
  EXPECT_EQ(b1.negative + b2.negative, t1.negative + t2.negative);
  EXPECT_GT(tuned.tuning().version(), 0u);
}

// End-to-end: a live engine with an attached plane adapts and records it.
TEST(ControlPlaneEngine, AttachedPlaneAdaptsALiveEngine) {
  SmallWorkload wl = make_workload(/*seed=*/31, /*n=*/48, /*m=*/120);
  auto alg = csm::make_algorithm("graphflow");
  ASSERT_NE(alg, nullptr);

  engine::Config cfg;
  cfg.threads = 2;
  cfg.batch_size = 2;
  engine::ParaCosm pc(*alg, wl.query, wl.graph, cfg);

  ControlPlaneOptions opts;
  opts.epoch_batches = 2;
  ControlPlane plane(pc.tuning(), opts);
  pc.attach_control(&plane);

  const engine::StreamResult r = pc.process_stream(wl.stream);
  plane.flush();

  EXPECT_GT(plane.epoch(), 0u) << "the engine must post batch samples";
  EXPECT_EQ(plane.stats().epochs, plane.epoch());
  // Every logged decision's target must match what the view now holds for
  // the most recent decision per knob.
  for (const DecisionRecord& d : plane.decisions()) {
    EXPECT_NE(d.from, d.to);
    EXPECT_LE(d.epoch, plane.epoch());
  }
  EXPECT_GT(r.updates_processed, 0u);

  pc.attach_control(nullptr);  // detach must be safe
  (void)pc.process_stream(wl.stream);
}

}  // namespace
}  // namespace paracosm::control
