// Property tests for the log-bucketed latency histogram (ISSUE 5): the
// documented ≤ 1/32 relative-error bound against the exact nearest-rank
// reference, merge/quantile equivalence, exact count conservation under
// concurrent recording, and the pinned percentile regression that replaced
// the ad-hoc sorted-vector percentiles in the service layer.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "bench_common/reporting.hpp"
#include "obs/histogram.hpp"
#include "util/rng.hpp"

namespace paracosm {
namespace {

using obs::ConcurrentHistogram;
using obs::Histogram;
using obs::hist_bucket;
using obs::hist_bucket_high;
using obs::hist_bucket_low;
using obs::kHistBuckets;

// Quantile grid shared by the property tests (includes the tails).
const double kGrid[] = {0.1, 1.0, 10.0, 25.0, 50.0,  75.0,
                        90.0, 95.0, 99.0, 99.9, 100.0};

// ------------------------------------------------------------- bucket math

TEST(HistBucket, ValuesBelow64AreExact) {
  for (std::uint64_t v = 0; v < 64; ++v) {
    EXPECT_EQ(hist_bucket(v), v);
    EXPECT_EQ(hist_bucket_low(hist_bucket(v)), v);
    EXPECT_EQ(hist_bucket_high(hist_bucket(v)), v);
  }
}

TEST(HistBucket, BoundsHoldForRandomValues) {
  util::Rng rng(42);
  for (int i = 0; i < 100000; ++i) {
    // Bias toward small values but cover the full 60-bit range.
    const std::uint64_t v = rng() >> rng.bounded(60);
    const std::uint32_t b = hist_bucket(v);
    ASSERT_LT(b, kHistBuckets);
    const std::uint64_t low = hist_bucket_low(b);
    const std::uint64_t high = hist_bucket_high(b);
    ASSERT_LE(low, v);
    ASSERT_LE(v, high);
    // The documented relative-error bound: high <= low * (1 + 1/32).
    // Written subtraction-side so the top octave can't overflow uint64.
    if (v >= 64) {
      ASSERT_LE(high - low, low / 32);
    }
  }
}

TEST(HistBucket, BucketsAreContiguousAndMonotonic) {
  // Adjacent buckets tile the value axis with no gaps or overlaps.
  for (std::uint32_t b = 0; b + 1 < kHistBuckets; ++b) {
    ASSERT_EQ(hist_bucket_high(b) + 1, hist_bucket_low(b + 1)) << "bucket " << b;
    ASSERT_EQ(hist_bucket(hist_bucket_low(b)), b);
    ASSERT_EQ(hist_bucket(hist_bucket_high(b)), b);
  }
}

// ------------------------------------------------- pinned percentile values

// The known-distribution regression from ISSUE 5 satellite (d): samples
// 1..1000 ns. These exact values pin the bucket layout — any change to
// kHistSubBits or the quantile rule shows up here first.
TEST(Histogram, PinnedPercentilesOnOneToThousand) {
  Histogram h;
  for (std::int64_t v = 1; v <= 1000; ++v) h.record(v);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.sum(), 500500u);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 1000);
  EXPECT_DOUBLE_EQ(h.mean(), 500.5);
  EXPECT_EQ(h.quantile(50.0), 503);
  EXPECT_EQ(h.quantile(95.0), 959);
  EXPECT_EQ(h.quantile(99.0), 991);
  EXPECT_EQ(h.quantile(99.9), 1000);  // bucket high 1007 clamps to max
  EXPECT_EQ(h.quantile(100.0), 1000);
  EXPECT_EQ(h.quantile(0.0), 1);
}

// The same distribution through the bench reporting pipeline that
// paracosm_serve and the service report use.
TEST(Histogram, SummarizeLatenciesPinsServicePercentiles) {
  std::vector<std::int64_t> samples(1000);
  for (std::size_t i = 0; i < samples.size(); ++i)
    samples[i] = static_cast<std::int64_t>(i + 1);
  const bench::LatencySummary s = bench::summarize_latencies(samples);
  EXPECT_EQ(s.count, 1000u);
  EXPECT_DOUBLE_EQ(s.mean_ns, 500.5);
  EXPECT_EQ(s.p50_ns, 503);
  EXPECT_EQ(s.p95_ns, 959);
  EXPECT_EQ(s.p99_ns, 991);
  EXPECT_EQ(s.p999_ns, 1000);
  EXPECT_EQ(s.max_ns, 1000);
}

// --------------------------------------------- error bound vs exact ranks

void check_against_exact(const std::vector<std::int64_t>& samples) {
  Histogram h;
  for (const std::int64_t v : samples) h.record(v);
  for (const double p : kGrid) {
    const std::int64_t exact = bench::percentile_ns(samples, p);
    const std::int64_t q = h.quantile(p);
    ASSERT_GE(q, exact) << "p=" << p;
    ASSERT_LE(q, exact + exact / 32) << "p=" << p;
    if (exact < 64) {
      ASSERT_EQ(q, exact) << "small values are exact, p=" << p;
    }
  }
}

TEST(Histogram, QuantileWithinBoundUniform) {
  util::Rng rng(1);
  std::vector<std::int64_t> samples(10000);
  for (auto& v : samples)
    v = static_cast<std::int64_t>(rng.bounded(1000000000));
  check_against_exact(samples);
}

TEST(Histogram, QuantileWithinBoundHeavyTail) {
  // Latency-shaped: mostly microseconds, a long millisecond tail.
  util::Rng rng(2);
  std::vector<std::int64_t> samples(10000);
  for (auto& v : samples) {
    const std::uint64_t r = rng();
    v = static_cast<std::int64_t>((r % 4000) + 1);
    if (r % 100 == 0) v *= 1000;  // 1% outliers
  }
  check_against_exact(samples);
}

TEST(Histogram, QuantileWithinBoundSmallValues) {
  util::Rng rng(3);
  std::vector<std::int64_t> samples(10000);
  for (auto& v : samples) v = static_cast<std::int64_t>(rng.bounded(64));
  check_against_exact(samples);  // all < 64: exact equality branch
}

TEST(Histogram, QuantileOfConstantIsConstant) {
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.record(123456789);
  for (const double p : kGrid) EXPECT_EQ(h.quantile(p), 123456789);
}

// ------------------------------------------------------------------ merge

TEST(Histogram, MergeQuantilesEqualCombinedStream) {
  util::Rng rng(4);
  std::vector<std::int64_t> sa(6000), sb(4000);
  for (auto& v : sa) v = static_cast<std::int64_t>(rng.bounded(5000000));
  for (auto& v : sb)
    v = static_cast<std::int64_t>(rng.bounded(800));  // disjoint-ish range

  Histogram a, b, combined;
  for (const std::int64_t v : sa) {
    a.record(v);
    combined.record(v);
  }
  for (const std::int64_t v : sb) {
    b.record(v);
    combined.record(v);
  }
  a.merge(b);

  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.sum(), combined.sum());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  for (std::uint32_t i = 0; i < kHistBuckets; ++i)
    ASSERT_EQ(a.bucket_count(i), combined.bucket_count(i)) << "bucket " << i;
  for (const double p : kGrid)
    EXPECT_EQ(a.quantile(p), combined.quantile(p)) << "p=" << p;
}

TEST(Histogram, MergeWithEmptyIsIdentity) {
  Histogram a, empty;
  for (std::int64_t v = 1; v <= 100; ++v) a.record(v);
  const std::int64_t p50 = a.quantile(50.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 100u);
  EXPECT_EQ(a.min(), 1);
  EXPECT_EQ(a.quantile(50.0), p50);
}

// ------------------------------------------------------------- edge cases

TEST(Histogram, EmptyReportsZeros) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile(50.0), 0);
}

TEST(Histogram, NegativeValuesClampToZero) {
  Histogram h;
  h.record(-1000);
  h.record(-1);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.quantile(99.0), 0);
}

// ------------------------------------------------------------- concurrency

// ISSUE 5 satellite (a): exact count conservation with 8 writers racing, and
// live snapshots staying monotone. Run under TSan in the sanitizer CI job.
TEST(ConcurrentHistogram, EightThreadCountConservation) {
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;

  ConcurrentHistogram ch;
  Histogram reference;
  std::uint64_t expected_sum = 0;
  for (int t = 0; t < kThreads; ++t)
    for (std::uint64_t i = 0; i < kPerThread; ++i) {
      const std::int64_t v =
          static_cast<std::int64_t>((t * kPerThread + i * 37) % 1000003);
      reference.record(v);
      expected_sum += static_cast<std::uint64_t>(v);
    }

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    // Live snapshots: per-bucket counts only grow, so count() is monotone.
    std::uint64_t last = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const std::uint64_t c = ch.snapshot().count();
      EXPECT_GE(c, last);
      EXPECT_LE(c, kThreads * kPerThread);
      last = c;
    }
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t)
    writers.emplace_back([&ch, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i)
        ch.record(static_cast<std::int64_t>((t * kPerThread + i * 37) % 1000003));
    });
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  const Histogram snap = ch.snapshot();
  EXPECT_EQ(snap.count(), kThreads * kPerThread);
  EXPECT_EQ(snap.sum(), expected_sum);
  EXPECT_EQ(snap.min(), reference.min());
  EXPECT_EQ(snap.max(), reference.max());
  for (std::uint32_t i = 0; i < kHistBuckets; ++i)
    ASSERT_EQ(snap.bucket_count(i), reference.bucket_count(i)) << "bucket " << i;
  for (const double p : kGrid)
    EXPECT_EQ(snap.quantile(p), reference.quantile(p)) << "p=" << p;
}

}  // namespace
}  // namespace paracosm
