// Trace-ring and exporter tests (ISSUE 5): overwrite pressure with exact
// drop accounting, per-thread monotonic epochs, snapshot-under-producer
// integrity (run under TSan in the sanitizer job), registry lanes, and the
// byte-stable golden Chrome-trace serialization.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/chrome_trace.hpp"
#include "obs/trace_ring.hpp"

namespace paracosm {
namespace {

using obs::EventKind;
using obs::RingSnapshot;
using obs::TraceEvent;
using obs::TraceRegistry;
using obs::TraceRing;

// Restores trace level 0 however a test exits, so suites can't leak
// instrumentation into each other.
struct TraceLevelGuard {
  ~TraceLevelGuard() { obs::set_trace_level(0); }
};

TraceEvent make_event(EventKind kind, std::int64_t ts, std::int64_t dur,
                      std::uint64_t a = 0, std::uint64_t b = 0,
                      std::uint64_t c = 0) {
  TraceEvent ev;
  ev.ts_ns = ts;
  ev.dur_ns = dur;
  ev.kind = static_cast<std::uint32_t>(kind);
  ev.a = a;
  ev.b = b;
  ev.c = c;
  return ev;
}

// ------------------------------------------------------------------- ring

TEST(TraceRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(TraceRing(1).capacity(), 8u);
  EXPECT_EQ(TraceRing(8).capacity(), 8u);
  EXPECT_EQ(TraceRing(9).capacity(), 16u);
  EXPECT_EQ(TraceRing(1000).capacity(), 1024u);
}

TEST(TraceRing, EmptySnapshotAndCounters) {
  TraceRing r(16);
  std::vector<TraceEvent> out;
  r.snapshot(out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(r.pushed(), 0u);
  EXPECT_EQ(r.dropped(), 0u);
}

TEST(TraceRing, OverwritePressureKeepsNewestWithExactDropAccounting) {
  TraceRing r(16);
  ASSERT_EQ(r.capacity(), 16u);
  for (std::uint64_t i = 0; i < 40; ++i)
    r.push(make_event(EventKind::kSteal, static_cast<std::int64_t>(i), -1, i));

  EXPECT_EQ(r.pushed(), 40u);
  EXPECT_EQ(r.dropped(), 24u);  // exactly pushed - capacity

  std::vector<TraceEvent> out;
  r.snapshot(out);
  ASSERT_EQ(out.size(), 16u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    // Surviving window is the newest `capacity` events, oldest first, with
    // consecutive per-thread epochs (seq stamps are 1-based).
    EXPECT_EQ(out[i].a, 24 + i);
    EXPECT_EQ(out[i].seq, 25 + i);
    if (i > 0) {
      EXPECT_EQ(out[i].seq, out[i - 1].seq + 1);
    }
  }
}

TEST(TraceRing, ClearResetsCounters) {
  TraceRing r(8);
  for (int i = 0; i < 20; ++i) r.push_instant(EventKind::kPrune, 1);
  r.clear();
  EXPECT_EQ(r.pushed(), 0u);
  EXPECT_EQ(r.dropped(), 0u);
  std::vector<TraceEvent> out;
  r.snapshot(out);
  EXPECT_TRUE(out.empty());
  r.push_instant(EventKind::kPrune, 7);
  r.snapshot(out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].seq, 1u);  // epochs restart after clear
}

TEST(TraceRing, SpanAndInstantFieldsRoundTrip) {
  TraceRing r(8);
  r.push_span(EventKind::kUpdate, /*start_ns=*/100, /*dur_ns=*/50, 1, 2, 3);
  r.push_instant(EventKind::kSteal, 4, 5);
  std::vector<TraceEvent> out;
  r.snapshot(out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].ts_ns, 100);
  EXPECT_EQ(out[0].dur_ns, 50);
  EXPECT_EQ(out[0].kind, static_cast<std::uint32_t>(EventKind::kUpdate));
  EXPECT_EQ(out[0].a, 1u);
  EXPECT_EQ(out[0].b, 2u);
  EXPECT_EQ(out[0].c, 3u);
  EXPECT_LT(out[1].dur_ns, 0);  // instant marker
  EXPECT_GT(out[1].ts_ns, 0);   // stamped from the steady clock
}

// The seqlock-style reader contract: a snapshot taken while the producer is
// lapping the ring must only contain intact events with consecutive epochs.
// Event integrity is checkable because push i carries a == i and the ring
// stamps seq == i + 1, so any torn 8-word record breaks a + 1 == seq.
TEST(TraceRing, SnapshotUnderProducerPressureIsIntact) {
  TraceRing r(1 << 10);
  constexpr std::uint64_t kPushes = 200000;

  // Handshake so the producer can't finish before the reader starts (an
  // optimized build pushes 200k events faster than a thread spawn), and
  // violation *counters* instead of mid-loop ASSERTs (an early return here
  // would destroy a joinable thread).
  std::atomic<bool> reader_ready{false};
  std::atomic<bool> done{false};
  std::thread producer([&] {
    while (!reader_ready.load(std::memory_order_acquire)) {
    }
    for (std::uint64_t i = 0; i < kPushes; ++i)
      r.push(make_event(EventKind::kTaskExpand, static_cast<std::int64_t>(i),
                        -1, i));
    done.store(true, std::memory_order_release);
  });

  std::vector<TraceEvent> out;
  std::uint64_t snapshots = 0;
  std::uint64_t torn = 0, non_consecutive = 0;
  reader_ready.store(true, std::memory_order_release);
  do {
    r.snapshot(out);
    ++snapshots;
    for (std::size_t i = 0; i < out.size(); ++i) {
      if (out[i].a + 1 != out[i].seq) ++torn;
      if (i > 0 && out[i].seq != out[i - 1].seq + 1) ++non_consecutive;
    }
  } while (!done.load(std::memory_order_acquire));
  producer.join();
  EXPECT_GT(snapshots, 0u);
  EXPECT_EQ(torn, 0u) << "torn event in snapshot";
  EXPECT_EQ(non_consecutive, 0u) << "non-consecutive epochs";

  EXPECT_EQ(r.pushed(), kPushes);
  EXPECT_EQ(r.dropped(), kPushes - r.capacity());
  r.snapshot(out);
  ASSERT_EQ(out.size(), r.capacity());
  EXPECT_EQ(out.back().seq, kPushes);
}

// --------------------------------------------------------------- registry

// trace_instant()/set_thread_name() are plain functions (always compiled —
// only the engine-side macros vanish under PARACOSM_TRACE=OFF), so the
// registry tests run in every build flavor.
TEST(TraceRegistry, PerThreadLanesSurviveTheirThreads) {
  TraceLevelGuard guard;
  TraceRegistry& reg = TraceRegistry::instance();
  reg.clear();
  obs::set_trace_level(1);

  constexpr int kProducers = 3;
  std::vector<std::thread> producers;
  for (int t = 0; t < kProducers; ++t)
    producers.emplace_back([t] {
      TraceRegistry::set_thread_name("producer " + std::to_string(t));
      for (int i = 0; i < 10 + t; ++i)
        obs::trace_instant(EventKind::kSteal, static_cast<std::uint64_t>(t),
                           static_cast<std::uint64_t>(i));
    });
  for (std::thread& p : producers) p.join();
  obs::set_trace_level(0);

  // Collect after the threads died: entries outlive their threads.
  const std::vector<RingSnapshot> rings = TraceRegistry::instance().collect();
  int found = 0;
  for (int t = 0; t < kProducers; ++t) {
    const std::string want = "producer " + std::to_string(t);
    for (const RingSnapshot& ring : rings) {
      if (ring.name != want) continue;
      ++found;
      EXPECT_EQ(ring.pushed, static_cast<std::uint64_t>(10 + t));
      EXPECT_EQ(ring.dropped, 0u);
      ASSERT_EQ(ring.events.size(), static_cast<std::size_t>(10 + t));
      for (std::size_t i = 0; i < ring.events.size(); ++i) {
        EXPECT_EQ(ring.events[i].a, static_cast<std::uint64_t>(t));
        EXPECT_EQ(ring.events[i].b, i);
        EXPECT_EQ(ring.events[i].seq, i + 1);
      }
    }
  }
  EXPECT_EQ(found, kProducers);

  // Lane ids are unique across the registry.
  for (std::size_t i = 0; i < rings.size(); ++i)
    for (std::size_t j = i + 1; j < rings.size(); ++j)
      EXPECT_NE(rings[i].tid, rings[j].tid);
}

TEST(TraceRegistry, ClearDropsEventsButKeepsLanes) {
  TraceLevelGuard guard;
  TraceRegistry& reg = TraceRegistry::instance();
  obs::set_trace_level(1);
  obs::trace_instant(EventKind::kResplit, 1);
  obs::set_trace_level(0);
  reg.clear();
  for (const RingSnapshot& ring : reg.collect()) {
    EXPECT_EQ(ring.pushed, 0u);
    EXPECT_TRUE(ring.events.empty());
  }
}

// ---------------------------------------------------- golden Chrome trace

// Byte-for-byte golden output: lanes sorted by (name, tid), timestamps
// rebased to the earliest event and formatted with integer math, metadata
// before events, named args. Any formatting change must update this string
// deliberately — Perfetto loads exactly this shape.
TEST(ChromeTrace, GoldenSerializationIsByteStable) {
  RingSnapshot worker;
  worker.tid = 1;
  worker.name = "worker 0";
  worker.pushed = 2;
  worker.events = {
      make_event(EventKind::kUpdate, 2000, 1500, 1, 2, 3),
      make_event(EventKind::kSteal, 3500, -1, 4, 5, 2),
  };
  RingSnapshot main_lane;
  main_lane.tid = 0;
  main_lane.name = "main";  // no events: metadata row only

  // Passed out of (name-sorted) order on purpose.
  const std::string got = obs::chrome_trace_json({worker, main_lane});
  const std::string want =
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
      "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\"args\":{\"name\":\"paracosm\"}},\n"
      "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"thread_name\",\"args\":{\"name\":\"main\"}},\n"
      "{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"thread_name\",\"args\":{\"name\":\"worker 0\"}},\n"
      "{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":0.000,\"dur\":1.500,"
      "\"name\":\"update\",\"cat\":\"engine\",\"args\":{\"op\":1,\"u\":2,\"v\":3}},\n"
      "{\"ph\":\"i\",\"pid\":1,\"tid\":1,\"ts\":1.500,\"s\":\"t\","
      "\"name\":\"steal\",\"cat\":\"sched\",\"args\":{\"victim\":4,\"thief\":5,\"distance\":2}}\n"
      "]}\n";
  EXPECT_EQ(got, want);

  // Deterministic: serializing the same input twice is byte-identical.
  EXPECT_EQ(obs::chrome_trace_json({worker, main_lane}), got);
}

TEST(ChromeTrace, DroppedMarkerAndNameEscaping) {
  RingSnapshot lane;
  lane.tid = 2;
  lane.name = "we\"ird\\na\nme";  // quote + backslash escaped, newline dropped
  lane.pushed = 10;
  lane.dropped = 7;
  lane.events = {make_event(EventKind::kWalFsync, 5000, 250)};
  RingSnapshot anon;
  anon.tid = 5;  // empty name falls back to "thread 5"
  anon.events = {make_event(EventKind::kWatchdogFire, 5000, -1, 9)};

  const std::string got = obs::chrome_trace_json({lane, anon});
  const std::string want =
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
      "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\"args\":{\"name\":\"paracosm\"}},\n"
      "{\"ph\":\"M\",\"pid\":1,\"tid\":5,\"name\":\"thread_name\",\"args\":{\"name\":\"thread 5\"}},\n"
      "{\"ph\":\"M\",\"pid\":1,\"tid\":2,\"name\":\"thread_name\",\"args\":{\"name\":\"we\\\"ird\\\\name\"}},\n"
      "{\"ph\":\"i\",\"pid\":1,\"tid\":5,\"ts\":0.000,\"s\":\"t\","
      "\"name\":\"watchdog_fire\",\"cat\":\"service\",\"args\":{\"epoch\":9}},\n"
      "{\"ph\":\"X\",\"pid\":1,\"tid\":2,\"ts\":0.000,\"dur\":0.250,"
      "\"name\":\"wal_fsync\",\"cat\":\"service\",\"args\":{}},\n"
      "{\"ph\":\"i\",\"pid\":1,\"tid\":2,\"ts\":0.000,\"s\":\"t\","
      "\"name\":\"ring_dropped\",\"cat\":\"obs\",\"args\":{\"dropped\":7}}\n"
      "]}\n";
  EXPECT_EQ(got, want);
}

TEST(ChromeTrace, EmptyInputStillValidJson) {
  const std::string got = obs::chrome_trace_json({});
  EXPECT_EQ(got,
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
            "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\","
            "\"args\":{\"name\":\"paracosm\"}}\n]}\n");
}

TEST(ChromeTrace, WriteFileMatchesInMemorySerialization) {
  RingSnapshot lane;
  lane.tid = 3;
  lane.name = "service";
  lane.events = {make_event(EventKind::kServiceUpdate, 9000, 4000, 11, 1)};

  const std::string path = ::testing::TempDir() + "/golden_trace.json";
  obs::write_chrome_trace(path, {lane});

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), obs::chrome_trace_json({lane}));
}

}  // namespace
}  // namespace paracosm
