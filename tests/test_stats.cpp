// Tests for the graph statistics module on hand-built and generated graphs.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/stats.hpp"

namespace paracosm::graph {
namespace {

DataGraph square_with_diagonal() {
  DataGraph g;
  for (const Label l : {0u, 0u, 1u, 1u}) g.add_vertex(l);
  g.add_edge(0, 1, 0);
  g.add_edge(1, 2, 0);
  g.add_edge(2, 3, 0);
  g.add_edge(3, 0, 0);
  g.add_edge(0, 2, 0);  // diagonal
  return g;
}

TEST(GraphStats, DegreeStatsOnKnownGraph) {
  const DataGraph g = square_with_diagonal();
  const DegreeStats s = degree_stats(g);
  EXPECT_EQ(s.min, 2u);
  EXPECT_EQ(s.max, 3u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_GE(s.p90, s.p50);
  EXPECT_GE(s.p99, s.p90);
}

TEST(GraphStats, LabelHistogramAndConcentration) {
  const DataGraph g = square_with_diagonal();
  const auto hist = label_histogram(g);
  ASSERT_EQ(hist.size(), 2u);
  EXPECT_EQ(hist.at(0), 2u);
  EXPECT_EQ(hist.at(1), 2u);
  EXPECT_DOUBLE_EQ(label_concentration(g), 0.5);  // two equal labels
}

TEST(GraphStats, ClusteringCoefficientBounds) {
  util::Rng rng(1);
  // Complete graph: clustering 1.
  DataGraph complete;
  for (int i = 0; i < 5; ++i) complete.add_vertex(0);
  for (int i = 0; i < 5; ++i)
    for (int j = i + 1; j < 5; ++j) complete.add_edge(i, j, 0);
  EXPECT_DOUBLE_EQ(clustering_coefficient(complete, 50, rng), 1.0);
  // Star graph: clustering 0.
  DataGraph star;
  for (int i = 0; i < 6; ++i) star.add_vertex(0);
  for (int i = 1; i < 6; ++i) star.add_edge(0, i, 0);
  EXPECT_DOUBLE_EQ(clustering_coefficient(star, 50, rng), 0.0);
}

TEST(GraphStats, ConnectedComponents) {
  DataGraph g;
  for (int i = 0; i < 6; ++i) g.add_vertex(0);
  g.add_edge(0, 1, 0);
  g.add_edge(2, 3, 0);
  EXPECT_EQ(connected_components(g), 4u);  // {0,1} {2,3} {4} {5}
  g.add_edge(1, 2, 0);
  EXPECT_EQ(connected_components(g), 3u);
  g.remove_vertex(4);
  EXPECT_EQ(connected_components(g), 2u);
}

TEST(GraphStats, StandInsAreHeavyTailedAndConnectedish) {
  util::Rng rng(7);
  const DataGraph g = generate_power_law(livejournal_spec(0.1), rng);
  const DegreeStats s = degree_stats(g);
  EXPECT_GT(s.tail_ratio(), 3.0);  // preferential attachment -> hubs
  EXPECT_LE(connected_components(g), g.num_vertices() / 10);
  // Skewed labels: concentration above the uniform baseline 1/|L|.
  EXPECT_GT(label_concentration(g), 1.0 / 30.0);
}

TEST(GraphStats, DescribeIsNonEmpty) {
  util::Rng rng(9);
  const DataGraph g = square_with_diagonal();
  const std::string text = describe(g, rng);
  EXPECT_NE(text.find("|V|=4"), std::string::npos);
  EXPECT_NE(text.find("degree:"), std::string::npos);
}

}  // namespace
}  // namespace paracosm::graph
