// Tests for matching-order construction and the brute-force oracle.
#include <gtest/gtest.h>

#include "csm/oracle.hpp"
#include "csm/order.hpp"
#include "graph/generators.hpp"
#include "tests/test_support.hpp"

namespace paracosm::csm {
namespace {

using graph::DataGraph;
using graph::QueryGraph;

TEST(EdgeRootedOrder, StartsWithSeedAndStaysConnected) {
  util::Rng rng(1);
  const DataGraph g = graph::generate_erdos_renyi(40, 120, 2, 1, rng);
  const auto q = graph::extract_query(g, 6, rng);
  ASSERT_TRUE(q.has_value());
  for (const auto& e : q->edges()) {
    const auto order = edge_rooted_order(*q, e.u, e.v);
    ASSERT_EQ(order.size(), q->num_vertices());
    EXPECT_EQ(order[0], e.u);
    EXPECT_EQ(order[1], e.v);
    // Every later vertex must touch an earlier one (connected prefix).
    for (std::size_t i = 2; i < order.size(); ++i) {
      bool touches = false;
      for (std::size_t j = 0; j < i; ++j)
        if (q->has_edge(order[i], order[j])) touches = true;
      EXPECT_TRUE(touches) << "position " << i;
    }
    // And it is a permutation.
    auto sorted = order;
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);
  }
}

TEST(EdgeRootedOrder, DisconnectedQueryThrows) {
  // Construct a disconnected "query" via the raw constructor.
  QueryGraph q({0, 1, 2, 3}, {{0, 1, 0}, {2, 3, 0}});
  EXPECT_THROW((void)edge_rooted_order(q, 0, 1), std::invalid_argument);
}

TEST(OrderTable, CoversEveryDirectedEdge) {
  QueryGraph q({0, 1, 2}, {{0, 1, 0}, {1, 2, 0}});
  OrderTable table(q);
  for (const auto& e : q.edges()) {
    EXPECT_EQ(table.order_for(e.u, e.v)[0], e.u);
    EXPECT_EQ(table.order_for(e.v, e.u)[0], e.v);
  }
  EXPECT_THROW((void)table.order_for(0, 2), std::invalid_argument);
}

TEST(Oracle, CountsTrianglesExactly) {
  // K4 with uniform labels: each labeled triangle query has 4 triangles x 6
  // automorphic mappings = 24 matches.
  DataGraph g;
  for (int i = 0; i < 4; ++i) g.add_vertex(0);
  for (int i = 0; i < 4; ++i)
    for (int j = i + 1; j < 4; ++j) g.add_edge(i, j, 0);
  QueryGraph triangle({0, 0, 0}, {{0, 1, 0}, {1, 2, 0}, {0, 2, 0}});
  EXPECT_EQ(count_all_matches(triangle, g), 24u);
}

TEST(Oracle, RespectsVertexLabels) {
  DataGraph g;
  g.add_vertex(0);
  g.add_vertex(1);
  g.add_vertex(2);
  g.add_edge(0, 1, 0);
  g.add_edge(1, 2, 0);
  QueryGraph path({0, 1}, {{0, 1, 0}});
  EXPECT_EQ(count_all_matches(path, g), 1u);  // only (v0, v1)
  QueryGraph path2({1, 2}, {{0, 1, 0}});
  EXPECT_EQ(count_all_matches(path2, g), 1u);
}

TEST(Oracle, RespectsEdgeLabelsUnlessBlind) {
  DataGraph g;
  g.add_vertex(0);
  g.add_vertex(0);
  g.add_edge(0, 1, 5);
  QueryGraph wrong_label({0, 0}, {{0, 1, 6}});
  EXPECT_EQ(count_all_matches(wrong_label, g, /*use_edge_labels=*/true), 0u);
  EXPECT_EQ(count_all_matches(wrong_label, g, /*use_edge_labels=*/false), 2u);
}

TEST(Oracle, EmptyAndImpossibleQueries) {
  DataGraph g;
  g.add_vertex(0);
  g.add_vertex(0);
  g.add_edge(0, 1, 0);
  QueryGraph too_big({0, 0, 0}, {{0, 1, 0}, {1, 2, 0}});
  EXPECT_EQ(count_all_matches(too_big, g), 0u);
  QueryGraph empty({}, {});
  EXPECT_EQ(count_all_matches(empty, g), 0u);
}

TEST(Oracle, DeadlineAborts) {
  util::Rng rng(9);
  // Dense single-label graph: combinatorial explosion guaranteed.
  const DataGraph g = graph::generate_erdos_renyi(64, 1200, 1, 1, rng);
  const auto q = graph::extract_query(g, 8, rng);
  ASSERT_TRUE(q.has_value());
  MatchSink sink;
  sink.deadline = util::Clock::now() - std::chrono::seconds(1);
  enumerate_all_matches(*q, g, sink);
  EXPECT_TRUE(sink.timed_out());
}

TEST(Oracle, MatchCallbackReceivesValidMappings) {
  DataGraph g;
  for (int i = 0; i < 3; ++i) g.add_vertex(0);
  g.add_edge(0, 1, 0);
  g.add_edge(1, 2, 0);
  QueryGraph path({0, 0}, {{0, 1, 0}});
  MatchSink sink;
  std::size_t calls = 0;
  sink.on_match = [&](std::span<const Assignment> mapping) {
    ++calls;
    ASSERT_EQ(mapping.size(), 2u);
    EXPECT_TRUE(g.has_edge(mapping[0].dv, mapping[1].dv));
  };
  enumerate_all_matches(path, g, sink);
  EXPECT_EQ(calls, 4u);  // two edges x two orientations
  EXPECT_EQ(sink.matches, 4u);
}

TEST(MatchSink, MergeAccumulates) {
  MatchSink a, b;
  a.matches = 3;
  a.nodes = 10;
  b.matches = 4;
  b.nodes = 20;
  b.mark_timed_out();
  a.merge(b);
  EXPECT_EQ(a.matches, 7u);
  EXPECT_EQ(a.nodes, 30u);
  EXPECT_TRUE(a.timed_out());
}

TEST(MatchSink, TickHonorsDeadline) {
  MatchSink sink;
  sink.deadline = util::Clock::now() - std::chrono::milliseconds(1);
  bool aborted = false;
  for (int i = 0; i < 5000; ++i) {
    if (!sink.tick()) {
      aborted = true;
      break;
    }
  }
  EXPECT_TRUE(aborted);
  EXPECT_TRUE(sink.timed_out());
}

}  // namespace
}  // namespace paracosm::csm
