// Transport, framing, fault-plane and partitioning unit tests (DESIGN.md
// §12). Everything here is in-process: both channel ends live in this test
// over a plain socketpair — the multi-process integration matrix is
// tests/test_sharding.cpp.
#include <sys/socket.h>
#include <unistd.h>

#include <csignal>
#include <cstring>
#include <thread>

#include <gtest/gtest.h>

#include "shard/fault.hpp"
#include "shard/partition.hpp"
#include "shard/transport.hpp"
#include "shard/wire.hpp"
#include "shard/worker.hpp"

namespace paracosm::shard {
namespace {

/// The supervisor ignores SIGPIPE process-wide; these tests drive Channel
/// directly against deliberately closed peers, so do the same here.
const struct IgnoreSigpipe {
  IgnoreSigpipe() { std::signal(SIGPIPE, SIG_IGN); }
} g_ignore_sigpipe;

/// A connected channel pair (coordinator end, worker end).
struct Pair {
  std::unique_ptr<Channel> a;
  std::unique_ptr<Channel> b;
  Pair() {
    int sv[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    a = std::make_unique<Channel>(sv[0]);
    b = std::make_unique<Channel>(sv[1]);
  }
};

Frame make_frame(std::uint64_t seq, std::size_t payload_bytes) {
  Frame f;
  f.type = FrameType::kApply;
  f.flags = kFlagOwner;
  f.shard = 3;
  f.seq = seq;
  f.payload.resize(payload_bytes);
  for (std::size_t i = 0; i < payload_bytes; ++i)
    f.payload[i] = static_cast<unsigned char>(i * 7 + 1);
  return f;
}

TEST(Transport, FrameRoundtripPreservesEveryField) {
  Pair p;
  const Frame sent = make_frame(42, 100);
  ASSERT_EQ(p.a->send(sent, 1000), TransportError::kOk);
  Frame got;
  ASSERT_EQ(p.b->recv(got, 1000), TransportError::kOk);
  EXPECT_EQ(got.type, sent.type);
  EXPECT_EQ(got.flags, sent.flags);
  EXPECT_EQ(got.shard, sent.shard);
  EXPECT_EQ(got.seq, sent.seq);
  EXPECT_EQ(got.payload, sent.payload);
  EXPECT_EQ(p.a->stats().frames_sent, 1u);
  EXPECT_EQ(p.b->stats().frames_received, 1u);
}

TEST(Transport, EmptyPayloadRoundtrips) {
  Pair p;
  Frame f;
  f.type = FrameType::kPing;
  f.seq = 9;
  ASSERT_EQ(p.a->send(f, 1000), TransportError::kOk);
  Frame got;
  ASSERT_EQ(p.b->recv(got, 1000), TransportError::kOk);
  EXPECT_EQ(got.type, FrameType::kPing);
  EXPECT_TRUE(got.payload.empty());
}

TEST(Transport, CorruptedPayloadByteIsDroppedAndStreamStaysAligned) {
  Pair p;
  // Flip a payload byte after checksumming: the receiver must detect it,
  // consume the whole frame, and stay usable for the next one.
  ASSERT_EQ(p.a->send(make_frame(1, 64), 1000,
                      /*corrupt_byte=*/static_cast<int>(kFrameHeaderBytes) + 10),
            TransportError::kOk);
  Frame got;
  EXPECT_EQ(p.b->recv(got, 1000), TransportError::kChecksumMismatch);
  EXPECT_EQ(p.b->stats().checksum_drops, 1u);

  ASSERT_EQ(p.a->send(make_frame(2, 16), 1000), TransportError::kOk);
  ASSERT_EQ(p.b->recv(got, 1000), TransportError::kOk);
  EXPECT_EQ(got.seq, 2u);
}

TEST(Transport, CorruptedChecksumFieldIsDropped) {
  Pair p;
  ASSERT_EQ(p.a->send(make_frame(1, 8), 1000, /*corrupt_byte=*/24),
            TransportError::kOk);
  Frame got;
  EXPECT_EQ(p.b->recv(got, 1000), TransportError::kChecksumMismatch);
}

TEST(Transport, TimeoutWithNoDataIsCleanTimeout) {
  Pair p;
  Frame got;
  EXPECT_EQ(p.b->recv(got, 30), TransportError::kTimeout);
  EXPECT_EQ(p.b->stats().timeouts, 1u);
}

TEST(Transport, EofMidFrameIsTorn) {
  Pair p;
  // Write half a header, then kill the writer: the reader is stuck between
  // frame boundaries — torn, not a clean peer-gone.
  unsigned char half[10] = {0};
  std::uint32_t magic = kFrameMagic;
  std::memcpy(half, &magic, 4);
  ASSERT_EQ(::write(p.a->fd(), half, sizeof half),
            static_cast<ssize_t>(sizeof half));
  p.a.reset();
  Frame got;
  EXPECT_EQ(p.b->recv(got, 1000), TransportError::kTornFrame);
  EXPECT_EQ(p.b->stats().torn_frames, 1u);
}

TEST(Transport, BadMagicIsTorn) {
  Pair p;
  unsigned char junk[kFrameHeaderBytes] = {0xde, 0xad, 0xbe, 0xef};
  ASSERT_EQ(::write(p.a->fd(), junk, sizeof junk),
            static_cast<ssize_t>(sizeof junk));
  Frame got;
  EXPECT_EQ(p.b->recv(got, 1000), TransportError::kTornFrame);
}

TEST(Transport, ClosedPeerIsPeerGone) {
  Pair p;
  p.a.reset();
  Frame got;
  EXPECT_EQ(p.b->recv(got, 1000), TransportError::kPeerGone);
  EXPECT_EQ(p.b->stats().peer_gone, 1u);
}

TEST(Transport, QueuedFrameIsReadableAfterPeerCloses) {
  Pair p;
  ASSERT_EQ(p.a->send(make_frame(7, 4), 1000), TransportError::kOk);
  p.a.reset();  // final ack then death — the ack must not be lost
  Frame got;
  ASSERT_EQ(p.b->recv(got, 1000), TransportError::kOk);
  EXPECT_EQ(got.seq, 7u);
  EXPECT_EQ(p.b->recv(got, 1000), TransportError::kPeerGone);
}

TEST(Requester, RetriesAfterUnansweredAttemptThenSucceeds) {
  Pair p;
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.attempt_timeout_ms = 120;
  policy.backoff_base_ms = 1;

  std::thread server([&p] {
    Frame req;
    ASSERT_EQ(p.b->recv(req, 3000), TransportError::kOk);  // ignore 1st
    ASSERT_EQ(p.b->recv(req, 3000), TransportError::kOk);  // answer 2nd
    Frame ack;
    ack.type = FrameType::kApplyAck;
    ack.shard = req.shard;
    ack.seq = req.seq;
    ASSERT_EQ(p.b->send(ack, 1000), TransportError::kOk);
  });

  Requester requester(*p.a, policy);
  Frame out;
  EXPECT_EQ(requester.request(make_frame(5, 8), FrameType::kApplyAck, out),
            TransportError::kOk);
  EXPECT_EQ(out.seq, 5u);
  EXPECT_EQ(p.a->stats().retries, 1u);
  server.join();
}

TEST(Requester, StaleAckIsDiscardedWhileWaiting) {
  Pair p;
  RetryPolicy policy;
  policy.attempt_timeout_ms = 1000;
  std::thread server([&p] {
    Frame req;
    ASSERT_EQ(p.b->recv(req, 3000), TransportError::kOk);
    Frame stale;  // an old duplicate answered late
    stale.type = FrameType::kApplyAck;
    stale.seq = req.seq - 1;
    ASSERT_EQ(p.b->send(stale, 1000), TransportError::kOk);
    Frame ack;
    ack.type = FrameType::kApplyAck;
    ack.seq = req.seq;
    ASSERT_EQ(p.b->send(ack, 1000), TransportError::kOk);
  });
  Requester requester(*p.a, policy);
  Frame out;
  EXPECT_EQ(requester.request(make_frame(9, 8), FrameType::kApplyAck, out),
            TransportError::kOk);
  EXPECT_EQ(out.seq, 9u);
  EXPECT_EQ(p.a->stats().stale_acks, 1u);
  server.join();
}

TEST(Requester, NakIsSurfacedNotRetried) {
  Pair p;
  RetryPolicy policy;
  std::thread server([&p] {
    Frame req;
    ASSERT_EQ(p.b->recv(req, 3000), TransportError::kOk);
    Frame nak;
    nak.type = FrameType::kNak;
    nak.seq = req.seq;
    nak.payload = wire::encode_u64(77);
    ASSERT_EQ(p.b->send(nak, 1000), TransportError::kOk);
  });
  Requester requester(*p.a, policy);
  Frame out;
  EXPECT_EQ(requester.request(make_frame(3, 8), FrameType::kApplyAck, out),
            TransportError::kOk);
  EXPECT_EQ(out.type, FrameType::kNak);
  EXPECT_EQ(wire::decode_u64(out.payload).value_or(0), 77u);
  server.join();
}

TEST(Requester, DeadPeerExhaustsNothingAndReturnsPeerGone) {
  Pair p;
  p.b.reset();
  RetryPolicy policy;
  policy.max_attempts = 5;
  Requester requester(*p.a, policy);
  Frame out;
  EXPECT_EQ(requester.request(make_frame(1, 8), FrameType::kApplyAck, out),
            TransportError::kPeerGone);
  // No retry storm against a corpse: the supervisor owns dead peers.
  EXPECT_EQ(p.a->stats().retries, 0u);
}

// ---------------------------------------------------------------- FaultPlane

TEST(FaultPlane, DecisionsAreDeterministicPerPlan) {
  const FaultPlan plan = FaultPlan::parse(
      "seed=7,drop=0.2,dup=0.2,corrupt=0.2,delay=0.3:100");
  FaultPlane x(plan), y(plan);
  for (std::uint64_t seq = 0; seq < 200; ++seq) {
    for (std::uint32_t attempt = 0; attempt < 3; ++attempt) {
      EXPECT_EQ(x.drop(1, seq, attempt), y.drop(1, seq, attempt));
      EXPECT_EQ(x.dup(1, seq, attempt), y.dup(1, seq, attempt));
      EXPECT_EQ(x.corrupt_byte(1, seq, attempt, 64),
                y.corrupt_byte(1, seq, attempt, 64));
      EXPECT_EQ(x.delay_us(1, seq, attempt), y.delay_us(1, seq, attempt));
    }
  }
  EXPECT_GT(x.stats().dropped, 0u);
  EXPECT_GT(x.stats().corrupted, 0u);
}

TEST(FaultPlane, DifferentSeedsDisagreeSomewhere) {
  FaultPlan plan;
  plan.drop_rate = 0.5;
  plan.seed = 1;
  FaultPlane x(plan);
  plan.seed = 2;
  FaultPlane y(plan);
  bool differ = false;
  for (std::uint64_t seq = 0; seq < 64 && !differ; ++seq)
    differ = x.drop(0, seq, 0) != y.drop(0, seq, 0);
  EXPECT_TRUE(differ);
}

TEST(FaultPlane, CorruptionNeverTouchesFramingFields) {
  FaultPlan plan;
  plan.seed = 3;
  plan.corrupt_rate = 1.0;
  FaultPlane fp(plan);
  for (std::uint64_t seq = 0; seq < 100; ++seq) {
    const int b = fp.corrupt_byte(2, seq, 0, 96);
    ASSERT_GE(b, 24) << "corruption in the framing fields desynchronizes the "
                        "stream (a different failure class)";
    ASSERT_LT(b, 96);
  }
}

TEST(FaultPlane, RetryOfSameFrameCanTakeDifferentFault) {
  FaultPlan plan;
  plan.seed = 5;
  plan.drop_rate = 0.5;
  FaultPlane fp(plan);
  bool differ = false;
  for (std::uint64_t seq = 0; seq < 64 && !differ; ++seq)
    differ = fp.drop(0, seq, 0) != fp.drop(0, seq, 1);
  EXPECT_TRUE(differ) << "a retry doomed to repeat its fault can never recover";
}

TEST(FaultPlan, SpecRoundtrips) {
  const FaultPlan plan = FaultPlan::parse(
      "seed=11,drop=0.25,dup=0.125,corrupt=0.5,delay=0.25:250");
  EXPECT_EQ(plan.seed, 11u);
  EXPECT_DOUBLE_EQ(plan.drop_rate, 0.25);
  EXPECT_DOUBLE_EQ(plan.dup_rate, 0.125);
  EXPECT_DOUBLE_EQ(plan.corrupt_rate, 0.5);
  EXPECT_DOUBLE_EQ(plan.delay_rate, 0.25);
  EXPECT_EQ(plan.delay_us, 250u);
  const FaultPlan again = FaultPlan::parse(plan.to_spec());
  EXPECT_EQ(again.seed, plan.seed);
  EXPECT_DOUBLE_EQ(again.drop_rate, plan.drop_rate);
  EXPECT_EQ(again.delay_us, plan.delay_us);
}

TEST(FaultPlan, MalformedSpecThrows) {
  EXPECT_THROW((void)FaultPlan::parse("drop"), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("bogus=1"), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("drop=abc"), std::invalid_argument);
  EXPECT_FALSE(FaultPlan::parse("").any());
}

// ----------------------------------------------------------------- partition

TEST(Partition, OwnershipIsDeterministicAndRoutesByMinEndpoint) {
  graph::GraphUpdate e;
  e.op = graph::UpdateOp::kInsertEdge;
  e.u = 17;
  e.v = 4;
  graph::GraphUpdate flipped = e;
  std::swap(flipped.u, flipped.v);
  EXPECT_EQ(owner_shard(e, 4), owner_shard(flipped, 4));
  EXPECT_EQ(owner_shard(e, 4), home_shard(4, 4));
  EXPECT_LT(owner_shard(e, 3), 3u);
}

TEST(Partition, FailoverWalksTheRingPastDeadShards) {
  graph::GraphUpdate e;
  e.op = graph::UpdateOp::kInsertEdge;
  e.u = 1;
  e.v = 2;
  const std::uint32_t n = 4;
  std::vector<bool> dead(n, false);
  const std::uint32_t home = owner_shard(e, n);
  EXPECT_EQ(owner_shard_live(e, dead), home);
  dead[home] = true;
  EXPECT_EQ(owner_shard_live(e, dead), (home + 1) % n);
  dead[(home + 1) % n] = true;
  EXPECT_EQ(owner_shard_live(e, dead), (home + 2) % n);
  std::fill(dead.begin(), dead.end(), true);
  EXPECT_EQ(owner_shard_live(e, dead), n);  // no owner exists
}

// ---------------------------------------------------------------------- wire

TEST(Wire, ApplyRoundtripsAndRejectsBadOp) {
  graph::GraphUpdate upd;
  upd.op = graph::UpdateOp::kRemoveEdge;
  upd.u = 11;
  upd.v = 22;
  upd.label = 5;
  const auto enc = wire::encode_apply(upd);
  const auto dec = wire::decode_apply(enc);
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(dec->op, upd.op);
  EXPECT_EQ(dec->u, upd.u);
  EXPECT_EQ(dec->v, upd.v);
  EXPECT_EQ(dec->label, upd.label);

  auto bad = enc;
  bad[0] = 0x7f;  // no such op
  EXPECT_FALSE(wire::decode_apply(bad).has_value());
  EXPECT_FALSE(wire::decode_apply({enc.begin(), enc.begin() + 3}).has_value());
}

TEST(Wire, ApplyAckRoundtripsWithAssignments) {
  wire::ApplyAck ack;
  ack.applied = true;
  ack.positive = 3;
  ack.negative = 1;
  ack.match_size = 2;
  ack.assignments = {{0, 10}, {1, 20}, {0, 11}, {1, 21}};
  const auto enc = wire::encode_apply_ack(ack);
  const auto dec = wire::decode_apply_ack(enc);
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(dec->applied, true);
  EXPECT_EQ(dec->positive, 3u);
  EXPECT_EQ(dec->negative, 1u);
  EXPECT_EQ(dec->match_size, 2u);
  ASSERT_EQ(dec->assignments.size(), 4u);
  EXPECT_EQ(dec->assignments[2].dv, 11u);

  EXPECT_FALSE(
      wire::decode_apply_ack({enc.begin(), enc.begin() + 5}).has_value());
}

TEST(Wire, ShardWalFingerprintsAreDistinctAndNonZero) {
  const std::uint32_t base = 0xabcdef01;
  const std::uint32_t a = shard_wal_fingerprint(base, 0);
  const std::uint32_t b = shard_wal_fingerprint(base, 1);
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b) << "two shards sharing a WAL identity could replay each "
                     "other's logs";
  EXPECT_NE(shard_wal_fingerprint(base ^ 1, 0), a);
}

}  // namespace
}  // namespace paracosm::shard
