// Service layer (ISSUE 4): bounded ingest, WAL/snapshot durability, crash
// recovery, and the oracle-checked fault matrix.
#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "paracosm/paracosm.hpp"
#include "service/ingest.hpp"
#include "service/service.hpp"
#include "service/wal.hpp"
#include "tests/test_support.hpp"
#include "verify/fuzzer.hpp"
#include "verify/service_check.hpp"

namespace paracosm {
namespace {

using graph::GraphUpdate;
using service::IngestItem;
using service::IngestQueue;
using service::OverloadPolicy;
using service::PushResult;

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// ------------------------------------------------------------------ ingest

TEST(IngestQueue, FifoRoundtrip) {
  IngestQueue q(8, OverloadPolicy::kBlock);
  for (std::uint32_t i = 0; i < 5; ++i)
    EXPECT_EQ(q.push(GraphUpdate::insert_edge(i, i + 1, 0)), PushResult::kOk);
  EXPECT_EQ(q.approx_size(), 5u);

  IngestItem item;
  for (std::uint32_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(q.try_pop(item));
    EXPECT_EQ(item.upd.u, i);
    EXPECT_FALSE(item.degraded);
  }
  EXPECT_FALSE(q.try_pop(item));
  EXPECT_EQ(q.stats().enqueued, 5u);
  EXPECT_EQ(q.stats().high_water, 5u);
}

TEST(IngestQueue, ShedPolicyRejectsWhenFull) {
  IngestQueue q(2, OverloadPolicy::kShed);
  EXPECT_EQ(q.push(GraphUpdate::insert_edge(0, 1, 0)), PushResult::kOk);
  EXPECT_EQ(q.push(GraphUpdate::insert_edge(1, 2, 0)), PushResult::kOk);
  EXPECT_EQ(q.push(GraphUpdate::insert_edge(2, 3, 0)), PushResult::kShed);
  EXPECT_EQ(q.stats().shed, 1u);
  EXPECT_EQ(q.stats().enqueued, 2u);
}

TEST(IngestQueue, DegradePolicyFlagsOverloadVictims) {
  IngestQueue q(2, OverloadPolicy::kDegrade);
  EXPECT_EQ(q.push(GraphUpdate::insert_edge(0, 1, 0)), PushResult::kOk);
  EXPECT_EQ(q.push(GraphUpdate::insert_edge(1, 2, 0)), PushResult::kOk);

  // Third push blocks until the consumer frees a slot, then lands degraded.
  std::thread consumer([&q] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    IngestItem item;
    ASSERT_TRUE(q.try_pop(item));
    EXPECT_FALSE(item.degraded);
  });
  EXPECT_EQ(q.push(GraphUpdate::insert_edge(2, 3, 0)), PushResult::kDegraded);
  consumer.join();

  IngestItem item;
  ASSERT_TRUE(q.try_pop(item));
  EXPECT_FALSE(item.degraded);
  ASSERT_TRUE(q.try_pop(item));
  EXPECT_TRUE(item.degraded);
  EXPECT_EQ(q.stats().degraded, 1u);
  EXPECT_GE(q.stats().blocked_pushes, 1u);
}

TEST(IngestQueue, PopWaitDrainsAfterClose) {
  IngestQueue q(8, OverloadPolicy::kBlock);
  EXPECT_EQ(q.push(GraphUpdate::insert_edge(7, 8, 1)), PushResult::kOk);
  q.close();
  EXPECT_EQ(q.push(GraphUpdate::insert_edge(8, 9, 1)), PushResult::kClosed);

  IngestItem item;
  ASSERT_TRUE(q.pop_wait(item));  // the pre-close item must still drain
  EXPECT_EQ(item.upd.u, 7u);
  EXPECT_FALSE(q.pop_wait(item));  // then clean termination
}

TEST(IngestQueue, MpscStressKeepsEveryUpdate) {
  IngestQueue q(16, OverloadPolicy::kBlock);
  constexpr int kProducers = 4, kPerProducer = 500;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p)
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i)
        (void)q.push(GraphUpdate::insert_edge(static_cast<graph::VertexId>(p),
                                              static_cast<graph::VertexId>(i), 0));
    });

  std::uint64_t popped = 0, last_u[kProducers] = {};
  bool order_ok = true;
  std::thread consumer([&] {
    IngestItem item;
    while (q.pop_wait(item)) {
      ++popped;
      // Per-producer FIFO: each producer's sequence numbers arrive in order.
      if (item.upd.v < last_u[item.upd.u] && item.upd.v != 0) order_ok = false;
      last_u[item.upd.u] = item.upd.v;
    }
  });
  for (std::thread& t : producers) t.join();
  q.close();
  consumer.join();
  EXPECT_EQ(popped, static_cast<std::uint64_t>(kProducers) * kPerProducer);
  EXPECT_TRUE(order_ok);
  EXPECT_GE(q.stats().blocked_pushes, 1u);  // capacity 16 vs 2000 pushes
}

// --------------------------------------------------------------------- WAL

TEST(Wal, AppendReadRoundtrip) {
  const std::string path = tmp_path("roundtrip.wal");
  const std::vector<GraphUpdate> updates = {
      GraphUpdate::insert_edge(1, 2, 3), GraphUpdate::remove_edge(1, 2),
      GraphUpdate::insert_vertex(9, 4), GraphUpdate::remove_vertex(9)};
  {
    service::WalWriter w(path, /*truncate=*/true);
    for (const GraphUpdate& u : updates) (void)w.append(u);
    w.flush();
    EXPECT_EQ(w.next_seq(), updates.size());
  }
  const service::WalReadResult r = service::read_wal(path);
  EXPECT_FALSE(r.torn_tail);
  ASSERT_EQ(r.records.size(), updates.size());
  for (std::size_t i = 0; i < updates.size(); ++i) {
    EXPECT_EQ(r.records[i].seq, i);
    EXPECT_EQ(r.records[i].upd, updates[i]);
  }
}

TEST(Wal, TornTailDetectedAndTruncated) {
  const std::string path = tmp_path("torn.wal");
  {
    service::WalWriter w(path, /*truncate=*/true);
    (void)w.append(GraphUpdate::insert_edge(1, 2, 0));
    (void)w.append(GraphUpdate::insert_edge(2, 3, 0));
    w.flush();
  }
  {  // crash mid-append: 11 junk bytes after the good records
    std::ofstream f(path, std::ios::binary | std::ios::app);
    f.write("junkjunkjun", 11);
  }
  service::WalReadResult r = service::read_wal(path);
  EXPECT_TRUE(r.torn_tail);
  EXPECT_EQ(r.records.size(), 2u);
  EXPECT_EQ(r.valid_bytes,
            service::kWalHeaderBytes + 2 * service::kWalRecordBytes);

  service::truncate_wal(path, r.valid_bytes);
  r = service::read_wal(path);
  EXPECT_FALSE(r.torn_tail);
  EXPECT_EQ(r.records.size(), 2u);

  // A resumed writer appends cleanly after the cut.
  {
    service::WalWriter w(path, /*truncate=*/false, r.records.size());
    EXPECT_EQ(w.append(GraphUpdate::remove_edge(1, 2)), 2u);
    w.flush();
  }
  r = service::read_wal(path);
  EXPECT_FALSE(r.torn_tail);
  EXPECT_EQ(r.records.size(), 3u);
}

TEST(Wal, CorruptedByteInvalidatesSuffix) {
  const std::string path = tmp_path("bitrot.wal");
  {
    service::WalWriter w(path, /*truncate=*/true);
    for (int i = 0; i < 4; ++i)
      (void)w.append(GraphUpdate::insert_edge(i, i + 1, 0));
    w.flush();
  }
  {  // flip one byte inside record 2
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(static_cast<std::streamoff>(service::kWalHeaderBytes +
                                        2 * service::kWalRecordBytes + 13));
    f.put('\x5a');
  }
  const service::WalReadResult r = service::read_wal(path);
  EXPECT_TRUE(r.torn_tail);
  EXPECT_EQ(r.records.size(), 2u);  // everything from the bad record on drops
}

TEST(Wal, MissingFileReadsEmpty) {
  const service::WalReadResult r = service::read_wal(tmp_path("absent.wal"));
  EXPECT_FALSE(r.torn_tail);
  EXPECT_TRUE(r.records.empty());
}

TEST(Snapshot, RoundtripPreservesGraphAndMeta) {
  testing::SmallWorkload wl = testing::make_workload(/*seed=*/5);
  const std::string path = tmp_path("snap.graph");
  service::write_snapshot(path, wl.graph, {17, 0xabcdef12345ULL, "symbi"});

  const auto snap = service::read_snapshot(path);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->meta.seq, 17u);
  EXPECT_EQ(snap->meta.ads_checksum, 0xabcdef12345ULL);
  EXPECT_EQ(snap->meta.algorithm, "symbi");
  EXPECT_TRUE(snap->graph.same_structure(wl.graph));
}

TEST(Snapshot, RejectsCorruptHeaderOrBody) {
  const std::string path = tmp_path("badsnap.graph");
  {
    std::ofstream f(path, std::ios::trunc);
    f << "# not-a-snapshot 1 seq=0 ads=0 alg=x\nv 0 0\n";
  }
  EXPECT_FALSE(service::read_snapshot(path).has_value());
  {
    std::ofstream f(path, std::ios::trunc);
    f << "# paracosm-snapshot 1 seq=3 ads=ff alg=x\nv 0 banana\n";
  }
  EXPECT_FALSE(service::read_snapshot(path).has_value());
  EXPECT_FALSE(service::read_snapshot(tmp_path("nosnap.graph")).has_value());
}

TEST(Recovery, ReplaysWalSuffixOnBaseAndSnapshot) {
  testing::SmallWorkload wl = testing::make_workload(/*seed=*/11);
  ASSERT_GE(wl.stream.size(), 6u);
  const std::string wal = tmp_path("recover.wal");
  const std::string snap = tmp_path("recover.snap");

  graph::DataGraph expect = wl.graph;
  {
    service::WalWriter w(wal, /*truncate=*/true);
    for (const GraphUpdate& u : wl.stream) {
      (void)w.append(u);
      expect.apply(u);
    }
    w.flush();
  }

  // Base-only recovery replays the full log.
  service::RecoveredState rec = service::recover_state(wl.graph, wal);
  EXPECT_FALSE(rec.used_snapshot);
  EXPECT_EQ(rec.replayed, wl.stream.size());
  EXPECT_EQ(rec.next_seq, wl.stream.size());
  EXPECT_TRUE(rec.graph.same_structure(expect));

  // Snapshot at update s: only the suffix replays, same end state.
  const std::uint64_t s = wl.stream.size() / 2;
  graph::DataGraph snap_graph = wl.graph;
  for (std::uint64_t i = 0; i < s; ++i) snap_graph.apply(wl.stream[i]);
  service::write_snapshot(snap, snap_graph, {s, 0, "graphflow"});

  rec = service::recover_state(wl.graph, wal, snap);
  EXPECT_TRUE(rec.used_snapshot);
  EXPECT_EQ(rec.replayed, wl.stream.size() - s);
  EXPECT_TRUE(rec.graph.same_structure(expect));
}

TEST(Recovery, SnapshotAheadOfWalTailIsRejected) {
  testing::SmallWorkload wl = testing::make_workload(/*seed=*/13);
  ASSERT_GE(wl.stream.size(), 4u);
  const std::string wal = tmp_path("ahead.wal");
  const std::string snap = tmp_path("ahead.snap");

  // WAL holds only the first two records…
  {
    service::WalWriter w(wal, /*truncate=*/true);
    (void)w.append(wl.stream[0]);
    (void)w.append(wl.stream[1]);
    w.flush();
  }
  // …but the snapshot claims to be current through seq 4: two records are
  // simply gone, so the state in between is unrecoverable.
  graph::DataGraph snap_graph = wl.graph;
  for (int i = 0; i < 4; ++i) snap_graph.apply(wl.stream[i]);
  service::write_snapshot(snap, snap_graph, {4, 0, "graphflow"});

  try {
    (void)service::recover_state(wl.graph, wal, snap);
    FAIL() << "snapshot ahead of WAL tail must be rejected";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("snapshot"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("missing"), std::string::npos);
  }
}

TEST(Recovery, DuplicateWalSuffixReplayIsIdempotent) {
  // Snapshot current through seq s, WAL holding the FULL log: the overlap
  // [0, s) replays as no-ops on the snapshot graph (redo idempotence), and
  // nothing double-applies.
  testing::SmallWorkload wl = testing::make_workload(/*seed=*/17);
  ASSERT_GE(wl.stream.size(), 6u);
  const std::string wal = tmp_path("dup.wal");
  const std::string snap = tmp_path("dup.snap");

  graph::DataGraph expect = wl.graph;
  {
    service::WalWriter w(wal, /*truncate=*/true);
    for (const GraphUpdate& u : wl.stream) {
      (void)w.append(u);
      expect.apply(u);
    }
    w.flush();
  }
  const std::uint64_t s = wl.stream.size() / 2;
  graph::DataGraph snap_graph = wl.graph;
  for (std::uint64_t i = 0; i < s; ++i) snap_graph.apply(wl.stream[i]);
  service::write_snapshot(snap, snap_graph, {s, 0, "graphflow"});

  // First recovery replays the suffix; then recover AGAIN from the same pair
  // after re-applying the suffix by hand — still the same final structure.
  service::RecoveredState rec = service::recover_state(wl.graph, wal, snap);
  EXPECT_TRUE(rec.graph.same_structure(expect));
  service::RecoveredState rec2 = service::recover_state(rec.graph, wal, snap);
  EXPECT_TRUE(rec2.graph.same_structure(expect));
  EXPECT_EQ(rec2.next_seq, wl.stream.size());
}

TEST(Recovery, WalFromDifferentGraphIsRejected) {
  testing::SmallWorkload wl = testing::make_workload(/*seed=*/19);
  testing::SmallWorkload other = testing::make_workload(/*seed=*/23);
  ASSERT_NE(service::graph_fingerprint(wl.graph),
            service::graph_fingerprint(other.graph));

  const std::string wal = tmp_path("foreign.wal");
  {
    service::WalWriter w(wal, /*truncate=*/true, /*next_seq=*/0,
                         service::graph_fingerprint(other.graph));
    for (const GraphUpdate& u : other.stream) (void)w.append(u);
    w.flush();
  }

  // Replaying onto the graph it was written for works…
  EXPECT_NO_THROW((void)service::recover_state(other.graph, wal));
  // …replaying onto a different graph is rejected with a clear error.
  try {
    (void)service::recover_state(wl.graph, wal);
    FAIL() << "foreign WAL must be rejected";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("fingerprint mismatch"),
              std::string::npos);
  }
}

TEST(Wal, TransientWriteFailuresAreRetriedAndCounted) {
  const std::string path = tmp_path("flaky.wal");
  service::WalWriter w(path, /*truncate=*/true);
  w.inject_transient_failures(3, EINTR);
  (void)w.append(GraphUpdate::insert_edge(1, 2, 0));
  w.inject_transient_failures(2, EAGAIN);
  w.flush();
  EXPECT_EQ(w.retries(), 5u);

  // A non-transient errno is not retried — it surfaces immediately.
  w.inject_transient_failures(1, EIO);
  EXPECT_THROW((void)w.append(GraphUpdate::insert_edge(2, 3, 0)), std::runtime_error);

  // The successfully appended record survived intact.
  const service::WalReadResult r = service::read_wal(path);
  EXPECT_EQ(r.records.size(), 1u);
  EXPECT_FALSE(r.torn_tail);
}

// ----------------------------------------------------- StreamService + matrix

TEST(StreamService, BlockPolicyIsOracleExact) {
  const verify::FuzzCase c = verify::generate_case(321);
  verify::ServiceCheckOptions opts;
  opts.fault = verify::ServiceFault::kNone;
  opts.threads = 2;
  for (const verify::Divergence& d : verify::check_service_case(c, opts))
    ADD_FAILURE() << d.to_string();
}

TEST(StreamService, ForcedTimeoutsDegradeButStayConsistent) {
  const verify::FuzzCase c = verify::generate_case(654);
  verify::ServiceCheckOptions opts;
  opts.fault = verify::ServiceFault::kForcedTimeout;
  opts.timeout_rate = 0.25;
  opts.threads = 4;
  for (const verify::Divergence& d : verify::check_service_case(c, opts))
    ADD_FAILURE() << d.to_string();
}

TEST(StreamService, ShedIsDelayedNeverDropped) {
  const verify::FuzzCase c = verify::generate_case(987);
  verify::ServiceCheckOptions opts;
  opts.fault = verify::ServiceFault::kShedIngest;
  opts.queue_capacity = 2;
  opts.slow_consumer_us = 100;
  opts.threads = 2;
  for (const verify::Divergence& d : verify::check_service_case(c, opts))
    ADD_FAILURE() << d.to_string();
}

TEST(StreamService, DegradePolicyStaysCountExact) {
  const verify::FuzzCase c = verify::generate_case(246);
  verify::ServiceCheckOptions opts;
  opts.fault = verify::ServiceFault::kDegradeIngest;
  opts.queue_capacity = 2;
  opts.slow_consumer_us = 100;
  opts.threads = 2;
  for (const verify::Divergence& d : verify::check_service_case(c, opts))
    ADD_FAILURE() << d.to_string();
}

// The acceptance-criteria matrix: 25 seeded kill points, each crashing
// between WAL append and apply (some with torn tails and mid-run snapshots),
// recovered and continued — all oracle-exact.
TEST(StreamService, CrashRecoveryMatrix25KillPoints) {
  const verify::FuzzCase c = verify::generate_case(135);
  verify::ServiceCheckOptions opts;
  opts.fault = verify::ServiceFault::kCrashRecovery;
  opts.crash_points = 25;
  opts.threads = 2;
  opts.dir = ::testing::TempDir();
  for (const verify::Divergence& d : verify::check_service_case(c, opts))
    ADD_FAILURE() << d.to_string();
}

TEST(StreamService, WatchdogBudgetRunSurvives) {
  testing::SmallWorkload wl = testing::make_workload(/*seed=*/400);
  const auto alg = csm::make_algorithm("graphflow");
  engine::Config cfg;
  cfg.threads = 2;
  cfg.inter_parallelism = false;
  cfg.queue_spin_iters = 1;
  cfg.pool_spin_iters = 1;
  engine::ParaCosm pc(*alg, wl.query, wl.graph, cfg);

  service::ServiceOptions sopts;
  sopts.budget_us = 1;  // aggressively small: the watchdog may fire anywhere
  sopts.record_applied_order = true;
  service::ServiceReport report;
  {
    service::StreamService svc(pc, sopts);
    for (const GraphUpdate& u : wl.stream) (void)svc.submit(u);
    report = svc.finish();
  }
  EXPECT_TRUE(report.error.empty()) << report.error;
  EXPECT_EQ(report.stats.processed, wl.stream.size());
  EXPECT_EQ(report.latency.count(), wl.stream.size());

  // However many deadlines fired, maintenance stayed exact.
  const auto fresh = csm::make_algorithm("graphflow");
  fresh->attach(wl.query, wl.graph);
  EXPECT_EQ(alg->ads_checksum(), fresh->ads_checksum());
}

}  // namespace
}  // namespace paracosm
