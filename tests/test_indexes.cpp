// Property tests for the incremental ADS maintenance: after ANY sequence of
// updates, the incrementally-maintained index must be flag-for-flag identical
// to one rebuilt from scratch on the final graph (exactness of DCG/DCS/CaLiG
// state transitions), and the structures must behave sensibly on vertex ops.
#include <gtest/gtest.h>

#include "csm/candidate_index.hpp"
#include "csm/support_index.hpp"
#include "csm/oracle.hpp"
#include "tests/test_support.hpp"

namespace paracosm::testing {
namespace {

using csm::DagCandidateIndex;
using csm::SupportIndex;

struct IndexCase {
  bool tree_only;  // TurboFlux (true) vs Symbi (false) orientation
  std::uint64_t seed;
};

class DagIndexTest : public ::testing::TestWithParam<IndexCase> {};

TEST_P(DagIndexTest, IncrementalEqualsRebuildAfterEveryUpdate) {
  const auto& param = GetParam();
  SmallWorkload wl = make_workload(param.seed);
  DagCandidateIndex incremental;
  incremental.build(wl.query, wl.graph, param.tree_only);
  for (const auto& upd : wl.stream) {
    if (upd.op == graph::UpdateOp::kInsertEdge) {
      if (!wl.graph.add_edge(upd.u, upd.v, upd.label)) continue;
      incremental.on_edge_inserted(upd.u, upd.v, upd.label);
    } else if (upd.op == graph::UpdateOp::kRemoveEdge) {
      const auto removed = wl.graph.remove_edge(upd.u, upd.v);
      if (!removed) continue;
      incremental.on_edge_removed(upd.u, upd.v, *removed);
    }
  }
  DagCandidateIndex rebuilt;
  rebuilt.build(wl.query, wl.graph, param.tree_only);
  EXPECT_TRUE(incremental.states_equal(rebuilt));
  EXPECT_EQ(incremental.num_candidate_pairs(), rebuilt.num_candidate_pairs());
}

TEST_P(DagIndexTest, SafeInsertImpliesNoStateChange) {
  const auto& param = GetParam();
  SmallWorkload wl = make_workload(param.seed + 500);
  DagCandidateIndex index;
  index.build(wl.query, wl.graph, param.tree_only);
  std::uint64_t safe_checked = 0;
  for (const auto& upd : wl.stream) {
    if (upd.op != graph::UpdateOp::kInsertEdge) continue;
    if (wl.graph.has_edge(upd.u, upd.v)) continue;
    const bool safe = index.safe_insert(upd.u, upd.v, upd.label);
    ASSERT_TRUE(wl.graph.add_edge(upd.u, upd.v, upd.label));
    index.on_edge_inserted(upd.u, upd.v, upd.label);
    if (safe) {
      ++safe_checked;
      DagCandidateIndex rebuilt;
      rebuilt.build(wl.query, wl.graph, param.tree_only);
      EXPECT_TRUE(index.states_equal(rebuilt))
          << "safe-classified insert changed index state";
    }
  }
  // The workload must actually exercise the property.
  EXPECT_GT(safe_checked, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Orientations, DagIndexTest,
    ::testing::Values(IndexCase{true, 1}, IndexCase{true, 2}, IndexCase{true, 3},
                      IndexCase{false, 1}, IndexCase{false, 2}, IndexCase{false, 3}),
    [](const ::testing::TestParamInfo<IndexCase>& info) {
      return std::string(info.param.tree_only ? "tree" : "dag") + "_seed" +
             std::to_string(info.param.seed);
    });

class SupportIndexTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SupportIndexTest, IncrementalEqualsRebuild) {
  SmallWorkload wl = make_workload(GetParam());
  SupportIndex incremental;
  incremental.build(wl.query, wl.graph);
  for (const auto& upd : wl.stream) {
    if (upd.op == graph::UpdateOp::kInsertEdge) {
      if (!wl.graph.add_edge(upd.u, upd.v, upd.label)) continue;
      incremental.on_edge_inserted(upd.u, upd.v);
    } else if (upd.op == graph::UpdateOp::kRemoveEdge) {
      if (!wl.graph.remove_edge(upd.u, upd.v)) continue;
      incremental.on_edge_removed(upd.u, upd.v);
    }
  }
  SupportIndex rebuilt;
  rebuilt.build(wl.query, wl.graph);
  EXPECT_TRUE(incremental.states_equal(rebuilt));
  EXPECT_EQ(incremental.num_kernel_pairs(), rebuilt.num_kernel_pairs());
}

TEST_P(SupportIndexTest, KernelIsSubsetOfLight) {
  SmallWorkload wl = make_workload(GetParam() + 100);
  SupportIndex index;
  index.build(wl.query, wl.graph);
  for (graph::VertexId u = 0; u < wl.query.num_vertices(); ++u)
    for (graph::VertexId v = 0; v < wl.graph.vertex_capacity(); ++v)
      if (index.kernel(u, v)) {
        EXPECT_TRUE(index.light(u, v));
      }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SupportIndexTest, ::testing::Values(5, 6, 7, 8));

// The full-DAG (Symbi) index must prune at least as hard as the spanning
// tree (TurboFlux) one: its constraints are a superset.
TEST(IndexPruningPower, DagPrunesAtLeastAsMuchAsTree) {
  for (const std::uint64_t seed : {31ULL, 32ULL, 33ULL}) {
    SmallWorkload wl = make_workload(seed, 48, 140, 2, 1, 5);
    DagCandidateIndex tree, dag;
    tree.build(wl.query, wl.graph, /*spanning_tree_only=*/true);
    dag.build(wl.query, wl.graph, /*spanning_tree_only=*/false);
    for (graph::VertexId u = 0; u < wl.query.num_vertices(); ++u)
      for (graph::VertexId v = 0; v < wl.graph.vertex_capacity(); ++v)
        if (dag.candidate(u, v)) {
          EXPECT_TRUE(tree.candidate(u, v));
        }
    EXPECT_LE(dag.num_candidate_pairs(), tree.num_candidate_pairs());
  }
}

// Candidate flags must over-approximate true matchability: every data vertex
// participating in a real match must be a candidate of its query vertex.
TEST(IndexSoundness, CandidatesCoverAllOracleMatches) {
  for (const std::uint64_t seed : {41ULL, 42ULL}) {
    SmallWorkload wl = make_workload(seed, 28, 70, 2, 1, 4, 0.0, 0.0);
    DagCandidateIndex dag;
    dag.build(wl.query, wl.graph, false);
    SupportIndex sup;
    sup.build(wl.query, wl.graph);
    csm::MatchSink sink;
    sink.on_match = [&](std::span<const csm::Assignment> mapping) {
      for (const auto& a : mapping) {
        EXPECT_TRUE(dag.candidate(a.qv, a.dv));
        EXPECT_TRUE(sup.kernel(a.qv, a.dv));
      }
    };
    csm::enumerate_all_matches(wl.query, wl.graph, sink);
  }
}

TEST(IndexVertexOps, AddAndRemoveVertexKeepsStateConsistent) {
  SmallWorkload wl = make_workload(51);
  DagCandidateIndex index;
  index.build(wl.query, wl.graph, false);
  const graph::VertexId fresh = wl.graph.add_vertex(wl.query.label(0));
  index.on_vertex_added(fresh);
  wl.graph.add_edge(fresh, 0, 0);
  index.on_edge_inserted(fresh, 0, 0);
  wl.graph.remove_edge(fresh, 0);
  index.on_edge_removed(fresh, 0, 0);
  wl.graph.remove_vertex(fresh);
  index.on_vertex_removed(fresh);
  DagCandidateIndex rebuilt;
  rebuilt.build(wl.query, wl.graph, false);
  EXPECT_TRUE(index.states_equal(rebuilt));
}

}  // namespace
}  // namespace paracosm::testing
