// Metamorphic invariant suite (src/verify/invariants.hpp): properties every
// algorithm must satisfy on any input, checked here on seeded fuzz cases.
// These are the same checks `paracosm_fuzz --invariants` runs, plus the
// checksum-reconstruction property the rolling ADS checksums rely on.
#include <gtest/gtest.h>

#include <stdexcept>

#include "csm/algorithm.hpp"
#include "csm/engine.hpp"
#include "verify/fuzzer.hpp"
#include "verify/invariants.hpp"

namespace paracosm::verify {
namespace {

class InvariantSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(InvariantSeeds, AllInvariantsHold) {
  const FuzzCase c = generate_case(GetParam());
  ASSERT_FALSE(c.queries.empty());
  for (const std::string& violation : check_all_invariants(c))
    ADD_FAILURE() << violation;
}

INSTANTIATE_TEST_SUITE_P(SeededCases, InvariantSeeds,
                         ::testing::Values(1u, 5u, 9u, 13u),
                         [](const ::testing::TestParamInfo<std::uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

// Rolling-checksum soundness: after an incremental run over the full stream,
// the maintained checksum must equal the one a fresh attach computes on the
// final graph. XOR'd FNV-1a fingerprints are order-independent, so this holds
// iff the incremental flag maintenance converges to the from-scratch state —
// precisely the property the PARACOSM_VERIFY batch assertion builds on.
TEST(AdsChecksum, IncrementalEqualsRecomputedAfterStream) {
  const FuzzCase c = generate_case(7);
  ASSERT_FALSE(c.queries.empty());
  for (const std::string_view name : fuzz_algorithms()) {
    for (std::uint32_t qi = 0; qi < c.queries.size(); ++qi) {
      auto alg = csm::make_algorithm(name);
      ASSERT_NE(alg, nullptr);
      graph::DataGraph g = c.graph;
      try {
        csm::SequentialEngine eng(*alg, c.queries[qi], g);
        for (const graph::GraphUpdate& upd : c.stream) (void)eng.process(upd);
      } catch (const std::invalid_argument&) {
        continue;  // algorithm's domain excludes this query (iedyn × cyclic)
      }
      auto fresh = csm::make_algorithm(name);
      fresh->attach(c.queries[qi], g);
      EXPECT_EQ(alg->ads_checksum(), fresh->ads_checksum())
          << name << " query " << qi
          << ": incremental ADS state drifted from the recomputed one";
    }
  }
}

// Direct calls on a single cell (the aggregate above would also catch these,
// but pinpointed failures are easier to read).
TEST(Invariants, InsertDeleteNoopOnTurboflux) {
  const FuzzCase c = generate_case(2);
  ASSERT_FALSE(c.queries.empty());
  const auto err = check_insert_delete_noop(c, "turboflux", 0);
  EXPECT_FALSE(err.has_value()) << *err;
}

TEST(Invariants, SafeChecksumInvarianceOnSymbi) {
  const FuzzCase c = generate_case(4);
  ASSERT_FALSE(c.queries.empty());
  const auto err = check_safe_checksum_invariance(c, "symbi", 0);
  EXPECT_FALSE(err.has_value()) << *err;
}

TEST(Invariants, ThreadPermutationInvarianceOnGraphflow) {
  const FuzzCase c = generate_case(6);
  ASSERT_FALSE(c.queries.empty());
  const auto err =
      check_thread_permutation_invariance(c, "graphflow", 0, {1, 2, 4, 8});
  EXPECT_FALSE(err.has_value()) << *err;
}

}  // namespace
}  // namespace paracosm::verify
