// Unit tests for the util substrate: RNG, CLI, CSV, tables, timers, locks.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <thread>

#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/sync.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace paracosm::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.bounded(17), 17u);
}

TEST(Rng, BoundedCoversRange) {
  Rng rng(8);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.bounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  bool lo = false, hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.range(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    lo = lo || v == 3;
    hi = hi || v == 5;
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(10);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(11);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(12);
  Rng child = parent.fork();
  EXPECT_NE(parent(), child());
}

TEST(Cli, ParsesAllForms) {
  Cli cli("prog", "test");
  cli.option("alpha", "1", "a").option("beta", "x", "b").flag("gamma", "g");
  const char* argv[] = {"prog", "--alpha", "42", "--beta=hello", "--gamma"};
  ASSERT_TRUE(cli.parse(5, argv));
  EXPECT_EQ(cli.get_int("alpha"), 42);
  EXPECT_EQ(cli.get("beta"), "hello");
  EXPECT_TRUE(cli.get_bool("gamma"));
}

TEST(Cli, DefaultsApply) {
  Cli cli("prog", "test");
  cli.option("alpha", "7", "a").flag("gamma", "g");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.get_int("alpha"), 7);
  EXPECT_FALSE(cli.get_bool("gamma"));
}

TEST(Cli, RejectsUnknownOption) {
  Cli cli("prog", "test");
  const char* argv[] = {"prog", "--nope", "1"};
  EXPECT_FALSE(cli.parse(3, argv));
  EXPECT_EQ(cli.exit_code(), 2);
}

TEST(Cli, MissingValueIsError) {
  Cli cli("prog", "test");
  cli.option("alpha", "1", "a");
  const char* argv[] = {"prog", "--alpha"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, HelpReturnsFalseWithZeroExit) {
  Cli cli("prog", "test");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, argv));
  EXPECT_EQ(cli.exit_code(), 0);
}

TEST(Cli, GetUnregisteredThrows) {
  Cli cli("prog", "test");
  EXPECT_THROW((void)cli.get("missing"), std::invalid_argument);
}

TEST(Csv, WritesHeaderAndRowsWithEscaping) {
  const std::string path = "results/test_csv_output.csv";
  {
    CsvWriter csv(path, {"a", "b"});
    csv.row({"1", "plain"});
    csv.row({"2", "has,comma"});
    csv.row({"3", "has\"quote"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,plain");
  std::getline(in, line);
  EXPECT_EQ(line, "2,\"has,comma\"");
  std::getline(in, line);
  EXPECT_EQ(line, "3,\"has\"\"quote\"");
  std::filesystem::remove(path);
}

TEST(Csv, RowWidthMismatchThrows) {
  CsvWriter csv("results/test_csv_width.csv", {"a", "b"});
  EXPECT_THROW(csv.row({"only-one"}), std::invalid_argument);
  std::filesystem::remove("results/test_csv_width.csv");
}

TEST(Table, AlignsAndRenders) {
  Table t({"name", "value"});
  t.row({"alpha", "1.50"});
  t.row({"b", "22.00"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22.00"), std::string::npos);
}

TEST(Table, WidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.row({"x"}), std::invalid_argument);
}

namespace {
// Keeps the busy-loop result observable without deprecated volatile writes.
void benchmark_guard(double& value) { asm volatile("" : "+m"(value)); }
}  // namespace

TEST(Timers, WallAndCpuAdvance) {
  WallTimer wall;
  ThreadCpuTimer cpu;
  double sink = 0;
  for (int i = 0; i < 2000000; ++i) sink += static_cast<double>(i) * 0.5;
  benchmark_guard(sink);
  EXPECT_GT(wall.elapsed_ns(), 0);
  EXPECT_GT(cpu.elapsed_ns(), 0);
  EXPECT_GT(thread_cpu_ns(), 0);
  EXPECT_GE(process_cpu_ns(), thread_cpu_ns());
}

TEST(Spinlock, MutualExclusionUnderContention) {
  Spinlock lock;
  std::int64_t counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 20000; ++i) {
        lock.lock();
        ++counter;
        lock.unlock();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, 80000);
}

TEST(StripedLocks, LockPairIsDeadlockFreeOnCrossingPairs) {
  StripedLocks<8> locks;
  std::atomic<int> done{0};
  std::thread a([&] {
    for (int i = 0; i < 5000; ++i) {
      locks.lock_pair(1, 2);
      locks.unlock_pair(1, 2);
    }
    ++done;
  });
  std::thread b([&] {
    for (int i = 0; i < 5000; ++i) {
      locks.lock_pair(2, 1);
      locks.unlock_pair(2, 1);
    }
    ++done;
  });
  a.join();
  b.join();
  EXPECT_EQ(done.load(), 2);
}

}  // namespace
}  // namespace paracosm::util
