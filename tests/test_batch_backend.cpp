// Property tests for the pluggable batch backends (DESIGN.md §11).
//
// The central claim: the wide (AVX2/SWAR) backend produces byte-identical
// verdicts — and therefore byte-identical ΔM through the deterministic
// match-buffer merge — to the cpu backend, on every thread count and on
// both instruction paths. The tests pin:
//
//   * ΔM equality across {cpu, wide} × {1,2,4,8} threads, full mapping
//     granularity (not just totals);
//   * per-backend counter conservation (lanes == verdict sum, every wide
//     lane accounted to exactly one resolution counter);
//   * edge cases: empty batch, single-edge stream, all-unsafe batch;
//   * forced SWAR vs forced AVX2 dispatch (identical verdicts; downgrade
//     accounting when AVX2 is unavailable);
//   * the candidate-index SoA column layout contract the wide popcount
//     kernel depends on (padded, zero-filled tails).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "csm/candidate_index.hpp"
#include "paracosm/batch_backend.hpp"
#include "paracosm/paracosm.hpp"
#include "tests/test_support.hpp"
#include "util/wide_ops.hpp"

namespace paracosm::engine {
namespace {

using graph::DataGraph;
using graph::GraphUpdate;
using graph::QueryGraph;
using testing::SmallWorkload;
using testing::make_workload;

/// One engine run: totals plus the full flattened match stream (every
/// delivered mapping in delivery order), byte-comparable across runs.
struct RunCapture {
  std::uint64_t positive = 0;
  std::uint64_t negative = 0;
  std::vector<csm::Assignment> flat;
  std::vector<std::size_t> sizes;  ///< mapping boundaries within `flat`
  StreamResult result;
};

RunCapture run_stream(const SmallWorkload& wl, const char* algorithm,
                      BatchBackendKind kind, unsigned threads) {
  RunCapture cap;
  auto alg = csm::make_algorithm(algorithm);
  if (!alg) {
    ADD_FAILURE() << "unknown algorithm " << algorithm;
    return cap;
  }
  DataGraph g = wl.graph;
  Config cfg;
  cfg.threads = threads;
  cfg.batch_backend = kind;
  cfg.batch_mode = BatchMode::kStrict;
  cfg.queue_spin_iters = 1;
  cfg.pool_spin_iters = 1;
  ParaCosm pc(*alg, wl.query, g, cfg);
  pc.set_match_callback([&cap](std::span<const csm::Assignment> m) {
    cap.sizes.push_back(m.size());
    cap.flat.insert(cap.flat.end(), m.begin(), m.end());
  });
  cap.result = pc.process_stream(wl.stream);
  cap.positive = cap.result.positive;
  cap.negative = cap.result.negative;
  return cap;
}

/// Every backend-stats identity that must hold after a stream run.
void expect_conserved(const StreamResult& r) {
  const BatchBackendStats& c = r.backend_cpu;
  const BatchBackendStats& w = r.backend_wide;
  EXPECT_EQ(c.batches + w.batches, r.batches);
  for (const BatchBackendStats* s : {&c, &w}) {
    EXPECT_EQ(s->lanes,
              s->safe_label + s->safe_degree + s->safe_ads + s->unsafe_lanes);
  }
  // Every wide lane is resolved exactly once: by the validity prepass, by a
  // mask stage, or by the scalar fallback.
  EXPECT_EQ(w.lanes, w.wide_resolved() + w.scalar_fallbacks);
  EXPECT_EQ(w.batches, w.avx2_batches + w.swar_batches);
  EXPECT_EQ(c.scalar_fallbacks, 0u);  // cpu backend is all-scalar by definition
#ifdef PARACOSM_VERIFY
  // Verify builds shadow-diff every wide batch against the scalar classifier;
  // a divergence throws before the counter moves, so completing the stream
  // means every diff ran clean.
  EXPECT_EQ(w.verify_diffs, w.batches);
#else
  EXPECT_EQ(w.verify_diffs, 0u);
#endif
}

class BackendEquivalence
    : public ::testing::TestWithParam<std::tuple<const char*, std::uint64_t>> {};

TEST_P(BackendEquivalence, DeltaMIdenticalAcrossBackendsAndThreads) {
  const auto [algorithm, seed] = GetParam();
  const SmallWorkload wl = make_workload(seed, 36, 90, 3, 2, 4);
  ASSERT_FALSE(wl.stream.empty());

  const RunCapture ref = run_stream(wl, algorithm, BatchBackendKind::kCpu, 1);
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    for (const auto kind : {BatchBackendKind::kCpu, BatchBackendKind::kWide,
                            BatchBackendKind::kAuto}) {
      const RunCapture got = run_stream(wl, algorithm, kind, threads);
      EXPECT_EQ(got.positive, ref.positive)
          << algorithm << " backend=" << batch_backend_name(kind)
          << " threads=" << threads;
      EXPECT_EQ(got.negative, ref.negative)
          << algorithm << " backend=" << batch_backend_name(kind)
          << " threads=" << threads;
      // Byte-identical ΔM: same mappings, same boundaries, same order.
      EXPECT_EQ(got.sizes, ref.sizes)
          << algorithm << " backend=" << batch_backend_name(kind)
          << " threads=" << threads;
      EXPECT_EQ(got.flat, ref.flat)
          << algorithm << " backend=" << batch_backend_name(kind)
          << " threads=" << threads;
      expect_conserved(got.result);
      if (kind == BatchBackendKind::kCpu) EXPECT_EQ(got.result.backend_wide.batches, 0u);
      if (kind == BatchBackendKind::kWide) EXPECT_EQ(got.result.backend_cpu.batches, 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AlgorithmsBySeeds, BackendEquivalence,
    ::testing::Combine(::testing::Values("newsp", "graphflow", "symbi",
                                         "turboflux", "calig"),
                       ::testing::Values(7u, 19u, 33u)),
    [](const ::testing::TestParamInfo<std::tuple<const char*, std::uint64_t>>&
           info) {
      return std::string(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

/// Direct-backend fixture: one (query, graph, algorithm) bound to both
/// backends, bypassing the engine.
class DirectBackends : public ::testing::Test {
 protected:
  void SetUp() override {
    wl_ = make_workload(11, 36, 90, 3, 2, 4);
    ASSERT_FALSE(wl_.stream.empty());
    alg_ = csm::make_algorithm("newsp");
    ASSERT_NE(alg_, nullptr);
    alg_->attach(wl_.query, wl_.graph);
    classifier_ = std::make_unique<UpdateClassifier>(wl_.query, wl_.graph, *alg_);
    pool_ = std::make_unique<WorkerPool>(2u);
    bind_ = BackendBind{&wl_.query, &wl_.graph, alg_.get(), classifier_.get(),
                        pool_.get(), &locks_};
  }

  SmallWorkload wl_;
  std::unique_ptr<csm::CsmAlgorithm> alg_;
  std::unique_ptr<UpdateClassifier> classifier_;
  std::unique_ptr<WorkerPool> pool_;
  util::StripedLocks<64> locks_;
  BackendBind bind_;
};

TEST_F(DirectBackends, EmptyBatchIsANoOp) {
  for (const auto kind : {BatchBackendKind::kCpu, BatchBackendKind::kWide}) {
    auto backend = make_batch_backend(kind, bind_);
    ParallelStats stats;
    backend->classify_batch({}, {}, stats);
    EXPECT_EQ(backend->stats().lanes, 0u);
    EXPECT_EQ(backend->stats().safe(), 0u);
    EXPECT_EQ(backend->stats().unsafe_lanes, 0u);
    backend->apply_safe_prefix({}, stats);  // must not touch the graph
  }
}

TEST_F(DirectBackends, SingleEdgeBatchesAgree) {
  auto cpu = make_batch_backend(BatchBackendKind::kCpu, bind_);
  auto wide = make_batch_backend(BatchBackendKind::kWide, bind_);
  ParallelStats stats;
  for (const GraphUpdate& upd : wl_.stream) {
    UpdateClass vc = UpdateClass::kUnsafe;
    UpdateClass vw = UpdateClass::kUnsafe;
    cpu->classify_batch({&upd, 1}, {&vc, 1}, stats);
    wide->classify_batch({&upd, 1}, {&vw, 1}, stats);
    EXPECT_EQ(vc, vw);
  }
  EXPECT_EQ(cpu->stats().lanes, wl_.stream.size());
  EXPECT_EQ(wide->stats().lanes, wl_.stream.size());
  EXPECT_EQ(cpu->stats().batches, wl_.stream.size());
}

TEST_F(DirectBackends, AllUnsafeBatchAgrees) {
  // Distill the stream down to its genuinely unsafe updates (per the scalar
  // oracle) and classify them as one batch: every verdict must be kUnsafe on
  // both backends, and the wide backend must account each lane exactly once.
  std::vector<GraphUpdate> unsafe;
  for (const GraphUpdate& upd : wl_.stream)
    if (classifier_->classify(upd) == UpdateClass::kUnsafe) unsafe.push_back(upd);
  ASSERT_FALSE(unsafe.empty()) << "workload produced no unsafe updates";

  auto cpu = make_batch_backend(BatchBackendKind::kCpu, bind_);
  auto wide = make_batch_backend(BatchBackendKind::kWide, bind_);
  std::vector<UpdateClass> vc(unsafe.size()), vw(unsafe.size());
  ParallelStats stats;
  cpu->classify_batch(unsafe, vc, stats);
  wide->classify_batch(unsafe, vw, stats);
  EXPECT_EQ(vc, vw);
  for (const UpdateClass v : vc) EXPECT_EQ(v, UpdateClass::kUnsafe);
  EXPECT_EQ(cpu->stats().unsafe_lanes, unsafe.size());
  EXPECT_EQ(wide->stats().unsafe_lanes, unsafe.size());
  EXPECT_EQ(wide->stats().lanes,
            wide->stats().wide_resolved() + wide->stats().scalar_fallbacks);
}

TEST_F(DirectBackends, ForcedSwarAndForcedAvx2Agree) {
  auto swar = std::make_unique<WideBackend>(bind_, util::wide::Dispatch::kForceSwar);
  auto avx2 = std::make_unique<WideBackend>(bind_, util::wide::Dispatch::kForceAvx2);
  EXPECT_FALSE(swar->avx2_active());

  std::vector<UpdateClass> vs(wl_.stream.size()), va(wl_.stream.size());
  ParallelStats stats;
  constexpr std::size_t kBatch = 16;
  std::uint64_t batches = 0;
  for (std::size_t i = 0; i < wl_.stream.size(); i += kBatch, ++batches) {
    const std::size_t n = std::min(kBatch, wl_.stream.size() - i);
    swar->classify_batch(std::span(wl_.stream).subspan(i, n),
                         std::span(vs).subspan(i, n), stats);
    avx2->classify_batch(std::span(wl_.stream).subspan(i, n),
                         std::span(va).subspan(i, n), stats);
  }
  EXPECT_EQ(vs, va);  // instruction paths are verdict-equivalent

  EXPECT_EQ(swar->stats().swar_batches, batches);
  EXPECT_EQ(swar->stats().avx2_batches, 0u);
  EXPECT_EQ(swar->stats().fallback_activations, 0u);
  const bool have_avx2 = util::wide::avx2_compiled() && util::wide::avx2_runtime();
  EXPECT_EQ(avx2->avx2_active(), have_avx2);
  if (have_avx2) {
    EXPECT_EQ(avx2->stats().avx2_batches, batches);
    EXPECT_EQ(avx2->stats().fallback_activations, 0u);
  } else {
    // kForceAvx2 without hardware support downgrades to SWAR and counts
    // every batch as a fallback activation.
    EXPECT_EQ(avx2->stats().swar_batches, batches);
    EXPECT_EQ(avx2->stats().fallback_activations, batches);
  }
}

// --- Candidate-index SoA layout contract (the wide popcount kernel sums
// --- whole padded columns, so tails beyond capacity() MUST be zero). ------
TEST(CandidateColumnPadding, ColumnsPaddedAndZeroTailed) {
  for (const std::uint64_t seed : {3u, 4u, 5u}) {
    const SmallWorkload wl = make_workload(seed, 37, 90, 3, 2, 4);
    csm::DagCandidateIndex index;
    index.build(wl.query, wl.graph, /*spanning_tree_only=*/false);
    const std::uint32_t cap = index.capacity();
    ASSERT_GT(cap, 0u);
    std::uint64_t scalar_pairs = 0;
    for (graph::VertexId u = 0; u < wl.query.num_vertices(); ++u) {
      const auto anc = index.anc_column(u);
      const auto desc = index.desc_column(u);
      // Physical layout: padded to a whole byte block, never shorter than
      // the logical extent.
      EXPECT_EQ(anc.size(), util::wide::padded_bytes(cap));
      EXPECT_EQ(desc.size(), util::wide::padded_bytes(cap));
      EXPECT_EQ(anc.size() % util::wide::kByteBlock, 0u);
      EXPECT_GE(anc.size(), cap);
      // Tail bytes beyond capacity() are zero — the regression this test
      // pins (a flag written past cap_ would inflate num_candidate_pairs).
      for (std::size_t i = cap; i < anc.size(); ++i) {
        EXPECT_EQ(anc[i], 0u) << "anc tail byte " << i << " of u=" << u;
        EXPECT_EQ(desc[i], 0u) << "desc tail byte " << i << " of u=" << u;
      }
      for (graph::VertexId v = 0; v < cap; ++v)
        scalar_pairs += index.candidate(u, v) ? 1 : 0;
    }
    EXPECT_EQ(index.num_candidate_pairs(), scalar_pairs);
  }
}

TEST(CandidateColumnPadding, VertexGrowthKeepsContract) {
  SmallWorkload wl = make_workload(6, 30, 70, 3, 2, 4);
  csm::DagCandidateIndex index;
  index.build(wl.query, wl.graph, /*spanning_tree_only=*/false);
  // Grow across several block boundaries; the columns must stay padded and
  // the wide pair count must keep matching the scalar reference.
  for (int i = 0; i < 40; ++i) {
    const graph::VertexId id = wl.graph.add_vertex(static_cast<graph::Label>(i % 3));
    index.on_vertex_added(id);
  }
  const std::uint32_t cap = index.capacity();
  std::uint64_t scalar_pairs = 0;
  for (graph::VertexId u = 0; u < wl.query.num_vertices(); ++u) {
    const auto anc = index.anc_column(u);
    EXPECT_EQ(anc.size(), util::wide::padded_bytes(cap));
    for (std::size_t i = cap; i < anc.size(); ++i) EXPECT_EQ(anc[i], 0u);
    for (graph::VertexId v = 0; v < cap; ++v)
      scalar_pairs += index.candidate(u, v) ? 1 : 0;
  }
  EXPECT_EQ(index.num_candidate_pairs(), scalar_pairs);
}

// The SWAR/AVX2 kernels must agree bit-for-bit on the popcount primitive,
// including ragged tails.
TEST(WideKernels, PairCountKernelsAgree) {
  util::Rng rng(99);
  for (const std::size_t logical : {1u, 7u, 31u, 32u, 33u, 100u, 255u, 256u}) {
    const std::size_t padded = util::wide::padded_bytes(logical);
    std::vector<std::uint8_t> a(padded, 0), b(padded, 0);
    for (std::size_t i = 0; i < logical; ++i) {
      a[i] = rng.bounded(2) != 0 ? 1 : 0;
      b[i] = rng.bounded(2) != 0 ? 1 : 0;
    }
    std::uint64_t want = 0;
    for (std::size_t i = 0; i < logical; ++i) want += (a[i] & b[i]) != 0 ? 1 : 0;
    EXPECT_EQ(util::wide::count_pairs_swar(a.data(), b.data(), padded), want);
    if (util::wide::avx2_compiled() && util::wide::avx2_runtime())
      EXPECT_EQ(util::wide::count_pairs_avx2(a.data(), b.data(), padded), want);
  }
}

}  // namespace
}  // namespace paracosm::engine
