// paracosm_serve — run the overload-resilient service layer over files
// (DESIGN.md §7): bounded ingest with a selectable overload policy, per-update
// search deadlines enforced by the watchdog, WAL + snapshot durability, and
// crash recovery.
//
//   paracosm_serve --graph g.graph --query q.graph --stream u.stream
//     --algorithm symbi --threads 8 --policy block --queue 1024
//     --budget-us 500 --wal service.wal --snapshot service.snap
//     --snapshot-every 64
//
// Crash drill (the CI smoke job): run once with --kill-at N — the process
// _exits(137) the instant record N is durable but not yet applied — then run
// again with --recover; the service replays the WAL suffix and finishes the
// stream. --verify-final cross-checks the end state against the recompute
// oracle. Fault injection (--kill-at, --timeout-rate, --slow-consumer-us)
// exists so resilience is testable, not just claimed.
#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common/reporting.hpp"
#include "graph/graph_io.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_ring.hpp"
#include "paracosm/multi_query.hpp"
#include "paracosm/paracosm.hpp"
#include "service/multi_service.hpp"
#include "service/service.hpp"
#include "service/wal.hpp"
#include "shard/coordinator.hpp"
#include "shard/fault.hpp"
#include "util/checksum.hpp"
#include "util/cli.hpp"
#include "util/hw_topo.hpp"
#include "util/numa_alloc.hpp"
#include "util/rng.hpp"
#include "verify/oracle_mirror.hpp"

using namespace paracosm;

namespace {

/// SIGTERM/SIGINT request a graceful stop: the submit loop breaks, the
/// service (or coordinator) drains what was already enqueued, flushes WAL +
/// final snapshot + metrics/trace, and the process exits 0.
volatile std::sig_atomic_t g_stop = 0;

void on_stop_signal(int) { g_stop = 1; }

bool parse_policy(const std::string& name, service::OverloadPolicy& out) {
  if (name == "block") out = service::OverloadPolicy::kBlock;
  else if (name == "shed") out = service::OverloadPolicy::kShed;
  else if (name == "degrade") out = service::OverloadPolicy::kDegrade;
  else return false;
  return true;
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    const std::string item = s.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

/// One runtime admin event for --add-at / --remove-at, applied at a stream
/// position with a drain barrier (so the boundary is exact).
struct AdminEvent {
  std::size_t at = 0;
  bool add = false;
  std::string query_file;  // add
  std::string algorithm;   // add
  std::size_t handle = 0;  // remove
};

/// --add-at clause: "N:file:alg"; --remove-at clause: "N:handle".
bool parse_admin_events(const std::string& add_spec, const std::string& rm_spec,
                        std::vector<AdminEvent>& out) {
  for (const std::string& clause : split_csv(add_spec)) {
    const std::size_t c1 = clause.find(':');
    const std::size_t c2 = c1 == std::string::npos ? c1 : clause.find(':', c1 + 1);
    if (c2 == std::string::npos) return false;
    AdminEvent ev;
    ev.add = true;
    ev.at = static_cast<std::size_t>(std::stoull(clause.substr(0, c1)));
    ev.query_file = clause.substr(c1 + 1, c2 - c1 - 1);
    ev.algorithm = clause.substr(c2 + 1);
    out.push_back(std::move(ev));
  }
  for (const std::string& clause : split_csv(rm_spec)) {
    const std::size_t c1 = clause.find(':');
    if (c1 == std::string::npos) return false;
    AdminEvent ev;
    ev.at = static_cast<std::size_t>(std::stoull(clause.substr(0, c1)));
    ev.handle = static_cast<std::size_t>(std::stoull(clause.substr(c1 + 1)));
    out.push_back(std::move(ev));
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const AdminEvent& a, const AdminEvent& b) { return a.at < b.at; });
  return true;
}

struct MultiQueryInfo {
  std::size_t handle = 0;
  std::string file;
  std::string algorithm;
};

/// Machine-shape stanza shared by both report writers: the host topology the
/// latency numbers were taken on, so cross-host report diffs carry context.
void write_topology_json(std::ostream& out) {
  const util::HwTopology& topo = util::HwTopology::cached();
  out << "  \"topology\": {\"source\": \"" << util::topo_source_name(topo.source)
      << "\", \"cpus\": " << topo.num_cpus() << ", \"cores\": " << topo.num_cores
      << ", \"nodes\": " << topo.num_nodes
      << ", \"packages\": " << topo.num_packages
      << ", \"smt\": " << (topo.smt ? "true" : "false")
      << ", \"affinity_cpus\": " << util::affinity_cpu_count()
      << ", \"numa_compiled\": " << (util::numa::compiled() ? "true" : "false")
      << ", \"numa_available\": " << (util::numa::available() ? "true" : "false")
      << "},\n";
}

void write_multi_json_report(const std::string& path,
                             const service::MultiServiceReport& r,
                             const std::vector<MultiQueryInfo>& queries,
                             const bench::LatencySummary& lat, unsigned threads,
                             const char* policy) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write --report-json '%s'\n",
                 path.c_str());
    return;
  }
  const auto& s = r.stats;
  const auto& mq = r.mq;
  out << "{\n"
      << "  \"mode\": \"multi\",\n"
      << "  \"threads\": " << threads << ",\n";
  write_topology_json(out);
  out << "  \"policy\": \"" << policy << "\",\n"
      << "  \"wall_ns\": " << r.wall_ns << ",\n"
      << "  \"processed\": " << s.processed << ",\n"
      << "  \"deadline_hits\": " << r.deadline_hits << ",\n"
      << "  \"wal_records\": " << s.wal_records << ",\n"
      << "  \"queries\": [\n";
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const MultiQueryInfo& info = queries[i];
    const std::size_t h = info.handle;
    out << "    {\"handle\": " << h << ", \"file\": \"" << info.file
        << "\", \"algorithm\": \"" << info.algorithm
        << "\", \"positive\": " << (h < r.positive.size() ? r.positive[h] : 0)
        << ", \"negative\": " << (h < r.negative.size() ? r.negative[h] : 0)
        << ", \"degraded\": " << (h < r.degraded.size() ? r.degraded[h] : 0)
        << "}" << (i + 1 < queries.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"multi_query\": {\n"
      << "    \"updates_classified\": " << mq.updates_classified << ",\n"
      << "    \"index_probes\": " << mq.index_probes << ",\n"
      << "    \"index_empty\": " << mq.index_empty << ",\n"
      << "    \"verdicts_by_index\": " << mq.verdicts_by_index << ",\n"
      << "    \"verdicts_grouped\": " << mq.verdicts_grouped << ",\n"
      << "    \"group_checks\": " << mq.group_checks << ",\n"
      << "    \"group_hits\": " << mq.group_hits << ",\n"
      << "    \"ads_checks\": " << mq.ads_checks << ",\n"
      << "    \"searches_run\": " << mq.searches_run << ",\n"
      << "    \"searches_shared\": " << mq.searches_shared << ",\n"
      << "    \"searches_skipped\": " << mq.searches_skipped << ",\n"
      << "    \"anchors_checked\": " << mq.anchors_checked << "\n"
      << "  },\n"
      << "  \"ingest\": {\n"
      << "    \"enqueued\": " << s.ingest.enqueued << ",\n"
      << "    \"shed\": " << s.ingest.shed << ",\n"
      << "    \"high_water\": " << s.ingest.high_water << "\n"
      << "  },\n"
      << "  \"latency_ns\": {\n"
      << "    \"count\": " << lat.count << ",\n"
      << "    \"mean\": " << static_cast<std::int64_t>(lat.mean_ns) << ",\n"
      << "    \"p50\": " << lat.p50_ns << ",\n"
      << "    \"p95\": " << lat.p95_ns << ",\n"
      << "    \"p99\": " << lat.p99_ns << ",\n"
      << "    \"max\": " << lat.max_ns << "\n"
      << "  }\n"
      << "}\n";
}

/// --multi: serve a *catalogue* of standing queries through the shared
/// multi-query engine (ISSUE 6), with runtime registration via --add-at /
/// --remove-at. Returns the process exit code.
int run_multi(const util::Cli& cli, graph::DataGraph& g,
              const std::vector<graph::GraphUpdate>& stream,
              std::vector<graph::ParseError>* collector) {
  std::vector<std::string> query_files = split_csv(cli.get("queries"));
  if (query_files.empty() && !cli.get("query").empty())
    query_files.push_back(cli.get("query"));
  if (query_files.empty()) {
    std::fprintf(stderr, "error: --multi requires --queries (or --query)\n");
    return 2;
  }
  std::vector<std::string> algorithms = split_csv(cli.get("algorithms"));
  if (algorithms.empty()) algorithms.push_back(cli.get("algorithm"));

  service::MultiServiceOptions mopts;
  if (!parse_policy(cli.get("policy"), mopts.policy)) {
    std::fprintf(stderr, "error: unknown policy '%s'\n", cli.get("policy").c_str());
    return 2;
  }
  mopts.queue_capacity = static_cast<std::size_t>(cli.get_int("queue"));
  mopts.budget_us = cli.get_int("budget-us");
  mopts.wal_path = cli.get("wal");

  std::vector<AdminEvent> admin;
  if (!parse_admin_events(cli.get("add-at"), cli.get("remove-at"), admin)) {
    std::fprintf(stderr,
                 "error: bad --add-at/--remove-at clause (want N:file:alg / "
                 "N:handle)\n");
    return 2;
  }

  engine::Config config;
  config.threads = static_cast<unsigned>(cli.get_int("threads"));
  config.pin_threads = cli.get_bool("pin");
  config.inter_parallelism = false;  // the service processes one update at a time
  if (const auto kind = engine::parse_batch_backend(cli.get("backend"))) {
    config.batch_backend = *kind;
  } else {
    std::fprintf(stderr, "error: --backend must be cpu, wide or auto\n");
    return 2;
  }
  engine::MultiQueryEngine engine(g, config);
  engine.set_shared_evaluation(!cli.get_bool("no-sharing"));

  engine::QueryOptions qopts;
  qopts.budget_us = cli.get_int("query-budget-us");

  std::vector<MultiQueryInfo> registered;
  try {
    for (std::size_t i = 0; i < query_files.size(); ++i) {
      graph::QueryGraph q = graph::load_query_graph_file(query_files[i], collector);
      const std::string& alg = algorithms[i % algorithms.size()];
      const std::size_t handle = engine.add_query(alg, std::move(q), qopts);
      registered.push_back({handle, query_files[i], alg});
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  std::printf(
      "serving %zu update(s) to %zu quer(ies) in %zu class(es) [x%u, policy "
      "%s, queue %zu%s%s%s]\n",
      stream.size(), engine.num_queries(), engine.num_classes(),
      config.effective_threads(), cli.get("policy").c_str(), mopts.queue_capacity,
      mopts.budget_us > 0 ? ", deadline on" : "",
      mopts.wal_path.empty() ? "" : ", WAL on",
      engine.shared_evaluation() ? "" : ", sharing off");

  service::MultiServiceReport report;
  {
    service::MultiStreamService svc(engine, mopts);
    std::size_t next_admin = 0;
    for (std::size_t i = 0; i <= stream.size(); ++i) {
      while (next_admin < admin.size() && admin[next_admin].at <= i) {
        const AdminEvent& ev = admin[next_admin++];
        svc.drain();  // exact boundary: the change sees no in-flight updates
        try {
          if (ev.add) {
            graph::QueryGraph q =
                graph::load_query_graph_file(ev.query_file, collector);
            const std::size_t handle =
                svc.add_query(ev.algorithm, std::move(q), qopts);
            registered.push_back({handle, ev.query_file, ev.algorithm});
            std::printf("[admin @%zu] added %s (%s) -> handle %zu\n", ev.at,
                        ev.query_file.c_str(), ev.algorithm.c_str(), handle);
          } else {
            const bool ok = svc.remove_query(ev.handle);
            std::printf("[admin @%zu] removed handle %zu%s\n", ev.at, ev.handle,
                        ok ? "" : " (stale)");
          }
        } catch (const std::exception& e) {
          std::fprintf(stderr, "error: admin event failed: %s\n", e.what());
          return 2;
        }
      }
      if (i < stream.size()) (void)svc.submit(stream[i]);
    }
    report = svc.finish();
  }

  if (!report.error.empty()) {
    std::fprintf(stderr, "error: service consumer failed: %s\n",
                 report.error.c_str());
    return 1;
  }

  const bench::LatencySummary lat = bench::summarize_histogram(report.latency);
  std::uint64_t tot_pos = 0, tot_neg = 0;
  for (const MultiQueryInfo& info : registered) {
    const std::size_t h = info.handle;
    const std::uint64_t pos = h < report.positive.size() ? report.positive[h] : 0;
    const std::uint64_t neg = h < report.negative.size() ? report.negative[h] : 0;
    const std::uint64_t deg = h < report.degraded.size() ? report.degraded[h] : 0;
    tot_pos += pos;
    tot_neg += neg;
    std::printf("[query %zu] %s (%s): +%llu / -%llu%s\n", h, info.file.c_str(),
                info.algorithm.c_str(), static_cast<unsigned long long>(pos),
                static_cast<unsigned long long>(neg),
                deg > 0 ? " (degraded)" : "");
  }
  const auto& mq = report.mq;
  std::printf("[multi] +%llu / -%llu total in %.3f ms wall; %llu processed, "
              "%llu deadline hit(s)\n",
              static_cast<unsigned long long>(tot_pos),
              static_cast<unsigned long long>(tot_neg),
              static_cast<double>(report.wall_ns) / 1e6,
              static_cast<unsigned long long>(report.stats.processed),
              static_cast<unsigned long long>(report.deadline_hits));
  std::printf("sharing: %llu/%llu verdicts by index, %llu grouped "
              "(%llu degree memo hits), %llu searches (+%llu fan-out, "
              "%llu anchor-skipped)\n",
              static_cast<unsigned long long>(mq.verdicts_by_index),
              static_cast<unsigned long long>(mq.verdicts_by_index +
                                              mq.verdicts_grouped),
              static_cast<unsigned long long>(mq.verdicts_grouped),
              static_cast<unsigned long long>(mq.group_hits),
              static_cast<unsigned long long>(mq.searches_run),
              static_cast<unsigned long long>(mq.searches_shared),
              static_cast<unsigned long long>(mq.searches_skipped));
  std::printf("latency: p50 %.3f ms, p95 %.3f ms, p99 %.3f ms, max %.3f ms\n",
              static_cast<double>(lat.p50_ns) / 1e6,
              static_cast<double>(lat.p95_ns) / 1e6,
              static_cast<double>(lat.p99_ns) / 1e6,
              static_cast<double>(lat.max_ns) / 1e6);

  if (const std::string jpath = cli.get("report-json"); !jpath.empty())
    write_multi_json_report(jpath, report, registered, lat,
                            config.effective_threads(),
                            cli.get("policy").c_str());
  return 0;
}

void write_shard_json_report(const std::string& path,
                             const shard::CoordinatorReport& r,
                             const char* algorithm, std::uint32_t n_shards,
                             const std::string& fault_spec) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write --report-json '%s'\n",
                 path.c_str());
    return;
  }
  out << "{\n"
      << "  \"mode\": \"sharded\",\n"
      << "  \"algorithm\": \"" << algorithm << "\",\n"
      << "  \"shards\": " << n_shards << ",\n";
  write_topology_json(out);
  out << "  \"fault_spec\": \"" << fault_spec << "\",\n"
      << "  \"processed\": " << r.processed << ",\n"
      << "  \"applied\": " << r.applied << ",\n"
      << "  \"positive\": " << r.positive << ",\n"
      << "  \"negative\": " << r.negative << ",\n"
      << "  \"matches_delivered\": " << r.matches_delivered << ",\n"
      << "  \"delta_checksum\": " << r.delta_checksum << ",\n"
      << "  \"restarts\": " << r.restarts << ",\n"
      << "  \"failovers\": " << r.failovers << ",\n"
      << "  \"deferred_replays\": " << r.deferred_replays << ",\n"
      << "  \"transport\": {\n"
      << "    \"frames_sent\": " << r.transport.frames_sent << ",\n"
      << "    \"frames_received\": " << r.transport.frames_received << ",\n"
      << "    \"retries\": " << r.transport.retries << ",\n"
      << "    \"timeouts\": " << r.transport.timeouts << ",\n"
      << "    \"checksum_drops\": " << r.transport.checksum_drops << ",\n"
      << "    \"torn_frames\": " << r.transport.torn_frames << ",\n"
      << "    \"peer_gone\": " << r.transport.peer_gone << ",\n"
      << "    \"stale_acks\": " << r.transport.stale_acks << "\n"
      << "  },\n"
      << "  \"faults_injected\": {\n"
      << "    \"dropped\": " << r.faults.dropped << ",\n"
      << "    \"duplicated\": " << r.faults.duplicated << ",\n"
      << "    \"corrupted\": " << r.faults.corrupted << ",\n"
      << "    \"delayed\": " << r.faults.delayed << "\n"
      << "  },\n"
      << "  \"shard_lanes\": [\n";
  for (std::size_t i = 0; i < r.shards.size(); ++i) {
    const shard::ShardLane& lane = r.shards[i];
    out << "    {\"shard\": " << lane.shard << ", \"owned\": " << lane.owned
        << ", \"restarts\": " << lane.restarts
        << ", \"permanently_dead\": " << (lane.permanently_dead ? "true" : "false")
        << ", \"wal_replayed\": " << lane.hello_replayed;
    if (lane.have_summary)
      out << ", \"processed\": " << lane.summary.processed
          << ", \"wal_records\": " << lane.summary.wal_records
          << ", \"wal_retries\": " << lane.summary.wal_retries
          << ", \"snapshots\": " << lane.summary.snapshots;
    out << "}" << (i + 1 < r.shards.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"error\": \"" << r.error << "\"\n"
      << "}\n";
}

/// --shards N: run the supervised multi-process mode (DESIGN.md §12). The
/// parent becomes coordinator + supervisor; each shard worker is a fork/exec
/// of paracosm_shard running the full service pipeline over its replica.
int run_sharded(const util::Cli& cli, const std::string& graph_path,
                const std::string& query_path, const graph::DataGraph& g,
                const graph::QueryGraph& q, csm::CsmAlgorithm& algorithm,
                const std::vector<graph::GraphUpdate>& stream) {
  shard::CoordinatorOptions copts;
  copts.sup.n_shards = static_cast<std::uint32_t>(cli.get_int("shards"));
  copts.sup.shard_binary = cli.get("shard-bin");
  copts.sup.graph_path = graph_path;
  copts.sup.query_path = query_path;
  copts.sup.algorithm = cli.get("algorithm");
  copts.sup.worker_threads = static_cast<unsigned>(cli.get_int("threads"));
  copts.sup.dir = cli.get("shard-dir");
  std::error_code dir_ec;
  std::filesystem::create_directories(copts.sup.dir, dir_ec);
  if (dir_ec) {
    std::fprintf(stderr, "error: cannot create --shard-dir %s: %s\n",
                 copts.sup.dir.c_str(), dir_ec.message().c_str());
    return 2;
  }
  copts.sup.snapshot_every =
      static_cast<std::uint64_t>(cli.get_int("snapshot-every"));
  copts.sup.budget_us = cli.get_int("budget-us");
  copts.sup.restart_budget = static_cast<int>(cli.get_int("restart-budget"));
  copts.sup.kill_shard = static_cast<int>(cli.get_int("kill-shard"));
  copts.sup.kill_at = cli.get_int("kill-at");
  if (!cli.get("metrics-out").empty()) {
    copts.sup.worker_metrics = true;
    copts.sup.metrics_every =
        static_cast<std::uint64_t>(cli.get_int("metrics-every"));
  }
  copts.policy.attempt_timeout_ms = cli.get_int("attempt-timeout-ms");
  const std::string fault_spec = cli.get("fault");
  if (!fault_spec.empty()) {
    try {
      copts.fault = shard::FaultPlan::parse(fault_spec);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: bad --fault spec: %s\n", e.what());
      return 2;
    }
  }

  std::printf("serving %zu update(s) across %u shard(s) [%s x%u%s%s]\n",
              stream.size(), copts.sup.n_shards, copts.sup.algorithm.c_str(),
              copts.sup.worker_threads,
              copts.sup.kill_at >= 0 ? ", kill fault armed" : "",
              copts.fault.any() ? ", transport faults armed" : "");

  shard::Coordinator coord(copts);
  if (!coord.start()) {
    std::fprintf(stderr, "error: %s\n", coord.error().c_str());
    return 1;
  }
  for (const graph::GraphUpdate& upd : stream) {
    if (g_stop) {
      std::printf("signal received: draining and shutting shards down\n");
      break;
    }
    if (!coord.process(upd)) break;
  }
  const shard::CoordinatorReport report = coord.finish();

  std::printf("[sharded %s] +%llu / -%llu matches, %llu mapping(s) delivered, "
              "delta checksum %016llx\n",
              copts.sup.algorithm.c_str(),
              static_cast<unsigned long long>(report.positive),
              static_cast<unsigned long long>(report.negative),
              static_cast<unsigned long long>(report.matches_delivered),
              static_cast<unsigned long long>(report.delta_checksum));
  std::printf("supervision: %llu restart(s), %llu failover(s), %llu deferred "
              "replay(s) — delayed, never dropped\n",
              static_cast<unsigned long long>(report.restarts),
              static_cast<unsigned long long>(report.failovers),
              static_cast<unsigned long long>(report.deferred_replays));
  std::printf("transport: %llu sent / %llu received, %llu retries, %llu "
              "timeouts, %llu checksum drops, %llu torn, %llu peer-gone\n",
              static_cast<unsigned long long>(report.transport.frames_sent),
              static_cast<unsigned long long>(report.transport.frames_received),
              static_cast<unsigned long long>(report.transport.retries),
              static_cast<unsigned long long>(report.transport.timeouts),
              static_cast<unsigned long long>(report.transport.checksum_drops),
              static_cast<unsigned long long>(report.transport.torn_frames),
              static_cast<unsigned long long>(report.transport.peer_gone));
  for (const shard::ShardLane& lane : report.shards)
    std::printf("[shard %u] owned %llu, %d restart(s)%s%s\n", lane.shard,
                static_cast<unsigned long long>(lane.owned), lane.restarts,
                lane.hello_replayed > 0 ? " (WAL replayed on respawn)" : "",
                lane.permanently_dead ? ", PERMANENTLY DEAD" : "");

  if (const std::string jpath = cli.get("report-json"); !jpath.empty())
    write_shard_json_report(jpath, report, copts.sup.algorithm.c_str(),
                            copts.sup.n_shards, fault_spec);

  if (!report.error.empty()) {
    std::fprintf(stderr, "error: %s\n", report.error.c_str());
    return 1;
  }

  if (cli.get_bool("verify-final")) {
    // The differential gate: one single-process engine run over the same
    // prefix must produce the identical merged ΔM stream.
    engine::Config config;
    config.threads = static_cast<unsigned>(cli.get_int("threads"));
    config.inter_parallelism = false;
    graph::DataGraph og = g;
    engine::ParaCosm oracle(algorithm, q, og, config);
    std::vector<csm::Assignment> buf;
    oracle.set_match_callback([&buf](std::span<const csm::Assignment> m) {
      buf.insert(buf.end(), m.begin(), m.end());
    });
    std::uint64_t h = util::kFnv1aOffset;
    std::uint64_t pos = 0, neg = 0;
    for (std::uint64_t seq = 0; seq < report.processed; ++seq) {
      buf.clear();
      const csm::UpdateOutcome out = oracle.process(stream[seq]);
      pos += out.positive;
      neg += out.negative;
      h = shard::fold_delta(h, seq, out.positive, out.negative, buf);
    }
    if (h != report.delta_checksum || pos != report.positive ||
        neg != report.negative) {
      std::fprintf(stderr,
                   "VERIFY FAIL: sharded ΔM diverges from the single-process "
                   "oracle (got +%llu/-%llu cksum %016llx, oracle "
                   "+%llu/-%llu cksum %016llx)\n",
                   static_cast<unsigned long long>(report.positive),
                   static_cast<unsigned long long>(report.negative),
                   static_cast<unsigned long long>(report.delta_checksum),
                   static_cast<unsigned long long>(pos),
                   static_cast<unsigned long long>(neg),
                   static_cast<unsigned long long>(h));
      return 1;
    }
    std::printf("verify-final: OK (sharded ΔM byte-identical to the "
                "single-process oracle)\n");
  }
  return 0;
}

/// --control-trace: the admission controller's decision log as JSON, one
/// record per watermark change (DESIGN.md §13). Small by construction — the
/// controller steps once per control window, not per update.
void write_control_trace(const std::string& path,
                         const service::ServiceReport& r) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write --control-trace '%s'\n",
                 path.c_str());
    return;
  }
  const control::ControlStats& s = r.control;
  out << "{\n"
      << "  \"knob\": \"degrade_watermark\",\n"
      << "  \"final_watermark\": " << r.degrade_watermark << ",\n"
      << "  \"stats\": {\"epochs\": " << s.epochs
      << ", \"decisions\": " << s.decisions << ", \"grows\": " << s.grows
      << ", \"shrinks\": " << s.shrinks << ", \"clamped\": " << s.clamped
      << ", \"cooldown_suppressed\": " << s.cooldown_suppressed
      << ", \"in_band\": " << s.in_band << "},\n"
      << "  \"decisions\": [";
  for (std::size_t i = 0; i < r.control_decisions.size(); ++i) {
    const control::DecisionRecord& d = r.control_decisions[i];
    out << (i > 0 ? "," : "") << "\n    {\"epoch\": " << d.epoch
        << ", \"knob\": \"" << control::knob_name(d.knob)
        << "\", \"from\": " << d.from << ", \"to\": " << d.to << "}";
  }
  out << (r.control_decisions.empty() ? "" : "\n  ") << "]\n}\n";
}

void write_json_report(const std::string& path, const service::ServiceReport& r,
                       const bench::LatencySummary& lat, const char* algorithm,
                       unsigned threads, const char* policy, bool adaptive) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write --report-json '%s'\n",
                 path.c_str());
    return;
  }
  const auto& s = r.stats;
  out << "{\n"
      << "  \"algorithm\": \"" << algorithm << "\",\n"
      << "  \"threads\": " << threads << ",\n";
  write_topology_json(out);
  out << "  \"policy\": \"" << policy << "\",\n"
      << "  \"positive\": " << r.positive << ",\n"
      << "  \"negative\": " << r.negative << ",\n"
      << "  \"wall_ns\": " << r.wall_ns << ",\n"
      << "  \"processed\": " << s.processed << ",\n"
      << "  \"degraded_searches\": " << s.degraded_searches << ",\n"
      << "  \"watchdog_cancels\": " << s.watchdog_cancels << ",\n"
      << "  \"deferred_retries\": " << s.deferred_retries << ",\n"
      << "  \"replayed_updates\": " << s.replayed_updates << ",\n"
      << "  \"noop_skipped\": " << s.noop_skipped << ",\n"
      << "  \"snapshots\": " << s.snapshots << ",\n"
      << "  \"wal_records\": " << s.wal_records << ",\n"
      << "  \"ingest\": {\n"
      << "    \"enqueued\": " << s.ingest.enqueued << ",\n"
      << "    \"shed\": " << s.ingest.shed << ",\n"
      << "    \"degraded\": " << s.ingest.degraded << ",\n"
      << "    \"blocked_pushes\": " << s.ingest.blocked_pushes << ",\n"
      << "    \"blocked_ns\": " << s.ingest.blocked_ns << ",\n"
      << "    \"high_water\": " << s.ingest.high_water << "\n"
      << "  },\n";
  if (adaptive)
    out << "  \"control\": {\"final_watermark\": " << r.degrade_watermark
        << ", \"epochs\": " << r.control.epochs
        << ", \"decisions\": " << r.control.decisions
        << ", \"grows\": " << r.control.grows
        << ", \"shrinks\": " << r.control.shrinks
        << ", \"clamped\": " << r.control.clamped
        << ", \"cooldown_suppressed\": " << r.control.cooldown_suppressed
        << ", \"in_band\": " << r.control.in_band << "},\n";
  out
      << "  \"latency_ns\": {\n"
      << "    \"count\": " << lat.count << ",\n"
      << "    \"mean\": " << static_cast<std::int64_t>(lat.mean_ns) << ",\n"
      << "    \"p50\": " << lat.p50_ns << ",\n"
      << "    \"p95\": " << lat.p95_ns << ",\n"
      << "    \"p99\": " << lat.p99_ns << ",\n"
      << "    \"p999\": " << lat.p999_ns << ",\n"
      << "    \"max\": " << lat.max_ns << "\n"
      << "  }\n"
      << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("paracosm_serve",
                "run the CSM service layer: bounded ingest, deadlines, "
                "WAL + snapshot durability, crash recovery");
  cli.option("graph", "", "data graph file (required)")
      .option("query", "", "query graph file (required)")
      .option("stream", "", "update stream file (required)")
      .option("algorithm", "graphflow", "graphflow|turboflux|symbi|calig|newsp")
      .option("threads", "8", "worker threads for the search phase (0 = one per "
              "CPU in the process affinity mask)")
      .flag("pin", "pin workers to CPUs (topology-aware; no-op without sysfs)")
      .option("policy", "block", "overload policy: block|shed|degrade")
      .option("backend", "cpu",
              "batch classification backend (cpu|wide|auto); only exercised "
              "by batched replay paths — live serving is per-update")
      .option("queue", "1024", "ingest ring capacity")
      .flag("adaptive",
            "adaptive admission (DESIGN.md §13): an AIMD controller retunes "
            "the ingest degrade watermark from queue depth + p99 latency")
      .option("control-trace", "",
              "--adaptive: write the admission decision log as JSON here")
      .option("budget-us", "0", "per-update search budget (0 = no deadline)")
      .option("wal", "", "write-ahead log path (empty = durability off)")
      .option("snapshot", "", "snapshot path (empty = snapshots off)")
      .option("snapshot-every", "0", "updates between snapshots (0 = never)")
      .option("shards", "0",
              "run sharded: supervise N paracosm_shard worker processes "
              "(0 = single-process mode)")
      .option("shard-dir", ".",
              "--shards: directory for per-shard WAL/snapshot/metrics files")
      .option("shard-bin", "",
              "--shards: worker binary (default: $PARACOSM_SHARD_BIN, else "
              "next to this executable)")
      .option("fault", "",
              "--shards: transport fault spec "
              "\"seed=N,drop=R,dup=R,corrupt=R,delay=R:US\"")
      .option("kill-shard", "-1",
              "--shards: arm --kill-at inside this shard's first incarnation")
      .option("restart-budget", "3",
              "--shards: restarts per shard before it is permanently dead")
      .option("attempt-timeout-ms", "1000",
              "--shards: per-attempt transport response deadline")
      .option("kill-at", "-1",
              "fault: _exit(137) after WAL record N is durable, before apply")
      .option("timeout-rate", "0",
              "fault: force this fraction of searches over budget")
      .option("slow-consumer-us", "0", "fault: per-update consumer delay")
      .option("seed", "42", "seed for the --timeout-rate selection")
      .option("report-json", "", "write the final report as JSON here")
      .option("trace-out", "",
              "write a Chrome/Perfetto trace of the run here (enables tracing)")
      .option("metrics-out", "",
              "write a flat metrics snapshot here (.csv or JSON by extension)")
      .option("metrics-every", "0",
              "flush --metrics-out every N processed updates (0 = final only)")
      .option("queries", "",
              "--multi: CSV of query graph files to register as the catalogue")
      .option("algorithms", "",
              "--multi: CSV of algorithms, cycled over --queries")
      .option("query-budget-us", "0",
              "--multi: per-query per-update search budget (0 = none)")
      .option("add-at", "",
              "--multi: CSV of N:file:alg clauses — register file with alg "
              "after stream position N")
      .option("remove-at", "",
              "--multi: CSV of N:handle clauses — deregister handle after "
              "stream position N")
      .flag("multi",
            "serve a catalogue of standing queries through the shared "
            "multi-query engine (--queries/--algorithms)")
      .flag("no-sharing",
            "--multi: give every query a private evaluation class (the "
            "O(queries) baseline)")
      .flag("trace-verbose",
            "trace at level 2: per-search-node instants (huge traces)")
      .flag("recover", "recover from --wal/--snapshot, then resume the stream")
      .flag("verify-final", "cross-check the end state against the oracle")
      .flag("strict", "abort on the first malformed input line");
  if (!cli.parse(argc, argv)) return cli.exit_code();

  const bool multi = cli.get_bool("multi");
  const std::string graph_path = cli.get("graph");
  const std::string query_path = cli.get("query");
  const std::string stream_path = cli.get("stream");
  if (graph_path.empty() || stream_path.empty() ||
      (query_path.empty() && !multi)) {
    std::fprintf(stderr, "error: --graph, --query and --stream are required\n");
    return 2;
  }
  auto algorithm = csm::make_algorithm(cli.get("algorithm"));
  if (!algorithm) {
    std::fprintf(stderr, "error: unknown algorithm '%s'\n",
                 cli.get("algorithm").c_str());
    return 2;
  }
  service::ServiceOptions sopts;
  if (!parse_policy(cli.get("policy"), sopts.policy)) {
    std::fprintf(stderr, "error: unknown policy '%s'\n", cli.get("policy").c_str());
    return 2;
  }

  const bool strict = cli.get_bool("strict");
  std::vector<graph::ParseError> errors;
  auto* collector = strict ? nullptr : &errors;
  graph::DataGraph g;
  graph::QueryGraph q;
  std::vector<graph::GraphUpdate> stream;
  try {
    g = graph::load_data_graph_file(graph_path, collector);
    if (!query_path.empty()) q = graph::load_query_graph_file(query_path, collector);
    stream = graph::load_update_stream_file(stream_path, collector);
  } catch (const graph::ParseException& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  for (const graph::ParseError& e : errors)
    std::fprintf(stderr, "warning: skipped %s\n", e.to_string().c_str());

  // Graceful shutdown in every mode: drain, flush durability, exit 0.
  std::signal(SIGTERM, on_stop_signal);
  std::signal(SIGINT, on_stop_signal);

  if (cli.get_int("shards") > 0) {
    if (multi) {
      std::fprintf(stderr, "error: --shards and --multi are exclusive\n");
      return 2;
    }
    if (cli.get_int("shards") == 1)
      std::fprintf(stderr,
                   "warning: --shards 1 supervises a single worker — valid, "
                   "but there is no one to fail over to\n");
    return run_sharded(cli, graph_path, query_path, g, q, *algorithm, stream);
  }

  sopts.queue_capacity = static_cast<std::size_t>(cli.get_int("queue"));
  sopts.adaptive = cli.get_bool("adaptive");
  if (sopts.adaptive && sopts.policy != service::OverloadPolicy::kDegrade)
    std::fprintf(stderr,
                 "warning: --adaptive retunes the degrade watermark, which "
                 "only shapes admission under --policy degrade\n");
  sopts.budget_us = cli.get_int("budget-us");
  sopts.wal_path = cli.get("wal");
  sopts.snapshot_path = cli.get("snapshot");
  sopts.snapshot_every = static_cast<std::uint64_t>(cli.get_int("snapshot-every"));
  // A final snapshot on clean exit (including SIGTERM drain) makes the next
  // --recover replay only the post-snapshot suffix.
  sopts.snapshot_on_finish = !sopts.snapshot_path.empty();
  sopts.record_applied_order = cli.get_bool("verify-final");
  sopts.metrics_path = cli.get("metrics-out");
  sopts.metrics_every = static_cast<std::uint64_t>(cli.get_int("metrics-every"));

  // Tracing must be on before the engine spawns its workers so every lane is
  // named; level 2 adds per-search-node instants.
  const std::string trace_path = cli.get("trace-out");
  if (!trace_path.empty()) {
    PARACOSM_TRACE_THREAD_NAME("main");
    obs::set_trace_level(cli.get_bool("trace-verbose") ? 2 : 1);
#if !defined(PARACOSM_TRACE_ENABLED)
    std::fprintf(stderr,
                 "warning: built with PARACOSM_TRACE=OFF — the trace will "
                 "contain no engine events\n");
#endif
  }

  if (multi) {
    const int rc = run_multi(cli, g, stream, collector);
    if (!trace_path.empty()) {
      obs::set_trace_level(0);
      try {
        obs::write_chrome_trace(trace_path,
                                obs::TraceRegistry::instance().collect());
        std::printf("trace: wrote %s (load in ui.perfetto.dev)\n",
                    trace_path.c_str());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "warning: %s\n", e.what());
      }
    }
    return rc;
  }

  // The initial graph doubles as the recovery base; keep it when verifying.
  const bool verify_final = cli.get_bool("verify-final");
  graph::DataGraph base;
  if (verify_final) base = g;

  std::uint64_t replayed = 0;
  std::size_t resume_at = 0;
  if (cli.get_bool("recover")) {
    if (sopts.wal_path.empty()) {
      std::fprintf(stderr, "error: --recover requires --wal\n");
      return 2;
    }
    service::RecoveredState rec =
        service::recover_state(g, sopts.wal_path, sopts.snapshot_path);
    std::printf("recovery: %llu WAL record(s) replayed%s%s, resuming at seq %llu\n",
                static_cast<unsigned long long>(rec.replayed),
                rec.used_snapshot ? " on top of snapshot" : "",
                rec.torn_tail_truncated ? " (torn tail truncated)" : "",
                static_cast<unsigned long long>(rec.next_seq));
    if (sopts.policy == service::OverloadPolicy::kShed)
      std::fprintf(stderr,
                   "warning: --recover assumes in-order processing; the shed "
                   "policy reorders and is not replay-safe\n");
    replayed = rec.replayed;
    resume_at = static_cast<std::size_t>(rec.next_seq);
    if (verify_final) base = rec.graph;
    g = std::move(rec.graph);
    sopts.wal_resume = true;
    sopts.wal_next_seq = rec.next_seq;
  }
  if (resume_at > stream.size()) resume_at = stream.size();

  service::FaultHooks hooks;
  const std::int64_t kill_at = cli.get_int("kill-at");
  if (kill_at >= 0) {
    hooks.after_wal_append = [kill_at](std::uint64_t seq) {
      if (seq == static_cast<std::uint64_t>(kill_at)) {
        std::fprintf(stderr, "[fault] record %lld durable, crashing now\n",
                     static_cast<long long>(kill_at));
        std::_Exit(137);
      }
    };
  }
  if (const double rate = cli.get_double("timeout-rate"); rate > 0) {
    const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    hooks.force_timeout = [rate, seed](std::uint64_t seq) {
      std::uint64_t h = seq ^ seed;
      return static_cast<double>(util::splitmix64(h) >> 11) * 0x1.0p-53 < rate;
    };
  }
  if (const std::int64_t us = cli.get_int("slow-consumer-us"); us > 0) {
    hooks.slow_consumer = [us] {
      std::this_thread::sleep_for(std::chrono::microseconds(us));
    };
  }

  engine::Config config;
  config.threads = static_cast<unsigned>(cli.get_int("threads"));
  config.pin_threads = cli.get_bool("pin");
  config.inter_parallelism = false;  // the service processes one update at a time
  if (const auto kind = engine::parse_batch_backend(cli.get("backend"))) {
    config.batch_backend = *kind;
  } else {
    std::fprintf(stderr, "error: --backend must be cpu, wide or auto\n");
    return 2;
  }
  engine::ParaCosm pc(*algorithm, q, g, config);

  std::printf("serving %zu update(s) [%s x%u, policy %s, queue %zu%s%s]\n",
              stream.size() - resume_at, cli.get("algorithm").c_str(),
              config.effective_threads(), cli.get("policy").c_str(),
              sopts.queue_capacity, sopts.budget_us > 0 ? ", deadline on" : "",
              sopts.wal_path.empty() ? "" : ", WAL on");

  bool interrupted = false;
  service::ServiceReport report;
  {
    service::StreamService svc(pc, sopts, hooks);
    for (std::size_t i = resume_at; i < stream.size(); ++i) {
      if (g_stop) {
        interrupted = true;
        break;
      }
      (void)svc.submit(stream[i]);
    }
    // finish() drains everything already enqueued and flushes WAL + final
    // snapshot + metrics — the graceful-shutdown contract for SIGTERM too.
    report = svc.finish();
  }
  report.stats.replayed_updates = replayed;
  if (interrupted)
    std::printf("signal received: drained %llu update(s), durability flushed\n",
                static_cast<unsigned long long>(report.stats.processed));

  if (!report.error.empty()) {
    std::fprintf(stderr, "error: service consumer failed: %s\n",
                 report.error.c_str());
    return 1;
  }

  if (!trace_path.empty()) {
    obs::set_trace_level(0);
    try {
      obs::write_chrome_trace(trace_path,
                              obs::TraceRegistry::instance().collect());
      std::printf("trace: wrote %s (load in ui.perfetto.dev)\n",
                  trace_path.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "warning: %s\n", e.what());
    }
  }

  const bench::LatencySummary lat = bench::summarize_histogram(report.latency);
  const auto& s = report.stats;
  std::printf("[service %s] +%llu / -%llu matches in %.3f ms wall\n",
              cli.get("algorithm").c_str(),
              static_cast<unsigned long long>(report.positive),
              static_cast<unsigned long long>(report.negative),
              static_cast<double>(report.wall_ns) / 1e6);
  std::printf("updates: %llu processed, %llu degraded, %llu watchdog cancels, "
              "%llu deferred retries, %llu no-op skips, %llu replayed\n",
              static_cast<unsigned long long>(s.processed),
              static_cast<unsigned long long>(s.degraded_searches),
              static_cast<unsigned long long>(s.watchdog_cancels),
              static_cast<unsigned long long>(s.deferred_retries),
              static_cast<unsigned long long>(s.noop_skipped),
              static_cast<unsigned long long>(s.replayed_updates));
  std::printf("ingest: %llu enqueued, %llu shed, %llu degraded, high water %llu, "
              "%llu blocked push(es) (%.3f ms)\n",
              static_cast<unsigned long long>(s.ingest.enqueued),
              static_cast<unsigned long long>(s.ingest.shed),
              static_cast<unsigned long long>(s.ingest.degraded),
              static_cast<unsigned long long>(s.ingest.high_water),
              static_cast<unsigned long long>(s.ingest.blocked_pushes),
              static_cast<double>(s.ingest.blocked_ns) / 1e6);
  std::printf("durability: %llu WAL record(s), %llu snapshot(s)\n",
              static_cast<unsigned long long>(s.wal_records),
              static_cast<unsigned long long>(s.snapshots));
  if (sopts.adaptive)
    std::printf("control: %llu window(s), %llu watermark decision(s) "
                "(g%llu/s%llu), final watermark %u/%zu\n",
                static_cast<unsigned long long>(report.control.epochs),
                static_cast<unsigned long long>(report.control.decisions),
                static_cast<unsigned long long>(report.control.grows),
                static_cast<unsigned long long>(report.control.shrinks),
                report.degrade_watermark, sopts.queue_capacity);
  std::printf("latency: p50 %.3f ms, p95 %.3f ms, p99 %.3f ms, p99.9 %.3f ms, "
              "max %.3f ms\n",
              static_cast<double>(lat.p50_ns) / 1e6,
              static_cast<double>(lat.p95_ns) / 1e6,
              static_cast<double>(lat.p99_ns) / 1e6,
              static_cast<double>(lat.p999_ns) / 1e6,
              static_cast<double>(lat.max_ns) / 1e6);

  if (const std::string jpath = cli.get("report-json"); !jpath.empty())
    write_json_report(jpath, report, lat, cli.get("algorithm").c_str(),
                      config.effective_threads(), cli.get("policy").c_str(),
                      sopts.adaptive);
  if (const std::string cpath = cli.get("control-trace"); !cpath.empty()) {
    write_control_trace(cpath, report);
    std::printf("control-trace: wrote %s\n", cpath.c_str());
  }

  if (verify_final) {
    // Replay the *effective* applied order through the recompute oracle from
    // the run's base state; state must match exactly, counts must match
    // unless searches were deliberately degraded.
    const verify::OracleTrace trace = verify::build_trace(
        q, base, report.applied_order, algorithm->uses_edge_labels(),
        /*strict=*/false);
    const bool degraded_run = s.degraded_searches > 0;
    bool ok = pc.graph().same_structure(trace.final_graph);
    if (ok && !degraded_run)
      ok = report.positive == trace.total_positive &&
           report.negative == trace.total_negative;
    if (ok && degraded_run)
      ok = report.positive <= trace.total_positive &&
           report.negative <= trace.total_negative;
    if (!ok) {
      std::fprintf(stderr,
                   "VERIFY FAIL: end state diverges from the oracle "
                   "(got +%llu/-%llu, oracle +%llu/-%llu)\n",
                   static_cast<unsigned long long>(report.positive),
                   static_cast<unsigned long long>(report.negative),
                   static_cast<unsigned long long>(trace.total_positive),
                   static_cast<unsigned long long>(trace.total_negative));
      return 1;
    }
    std::printf("verify-final: OK (oracle-exact%s)\n",
                degraded_run ? " modulo degraded searches" : "");
  }
  return 0;
}
