// paracosm_serve — run the overload-resilient service layer over files
// (DESIGN.md §7): bounded ingest with a selectable overload policy, per-update
// search deadlines enforced by the watchdog, WAL + snapshot durability, and
// crash recovery.
//
//   paracosm_serve --graph g.graph --query q.graph --stream u.stream \
//     --algorithm symbi --threads 8 --policy block --queue 1024 \
//     --budget-us 500 --wal service.wal --snapshot service.snap \
//     --snapshot-every 64
//
// Crash drill (the CI smoke job): run once with --kill-at N — the process
// _exits(137) the instant record N is durable but not yet applied — then run
// again with --recover; the service replays the WAL suffix and finishes the
// stream. --verify-final cross-checks the end state against the recompute
// oracle. Fault injection (--kill-at, --timeout-rate, --slow-consumer-us)
// exists so resilience is testable, not just claimed.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common/reporting.hpp"
#include "graph/graph_io.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_ring.hpp"
#include "paracosm/paracosm.hpp"
#include "service/service.hpp"
#include "service/wal.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "verify/oracle_mirror.hpp"

using namespace paracosm;

namespace {

bool parse_policy(const std::string& name, service::OverloadPolicy& out) {
  if (name == "block") out = service::OverloadPolicy::kBlock;
  else if (name == "shed") out = service::OverloadPolicy::kShed;
  else if (name == "degrade") out = service::OverloadPolicy::kDegrade;
  else return false;
  return true;
}

void write_json_report(const std::string& path, const service::ServiceReport& r,
                       const bench::LatencySummary& lat, const char* algorithm,
                       unsigned threads, const char* policy) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write --report-json '%s'\n",
                 path.c_str());
    return;
  }
  const auto& s = r.stats;
  out << "{\n"
      << "  \"algorithm\": \"" << algorithm << "\",\n"
      << "  \"threads\": " << threads << ",\n"
      << "  \"policy\": \"" << policy << "\",\n"
      << "  \"positive\": " << r.positive << ",\n"
      << "  \"negative\": " << r.negative << ",\n"
      << "  \"wall_ns\": " << r.wall_ns << ",\n"
      << "  \"processed\": " << s.processed << ",\n"
      << "  \"degraded_searches\": " << s.degraded_searches << ",\n"
      << "  \"watchdog_cancels\": " << s.watchdog_cancels << ",\n"
      << "  \"deferred_retries\": " << s.deferred_retries << ",\n"
      << "  \"replayed_updates\": " << s.replayed_updates << ",\n"
      << "  \"noop_skipped\": " << s.noop_skipped << ",\n"
      << "  \"snapshots\": " << s.snapshots << ",\n"
      << "  \"wal_records\": " << s.wal_records << ",\n"
      << "  \"ingest\": {\n"
      << "    \"enqueued\": " << s.ingest.enqueued << ",\n"
      << "    \"shed\": " << s.ingest.shed << ",\n"
      << "    \"degraded\": " << s.ingest.degraded << ",\n"
      << "    \"blocked_pushes\": " << s.ingest.blocked_pushes << ",\n"
      << "    \"blocked_ns\": " << s.ingest.blocked_ns << ",\n"
      << "    \"high_water\": " << s.ingest.high_water << "\n"
      << "  },\n"
      << "  \"latency_ns\": {\n"
      << "    \"count\": " << lat.count << ",\n"
      << "    \"mean\": " << static_cast<std::int64_t>(lat.mean_ns) << ",\n"
      << "    \"p50\": " << lat.p50_ns << ",\n"
      << "    \"p95\": " << lat.p95_ns << ",\n"
      << "    \"p99\": " << lat.p99_ns << ",\n"
      << "    \"p999\": " << lat.p999_ns << ",\n"
      << "    \"max\": " << lat.max_ns << "\n"
      << "  }\n"
      << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("paracosm_serve",
                "run the CSM service layer: bounded ingest, deadlines, "
                "WAL + snapshot durability, crash recovery");
  cli.option("graph", "", "data graph file (required)")
      .option("query", "", "query graph file (required)")
      .option("stream", "", "update stream file (required)")
      .option("algorithm", "graphflow", "graphflow|turboflux|symbi|calig|newsp")
      .option("threads", "8", "worker threads for the search phase")
      .option("policy", "block", "overload policy: block|shed|degrade")
      .option("queue", "1024", "ingest ring capacity")
      .option("budget-us", "0", "per-update search budget (0 = no deadline)")
      .option("wal", "", "write-ahead log path (empty = durability off)")
      .option("snapshot", "", "snapshot path (empty = snapshots off)")
      .option("snapshot-every", "0", "updates between snapshots (0 = never)")
      .option("kill-at", "-1",
              "fault: _exit(137) after WAL record N is durable, before apply")
      .option("timeout-rate", "0",
              "fault: force this fraction of searches over budget")
      .option("slow-consumer-us", "0", "fault: per-update consumer delay")
      .option("seed", "42", "seed for the --timeout-rate selection")
      .option("report-json", "", "write the final report as JSON here")
      .option("trace-out", "",
              "write a Chrome/Perfetto trace of the run here (enables tracing)")
      .option("metrics-out", "",
              "write a flat metrics snapshot here (.csv or JSON by extension)")
      .option("metrics-every", "0",
              "flush --metrics-out every N processed updates (0 = final only)")
      .flag("trace-verbose",
            "trace at level 2: per-search-node instants (huge traces)")
      .flag("recover", "recover from --wal/--snapshot, then resume the stream")
      .flag("verify-final", "cross-check the end state against the oracle")
      .flag("strict", "abort on the first malformed input line");
  if (!cli.parse(argc, argv)) return cli.exit_code();

  const std::string graph_path = cli.get("graph");
  const std::string query_path = cli.get("query");
  const std::string stream_path = cli.get("stream");
  if (graph_path.empty() || query_path.empty() || stream_path.empty()) {
    std::fprintf(stderr, "error: --graph, --query and --stream are required\n");
    return 2;
  }
  auto algorithm = csm::make_algorithm(cli.get("algorithm"));
  if (!algorithm) {
    std::fprintf(stderr, "error: unknown algorithm '%s'\n",
                 cli.get("algorithm").c_str());
    return 2;
  }
  service::ServiceOptions sopts;
  if (!parse_policy(cli.get("policy"), sopts.policy)) {
    std::fprintf(stderr, "error: unknown policy '%s'\n", cli.get("policy").c_str());
    return 2;
  }

  const bool strict = cli.get_bool("strict");
  std::vector<graph::ParseError> errors;
  auto* collector = strict ? nullptr : &errors;
  graph::DataGraph g;
  graph::QueryGraph q;
  std::vector<graph::GraphUpdate> stream;
  try {
    g = graph::load_data_graph_file(graph_path, collector);
    q = graph::load_query_graph_file(query_path, collector);
    stream = graph::load_update_stream_file(stream_path, collector);
  } catch (const graph::ParseException& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  for (const graph::ParseError& e : errors)
    std::fprintf(stderr, "warning: skipped %s\n", e.to_string().c_str());

  sopts.queue_capacity = static_cast<std::size_t>(cli.get_int("queue"));
  sopts.budget_us = cli.get_int("budget-us");
  sopts.wal_path = cli.get("wal");
  sopts.snapshot_path = cli.get("snapshot");
  sopts.snapshot_every = static_cast<std::uint64_t>(cli.get_int("snapshot-every"));
  sopts.record_applied_order = cli.get_bool("verify-final");
  sopts.metrics_path = cli.get("metrics-out");
  sopts.metrics_every = static_cast<std::uint64_t>(cli.get_int("metrics-every"));

  // Tracing must be on before the engine spawns its workers so every lane is
  // named; level 2 adds per-search-node instants.
  const std::string trace_path = cli.get("trace-out");
  if (!trace_path.empty()) {
    PARACOSM_TRACE_THREAD_NAME("main");
    obs::set_trace_level(cli.get_bool("trace-verbose") ? 2 : 1);
#if !defined(PARACOSM_TRACE_ENABLED)
    std::fprintf(stderr,
                 "warning: built with PARACOSM_TRACE=OFF — the trace will "
                 "contain no engine events\n");
#endif
  }

  // The initial graph doubles as the recovery base; keep it when verifying.
  const bool verify_final = cli.get_bool("verify-final");
  graph::DataGraph base;
  if (verify_final) base = g;

  std::uint64_t replayed = 0;
  std::size_t resume_at = 0;
  if (cli.get_bool("recover")) {
    if (sopts.wal_path.empty()) {
      std::fprintf(stderr, "error: --recover requires --wal\n");
      return 2;
    }
    service::RecoveredState rec =
        service::recover_state(g, sopts.wal_path, sopts.snapshot_path);
    std::printf("recovery: %llu WAL record(s) replayed%s%s, resuming at seq %llu\n",
                static_cast<unsigned long long>(rec.replayed),
                rec.used_snapshot ? " on top of snapshot" : "",
                rec.torn_tail_truncated ? " (torn tail truncated)" : "",
                static_cast<unsigned long long>(rec.next_seq));
    if (sopts.policy == service::OverloadPolicy::kShed)
      std::fprintf(stderr,
                   "warning: --recover assumes in-order processing; the shed "
                   "policy reorders and is not replay-safe\n");
    replayed = rec.replayed;
    resume_at = static_cast<std::size_t>(rec.next_seq);
    if (verify_final) base = rec.graph;
    g = std::move(rec.graph);
    sopts.wal_resume = true;
    sopts.wal_next_seq = rec.next_seq;
  }
  if (resume_at > stream.size()) resume_at = stream.size();

  service::FaultHooks hooks;
  const std::int64_t kill_at = cli.get_int("kill-at");
  if (kill_at >= 0) {
    hooks.after_wal_append = [kill_at](std::uint64_t seq) {
      if (seq == static_cast<std::uint64_t>(kill_at)) {
        std::fprintf(stderr, "[fault] record %lld durable, crashing now\n",
                     static_cast<long long>(kill_at));
        std::_Exit(137);
      }
    };
  }
  if (const double rate = cli.get_double("timeout-rate"); rate > 0) {
    const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    hooks.force_timeout = [rate, seed](std::uint64_t seq) {
      std::uint64_t h = seq ^ seed;
      return static_cast<double>(util::splitmix64(h) >> 11) * 0x1.0p-53 < rate;
    };
  }
  if (const std::int64_t us = cli.get_int("slow-consumer-us"); us > 0) {
    hooks.slow_consumer = [us] {
      std::this_thread::sleep_for(std::chrono::microseconds(us));
    };
  }

  engine::Config config;
  config.threads = static_cast<unsigned>(cli.get_int("threads"));
  config.inter_parallelism = false;  // the service processes one update at a time
  engine::ParaCosm pc(*algorithm, q, g, config);

  std::printf("serving %zu update(s) [%s x%u, policy %s, queue %zu%s%s]\n",
              stream.size() - resume_at, cli.get("algorithm").c_str(),
              config.effective_threads(), cli.get("policy").c_str(),
              sopts.queue_capacity, sopts.budget_us > 0 ? ", deadline on" : "",
              sopts.wal_path.empty() ? "" : ", WAL on");

  service::ServiceReport report;
  {
    service::StreamService svc(pc, sopts, hooks);
    for (std::size_t i = resume_at; i < stream.size(); ++i)
      (void)svc.submit(stream[i]);
    report = svc.finish();
  }
  report.stats.replayed_updates = replayed;

  if (!report.error.empty()) {
    std::fprintf(stderr, "error: service consumer failed: %s\n",
                 report.error.c_str());
    return 1;
  }

  if (!trace_path.empty()) {
    obs::set_trace_level(0);
    try {
      obs::write_chrome_trace(trace_path,
                              obs::TraceRegistry::instance().collect());
      std::printf("trace: wrote %s (load in ui.perfetto.dev)\n",
                  trace_path.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "warning: %s\n", e.what());
    }
  }

  const bench::LatencySummary lat = bench::summarize_histogram(report.latency);
  const auto& s = report.stats;
  std::printf("[service %s] +%llu / -%llu matches in %.3f ms wall\n",
              cli.get("algorithm").c_str(),
              static_cast<unsigned long long>(report.positive),
              static_cast<unsigned long long>(report.negative),
              static_cast<double>(report.wall_ns) / 1e6);
  std::printf("updates: %llu processed, %llu degraded, %llu watchdog cancels, "
              "%llu deferred retries, %llu no-op skips, %llu replayed\n",
              static_cast<unsigned long long>(s.processed),
              static_cast<unsigned long long>(s.degraded_searches),
              static_cast<unsigned long long>(s.watchdog_cancels),
              static_cast<unsigned long long>(s.deferred_retries),
              static_cast<unsigned long long>(s.noop_skipped),
              static_cast<unsigned long long>(s.replayed_updates));
  std::printf("ingest: %llu enqueued, %llu shed, %llu degraded, high water %llu, "
              "%llu blocked push(es) (%.3f ms)\n",
              static_cast<unsigned long long>(s.ingest.enqueued),
              static_cast<unsigned long long>(s.ingest.shed),
              static_cast<unsigned long long>(s.ingest.degraded),
              static_cast<unsigned long long>(s.ingest.high_water),
              static_cast<unsigned long long>(s.ingest.blocked_pushes),
              static_cast<double>(s.ingest.blocked_ns) / 1e6);
  std::printf("durability: %llu WAL record(s), %llu snapshot(s)\n",
              static_cast<unsigned long long>(s.wal_records),
              static_cast<unsigned long long>(s.snapshots));
  std::printf("latency: p50 %.3f ms, p95 %.3f ms, p99 %.3f ms, p99.9 %.3f ms, "
              "max %.3f ms\n",
              static_cast<double>(lat.p50_ns) / 1e6,
              static_cast<double>(lat.p95_ns) / 1e6,
              static_cast<double>(lat.p99_ns) / 1e6,
              static_cast<double>(lat.p999_ns) / 1e6,
              static_cast<double>(lat.max_ns) / 1e6);

  if (const std::string jpath = cli.get("report-json"); !jpath.empty())
    write_json_report(jpath, report, lat, cli.get("algorithm").c_str(),
                      config.effective_threads(), cli.get("policy").c_str());

  if (verify_final) {
    // Replay the *effective* applied order through the recompute oracle from
    // the run's base state; state must match exactly, counts must match
    // unless searches were deliberately degraded.
    const verify::OracleTrace trace = verify::build_trace(
        q, base, report.applied_order, algorithm->uses_edge_labels(),
        /*strict=*/false);
    const bool degraded_run = s.degraded_searches > 0;
    bool ok = pc.graph().same_structure(trace.final_graph);
    if (ok && !degraded_run)
      ok = report.positive == trace.total_positive &&
           report.negative == trace.total_negative;
    if (ok && degraded_run)
      ok = report.positive <= trace.total_positive &&
           report.negative <= trace.total_negative;
    if (!ok) {
      std::fprintf(stderr,
                   "VERIFY FAIL: end state diverges from the oracle "
                   "(got +%llu/-%llu, oracle +%llu/-%llu)\n",
                   static_cast<unsigned long long>(report.positive),
                   static_cast<unsigned long long>(report.negative),
                   static_cast<unsigned long long>(trace.total_positive),
                   static_cast<unsigned long long>(trace.total_negative));
      return 1;
    }
    std::printf("verify-final: OK (oracle-exact%s)\n",
                degraded_run ? " modulo degraded searches" : "");
  }
  return 0;
}
