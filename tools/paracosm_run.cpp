// paracosm_run — file-driven CSM runner.
//
// Loads a data graph, a query graph and an update stream in the standard
// CSM benchmark text format (see graph/graph_io.hpp), runs any of the five
// algorithms either single-threaded or under ParaCOSM, and reports ΔM plus
// timing/classifier statistics. This is the entry point for running the
// framework on real datasets (e.g. the originals from the paper, which are
// publicly downloadable but not redistributable here).
//
//   paracosm_run --graph data.graph --query q.graph --stream updates.stream
//     --algorithm symbi --threads 16
#include <cstdio>

#include "csm/engine.hpp"
#include "graph/graph_io.hpp"
#include "paracosm/paracosm.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

using namespace paracosm;

int main(int argc, char** argv) {
  util::Cli cli("paracosm_run", "run a CSM algorithm over graph/query/stream files");
  cli.option("graph", "", "data graph file (required)")
      .option("query", "", "query graph file (required)")
      .option("stream", "", "update stream file (required)")
      .option("algorithm", "graphflow", "graphflow|turboflux|symbi|calig|newsp")
      .option("threads", "8", "worker threads (ParaCOSM mode)")
      .option("split-depth", "4", "inner-update SPLIT_DEPTH")
      .option("batch", "0", "inter-update batch size (0 = threads)")
      .option("timeout-ms", "0", "whole-stream budget, 0 = none")
      .flag("sequential", "run the single-threaded baseline instead")
      .flag("no-inter", "disable inter-update batching")
      .flag("print-matches", "print every match (slow; small streams only)")
      .flag("strict", "abort on the first malformed input line");
  if (!cli.parse(argc, argv)) return cli.exit_code();

  const std::string graph_path = cli.get("graph");
  const std::string query_path = cli.get("query");
  const std::string stream_path = cli.get("stream");
  if (graph_path.empty() || query_path.empty() || stream_path.empty()) {
    std::fprintf(stderr, "error: --graph, --query and --stream are required\n");
    return 2;
  }

  auto algorithm = csm::make_algorithm(cli.get("algorithm"));
  if (!algorithm) {
    std::fprintf(stderr, "error: unknown algorithm '%s'\n",
                 cli.get("algorithm").c_str());
    return 2;
  }

  // Lenient by default: malformed lines are reported and skipped so a
  // mostly-good dataset still runs; --strict turns the first one fatal.
  const bool strict = cli.get_bool("strict");
  std::vector<graph::ParseError> errors;
  auto* collector = strict ? nullptr : &errors;
  graph::DataGraph g;
  graph::QueryGraph q;
  std::vector<graph::GraphUpdate> stream;
  try {
    g = graph::load_data_graph_file(graph_path, collector);
    q = graph::load_query_graph_file(query_path, collector);
    stream = graph::load_update_stream_file(stream_path, collector);
  } catch (const graph::ParseException& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  for (const graph::ParseError& e : errors)
    std::fprintf(stderr, "warning: skipped %s\n", e.to_string().c_str());
  if (!errors.empty())
    std::fprintf(stderr, "warning: %zu malformed input line(s) skipped "
                 "(use --strict to make this fatal)\n", errors.size());
  std::printf("graph: %u vertices, %llu edges | query: %u vertices, %u edges | "
              "stream: %zu updates\n",
              g.num_vertices(), static_cast<unsigned long long>(g.num_edges()),
              q.num_vertices(), q.num_edges(), stream.size());

  const auto deadline =
      cli.get_int("timeout-ms") > 0
          ? util::Clock::now() + std::chrono::milliseconds(cli.get_int("timeout-ms"))
          : util::Clock::time_point{};

  if (cli.get_bool("sequential")) {
    csm::SequentialEngine eng(*algorithm, q, g);
    util::WallTimer wall;
    std::uint64_t pos = 0, neg = 0;
    bool timed_out = false;
    for (const auto& upd : stream) {
      const auto out = eng.process(upd, deadline);
      pos += out.positive;
      neg += out.negative;
      if (out.timed_out) {
        timed_out = true;
        break;
      }
    }
    std::printf("[sequential %s] +%llu / -%llu matches in %.3f ms%s\n",
                cli.get("algorithm").c_str(), static_cast<unsigned long long>(pos),
                static_cast<unsigned long long>(neg), wall.elapsed_ms(),
                timed_out ? " (TIMEOUT)" : "");
    std::printf("breakdown: ADS update %.3f ms, Find_Matches %.3f ms\n",
                static_cast<double>(eng.ads_update_ns()) / 1e6,
                static_cast<double>(eng.find_matches_ns()) / 1e6);
    return timed_out ? 1 : 0;
  }

  engine::Config config;
  config.threads = static_cast<unsigned>(cli.get_int("threads"));
  config.split_depth = static_cast<std::uint32_t>(cli.get_int("split-depth"));
  config.batch_size = static_cast<unsigned>(cli.get_int("batch"));
  config.inter_parallelism = !cli.get_bool("no-inter");
  engine::ParaCosm pc(*algorithm, q, g, config);
  if (cli.get_bool("print-matches")) {
    pc.set_match_callback([](std::span<const csm::Assignment> mapping) {
      std::printf("match:");
      for (const auto& a : mapping) std::printf(" (u%u->v%u)", a.qv, a.dv);
      std::printf("\n");
    });
  }

  const engine::StreamResult r = pc.process_stream(stream, deadline);
  std::printf("[paracosm %s x%u] +%llu / -%llu matches in %.3f ms wall%s\n",
              cli.get("algorithm").c_str(), config.effective_threads(),
              static_cast<unsigned long long>(r.positive),
              static_cast<unsigned long long>(r.negative),
              static_cast<double>(r.wall_ns) / 1e6, r.timed_out ? " (TIMEOUT)" : "");
  std::printf("simulated multicore makespan: %.3f ms (1-thread work %.3f ms)\n",
              static_cast<double>(r.stats.simulated_makespan_ns()) / 1e6,
              static_cast<double>(r.stats.sequential_equivalent_ns()) / 1e6);
  std::printf("classifier: %llu safe (label %llu / degree %llu / ads %llu), "
              "%llu unsafe (%.3f%%), %llu batches\n",
              static_cast<unsigned long long>(r.classifier.safe()),
              static_cast<unsigned long long>(r.classifier.safe_label),
              static_cast<unsigned long long>(r.classifier.safe_degree),
              static_cast<unsigned long long>(r.classifier.safe_ads),
              static_cast<unsigned long long>(r.classifier.unsafe_updates),
              r.classifier.unsafe_percent(),
              static_cast<unsigned long long>(r.batches));
  return r.timed_out ? 1 : 0;
}
