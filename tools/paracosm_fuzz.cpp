// Differential fuzz driver (DESIGN.md §6).
//
// Generates seeded adversarial (graph, queries, stream) cases and checks
// every requested CSM algorithm × executor lane × thread count against the
// from-scratch recompute oracle. On divergence the case is minimized with
// the ddmin shrinker and written as a self-contained repro file that
// `--replay` (or the regression suite) re-runs.
//
//   paracosm_fuzz --seeds 200                    # fixed-seed sweep
//   paracosm_fuzz --seed 42 --shrink             # one case, minimized repro
//   paracosm_fuzz --budget-s 600 --start-seed 0  # time-boxed nightly run
//   paracosm_fuzz --replay repro.txt             # re-run a recorded finding
//   paracosm_fuzz --fault --shrink               # self-test: injected bug
//
// Exit code: 0 = no divergence, 1 = divergence found, 2 = usage error.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "util/cli.hpp"
#include "verify/invariants.hpp"
#include "verify/multi_check.hpp"
#include "verify/repro.hpp"
#include "verify/service_check.hpp"
#include "verify/shard_check.hpp"
#include "verify/shrinker.hpp"

namespace {

using namespace paracosm;

std::vector<unsigned> parse_thread_list(const std::string& csv) {
  std::vector<unsigned> out;
  std::string token;
  for (const char ch : csv + ",") {
    if (ch == ',') {
      if (!token.empty()) out.push_back(static_cast<unsigned>(std::stoul(token)));
      token.clear();
    } else {
      token.push_back(ch);
    }
  }
  return out;
}

std::vector<std::string> parse_name_list(const std::string& csv) {
  std::vector<std::string> out;
  std::string token;
  for (const char ch : csv + ",") {
    if (ch == ',') {
      if (!token.empty()) out.push_back(token);
      token.clear();
    } else {
      token.push_back(ch);
    }
  }
  return out;
}

std::vector<verify::LaneConfig> lanes_for(const std::vector<unsigned>& threads,
                                          bool backend_diff, bool control_diff) {
  std::vector<verify::LaneConfig> lanes{{verify::Lane::kSequential, 1}};
  for (const unsigned t : threads) lanes.push_back({verify::Lane::kInner, t});
  for (const unsigned t : threads) lanes.push_back({verify::Lane::kBatch, t});
  if (backend_diff) {
    // Differential backend lane: re-run every batch cell on the wide
    // (AVX2/SWAR) backend. Both arms reconcile against the same oracle
    // trace, so a cpu-vs-wide verdict divergence fails exactly one arm.
    for (const unsigned t : threads)
      lanes.push_back(
          {verify::Lane::kBatch, t, paracosm::engine::BatchBackendKind::kWide});
  }
  if (control_diff) {
    // Differential adaptive lane: re-run every batch cell with the feedback
    // control plane retuning split depth / batch cut / backend cutoff after
    // every batch, plus the invariant certifier engaged. Reconciles against
    // the exact same oracle trace as the static cells — a controller that
    // changes results (not just schedule) fails this arm (DESIGN.md §13).
    for (const unsigned t : threads)
      lanes.push_back({verify::Lane::kBatch, t,
                       paracosm::engine::BatchBackendKind::kAuto,
                       /*adaptive=*/true});
  }
  return lanes;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("paracosm_fuzz",
                "Differential fuzzer: oracle-checked CSM engine sweeps "
                "(see DESIGN.md §6).");
  cli.option("seed", "-1", "Run exactly this one seed (overrides --seeds)")
      .option("seeds", "200", "Number of consecutive seeds to run")
      .option("start-seed", "0", "First seed of the sweep")
      .option("budget-s", "0", "Wall-clock budget in seconds (0 = unlimited)")
      .option("threads", "1,2,4,8", "Comma-separated thread counts per lane")
      .option("algorithms", "", "Comma-separated algorithm subset (default: all)")
      .option("out", ".", "Directory for shrunk repro files")
      .option("replay", "", "Re-run a repro file instead of fuzzing")
      .flag("shrink", "Minimize failing cases and write repro files")
      .flag("fault", "Inject an unsound ads_safe rule (harness self-test)")
      .flag("backend",
            "Additionally run every batch lane on the wide (AVX2/SWAR) "
            "classification backend — the cpu-vs-wide differential sweep")
      .flag("control",
            "Additionally run every batch lane with an attached control "
            "plane retuning all engine knobs per batch (invariant stage on, "
            "kAuto backend) — the adaptive-vs-static differential sweep")
      .flag("invariants", "Additionally run metamorphic invariant checks")
      .flag("counts-only", "Reconcile match counts only (skip mapping multisets)")
      .flag("service",
            "Run the service fault matrix (crash recovery, forced timeouts, "
            "shed/degrade overload) instead of the engine lane matrix")
      .flag("multi",
            "Diff the shared multi-query engine against independent "
            "single-query runs (static + runtime add/remove lanes)")
      .flag("shard",
            "Run the sharded fault matrix: the multi-process coordinator "
            "(clean / seeded kills / transport faults) diffed byte-for-byte "
            "against a single-process run")
      .option("shards", "2", "--shard: worker process count per case")
      .option("kill-points", "3", "--shard: seeded kill cells per case");
  if (!cli.parse(argc, argv)) return cli.exit_code();

  verify::AlgorithmFactory factory;
  if (cli.get_bool("fault")) factory = verify::make_classifier_fault_factory();

  if (const std::string replay = cli.get("replay"); !replay.empty()) {
    const verify::Repro repro = verify::load_repro_file(replay);
    const std::vector<verify::Divergence> divs = verify::check_repro(repro, factory);
    for (const verify::Divergence& d : divs)
      std::fprintf(stderr, "DIVERGENCE %s\n", d.to_string().c_str());
    if (divs.empty()) std::printf("replay clean: %s\n", replay.c_str());
    return divs.empty() ? 0 : 1;
  }

  verify::CheckOptions opts;
  opts.factory = factory;
  opts.check_mappings = !cli.get_bool("counts-only");
  opts.lanes = lanes_for(parse_thread_list(cli.get("threads")),
                         cli.get_bool("backend"), cli.get_bool("control"));
  const std::vector<std::string> algo_names = parse_name_list(cli.get("algorithms"));
  if (!algo_names.empty()) {
    opts.algorithms.clear();
    for (const std::string& n : algo_names) opts.algorithms.push_back(n);
  }

  std::uint64_t start = static_cast<std::uint64_t>(cli.get_int("start-seed"));
  std::uint64_t count = static_cast<std::uint64_t>(cli.get_int("seeds"));
  if (cli.get_int("seed") >= 0) {
    start = static_cast<std::uint64_t>(cli.get_int("seed"));
    count = 1;
  }
  const std::int64_t budget_s = cli.get_int("budget-s");
  const auto t0 = std::chrono::steady_clock::now();
  const auto budget_left = [&] {
    if (budget_s <= 0) return true;
    return std::chrono::steady_clock::now() - t0 < std::chrono::seconds(budget_s);
  };

  const bool service_mode = cli.get_bool("service");
  const bool multi_mode = cli.get_bool("multi");
  const bool shard_mode = cli.get_bool("shard");
  const std::vector<unsigned> thread_list = parse_thread_list(cli.get("threads"));

  // The multi lane wants more standing queries per case than the engine
  // matrix default — more sharing and more index pressure per seed.
  verify::FuzzKnobs multi_knobs;
  multi_knobs.num_queries = 4;

  std::uint64_t cases = 0, failures = 0;
  for (std::uint64_t seed = start; seed < start + count && budget_left(); ++seed) {
    const verify::FuzzCase c =
        multi_mode ? verify::generate_case(seed, multi_knobs)
                   : verify::generate_case(seed);
    ++cases;

    std::vector<verify::Divergence> divs;
    if (multi_mode) {
      // Shared multi-query evaluation vs N independent single-query engines
      // (see verify/multi_check.hpp). Not shrinkable: the predicate spans
      // the whole query catalogue, so failures carry the seed for replay.
      verify::MultiCheckOptions mopts;
      if (!thread_list.empty()) mopts.thread_counts = thread_list;
      divs = verify::check_multi_case(c, mopts);
    } else if (shard_mode) {
      // Sharded differential gate: multi-process coordinator vs one
      // single-process run, under clean / kill / transport-fault lanes
      // (see verify/shard_check.hpp). Spawns real worker processes; not
      // shrinkable — failures carry the seed for replay.
      verify::ShardCheckOptions shopts;
      if (!algo_names.empty()) shopts.algorithm = algo_names.front();
      if (!thread_list.empty()) shopts.threads = thread_list.front();
      shopts.n_shards = static_cast<std::uint32_t>(cli.get_int("shards"));
      shopts.kill_points = static_cast<std::uint32_t>(cli.get_int("kill-points"));
      shopts.dir = cli.get("out");
      divs = verify::check_shard_case(c, shopts);
    } else if (service_mode) {
      // Service fault matrix: every resilience lane, cross-checked against
      // the oracle (see verify/service_check.hpp). Algorithm defaults to the
      // first of --algorithms (or graphflow).
      verify::ServiceCheckOptions sopts;
      if (!algo_names.empty()) sopts.algorithm = algo_names.front();
      if (!thread_list.empty()) sopts.threads = thread_list.back();
      sopts.dir = cli.get("out");
      for (const verify::ServiceFault fault : verify::all_service_faults()) {
        sopts.fault = fault;
        for (verify::Divergence& d : verify::check_service_case(c, sopts))
          divs.push_back(std::move(d));
        if (!divs.empty()) break;
      }
    } else {
      divs = verify::check_case(c, opts);
    }
    if (cli.get_bool("invariants") && divs.empty()) {
      for (std::string& v : verify::check_all_invariants(c)) {
        verify::Divergence d;
        d.seed = seed;
        d.message = "invariant violated: " + v;
        divs.push_back(std::move(d));
        break;  // one is enough to fail the seed
      }
    }
    if (divs.empty()) {
      if (cases % 25 == 0)
        std::fprintf(stderr, "[paracosm_fuzz] %llu cases clean (seed %llu)\n",
                     static_cast<unsigned long long>(cases),
                     static_cast<unsigned long long>(seed));
      continue;
    }

    ++failures;
    const verify::Divergence& d = divs.front();
    std::fprintf(stderr, "DIVERGENCE %s\n", d.to_string().c_str());

    // Service-lane failures are not shrinkable with the engine-lane
    // predicate; they carry the full seed for replay instead.
    if (!service_mode && cli.get_bool("shrink") && !d.algorithm.empty()) {
      verify::ShrinkOptions sopts;
      sopts.factory = factory;
      sopts.check_mappings = opts.check_mappings;
      const verify::ShrinkResult res = verify::shrink(c, d, sopts);
      const std::string path = cli.get("out") + "/repro_seed" +
                               std::to_string(seed) + "_" + res.divergence.algorithm +
                               ".txt";
      verify::save_repro_file({res.reduced, res.divergence}, path);
      std::fprintf(stderr,
                   "  shrunk to %zu updates / %u query vertices / %llu graph "
                   "edges in %u runs -> %s\n",
                   res.reduced.stream.size(),
                   res.reduced.queries.front().num_vertices(),
                   static_cast<unsigned long long>(res.reduced.graph.num_edges()),
                   res.predicate_runs, path.c_str());
    }
  }

  std::printf("paracosm_fuzz: %llu cases, %llu with divergences\n",
              static_cast<unsigned long long>(cases),
              static_cast<unsigned long long>(failures));
  return failures == 0 ? 0 : 1;
}
