// paracosm_shard — the shard worker process (DESIGN.md §12).
//
// Not meant to be launched by hand: the coordinator (paracosm_serve
// --shards N) forks and execs this binary with an inherited socketpair fd.
// Everything interesting lives in src/shard/worker.cpp; this translation
// unit is only flag parsing.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "shard/worker.hpp"

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: paracosm_shard --id K --shards N --fd FD --graph G --query Q\n"
      "                      [--algorithm A] [--threads T] [--wal PATH]\n"
      "                      [--snapshot PATH] [--snapshot-every N]\n"
      "                      [--budget-us U] [--metrics-out PATH]\n"
      "                      [--metrics-every N] [--recover] [--kill-at S]\n");
}

}  // namespace

int main(int argc, char** argv) {
  paracosm::shard::WorkerOptions opts;
  bool have_fd = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--id") {
      opts.shard_id = static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--shards") {
      opts.n_shards = static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--fd") {
      opts.fd = std::atoi(next());
      have_fd = true;
    } else if (arg == "--graph") {
      opts.graph_path = next();
    } else if (arg == "--query") {
      opts.query_path = next();
    } else if (arg == "--algorithm") {
      opts.algorithm = next();
    } else if (arg == "--threads") {
      opts.threads = static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--wal") {
      opts.wal_path = next();
    } else if (arg == "--snapshot") {
      opts.snapshot_path = next();
    } else if (arg == "--snapshot-every") {
      opts.snapshot_every = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--budget-us") {
      opts.budget_us = std::strtoll(next(), nullptr, 10);
    } else if (arg == "--metrics-out") {
      opts.metrics_path = next();
    } else if (arg == "--metrics-every") {
      opts.metrics_every = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--recover") {
      opts.recover = true;
    } else if (arg == "--kill-at") {
      opts.kill_at = std::strtoll(next(), nullptr, 10);
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      usage();
      return 2;
    }
  }
  if (!have_fd || opts.fd < 0 || opts.graph_path.empty() ||
      opts.query_path.empty() || opts.n_shards == 0 ||
      opts.shard_id >= opts.n_shards) {
    usage();
    return 2;
  }
  return paracosm::shard::run_worker(opts);
}
