// dataset_stats — structural report for a generated stand-in or a graph
// file: degree distribution, label balance, clustering, components. Useful
// for checking how closely a stand-in (or your own dataset) matches the
// regime an experiment assumes.
//
//   dataset_stats --dataset orkut --scale 0.5
//   dataset_stats --graph my.graph
#include <cstdio>

#include "graph/generators.hpp"
#include "graph/graph_io.hpp"
#include "graph/stats.hpp"
#include "util/cli.hpp"

using namespace paracosm;

int main(int argc, char** argv) {
  util::Cli cli("dataset_stats", "structural statistics of a data graph");
  cli.option("dataset", "", "generate a stand-in: amazon|livejournal|lsbench|orkut")
      .option("graph", "", "...or load this graph file")
      .option("scale", "1.0", "stand-in scale")
      .option("seed", "42", "generator seed");
  if (!cli.parse(argc, argv)) return cli.exit_code();

  util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));
  graph::DataGraph g;
  if (!cli.get("graph").empty()) {
    g = graph::load_data_graph_file(cli.get("graph"));
    std::printf("loaded %s\n", cli.get("graph").c_str());
  } else if (!cli.get("dataset").empty()) {
    const auto spec =
        graph::dataset_spec_by_name(cli.get("dataset"), cli.get_double("scale"));
    if (!spec) {
      std::fprintf(stderr, "error: unknown dataset '%s'\n",
                   cli.get("dataset").c_str());
      return 2;
    }
    g = graph::generate_power_law(*spec, rng);
    std::printf("generated %s stand-in (scale %.2f)\n", spec->name.c_str(),
                cli.get_double("scale"));
  } else {
    std::fprintf(stderr, "error: pass --dataset or --graph\n");
    return 2;
  }

  std::printf("%s\n", graph::describe(g, rng).c_str());
  return 0;
}
