// make_dataset — generate a dataset stand-in, queries and an update stream
// as files in the standard CSM benchmark format, for use with paracosm_run
// or with external CSM systems.
//
//   make_dataset --dataset livejournal --scale 0.5 --query-size 7
//     --queries 10 --out workloads/lj
//
// writes  <out>.graph, <out>.stream, <out>.q0 ... <out>.q9
#include <cstdio>

#include "graph/generators.hpp"
#include "graph/graph_io.hpp"
#include "util/cli.hpp"

using namespace paracosm;

int main(int argc, char** argv) {
  util::Cli cli("make_dataset", "generate CSM workload files");
  cli.option("dataset", "livejournal", "amazon|livejournal|lsbench|orkut")
      .option("scale", "1.0", "vertex-count multiplier")
      .option("query-size", "6", "query vertices")
      .option("queries", "5", "number of query files")
      .option("stream-fraction", "0.10", "edge share held out as insertions")
      .option("delete-fraction", "0.0", "share of inserted edges re-deleted")
      .option("seed", "42", "random seed")
      .option("out", "workload", "output path prefix");
  if (!cli.parse(argc, argv)) return cli.exit_code();

  const auto spec =
      graph::dataset_spec_by_name(cli.get("dataset"), cli.get_double("scale"));
  if (!spec) {
    std::fprintf(stderr, "error: unknown dataset '%s'\n", cli.get("dataset").c_str());
    return 2;
  }

  util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));
  graph::DataGraph g = graph::generate_power_law(*spec, rng);
  const auto queries = graph::extract_queries(
      g, static_cast<std::uint32_t>(cli.get_int("query-size")),
      static_cast<std::uint32_t>(cli.get_int("queries")), rng);
  const auto stream = graph::make_mixed_stream(g, cli.get_double("stream-fraction"),
                                               cli.get_double("delete-fraction"), rng);

  const std::string prefix = cli.get("out");
  graph::save_data_graph_file(g, prefix + ".graph");
  graph::save_update_stream_file(stream, prefix + ".stream");
  for (std::size_t i = 0; i < queries.size(); ++i)
    graph::save_query_graph_file(queries[i], prefix + ".q" + std::to_string(i));

  std::printf("%s: %u vertices, %llu initial edges, %zu stream updates, "
              "%zu queries -> %s.{graph,stream,q*}\n",
              spec->name.c_str(), g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()), stream.size(),
              queries.size(), prefix.c_str());
  return 0;
}
