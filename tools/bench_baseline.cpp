// bench_baseline — machine-readable substrate + end-to-end baseline numbers.
//
// Emits a single JSON document (default results/BENCH_baseline.json) with two
// sections:
//
//   * "micro": hand-timed per-operation costs of the matching substrate —
//     cached NLF lookup vs O(d) recount, signature containment, label-segment
//     vs filtered adjacency iteration, epoch-stamped vs linear used-checks,
//     and edge mutation/lookup. These are the constants the macro tables are
//     built from.
//   * "macro": CI-sized sequential runs of every backtracking algorithm over
//     one generated workload, with the ADS-update / Find_Matches split.
//
// CI runs this once per build and archives the JSON, so substrate regressions
// show up as artifact diffs rather than anecdotes.
//
//   bench_baseline --out results/BENCH_baseline.json --scale 0.25
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common/workload.hpp"
#include "bench_common/reporting.hpp"
#include "bench_common/runner.hpp"
#include "control/control_plane.hpp"
#include "csm/scratch.hpp"
#include "graph/generators.hpp"
#include "graph/nlf_signature.hpp"
#include "obs/metrics.hpp"
#include "paracosm/multi_query.hpp"
#include "paracosm/paracosm.hpp"
#include "service/service.hpp"
#include "util/cli.hpp"
#include "util/hw_topo.hpp"
#include "util/numa_alloc.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace paracosm;

/// ns/op for `body` repeated `iters` times (one warm-up pass first).
template <typename F>
double time_ns_per_op(std::uint64_t iters, F&& body) {
  body();  // warm caches, fault pages
  util::ThreadCpuTimer timer;
  for (std::uint64_t i = 0; i < iters; ++i) body();
  return static_cast<double>(timer.elapsed_ns()) / static_cast<double>(iters);
}

struct MicroResult {
  std::string name;
  double ns_per_op;
};

std::vector<MicroResult> run_micro(std::uint64_t iters) {
  std::vector<MicroResult> out;
  util::Rng gen(1);
  // Sized past L2 so the recount pays realistic per-neighbor misses (same
  // reasoning as bench/micro_substrates.cpp).
  constexpr std::uint32_t kVerts = 32768;
  graph::DataGraph g = graph::generate_erdos_renyi(kVerts, 524288, 8, 4, gen);

  // Volatile-free sinks: accumulate into a checksum the compiler can't drop.
  std::uint64_t sink = 0;

  util::Rng rng(2);
  out.push_back({"nlf_lookup_cached", time_ns_per_op(iters, [&] {
                   sink += g.nlf(static_cast<graph::VertexId>(rng.bounded(kVerts)),
                                 static_cast<graph::Label>(rng.bounded(8)));
                 })});
  rng = util::Rng(2);
  out.push_back({"nlf_lookup_recount", time_ns_per_op(iters, [&] {
                   sink += g.nlf_recount(
                       static_cast<graph::VertexId>(rng.bounded(kVerts)),
                       static_cast<graph::Label>(rng.bounded(8)));
                 })});
  rng = util::Rng(3);
  out.push_back({"nlf_signature_covers", time_ns_per_op(iters, [&] {
                   const auto a = static_cast<graph::VertexId>(rng.bounded(kVerts));
                   const auto b = static_cast<graph::VertexId>(rng.bounded(kVerts));
                   sink += graph::nlf_sig_covers(g.nlf_signature(a), g.nlf_signature(b))
                               ? 1
                               : 0;
                 })});
  rng = util::Rng(4);
  out.push_back({"neighbors_label_segment", time_ns_per_op(iters, [&] {
                   const auto v = static_cast<graph::VertexId>(rng.bounded(kVerts));
                   const auto l = static_cast<graph::Label>(rng.bounded(8));
                   for (const auto& nb : g.neighbors_with_label(v, l)) sink += nb.v;
                 })});
  rng = util::Rng(4);
  out.push_back({"neighbors_filtered_scan", time_ns_per_op(iters, [&] {
                   const auto v = static_cast<graph::VertexId>(rng.bounded(kVerts));
                   const auto l = static_cast<graph::Label>(rng.bounded(8));
                   for (const auto& nb : g.neighbors(v))
                     if (g.label(nb.v) == l) sink += nb.v;
                 })});
  rng = util::Rng(5);
  out.push_back({"edge_lookup", time_ns_per_op(iters, [&] {
                   const auto u = static_cast<graph::VertexId>(rng.bounded(kVerts));
                   const auto v = static_cast<graph::VertexId>(rng.bounded(kVerts));
                   sink += g.has_edge(u, v) ? 1 : 0;
                 })});
  rng = util::Rng(6);
  out.push_back({"edge_add_remove", time_ns_per_op(iters, [&] {
                   const auto u = static_cast<graph::VertexId>(rng.bounded(kVerts));
                   const auto v = static_cast<graph::VertexId>(rng.bounded(kVerts));
                   if (g.add_edge(u, v, 0)) sink += g.remove_edge(u, v) ? 1 : 0;
                 })});

  csm::SearchScratch s;
  s.prepare(8, 65536);
  rng = util::Rng(7);
  for (int i = 0; i < 8; ++i)
    s.mark_used(static_cast<graph::VertexId>(rng.bounded(65536)));
  out.push_back({"scratch_used_epoch", time_ns_per_op(iters, [&] {
                   sink += s.is_used(static_cast<graph::VertexId>(rng.bounded(65536)))
                               ? 1
                               : 0;
                 })});
  out.push_back({"scratch_prepare", time_ns_per_op(iters, [&] {
                   s.prepare(8, 65536);
                   sink += s.map.size();
                 })});

  if (sink == 0xdeadbeef) std::fprintf(stderr, "(unreachable)\n");
  return out;
}

struct MacroResult {
  std::string algorithm;
  bench::RunResult run;
};

std::vector<MacroResult> run_macro(double scale, std::uint32_t queries,
                                   std::int64_t stream_cap, std::int64_t timeout_ms,
                                   std::uint64_t seed) {
  bench::Workload wl = bench::build_workload(graph::livejournal_spec(scale), 6,
                                             queries, 0.10, seed);
  if (stream_cap > 0 && wl.stream.size() > static_cast<std::size_t>(stream_cap))
    wl.stream.resize(static_cast<std::size_t>(stream_cap));
  std::vector<MacroResult> out;
  for (const char* alg :
       {"graphflow", "turboflux", "symbi", "rapidflow", "newsp"}) {
    bench::RunConfig cfg;
    cfg.algorithm = alg;
    cfg.mode = bench::Mode::kSequential;
    cfg.timeout_ms = timeout_ms;
    // Aggregate over the workload's queries: sum the per-query splits so the
    // JSON stays one row per algorithm.
    bench::RunResult total;
    total.success = true;
    for (const auto& q : wl.queries) {
      const bench::RunResult r = bench::run_stream(wl, q, cfg);
      total.success = total.success && r.success;
      total.wall_ms += r.wall_ms;
      total.cpu_ms += r.cpu_ms;
      total.sim_makespan_ms += r.sim_makespan_ms;
      total.delta_matches += r.delta_matches;
      total.nodes += r.nodes;
      total.ads_ms += r.ads_ms;
      total.search_ms += r.search_ms;
    }
    out.push_back({alg, total});
  }
  return out;
}

/// Runtime counters of the lock-free scheduler, collected from one parallel
/// work-stealing run at 8 threads over the same workload. Archived alongside
/// the micro numbers so contention regressions (steal success collapsing,
/// park storms, lopsided batch shards) show up as artifact diffs.
struct SchedulerResult {
  std::uint64_t steals_attempted = 0;
  std::uint64_t steals_succeeded = 0;
  std::uint64_t steals_local = 0;      ///< SMT-sibling victims
  std::uint64_t steals_same_node = 0;  ///< same NUMA node, different core
  std::uint64_t steals_remote = 0;     ///< cross-node
  double remote_steal_share = 0;
  std::uint64_t offloads = 0;  ///< tasks re-split onto the queue
  std::uint64_t parks = 0;
  std::uint64_t shard_updates = 0;  ///< safe updates applied via batch shards
  double dispatch_ms = 0;
  double makespan_ms = 0;
  std::uint64_t delta_matches = 0;
};

SchedulerResult run_scheduler(double scale, std::int64_t stream_cap,
                              std::uint64_t seed,
                              engine::BatchBackendKind backend) {
  bench::Workload wl =
      bench::build_workload(graph::livejournal_spec(scale), 6, 1, 0.10, seed);
  if (stream_cap > 0 && wl.stream.size() > static_cast<std::size_t>(stream_cap))
    wl.stream.resize(static_cast<std::size_t>(stream_cap));
  SchedulerResult out;
  if (wl.queries.empty()) return out;
  auto alg = csm::make_algorithm("graphflow");
  graph::DataGraph g = wl.graph;
  engine::Config cfg;
  cfg.threads = 8;
  cfg.scheduler = engine::Scheduler::kWorkStealing;
  cfg.batch_backend = backend;
  engine::ParaCosm pc(*alg, wl.queries.front(), g, cfg);
  const engine::StreamResult r = pc.process_stream(wl.stream);
  out.steals_attempted = r.stats.total_steals_attempted();
  out.steals_succeeded = r.stats.total_steals_succeeded();
  out.steals_local = r.stats.total_steals_local();
  out.steals_same_node = r.stats.total_steals_same_node();
  out.steals_remote = r.stats.total_steals_remote();
  out.remote_steal_share = r.stats.remote_steal_share();
  out.offloads = r.stats.total_offloads();
  out.parks = r.stats.total_parks();
  out.shard_updates = r.stats.total_shard_updates();
  out.dispatch_ms = static_cast<double>(r.stats.dispatch_ns) / 1e6;
  out.makespan_ms = static_cast<double>(r.stats.simulated_makespan_ns()) / 1e6;
  out.delta_matches = r.delta_matches();
  return out;
}

/// Batch-backend differential (DESIGN.md §11): the same stream through the
/// inter-update batch executor once per classification backend. Both arms
/// must produce identical match totals — the safe-batch equivalence claim —
/// and the per-backend counters (lanes resolved wide, scalar fallbacks,
/// SWAR-vs-AVX2 dispatch) are archived so a silent routing regression shows
/// up as an artifact diff.
struct BackendLane {
  double wall_ms = 0;
  std::uint64_t delta_matches = 0;
  engine::BatchBackendStats stats;
};

struct BackendResult {
  std::uint64_t updates = 0;
  BackendLane cpu;
  BackendLane wide;
  bool totals_match = true;
};

BackendLane run_backend_lane(const bench::Workload& wl,
                             engine::BatchBackendKind kind) {
  BackendLane out;
  auto alg = csm::make_algorithm("newsp");
  graph::DataGraph g = wl.graph;
  engine::Config cfg;
  cfg.threads = 4;
  cfg.batch_backend = kind;
  engine::ParaCosm pc(*alg, wl.queries.front(), g, cfg);
  const engine::StreamResult r = pc.process_stream(wl.stream);
  out.wall_ms = static_cast<double>(r.wall_ns) / 1e6;
  out.delta_matches = r.delta_matches();
  out.stats = kind == engine::BatchBackendKind::kCpu ? r.backend_cpu
                                                     : r.backend_wide;
  return out;
}

BackendResult run_backend(double scale, std::int64_t stream_cap,
                          std::uint64_t seed) {
  bench::Workload wl =
      bench::build_workload(graph::livejournal_spec(scale), 6, 1, 0.10, seed);
  if (stream_cap > 0 && wl.stream.size() > static_cast<std::size_t>(stream_cap))
    wl.stream.resize(static_cast<std::size_t>(stream_cap));
  BackendResult out;
  if (wl.queries.empty()) return out;
  out.updates = wl.stream.size();
  out.cpu = run_backend_lane(wl, engine::BatchBackendKind::kCpu);
  out.wide = run_backend_lane(wl, engine::BatchBackendKind::kWide);
  out.totals_match = out.cpu.delta_matches == out.wide.delta_matches;
  return out;
}

/// Service-layer cost accounting: the same stream pushed through
/// StreamService twice — once with the watchdog off, once with a deadline so
/// generous it never fires. The delta between the two is the pure overhead of
/// arming a cancellation epoch + watchdog per update, which the acceptance
/// criteria cap at 2%; CI archives both so the ratio is an artifact diff, not
/// an anecdote. Latency percentiles and the resilience counters ride along.
struct ServiceLane {
  double wall_ms = 0;
  bench::LatencySummary latency;
  engine::ServiceStats stats;
};

struct ServiceResult {
  std::uint64_t updates = 0;
  ServiceLane no_deadline;
  ServiceLane armed;  ///< 10s budget: enabled but never firing at this scale
};

ServiceLane run_service_lane(const bench::Workload& wl, std::int64_t budget_us) {
  ServiceLane out;
  auto alg = csm::make_algorithm("graphflow");
  graph::DataGraph g = wl.graph;
  engine::Config cfg;
  cfg.threads = 4;
  cfg.inter_parallelism = false;
  engine::ParaCosm pc(*alg, wl.queries.front(), g, cfg);

  service::ServiceOptions sopts;
  sopts.budget_us = budget_us;
  service::StreamService svc(pc, sopts);
  for (const graph::GraphUpdate& upd : wl.stream) (void)svc.submit(upd);
  const service::ServiceReport report = svc.finish();
  out.wall_ms = static_cast<double>(report.wall_ns) / 1e6;
  out.latency = bench::summarize_histogram(report.latency);
  out.stats = report.stats;
  return out;
}

ServiceResult run_service(double scale, std::int64_t stream_cap,
                          std::uint64_t seed) {
  bench::Workload wl =
      bench::build_workload(graph::livejournal_spec(scale), 6, 1, 0.10, seed);
  if (stream_cap > 0 && wl.stream.size() > static_cast<std::size_t>(stream_cap))
    wl.stream.resize(static_cast<std::size_t>(stream_cap));
  ServiceResult out;
  if (wl.queries.empty()) return out;
  out.updates = wl.stream.size();
  // One wall sample per lane is noise at this duration; interleave repeats
  // and keep each lane's best run so the overhead ratio compares floors, not
  // scheduler luck.
  constexpr int kRepeats = 15;
  for (int i = 0; i < kRepeats; ++i) {
    ServiceLane base = run_service_lane(wl, 0);
    ServiceLane armed = run_service_lane(wl, 10'000'000);
    if (i == 0 || base.wall_ms < out.no_deadline.wall_ms) out.no_deadline = base;
    if (i == 0 || armed.wall_ms < out.armed.wall_ms) out.armed = armed;
  }
  return out;
}

/// Shared multi-query evaluation at a fixed catalogue size (DESIGN.md §9):
/// the same registrations through the three-tier shared path and through the
/// independent per-query baseline, so tier regressions show up as a speedup
/// drop in the archived JSON.
struct MultiQueryLane {
  double wall_ms = 0;
  std::size_t classes = 0;
  engine::MultiStreamResult res;
};

struct MultiQueryResult {
  std::uint64_t updates = 0;
  std::size_t catalogue = 0;
  MultiQueryLane shared;
  MultiQueryLane independent;
  bool totals_match = true;
};

MultiQueryLane run_multi_query_lane(const bench::Workload& wl, std::size_t catalogue,
                                    bool shared) {
  MultiQueryLane out;
  graph::DataGraph g = wl.graph;
  engine::Config cfg;
  cfg.threads = 4;
  engine::MultiQueryEngine eng(g, cfg);
  eng.set_shared_evaluation(shared);
  for (std::size_t i = 0; i < catalogue; ++i)
    eng.add_query("graphflow", wl.queries[i % wl.queries.size()]);
  out.classes = eng.num_classes();
  const util::WallTimer timer;
  out.res = eng.process_stream(wl.stream);
  out.wall_ms = timer.elapsed_ms();
  return out;
}

MultiQueryResult run_multi_query(double scale, std::uint32_t queries,
                                 std::int64_t stream_cap, std::uint64_t seed) {
  constexpr std::size_t kCatalogue = 64;
  bench::Workload wl = bench::build_workload(graph::livejournal_spec(scale), 5,
                                             std::max(queries, 1u), 0.10, seed,
                                             /*delete_fraction=*/0.3);
  if (stream_cap > 0 && wl.stream.size() > static_cast<std::size_t>(stream_cap))
    wl.stream.resize(static_cast<std::size_t>(stream_cap));
  MultiQueryResult out;
  if (wl.queries.empty()) return out;
  out.updates = wl.stream.size();
  out.catalogue = kCatalogue;
  // Same best-of-repeats discipline as the service section.
  constexpr int kRepeats = 3;
  for (int i = 0; i < kRepeats; ++i) {
    MultiQueryLane sh = run_multi_query_lane(wl, kCatalogue, true);
    MultiQueryLane in = run_multi_query_lane(wl, kCatalogue, false);
    if (i == 0 || sh.wall_ms < out.shared.wall_ms) out.shared = std::move(sh);
    if (i == 0 || in.wall_ms < out.independent.wall_ms) out.independent = std::move(in);
  }
  out.totals_match = out.shared.res.positive == out.independent.res.positive &&
                     out.shared.res.negative == out.independent.res.negative;
  return out;
}

/// Adaptive-control lane (--adaptive, DESIGN.md §13): the generated stream
/// through one engine with the invariant stage engaged and an attached
/// ControlPlane retuning the knobs per epoch. The decision trail, aggregate
/// controller stats and final knob values land in the JSON, so controller
/// behaviour drift (oscillation, runaway growth, dead controllers) shows up
/// as an artifact diff like any other regression.
struct ControlResult {
  bool enabled = false;
  std::uint64_t updates = 0;
  double wall_ms = 0;
  std::uint64_t delta_matches = 0;
  std::uint32_t final_batch = 0;
  std::uint32_t final_split = 0;
  std::uint32_t final_cutoff = 0;
  std::uint64_t epochs = 0;
  control::ControlStats stats;
  std::vector<control::DecisionRecord> decisions;
  engine::InvariantStats invariant;
};

ControlResult run_control(double scale, std::int64_t stream_cap,
                          std::uint64_t seed) {
  bench::Workload wl =
      bench::build_workload(graph::livejournal_spec(scale), 6, 1, 0.10, seed);
  if (stream_cap > 0 && wl.stream.size() > static_cast<std::size_t>(stream_cap))
    wl.stream.resize(static_cast<std::size_t>(stream_cap));
  ControlResult out;
  out.enabled = true;
  if (wl.queries.empty()) return out;
  out.updates = wl.stream.size();
  auto alg = csm::make_algorithm("graphflow");
  graph::DataGraph g = wl.graph;
  engine::Config cfg;
  cfg.threads = 4;
  cfg.invariant_stage = true;
  engine::ParaCosm pc(*alg, wl.queries.front(), g, cfg);
  control::ControlPlane plane(pc.tuning());
  pc.attach_control(&plane);
  const util::WallTimer timer;
  const engine::StreamResult r = pc.process_stream(wl.stream);
  out.wall_ms = timer.elapsed_ms();
  out.delta_matches = r.delta_matches();
  out.final_batch = pc.tuning().batch_size();
  out.final_split = pc.tuning().split_depth();
  out.final_cutoff = pc.tuning().wide_auto_cutoff();
  out.epochs = plane.epoch();
  out.stats = plane.stats();
  out.decisions = plane.decisions();
  out.invariant = r.invariant;
  return out;
}

void write_service_lane_json(std::FILE* f, const char* name,
                             const ServiceLane& lane, bool last) {
  const auto& s = lane.stats;
  std::fprintf(f,
               "    \"%s\": {\"wall_ms\": %.3f, "
               "\"latency_us\": {\"p50\": %.1f, \"p95\": %.1f, \"p99\": %.1f, "
               "\"p999\": %.1f, \"max\": %.1f}, "
               "\"degraded_searches\": %llu, \"watchdog_cancels\": %llu, "
               "\"shed\": %llu, \"deferred_retries\": %llu, "
               "\"replayed_updates\": %llu}%s\n",
               name, lane.wall_ms,
               static_cast<double>(lane.latency.p50_ns) / 1e3,
               static_cast<double>(lane.latency.p95_ns) / 1e3,
               static_cast<double>(lane.latency.p99_ns) / 1e3,
               static_cast<double>(lane.latency.p999_ns) / 1e3,
               static_cast<double>(lane.latency.max_ns) / 1e3,
               static_cast<unsigned long long>(s.degraded_searches),
               static_cast<unsigned long long>(s.watchdog_cancels),
               static_cast<unsigned long long>(s.ingest.shed),
               static_cast<unsigned long long>(s.deferred_retries),
               static_cast<unsigned long long>(s.replayed_updates),
               last ? "" : ",");
}

void write_backend_lane_json(std::FILE* f, const char* name,
                             const BackendLane& lane) {
  const engine::BatchBackendStats& s = lane.stats;
  std::fprintf(f,
               "    \"%s\": {\"wall_ms\": %.3f, \"delta_matches\": %llu, "
               "\"batches\": %llu, \"lanes\": %llu, \"safe_label\": %llu, "
               "\"safe_degree\": %llu, \"safe_ads\": %llu, \"unsafe\": %llu, "
               "\"wide_resolved\": %llu, \"scalar_fallbacks\": %llu, "
               "\"swar_prerejects\": %llu, \"avx2_batches\": %llu, "
               "\"swar_batches\": %llu, \"fallback_activations\": %llu, "
               "\"verify_diffs\": %llu},\n",
               name, lane.wall_ms,
               static_cast<unsigned long long>(lane.delta_matches),
               static_cast<unsigned long long>(s.batches),
               static_cast<unsigned long long>(s.lanes),
               static_cast<unsigned long long>(s.safe_label),
               static_cast<unsigned long long>(s.safe_degree),
               static_cast<unsigned long long>(s.safe_ads),
               static_cast<unsigned long long>(s.unsafe_lanes),
               static_cast<unsigned long long>(s.wide_resolved()),
               static_cast<unsigned long long>(s.scalar_fallbacks),
               static_cast<unsigned long long>(s.swar_prerejects),
               static_cast<unsigned long long>(s.avx2_batches),
               static_cast<unsigned long long>(s.swar_batches),
               static_cast<unsigned long long>(s.fallback_activations),
               static_cast<unsigned long long>(s.verify_diffs));
}

void write_json(const std::string& path, const std::vector<MicroResult>& micro,
                const std::vector<MacroResult>& macro, const SchedulerResult& sched,
                const BackendResult& backend, const ServiceResult& svc,
                const MultiQueryResult& multi, const ControlResult& ctl,
                double scale, std::uint32_t queries, std::int64_t stream_cap,
                std::uint64_t seed) {
  const std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);  // fopen reports failure
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f,
               "  \"config\": {\"scale\": %g, \"queries\": %u, \"stream\": %lld, "
               "\"seed\": %llu},\n",
               scale, queries, static_cast<long long>(stream_cap),
               static_cast<unsigned long long>(seed));
  // Machine shape the numbers were taken on: without this, cross-host diffs
  // of the scheduler counters are apples-to-oranges.
  const util::HwTopology& topo = util::HwTopology::cached();
  std::fprintf(f,
               "  \"topology\": {\"source\": \"%s\", \"cpus\": %u, "
               "\"cores\": %u, \"nodes\": %u, \"packages\": %u, "
               "\"smt\": %s, \"affinity_cpus\": %u, \"numa_compiled\": %s, "
               "\"numa_available\": %s},\n",
               util::topo_source_name(topo.source), topo.num_cpus(),
               topo.num_cores, topo.num_nodes, topo.num_packages,
               topo.smt ? "true" : "false", util::affinity_cpu_count(),
               util::numa::compiled() ? "true" : "false",
               util::numa::available() ? "true" : "false");
  std::fprintf(f, "  \"micro_ns_per_op\": {\n");
  for (std::size_t i = 0; i < micro.size(); ++i)
    std::fprintf(f, "    \"%s\": %.2f%s\n", micro[i].name.c_str(), micro[i].ns_per_op,
                 i + 1 < micro.size() ? "," : "");
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"macro_sequential\": [\n");
  for (std::size_t i = 0; i < macro.size(); ++i) {
    const auto& m = macro[i];
    std::fprintf(f,
                 "    {\"algorithm\": \"%s\", \"success\": %s, \"total_ms\": %.3f, "
                 "\"ads_update_ms\": %.3f, \"find_matches_ms\": %.3f, "
                 "\"delta_matches\": %llu, \"nodes\": %llu}%s\n",
                 m.algorithm.c_str(), m.run.success ? "true" : "false",
                 m.run.cpu_ms, m.run.ads_ms, m.run.search_ms,
                 static_cast<unsigned long long>(m.run.delta_matches),
                 static_cast<unsigned long long>(m.run.nodes),
                 i + 1 < macro.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"scheduler_8threads\": {\"steals_attempted\": %llu, "
               "\"steals_succeeded\": %llu, \"steals_local\": %llu, "
               "\"steals_same_node\": %llu, \"steals_remote\": %llu, "
               "\"remote_steal_share\": %.4f, \"tasks_resplit\": %llu, "
               "\"parks\": %llu, \"shard_updates\": %llu, "
               "\"dispatch_ms\": %.3f, \"sim_makespan_ms\": %.3f, "
               "\"delta_matches\": %llu},\n",
               static_cast<unsigned long long>(sched.steals_attempted),
               static_cast<unsigned long long>(sched.steals_succeeded),
               static_cast<unsigned long long>(sched.steals_local),
               static_cast<unsigned long long>(sched.steals_same_node),
               static_cast<unsigned long long>(sched.steals_remote),
               sched.remote_steal_share,
               static_cast<unsigned long long>(sched.offloads),
               static_cast<unsigned long long>(sched.parks),
               static_cast<unsigned long long>(sched.shard_updates),
               sched.dispatch_ms, sched.makespan_ms,
               static_cast<unsigned long long>(sched.delta_matches));
  std::fprintf(f, "  \"backend\": {\n");
  std::fprintf(f, "    \"updates\": %llu,\n",
               static_cast<unsigned long long>(backend.updates));
  write_backend_lane_json(f, "cpu", backend.cpu);
  write_backend_lane_json(f, "wide", backend.wide);
  std::fprintf(f, "    \"totals_match\": %s\n",
               backend.totals_match ? "true" : "false");
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"service\": {\n");
  std::fprintf(f, "    \"updates\": %llu,\n",
               static_cast<unsigned long long>(svc.updates));
  write_service_lane_json(f, "no_deadline", svc.no_deadline, false);
  write_service_lane_json(f, "armed_deadline", svc.armed, false);
  const double base = svc.no_deadline.wall_ms;
  std::fprintf(f, "    \"armed_overhead_pct\": %.2f\n",
               base > 0 ? (svc.armed.wall_ms - base) / base * 100.0 : 0.0);
  std::fprintf(f, "  },\n");
  if (ctl.enabled) {
    std::fprintf(f,
                 "  \"control\": {\"updates\": %llu, \"wall_ms\": %.3f, "
                 "\"delta_matches\": %llu, \"epochs\": %llu, "
                 "\"final_knobs\": {\"batch_size\": %u, \"split_depth\": %u, "
                 "\"wide_auto_cutoff\": %u}, "
                 "\"stats\": {\"decisions\": %llu, \"grows\": %llu, "
                 "\"shrinks\": %llu, \"clamped\": %llu, "
                 "\"cooldown_suppressed\": %llu, \"in_band\": %llu}, "
                 "\"invariant\": {\"batches_checked\": %llu, "
                 "\"batches_certified\": %llu, \"lanes_certified\": %llu},\n",
                 static_cast<unsigned long long>(ctl.updates), ctl.wall_ms,
                 static_cast<unsigned long long>(ctl.delta_matches),
                 static_cast<unsigned long long>(ctl.epochs), ctl.final_batch,
                 ctl.final_split, ctl.final_cutoff,
                 static_cast<unsigned long long>(ctl.stats.decisions),
                 static_cast<unsigned long long>(ctl.stats.grows),
                 static_cast<unsigned long long>(ctl.stats.shrinks),
                 static_cast<unsigned long long>(ctl.stats.clamped),
                 static_cast<unsigned long long>(ctl.stats.cooldown_suppressed),
                 static_cast<unsigned long long>(ctl.stats.in_band),
                 static_cast<unsigned long long>(ctl.invariant.batches_checked),
                 static_cast<unsigned long long>(ctl.invariant.batches_certified),
                 static_cast<unsigned long long>(ctl.invariant.lanes_certified));
    std::fprintf(f, "    \"decisions_log\": [");
    for (std::size_t i = 0; i < ctl.decisions.size(); ++i) {
      const control::DecisionRecord& d = ctl.decisions[i];
      std::fprintf(f,
                   "%s\n      {\"epoch\": %llu, \"knob\": \"%.*s\", "
                   "\"from\": %u, \"to\": %u}",
                   i > 0 ? "," : "",
                   static_cast<unsigned long long>(d.epoch),
                   static_cast<int>(control::knob_name(d.knob).size()),
                   control::knob_name(d.knob).data(), d.from, d.to);
    }
    std::fprintf(f, "%s]\n  },\n", ctl.decisions.empty() ? "" : "\n    ");
  }
  const engine::MultiQueryStats& mq = multi.shared.res.mq;
  std::fprintf(f,
               "  \"multi_query\": {\"updates\": %llu, \"catalogue\": %zu, "
               "\"classes\": %zu, \"shared_ms\": %.3f, \"independent_ms\": %.3f, "
               "\"speedup\": %.2f, \"verdicts_by_index\": %llu, "
               "\"verdicts_grouped\": %llu, \"group_hits\": %llu, "
               "\"searches_shared\": %llu, \"searches_skipped\": %llu, "
               "\"totals_match\": %s}\n",
               static_cast<unsigned long long>(multi.updates), multi.catalogue,
               multi.shared.classes, multi.shared.wall_ms, multi.independent.wall_ms,
               multi.shared.wall_ms > 0
                   ? multi.independent.wall_ms / multi.shared.wall_ms
                   : 0.0,
               static_cast<unsigned long long>(mq.verdicts_by_index),
               static_cast<unsigned long long>(mq.verdicts_grouped),
               static_cast<unsigned long long>(mq.group_hits),
               static_cast<unsigned long long>(mq.searches_shared),
               static_cast<unsigned long long>(mq.searches_skipped),
               multi.totals_match ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
}

/// Flat counter view of the same run (obs/metrics.hpp): one metric per line,
/// CSV or JSON by extension — the form dashboards and diff tooling ingest
/// without parsing the nested report above.
void write_metrics(const std::string& path, const std::vector<MicroResult>& micro,
                   const std::vector<MacroResult>& macro,
                   const SchedulerResult& sched, const BackendResult& backend,
                   const ServiceResult& svc, const MultiQueryResult& multi) {
  obs::MetricsSnapshot snap;
  for (const MicroResult& m : micro)
    snap.add_gauge("micro." + m.name + ".ns_per_op", m.ns_per_op);
  for (const MacroResult& m : macro) {
    snap.add_gauge("macro." + m.algorithm + ".total_ms", m.run.cpu_ms);
    snap.add_counter("macro." + m.algorithm + ".delta_matches",
                     static_cast<std::int64_t>(m.run.delta_matches));
  }
  snap.add_counter("scheduler.steals_succeeded",
                   static_cast<std::int64_t>(sched.steals_succeeded));
  snap.add_counter("scheduler.steals_attempted",
                   static_cast<std::int64_t>(sched.steals_attempted));
  snap.add_counter("scheduler.steals_local",
                   static_cast<std::int64_t>(sched.steals_local));
  snap.add_counter("scheduler.steals_same_node",
                   static_cast<std::int64_t>(sched.steals_same_node));
  snap.add_counter("scheduler.steals_remote",
                   static_cast<std::int64_t>(sched.steals_remote));
  snap.add_counter("scheduler.tasks_resplit",
                   static_cast<std::int64_t>(sched.offloads));
  snap.add_counter("scheduler.parks", static_cast<std::int64_t>(sched.parks));
  for (const auto& [name, lane] :
       {std::pair<const char*, const BackendLane*>{"cpu", &backend.cpu},
        {"wide", &backend.wide}}) {
    const std::string p = std::string("backend.") + name + ".";
    snap.add_gauge(p + "wall_ms", lane->wall_ms);
    snap.add_counter(p + "batches", static_cast<std::int64_t>(lane->stats.batches));
    snap.add_counter(p + "lanes", static_cast<std::int64_t>(lane->stats.lanes));
    snap.add_counter(p + "wide_resolved",
                     static_cast<std::int64_t>(lane->stats.wide_resolved()));
    snap.add_counter(p + "swar_prerejects",
                     static_cast<std::int64_t>(lane->stats.swar_prerejects));
    snap.add_counter(p + "scalar_fallbacks",
                     static_cast<std::int64_t>(lane->stats.scalar_fallbacks));
    snap.add_counter(p + "fallback_activations",
                     static_cast<std::int64_t>(lane->stats.fallback_activations));
  }
  snap.add_gauge("service.no_deadline.wall_ms", svc.no_deadline.wall_ms);
  snap.add_gauge("service.armed.wall_ms", svc.armed.wall_ms);
  snap.add_counter("service.no_deadline.latency_ns.p50",
                   svc.no_deadline.latency.p50_ns);
  snap.add_counter("service.no_deadline.latency_ns.p99",
                   svc.no_deadline.latency.p99_ns);
  snap.add_counter("service.no_deadline.latency_ns.p999",
                   svc.no_deadline.latency.p999_ns);
  snap.add_gauge("multi_query.shared_ms", multi.shared.wall_ms);
  snap.add_gauge("multi_query.independent_ms", multi.independent.wall_ms);
  snap.add_counter("multi_query.verdicts_by_index",
                   static_cast<std::int64_t>(multi.shared.res.mq.verdicts_by_index));
  snap.add_counter("multi_query.verdicts_grouped",
                   static_cast<std::int64_t>(multi.shared.res.mq.verdicts_grouped));
  snap.add_counter("multi_query.searches_shared",
                   static_cast<std::int64_t>(multi.shared.res.mq.searches_shared));
  snap.add_counter("multi_query.searches_skipped",
                   static_cast<std::int64_t>(multi.shared.res.mq.searches_skipped));
  try {
    snap.write(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "warning: %s\n", e.what());
  }
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("bench_baseline",
                "emit machine-readable substrate + sequential baseline numbers");
  cli.option("out", "results/BENCH_baseline.json", "output JSON path")
      .option("iters", "200000", "iterations per micro measurement")
      .option("scale", "0.6", "dataset size multiplier for the macro section")
      .option("queries", "3", "queries in the macro workload")
      .option("stream", "2000", "stream updates for the macro section (0 = all)")
      .option("timeout-ms", "4000", "per-query budget for the macro section")
      .option("metrics-out", "",
              "also write a flat metrics snapshot (.csv or JSON by extension)")
      .option("backend", "cpu",
              "batch classification backend for the scheduler section "
              "(cpu|wide|auto); the backend section always runs both arms")
      .flag("adaptive",
            "also run the stream under an attached control plane (invariant "
            "stage on) and archive the decision trail in a \"control\" section")
      .option("seed", "42", "random seed");
  if (!cli.parse(argc, argv)) return cli.exit_code();

  if (cli.get_int("iters") <= 0 || cli.get_double("scale") <= 0.0) {
    std::fprintf(stderr, "error: --iters and --scale must be positive\n");
    return 1;
  }
  const auto iters = static_cast<std::uint64_t>(cli.get_int("iters"));
  const double scale = cli.get_double("scale");
  const auto queries = static_cast<std::uint32_t>(cli.get_int("queries"));
  const std::int64_t stream_cap = cli.get_int("stream");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const auto backend_kind = engine::parse_batch_backend(cli.get("backend"));
  if (!backend_kind) {
    std::fprintf(stderr, "error: --backend must be cpu, wide or auto\n");
    return 1;
  }

  const auto micro = run_micro(iters);
  const auto macro = run_macro(scale, queries, stream_cap,
                               cli.get_int("timeout-ms"), seed);
  const auto sched = run_scheduler(scale, stream_cap, seed, *backend_kind);
  const auto backend = run_backend(scale, stream_cap, seed);
  const auto svc = run_service(scale, stream_cap, seed);
  const auto multi = run_multi_query(scale, queries, stream_cap, seed);
  const ControlResult ctl = cli.get_bool("adaptive")
                                ? run_control(scale, stream_cap, seed)
                                : ControlResult{};
  write_json(cli.get("out"), micro, macro, sched, backend, svc, multi, ctl,
             scale, queries, stream_cap, seed);
  if (const std::string mpath = cli.get("metrics-out"); !mpath.empty())
    write_metrics(mpath, micro, macro, sched, backend, svc, multi);

  for (const auto& m : micro)
    std::printf("%-26s %10.2f ns/op\n", m.name.c_str(), m.ns_per_op);
  for (const auto& m : macro)
    std::printf("%-10s total %8.3f ms (ads %7.3f, find %7.3f) dM=%llu\n",
                m.algorithm.c_str(), m.run.cpu_ms, m.run.ads_ms, m.run.search_ms,
                static_cast<unsigned long long>(m.run.delta_matches));
  std::printf(
      "scheduler@8t: steals %llu/%llu, resplit %llu, parks %llu, shards %llu, "
      "dispatch %.3f ms\n",
      static_cast<unsigned long long>(sched.steals_succeeded),
      static_cast<unsigned long long>(sched.steals_attempted),
      static_cast<unsigned long long>(sched.offloads),
      static_cast<unsigned long long>(sched.parks),
      static_cast<unsigned long long>(sched.shard_updates),
      sched.dispatch_ms);
  std::printf(
      "backend@4t:   cpu %.3f ms vs wide %.3f ms over %llu updates "
      "(wide resolved %llu/%llu lanes, totals %s)\n",
      backend.cpu.wall_ms, backend.wide.wall_ms,
      static_cast<unsigned long long>(backend.updates),
      static_cast<unsigned long long>(backend.wide.stats.wide_resolved()),
      static_cast<unsigned long long>(backend.wide.stats.lanes),
      backend.totals_match ? "match" : "MISMATCH");
  const double base_ms = svc.no_deadline.wall_ms;
  std::printf(
      "service@4t:   %llu updates, p50/p95/p99 %.1f/%.1f/%.1f us; armed "
      "deadline overhead %+.2f%%\n",
      static_cast<unsigned long long>(svc.updates),
      static_cast<double>(svc.no_deadline.latency.p50_ns) / 1e3,
      static_cast<double>(svc.no_deadline.latency.p95_ns) / 1e3,
      static_cast<double>(svc.no_deadline.latency.p99_ns) / 1e3,
      base_ms > 0 ? (svc.armed.wall_ms - base_ms) / base_ms * 100.0 : 0.0);
  std::printf(
      "multiquery@4t: %zu standing queries -> %zu classes, shared %.3f ms vs "
      "independent %.3f ms (%.2fx, totals %s)\n",
      multi.catalogue, multi.shared.classes, multi.shared.wall_ms,
      multi.independent.wall_ms,
      multi.shared.wall_ms > 0 ? multi.independent.wall_ms / multi.shared.wall_ms
                               : 0.0,
      multi.totals_match ? "match" : "MISMATCH");
  if (ctl.enabled)
    std::printf(
        "control@4t:   %llu updates, %llu epochs -> %llu decisions "
        "(g%llu/s%llu), final k=%u split=%u cutoff=%u, certified %llu/%llu "
        "batches, dM=%llu\n",
        static_cast<unsigned long long>(ctl.updates),
        static_cast<unsigned long long>(ctl.epochs),
        static_cast<unsigned long long>(ctl.stats.decisions),
        static_cast<unsigned long long>(ctl.stats.grows),
        static_cast<unsigned long long>(ctl.stats.shrinks), ctl.final_batch,
        ctl.final_split, ctl.final_cutoff,
        static_cast<unsigned long long>(ctl.invariant.batches_certified),
        static_cast<unsigned long long>(ctl.invariant.batches_checked),
        static_cast<unsigned long long>(ctl.delta_matches));
  std::printf("wrote %s\n", cli.get("out").c_str());
  return 0;
}
