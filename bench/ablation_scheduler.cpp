// Ablation of the inner-update scheduling strategy (design choice in
// DESIGN.md): the paper's central concurrent queue with idle-triggered
// re-splitting (Algorithm 2) vs classic per-worker work stealing vs static
// seed partitioning. Identical updates, identical traversal code — only the
// scheduler differs.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "paracosm/inner_executor.hpp"
#include "paracosm/steal_executor.hpp"

using namespace paracosm;
using namespace paracosm::bench;

namespace {

struct SchedulerTotals {
  std::int64_t makespan_ns = 0;
  std::int64_t cpu_ns = 0;
  std::uint64_t matches = 0;
};

template <typename Runner>
SchedulerTotals drive(const Workload& wl, const graph::QueryGraph& q, Runner&& run) {
  SchedulerTotals totals;
  auto alg = csm::make_algorithm("graphflow");
  graph::DataGraph g = wl.graph;
  alg->attach(q, g);
  for (const auto& upd : wl.stream) {
    if (!upd.is_edge_op()) continue;
    if (!g.add_edge(upd.u, upd.v, upd.label)) continue;
    alg->on_edge_inserted(upd);
    std::vector<csm::SearchTask> seeds;
    alg->seeds(upd, seeds);
    if (seeds.empty()) continue;
    const engine::InnerRunResult r = run(*alg, std::move(seeds));
    totals.makespan_ns += r.stats.simulated_makespan_ns();
    totals.cpu_ns += r.stats.sequential_equivalent_ns();
    totals.matches += r.matches;
  }
  return totals;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli = standard_cli("ablation_scheduler",
                               "Ablation: central queue vs work stealing vs static");
  cli.option("query-size", "8",
             "Query graph size (8 = the heavy-tailed regime where the "
             "schedulers diverge)");
  if (!cli.parse(argc, argv)) return cli.exit_code();

  const double scale = cli.get_double("scale");
  const auto num_queries = static_cast<std::uint32_t>(cli.get_int("queries"));
  const std::int64_t stream_cap = cli.get_int("stream");
  const auto threads = static_cast<unsigned>(cli.get_int("threads"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  print_experiment_banner(
      "Ablation: inner-update scheduler",
      "Central concurrent queue (Algorithm 2) vs per-worker work stealing vs "
      "static partition, GraphFlow, LiveJournal-hard stand-in");

  Workload wl = build_workload(livejournal_hard_spec(scale, 8),
                               static_cast<std::uint32_t>(cli.get_int("query-size")),
                               num_queries, 0.10, seed);
  cap_stream(wl, stream_cap);

  engine::WorkerPool pool(threads);
  util::Table table({"scheduler", "makespan_ms", "cpu_ms", "speedup_vs_static"});
  util::CsvWriter csv(results_path("ablation_scheduler"),
                      {"scheduler", "makespan_ms", "cpu_ms", "matches"});

  const auto accumulate = [](SchedulerTotals& sum, const SchedulerTotals& part) {
    sum.makespan_ns += part.makespan_ns;
    sum.cpu_ns += part.cpu_ns;
    sum.matches += part.matches;
  };

  double static_ms = 0;
  for (const char* which : {"static", "central-queue", "work-stealing"}) {
    SchedulerTotals sum;
    for (const auto& q : wl.queries) {
      if (std::string_view(which) == "central-queue") {
        engine::InnerExecutor exec(pool, 4, /*dynamic_balance=*/true);
        accumulate(sum, drive(wl, q, [&](const auto& alg, auto seeds) {
                     return exec.run(alg, std::move(seeds));
                   }));
      } else if (std::string_view(which) == "work-stealing") {
        engine::StealingExecutor exec(pool, 4);
        accumulate(sum, drive(wl, q, [&](const auto& alg, auto seeds) {
                     return exec.run(alg, std::move(seeds));
                   }));
      } else {
        engine::InnerExecutor exec(pool, 4, /*dynamic_balance=*/false);
        accumulate(sum, drive(wl, q, [&](const auto& alg, auto seeds) {
                     return exec.run(alg, std::move(seeds));
                   }));
      }
    }
    const double ms = static_cast<double>(sum.makespan_ns) / 1e6;
    if (std::string_view(which) == "static") static_ms = ms;
    table.row({which, util::Table::num(ms, 3),
               util::Table::num(static_cast<double>(sum.cpu_ns) / 1e6, 3),
               static_ms > 0 ? util::Table::num(static_ms / ms, 2) + "x" : "-"});
    csv.row({which, util::CsvWriter::num(ms, 3),
             util::CsvWriter::num(static_cast<double>(sum.cpu_ns) / 1e6, 3),
             util::CsvWriter::num(sum.matches)});
  }

  std::puts("Scheduler ablation (total simulated makespan across the stream):");
  table.print();
  std::printf("\nCSV written to %s\n", results_path("ablation_scheduler").c_str());
  return 0;
}
