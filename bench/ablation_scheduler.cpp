// Ablation of the inner-update scheduling strategy (design choice in
// DESIGN.md §5): the PR-1-era global mutex queue vs the paper's central
// concurrent queue with idle-triggered re-splitting (Algorithm 2, now on the
// lock-free Chase–Lev substrate) vs classic per-worker work stealing — with
// and without a persistent (warm) queue — vs static seed partitioning.
// Identical updates, identical traversal code — only the scheduler differs.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "paracosm/inner_executor.hpp"
#include "paracosm/steal_executor.hpp"
#include "paracosm/task_queue.hpp"

using namespace paracosm;
using namespace paracosm::bench;

namespace {

struct SchedulerTotals {
  std::int64_t makespan_ns = 0;
  std::int64_t cpu_ns = 0;
  std::uint64_t matches = 0;
  std::uint64_t steals_ok = 0;
  std::uint64_t offloads = 0;
  std::uint64_t parks = 0;
};

template <typename Runner>
SchedulerTotals drive(const Workload& wl, const graph::QueryGraph& q, Runner&& run) {
  SchedulerTotals totals;
  auto alg = csm::make_algorithm("graphflow");
  graph::DataGraph g = wl.graph;
  alg->attach(q, g);
  for (const auto& upd : wl.stream) {
    if (!upd.is_edge_op()) continue;
    if (!g.add_edge(upd.u, upd.v, upd.label)) continue;
    alg->on_edge_inserted(upd);
    std::vector<csm::SearchTask> seeds;
    alg->seeds(upd, seeds);
    if (seeds.empty()) continue;
    const engine::InnerRunResult r = run(*alg, std::move(seeds));
    totals.makespan_ns += r.stats.simulated_makespan_ns();
    totals.cpu_ns += r.stats.sequential_equivalent_ns();
    totals.matches += r.matches;
    totals.steals_ok += r.stats.total_steals_succeeded();
    totals.offloads += r.stats.total_offloads();
    totals.parks += r.stats.total_parks();
  }
  return totals;
}

/// The PR-1-era scheduler, reconstructed on the retained MutexTaskQueue:
/// one global queue, every push/pop behind its mutex, the same adaptive
/// split predicate. This is the "before" of the lock-free rewrite.
class MutexQueueExecutor {
 public:
  MutexQueueExecutor(engine::WorkerPool& pool, std::uint32_t split_depth)
      : pool_(pool), split_depth_(split_depth) {}

  engine::InnerRunResult run(const csm::CsmAlgorithm& alg,
                             std::vector<csm::SearchTask> seeds) {
    engine::InnerRunResult result;
    if (seeds.empty()) return result;
    result.stats.ensure_size(pool_.size());
    engine::MutexTaskQueue queue;

    util::ThreadCpuTimer serial_timer;
    for (csm::SearchTask& seed : seeds) queue.push(std::move(seed));
    result.stats.serial_ns += serial_timer.elapsed_ns();

    pool_.run([&](unsigned wid) {
      engine::WorkerStats& ws = result.stats.workers[wid];
      csm::MatchSink sink;
      Hook hook(queue, split_depth_, ws);
      while (auto task = queue.pop_or_finish()) {
        util::ThreadCpuTimer timer;
        alg.expand(*task, sink, &hook);
        queue.retire();
        ++ws.tasks;
        ws.busy_ns += timer.elapsed_ns();
      }
      ws.nodes += sink.nodes;
      ws.matches += sink.matches;
    });
    for (const engine::WorkerStats& ws : result.stats.workers) {
      result.matches += ws.matches;
      result.nodes += ws.nodes;
    }
    return result;
  }

 private:
  class Hook final : public csm::SplitHook {
   public:
    Hook(engine::MutexTaskQueue& queue, std::uint32_t split_depth,
         engine::WorkerStats& ws) noexcept
        : queue_(queue), split_depth_(split_depth), ws_(ws) {}
    [[nodiscard]] bool want_offload(std::uint32_t depth) noexcept override {
      return depth < split_depth_ && queue_.approx_size() == 0 &&
             queue_.has_idle_workers();
    }
    void offload(csm::SearchTask&& task) override {
      ++ws_.offloads;
      queue_.push(std::move(task));
    }

   private:
    engine::MutexTaskQueue& queue_;
    std::uint32_t split_depth_;
    engine::WorkerStats& ws_;
  };

  engine::WorkerPool& pool_;
  std::uint32_t split_depth_;
};

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli = standard_cli("ablation_scheduler",
                               "Ablation: mutex queue vs lock-free schedulers");
  cli.option("query-size", "8",
             "Query graph size (8 = the heavy-tailed regime where the "
             "schedulers diverge)");
  if (!cli.parse(argc, argv)) return cli.exit_code();

  const double scale = cli.get_double("scale");
  const auto num_queries = static_cast<std::uint32_t>(cli.get_int("queries"));
  const std::int64_t stream_cap = cli.get_int("stream");
  const unsigned threads = bench::resolve_threads(cli.get_int("threads"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  print_experiment_banner(
      "Ablation: inner-update scheduler",
      "Global mutex queue vs central concurrent queue (Algorithm 2, "
      "Chase-Lev substrate) vs work stealing (cold / persistent), GraphFlow, "
      "LiveJournal-hard stand-in");

  Workload wl = build_workload(livejournal_hard_spec(scale, 8),
                               static_cast<std::uint32_t>(cli.get_int("query-size")),
                               num_queries, 0.10, seed);
  cap_stream(wl, stream_cap);

  engine::WorkerPool pool(threads);
  util::Table table({"scheduler", "makespan_ms", "cpu_ms", "steals_ok", "offloads",
                     "parks", "speedup_vs_static"});
  util::CsvWriter csv(results_path("ablation_scheduler"),
                      {"scheduler", "makespan_ms", "cpu_ms", "matches", "steals_ok",
                       "offloads", "parks"});

  const auto accumulate = [](SchedulerTotals& sum, const SchedulerTotals& part) {
    sum.makespan_ns += part.makespan_ns;
    sum.cpu_ns += part.cpu_ns;
    sum.matches += part.matches;
    sum.steals_ok += part.steals_ok;
    sum.offloads += part.offloads;
    sum.parks += part.parks;
  };

  double static_ms = 0;
  for (const char* which : {"static", "mutex-queue", "central-queue",
                            "work-stealing-cold", "work-stealing"}) {
    const std::string_view name(which);
    SchedulerTotals sum;
    for (const auto& q : wl.queries) {
      if (name == "mutex-queue") {
        MutexQueueExecutor exec(pool, 4);
        accumulate(sum, drive(wl, q, [&](const auto& alg, auto seeds) {
                     return exec.run(alg, std::move(seeds));
                   }));
      } else if (name == "central-queue") {
        engine::InnerExecutor exec(pool, 4, /*dynamic_balance=*/true);
        accumulate(sum, drive(wl, q, [&](const auto& alg, auto seeds) {
                     return exec.run(alg, std::move(seeds));
                   }));
      } else if (name == "work-stealing-cold") {
        // A fresh executor per update: cold deque rings, no recycled task
        // nodes — isolates what queue persistence buys.
        accumulate(sum, drive(wl, q, [&](const auto& alg, auto seeds) {
                     engine::StealingExecutor exec(pool, 4);
                     return exec.run(alg, std::move(seeds));
                   }));
      } else if (name == "work-stealing") {
        engine::StealingExecutor exec(pool, 4);
        accumulate(sum, drive(wl, q, [&](const auto& alg, auto seeds) {
                     return exec.run(alg, std::move(seeds));
                   }));
      } else {
        engine::InnerExecutor exec(pool, 4, /*dynamic_balance=*/false);
        accumulate(sum, drive(wl, q, [&](const auto& alg, auto seeds) {
                     return exec.run(alg, std::move(seeds));
                   }));
      }
    }
    const double ms = static_cast<double>(sum.makespan_ns) / 1e6;
    if (name == "static") static_ms = ms;
    table.row({which, util::Table::num(ms, 3),
               util::Table::num(static_cast<double>(sum.cpu_ns) / 1e6, 3),
               util::Table::num(static_cast<double>(sum.steals_ok), 0),
               util::Table::num(static_cast<double>(sum.offloads), 0),
               util::Table::num(static_cast<double>(sum.parks), 0),
               static_ms > 0 ? util::Table::num(static_ms / ms, 2) + "x" : "-"});
    csv.row({which, util::CsvWriter::num(ms, 3),
             util::CsvWriter::num(static_cast<double>(sum.cpu_ns) / 1e6, 3),
             util::CsvWriter::num(sum.matches), util::CsvWriter::num(sum.steals_ok),
             util::CsvWriter::num(sum.offloads), util::CsvWriter::num(sum.parks)});
  }

  std::puts("Scheduler ablation (total simulated makespan across the stream):");
  table.print();
  std::printf("\nCSV written to %s\n", results_path("ablation_scheduler").c_str());
  return 0;
}
