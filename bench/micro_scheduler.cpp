// Scheduler microbenchmark: isolates the runtime substrate from the search.
//
// Part 1 drives a synthetic two-level task tree (trivial per-task work)
// through the retained global mutex queue and the lock-free Chase–Lev queue
// at 1/2/4/8 threads and reports scheduler CPU cost per task — on the
// single-core CI box wall clock measures timeslicing, CPU time measures the
// actual push/pop/steal overhead, which is what the rewrite targets.
//
// Part 2 measures the persistent pool's fork/join dispatch overhead
// (WorkerPool::last_dispatch_ns) for an empty job, spinning workers vs
// park-always workers (spin budget 0), quantifying what the epoch/futex
// dispatch and the spin window buy per parallel region.
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.hpp"
#include "paracosm/task_queue.hpp"
#include "paracosm/worker_pool.hpp"
#include "util/timer.hpp"

using namespace paracosm;
using namespace paracosm::bench;

namespace {

constexpr int kSeeds = 256;
constexpr int kChildrenPerSeed = 31;
constexpr int kRounds = 6;
constexpr std::uint64_t kTasksPerRound =
    static_cast<std::uint64_t>(kSeeds) * (1 + kChildrenPerSeed);

csm::SearchTask make_task(std::uint32_t depth) {
  csm::SearchTask t;
  for (std::uint32_t i = 0; i < depth; ++i) t.assigned.push_back({i, i});
  return t;
}

/// CPU ns/task for the lock-free per-worker-deque queue.
double bench_cl_queue(unsigned threads) {
  engine::TaskQueue queue(threads, engine::QueueKnobs{.spin_iters = 64});
  std::int64_t cpu_ns = 0;
  for (int round = 0; round < kRounds; ++round) {
    for (int i = 0; i < kSeeds; ++i) queue.seed(make_task(1));
    std::vector<std::int64_t> worker_ns(threads, 0);
    std::vector<std::thread> workers;
    for (unsigned w = 0; w < threads; ++w) {
      workers.emplace_back([&, w] {
        util::ThreadCpuTimer timer;
        while (auto task = queue.pop_or_finish(w)) {
          if (task->depth() == 1)
            for (int c = 0; c < kChildrenPerSeed; ++c) queue.push(w, make_task(2));
          queue.retire();
        }
        worker_ns[w] = timer.elapsed_ns();
      });
    }
    for (auto& t : workers) t.join();
    for (const std::int64_t ns : worker_ns) cpu_ns += ns;
  }
  return static_cast<double>(cpu_ns) /
         static_cast<double>(kTasksPerRound * kRounds);
}

/// CPU ns/task for the PR-1-era global mutex queue.
double bench_mutex_queue(unsigned threads) {
  std::int64_t cpu_ns = 0;
  for (int round = 0; round < kRounds; ++round) {
    engine::MutexTaskQueue queue;
    for (int i = 0; i < kSeeds; ++i) queue.push(make_task(1));
    std::vector<std::int64_t> worker_ns(threads, 0);
    std::vector<std::thread> workers;
    for (unsigned w = 0; w < threads; ++w) {
      workers.emplace_back([&, w] {
        util::ThreadCpuTimer timer;
        while (auto task = queue.pop_or_finish()) {
          if (task->depth() == 1)
            for (int c = 0; c < kChildrenPerSeed; ++c) queue.push(make_task(2));
          queue.retire();
        }
        worker_ns[w] = timer.elapsed_ns();
      });
    }
    for (auto& t : workers) t.join();
    for (const std::int64_t ns : worker_ns) cpu_ns += ns;
  }
  return static_cast<double>(cpu_ns) /
         static_cast<double>(kTasksPerRound * kRounds);
}

/// Mean fork/join dispatch overhead for an empty parallel region.
double bench_dispatch(unsigned threads, std::uint32_t spin_iters) {
  engine::WorkerPool pool(threads, spin_iters);
  constexpr int kRegions = 1500;
  std::int64_t total = 0;
  for (int i = 0; i < kRegions; ++i) {
    pool.run([](unsigned) {});
    total += pool.last_dispatch_ns();
  }
  return static_cast<double>(total) / kRegions;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli = standard_cli("micro_scheduler",
                               "Microbenchmark: queue ns/task and pool dispatch");
  if (!cli.parse(argc, argv)) return cli.exit_code();

  print_experiment_banner(
      "Micro: scheduler substrate",
      "Task-queue CPU cost per task (mutex vs Chase-Lev) and worker-pool "
      "dispatch overhead (spin vs park-always), synthetic task tree");

  util::Table table({"metric", "variant", "threads", "ns"});
  util::CsvWriter csv(results_path("micro_scheduler"),
                      {"metric", "variant", "threads", "ns"});
  const auto row = [&](const char* metric, const char* variant, unsigned threads,
                       double ns) {
    table.row({metric, variant, std::to_string(threads), util::Table::num(ns, 1)});
    csv.row({metric, variant, util::CsvWriter::num(std::int64_t{threads}),
             util::CsvWriter::num(ns, 1)});
  };

  for (unsigned threads : {1u, 2u, 4u, 8u})
    row("cpu_per_task", "mutex-queue", threads, bench_mutex_queue(threads));
  for (unsigned threads : {1u, 2u, 4u, 8u})
    row("cpu_per_task", "cl-queue", threads, bench_cl_queue(threads));
  for (unsigned threads : {2u, 4u, 8u})
    row("dispatch", "spin", threads, bench_dispatch(threads, 1024));
  for (unsigned threads : {2u, 4u, 8u})
    row("dispatch", "park-always", threads, bench_dispatch(threads, 0));

  std::puts("Scheduler substrate micro costs:");
  table.print();
  std::printf("\nCSV written to %s\n", results_path("micro_scheduler").c_str());
  return 0;
}
