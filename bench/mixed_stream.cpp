// Deletion-workload extension: the paper's evaluation streams are
// insert-only (the Sun et al. protocol), but CSM's problem definition
// (paper Def. 2.3/2.4) covers expirations too. This bench runs mixed
// insert/delete streams — every inserted edge has a 50 % chance of being
// re-deleted later — and reports negative-match handling cost plus the
// ParaCOSM speedup on such streams (deletions classify and parallelize
// through exactly the same three-stage pipeline).
#include <cstdio>

#include "bench/bench_util.hpp"

using namespace paracosm;
using namespace paracosm::bench;

int main(int argc, char** argv) {
  util::Cli cli = standard_cli("mixed_stream",
                               "extension: insert+delete streams end to end");
  cli.option("delete-fraction", "0.5", "Share of inserted edges re-deleted");
  if (!cli.parse(argc, argv)) return cli.exit_code();

  const double scale = cli.get_double("scale");
  const auto num_queries = static_cast<std::uint32_t>(cli.get_int("queries"));
  const std::int64_t stream_cap = cli.get_int("stream");
  const std::int64_t timeout_ms = cli.get_int("timeout-ms");
  const unsigned threads = bench::resolve_threads(cli.get_int("threads"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  print_experiment_banner(
      "Extension: mixed insert/delete streams",
      "Positive + negative incremental matching over mixed streams "
      "(LiveJournal-hard stand-in), sequential vs ParaCOSM");

  Workload wl =
      build_workload(livejournal_hard_spec(scale, 8), 7, num_queries, 0.10, seed,
                     cli.get_double("delete-fraction"));
  cap_stream(wl, stream_cap);
  const Workload stripped = strip_edge_labels(wl);
  std::size_t deletions = 0;
  for (const auto& upd : wl.stream)
    if (upd.op == graph::UpdateOp::kRemoveEdge) ++deletions;
  std::printf("stream: %zu updates (%zu deletions)\n\n", wl.stream.size(), deletions);

  util::Table table({"algorithm", "seq_ms", "para_ms", "speedup", "delta_matches"});
  util::CsvWriter csv(results_path("mixed_stream"),
                      {"algorithm", "seq_ms", "para_ms", "speedup", "matches"});

  for (const auto name : csm::algorithm_names()) {
    const Workload& view = workload_for(std::string(name), wl, stripped);
    RunConfig seq;
    seq.algorithm = std::string(name);
    seq.mode = Mode::kSequential;
    seq.timeout_ms = timeout_ms;
    const AggregateResult base = run_all_queries(view, seq);
    RunConfig par = seq;
    par.mode = Mode::kFull;
    par.threads = threads;
    const AggregateResult fast = run_all_queries(view, par);
    table.row({std::string(name), util::Table::num(base.mean_ms),
               util::Table::num(fast.mean_ms),
               format_speedup(base.mean_ms, fast.mean_ms, base.success_rate > 0,
                              fast.success_rate > 0),
               std::to_string(fast.delta_matches)});
    csv.row({std::string(name), util::CsvWriter::num(base.mean_ms),
             util::CsvWriter::num(fast.mean_ms),
             util::CsvWriter::num(base.mean_ms > 0 && fast.mean_ms > 0
                                      ? base.mean_ms / fast.mean_ms
                                      : 0.0),
             util::CsvWriter::num(fast.delta_matches)});
  }

  std::puts("Mixed-stream comparison:");
  table.print();
  std::printf("\nCSV written to %s\n", results_path("mixed_stream").c_str());
  return 0;
}
