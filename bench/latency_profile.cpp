// Per-update latency profile (extension): CSM powers real-time pipelines
// (fraud alerts, recommendations), where tail latency matters as much as
// throughput. This bench measures the distribution of per-update processing
// cost — sequential vs ParaCOSM (simulated per-update makespan) — and
// reports P50/P90/P99/max, showing that inner-update parallelism compresses
// exactly the tail that single-threaded processing cannot.
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.hpp"
#include "csm/engine.hpp"
#include "paracosm/paracosm.hpp"

using namespace paracosm;
using namespace paracosm::bench;

namespace {

struct Profile {
  std::vector<double> us;  // per-update cost, microseconds

  [[nodiscard]] double percentile(double p) {
    if (us.empty()) return 0;
    std::sort(us.begin(), us.end());
    const auto idx = static_cast<std::size_t>(p * (us.size() - 1));
    return us[idx];
  }
};

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli = standard_cli("latency_profile",
                               "extension: per-update latency distribution");
  cli.option("algorithm", "graphflow", "Algorithm to profile");
  if (!cli.parse(argc, argv)) return cli.exit_code();

  const double scale = cli.get_double("scale");
  const std::int64_t stream_cap = cli.get_int("stream");
  const unsigned threads = bench::resolve_threads(cli.get_int("threads"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const std::string algorithm = cli.get("algorithm");

  print_experiment_banner(
      "Extension: per-update latency",
      "P50/P90/P99/max per-update cost, sequential vs ParaCOSM (simulated "
      "per-update makespan), " + algorithm + ", LiveJournal-hard stand-in");

  Workload wl = build_workload(livejournal_hard_spec(scale, 8), 8, 1, 0.10, seed);
  cap_stream(wl, stream_cap);
  if (wl.queries.empty()) {
    std::fprintf(stderr, "no query extracted\n");
    return 1;
  }
  const auto& q = wl.queries.front();

  Profile seq;
  {
    auto alg = csm::make_algorithm(algorithm);
    graph::DataGraph g = wl.graph;
    csm::SequentialEngine eng(*alg, q, g);
    for (const auto& upd : wl.stream) {
      util::ThreadCpuTimer t;
      eng.process(upd);
      seq.us.push_back(static_cast<double>(t.elapsed_ns()) / 1e3);
    }
  }

  // ParaCOSM cost decomposed per update: `search` is the simulated makespan
  // of the search itself (serial sections + slowest worker), `dispatch` is
  // the pool wake/join overhead measured by the worker pool — reported
  // separately so scheduler tuning (spin budgets) is visible instead of
  // being folded into per-update cost.
  Profile par_search, par_dispatch, par_total;
  {
    auto alg = csm::make_algorithm(algorithm);
    graph::DataGraph g = wl.graph;
    engine::Config cfg;
    cfg.threads = threads;
    engine::ParaCosm pc(*alg, q, g, cfg);
    for (const auto& upd : wl.stream) {
      pc.reset_accumulated_stats();
      pc.process(upd);
      const auto& st = pc.accumulated_stats();
      const double search_us = static_cast<double>(st.simulated_makespan_ns()) / 1e3;
      const double dispatch_us = static_cast<double>(st.dispatch_ns) / 1e3;
      par_search.us.push_back(search_us);
      par_dispatch.us.push_back(dispatch_us);
      par_total.us.push_back(search_us + dispatch_us);
    }
  }

  util::Table table({"metric", "sequential_us", "search_us", "dispatch_us",
                     "total_us", "reduction"});
  util::CsvWriter csv(results_path("latency_profile"),
                      {"metric", "sequential_us", "search_us", "dispatch_us",
                       "total_us"});
  const auto row = [&](const char* name, double p) {
    const double a = seq.percentile(p);
    const double s = par_search.percentile(p);
    const double d = par_dispatch.percentile(p);
    const double t = par_total.percentile(p);
    table.row({name, util::Table::num(a, 1), util::Table::num(s, 1),
               util::Table::num(d, 1), util::Table::num(t, 1),
               t > 0 ? util::Table::num(a / t, 2) + "x" : "-"});
    csv.row({name, util::CsvWriter::num(a, 1), util::CsvWriter::num(s, 1),
             util::CsvWriter::num(d, 1), util::CsvWriter::num(t, 1)});
  };
  row("p50", 0.50);
  row("p90", 0.90);
  row("p99", 0.99);
  row("max", 1.0);

  std::printf("per-update latency over %zu updates (%s, %u threads):\n",
              wl.stream.size(), algorithm.c_str(), threads);
  table.print();
  std::printf("\nCSV written to %s\n", results_path("latency_profile").c_str());
  return 0;
}
