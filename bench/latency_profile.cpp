// Per-update latency profile (extension): CSM powers real-time pipelines
// (fraud alerts, recommendations), where tail latency matters as much as
// throughput. This bench measures the distribution of per-update processing
// cost — sequential vs ParaCOSM (simulated per-update makespan) — and
// reports P50/P90/P99/max, showing that inner-update parallelism compresses
// exactly the tail that single-threaded processing cannot.
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.hpp"
#include "csm/engine.hpp"
#include "paracosm/paracosm.hpp"

using namespace paracosm;
using namespace paracosm::bench;

namespace {

struct Profile {
  std::vector<double> us;  // per-update cost, microseconds

  [[nodiscard]] double percentile(double p) {
    if (us.empty()) return 0;
    std::sort(us.begin(), us.end());
    const auto idx = static_cast<std::size_t>(p * (us.size() - 1));
    return us[idx];
  }
};

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli = standard_cli("latency_profile",
                               "extension: per-update latency distribution");
  cli.option("algorithm", "graphflow", "Algorithm to profile");
  if (!cli.parse(argc, argv)) return cli.exit_code();

  const double scale = cli.get_double("scale");
  const std::int64_t stream_cap = cli.get_int("stream");
  const auto threads = static_cast<unsigned>(cli.get_int("threads"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const std::string algorithm = cli.get("algorithm");

  print_experiment_banner(
      "Extension: per-update latency",
      "P50/P90/P99/max per-update cost, sequential vs ParaCOSM (simulated "
      "per-update makespan), " + algorithm + ", LiveJournal-hard stand-in");

  Workload wl = build_workload(livejournal_hard_spec(scale, 8), 8, 1, 0.10, seed);
  cap_stream(wl, stream_cap);
  if (wl.queries.empty()) {
    std::fprintf(stderr, "no query extracted\n");
    return 1;
  }
  const auto& q = wl.queries.front();

  Profile seq;
  {
    auto alg = csm::make_algorithm(algorithm);
    graph::DataGraph g = wl.graph;
    csm::SequentialEngine eng(*alg, q, g);
    for (const auto& upd : wl.stream) {
      util::ThreadCpuTimer t;
      eng.process(upd);
      seq.us.push_back(static_cast<double>(t.elapsed_ns()) / 1e3);
    }
  }

  Profile par;
  {
    auto alg = csm::make_algorithm(algorithm);
    graph::DataGraph g = wl.graph;
    engine::Config cfg;
    cfg.threads = threads;
    engine::ParaCosm pc(*alg, q, g, cfg);
    for (const auto& upd : wl.stream) {
      pc.reset_accumulated_stats();
      pc.process(upd);
      par.us.push_back(
          static_cast<double>(pc.accumulated_stats().simulated_makespan_ns()) / 1e3);
    }
  }

  util::Table table({"metric", "sequential_us", "paracosm_us", "reduction"});
  util::CsvWriter csv(results_path("latency_profile"),
                      {"metric", "sequential_us", "paracosm_us"});
  const auto row = [&](const char* name, double a, double b) {
    table.row({name, util::Table::num(a, 1), util::Table::num(b, 1),
               b > 0 ? util::Table::num(a / b, 2) + "x" : "-"});
    csv.row({name, util::CsvWriter::num(a, 1), util::CsvWriter::num(b, 1)});
  };
  row("p50", seq.percentile(0.50), par.percentile(0.50));
  row("p90", seq.percentile(0.90), par.percentile(0.90));
  row("p99", seq.percentile(0.99), par.percentile(0.99));
  row("max", seq.percentile(1.0), par.percentile(1.0));

  std::printf("per-update latency over %zu updates (%s, %u threads):\n",
              wl.stream.size(), algorithm.c_str(), threads);
  table.print();
  std::printf("\nCSV written to %s\n", results_path("latency_profile").c_str());
  return 0;
}
