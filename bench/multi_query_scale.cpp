// Shared multi-query evaluation at scale (ISSUE 6 / DESIGN.md §9): register
// a growing catalogue of standing queries (patterns cycled from a small
// pool, the fraud-catalogue deployment shape) and stream the same mixed
// update sequence through two engines over identical graph copies:
//
//   shared      — the three-tier shared-evaluation path (query index,
//                 grouped classification, sub-pattern sharing),
//   independent — set_shared_evaluation(false): every registration gets a
//                 private class, classified and searched on its own — the
//                 O(queries)-per-update baseline.
//
// Reported: whole-stream wall time, per-update cost, speedup, and the tier
// counters that explain it (share of per-query verdicts settled by the
// index vs grouped passes, searches served by fan-out, anchor skips). The
// per-query ΔM totals of both modes are cross-checked; any mismatch fails
// the run. Acceptance target: ≥5x lower per-update cost at 1024 queries.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "paracosm/multi_query.hpp"
#include "util/timer.hpp"

using namespace paracosm;
using namespace paracosm::bench;

namespace {

struct ModeResult {
  double wall_ms = 0.0;
  double us_per_update = 0.0;
  std::size_t classes = 0;
  bool timed_out = false;
  engine::MultiStreamResult res;
};

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::string token;
  for (const char ch : csv + ",") {
    if (ch == ',') {
      if (!token.empty()) out.push_back(token);
      token.clear();
    } else {
      token.push_back(ch);
    }
  }
  return out;
}

/// One mode at one catalogue size: fresh graph copy, `total` registrations
/// (pattern i % pool, algorithm tied to the pattern so duplicates share),
/// one timed process_stream over the whole stream.
ModeResult run_mode(const Workload& wl, const std::vector<std::string>& algs,
                    std::size_t total, bool shared, unsigned threads,
                    std::int64_t timeout_ms) {
  graph::DataGraph g = wl.graph;
  engine::Config cfg;
  cfg.threads = threads;
  engine::MultiQueryEngine eng(g, cfg);
  eng.set_shared_evaluation(shared);
  for (std::size_t i = 0; i < total; ++i) {
    const std::size_t p = i % wl.queries.size();
    eng.add_query(algs[p % algs.size()], wl.queries[p]);
  }

  util::Clock::time_point deadline{};
  if (timeout_ms > 0)
    deadline = util::Clock::now() + std::chrono::milliseconds(timeout_ms);

  ModeResult out;
  out.classes = eng.num_classes();
  const util::WallTimer timer;
  out.res = eng.process_stream(wl.stream, deadline);
  out.wall_ms = timer.elapsed_ms();
  out.timed_out = out.res.timed_out;
  if (out.res.updates_processed > 0)
    out.us_per_update = static_cast<double>(timer.elapsed_ns()) / 1e3 /
                        static_cast<double>(out.res.updates_processed);
  return out;
}

/// Byte-identical per-query ΔM between the two modes (only comparable when
/// neither run was cut by the stream deadline).
bool totals_equal(const ModeResult& a, const ModeResult& b) {
  return a.res.positive == b.res.positive && a.res.negative == b.res.negative;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli = standard_cli(
      "multi_query_scale",
      "shared vs independent per-update cost as the query catalogue grows");
  cli.option("max-queries", "1024", "Largest catalogue size in the sweep")
      .option("query-size", "5", "Vertices per query pattern")
      .option("algorithms", "graphflow",
              "Comma-separated algorithms cycled over the pattern pool")
      .option("delete-fraction", "0.3", "Share of inserted edges re-deleted");
  if (!cli.parse(argc, argv)) return cli.exit_code();

  const double scale = cli.get_double("scale");
  const auto pool = static_cast<std::uint32_t>(cli.get_int("queries"));
  const std::int64_t stream_cap = cli.get_int("stream");
  const std::int64_t timeout_ms = cli.get_int("timeout-ms");
  const unsigned threads = bench::resolve_threads(cli.get_int("threads"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const std::int64_t max_queries = cli.get_int("max-queries");
  const std::vector<std::string> algs = split_csv(cli.get("algorithms"));
  if (algs.empty() || max_queries <= 0) {
    std::fprintf(stderr, "multi_query_scale: need --algorithms and --max-queries > 0\n");
    return 2;
  }

  print_experiment_banner(
      "Shared multi-query evaluation scaling",
      "Per-update cost vs catalogue size, shared three-tier evaluation "
      "against the independent per-query baseline (ISSUE 6 / DESIGN.md §9)");

  Workload wl = build_workload(
      livejournal_hard_spec(scale, 8),
      static_cast<std::uint32_t>(cli.get_int("query-size")), pool, 0.10, seed,
      cli.get_double("delete-fraction"));
  cap_stream(wl, stream_cap);
  std::printf("stream: %zu updates, pattern pool: %zu, algorithms:", wl.stream.size(),
              wl.queries.size());
  for (const std::string& a : algs) std::printf(" %s", a.c_str());
  std::printf("\n\n");

  std::vector<std::size_t> sweep;
  for (const std::size_t q : {16u, 64u, 256u, 1024u})
    if (q <= static_cast<std::size_t>(max_queries)) sweep.push_back(q);
  if (sweep.empty()) sweep.push_back(static_cast<std::size_t>(max_queries));

  util::Table table({"queries", "classes", "shared_ms", "indep_ms", "speedup",
                     "shared_us/upd", "indep_us/upd", "idx_verdicts%", "check"});
  util::CsvWriter csv(
      results_path("multi_query_scale"),
      {"queries", "classes", "shared_ms", "indep_ms", "speedup",
       "shared_us_per_update", "indep_us_per_update", "verdicts_by_index",
       "verdicts_grouped", "group_hits", "searches_shared", "searches_skipped",
       "matches", "check"});

  bool all_ok = true;
  for (const std::size_t q : sweep) {
    const ModeResult shared = run_mode(wl, algs, q, true, threads, timeout_ms);
    const ModeResult indep = run_mode(wl, algs, q, false, threads, timeout_ms);

    const bool comparable = !shared.timed_out && !indep.timed_out;
    const bool equal = !comparable || totals_equal(shared, indep);
    all_ok = all_ok && equal;
    const std::string check = !comparable ? "timeout" : equal ? "ok" : "MISMATCH";

    const double speedup = shared.us_per_update > 0
                               ? indep.us_per_update / shared.us_per_update
                               : 0.0;
    const engine::MultiQueryStats& mq = shared.res.mq;
    const std::uint64_t verdicts = mq.verdicts_by_index + mq.verdicts_grouped;
    const double idx_pct =
        verdicts > 0 ? 100.0 * static_cast<double>(mq.verdicts_by_index) /
                           static_cast<double>(verdicts)
                     : 0.0;

    table.row({std::to_string(q), std::to_string(shared.classes),
               util::Table::num(shared.wall_ms), util::Table::num(indep.wall_ms),
               util::Table::num(speedup) + "x", util::Table::num(shared.us_per_update),
               util::Table::num(indep.us_per_update), util::Table::num(idx_pct),
               check});
    csv.row({std::to_string(q), std::to_string(shared.classes),
             util::CsvWriter::num(shared.wall_ms), util::CsvWriter::num(indep.wall_ms),
             util::CsvWriter::num(speedup),
             util::CsvWriter::num(shared.us_per_update),
             util::CsvWriter::num(indep.us_per_update),
             std::to_string(mq.verdicts_by_index),
             std::to_string(mq.verdicts_grouped), std::to_string(mq.group_hits),
             std::to_string(mq.searches_shared),
             std::to_string(mq.searches_skipped),
             std::to_string(shared.res.total_matches()), check});
  }

  std::puts("Catalogue scaling (same stream, same graph, both modes):");
  table.print();
  std::printf("\nCSV written to %s\n", results_path("multi_query_scale").c_str());
  if (!all_ok) {
    std::fprintf(stderr, "multi_query_scale: per-query ΔM mismatch between modes\n");
    return 1;
  }
  return 0;
}
