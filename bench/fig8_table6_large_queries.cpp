// Regenerates paper Figure 8 and Table 6: ParaCOSM speedup and success rate
// on large query graphs (LiveJournal stand-in, 32 threads).
//
// Paper shape to reproduce: consistent speedup across sizes 6-10, strongest
// filtering gains at small sizes; success rates improve markedly over the
// single-threaded baselines of Table 3 for large queries.
#include <cstdio>

#include "bench/bench_util.hpp"

using namespace paracosm;
using namespace paracosm::bench;

int main(int argc, char** argv) {
  util::Cli cli = standard_cli("fig8_table6_large_queries",
                               "Figure 8 + Table 6: big-query speedup & success");
  cli.option("labels", "8",
             "Vertex-label alphabet of the LiveJournal stand-in (branching-"
             "factor calibration, see bench_util.hpp)");
  // Heavier defaults than the lighter benches would blow the CI budget: the
  // whole point of this experiment is queries that flirt with the timeout.
  cli.option("queries", "3", "Query graphs per configuration");
  cli.option("stream", "1000", "Max updates taken from the stream (0 = all)");
  cli.option("timeout-ms", "1000", "Per-query whole-stream time budget");
  if (!cli.parse(argc, argv)) return cli.exit_code();

  const double scale = cli.get_double("scale");
  const auto num_queries = static_cast<std::uint32_t>(cli.get_int("queries"));
  const std::int64_t stream_cap = cli.get_int("stream");
  const std::int64_t timeout_ms = cli.get_int("timeout-ms");
  const unsigned threads = bench::resolve_threads(cli.get_int("threads"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  print_experiment_banner(
      "Figure 8 + Table 6",
      "ParaCOSM speedup (successful queries) and success-rate change on large "
      "query graphs, LiveJournal stand-in");

  util::Table fig8({"algorithm", "size", "seq_ms", "para_ms", "speedup"});
  util::Table table6({"algorithm", "size", "seq_succ_%", "para_succ_%", "delta"});
  util::CsvWriter csv(results_path("fig8_table6_large_queries"),
                      {"algorithm", "query_size", "seq_ms", "para_ms", "speedup",
                       "seq_success", "para_success"});

  for (const std::uint32_t size : {6u, 7u, 8u, 9u, 10u}) {
    Workload wl = build_workload(
        livejournal_hard_spec(scale, static_cast<std::uint32_t>(cli.get_int("labels"))),
        size, num_queries, 0.10, seed + 7 * size);
    cap_stream(wl, stream_cap);
    const Workload stripped = strip_edge_labels(wl);

    for (const auto name : csm::algorithm_names()) {
      const Workload& view = workload_for(std::string(name), wl, stripped);
      RunConfig seq;
      seq.algorithm = std::string(name);
      seq.mode = Mode::kSequential;
      seq.timeout_ms = timeout_ms;
      const AggregateResult base = run_all_queries(view, seq);

      RunConfig par = seq;
      par.mode = Mode::kFull;
      par.threads = threads;
      const AggregateResult fast = run_all_queries(view, par);

      fig8.row({std::string(name), std::to_string(size),
                util::Table::num(base.mean_ms), util::Table::num(fast.mean_ms),
                format_speedup(base.mean_ms, fast.mean_ms, base.success_rate > 0,
                               fast.success_rate > 0)});
      const double delta = fast.success_rate - base.success_rate;
      table6.row({std::string(name), std::to_string(size),
                  util::Table::num(base.success_rate, 0),
                  util::Table::num(fast.success_rate, 0),
                  (delta >= 0 ? "+" : "") + util::Table::num(delta, 0)});
      csv.row({std::string(name), std::to_string(size),
               util::CsvWriter::num(base.mean_ms), util::CsvWriter::num(fast.mean_ms),
               util::CsvWriter::num(base.mean_ms > 0 && fast.mean_ms > 0
                                        ? base.mean_ms / fast.mean_ms
                                        : 0.0),
               util::CsvWriter::num(base.success_rate),
               util::CsvWriter::num(fast.success_rate)});
    }
  }

  std::puts("Figure 8 — speedup on big query graphs (successful queries):");
  fig8.print();
  std::puts("\nTable 6 — success rate with ParaCOSM (delta vs single-threaded):");
  table6.print();
  std::printf("\nCSV written to %s\n",
              results_path("fig8_table6_large_queries").c_str());
  return 0;
}
