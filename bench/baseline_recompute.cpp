// Context experiment for the paper's Table 1: how far incremental CSM
// algorithms outrun full recomputation. The recompute column is the trusted
// oracle from src/verify (OracleMirror: re-enumerate from scratch after every
// update — the same code path the differential fuzzer trusts), so the
// baseline here and the ground truth in the tests are one implementation.
// The gap (orders of magnitude, growing with graph size) is the premise of
// the whole CSM line of work that ParaCOSM then parallelizes.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "util/timer.hpp"
#include "verify/oracle_mirror.hpp"

using namespace paracosm;
using namespace paracosm::bench;

namespace {

/// Mean per-query wall time of stepping the recompute oracle (counting mode)
/// through the whole stream — the IncIsoMatch-style cost model.
double oracle_recompute_ms(const Workload& wl) {
  double total_ms = 0;
  for (const graph::QueryGraph& q : wl.queries) {
    util::WallTimer timer;
    verify::OracleMirror oracle(q, wl.graph, /*use_edge_labels=*/true,
                                /*strict=*/false);
    for (const graph::GraphUpdate& upd : wl.stream) (void)oracle.step(upd);
    total_ms += static_cast<double>(timer.elapsed_ns()) / 1e6;
  }
  return wl.queries.empty() ? 0.0 : total_ms / static_cast<double>(wl.queries.size());
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli = standard_cli("baseline_recompute",
                               "Table 1 context: recomputation vs incremental");
  cli.option("queries", "2", "Query graphs per configuration");
  cli.option("stream", "150", "Max updates (recomputation is slow by design)");
  if (!cli.parse(argc, argv)) return cli.exit_code();

  const double scale = cli.get_double("scale");
  const auto num_queries = static_cast<std::uint32_t>(cli.get_int("queries"));
  const std::int64_t stream_cap = cli.get_int("stream");
  const std::int64_t timeout_ms = cli.get_int("timeout-ms");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  print_experiment_banner(
      "Table 1 context (recomputation baseline)",
      "Per-stream cost of from-scratch recomputation (the verify oracle) vs "
      "the incremental algorithms, Amazon stand-in");

  Workload wl = build_workload(graph::amazon_spec(scale), 5, num_queries, 0.10, seed);
  cap_stream(wl, stream_cap);

  util::Table table({"algorithm", "mean_ms", "vs_recompute"});
  util::CsvWriter csv(results_path("baseline_recompute"),
                      {"algorithm", "mean_ms", "speedup_vs_recompute"});

  const double recompute_ms = oracle_recompute_ms(wl);
  table.row({"recompute-oracle", util::Table::num(recompute_ms, 3), "1.00x"});
  csv.row({"recompute-oracle", util::CsvWriter::num(recompute_ms, 3),
           util::CsvWriter::num(1.0, 1)});

  std::vector<std::string_view> algos{"incisomatch", "graphflow", "turboflux",
                                      "symbi", "newsp"};
  for (const auto name : algos) {
    RunConfig cfg;
    cfg.algorithm = std::string(name);
    cfg.mode = Mode::kSequential;
    cfg.timeout_ms = timeout_ms;
    const AggregateResult agg = run_all_queries(wl, cfg);
    const double speedup = agg.mean_ms > 0 ? recompute_ms / agg.mean_ms : 0.0;
    table.row({std::string(name), util::Table::num(agg.mean_ms, 3),
               util::Table::num(speedup, 1) + "x"});
    csv.row({std::string(name), util::CsvWriter::num(agg.mean_ms, 3),
             util::CsvWriter::num(speedup, 1)});
  }

  std::puts("Recomputation vs incremental (single-threaded, same stream):");
  table.print();
  std::printf("\nCSV written to %s\n", results_path("baseline_recompute").c_str());
  return 0;
}
