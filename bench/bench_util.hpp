// Shared plumbing for the bench binaries: standard CLI options and the
// per-algorithm workload view (CaLiG gets the edge-label-stripped copy, as
// in the paper's evaluation protocol).
#pragma once

#include <algorithm>
#include <string>

#include "bench_common/reporting.hpp"
#include "bench_common/runner.hpp"
#include "bench_common/workload.hpp"
#include "util/cli.hpp"
#include "util/hw_topo.hpp"

namespace paracosm::bench {

/// Registers the options every bench shares.
inline util::Cli standard_cli(std::string program, std::string description) {
  util::Cli cli(std::move(program), std::move(description));
  cli.option("scale", "1.0", "Dataset size multiplier over the scaled-down defaults")
      .option("queries", "4", "Query graphs per configuration")
      .option("stream", "1200", "Max updates taken from the stream (0 = all)")
      .option("timeout-ms", "1500", "Per-query whole-stream time budget (0 = none)")
      .option("threads", "32",
              "Worker threads for parallel configurations (0 = one per CPU in "
              "the process affinity mask)")
      .option("seed", "42", "Root random seed");
  return cli;
}

/// --threads 0 means "one worker per schedulable CPU" — the affinity mask,
/// not hardware_concurrency, so taskset/cgroup-restricted runs don't
/// oversubscribe.
inline unsigned resolve_threads(std::int64_t requested) {
  return requested > 0 ? static_cast<unsigned>(requested)
                       : util::affinity_cpu_count();
}

/// Truncate the stream to the --stream budget (keeps benches CI-sized).
inline void cap_stream(Workload& wl, std::int64_t cap) {
  if (cap > 0 && wl.stream.size() > static_cast<std::size_t>(cap))
    wl.stream.resize(static_cast<std::size_t>(cap));
}

/// LiveJournal stand-in calibrated for the large-query experiments: the
/// paper's search-cost blowup is driven by the search-tree branching factor
/// (≈ hub degree / |L(V)|). At 1/250 scale the hubs are ~250x smaller, so
/// the label alphabet is reduced (default 30 -> 8) to restore the paper's
/// super-critical branching regime; every other characteristic is unchanged.
/// Measured effect: sequential cost roughly doubles per query-size step and
/// success collapses at sizes 9-10, matching Figure 4 / Table 3.
inline graph::DatasetSpec livejournal_hard_spec(double scale, std::uint32_t labels) {
  graph::DatasetSpec spec = graph::livejournal_spec(scale);
  spec.num_vertex_labels = labels;
  return spec;
}

/// The workload an algorithm actually sees: CaLiG runs on the edge-label
/// stripped copy (its original system has no edge-label matching).
inline const Workload& workload_for(const std::string& algorithm, const Workload& full,
                                    const Workload& stripped) {
  return algorithm == "calig" ? stripped : full;
}

}  // namespace paracosm::bench
