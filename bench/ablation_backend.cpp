// Ablation of the batch classification backend (DESIGN.md §11): cpu
// (pool-strided scalar classifier) vs wide (AVX2/SWAR mask kernels with
// scalar fallback) across batch sizes, reporting the crossover batch size —
// the smallest k at which the wide backend beats the cpu backend.
//
// Two phases:
//   1. classify-only microbench — both backends classify the same update
//      windows against the same snapshot; verdicts are cross-checked
//      byte-for-byte per window.
//   2. whole-engine cross-check — full process_stream runs per backend must
//      produce identical match totals (the safe-batch equivalence claim).
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "paracosm/batch_backend.hpp"

using namespace paracosm;
using namespace paracosm::bench;

namespace {

[[nodiscard]] double time_classify_ns_per_update(
    engine::BatchBackend& backend, std::span<const graph::GraphUpdate> stream,
    unsigned k, std::vector<engine::UpdateClass>& verdicts) {
  engine::ParallelStats stats;
  std::uint64_t lanes = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < stream.size(); i += k) {
    const std::size_t count = std::min<std::size_t>(k, stream.size() - i);
    backend.classify_batch(stream.subspan(i, count),
                           std::span(verdicts).subspan(i, count), stats);
    lanes += count;
  }
  const auto t1 = std::chrono::steady_clock::now();
  if (lanes == 0) return 0.0;
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                 .count()) /
         static_cast<double>(lanes);
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli = standard_cli("ablation_backend",
                               "Ablation: cpu vs wide batch backend crossover");
  cli.option("algorithm", "newsp", "Algorithm to ablate")
      .option("reps", "3", "Timing repetitions (best-of)");
  if (!cli.parse(argc, argv)) return cli.exit_code();

  const double scale = cli.get_double("scale");
  const auto num_queries = static_cast<std::uint32_t>(cli.get_int("queries"));
  const std::int64_t stream_cap = cli.get_int("stream");
  const unsigned threads = bench::resolve_threads(cli.get_int("threads"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const auto reps = static_cast<unsigned>(std::max<std::int64_t>(1, cli.get_int("reps")));
  const std::string algorithm = cli.get("algorithm");

  print_experiment_banner(
      "Ablation: batch backend (cpu vs wide)",
      "Classify-only ns/update vs batch size k, " + algorithm +
          " (Orkut stand-in); crossover = smallest k where wide wins");

  Workload wl = build_workload(graph::orkut_spec(scale), 6, num_queries, 0.10, seed);
  cap_stream(wl, stream_cap);
  if (algorithm == "calig") wl = strip_edge_labels(wl);

  util::Table table({"batch_k", "backend", "ns_per_update", "resolved_wide_pct",
                     "verdict_diffs"});
  util::CsvWriter csv(results_path("ablation_backend"),
                      {"batch_k", "backend", "ns_per_update",
                       "resolved_wide_pct", "verdict_diffs"});

  // --- Phase 1: classify-only microbench on the first query ------------
  const graph::QueryGraph& q = wl.queries.front();
  auto alg = csm::make_algorithm(algorithm);
  if (!alg) {
    std::fprintf(stderr, "unknown algorithm: %s\n", algorithm.c_str());
    return 2;
  }
  graph::DataGraph g = wl.graph;
  alg->attach(q, g);
  const engine::UpdateClassifier classifier(q, g, *alg);
  engine::WorkerPool pool(threads);
  util::StripedLocks<64> locks;
  const engine::BackendBind bind{&q, &g, alg.get(), &classifier, &pool, &locks};
  auto cpu = engine::make_batch_backend(engine::BatchBackendKind::kCpu, bind);
  auto wide = engine::make_batch_backend(engine::BatchBackendKind::kWide, bind);

  std::vector<engine::UpdateClass> vc(wl.stream.size());
  std::vector<engine::UpdateClass> vw(wl.stream.size());
  long crossover = -1;
  for (const unsigned k : {8u, 32u, 64u, 128u, 512u, 2048u}) {
    double cpu_ns = 0, wide_ns = 0;
    for (unsigned r = 0; r < reps; ++r) {
      const double c = time_classify_ns_per_update(*cpu, wl.stream, k, vc);
      const double w = time_classify_ns_per_update(*wide, wl.stream, k, vw);
      cpu_ns = r == 0 ? c : std::min(cpu_ns, c);
      wide_ns = r == 0 ? w : std::min(wide_ns, w);
    }
    // Both arms must agree on every single verdict.
    std::uint64_t diffs = 0;
    for (std::size_t i = 0; i < vc.size(); ++i)
      if (vc[i] != vw[i]) ++diffs;

    wide->reset_stats();
    engine::ParallelStats scratch;
    for (std::size_t i = 0; i < wl.stream.size(); i += k) {
      const std::size_t count = std::min<std::size_t>(k, wl.stream.size() - i);
      wide->classify_batch(std::span(wl.stream).subspan(i, count),
                           std::span(vw).subspan(i, count), scratch);
    }
    const engine::BatchBackendStats& ws = wide->stats();
    const double resolved_pct =
        ws.lanes ? 100.0 * static_cast<double>(ws.wide_resolved()) /
                       static_cast<double>(ws.lanes)
                 : 0.0;

    table.row({std::to_string(k), "cpu", util::Table::num(cpu_ns, 1), "-",
               std::to_string(diffs)});
    table.row({std::to_string(k), "wide", util::Table::num(wide_ns, 1),
               util::Table::num(resolved_pct, 1), std::to_string(diffs)});
    csv.row({std::to_string(k), "cpu", util::CsvWriter::num(cpu_ns, 1), "0",
             util::CsvWriter::num(diffs)});
    csv.row({std::to_string(k), "wide", util::CsvWriter::num(wide_ns, 1),
             util::CsvWriter::num(resolved_pct, 1), util::CsvWriter::num(diffs)});
    if (diffs != 0) {
      std::fprintf(stderr, "FATAL: %llu verdict diffs at k=%u\n",
                   static_cast<unsigned long long>(diffs), k);
      return 1;
    }
    if (crossover < 0 && wide_ns < cpu_ns) crossover = static_cast<long>(k);
  }

  std::puts("Backend classification ablation:");
  table.print();
  if (crossover >= 0)
    std::printf("\ncrossover: wide beats cpu from batch_k >= %ld\n", crossover);
  else
    std::puts("\ncrossover: none in the swept range (cpu wins everywhere)");

  // --- Phase 2: whole-engine differential (identical match totals) -----
  std::puts("\nWhole-engine cross-check (identical match totals required):");
  util::Table etable({"backend", "delta_matches", "wall_ms", "wide_lanes",
                      "wide_resolved", "scalar_fallbacks"});
  std::uint64_t totals[2] = {0, 0};
  int arm = 0;
  for (const auto kind :
       {engine::BatchBackendKind::kCpu, engine::BatchBackendKind::kWide}) {
    double wall_ms = 0;
    std::uint64_t dm = 0, wlanes = 0, wres = 0, wfall = 0;
    for (const auto& query : wl.queries) {
      auto a = csm::make_algorithm(algorithm);
      graph::DataGraph g2 = wl.graph;
      engine::Config cfg;
      cfg.threads = threads;
      cfg.batch_backend = kind;
      engine::ParaCosm pc(*a, query, g2, cfg);
      const engine::StreamResult sr = pc.process_stream(wl.stream);
      dm += sr.delta_matches();
      wall_ms += static_cast<double>(sr.wall_ns) / 1e6;
      wlanes += sr.backend_wide.lanes;
      wres += sr.backend_wide.wide_resolved();
      wfall += sr.backend_wide.scalar_fallbacks;
    }
    totals[arm++] = dm;
    etable.row({kind == engine::BatchBackendKind::kCpu ? "cpu" : "wide",
                std::to_string(dm), util::Table::num(wall_ms, 3),
                std::to_string(wlanes), std::to_string(wres),
                std::to_string(wfall)});
  }
  etable.print();
  if (totals[0] != totals[1]) {
    std::fprintf(stderr, "FATAL: match totals diverge (cpu=%llu wide=%llu)\n",
                 static_cast<unsigned long long>(totals[0]),
                 static_cast<unsigned long long>(totals[1]));
    return 1;
  }
  std::printf("match totals identical across backends: %llu\n",
              static_cast<unsigned long long>(totals[0]));
  std::printf("\nCSV written to %s\n", results_path("ablation_backend").c_str());
  return 0;
}
