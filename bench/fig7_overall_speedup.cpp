// Regenerates paper Figure 7: speedup of ParaCOSM (32 threads) over the
// original single-threaded algorithms, per dataset × algorithm.
//
// Paper shape to reproduce: every algorithm accelerates on every dataset;
// GraphFlow/TurboFlux gain the most; LSBench gains least (lowest average
// degree -> queue management overhead); CaLiG times out on LSBench (no
// edge-label support on an edge-labeled dataset).
#include <cstdio>

#include "bench/bench_util.hpp"

using namespace paracosm;
using namespace paracosm::bench;

int main(int argc, char** argv) {
  util::Cli cli = standard_cli("fig7_overall_speedup",
                               "Figure 7: ParaCOSM speedup per dataset/algorithm");
  cli.option("query-size", "6", "Query graph size");
  if (!cli.parse(argc, argv)) return cli.exit_code();

  const double scale = cli.get_double("scale");
  const auto num_queries = static_cast<std::uint32_t>(cli.get_int("queries"));
  const std::int64_t stream_cap = cli.get_int("stream");
  const std::int64_t timeout_ms = cli.get_int("timeout-ms");
  const unsigned threads = bench::resolve_threads(cli.get_int("threads"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const auto qsize = static_cast<std::uint32_t>(cli.get_int("query-size"));

  print_experiment_banner(
      "Figure 7",
      "Speedup of ParaCOSM (" + std::to_string(threads) +
          " threads, simulated makespan) vs single-threaded, per dataset. TO = "
          "all queries timed out.");

  util::Table table({"dataset", "graphflow", "turboflux", "symbi", "calig", "newsp"});
  util::CsvWriter csv(results_path("fig7_overall_speedup"),
                      {"dataset", "algorithm", "seq_ms", "para_ms", "speedup",
                       "seq_success", "para_success"});

  for (const auto& spec : graph::all_dataset_specs(scale)) {
    Workload wl = build_workload(spec, qsize, num_queries, 0.10,
                                 seed + spec.num_vertices);
    cap_stream(wl, stream_cap);
    const Workload stripped = strip_edge_labels(wl);

    std::vector<std::string> row{spec.name};
    for (const auto name : csm::algorithm_names()) {
      const Workload& view = workload_for(std::string(name), wl, stripped);
      RunConfig seq;
      seq.algorithm = std::string(name);
      seq.mode = Mode::kSequential;
      seq.timeout_ms = timeout_ms;
      const AggregateResult base = run_all_queries(view, seq);

      RunConfig par = seq;
      par.mode = Mode::kFull;
      par.threads = threads;
      const AggregateResult fast = run_all_queries(view, par);

      const bool base_ok = base.success_rate > 0;
      const bool fast_ok = fast.success_rate > 0;
      row.push_back(format_speedup(base.mean_ms, fast.mean_ms, base_ok, fast_ok));
      csv.row({spec.name, std::string(name), util::CsvWriter::num(base.mean_ms),
               util::CsvWriter::num(fast.mean_ms),
               util::CsvWriter::num(fast.mean_ms > 0 && base_ok && fast_ok
                                        ? base.mean_ms / fast.mean_ms
                                        : 0.0),
               util::CsvWriter::num(base.success_rate),
               util::CsvWriter::num(fast.success_rate)});
    }
    table.row(std::move(row));
  }

  std::puts("Figure 7 — ParaCOSM speedup over single-threaded baselines:");
  table.print();
  std::printf("\nCSV written to %s\n", results_path("fig7_overall_speedup").c_str());
  return 0;
}
