// Regenerates paper Figure 10: CDF of per-thread execution time for the
// load-balanced (dynamic task re-splitting) vs unbalanced (static seed
// partition) inner-update executor, GraphFlow, 32 threads.
//
// Paper shape to reproduce: without balancing, thread times spread widely
// (some finish early, stragglers run for much longer); with balancing the
// distribution is tight around the mean, cutting total search time.
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.hpp"

using namespace paracosm;
using namespace paracosm::bench;

namespace {

std::vector<std::int64_t> thread_times(const Workload& wl, unsigned threads,
                                       bool balanced, std::int64_t timeout_ms) {
  std::vector<std::int64_t> totals(threads, 0);
  for (const auto& q : wl.queries) {
    RunConfig cfg;
    cfg.algorithm = "graphflow";
    cfg.mode = Mode::kInnerOnly;
    cfg.threads = threads;
    cfg.dynamic_balance = balanced;
    cfg.timeout_ms = timeout_ms;
    const RunResult r = run_stream(wl, q, cfg);
    for (std::size_t i = 0; i < r.worker_busy_ns.size() && i < totals.size(); ++i)
      totals[i] += r.worker_busy_ns[i];
  }
  std::sort(totals.begin(), totals.end());
  return totals;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli = standard_cli("fig10_load_balance",
                               "Figure 10: per-thread time CDF, balanced vs not");
  if (!cli.parse(argc, argv)) return cli.exit_code();

  const double scale = cli.get_double("scale");
  const auto num_queries = static_cast<std::uint32_t>(cli.get_int("queries"));
  const std::int64_t stream_cap = cli.get_int("stream");
  const std::int64_t timeout_ms = cli.get_int("timeout-ms");
  const unsigned threads = bench::resolve_threads(cli.get_int("threads"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  print_experiment_banner(
      "Figure 10",
      "CDF of per-thread execution time (CPU), GraphFlow with " +
          std::to_string(threads) + " threads, load-balanced vs unbalanced");

  // Calibrated hard variant: skewed, heavy search trees are exactly what
  // the load-balancing comparison needs (see bench_util.hpp).
  Workload wl = build_workload(livejournal_hard_spec(scale, 8), 7, num_queries, 0.10,
                               seed);
  cap_stream(wl, stream_cap);

  const auto balanced = thread_times(wl, threads, true, timeout_ms);
  const auto unbalanced = thread_times(wl, threads, false, timeout_ms);

  util::Table table({"cdf_%", "balanced_ms", "unbalanced_ms"});
  util::CsvWriter csv(results_path("fig10_load_balance"),
                      {"cdf_percent", "balanced_ms", "unbalanced_ms"});
  for (unsigned i = 0; i < threads; ++i) {
    const double pct = 100.0 * (i + 1) / threads;
    const double bal = static_cast<double>(balanced[i]) / 1e6;
    const double unb = static_cast<double>(unbalanced[i]) / 1e6;
    table.row({util::Table::num(pct, 0), util::Table::num(bal, 3),
               util::Table::num(unb, 3)});
    csv.row({util::CsvWriter::num(pct, 0), util::CsvWriter::num(bal, 3),
             util::CsvWriter::num(unb, 3)});
  }

  const auto spread = [](const std::vector<std::int64_t>& v) {
    return v.front() > 0 ? static_cast<double>(v.back()) / static_cast<double>(v.front())
                         : 0.0;
  };
  std::puts("Figure 10 — sorted per-thread CPU time (CDF):");
  table.print();
  std::printf("\nmax/min thread-time spread: balanced %.2fx, unbalanced %.2fx\n",
              spread(balanced), spread(unbalanced));
  std::printf("CSV written to %s\n", results_path("fig10_load_balance").c_str());
  return 0;
}
