// Ablation of the topology-aware victim order (DESIGN.md §10): the PR-2
// flat randomized steal ring vs the distance-tiered sweep (SMT sibling ->
// same NUMA node -> remote, with exponential remote back-off) under an
// *emulated* two-node topology, so the policy difference is measurable on
// any CI box regardless of its real shape. Identical pool, identical
// updates, identical traversal code — only the victim order differs; the
// match streams are byte-identical by construction (test_scheduler asserts
// it), so the CSV compares cost only: simulated makespan and where the
// steals landed.
#include <cstdio>
#include <string>

#include "bench/bench_util.hpp"
#include "paracosm/steal_executor.hpp"
#include "paracosm/task_queue.hpp"
#include "paracosm/worker_pool.hpp"
#include "util/hw_topo.hpp"

using namespace paracosm;
using namespace paracosm::bench;

namespace {

struct TopoTotals {
  std::int64_t makespan_ns = 0;
  std::int64_t cpu_ns = 0;
  std::uint64_t matches = 0;
  std::uint64_t steals_ok = 0;
  std::uint64_t steals_local = 0;
  std::uint64_t steals_same_node = 0;
  std::uint64_t steals_remote = 0;

  [[nodiscard]] double remote_share() const {
    return steals_ok > 0
               ? static_cast<double>(steals_remote) / static_cast<double>(steals_ok)
               : 0.0;
  }
};

TopoTotals drive(const Workload& wl, const graph::QueryGraph& q,
                 engine::StealingExecutor& exec) {
  TopoTotals totals;
  auto alg = csm::make_algorithm("graphflow");
  graph::DataGraph g = wl.graph;
  alg->attach(q, g);
  for (const auto& upd : wl.stream) {
    if (!upd.is_edge_op()) continue;
    if (!g.add_edge(upd.u, upd.v, upd.label)) continue;
    alg->on_edge_inserted(upd);
    std::vector<csm::SearchTask> seeds;
    alg->seeds(upd, seeds);
    if (seeds.empty()) continue;
    const engine::InnerRunResult r = exec.run(*alg, seeds, {}, nullptr);
    totals.makespan_ns += r.stats.simulated_makespan_ns();
    totals.cpu_ns += r.stats.sequential_equivalent_ns();
    totals.matches += r.matches;
    totals.steals_ok += r.stats.total_steals_succeeded();
    totals.steals_local += r.stats.total_steals_local();
    totals.steals_same_node += r.stats.total_steals_same_node();
    totals.steals_remote += r.stats.total_steals_remote();
  }
  return totals;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli = standard_cli(
      "ablation_topology",
      "Ablation: flat randomized steal ring vs distance-tiered victim order");
  cli.option("query-size", "8",
             "Query graph size (8 = the heavy-tailed regime where stealing "
             "dominates)")
      .option("numa-nodes", "2", "Emulated NUMA nodes the workers divide into");
  if (!cli.parse(argc, argv)) return cli.exit_code();

  const double scale = cli.get_double("scale");
  const auto num_queries = static_cast<std::uint32_t>(cli.get_int("queries"));
  const std::int64_t stream_cap = cli.get_int("stream");
  const unsigned threads = bench::resolve_threads(cli.get_int("threads"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const auto nodes =
      std::max(1u, static_cast<unsigned>(cli.get_int("numa-nodes")));

  print_experiment_banner(
      "Ablation: topology-aware stealing",
      "Flat randomized victim ring (PR 2) vs SMT/node/remote-tiered sweep "
      "with remote back-off, emulated multi-node topology, GraphFlow, "
      "LiveJournal-hard stand-in");

  Workload wl = build_workload(livejournal_hard_spec(scale, 8),
                               static_cast<std::uint32_t>(cli.get_int("query-size")),
                               num_queries, 0.10, seed);
  cap_stream(wl, stream_cap);

  // Policy-only emulated topology (never pins): `threads` workers spread
  // across `nodes` synthetic NUMA nodes. Both arms share the pool, so the
  // distance matrix — and therefore the per-distance accounting — is
  // identical; only the sweep order differs.
  const util::HwTopology topo =
      util::HwTopology::emulated(nodes, (threads + nodes - 1) / nodes);
  engine::PoolOptions popts;
  popts.topology = &topo;
  engine::WorkerPool pool(threads, popts);

  engine::QueueKnobs flat_knobs;
  flat_knobs.victims = &pool.victim_table();  // prices distances, flat order
  flat_knobs.topo_order = false;
  engine::QueueKnobs topo_knobs;
  topo_knobs.victims = &pool.victim_table();
  topo_knobs.topo_order = true;

  util::Table table({"victim_order", "makespan_ms", "cpu_ms", "steals_ok",
                     "local", "same_node", "remote", "remote_share"});
  util::CsvWriter csv(results_path("topology_before_after"),
                      {"victim_order", "threads", "numa_nodes", "makespan_ms",
                       "cpu_ms", "matches", "steals_ok", "steals_local",
                       "steals_same_node", "steals_remote", "remote_share"});

  struct Arm {
    const char* name;
    engine::StealingExecutor* exec;
    TopoTotals* sum;
  };
  engine::StealingExecutor flat_exec(pool, 4, flat_knobs);
  engine::StealingExecutor topo_exec(pool, 4, topo_knobs);
  TopoTotals flat_sum, topo_sum;
  const Arm arms[] = {{"flat", &flat_exec, &flat_sum},
                      {"topo", &topo_exec, &topo_sum}};
  // Interleave the arms query-by-query so slow drift in background machine
  // load lands on both sides instead of biasing whichever arm ran last.
  for (const auto& q : wl.queries) {
    for (const Arm& arm : arms) {
      const TopoTotals part = drive(wl, q, *arm.exec);
      arm.sum->makespan_ns += part.makespan_ns;
      arm.sum->cpu_ns += part.cpu_ns;
      arm.sum->matches += part.matches;
      arm.sum->steals_ok += part.steals_ok;
      arm.sum->steals_local += part.steals_local;
      arm.sum->steals_same_node += part.steals_same_node;
      arm.sum->steals_remote += part.steals_remote;
    }
  }
  for (const Arm& arm : arms) {
    const double ms = static_cast<double>(arm.sum->makespan_ns) / 1e6;
    table.row({arm.name, util::Table::num(ms, 3),
               util::Table::num(static_cast<double>(arm.sum->cpu_ns) / 1e6, 3),
               util::Table::num(static_cast<double>(arm.sum->steals_ok), 0),
               util::Table::num(static_cast<double>(arm.sum->steals_local), 0),
               util::Table::num(static_cast<double>(arm.sum->steals_same_node), 0),
               util::Table::num(static_cast<double>(arm.sum->steals_remote), 0),
               util::Table::num(arm.sum->remote_share(), 4)});
    csv.row({arm.name, util::CsvWriter::num(std::uint64_t{threads}),
             util::CsvWriter::num(std::uint64_t{nodes}),
             util::CsvWriter::num(ms, 3),
             util::CsvWriter::num(static_cast<double>(arm.sum->cpu_ns) / 1e6, 3),
             util::CsvWriter::num(arm.sum->matches),
             util::CsvWriter::num(arm.sum->steals_ok),
             util::CsvWriter::num(arm.sum->steals_local),
             util::CsvWriter::num(arm.sum->steals_same_node),
             util::CsvWriter::num(arm.sum->steals_remote),
             util::CsvWriter::num(arm.sum->remote_share(), 4)});
  }

  std::puts("Topology-aware stealing ablation (emulated multi-node):");
  table.print();

  // Self-check against the acceptance bar (only meaningful once stealing is
  // actually exercised — tiny smoke runs may see almost none).
  if (topo_sum.steals_ok >= 100 && flat_sum.remote_share() > 0) {
    const double reduction = topo_sum.remote_share() > 0
                                 ? flat_sum.remote_share() / topo_sum.remote_share()
                                 : 999.0;
    const double flat_ms = static_cast<double>(flat_sum.makespan_ns) / 1e6;
    const double topo_ms = static_cast<double>(topo_sum.makespan_ns) / 1e6;
    std::printf(
        "\nremote-steal share: flat %.4f -> topo %.4f (%.2fx reduction); "
        "makespan %.3f ms -> %.3f ms (%+.2f%%)\n",
        flat_sum.remote_share(), topo_sum.remote_share(), reduction, flat_ms,
        topo_ms, flat_ms > 0 ? (topo_ms - flat_ms) / flat_ms * 100.0 : 0.0);
    if (reduction < 2.0)
      std::puts("WARNING: remote-steal reduction below the 2x acceptance bar");
  } else {
    std::puts("\n(too few steals for a meaningful remote-share comparison)");
  }
  if (flat_sum.matches != topo_sum.matches) {
    std::puts("ERROR: match totals diverged between victim orders");
    return 1;
  }
  std::printf("\nCSV written to %s\n", results_path("topology_before_after").c_str());
  return 0;
}
