// Adaptive-control ablation (DESIGN.md §13): the feedback plane vs a static
// (batch k × SPLIT_DEPTH) grid on a deliberately bursty mixed stream.
//
// The stream alternates regimes so that no single static configuration is
// right everywhere: calm phases of fresh-edge inserts (safe-heavy — a large
// batch cut amortizes classification) and churn bursts that insert/delete/
// re-insert the same edges back to back (endpoint conflicts cut the strict
// safe prefix to ~1, so a large cut wastes O(k) classification per update
// advanced). The adaptive arm starts from the engine defaults and lets the
// control plane retune the batch cut and split depth from per-epoch signals;
// every static arm pins one grid point. All arms share the engine's default
// batch backend so the gate isolates the controllers, not backend choice —
// the wide-cutoff controller (incl. its exploration probes) is pinned by
// tests/test_control.cpp and exercised under kAuto by the --control fuzz
// lane instead.
//
// Every arm must report byte-identical ΔM — tuning changes when/how work
// happens, never what is computed — and the binary exits non-zero on any
// mismatch. With --gate it also hard-fails when the adaptive arm's simulated
// makespan regresses more than 5% against the best static arm (the CI
// control-ablation job); the generic bench smoke runs without --gate since
// tiny --stream budgets leave the controllers too few epochs to converge.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "control/control_plane.hpp"

using namespace paracosm;
using namespace paracosm::bench;

namespace {

/// Interleave calm insert phases with insert/delete/re-insert churn bursts.
/// Input is the workload's held-out insert stream; output is a valid mixed
/// stream (every delete targets an edge inserted earlier in the stream).
std::vector<graph::GraphUpdate> make_bursty_stream(
    const std::vector<graph::GraphUpdate>& inserts, std::size_t phase_len) {
  std::vector<graph::GraphUpdate> out;
  out.reserve(inserts.size() * 2);
  std::size_t i = 0;
  bool churn = false;
  while (i < inserts.size()) {
    const std::size_t end = std::min(inserts.size(), i + phase_len);
    if (!churn) {
      // Calm phase: fresh inserts, mostly safe / certifiable.
      for (std::size_t j = i; j < end; ++j) out.push_back(inserts[j]);
    } else {
      // Churn burst: insert, delete, re-insert the same edge back to back.
      // Consecutive ops on one edge trip the strict endpoint-conflict rule,
      // so safe prefixes collapse and big batch cuts become pure overhead.
      for (std::size_t j = i; j < end; ++j) {
        const graph::GraphUpdate& e = inserts[j];
        out.push_back(e);
        out.push_back(graph::GraphUpdate::remove_edge(e.u, e.v));
        out.push_back(e);
      }
    }
    churn = !churn;
    i = end;
  }
  return out;
}

struct ArmResult {
  double makespan_ms = 0;
  double p99_us = 0;
  std::uint64_t batches = 0;
  std::uint64_t decisions = 0;
  std::uint64_t certified = 0;
  std::uint64_t positive = 0;
  std::uint64_t negative = 0;
  std::uint32_t ok = 0;  ///< queries that finished inside the timeout
};

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli = standard_cli("ablation_adaptive",
                               "Ablation: feedback control vs static tuning");
  cli.option("algorithm", "graphflow",
             "Algorithm to ablate (index-free engages the invariant stage)")
      .option("burst", "256", "Updates per calm/churn phase of the stream")
      .option("epoch-batches", "4", "Engine batches per control epoch")
      .option("reps", "5",
              "Measured repetitions per arm; min-of-reps is reported "
              "(the least-noise estimator, as in the obs-overhead gate)")
      .flag("gate",
            "Hard-fail if the adaptive arm's makespan regresses >5% "
            "against the best static arm (CI control-ablation job)")
      .flag("verbose", "Per-repetition adaptive-arm controller diagnostics");
  if (!cli.parse(argc, argv)) return cli.exit_code();

  const double scale = cli.get_double("scale");
  const auto num_queries = static_cast<std::uint32_t>(cli.get_int("queries"));
  const std::int64_t stream_cap = cli.get_int("stream");
  const std::int64_t timeout_ms = cli.get_int("timeout-ms");
  const unsigned threads = bench::resolve_threads(cli.get_int("threads"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const std::string algorithm = cli.get("algorithm");
  const auto phase_len =
      static_cast<std::size_t>(std::max<std::int64_t>(1, cli.get_int("burst")));

  print_experiment_banner(
      "Ablation: adaptive control vs static tuning",
      "Feedback plane vs (batch k x split depth) grid on a bursty mixed "
      "stream, " + algorithm + " (Amazon stand-in)");

  Workload wl = build_workload(graph::amazon_spec(scale), 5, num_queries, 0.10, seed);
  cap_stream(wl, stream_cap);
  if (algorithm == "calig") wl = strip_edge_labels(wl);
  const std::vector<graph::GraphUpdate> stream =
      make_bursty_stream(wl.stream, phase_len);
  std::printf("stream: %zu updates (%zu inserts reshaped, phase=%zu)\n\n",
              stream.size(), wl.stream.size(), phase_len);

  struct Arm {
    std::string name;
    unsigned batch_k = 0;      // 0 = threads (the engine default)
    std::uint32_t split = 3;
    bool adaptive = false;
  };
  std::vector<Arm> arms;
  for (const unsigned k : {1u, 4u, 16u, 64u})
    for (const std::uint32_t d : {1u, 3u, 6u})
      arms.push_back({"static_k" + std::to_string(k) + "_d" + std::to_string(d),
                      k, d, false});
  arms.push_back({"adaptive", 0, 4, true});

  util::Table table({"arm", "makespan_ms", "p99_batch_us", "batches",
                     "decisions", "certified", "delta_matches"});
  util::CsvWriter csv(results_path("ablation_adaptive"),
                      {"arm", "batch_k", "split_depth", "makespan_ms",
                       "p99_batch_us", "batches", "decisions", "certified",
                       "delta_matches"});

  const auto reps = static_cast<std::uint32_t>(
      std::max<std::int64_t>(1, cli.get_int("reps")));
  std::vector<ArmResult> results(arms.size());
  // Min-of-reps, interleaved: each repetition visits every arm once before
  // any arm repeats, so slow machine drift (thermal throttling, background
  // load) lands on all arms roughly equally instead of penalizing whichever
  // arm happens to run last; the least-noise repetition stands for the arm
  // (counters are identical across reps).
  for (std::uint32_t rep = 0; rep < reps; ++rep) {
    for (std::size_t a = 0; a < arms.size(); ++a) {
      const Arm& arm = arms[a];
      ArmResult& r = results[a];
      double makespan_ms = 0;
      obs::Histogram batch_hist;
      std::uint64_t batches = 0, certified = 0, decisions = 0;
      std::uint64_t positive = 0, negative = 0;
      std::uint32_t ok = 0;
      for (const auto& q : wl.queries) {
        auto alg = csm::make_algorithm(algorithm);
        graph::DataGraph g = wl.graph;
        engine::Config cfg;
        cfg.threads = threads;
        // The adaptive arm starts from the engine's effective defaults
        // (k = threads) so the controllers, not the starting point, are
        // what the comparison measures.
        cfg.batch_size = arm.adaptive ? threads : arm.batch_k;
        cfg.split_depth = arm.split;
        // Backend stays at the engine default in every arm (see header):
        // the simulated-makespan metric charges consumer-thread time as
        // serial, so mixing backends across arms would measure routing
        // placement, not the controllers under test.
        if (arm.adaptive) cfg.invariant_stage = true;
        engine::ParaCosm pc(*alg, q, g, cfg);
        control::ControlPlane plane(pc.tuning(), [&] {
          control::ControlPlaneOptions o;
          o.epoch_batches =
              static_cast<std::uint32_t>(std::max<std::int64_t>(
                  1, cli.get_int("epoch-batches")));
          return o;
        }());
        if (arm.adaptive) pc.attach_control(&plane);
        const auto deadline =
            timeout_ms > 0
                ? util::Clock::now() + std::chrono::milliseconds(timeout_ms)
                : util::Clock::time_point{};
        const engine::StreamResult sr = pc.process_stream(stream, deadline);
        if (sr.timed_out) continue;
        ++ok;
        makespan_ms +=
            static_cast<double>(sr.stats.simulated_makespan_ns()) / 1e6;
        batch_hist.merge(sr.batch_latency);
        batches += sr.batches;
        certified += sr.invariant.batches_certified;
        positive += sr.positive;
        negative += sr.negative;
        if (arm.adaptive) decisions += plane.stats().decisions;
        if (arm.adaptive && cli.get_bool("verbose")) {
          std::printf(
              "  adaptive rep %u: final k=%u split=%u cutoff=%u | batch "
              "g%llu/s%llu split g%llu/s%llu wide g%llu/s%llu | cpu_b=%llu "
              "wide_b=%llu cert=%llu makespan=%.3fms\n",
              rep, pc.tuning().batch_size(), pc.tuning().split_depth(),
              pc.tuning().wide_auto_cutoff(),
              static_cast<unsigned long long>(plane.batch_controller().stats().grows),
              static_cast<unsigned long long>(plane.batch_controller().stats().shrinks),
              static_cast<unsigned long long>(plane.split_controller().stats().grows),
              static_cast<unsigned long long>(plane.split_controller().stats().shrinks),
              static_cast<unsigned long long>(plane.wide_controller().stats().grows),
              static_cast<unsigned long long>(plane.wide_controller().stats().shrinks),
              static_cast<unsigned long long>(sr.backend_cpu.batches),
              static_cast<unsigned long long>(sr.backend_wide.batches),
              static_cast<unsigned long long>(sr.invariant.batches_certified),
              static_cast<double>(sr.stats.simulated_makespan_ns()) / 1e6);
        }
      }
      if (ok == 0) continue;
      makespan_ms /= ok;
      const double p99_us =
          batch_hist.count() > 0
              ? static_cast<double>(batch_hist.quantile(99.0)) / 1e3
              : 0.0;
      if (r.ok == 0 || makespan_ms < r.makespan_ms) {
        r.makespan_ms = makespan_ms;
        r.batches = batches;
        r.certified = certified;
        r.decisions = decisions;
        r.positive = positive;
        r.negative = negative;
      }
      if (r.ok == 0 || p99_us < r.p99_us) r.p99_us = p99_us;
      r.ok = std::max(r.ok, ok);
    }
  }
  for (std::size_t a = 0; a < arms.size(); ++a) {
    const Arm& arm = arms[a];
    const ArmResult& r = results[a];
    if (r.ok == 0) continue;
    table.row({arm.name, util::Table::num(r.makespan_ms, 3),
               util::Table::num(r.p99_us, 1), std::to_string(r.batches),
               std::to_string(r.decisions), std::to_string(r.certified),
               std::to_string(r.positive + r.negative)});
    csv.row({arm.name, std::to_string(arm.batch_k), std::to_string(arm.split),
             util::CsvWriter::num(r.makespan_ms, 3),
             util::CsvWriter::num(r.p99_us, 1), util::CsvWriter::num(r.batches),
             util::CsvWriter::num(r.decisions), util::CsvWriter::num(r.certified),
             util::CsvWriter::num(r.positive + r.negative)});
  }

  std::puts("Adaptive-control ablation:");
  table.print();
  std::printf("\nCSV written to %s\n", results_path("ablation_adaptive").c_str());

  // Correctness invariance: every arm that finished must agree on ΔM.
  const ArmResult* ref = nullptr;
  for (const ArmResult& r : results)
    if (r.ok == wl.queries.size()) { ref = &r; break; }
  for (std::size_t a = 0; a < results.size(); ++a) {
    const ArmResult& r = results[a];
    if (ref == nullptr || r.ok != wl.queries.size()) continue;
    if (r.positive != ref->positive || r.negative != ref->negative) {
      std::fprintf(stderr,
                   "FAIL: arm %s reports dM+=%llu dM-=%llu, expected "
                   "dM+=%llu dM-=%llu\n",
                   arms[a].name.c_str(),
                   static_cast<unsigned long long>(r.positive),
                   static_cast<unsigned long long>(r.negative),
                   static_cast<unsigned long long>(ref->positive),
                   static_cast<unsigned long long>(ref->negative));
      return 1;
    }
  }

  if (cli.get_bool("gate")) {
    const ArmResult& adaptive = results.back();
    if (adaptive.ok == 0) {
      std::fprintf(stderr, "FAIL: adaptive arm never finished in budget\n");
      return 1;
    }
    double best_static = 0;
    std::string best_name;
    for (std::size_t a = 0; a + 1 < results.size(); ++a) {
      if (results[a].ok == 0) continue;
      if (best_name.empty() || results[a].makespan_ms < best_static) {
        best_static = results[a].makespan_ms;
        best_name = arms[a].name;
      }
    }
    if (best_name.empty()) {
      std::fprintf(stderr, "FAIL: no static arm finished in budget\n");
      return 1;
    }
    std::printf("\ngate: adaptive %.3f ms vs best static %s %.3f ms\n",
                adaptive.makespan_ms, best_name.c_str(), best_static);
    if (adaptive.makespan_ms > best_static * 1.05) {
      std::fprintf(stderr,
                   "FAIL: adaptive regresses %.1f%% against %s (>5%% budget)\n",
                   (adaptive.makespan_ms / best_static - 1.0) * 100.0,
                   best_name.c_str());
      return 1;
    }
  }
  return 0;
}
