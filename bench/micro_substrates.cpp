// google-benchmark microbenchmarks for the substrates: dynamic graph
// mutation/lookup, index maintenance, classifier latency, and the concurrent
// task queue. These quantify the per-operation constants behind the
// macro-level tables.
#include <benchmark/benchmark.h>

#include "csm/candidate_index.hpp"
#include "csm/scratch.hpp"
#include "csm/support_index.hpp"
#include "graph/generators.hpp"
#include "graph/nlf_signature.hpp"
#include "paracosm/classifier.hpp"
#include "paracosm/task_queue.hpp"
#include "util/rng.hpp"

namespace {

using namespace paracosm;

graph::DataGraph make_graph(std::uint32_t n, std::uint64_t m, std::uint64_t seed) {
  util::Rng rng(seed);
  return graph::generate_erdos_renyi(n, m, 8, 4, rng);
}

void BM_DataGraphAddRemoveEdge(benchmark::State& state) {
  graph::DataGraph g = make_graph(static_cast<std::uint32_t>(state.range(0)),
                                  static_cast<std::uint64_t>(state.range(0)) * 8, 1);
  util::Rng rng(2);
  const std::uint32_t n = g.vertex_capacity();
  for (auto _ : state) {
    const auto u = static_cast<graph::VertexId>(rng.bounded(n));
    const auto v = static_cast<graph::VertexId>(rng.bounded(n));
    if (g.add_edge(u, v, 0)) benchmark::DoNotOptimize(g.remove_edge(u, v));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DataGraphAddRemoveEdge)->Arg(1024)->Arg(16384);

void BM_DataGraphEdgeLookup(benchmark::State& state) {
  graph::DataGraph g = make_graph(4096, 32768, 3);
  util::Rng rng(4);
  for (auto _ : state) {
    const auto u = static_cast<graph::VertexId>(rng.bounded(4096));
    const auto v = static_cast<graph::VertexId>(rng.bounded(4096));
    benchmark::DoNotOptimize(g.has_edge(u, v));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DataGraphEdgeLookup);

template <bool kTreeOnly>
void BM_DagIndexUpdate(benchmark::State& state) {
  util::Rng rng(5);
  graph::DataGraph g = make_graph(2048, 16384, 5);
  const auto q = graph::extract_query(g, 6, rng);
  if (!q) {
    state.SkipWithError("query extraction failed");
    return;
  }
  csm::DagCandidateIndex index;
  index.build(*q, g, kTreeOnly);
  const std::uint32_t n = g.vertex_capacity();
  for (auto _ : state) {
    const auto u = static_cast<graph::VertexId>(rng.bounded(n));
    const auto v = static_cast<graph::VertexId>(rng.bounded(n));
    if (g.add_edge(u, v, 0)) {
      index.on_edge_inserted(u, v, 0);
      g.remove_edge(u, v);
      index.on_edge_removed(u, v, 0);
    }
  }
  state.SetItemsProcessed(2 * state.iterations());
}
BENCHMARK(BM_DagIndexUpdate<true>)->Name("BM_DcgIndexUpdate_TurboFlux");
BENCHMARK(BM_DagIndexUpdate<false>)->Name("BM_DcsIndexUpdate_Symbi");

void BM_SupportIndexUpdate(benchmark::State& state) {
  util::Rng rng(6);
  graph::DataGraph g = make_graph(2048, 16384, 6);
  const auto q = graph::extract_query(g, 6, rng);
  if (!q) {
    state.SkipWithError("query extraction failed");
    return;
  }
  csm::SupportIndex index;
  index.build(*q, g);
  const std::uint32_t n = g.vertex_capacity();
  for (auto _ : state) {
    const auto u = static_cast<graph::VertexId>(rng.bounded(n));
    const auto v = static_cast<graph::VertexId>(rng.bounded(n));
    if (g.add_edge(u, v, 0)) {
      index.on_edge_inserted(u, v);
      g.remove_edge(u, v);
      index.on_edge_removed(u, v);
    }
  }
  state.SetItemsProcessed(2 * state.iterations());
}
BENCHMARK(BM_SupportIndexUpdate);

// NLF as maintained by the substrate (segment-directory width lookup) vs the
// O(d) reference recount — the cached path is what NewSP's filter and the
// classifier's stage-2 hammer once per candidate. The graph is sized past
// the L2 cache: at toy sizes the whole vertex table is cache-resident and
// the recount's per-neighbor label loads are flatteringly cheap.
constexpr std::uint32_t kNlfBenchVertices = 32768;
constexpr std::uint64_t kNlfBenchEdges = 524288;

void BM_NlfLookupCached(benchmark::State& state) {
  graph::DataGraph g = make_graph(kNlfBenchVertices, kNlfBenchEdges, 8);
  util::Rng rng(9);
  for (auto _ : state) {
    const auto v = static_cast<graph::VertexId>(rng.bounded(kNlfBenchVertices));
    const auto l = static_cast<graph::Label>(rng.bounded(8));
    benchmark::DoNotOptimize(g.nlf(v, l));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NlfLookupCached);

void BM_NlfLookupRecount(benchmark::State& state) {
  graph::DataGraph g = make_graph(kNlfBenchVertices, kNlfBenchEdges, 8);
  util::Rng rng(9);
  for (auto _ : state) {
    const auto v = static_cast<graph::VertexId>(rng.bounded(kNlfBenchVertices));
    const auto l = static_cast<graph::Label>(rng.bounded(8));
    benchmark::DoNotOptimize(g.nlf_recount(v, l));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NlfLookupRecount);

// Packed-signature containment: the one-instruction pre-reject that guards
// the exact NLF comparison in match_endpoint_ok / NewSP::nlf_dominates.
void BM_NlfSignatureCovers(benchmark::State& state) {
  graph::DataGraph g = make_graph(4096, 65536, 8);
  util::Rng rng(10);
  for (auto _ : state) {
    const auto v = static_cast<graph::VertexId>(rng.bounded(4096));
    const auto w = static_cast<graph::VertexId>(rng.bounded(4096));
    benchmark::DoNotOptimize(
        graph::nlf_sig_covers(g.nlf_signature(v), g.nlf_signature(w)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NlfSignatureCovers);

// Candidate iteration: matching-label segment vs filtering the full
// adjacency — the backtracking candidate loop's access pattern.
void BM_NeighborsLabelSegment(benchmark::State& state) {
  graph::DataGraph g = make_graph(4096, 65536, 11);
  util::Rng rng(12);
  for (auto _ : state) {
    const auto v = static_cast<graph::VertexId>(rng.bounded(4096));
    const auto l = static_cast<graph::Label>(rng.bounded(8));
    std::uint64_t sum = 0;
    for (const auto& nb : g.neighbors_with_label(v, l)) sum += nb.v;
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NeighborsLabelSegment);

void BM_NeighborsFilteredScan(benchmark::State& state) {
  graph::DataGraph g = make_graph(4096, 65536, 11);
  util::Rng rng(12);
  for (auto _ : state) {
    const auto v = static_cast<graph::VertexId>(rng.bounded(4096));
    const auto l = static_cast<graph::Label>(rng.bounded(8));
    std::uint64_t sum = 0;
    for (const auto& nb : g.neighbors(v))
      if (g.label(nb.v) == l) sum += nb.v;
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NeighborsFilteredScan);

// Epoch-stamped used-check vs the O(depth) linear scan it replaced, at a
// typical partial-match depth.
void BM_ScratchUsedEpoch(benchmark::State& state) {
  csm::SearchScratch s;
  util::Rng rng(13);
  constexpr std::uint32_t kDepth = 8;
  s.prepare(kDepth, 65536);
  for (std::uint32_t i = 0; i < kDepth; ++i)
    s.mark_used(static_cast<graph::VertexId>(rng.bounded(65536)));
  for (auto _ : state) {
    const auto w = static_cast<graph::VertexId>(rng.bounded(65536));
    benchmark::DoNotOptimize(s.is_used(w));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScratchUsedEpoch);

void BM_ScratchUsedLinearScan(benchmark::State& state) {
  util::Rng rng(13);
  constexpr std::uint32_t kDepth = 8;
  std::vector<csm::Assignment> assigned;
  for (std::uint32_t i = 0; i < kDepth; ++i)
    assigned.push_back({i, static_cast<graph::VertexId>(rng.bounded(65536))});
  for (auto _ : state) {
    const auto w = static_cast<graph::VertexId>(rng.bounded(65536));
    bool used = false;
    for (const auto& a : assigned)
      if (a.dv == w) used = true;
    benchmark::DoNotOptimize(used);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScratchUsedLinearScan);

// Scratch re-preparation cost per task (epoch bump + map reset).
void BM_ScratchPrepare(benchmark::State& state) {
  csm::SearchScratch s;
  for (auto _ : state) {
    s.prepare(8, 65536);
    benchmark::DoNotOptimize(s.map.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScratchPrepare);

void BM_ClassifierLatency(benchmark::State& state) {
  util::Rng rng(7);
  graph::DataGraph g = make_graph(2048, 16384, 7);
  const auto q = graph::extract_query(g, 6, rng);
  if (!q) {
    state.SkipWithError("query extraction failed");
    return;
  }
  auto alg = csm::make_algorithm("symbi");
  alg->attach(*q, g);
  engine::UpdateClassifier classifier(*q, g, *alg);
  const std::uint32_t n = g.vertex_capacity();
  for (auto _ : state) {
    const auto u = static_cast<graph::VertexId>(rng.bounded(n));
    const auto v = static_cast<graph::VertexId>(rng.bounded(n));
    benchmark::DoNotOptimize(
        classifier.classify(graph::GraphUpdate::insert_edge(u, v, 0)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ClassifierLatency);

void BM_TaskQueuePushPop(benchmark::State& state) {
  engine::TaskQueue queue(1);
  csm::SearchTask task{{{0, 1}, {1, 2}}};
  for (auto _ : state) {
    queue.push(0, csm::SearchTask(task));
    auto popped = queue.pop_or_finish(0);
    benchmark::DoNotOptimize(popped);
    queue.retire();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TaskQueuePushPop);

void BM_MutexTaskQueuePushPop(benchmark::State& state) {
  engine::MutexTaskQueue queue;
  csm::SearchTask task{{{0, 1}, {1, 2}}};
  for (auto _ : state) {
    queue.push(csm::SearchTask(task));
    auto popped = queue.try_pop();
    benchmark::DoNotOptimize(popped);
    queue.retire();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MutexTaskQueuePushPop);

}  // namespace

BENCHMARK_MAIN();
