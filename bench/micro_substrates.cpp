// google-benchmark microbenchmarks for the substrates: dynamic graph
// mutation/lookup, index maintenance, classifier latency, and the concurrent
// task queue. These quantify the per-operation constants behind the
// macro-level tables.
#include <benchmark/benchmark.h>

#include "csm/candidate_index.hpp"
#include "csm/support_index.hpp"
#include "graph/generators.hpp"
#include "paracosm/classifier.hpp"
#include "paracosm/task_queue.hpp"
#include "util/rng.hpp"

namespace {

using namespace paracosm;

graph::DataGraph make_graph(std::uint32_t n, std::uint64_t m, std::uint64_t seed) {
  util::Rng rng(seed);
  return graph::generate_erdos_renyi(n, m, 8, 4, rng);
}

void BM_DataGraphAddRemoveEdge(benchmark::State& state) {
  graph::DataGraph g = make_graph(static_cast<std::uint32_t>(state.range(0)),
                                  static_cast<std::uint64_t>(state.range(0)) * 8, 1);
  util::Rng rng(2);
  const std::uint32_t n = g.vertex_capacity();
  for (auto _ : state) {
    const auto u = static_cast<graph::VertexId>(rng.bounded(n));
    const auto v = static_cast<graph::VertexId>(rng.bounded(n));
    if (g.add_edge(u, v, 0)) benchmark::DoNotOptimize(g.remove_edge(u, v));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DataGraphAddRemoveEdge)->Arg(1024)->Arg(16384);

void BM_DataGraphEdgeLookup(benchmark::State& state) {
  graph::DataGraph g = make_graph(4096, 32768, 3);
  util::Rng rng(4);
  for (auto _ : state) {
    const auto u = static_cast<graph::VertexId>(rng.bounded(4096));
    const auto v = static_cast<graph::VertexId>(rng.bounded(4096));
    benchmark::DoNotOptimize(g.has_edge(u, v));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DataGraphEdgeLookup);

template <bool kTreeOnly>
void BM_DagIndexUpdate(benchmark::State& state) {
  util::Rng rng(5);
  graph::DataGraph g = make_graph(2048, 16384, 5);
  const auto q = graph::extract_query(g, 6, rng);
  if (!q) {
    state.SkipWithError("query extraction failed");
    return;
  }
  csm::DagCandidateIndex index;
  index.build(*q, g, kTreeOnly);
  const std::uint32_t n = g.vertex_capacity();
  for (auto _ : state) {
    const auto u = static_cast<graph::VertexId>(rng.bounded(n));
    const auto v = static_cast<graph::VertexId>(rng.bounded(n));
    if (g.add_edge(u, v, 0)) {
      index.on_edge_inserted(u, v, 0);
      g.remove_edge(u, v);
      index.on_edge_removed(u, v, 0);
    }
  }
  state.SetItemsProcessed(2 * state.iterations());
}
BENCHMARK(BM_DagIndexUpdate<true>)->Name("BM_DcgIndexUpdate_TurboFlux");
BENCHMARK(BM_DagIndexUpdate<false>)->Name("BM_DcsIndexUpdate_Symbi");

void BM_SupportIndexUpdate(benchmark::State& state) {
  util::Rng rng(6);
  graph::DataGraph g = make_graph(2048, 16384, 6);
  const auto q = graph::extract_query(g, 6, rng);
  if (!q) {
    state.SkipWithError("query extraction failed");
    return;
  }
  csm::SupportIndex index;
  index.build(*q, g);
  const std::uint32_t n = g.vertex_capacity();
  for (auto _ : state) {
    const auto u = static_cast<graph::VertexId>(rng.bounded(n));
    const auto v = static_cast<graph::VertexId>(rng.bounded(n));
    if (g.add_edge(u, v, 0)) {
      index.on_edge_inserted(u, v);
      g.remove_edge(u, v);
      index.on_edge_removed(u, v);
    }
  }
  state.SetItemsProcessed(2 * state.iterations());
}
BENCHMARK(BM_SupportIndexUpdate);

void BM_ClassifierLatency(benchmark::State& state) {
  util::Rng rng(7);
  graph::DataGraph g = make_graph(2048, 16384, 7);
  const auto q = graph::extract_query(g, 6, rng);
  if (!q) {
    state.SkipWithError("query extraction failed");
    return;
  }
  auto alg = csm::make_algorithm("symbi");
  alg->attach(*q, g);
  engine::UpdateClassifier classifier(*q, g, *alg);
  const std::uint32_t n = g.vertex_capacity();
  for (auto _ : state) {
    const auto u = static_cast<graph::VertexId>(rng.bounded(n));
    const auto v = static_cast<graph::VertexId>(rng.bounded(n));
    benchmark::DoNotOptimize(
        classifier.classify(graph::GraphUpdate::insert_edge(u, v, 0)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ClassifierLatency);

void BM_TaskQueuePushPop(benchmark::State& state) {
  engine::TaskQueue queue;
  csm::SearchTask task{{{0, 1}, {1, 2}}};
  for (auto _ : state) {
    queue.push(csm::SearchTask(task));
    auto popped = queue.try_pop();
    benchmark::DoNotOptimize(popped);
    queue.retire();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TaskQueuePushPop);

}  // namespace

BENCHMARK_MAIN();
