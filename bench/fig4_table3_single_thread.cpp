// Regenerates paper Figure 4 and Table 3: single-threaded incremental
// matching time of each CSM algorithm by query size, the ADS-update vs
// Find_Matches CPU breakdown, and the success rate under a timeout.
//
// Paper shape to reproduce: incremental matching time grows steeply with
// query size for every algorithm; Find_Matches dominates the breakdown
// (often > 90%); success rates collapse on the largest queries.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "csm/engine.hpp"

using namespace paracosm;
using namespace paracosm::bench;

int main(int argc, char** argv) {
  util::Cli cli = standard_cli("fig4_table3_single_thread",
                               "Figure 4 + Table 3: single-threaded baselines");
  cli.option("sizes", "6,7,8,9,10", "Comma-separated query sizes");
  cli.option("labels", "8",
             "Vertex-label alphabet of the LiveJournal stand-in (branching-"
             "factor calibration, see bench_util.hpp)");
  if (!cli.parse(argc, argv)) return cli.exit_code();

  const double scale = cli.get_double("scale");
  const auto num_queries = static_cast<std::uint32_t>(cli.get_int("queries"));
  const std::int64_t stream_cap = cli.get_int("stream");
  const std::int64_t timeout_ms = cli.get_int("timeout-ms");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  print_experiment_banner(
      "Figure 4 + Table 3",
      "Single-threaded incremental matching time, ADS/Find-Matches breakdown and "
      "success rate by query size (LiveJournal stand-in)");

  std::vector<std::uint32_t> sizes;
  {
    const std::string raw = cli.get("sizes");
    std::size_t pos = 0;
    while (pos < raw.size()) {
      sizes.push_back(static_cast<std::uint32_t>(std::strtoul(raw.c_str() + pos, nullptr, 10)));
      pos = raw.find(',', pos);
      if (pos == std::string::npos) break;
      ++pos;
    }
  }

  util::Table fig4({"algorithm", "size", "mean_ms", "succ_%"});
  util::Table table3({"algorithm", "size", "ads_%", "find_matches_%", "succ_%"});
  util::CsvWriter csv(results_path("fig4_table3"),
                      {"algorithm", "query_size", "mean_ms", "ads_percent",
                       "find_matches_percent", "success_rate"});

  for (const std::uint32_t size : sizes) {
    const Workload full = build_workload(
        livejournal_hard_spec(scale, static_cast<std::uint32_t>(cli.get_int("labels"))),
        size, num_queries, 0.10, seed + size);
    Workload capped = full;
    cap_stream(capped, stream_cap);
    const Workload stripped = strip_edge_labels(capped);

    for (const auto name : csm::algorithm_names()) {
      const Workload& wl = workload_for(std::string(name), capped, stripped);
      double sum_ms = 0, sum_ads = 0, sum_fm = 0;
      std::uint32_t successes = 0;
      for (const auto& q : wl.queries) {
        RunConfig cfg;
        cfg.algorithm = std::string(name);
        cfg.mode = Mode::kSequential;
        cfg.timeout_ms = timeout_ms;
        const RunResult r = run_stream(wl, q, cfg);
        if (!r.success) continue;
        ++successes;
        sum_ms += r.cpu_ms;
        sum_ads += r.ads_ms;
        sum_fm += r.search_ms;
      }
      const double mean_ms = successes ? sum_ms / successes : 0.0;
      // Shares of the two-stage incremental pipeline (Table 3 reports the
      // ADS-update vs Find-Matches split of the matching process).
      const double total = sum_ads + sum_fm;
      const double ads_pct = total > 0 ? 100.0 * sum_ads / total : 0;
      const double fm_pct = total > 0 ? 100.0 * sum_fm / total : 0;
      const double succ =
          wl.queries.empty()
              ? 0
              : 100.0 * successes / static_cast<double>(wl.queries.size());
      fig4.row({std::string(name), std::to_string(size), util::Table::num(mean_ms),
                util::Table::num(succ, 0)});
      table3.row({std::string(name), std::to_string(size), util::Table::num(ads_pct),
                  util::Table::num(fm_pct), util::Table::num(succ, 0)});
      csv.row({std::string(name), std::to_string(size), util::CsvWriter::num(mean_ms),
               util::CsvWriter::num(ads_pct), util::CsvWriter::num(fm_pct),
               util::CsvWriter::num(succ)});
    }
  }

  std::puts("Figure 4 — mean single-threaded incremental matching time (ms):");
  fig4.print();
  std::puts("\nTable 3 — CPU breakdown (% of stream processing) and success rate:");
  table3.print();
  std::printf("\nCSV written to %s\n", results_path("fig4_table3").c_str());
  return 0;
}
