// Regenerates paper Table 4 (average unsafe-update percentage per dataset ×
// query size) plus the Table 5 dataset summary that parameterizes the
// stand-ins.
//
// Paper shape to reproduce: unsafe updates are rare everywhere (< ~2%), with
// Orkut lowest (rich label alphabet) — over 98% of updates are safe, the
// statistical basis of inter-update parallelism.
#include <cstdio>

#include "bench/bench_util.hpp"

using namespace paracosm;
using namespace paracosm::bench;

int main(int argc, char** argv) {
  util::Cli cli = standard_cli("table4_safe_ratio",
                               "Table 4: unsafe update percentage per dataset/size");
  cli.option("algorithm", "symbi",
             "Algorithm whose filtering rule feeds classifier stage 3");
  if (!cli.parse(argc, argv)) return cli.exit_code();

  const double scale = cli.get_double("scale");
  const auto num_queries = static_cast<std::uint32_t>(cli.get_int("queries"));
  const std::int64_t stream_cap = cli.get_int("stream");
  const std::int64_t timeout_ms = cli.get_int("timeout-ms");
  const unsigned threads = bench::resolve_threads(cli.get_int("threads"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const std::string algorithm = cli.get("algorithm");

  print_experiment_banner("Table 4 (+ Table 5 summary)",
                          "Average unsafe-update percentage per dataset and query "
                          "size, classifier stage-3 = " + algorithm);

  util::Table table5({"dataset", "|V|", "|E|", "L(V)", "L(E)", "d(G)"});
  util::Table table4({"dataset", "size6", "size7", "size8", "size9", "size10"});
  util::CsvWriter csv(results_path("table4_safe_ratio"),
                      {"dataset", "query_size", "unsafe_percent", "safe_label",
                       "safe_degree", "safe_ads", "unsafe", "total"});

  for (const auto& spec : graph::all_dataset_specs(scale)) {
    std::vector<std::string> row{spec.name};
    bool summarized = false;
    for (const std::uint32_t size : {6u, 7u, 8u, 9u, 10u}) {
      Workload wl = build_workload(spec, size, num_queries, 0.10,
                                   seed + size * 131 + spec.num_vertices);
      cap_stream(wl, stream_cap);
      if (!summarized) {
        // Stream edges are part of the dataset; report the full graph.
        graph::DataGraph complete = wl.graph;
        for (const auto& upd : wl.stream) complete.apply(upd);
        table5.row({spec.name, std::to_string(complete.num_vertices()),
                    std::to_string(complete.num_edges()),
                    std::to_string(complete.num_vertex_labels()),
                    std::to_string(complete.num_edge_labels()),
                    util::Table::num(complete.average_degree())});
        summarized = true;
      }
      const Workload& view =
          algorithm == "calig" ? strip_edge_labels(wl) : wl;
      RunConfig cfg;
      cfg.algorithm = algorithm;
      cfg.mode = Mode::kFull;
      cfg.threads = threads;
      cfg.timeout_ms = timeout_ms;
      const AggregateResult agg = run_all_queries(view, cfg);
      row.push_back(util::Table::num(agg.classifier.unsafe_percent(), 4));
      csv.row({spec.name, std::to_string(size),
               util::CsvWriter::num(agg.classifier.unsafe_percent(), 4),
               util::CsvWriter::num(agg.classifier.safe_label),
               util::CsvWriter::num(agg.classifier.safe_degree),
               util::CsvWriter::num(agg.classifier.safe_ads),
               util::CsvWriter::num(agg.classifier.unsafe_updates),
               util::CsvWriter::num(agg.classifier.total)});
    }
    table4.row(std::move(row));
  }

  std::puts("Table 5 — dataset stand-in characteristics:");
  table5.print();
  std::puts("\nTable 4 — average unsafe update percentage (%):");
  table4.print();
  std::printf("\nCSV written to %s\n", results_path("table4_safe_ratio").c_str());
  return 0;
}
