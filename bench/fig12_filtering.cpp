// Regenerates paper Figure 12: pruning effectiveness of the three-stage
// filtering strategy (Orkut stand-in).
//
// Paper shape to reproduce: label+degree filtering alone classifies > 99.6%
// of edges safe; of the remainder, the ADS (candidate) filter prunes > 99.7%
// for TurboFlux, Symbi and CaLiG.
#include <cstdio>

#include "bench/bench_util.hpp"

using namespace paracosm;
using namespace paracosm::bench;

int main(int argc, char** argv) {
  util::Cli cli = standard_cli("fig12_filtering",
                               "Figure 12: three-stage filter effectiveness");
  if (!cli.parse(argc, argv)) return cli.exit_code();

  const double scale = cli.get_double("scale");
  const auto num_queries = static_cast<std::uint32_t>(cli.get_int("queries"));
  const std::int64_t stream_cap = cli.get_int("stream");
  const std::int64_t timeout_ms = cli.get_int("timeout-ms");
  const unsigned threads = bench::resolve_threads(cli.get_int("threads"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  print_experiment_banner(
      "Figure 12",
      "Per-stage classifier effectiveness: % safe after label+degree, and % of "
      "the remainder pruned by the ADS stage (Orkut stand-in)");

  Workload wl = build_workload(graph::orkut_spec(scale), 6, num_queries, 0.10, seed);
  cap_stream(wl, stream_cap);
  const Workload stripped = strip_edge_labels(wl);

  util::Table table(
      {"algorithm", "label_deg_safe_%", "ads_pruned_remainder_%", "unsafe_%"});
  util::CsvWriter csv(results_path("fig12_filtering"),
                      {"algorithm", "safe_label", "safe_degree", "safe_ads", "unsafe",
                       "total", "label_degree_percent", "ads_remainder_percent"});

  // The paper evaluates the ADS stage for the three index-bearing algorithms;
  // GraphFlow/NewSP are included for the label+degree stages.
  for (const auto name : csm::algorithm_names()) {
    const Workload& view = workload_for(std::string(name), wl, stripped);
    RunConfig cfg;
    cfg.algorithm = std::string(name);
    cfg.mode = Mode::kFull;
    cfg.threads = threads;
    cfg.timeout_ms = timeout_ms;
    const AggregateResult agg = run_all_queries(view, cfg);
    const auto& c = agg.classifier;
    const double label_deg =
        c.total ? 100.0 * static_cast<double>(c.safe_label + c.safe_degree) /
                      static_cast<double>(c.total)
                : 0.0;
    const std::uint64_t remainder = c.safe_ads + c.unsafe_updates;
    const double ads_pruned =
        remainder ? 100.0 * static_cast<double>(c.safe_ads) /
                        static_cast<double>(remainder)
                  : 0.0;
    table.row({std::string(name), util::Table::num(label_deg, 3),
               remainder ? util::Table::num(ads_pruned, 3) : "n/a",
               util::Table::num(c.unsafe_percent(), 4)});
    csv.row({std::string(name), util::CsvWriter::num(c.safe_label),
             util::CsvWriter::num(c.safe_degree), util::CsvWriter::num(c.safe_ads),
             util::CsvWriter::num(c.unsafe_updates), util::CsvWriter::num(c.total),
             util::CsvWriter::num(label_deg, 3), util::CsvWriter::num(ads_pruned, 3)});
  }

  std::puts("Figure 12 — three-stage filtering pruning effectiveness:");
  table.print();
  std::printf("\nCSV written to %s\n", results_path("fig12_filtering").c_str());
  return 0;
}
