// Ablation of the batch executor: batch size k, and the cost of the strict
// conflict-deferral mode relative to the paper-faithful semantics
// (DESIGN.md §4 calls this trade-off out explicitly).
#include <cstdio>

#include "bench/bench_util.hpp"

using namespace paracosm;
using namespace paracosm::bench;

int main(int argc, char** argv) {
  util::Cli cli = standard_cli("ablation_batch_size",
                               "Ablation: batch size k and batch semantics");
  cli.option("algorithm", "symbi", "Algorithm to ablate");
  if (!cli.parse(argc, argv)) return cli.exit_code();

  const double scale = cli.get_double("scale");
  const auto num_queries = static_cast<std::uint32_t>(cli.get_int("queries"));
  const std::int64_t stream_cap = cli.get_int("stream");
  const std::int64_t timeout_ms = cli.get_int("timeout-ms");
  const unsigned threads = bench::resolve_threads(cli.get_int("threads"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const std::string algorithm = cli.get("algorithm");

  print_experiment_banner("Ablation: batch size / semantics",
                          "Batch executor makespan vs k, strict vs paper mode, " +
                              algorithm + " (Orkut stand-in)");

  Workload wl = build_workload(graph::orkut_spec(scale), 6, num_queries, 0.10, seed);
  cap_stream(wl, stream_cap);
  if (algorithm == "calig") wl = strip_edge_labels(wl);

  util::Table table({"batch_k", "mode", "makespan_ms", "batches", "conflicts"});
  util::CsvWriter csv(results_path("ablation_batch_size"),
                      {"batch_k", "mode", "makespan_ms", "batches", "conflicts"});

  for (const unsigned k : {8u, 32u, 128u, 512u}) {
    for (const auto mode : {engine::BatchMode::kStrict, engine::BatchMode::kPaper}) {
      double makespan = 0;
      std::uint64_t batches = 0, conflicts = 0;
      std::uint32_t ok = 0;
      for (const auto& q : wl.queries) {
        auto alg = csm::make_algorithm(algorithm);
        graph::DataGraph g = wl.graph;
        engine::Config cfg;
        cfg.threads = threads;
        cfg.batch_size = k;
        cfg.batch_mode = mode;
        engine::ParaCosm pc(*alg, q, g, cfg);
        const auto deadline =
            timeout_ms > 0
                ? util::Clock::now() + std::chrono::milliseconds(timeout_ms)
                : util::Clock::time_point{};
        const engine::StreamResult sr = pc.process_stream(wl.stream, deadline);
        if (sr.timed_out) continue;
        ++ok;
        makespan += static_cast<double>(sr.stats.simulated_makespan_ns()) / 1e6;
        batches += sr.batches;
        conflicts += sr.deferred_conflicts;
      }
      if (ok == 0) continue;
      const char* mode_str = mode == engine::BatchMode::kStrict ? "strict" : "paper";
      table.row({std::to_string(k), mode_str, util::Table::num(makespan / ok, 3),
                 std::to_string(batches / ok), std::to_string(conflicts / ok)});
      csv.row({std::to_string(k), mode_str, util::CsvWriter::num(makespan / ok, 3),
               util::CsvWriter::num(batches / ok), util::CsvWriter::num(conflicts / ok)});
    }
  }

  std::puts("Batch executor ablation:");
  table.print();
  std::printf("\nCSV written to %s\n", results_path("ablation_batch_size").c_str());
  return 0;
}
