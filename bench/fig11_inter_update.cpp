// Regenerates paper Figure 11: speedup delivered by the inter-update
// mechanism alone — ParaCOSM with the batch executor enabled vs the same
// configuration processing updates one-by-one (Orkut stand-in, 32 threads).
//
// Paper shape to reproduce: > 3x speedup for every algorithm, with Symbi the
// most responsive (its ADS maintenance dominates per-update cost, and safe
// updates skip straight to parallel application).
#include <cstdio>

#include "bench/bench_util.hpp"

using namespace paracosm;
using namespace paracosm::bench;

int main(int argc, char** argv) {
  util::Cli cli = standard_cli("fig11_inter_update",
                               "Figure 11: inter-update mechanism speedup");
  if (!cli.parse(argc, argv)) return cli.exit_code();

  const double scale = cli.get_double("scale");
  const auto num_queries = static_cast<std::uint32_t>(cli.get_int("queries"));
  const std::int64_t stream_cap = cli.get_int("stream");
  const std::int64_t timeout_ms = cli.get_int("timeout-ms");
  const unsigned threads = bench::resolve_threads(cli.get_int("threads"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  print_experiment_banner(
      "Figure 11",
      "Inter-update mechanism speedup (with vs without the batch executor), "
      "Orkut stand-in, " + std::to_string(threads) + " threads");

  Workload wl = build_workload(graph::orkut_spec(scale), 6, num_queries, 0.10, seed);
  cap_stream(wl, stream_cap);
  const Workload stripped = strip_edge_labels(wl);

  util::Table table({"algorithm", "without_ms", "with_ms", "speedup"});
  util::CsvWriter csv(results_path("fig11_inter_update"),
                      {"algorithm", "without_inter_ms", "with_inter_ms", "speedup"});

  for (const auto name : csm::algorithm_names()) {
    const Workload& view = workload_for(std::string(name), wl, stripped);
    RunConfig without;
    without.algorithm = std::string(name);
    without.mode = Mode::kInnerOnly;
    without.threads = threads;
    without.timeout_ms = timeout_ms;
    const AggregateResult before = run_all_queries(view, without);

    RunConfig with = without;
    with.mode = Mode::kFull;
    const AggregateResult after = run_all_queries(view, with);

    table.row({std::string(name), util::Table::num(before.mean_ms),
               util::Table::num(after.mean_ms),
               format_speedup(before.mean_ms, after.mean_ms,
                              before.success_rate > 0, after.success_rate > 0)});
    csv.row({std::string(name), util::CsvWriter::num(before.mean_ms),
             util::CsvWriter::num(after.mean_ms),
             util::CsvWriter::num(before.mean_ms > 0 && after.mean_ms > 0
                                      ? before.mean_ms / after.mean_ms
                                      : 0.0)});
  }

  std::puts("Figure 11 — inter-update mechanism speedup:");
  table.print();
  std::printf("\nCSV written to %s\n", results_path("fig11_inter_update").c_str());
  return 0;
}
