// Validates the paper's theoretical speedup model (§4.3, Eq. 1–2):
//
//   T_csm = |ΔG| [ (1-γ)(T_ADS + T_FM/N) + γ T_ADS/M ]
//
// Per algorithm we measure T_ADS and T_FM from the single-threaded run and γ
// from the classifier, plug them into Eq. 1 with M = N = threads, and
// compare the predicted speedup with the measured one (simulated makespan).
// Eq. 1 assumes ideal linear scalability, so it upper-bounds the measured
// value; the paper's §4.3 worked example (γ=0.4, M=N=10) is also printed.
#include <cstdio>

#include "bench/bench_util.hpp"

using namespace paracosm;
using namespace paracosm::bench;

int main(int argc, char** argv) {
  util::Cli cli = standard_cli("theory_model", "Eq. 1 predicted vs measured speedup");
  cli.option("query-size", "6", "Query graph size");
  if (!cli.parse(argc, argv)) return cli.exit_code();

  const double scale = cli.get_double("scale");
  const auto num_queries = static_cast<std::uint32_t>(cli.get_int("queries"));
  const std::int64_t stream_cap = cli.get_int("stream");
  const std::int64_t timeout_ms = cli.get_int("timeout-ms");
  const unsigned threads = bench::resolve_threads(cli.get_int("threads"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const auto qsize = static_cast<std::uint32_t>(cli.get_int("query-size"));

  print_experiment_banner("§4.3 theoretical model",
                          "Eq. 1 speedup prediction vs measurement, M = N = " +
                              std::to_string(threads));

  // Worked example from the paper: N = M = 10, γ = 0.4 gives
  // T = |ΔG| (0.64 T_ADS + 0.06 T_FM)  (Eq. 3).
  {
    const double gamma = 0.4, n = 10, m = 10;
    const double ads_coeff = 1 + gamma * (1 / m - 1);
    const double fm_coeff = (1 - gamma) / n;
    std::printf("Eq. 3 check (γ=0.4, M=N=10): T = |ΔG|(%.2f T_ADS + %.2f T_FM)\n\n",
                ads_coeff, fm_coeff);
  }

  // Calibrated hard variant so T_FM dominates like on the full-size graphs.
  Workload wl = build_workload(livejournal_hard_spec(scale, 8), qsize, num_queries,
                               0.10, seed);
  cap_stream(wl, stream_cap);
  const Workload stripped = strip_edge_labels(wl);

  util::Table table({"algorithm", "gamma", "T_ADS_share", "T_FM_share",
                     "predicted_speedup", "measured_speedup"});
  util::CsvWriter csv(results_path("theory_model"),
                      {"algorithm", "gamma", "ads_ms", "fm_ms", "predicted",
                       "measured"});

  for (const auto name : csm::algorithm_names()) {
    const Workload& view = workload_for(std::string(name), wl, stripped);
    double seq_ms = 0, ads_ms = 0, fm_ms = 0, par_ms = 0;
    engine::ClassifierStats cstats;
    std::uint32_t ok = 0;
    for (const auto& q : view.queries) {
      RunConfig seq;
      seq.algorithm = std::string(name);
      seq.mode = Mode::kSequential;
      seq.timeout_ms = timeout_ms;
      const RunResult base = run_stream(view, q, seq);
      RunConfig par = seq;
      par.mode = Mode::kFull;
      par.threads = threads;
      const RunResult fast = run_stream(view, q, par);
      if (!base.success || !fast.success) continue;
      ++ok;
      seq_ms += base.cpu_ms;
      ads_ms += base.ads_ms;
      fm_ms += base.search_ms;
      par_ms += fast.sim_makespan_ms;
      cstats.merge(fast.classifier);
    }
    if (ok == 0 || seq_ms <= 0) {
      table.row({std::string(name), "-", "-", "-", "TO", "TO"});
      continue;
    }
    const double gamma = cstats.total
                             ? static_cast<double>(cstats.safe()) /
                                   static_cast<double>(cstats.total)
                             : 0.0;
    const double n = threads, m = threads;
    // Shares of the measured single-threaded time (T_ADS + T_FM ≈ total).
    const double total = ads_ms + fm_ms > 0 ? ads_ms + fm_ms : seq_ms;
    const double t_ads = ads_ms / total, t_fm = fm_ms / total;
    const double predicted_time =
        (1 - gamma) * (t_ads + t_fm / n) + gamma * (t_ads / m);
    const double predicted = predicted_time > 0 ? 1.0 / predicted_time : 0.0;
    const double measured = par_ms > 0 ? seq_ms / par_ms : 0.0;
    table.row({std::string(name), util::Table::num(gamma, 4),
               util::Table::num(t_ads, 3), util::Table::num(t_fm, 3),
               util::Table::num(predicted, 1) + "x",
               util::Table::num(measured, 1) + "x"});
    csv.row({std::string(name), util::CsvWriter::num(gamma, 4),
             util::CsvWriter::num(ads_ms), util::CsvWriter::num(fm_ms),
             util::CsvWriter::num(predicted), util::CsvWriter::num(measured)});
  }

  std::puts("Eq. 1 predicted (ideal-scaling upper bound) vs measured speedup:");
  table.print();
  std::printf("\nCSV written to %s\n", results_path("theory_model").c_str());
  return 0;
}
