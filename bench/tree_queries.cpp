// Tree-query extension (paper Table 1 context): on acyclic queries the
// IEDyn-style exact candidate DP should dominate the general-purpose
// algorithms — its search tree contains no dead branches. This bench
// compares IEDyn against Symbi/TurboFlux/GraphFlow on spanning-tree queries.
#include <cstdio>

#include "bench/bench_util.hpp"

using namespace paracosm;
using namespace paracosm::bench;

namespace {

graph::QueryGraph tree_of(const graph::QueryGraph& q) {
  std::vector<graph::Label> labels(q.num_vertices());
  for (graph::VertexId u = 0; u < q.num_vertices(); ++u) labels[u] = q.label(u);
  std::vector<graph::Edge> edges;
  std::vector<bool> seen(q.num_vertices(), false);
  std::vector<graph::VertexId> stack{0};
  seen[0] = true;
  while (!stack.empty()) {
    const graph::VertexId u = stack.back();
    stack.pop_back();
    for (const auto& nb : q.neighbors(u)) {
      if (seen[nb.v]) continue;
      seen[nb.v] = true;
      edges.push_back({u, nb.v, nb.elabel});
      stack.push_back(nb.v);
    }
  }
  return graph::QueryGraph(std::move(labels), std::move(edges));
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli = standard_cli("tree_queries",
                               "extension: IEDyn vs general algorithms on trees");
  cli.option("query-size", "8", "Query tree size");
  if (!cli.parse(argc, argv)) return cli.exit_code();

  const double scale = cli.get_double("scale");
  const auto num_queries = static_cast<std::uint32_t>(cli.get_int("queries"));
  const std::int64_t stream_cap = cli.get_int("stream");
  const std::int64_t timeout_ms = cli.get_int("timeout-ms");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  print_experiment_banner(
      "Extension: acyclic (tree) queries",
      "IEDyn's exact candidate DP vs the general-purpose algorithms on "
      "spanning-tree queries, LiveJournal-hard stand-in");

  Workload wl = build_workload(livejournal_hard_spec(scale, 8),
                               static_cast<std::uint32_t>(cli.get_int("query-size")),
                               num_queries, 0.10, seed);
  cap_stream(wl, stream_cap);
  for (auto& q : wl.queries) q = tree_of(q);

  util::Table table({"algorithm", "mean_ms", "succ_%", "vs_iedyn"});
  util::CsvWriter csv(results_path("tree_queries"),
                      {"algorithm", "mean_ms", "success_rate"});

  double iedyn_ms = 0;
  for (const auto name : {"iedyn", "symbi", "turboflux", "graphflow", "newsp"}) {
    RunConfig cfg;
    cfg.algorithm = std::string(name);
    cfg.mode = Mode::kSequential;
    cfg.timeout_ms = timeout_ms;
    const AggregateResult agg = run_all_queries(wl, cfg);
    if (std::string_view(name) == "iedyn") iedyn_ms = agg.mean_ms;
    table.row({std::string(name), util::Table::num(agg.mean_ms, 3),
               util::Table::num(agg.success_rate, 0),
               agg.mean_ms > 0 && iedyn_ms > 0
                   ? util::Table::num(agg.mean_ms / iedyn_ms, 2) + "x"
                   : "-"});
    csv.row({std::string(name), util::CsvWriter::num(agg.mean_ms, 3),
             util::CsvWriter::num(agg.success_rate)});
  }

  std::puts("Tree-query comparison (single-threaded, same streams):");
  table.print();
  std::printf("\nCSV written to %s\n", results_path("tree_queries").c_str());
  return 0;
}
