// Regenerates paper Figure 9: ParaCOSM speedup at 8/16/32/64/128 threads
// relative to the single-threaded baselines (LiveJournal stand-in).
//
// Paper shape to reproduce: strong scaling for TurboFlux/GraphFlow, peak-
// then-plateau for Symbi/CaLiG around 32 threads, modest scaling for NewSP.
#include <cstdio>

#include "bench/bench_util.hpp"

using namespace paracosm;
using namespace paracosm::bench;

int main(int argc, char** argv) {
  util::Cli cli = standard_cli("fig9_scalability",
                               "Figure 9: speedup vs number of threads");
  cli.option("query-size", "7", "Query graph size");
  if (!cli.parse(argc, argv)) return cli.exit_code();

  const double scale = cli.get_double("scale");
  const auto num_queries = static_cast<std::uint32_t>(cli.get_int("queries"));
  const std::int64_t stream_cap = cli.get_int("stream");
  const std::int64_t timeout_ms = cli.get_int("timeout-ms");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const auto qsize = static_cast<std::uint32_t>(cli.get_int("query-size"));

  print_experiment_banner("Figure 9",
                          "Speedup (simulated makespan) of ParaCOSM with 8/16/32/"
                          "64/128 threads over single-threaded, LiveJournal stand-in");

  // The calibrated hard variant gives the searches enough weight for
  // parallelism to matter (see bench_util.hpp).
  Workload wl = build_workload(livejournal_hard_spec(scale, 8), qsize, num_queries,
                               0.10, seed);
  cap_stream(wl, stream_cap);
  const Workload stripped = strip_edge_labels(wl);

  const std::vector<unsigned> thread_counts{8, 16, 32, 64, 128};
  util::Table table({"algorithm", "8", "16", "32", "64", "128"});
  util::CsvWriter csv(results_path("fig9_scalability"),
                      {"algorithm", "threads", "seq_ms", "para_ms", "speedup"});

  for (const auto name : csm::algorithm_names()) {
    const Workload& view = workload_for(std::string(name), wl, stripped);
    RunConfig seq;
    seq.algorithm = std::string(name);
    seq.mode = Mode::kSequential;
    seq.timeout_ms = timeout_ms;
    const AggregateResult base = run_all_queries(view, seq);

    std::vector<std::string> row{std::string(name)};
    for (const unsigned threads : thread_counts) {
      RunConfig par = seq;
      par.mode = Mode::kFull;
      par.threads = threads;
      const AggregateResult fast = run_all_queries(view, par);
      row.push_back(format_speedup(base.mean_ms, fast.mean_ms, base.success_rate > 0,
                                   fast.success_rate > 0));
      csv.row({std::string(name), std::to_string(threads),
               util::CsvWriter::num(base.mean_ms), util::CsvWriter::num(fast.mean_ms),
               util::CsvWriter::num(base.mean_ms > 0 && fast.mean_ms > 0
                                        ? base.mean_ms / fast.mean_ms
                                        : 0.0)});
    }
    table.row(std::move(row));
  }

  std::puts("Figure 9 — speedup by thread count:");
  table.print();
  std::printf("\nCSV written to %s\n", results_path("fig9_scalability").c_str());
  return 0;
}
