// Ablation of SPLIT_DEPTH (Algorithm 2's task-splitting bound), a design
// choice DESIGN.md calls out: too shallow starves the queue (no re-splits
// when skew appears), too deep floods it with tiny tasks whose queue
// round-trips dominate.
#include <cstdio>

#include "bench/bench_util.hpp"

using namespace paracosm;
using namespace paracosm::bench;

int main(int argc, char** argv) {
  util::Cli cli = standard_cli("ablation_split_depth",
                               "Ablation: SPLIT_DEPTH of the inner executor");
  cli.option("algorithm", "graphflow", "Algorithm to ablate");
  cli.option("query-size", "7", "Query graph size");
  if (!cli.parse(argc, argv)) return cli.exit_code();

  const double scale = cli.get_double("scale");
  const auto num_queries = static_cast<std::uint32_t>(cli.get_int("queries"));
  const std::int64_t stream_cap = cli.get_int("stream");
  const std::int64_t timeout_ms = cli.get_int("timeout-ms");
  const unsigned threads = bench::resolve_threads(cli.get_int("threads"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const std::string algorithm = cli.get("algorithm");

  print_experiment_banner("Ablation: SPLIT_DEPTH",
                          "Inner-update executor simulated makespan vs task "
                          "splitting depth, " + algorithm);

  Workload wl = build_workload(graph::livejournal_spec(scale),
                               static_cast<std::uint32_t>(cli.get_int("query-size")),
                               num_queries, 0.10, seed);
  cap_stream(wl, stream_cap);
  if (algorithm == "calig") wl = strip_edge_labels(wl);

  util::Table table({"split_depth", "makespan_ms", "cpu_ms", "speedup_vs_depth0"});
  util::CsvWriter csv(results_path("ablation_split_depth"),
                      {"split_depth", "makespan_ms", "cpu_ms"});
  double depth0 = 0;
  for (const std::uint32_t depth : {0u, 1u, 2u, 3u, 4u, 6u, 8u, 16u}) {
    double makespan = 0, cpu = 0;
    std::uint32_t ok = 0;
    for (const auto& q : wl.queries) {
      RunConfig cfg;
      cfg.algorithm = algorithm;
      cfg.mode = Mode::kInnerOnly;
      cfg.threads = threads;
      cfg.split_depth = depth;
      cfg.timeout_ms = timeout_ms;
      const RunResult r = run_stream(wl, q, cfg);
      if (!r.success) continue;
      ++ok;
      makespan += r.sim_makespan_ms;
      cpu += r.cpu_ms;
    }
    if (ok == 0) continue;
    makespan /= ok;
    cpu /= ok;
    if (depth == 0) depth0 = makespan;
    table.row({std::to_string(depth), util::Table::num(makespan, 3),
               util::Table::num(cpu, 3),
               depth0 > 0 ? util::Table::num(depth0 / makespan, 2) + "x" : "-"});
    csv.row({std::to_string(depth), util::CsvWriter::num(makespan, 3),
             util::CsvWriter::num(cpu, 3)});
  }

  std::puts("SPLIT_DEPTH ablation (depth 0 = no splitting below the seeds):");
  table.print();
  std::printf("\nCSV written to %s\n", results_path("ablation_split_depth").c_str());
  return 0;
}
