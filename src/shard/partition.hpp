// Deterministic ownership partitioning for sharded operation (DESIGN.md §12).
//
// The data graph is hash-partitioned by vertex: vertex v's *home* shard is
// FNV-1a(v) mod N. Because continuous subgraph matching is a global property
// — a match may span any subset of vertices — every shard maintains a full
// replica of graph + ADS state (boundary replication taken to its fixed
// point), but exactly ONE shard per update, the owner, runs the full ΔM
// enumeration; the replicas run maintain-only passes (search pre-cancelled
// via the PR-4 cooperative-cancel contract: graph and ADS updates complete,
// enumeration is skipped). The owner of an edge update is the home shard of
// its canonical endpoint min(u, v); vertex updates are owned by home(id).
//
// Ownership must be a pure function of (update, live-shard set) so that the
// coordinator, a restarted coordinator, and the differential oracle all agree
// on which shard's ΔM is authoritative. When a shard is permanently dead
// (restart budget exhausted), ownership falls over to the next live shard in
// ring order — still deterministic given the death set, and sound because
// replicas hold full state.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/types.hpp"
#include "util/checksum.hpp"

namespace paracosm::shard {

/// Home shard of a vertex: FNV-1a of the id, mod the shard count.
[[nodiscard]] inline std::uint32_t home_shard(graph::VertexId v,
                                              std::uint32_t n_shards) noexcept {
  const std::uint64_t h = util::fnv1a_word(util::kFnv1aOffset, v);
  return static_cast<std::uint32_t>(h % n_shards);
}

/// Canonical routing vertex of an update: min endpoint for edges, the id for
/// vertex ops (where `u` holds the id and `v` is unused).
[[nodiscard]] inline graph::VertexId route_vertex(
    const graph::GraphUpdate& upd) noexcept {
  switch (upd.op) {
    case graph::UpdateOp::kInsertEdge:
    case graph::UpdateOp::kRemoveEdge:
      return upd.u < upd.v ? upd.u : upd.v;
    case graph::UpdateOp::kInsertVertex:
    case graph::UpdateOp::kRemoveVertex:
      return upd.u;
  }
  return upd.u;
}

/// Owner shard of an update among N shards, before failover.
[[nodiscard]] inline std::uint32_t owner_shard(const graph::GraphUpdate& upd,
                                               std::uint32_t n_shards) noexcept {
  return home_shard(route_vertex(upd), n_shards);
}

/// Owner after failover: the home shard if alive, else the next live shard in
/// ring order. `dead[i]` marks permanently dead shards. Returns n_shards when
/// every shard is dead (no owner exists).
[[nodiscard]] inline std::uint32_t owner_shard_live(
    const graph::GraphUpdate& upd, const std::vector<bool>& dead) noexcept {
  const auto n = static_cast<std::uint32_t>(dead.size());
  if (n == 0) return 0;
  const std::uint32_t home = owner_shard(upd, n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t s = (home + i) % n;
    if (!dead[s]) return s;
  }
  return n;
}

}  // namespace paracosm::shard
