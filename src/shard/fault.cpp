#include "shard/fault.hpp"

#include <sstream>
#include <stdexcept>

#include "util/rng.hpp"

namespace paracosm::shard {

namespace {

/// Uniform [0, 1) from a hash — 53 mantissa bits, the usual construction.
[[nodiscard]] double unit(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::istringstream in(spec);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (item.empty()) continue;
    const auto eq = item.find('=');
    if (eq == std::string::npos)
      throw std::invalid_argument("fault spec: missing '=' in '" + item + "'");
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    try {
      if (key == "seed") {
        plan.seed = std::stoull(value);
      } else if (key == "drop") {
        plan.drop_rate = std::stod(value);
      } else if (key == "dup") {
        plan.dup_rate = std::stod(value);
      } else if (key == "corrupt") {
        plan.corrupt_rate = std::stod(value);
      } else if (key == "delay") {
        const auto colon = value.find(':');
        plan.delay_rate = std::stod(value.substr(0, colon));
        if (colon != std::string::npos)
          plan.delay_us =
              static_cast<std::uint32_t>(std::stoul(value.substr(colon + 1)));
      } else {
        throw std::invalid_argument("fault spec: unknown key '" + key + "'");
      }
    } catch (const std::invalid_argument&) {
      throw;
    } catch (const std::exception&) {
      throw std::invalid_argument("fault spec: bad value in '" + item + "'");
    }
  }
  return plan;
}

std::string FaultPlan::to_spec() const {
  std::ostringstream out;
  out << "seed=" << seed;
  if (drop_rate > 0) out << ",drop=" << drop_rate;
  if (dup_rate > 0) out << ",dup=" << dup_rate;
  if (corrupt_rate > 0) out << ",corrupt=" << corrupt_rate;
  if (delay_rate > 0) out << ",delay=" << delay_rate << ":" << delay_us;
  return out.str();
}

std::uint64_t FaultPlane::mix(std::uint32_t kind, std::uint16_t shard,
                              std::uint64_t seq,
                              std::uint32_t attempt) const noexcept {
  std::uint64_t state = plan_.seed ^ (std::uint64_t{kind} << 56) ^
                        (std::uint64_t{shard} << 40) ^
                        (std::uint64_t{attempt} << 32) ^ seq;
  return util::splitmix64(state);
}

bool FaultPlane::drop(std::uint16_t shard, std::uint64_t seq,
                      std::uint32_t attempt) noexcept {
  if (plan_.drop_rate <= 0) return false;
  const bool hit = unit(mix(1, shard, seq, attempt)) < plan_.drop_rate;
  if (hit) ++stats_.dropped;
  return hit;
}

bool FaultPlane::dup(std::uint16_t shard, std::uint64_t seq,
                     std::uint32_t attempt) noexcept {
  if (plan_.dup_rate <= 0) return false;
  const bool hit = unit(mix(2, shard, seq, attempt)) < plan_.dup_rate;
  if (hit) ++stats_.duplicated;
  return hit;
}

int FaultPlane::corrupt_byte(std::uint16_t shard, std::uint64_t seq,
                             std::uint32_t attempt,
                             std::size_t frame_bytes) noexcept {
  if (plan_.corrupt_rate <= 0 || frame_bytes == 0) return -1;
  const std::uint64_t h = mix(3, shard, seq, attempt);
  if (unit(h) >= plan_.corrupt_rate) return -1;
  ++stats_.corrupted;
  // Flip the checksum field or a payload byte, never the framing fields
  // (magic / type / shard / seq / payload_len in bytes [0, 24)): corrupting
  // framing desynchronizes the stream — a different failure class
  // (kTornFrame) that process kills exercise separately. Keeping framing
  // intact means every corruption lands as a clean checksum-mismatch drop
  // the retry path must absorb.
  const std::size_t lo = frame_bytes > 24 ? 24 : 0;
  return static_cast<int>(lo + (h >> 17) % (frame_bytes - lo));
}

std::uint32_t FaultPlane::delay_us(std::uint16_t shard, std::uint64_t seq,
                                   std::uint32_t attempt) noexcept {
  if (plan_.delay_rate <= 0 || plan_.delay_us == 0) return 0;
  if (unit(mix(4, shard, seq, attempt)) >= plan_.delay_rate) return 0;
  ++stats_.delayed;
  return plan_.delay_us;
}

}  // namespace paracosm::shard
