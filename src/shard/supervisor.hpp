// Shard supervisor: process lifecycle for the coordinator (DESIGN.md §12).
//
// Owns the fork/exec of `paracosm_shard` children, one socketpair per child
// (parent end CLOEXEC, child end passed by fd number through exec), SIGCHLD
// reaping via a self-pipe, and restart-with-recovery:
//
//   spawn    — socketpair + fork + exec, then await the worker's kHello
//              (which carries its recovered next-sequence) under a generous
//              deadline. The kill-at fault flag is forwarded only on the
//              FIRST spawn of the targeted shard, so each injected kill
//              fires exactly once.
//   restart  — a crashed shard is reaped and respawned with --recover: the
//              worker replays snapshot + WAL suffix and reports the sequence
//              it is current through. Restarts are budgeted; when the budget
//              is exhausted the shard is marked permanently dead and the
//              coordinator degrades by failing its ownership over to the
//              next live shard (partition.hpp) — possible because every
//              shard holds a full replica.
//   shutdown — kShutdown to each live child, await kShutdownAck, waitpid.
//              Anything still alive after the deadline is SIGKILLed so a
//              wedged worker cannot hang the parent.
//
// The supervisor is deliberately synchronous and single-threaded: liveness
// problems surface as transport errors on the coordinator's own request
// path, the self-pipe is drained opportunistically, and determinism of the
// global result never depends on signal arrival timing.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "shard/fault.hpp"
#include "shard/transport.hpp"
#include "shard/wire.hpp"

namespace paracosm::shard {

/// Resolve the worker binary: $PARACOSM_SHARD_BIN, else `paracosm_shard`
/// next to the running executable, else bare (PATH lookup at exec).
[[nodiscard]] std::string resolve_shard_binary();

struct SupervisorOptions {
  std::uint32_t n_shards = 2;
  std::string shard_binary;  ///< empty -> resolve_shard_binary()

  // Forwarded worker configuration.
  std::string graph_path;
  std::string query_path;
  std::string algorithm = "graphflow";
  unsigned worker_threads = 1;
  std::string dir;  ///< per-shard WAL/snapshot/metrics files live here
  std::uint64_t snapshot_every = 0;
  std::int64_t budget_us = 0;
  std::uint64_t metrics_every = 0;
  bool worker_metrics = false;

  /// Restarts allowed per shard before it is declared permanently dead.
  int restart_budget = 3;
  std::int64_t hello_timeout_ms = 30'000;

  /// Targeted kill fault: shard `kill_shard` gets --kill-at on first spawn.
  int kill_shard = -1;
  std::int64_t kill_at = -1;
};

struct ShardProc {
  pid_t pid = -1;
  std::unique_ptr<Channel> chan;
  TransportStats retired;  ///< stats of channels closed by restarts/shutdown
  std::uint64_t next_seq = 0;  ///< from the latest kHello
  wire::Hello last_hello;
  int restarts = 0;
  bool alive = false;
  bool permanently_dead = false;
  wire::ShutdownSummary summary;  ///< valid after a clean shutdown ack
  bool have_summary = false;
};

class Supervisor {
 public:
  explicit Supervisor(SupervisorOptions opts);
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Spawn every shard fresh. Returns false (with stderr diagnostics) if any
  /// worker fails to come up.
  [[nodiscard]] bool start_all();

  /// Reap any exited children (non-blocking; drains the SIGCHLD self-pipe)
  /// and mark them not-alive.
  void reap();

  /// Restart a crashed shard with recovery. Returns false when the restart
  /// budget is exhausted (the shard is then permanently dead) or the respawn
  /// itself failed.
  [[nodiscard]] bool restart(std::uint32_t shard);

  /// Graceful stop: kShutdown / await acks / waitpid, SIGKILL stragglers.
  void shutdown_all(std::int64_t deadline_ms = 10'000);

  [[nodiscard]] ShardProc& proc(std::uint32_t shard) { return procs_[shard]; }
  [[nodiscard]] std::uint32_t n_shards() const noexcept { return opts_.n_shards; }
  [[nodiscard]] std::uint64_t total_restarts() const noexcept { return restarts_; }
  [[nodiscard]] std::vector<bool> dead_set() const;

 private:
  [[nodiscard]] bool spawn(std::uint32_t shard, bool recover);
  void kill_hard(std::uint32_t shard);

  SupervisorOptions opts_;
  std::vector<ShardProc> procs_;
  std::uint64_t restarts_ = 0;
};

}  // namespace paracosm::shard
