#include "shard/supervisor.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "obs/trace_ring.hpp"

namespace paracosm::shard {

namespace {

// SIGCHLD self-pipe. One supervisor per process is the supported topology
// (the coordinator owns it), so process-global state is acceptable here the
// same way it is for the worker's signal flags.
int g_chld_pipe[2] = {-1, -1};

void on_sigchld(int) {
  const int saved = errno;
  const unsigned char b = 1;
  if (g_chld_pipe[1] >= 0) (void)!::write(g_chld_pipe[1], &b, 1);
  errno = saved;
}

void install_sigchld() {
  if (g_chld_pipe[0] >= 0) return;
  if (::pipe(g_chld_pipe) != 0) return;
  for (const int fd : g_chld_pipe) {
    ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL) | O_NONBLOCK);
    ::fcntl(fd, F_SETFD, FD_CLOEXEC);
  }
  struct sigaction sa{};
  sa.sa_handler = on_sigchld;
  sa.sa_flags = SA_RESTART | SA_NOCLDSTOP;
  sigemptyset(&sa.sa_mask);
  ::sigaction(SIGCHLD, &sa, nullptr);
}

void drain_chld_pipe() {
  if (g_chld_pipe[0] < 0) return;
  unsigned char buf[64];
  while (::read(g_chld_pipe[0], buf, sizeof buf) > 0) {
  }
}

}  // namespace

std::string resolve_shard_binary() {
  if (const char* env = std::getenv("PARACOSM_SHARD_BIN"); env && *env)
    return env;
  char exe[4096];
  const ssize_t n = ::readlink("/proc/self/exe", exe, sizeof exe - 1);
  if (n > 0) {
    exe[n] = '\0';
    std::string path(exe);
    const std::size_t slash = path.rfind('/');
    if (slash != std::string::npos) {
      path.resize(slash + 1);
      path += "paracosm_shard";
      if (::access(path.c_str(), X_OK) == 0) return path;
    }
  }
  return "paracosm_shard";  // last resort: PATH lookup at exec
}

Supervisor::Supervisor(SupervisorOptions opts) : opts_(std::move(opts)) {
  if (opts_.shard_binary.empty()) opts_.shard_binary = resolve_shard_binary();
  procs_.resize(opts_.n_shards);
  install_sigchld();
  ::signal(SIGPIPE, SIG_IGN);  // a dead worker must not kill the coordinator
}

Supervisor::~Supervisor() {
  for (std::uint32_t s = 0; s < procs_.size(); ++s)
    if (procs_[s].alive) kill_hard(s);
}

bool Supervisor::spawn(std::uint32_t shard, bool recover) {
  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
    std::perror("socketpair");
    return false;
  }
  // Parent end must not leak into this child or its future siblings; the
  // child end is inherited deliberately and named on the command line.
  ::fcntl(sv[0], F_SETFD, FD_CLOEXEC);

  char fd_str[16], id_str[16], n_str[16], threads_str[16];
  char snap_every[32], budget[32], metrics_every[32], kill_at[32];
  std::snprintf(fd_str, sizeof fd_str, "%d", sv[1]);
  std::snprintf(id_str, sizeof id_str, "%u", shard);
  std::snprintf(n_str, sizeof n_str, "%u", opts_.n_shards);
  std::snprintf(threads_str, sizeof threads_str, "%u", opts_.worker_threads);
  std::snprintf(snap_every, sizeof snap_every, "%llu",
                static_cast<unsigned long long>(opts_.snapshot_every));
  std::snprintf(budget, sizeof budget, "%lld",
                static_cast<long long>(opts_.budget_us));
  std::snprintf(metrics_every, sizeof metrics_every, "%llu",
                static_cast<unsigned long long>(opts_.metrics_every));
  std::snprintf(kill_at, sizeof kill_at, "%lld",
                static_cast<long long>(opts_.kill_at));

  const std::string dir = opts_.dir.empty() ? std::string(".") : opts_.dir;
  const std::string wal = dir + "/shard-" + std::to_string(shard) + ".wal";
  const std::string snap = dir + "/shard-" + std::to_string(shard) + ".snap";
  const std::string metrics =
      dir + "/shard-" + std::to_string(shard) + "-metrics.json";

  std::vector<const char*> argv;
  argv.push_back(opts_.shard_binary.c_str());
  argv.push_back("--id"), argv.push_back(id_str);
  argv.push_back("--shards"), argv.push_back(n_str);
  argv.push_back("--fd"), argv.push_back(fd_str);
  argv.push_back("--graph"), argv.push_back(opts_.graph_path.c_str());
  argv.push_back("--query"), argv.push_back(opts_.query_path.c_str());
  argv.push_back("--algorithm"), argv.push_back(opts_.algorithm.c_str());
  argv.push_back("--threads"), argv.push_back(threads_str);
  argv.push_back("--wal"), argv.push_back(wal.c_str());
  argv.push_back("--snapshot"), argv.push_back(snap.c_str());
  if (opts_.snapshot_every > 0)
    argv.push_back("--snapshot-every"), argv.push_back(snap_every);
  if (opts_.budget_us > 0)
    argv.push_back("--budget-us"), argv.push_back(budget);
  if (opts_.worker_metrics) {
    argv.push_back("--metrics-out"), argv.push_back(metrics.c_str());
    if (opts_.metrics_every > 0)
      argv.push_back("--metrics-every"), argv.push_back(metrics_every);
  }
  if (recover) argv.push_back("--recover");
  // The injected kill rides only the first spawn of the targeted shard: the
  // respawn must not re-crash at the same point or recovery could never be
  // observed succeeding.
  if (!recover && opts_.kill_at >= 0 &&
      static_cast<int>(shard) == opts_.kill_shard)
    argv.push_back("--kill-at"), argv.push_back(kill_at);
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    std::perror("fork");
    ::close(sv[0]);
    ::close(sv[1]);
    return false;
  }
  if (pid == 0) {
    // Child: restore default signal handling so the worker installs its own.
    ::signal(SIGCHLD, SIG_DFL);
    ::signal(SIGPIPE, SIG_DFL);
    ::execvp(opts_.shard_binary.c_str(),
             const_cast<char* const*>(argv.data()));
    std::fprintf(stderr, "exec %s: %s\n", opts_.shard_binary.c_str(),
                 std::strerror(errno));
    std::_Exit(127);
  }
  ::close(sv[1]);

  ShardProc& p = procs_[shard];
  p.pid = pid;
  p.chan = std::make_unique<Channel>(sv[0]);
  p.alive = true;
  p.have_summary = false;

  // Await the hello — the worker loads the graph (and replays its WAL when
  // recovering) before greeting, so the deadline is generous.
  Frame hi;
  const TransportError e = p.chan->recv(hi, opts_.hello_timeout_ms);
  if (e != TransportError::kOk || hi.type != FrameType::kHello) {
    std::fprintf(stderr, "shard %u: no hello (%s)\n", shard,
                 transport_error_name(e));
    kill_hard(shard);
    return false;
  }
  p.next_seq = hi.seq;
  if (auto h = wire::decode_hello(hi.payload)) p.last_hello = *h;
  return true;
}

bool Supervisor::start_all() {
  for (std::uint32_t s = 0; s < opts_.n_shards; ++s)
    if (!spawn(s, /*recover=*/false)) return false;
  return true;
}

void Supervisor::reap() {
  drain_chld_pipe();
  for (;;) {
    int status = 0;
    const pid_t pid = ::waitpid(-1, &status, WNOHANG);
    if (pid <= 0) break;
    for (ShardProc& p : procs_) {
      if (p.pid == pid) {
        p.alive = false;
        p.pid = -1;
        break;
      }
    }
  }
}

bool Supervisor::restart(std::uint32_t shard) {
  ShardProc& p = procs_[shard];
  if (p.permanently_dead) return false;
  // The shard may be wedged rather than dead (slow-peer fault, livelock):
  // make the death unconditional before respawning so two workers never
  // share one WAL.
  kill_hard(shard);
  if (p.restarts >= opts_.restart_budget) {
    std::fprintf(stderr,
                 "shard %u: restart budget (%d) exhausted, declaring "
                 "permanently dead\n",
                 shard, opts_.restart_budget);
    p.permanently_dead = true;
    return false;
  }
  ++p.restarts;
  ++restarts_;
  PARACOSM_TRACE_INSTANT(obs::EventKind::kShardRestart, shard,
                         static_cast<std::uint64_t>(p.restarts));
  if (!spawn(shard, /*recover=*/true)) {
    p.permanently_dead = true;
    return false;
  }
  return true;
}

void Supervisor::kill_hard(std::uint32_t shard) {
  ShardProc& p = procs_[shard];
  if (p.pid > 0) {
    ::kill(p.pid, SIGKILL);
    int status = 0;
    while (::waitpid(p.pid, &status, 0) < 0 && errno == EINTR) {
    }
  }
  p.pid = -1;
  p.alive = false;
  if (p.chan) p.retired.merge(p.chan->stats());
  p.chan.reset();
}

void Supervisor::shutdown_all(std::int64_t deadline_ms) {
  reap();
  for (std::uint32_t s = 0; s < procs_.size(); ++s) {
    ShardProc& p = procs_[s];
    if (!p.alive || !p.chan) continue;
    Frame bye;
    bye.type = FrameType::kShutdown;
    bye.shard = static_cast<std::uint16_t>(s);
    bye.seq = p.next_seq;
    if (p.chan->send(bye, 2000) != TransportError::kOk) {
      kill_hard(s);
      continue;
    }
    // The worker drains its queue and writes a final snapshot before acking,
    // so this wait shares the overall deadline.
    Frame ack;
    for (;;) {
      const TransportError e = p.chan->recv(ack, deadline_ms);
      if (e == TransportError::kChecksumMismatch) continue;
      if (e != TransportError::kOk) break;
      if (ack.type == FrameType::kShutdownAck) {
        if (auto sum = wire::decode_shutdown_summary(ack.payload)) {
          p.summary = *sum;
          p.have_summary = true;
        }
        break;
      }
    }
    if (p.pid > 0) {
      int status = 0;
      // The ack (or channel failure) precedes exit by at most the worker's
      // epilogue; a bounded SIGKILL fallback covers a wedged epilogue.
      for (int i = 0; i < 100; ++i) {
        const pid_t r = ::waitpid(p.pid, &status, WNOHANG);
        if (r == p.pid || (r < 0 && errno == ECHILD)) {
          p.pid = -1;
          break;
        }
        struct timespec ts{0, 50'000'000};
        ::nanosleep(&ts, nullptr);
      }
      if (p.pid > 0) kill_hard(s);
    }
    p.alive = false;
    if (p.chan) p.retired.merge(p.chan->stats());
    p.chan.reset();
  }
}

std::vector<bool> Supervisor::dead_set() const {
  std::vector<bool> dead(procs_.size(), false);
  for (std::size_t s = 0; s < procs_.size(); ++s)
    dead[s] = procs_[s].permanently_dead;
  return dead;
}

}  // namespace paracosm::shard
