// Payload encodings for the shard protocol frames (transport.hpp). Kept as
// plain little-endian structs-on-bytes — both ends are the same binary on
// the same machine, but explicit encoding keeps the checksums meaningful and
// the frames inspectable in a capture.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "csm/match.hpp"
#include "graph/types.hpp"

namespace paracosm::shard::wire {

inline void put_u32(std::vector<unsigned char>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<unsigned char>(v >> (8 * i)));
}
inline void put_u64(std::vector<unsigned char>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<unsigned char>(v >> (8 * i)));
}

class Reader {
 public:
  explicit Reader(const std::vector<unsigned char>& buf) noexcept : buf_(buf) {}

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] std::uint8_t u8() noexcept {
    if (off_ + 1 > buf_.size()) return fail();
    return buf_[off_++];
  }
  [[nodiscard]] std::uint32_t u32() noexcept {
    if (off_ + 4 > buf_.size()) return fail();
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(buf_[off_++]) << (8 * i);
    return v;
  }
  [[nodiscard]] std::uint64_t u64() noexcept {
    if (off_ + 8 > buf_.size()) return fail();
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(buf_[off_++]) << (8 * i);
    return v;
  }

 private:
  std::uint8_t fail() noexcept {
    ok_ = false;
    return 0;
  }
  const std::vector<unsigned char>& buf_;
  std::size_t off_ = 0;
  bool ok_ = true;
};

// ------------------------------------------------------------------- kApply

inline std::vector<unsigned char> encode_apply(const graph::GraphUpdate& upd) {
  std::vector<unsigned char> out;
  out.push_back(static_cast<unsigned char>(upd.op));
  put_u32(out, upd.u);
  put_u32(out, upd.v);
  put_u32(out, upd.label);
  return out;
}

inline std::optional<graph::GraphUpdate> decode_apply(
    const std::vector<unsigned char>& payload) {
  Reader r(payload);
  graph::GraphUpdate upd;
  upd.op = static_cast<graph::UpdateOp>(r.u8());
  upd.u = r.u32();
  upd.v = r.u32();
  upd.label = r.u32();
  if (!r.ok() ||
      static_cast<std::uint8_t>(upd.op) >
          static_cast<std::uint8_t>(graph::UpdateOp::kRemoveVertex))
    return std::nullopt;
  return upd;
}

// ---------------------------------------------------------------- kApplyAck

/// The worker's acknowledgement: the UpdateDone summary plus — when the
/// worker owned the update — the full ΔM mapping stream in the engine's
/// deterministic delivery order, flattened as (qv, dv) pairs.
struct ApplyAck {
  bool applied = false;
  bool cancelled = false;
  std::uint64_t positive = 0;
  std::uint64_t negative = 0;
  std::uint32_t match_size = 0;  ///< assignments per mapping (|V(q)|)
  std::vector<csm::Assignment> assignments;
};

inline std::vector<unsigned char> encode_apply_ack(const ApplyAck& ack) {
  std::vector<unsigned char> out;
  out.push_back(ack.applied ? 1 : 0);
  out.push_back(ack.cancelled ? 1 : 0);
  put_u64(out, ack.positive);
  put_u64(out, ack.negative);
  put_u32(out, ack.match_size);
  put_u32(out, static_cast<std::uint32_t>(ack.assignments.size()));
  for (const csm::Assignment& a : ack.assignments) {
    put_u32(out, a.qv);
    put_u32(out, a.dv);
  }
  return out;
}

inline std::optional<ApplyAck> decode_apply_ack(
    const std::vector<unsigned char>& payload) {
  Reader r(payload);
  ApplyAck ack;
  ack.applied = r.u8() != 0;
  ack.cancelled = r.u8() != 0;
  ack.positive = r.u64();
  ack.negative = r.u64();
  ack.match_size = r.u32();
  const std::uint32_t n = r.u32();
  if (!r.ok() || n > (payload.size() / 8) + 1) return std::nullopt;
  ack.assignments.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    csm::Assignment a;
    a.qv = r.u32();
    a.dv = r.u32();
    ack.assignments.push_back(a);
  }
  if (!r.ok()) return std::nullopt;
  return ack;
}

// ------------------------------------------------------------------- kHello

struct Hello {
  std::uint64_t replayed = 0;  ///< WAL records replayed during recovery
  bool used_snapshot = false;
};

inline std::vector<unsigned char> encode_hello(const Hello& h) {
  std::vector<unsigned char> out;
  put_u64(out, h.replayed);
  out.push_back(h.used_snapshot ? 1 : 0);
  return out;
}

inline std::optional<Hello> decode_hello(
    const std::vector<unsigned char>& payload) {
  Reader r(payload);
  Hello h;
  h.replayed = r.u64();
  h.used_snapshot = r.u8() != 0;
  if (!r.ok()) return std::nullopt;
  return h;
}

// ------------------------------------------------------------- kShutdownAck

struct ShutdownSummary {
  std::uint64_t processed = 0;
  std::uint64_t wal_records = 0;
  std::uint64_t wal_retries = 0;
  std::uint64_t snapshots = 0;
};

inline std::vector<unsigned char> encode_shutdown_summary(
    const ShutdownSummary& s) {
  std::vector<unsigned char> out;
  put_u64(out, s.processed);
  put_u64(out, s.wal_records);
  put_u64(out, s.wal_retries);
  put_u64(out, s.snapshots);
  return out;
}

inline std::optional<ShutdownSummary> decode_shutdown_summary(
    const std::vector<unsigned char>& payload) {
  Reader r(payload);
  ShutdownSummary s;
  s.processed = r.u64();
  s.wal_records = r.u64();
  s.wal_retries = r.u64();
  s.snapshots = r.u64();
  if (!r.ok()) return std::nullopt;
  return s;
}

inline std::vector<unsigned char> encode_u64(std::uint64_t v) {
  std::vector<unsigned char> out;
  put_u64(out, v);
  return out;
}

inline std::optional<std::uint64_t> decode_u64(
    const std::vector<unsigned char>& payload) {
  Reader r(payload);
  const std::uint64_t v = r.u64();
  if (!r.ok()) return std::nullopt;
  return v;
}

}  // namespace paracosm::shard::wire
