#include "shard/transport.hpp"

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "obs/trace_ring.hpp"
#include "util/checksum.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace paracosm::shard {

namespace {

void put_u16(unsigned char* p, std::uint16_t v) noexcept {
  p[0] = static_cast<unsigned char>(v);
  p[1] = static_cast<unsigned char>(v >> 8);
}
void put_u32(unsigned char* p, std::uint32_t v) noexcept {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<unsigned char>(v >> (8 * i));
}
void put_u64(unsigned char* p, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<unsigned char>(v >> (8 * i));
}
[[nodiscard]] std::uint16_t get_u16(const unsigned char* p) noexcept {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}
[[nodiscard]] std::uint32_t get_u32(const unsigned char* p) noexcept {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}
[[nodiscard]] std::uint64_t get_u64(const unsigned char* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

/// FNV-1a over the first 24 header bytes and the payload.
[[nodiscard]] std::uint64_t frame_checksum(
    const unsigned char* header, const std::vector<unsigned char>& payload) noexcept {
  std::uint64_t h = util::kFnv1aOffset;
  for (std::size_t i = 0; i < 24; ++i) {
    h ^= header[i];
    h *= util::kFnv1aPrime;
  }
  for (const unsigned char b : payload) {
    h ^= b;
    h *= util::kFnv1aPrime;
  }
  return h;
}

[[nodiscard]] std::int64_t now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             util::Clock::now().time_since_epoch())
      .count();
}

[[nodiscard]] std::int64_t deadline_from(std::int64_t timeout_ms) noexcept {
  if (timeout_ms < 0) return -1;  // block forever
  return now_ns() + timeout_ms * 1'000'000;
}

/// poll() until the fd is ready for `events` or the deadline passes.
[[nodiscard]] TransportError wait_ready(int fd, short events,
                                        std::int64_t deadline_ns) {
  for (;;) {
    int wait_ms = -1;
    if (deadline_ns >= 0) {
      const std::int64_t left = deadline_ns - now_ns();
      if (left <= 0) return TransportError::kTimeout;
      wait_ms = static_cast<int>((left + 999'999) / 1'000'000);
    }
    struct pollfd pfd{fd, events, 0};
    const int rc = ::poll(&pfd, 1, wait_ms);
    if (rc > 0) {
      if (pfd.revents & (POLLHUP | POLLERR | POLLNVAL)) {
        // Readable data may still be queued ahead of the hangup; let the
        // read itself discover EOF so a final ack is not lost.
        if ((pfd.revents & events) == 0) return TransportError::kPeerGone;
      }
      return TransportError::kOk;
    }
    if (rc == 0) return TransportError::kTimeout;
    if (errno != EINTR) return TransportError::kPeerGone;
  }
}

}  // namespace

const char* transport_error_name(TransportError e) noexcept {
  switch (e) {
    case TransportError::kOk: return "ok";
    case TransportError::kTimeout: return "timeout";
    case TransportError::kTornFrame: return "torn_frame";
    case TransportError::kPeerGone: return "peer_gone";
    case TransportError::kChecksumMismatch: return "checksum_mismatch";
  }
  return "?";
}

Channel::~Channel() {
  if (fd_ >= 0) ::close(fd_);
}

TransportError Channel::send(const Frame& f, std::int64_t timeout_ms,
                             int corrupt_byte) {
  std::vector<unsigned char> msg(kFrameHeaderBytes + f.payload.size());
  put_u32(msg.data(), kFrameMagic);
  msg[4] = static_cast<unsigned char>(f.type);
  msg[5] = f.flags;
  put_u16(msg.data() + 6, f.shard);
  put_u64(msg.data() + 8, f.seq);
  put_u32(msg.data() + 16, static_cast<std::uint32_t>(f.payload.size()));
  put_u32(msg.data() + 20, 0);  // reserved
  put_u64(msg.data() + 24, frame_checksum(msg.data(), f.payload));
  std::memcpy(msg.data() + kFrameHeaderBytes, f.payload.data(),
              f.payload.size());
  if (corrupt_byte >= 0 && static_cast<std::size_t>(corrupt_byte) < msg.size())
    msg[static_cast<std::size_t>(corrupt_byte)] ^= 0x5a;

  const std::int64_t deadline = deadline_from(timeout_ms);
  std::size_t off = 0;
  while (off < msg.size()) {
    const TransportError w = wait_ready(fd_, POLLOUT, deadline);
    if (w != TransportError::kOk) {
      if (w == TransportError::kTimeout) ++stats_.timeouts;
      return w;
    }
    const ssize_t n = ::write(fd_, msg.data() + off, msg.size() - off);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK))
      continue;
    ++stats_.peer_gone;  // EPIPE / ECONNRESET: the worker died under us
    return TransportError::kPeerGone;
  }
  ++stats_.frames_sent;
  return TransportError::kOk;
}

TransportError Channel::read_exact(unsigned char* buf, std::size_t len,
                                   std::int64_t deadline_ns, bool mid_frame) {
  std::size_t off = 0;
  while (off < len) {
    const TransportError w = wait_ready(fd_, POLLIN, deadline_ns);
    if (w != TransportError::kOk) {
      if (w == TransportError::kTimeout) {
        // A timeout mid-frame means the stream is stuck between frame
        // boundaries — resynchronization is impossible, the channel is torn.
        if (mid_frame && off > 0) {
          ++stats_.torn_frames;
          return TransportError::kTornFrame;
        }
        ++stats_.timeouts;
      }
      return w;
    }
    const ssize_t n = ::read(fd_, buf + off, len - off);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK))
      continue;
    if (n == 0 && off > 0) {
      ++stats_.torn_frames;  // EOF halfway through a frame: crash mid-send
      return TransportError::kTornFrame;
    }
    ++stats_.peer_gone;
    return TransportError::kPeerGone;
  }
  return TransportError::kOk;
}

TransportError Channel::recv(Frame& out, std::int64_t timeout_ms) {
  const std::int64_t deadline = deadline_from(timeout_ms);
  unsigned char header[kFrameHeaderBytes];
  TransportError e = read_exact(header, kFrameHeaderBytes, deadline,
                                /*mid_frame=*/true);
  if (e != TransportError::kOk) return e;

  const std::uint32_t payload_len = get_u32(header + 16);
  if (get_u32(header) != kFrameMagic || payload_len > kMaxPayloadBytes) {
    // Framing desync: without the magic at a frame boundary there is no way
    // to find the next boundary. The channel must be abandoned.
    ++stats_.torn_frames;
    return TransportError::kTornFrame;
  }
  out.type = static_cast<FrameType>(header[4]);
  out.flags = header[5];
  out.shard = get_u16(header + 6);
  out.seq = get_u64(header + 8);
  out.payload.resize(payload_len);
  if (payload_len > 0) {
    e = read_exact(out.payload.data(), payload_len, deadline, /*mid_frame=*/true);
    if (e != TransportError::kOk) return e;
  }
  if (get_u64(header + 24) != frame_checksum(header, out.payload)) {
    // The frame was fully consumed, so the stream stays aligned — drop it
    // and let the sender's retry cover the loss.
    ++stats_.checksum_drops;
    return TransportError::kChecksumMismatch;
  }
  ++stats_.frames_received;
  return TransportError::kOk;
}

TransportError Requester::request(const Frame& req, FrameType want, Frame& out) {
  TransportError last = TransportError::kTimeout;
  for (int attempt = 0; attempt < policy_.max_attempts; ++attempt) {
    PARACOSM_TRACE_SPAN(req_span, obs::EventKind::kShardRequest, req.shard,
                        req.seq, static_cast<std::uint64_t>(req.type));
    if (attempt > 0) {
      ++chan_.stats().retries;
      PARACOSM_TRACE_INSTANT(obs::EventKind::kShardRetry, req.shard, req.seq,
                             static_cast<std::uint64_t>(last));
      // Exponential backoff with deterministic jitter: reruns of the same
      // (seed, shard, seq) schedule identical waits.
      const std::int64_t base =
          std::min(policy_.backoff_base_ms << (attempt - 1),
                   policy_.backoff_cap_ms);
      std::uint64_t jstate = policy_.jitter_seed ^ (req.seq << 16) ^
                             (std::uint64_t{req.shard} << 8) ^
                             static_cast<std::uint64_t>(attempt);
      const std::int64_t jitter =
          policy_.backoff_base_ms > 0
              ? static_cast<std::int64_t>(util::splitmix64(jstate) %
                                          static_cast<std::uint64_t>(
                                              policy_.backoff_base_ms))
              : 0;
      std::this_thread::sleep_for(std::chrono::milliseconds(base + jitter));
    }

    const std::uint32_t att = static_cast<std::uint32_t>(attempt);
    if (fault_) {
      const std::uint32_t stall = fault_->delay_us(req.shard, req.seq, att);
      if (stall > 0) std::this_thread::sleep_for(std::chrono::microseconds(stall));
    }
    const bool dropped = fault_ && fault_->drop(req.shard, req.seq, att);
    if (!dropped) {
      const int corrupt =
          fault_ ? fault_->corrupt_byte(req.shard, req.seq, att,
                                        kFrameHeaderBytes + req.payload.size())
                 : -1;
      last = chan_.send(req, policy_.attempt_timeout_ms, corrupt);
      if (last == TransportError::kPeerGone || last == TransportError::kTornFrame)
        return last;
      if (last == TransportError::kOk && fault_ &&
          fault_->dup(req.shard, req.seq, att))
        (void)chan_.send(req, policy_.attempt_timeout_ms);
    }

    // Await the matching reply within the attempt deadline. Replies for
    // older sequences (a duplicated request answered twice) are discarded.
    const std::int64_t attempt_deadline =
        now_ns() + policy_.attempt_timeout_ms * 1'000'000;
    for (;;) {
      const std::int64_t left_ms = (attempt_deadline - now_ns()) / 1'000'000;
      if (left_ms <= 0) {
        last = TransportError::kTimeout;
        break;
      }
      last = chan_.recv(out, left_ms);
      if (last == TransportError::kPeerGone || last == TransportError::kTornFrame)
        return last;
      if (last != TransportError::kOk) break;  // timeout / checksum drop
      if ((out.type == want || out.type == FrameType::kNak) &&
          out.seq == req.seq)
        return TransportError::kOk;
      ++chan_.stats().stale_acks;  // stale or duplicate reply: keep waiting
    }
  }
  return last;
}

}  // namespace paracosm::shard
