#include "shard/coordinator.hpp"

#include <cstdio>
#include <utility>

#include "shard/partition.hpp"
#include "util/checksum.hpp"

namespace paracosm::shard {

std::uint64_t fold_delta(
    std::uint64_t h, std::uint64_t seq, std::uint64_t positive,
    std::uint64_t negative,
    const std::vector<csm::Assignment>& assignments) noexcept {
  h = util::fnv1a_word(h, static_cast<std::uint32_t>(seq));
  h = util::fnv1a_word(h, static_cast<std::uint32_t>(seq >> 32));
  h = util::fnv1a_word(h, static_cast<std::uint32_t>(positive));
  h = util::fnv1a_word(h, static_cast<std::uint32_t>(negative));
  for (const csm::Assignment& a : assignments) {
    h = util::fnv1a_word(h, a.qv);
    h = util::fnv1a_word(h, a.dv);
  }
  return h;
}

Coordinator::Coordinator(CoordinatorOptions opts) : opts_(std::move(opts)) {
  sup_ = std::make_unique<Supervisor>(opts_.sup);
  if (opts_.fault.any()) fault_.emplace(opts_.fault);
  report_.delta_checksum = util::kFnv1aOffset;
  report_.shards.resize(opts_.sup.n_shards);
  for (std::uint32_t s = 0; s < opts_.sup.n_shards; ++s)
    report_.shards[s].shard = s;
}

bool Coordinator::start() {
  if (!sup_->start_all()) {
    error_ = "failed to start shard workers";
    return false;
  }
  return true;
}

TransportError Coordinator::apply_on(std::uint32_t shard,
                                     const graph::GraphUpdate& upd,
                                     std::uint64_t seq, bool owner,
                                     wire::ApplyAck& ack) {
  ShardProc& p = sup_->proc(shard);
  if (!p.alive || !p.chan) return TransportError::kPeerGone;

  Frame req;
  req.type = FrameType::kApply;
  req.flags = owner ? kFlagOwner : 0;
  req.shard = static_cast<std::uint16_t>(shard);
  req.seq = seq;
  req.payload = wire::encode_apply(upd);

  Requester requester(*p.chan, opts_.policy, fault_ ? &*fault_ : nullptr);
  Frame reply;
  const TransportError e = requester.request(req, FrameType::kApplyAck, reply);
  if (e != TransportError::kOk) return e;
  if (reply.type == FrameType::kNak) {
    // A sequence disagreement the synchronous protocol cannot produce on a
    // healthy shard; treat the worker's state as suspect and let the caller
    // restart it — recovery resynchronizes from the WAL.
    const auto expect = wire::decode_u64(reply.payload);
    std::fprintf(stderr,
                 "shard %u: NAK at seq %llu (worker expects %llu), "
                 "forcing restart\n",
                 shard, static_cast<unsigned long long>(seq),
                 static_cast<unsigned long long>(expect.value_or(0)));
    return TransportError::kTornFrame;
  }
  std::optional<wire::ApplyAck> decoded = wire::decode_apply_ack(reply.payload);
  if (!decoded) return TransportError::kTornFrame;  // checksummed yet invalid
  ack = std::move(*decoded);
  p.next_seq = seq + 1;
  return TransportError::kOk;
}

bool Coordinator::process(const graph::GraphUpdate& upd) {
  if (!error_.empty() || finished_) return false;
  const std::uint64_t seq = seq_++;
  sup_->reap();

  // ---------------------------------------------------------- owner phase
  wire::ApplyAck ack;
  std::uint32_t owner = 0;
  for (;;) {
    const std::vector<bool> dead = sup_->dead_set();
    owner = owner_shard_live(upd, dead);
    if (owner >= sup_->n_shards()) {
      error_ = "all shards permanently dead";
      return false;
    }
    const TransportError e = apply_on(owner, upd, seq, /*owner=*/true, ack);
    if (e == TransportError::kOk) break;
    // The shard crashed, wedged, or desynchronized. Reap and restart with
    // recovery, then resend the in-flight update: it is delayed, never
    // dropped. If the restart budget is gone, ownership fails over to the
    // next live shard — which has NOT yet applied this update (owner-first
    // ordering), so it enumerates from exactly the pre-update state.
    sup_->reap();
    const bool came_back = sup_->restart(owner);
    if (came_back) {
      ++report_.deferred_replays;
    } else {
      ++report_.failovers;
    }
  }
  report_.shards[owner].owned += 1;
  ++report_.processed;
  if (ack.applied) ++report_.applied;
  report_.positive += ack.positive;
  report_.negative += ack.negative;
  if (ack.match_size > 0)
    report_.matches_delivered += ack.assignments.size() / ack.match_size;
  report_.delta_checksum = fold_delta(report_.delta_checksum, seq,
                                      ack.positive, ack.negative,
                                      ack.assignments);
  if (on_ack_) on_ack_(seq, ack);

  // -------------------------------------------------------- replica phase
  for (std::uint32_t s = 0; s < sup_->n_shards(); ++s) {
    if (s == owner || sup_->proc(s).permanently_dead) continue;
    for (;;) {
      wire::ApplyAck replica_ack;
      const TransportError e = apply_on(s, upd, seq, /*owner=*/false,
                                        replica_ack);
      if (e == TransportError::kOk) break;
      sup_->reap();
      if (!sup_->restart(s)) break;  // permanently dead: drop from the ring
      ++report_.deferred_replays;
    }
  }
  return true;
}

CoordinatorReport Coordinator::finish() {
  if (!finished_) {
    finished_ = true;
    sup_->shutdown_all();
    for (std::uint32_t s = 0; s < sup_->n_shards(); ++s)
      report_.transport.merge(sup_->proc(s).retired);
    for (std::uint32_t s = 0; s < sup_->n_shards(); ++s) {
      const ShardProc& p = sup_->proc(s);
      ShardLane& lane = report_.shards[s];
      lane.restarts = p.restarts;
      lane.permanently_dead = p.permanently_dead;
      lane.hello_replayed = p.last_hello.replayed;
      lane.have_summary = p.have_summary;
      lane.summary = p.summary;
    }
    report_.restarts = sup_->total_restarts();
    if (fault_) report_.faults = fault_->stats();
    report_.error = error_;
  }
  return report_;
}

}  // namespace paracosm::shard
