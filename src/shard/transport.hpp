// Framed, checksummed, deadline-aware transport between the coordinator and
// its shard worker processes (DESIGN.md §12).
//
// The wire is a connected AF_UNIX SOCK_STREAM socketpair created before fork;
// the child's end survives exec and is passed by fd number. Every message is
// one frame: a fixed 32-byte little-endian header followed by the payload.
//
//   header: u32 magic "PCSF" | u8 type | u8 flags | u16 shard
//         | u64 seq | u32 payload_len | u32 reserved | u64 checksum
//
// The checksum is FNV-1a over the header's first 24 bytes plus the payload,
// so both a bit-flipped header field and a corrupted payload byte are caught
// by the reader. Error taxonomy (TransportError):
//
//   kTimeout          — the per-call deadline expired with no complete frame.
//   kTornFrame        — the stream died mid-frame, or framing desynchronized
//                       (bad magic / oversized length): the channel can no
//                       longer find frame boundaries and must be abandoned.
//   kPeerGone         — EOF or EPIPE/ECONNRESET: the process on the other end
//                       exited (the crash signal the supervisor acts on).
//   kChecksumMismatch — a well-framed message failed validation. The frame is
//                       dropped and the stream stays usable (framing is
//                       intact); the requester's retry covers the loss.
//
// Requester layers request/response on top: send, await the matching (type,
// seq) reply under a per-attempt deadline, and retry with exponential backoff
// plus deterministic jitter up to a bounded attempt budget. Retries are safe
// because every request carries the global update sequence and workers
// deduplicate by it (a resent request returns the cached acknowledgement).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "shard/fault.hpp"

namespace paracosm::shard {

inline constexpr std::uint32_t kFrameMagic = 0x46534350;  // "PCSF"
inline constexpr std::size_t kFrameHeaderBytes = 32;
/// Upper bound on one payload — a framing-sanity limit, not a protocol one
/// (an ack carrying more than this many bytes of assignments indicates a
/// desynchronized stream, not a real message).
inline constexpr std::uint32_t kMaxPayloadBytes = 64u << 20;

enum class FrameType : std::uint8_t {
  kHello = 1,      ///< worker -> coordinator: ready; seq = next WAL seq
  kHelloAck,       ///< coordinator -> worker: proceed
  kApply,          ///< coordinator -> worker: one update; payload Wire encode
  kApplyAck,       ///< worker -> coordinator: UpdateDone + owner ΔM mappings
  kPing,           ///< liveness probe; seq echoed in the pong
  kPong,           ///< payload: worker's next seq
  kShutdown,       ///< drain + final snapshot/metrics, then ack and exit 0
  kShutdownAck,    ///< payload: final counters (processed, retries, ...)
  kNak,            ///< worker saw a sequence gap; payload: expected seq
};

enum class TransportError : std::uint8_t {
  kOk = 0,
  kTimeout,
  kTornFrame,
  kPeerGone,
  kChecksumMismatch,
};

[[nodiscard]] const char* transport_error_name(TransportError e) noexcept;

struct Frame {
  FrameType type = FrameType::kPing;
  std::uint8_t flags = 0;    ///< kApply: bit 0 = this shard owns the update
  std::uint16_t shard = 0;   ///< destination / source shard id
  std::uint64_t seq = 0;     ///< global update sequence (or 0)
  std::vector<unsigned char> payload;
};

inline constexpr std::uint8_t kFlagOwner = 1;

/// Transport-side counters, aggregated into the coordinator report and the
/// serve JSON (per-shard lanes + totals).
struct TransportStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t retries = 0;           ///< request attempts beyond the first
  std::uint64_t timeouts = 0;
  std::uint64_t checksum_drops = 0;    ///< frames dropped by validation
  std::uint64_t torn_frames = 0;
  std::uint64_t peer_gone = 0;
  std::uint64_t stale_acks = 0;        ///< out-of-window replies discarded

  void merge(const TransportStats& o) noexcept {
    frames_sent += o.frames_sent;
    frames_received += o.frames_received;
    retries += o.retries;
    timeouts += o.timeouts;
    checksum_drops += o.checksum_drops;
    torn_frames += o.torn_frames;
    peer_gone += o.peer_gone;
    stale_acks += o.stale_acks;
  }
};

/// Bounded-retry policy for Requester. Backoff for attempt k (0-based, after
/// the k-th failure) is min(base << k, cap) plus deterministic jitter in
/// [0, base), seeded per (shard, seq, attempt) so reruns are reproducible.
struct RetryPolicy {
  int max_attempts = 5;
  std::int64_t attempt_timeout_ms = 1000;  ///< per-attempt response deadline
  std::int64_t backoff_base_ms = 5;
  std::int64_t backoff_cap_ms = 200;
  std::uint64_t jitter_seed = 0x5eed;
};

/// One end of the socketpair. Owns the fd. Send/recv move whole frames with
/// a per-call timeout (-1 = block indefinitely, 0 = poll).
class Channel {
 public:
  explicit Channel(int fd) noexcept : fd_(fd) {}
  ~Channel();

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Send one frame. `corrupt_byte` >= 0 flips that byte of the encoded
  /// message after the checksum is computed — the fault plane's hook for
  /// exercising the receiver's validation path.
  TransportError send(const Frame& f, std::int64_t timeout_ms = -1,
                      int corrupt_byte = -1);

  /// Receive one frame. kChecksumMismatch leaves the stream aligned (the
  /// whole frame was consumed); kTornFrame / kPeerGone mean the channel is
  /// dead.
  TransportError recv(Frame& out, std::int64_t timeout_ms = -1);

  [[nodiscard]] int fd() const noexcept { return fd_; }
  [[nodiscard]] TransportStats& stats() noexcept { return stats_; }

  /// Release ownership without closing (child side after fork bookkeeping).
  int release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  TransportError read_exact(unsigned char* buf, std::size_t len,
                            std::int64_t deadline_ns, bool mid_frame);

  int fd_ = -1;
  TransportStats stats_;
};

/// Request/response with bounded retry over a Channel (coordinator side).
/// Outgoing faults (drop/dup/delay/corrupt) are injected here, where the
/// attempt number is known, keeping Channel deterministic.
class Requester {
 public:
  Requester(Channel& chan, RetryPolicy policy, FaultPlane* fault = nullptr)
      : chan_(chan), policy_(policy), fault_(fault) {}

  /// Send `req` and wait for a `want`-typed reply with the same seq (or a
  /// kNak, surfaced to the caller via `out`). Retries timeouts and dropped /
  /// corrupted exchanges; kPeerGone and kTornFrame return immediately — only
  /// the supervisor can fix a dead peer.
  TransportError request(const Frame& req, FrameType want, Frame& out);

 private:
  Channel& chan_;
  RetryPolicy policy_;
  FaultPlane* fault_;
};

}  // namespace paracosm::shard
