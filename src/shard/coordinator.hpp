// Sharded-run coordinator (DESIGN.md §12): drives the full update stream
// through N supervised shard worker processes and merges per-shard ΔM into
// one deterministic global result.
//
// Protocol per update (synchronous — one update in flight at a time; this
// subsystem trades throughput for a provable delivery contract):
//
//   1. owner phase — the deterministic owner (partition.hpp, with ring
//      failover past permanently dead shards) receives the update with the
//      owner flag set and runs the full ΔM enumeration. The coordinator
//      awaits its acknowledgement — carrying the complete mapping stream in
//      the engine's deterministic delivery order — BEFORE any replica sees
//      the update. Owner-first ordering is what makes failover sound: if the
//      owner dies before acking, no replica has advanced past the update, so
//      the next live shard re-enumerates it from identical state.
//   2. replica phase — every other live shard receives the same update
//      without the owner flag and applies it maintain-only (enumeration
//      pre-cancelled under the PR-4 cancel contract), keeping its replica
//      exact for future ownership.
//
// Failure handling ("delayed, never dropped"): a request that exhausts its
// transport retries, or hits kPeerGone/kTornFrame, triggers a supervised
// restart-with-recovery of the target shard and a resend of the in-flight
// update — counted as a deferred replay. The restarted worker either
// recovered the update from its WAL (the resend returns the cached
// acknowledgement with byte-identical ΔM) or never saw it (the resend
// processes it fresh). When the restart budget is exhausted the shard is
// permanently dead and ownership fails over; only when every shard is dead
// does the coordinator report an error.
//
// The merged result is deterministic: owner acknowledgements are folded in
// global sequence order into totals, an FNV checksum over the flattened
// (seq, qv, dv) stream, and an optional per-update callback — byte-identical
// to a single-process engine run over the same stream, which is exactly what
// verify/shard_check.cpp asserts.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "graph/types.hpp"
#include "shard/fault.hpp"
#include "shard/supervisor.hpp"
#include "shard/transport.hpp"
#include "shard/wire.hpp"

namespace paracosm::shard {

/// Fold one update's ΔM into a running FNV checksum: the global sequence,
/// the delta counts, then every (qv, dv) assignment in delivery order. The
/// coordinator folds owner acknowledgements with this; the single-process
/// oracle folds its own engine output with the same function, so equal
/// checksums mean byte-identical merged streams.
[[nodiscard]] std::uint64_t fold_delta(
    std::uint64_t h, std::uint64_t seq, std::uint64_t positive,
    std::uint64_t negative,
    const std::vector<csm::Assignment>& assignments) noexcept;

struct CoordinatorOptions {
  SupervisorOptions sup;
  RetryPolicy policy;
  FaultPlan fault;  ///< transport fault plan; inactive when all rates are 0
};

/// Per-shard lane in the final report.
struct ShardLane {
  std::uint32_t shard = 0;
  std::uint64_t owned = 0;  ///< updates this shard enumerated as owner
  int restarts = 0;
  bool permanently_dead = false;
  std::uint64_t hello_replayed = 0;  ///< WAL records replayed on last spawn
  bool have_summary = false;
  wire::ShutdownSummary summary;
};

struct CoordinatorReport {
  std::string error;  ///< empty on success

  std::uint64_t processed = 0;
  std::uint64_t applied = 0;
  std::uint64_t positive = 0;
  std::uint64_t negative = 0;
  std::uint64_t matches_delivered = 0;  ///< full mappings in owner ΔM streams
  std::uint64_t delta_checksum = 0;     ///< FNV over the (seq, qv, dv) stream

  std::uint64_t restarts = 0;
  std::uint64_t failovers = 0;         ///< ownership moved off a dead shard
  std::uint64_t deferred_replays = 0;  ///< in-flight resends after recovery

  TransportStats transport;  ///< aggregated over every shard channel
  FaultStats faults;         ///< injected by the coordinator's fault plane
  std::vector<ShardLane> shards;
};

class Coordinator {
 public:
  explicit Coordinator(CoordinatorOptions opts);

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Spawn all shards and collect hellos. False on failure (see error()).
  [[nodiscard]] bool start();

  /// Drive one update through owner + replica phases. False on fatal error
  /// (all shards permanently dead, or a shard NAK the protocol cannot mend);
  /// the stream should then stop.
  [[nodiscard]] bool process(const graph::GraphUpdate& upd);

  /// Observer of each merged owner acknowledgement, fired in global sequence
  /// order. `ack.assignments` is the update's full ΔM mapping stream.
  void set_ack_callback(
      std::function<void(std::uint64_t seq, const wire::ApplyAck& ack)> cb) {
    on_ack_ = std::move(cb);
  }

  /// Graceful shutdown of every shard, then the merged report.
  [[nodiscard]] CoordinatorReport finish();

  [[nodiscard]] const std::string& error() const noexcept { return error_; }
  [[nodiscard]] std::uint64_t next_seq() const noexcept { return seq_; }
  [[nodiscard]] Supervisor& supervisor() noexcept { return *sup_; }

 private:
  /// One kApply request/response against a shard. kOk fills `ack`.
  [[nodiscard]] TransportError apply_on(std::uint32_t shard,
                                        const graph::GraphUpdate& upd,
                                        std::uint64_t seq, bool owner,
                                        wire::ApplyAck& ack);

  CoordinatorOptions opts_;
  std::unique_ptr<Supervisor> sup_;
  std::optional<FaultPlane> fault_;
  std::function<void(std::uint64_t, const wire::ApplyAck&)> on_ack_;

  std::uint64_t seq_ = 0;
  std::string error_;
  CoordinatorReport report_;
  bool finished_ = false;
};

}  // namespace paracosm::shard
