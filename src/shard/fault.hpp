// Deterministic fault plane for sharded operation (DESIGN.md §12).
//
// Chaos that cannot be replayed is chaos that cannot be debugged, so every
// injected fault here is a pure function of (seed, shard, seq, attempt,
// kind): the same plan produces the same kills, drops, duplicates, delays
// and corruptions on every run — which is what lets paracosm_fuzz put the
// whole fault matrix behind a replayable seed, and CI shrink a failing cell
// to its exact injection point.
//
// Two kinds of faults live here:
//   * frame faults — drop / duplicate / delay / corrupt an outgoing frame,
//     applied by the coordinator's Requester at send time;
//   * process kills — a worker exits with _Exit(137) immediately after the
//     WAL append of a chosen sequence (the after_wal_append hook from PR 4),
//     i.e. the record is durable but unapplied: the exact window WAL-replay
//     recovery exists for. Kills are passed to the target worker as
//     `--kill-at`, and the supervisor omits the flag on respawn so each kill
//     fires exactly once.
//
// Plans travel as compact specs ("seed=7,drop=0.02,dup=0.01,corrupt=0.01,
// delay=0.05:200") so one string configures a CLI flag, an env var, and a
// fuzz lane identically.
#pragma once

#include <cstdint>
#include <string>

namespace paracosm::shard {

struct FaultPlan {
  std::uint64_t seed = 0;
  double drop_rate = 0.0;     ///< outgoing frame silently not sent
  double dup_rate = 0.0;      ///< outgoing frame sent twice
  double corrupt_rate = 0.0;  ///< one byte flipped after checksum
  double delay_rate = 0.0;    ///< outgoing frame stalled by delay_us
  std::uint32_t delay_us = 0;

  [[nodiscard]] bool any() const noexcept {
    return drop_rate > 0 || dup_rate > 0 || corrupt_rate > 0 || delay_rate > 0;
  }

  /// Parse "seed=N,drop=R,dup=R,corrupt=R,delay=R:US" (any subset, any
  /// order). Throws std::invalid_argument on malformed input.
  [[nodiscard]] static FaultPlan parse(const std::string& spec);
  [[nodiscard]] std::string to_spec() const;
};

/// Per-fault-kind counters, reported next to the transport stats.
struct FaultStats {
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t delayed = 0;
};

/// Deterministic decision engine over a plan. Each query hashes its full
/// coordinate set, so the same frame re-sent on a later attempt can take a
/// different (but still reproducible) fault — a retry is not doomed to hit
/// the same drop forever.
class FaultPlane {
 public:
  explicit FaultPlane(FaultPlan plan) noexcept : plan_(plan) {}

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }
  [[nodiscard]] const FaultStats& stats() const noexcept { return stats_; }

  [[nodiscard]] bool drop(std::uint16_t shard, std::uint64_t seq,
                          std::uint32_t attempt) noexcept;
  [[nodiscard]] bool dup(std::uint16_t shard, std::uint64_t seq,
                         std::uint32_t attempt) noexcept;
  /// Byte index to flip in the encoded frame, or -1 for none.
  [[nodiscard]] int corrupt_byte(std::uint16_t shard, std::uint64_t seq,
                                 std::uint32_t attempt,
                                 std::size_t frame_bytes) noexcept;
  /// Microseconds to stall before sending; 0 for none.
  [[nodiscard]] std::uint32_t delay_us(std::uint16_t shard, std::uint64_t seq,
                                       std::uint32_t attempt) noexcept;

 private:
  [[nodiscard]] std::uint64_t mix(std::uint32_t kind, std::uint16_t shard,
                                  std::uint64_t seq,
                                  std::uint32_t attempt) const noexcept;

  FaultPlan plan_;
  FaultStats stats_;
};

}  // namespace paracosm::shard
