// Shard worker: the child-process half of sharded operation (DESIGN.md §12).
//
// A worker owns one full replica of (graph, ADS) and runs the PR-4
// StreamService pipeline over it — its own WAL (identity-salted per shard),
// its own snapshots, its own cooperative deadlines. The serve loop speaks the
// shard protocol over the inherited socketpair fd:
//
//   * kApply at the expected sequence — process through the service. The
//     owner flag decides enumeration: owners run the full ΔM search, replicas
//     run maintain-only (the search is pre-cancelled via the force_timeout
//     hook; graph/ADS maintenance still completes exactly — the PR-4 cancel
//     contract). The acknowledgement carries the UpdateDone summary and, for
//     owners, the full mapping stream in the engine's deterministic order.
//   * kApply below the expected sequence — a coordinator retry for an update
//     that already completed (the ack was lost, or the worker crashed after
//     the WAL append). The cached acknowledgement is resent verbatim:
//     exactly-once ΔM on top of at-least-once delivery.
//   * kApply above the expected sequence — a gap; answered with kNak carrying
//     the expected sequence so the coordinator can diagnose.
//   * kPing -> kPong (next sequence in the payload), kShutdown -> drain,
//     final snapshot + metrics flush, kShutdownAck, exit 0.
//
// Recovery (--recover) replays the WAL suffix *through the engine* rather
// than through a raw graph apply: replay regenerates each update's ΔM
// (deterministic delivery makes it byte-identical to the pre-crash run) and
// refills the acknowledgement cache, so a coordinator resend of an update
// that was durable before the crash gets the exact ΔM the lost ack carried.
//
// SIGTERM/SIGINT request graceful shutdown: the loop exits, the service
// drains and flushes WAL + final snapshot + metrics, and the process exits 0.
#pragma once

#include <cstdint>
#include <string>

namespace paracosm::shard {

struct WorkerOptions {
  std::uint32_t shard_id = 0;
  std::uint32_t n_shards = 1;
  int fd = -1;  ///< inherited socketpair end

  std::string graph_path;
  std::string query_path;
  std::string algorithm = "graphflow";
  unsigned threads = 1;

  std::string wal_path;
  std::string snapshot_path;
  std::uint64_t snapshot_every = 0;
  std::int64_t budget_us = 0;

  std::string metrics_path;
  std::uint64_t metrics_every = 0;

  bool recover = false;

  /// Fault: _Exit(137) right after the WAL append of this sequence — durable
  /// but unapplied, the exact window recovery exists for. -1 = off.
  std::int64_t kill_at = -1;
};

/// Identity fingerprint of shard `shard_id`'s WAL: the base-graph fingerprint
/// salted with the shard id, so shard k can never replay shard j's log even
/// though both start from the same replica.
[[nodiscard]] std::uint32_t shard_wal_fingerprint(std::uint32_t base_fp,
                                                  std::uint32_t shard_id) noexcept;

/// Run the worker to completion. Returns the process exit code: 0 on clean
/// shutdown (kShutdown, coordinator EOF, or SIGTERM/SIGINT drain), non-zero
/// on setup or service failure.
[[nodiscard]] int run_worker(const WorkerOptions& opts);

}  // namespace paracosm::shard
