#include "util/table.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <stdexcept>

namespace paracosm::util {

namespace {

[[nodiscard]] bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (const char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' && c != '-' &&
        c != '+' && c != '%' && c != 'e' && c != 'x')
      return false;
  }
  return true;
}

}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::row(std::vector<std::string> values) {
  if (values.size() != header_.size())
    throw std::invalid_argument("Table: row width mismatch");
  rows_.push_back(std::move(values));
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c) width[c] = std::max(width[c], r[c].size());

  const auto emit = [&](const std::vector<std::string>& r, std::string& out) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      const std::size_t pad = width[c] - r[c].size();
      out += "  ";
      if (looks_numeric(r[c])) {
        out.append(pad, ' ');
        out += r[c];
      } else {
        out += r[c];
        out.append(pad, ' ');
      }
    }
    out += '\n';
  };

  std::string out;
  emit(header_, out);
  std::size_t total = 0;
  for (const auto w : width) total += w + 2;
  out.append(total, '-');
  out += '\n';
  for (const auto& r : rows_) emit(r, out);
  return out;
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

}  // namespace paracosm::util
