// CSV output for experiment results (one file per bench under results/).
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace paracosm::util {

class CsvWriter {
 public:
  /// Opens `path` for writing (parent directories are created) and writes
  /// the header row. Throws std::runtime_error on I/O failure.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Append one row; values are quoted if they contain commas/quotes.
  void row(const std::vector<std::string>& values);

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  /// Format helpers so call sites stay tidy.
  [[nodiscard]] static std::string num(double v, int precision = 4);
  [[nodiscard]] static std::string num(std::int64_t v);
  [[nodiscard]] static std::string num(std::uint64_t v);

 private:
  [[nodiscard]] static std::string escape(std::string_view value);

  std::string path_;
  std::ofstream out_;
  std::size_t columns_;
};

}  // namespace paracosm::util
