#include "util/numa_alloc.hpp"

#include <cstdint>

#include "util/hw_topo.hpp"

#if defined(PARACOSM_NUMA_ENABLED) && defined(__linux__)
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>
#if defined(SYS_mbind)
#define PARACOSM_HAVE_MBIND 1
#endif
#endif

namespace paracosm::util::numa {
namespace {

#if defined(PARACOSM_HAVE_MBIND)
// From <numaif.h>, which may not be installed (it ships with libnuma-dev).
constexpr int kMpolInterleave = 3;
constexpr unsigned kMpolFStaticNodes = 0;  // no flags

long page_size() noexcept {
  static const long ps = ::sysconf(_SC_PAGESIZE);
  return ps > 0 ? ps : 4096;
}

// Largest page-aligned subrange of [ptr, ptr+bytes). mbind/madvise demand
// page alignment; shrinking inward never touches memory outside the block.
bool inner_range(void* ptr, std::size_t bytes, void*& start, std::size_t& len) noexcept {
  const auto ps = static_cast<std::uintptr_t>(page_size());
  auto lo = reinterpret_cast<std::uintptr_t>(ptr);
  auto hi = lo + bytes;
  lo = (lo + ps - 1) & ~(ps - 1);
  hi &= ~(ps - 1);
  if (hi <= lo) return false;
  start = reinterpret_cast<void*>(lo);
  len = hi - lo;
  return true;
}
#endif

}  // namespace

bool compiled() noexcept {
#if defined(PARACOSM_HAVE_MBIND)
  return true;
#else
  return false;
#endif
}

unsigned num_nodes() noexcept {
  if (!compiled()) return 1;
  return HwTopology::cached().num_nodes;
}

bool available() noexcept { return compiled() && num_nodes() > 1; }

bool advise_hugepages(void* ptr, std::size_t bytes) noexcept {
#if defined(PARACOSM_HAVE_MBIND) && defined(MADV_HUGEPAGE)
  void* start = nullptr;
  std::size_t len = 0;
  if (!inner_range(ptr, bytes, start, len)) return false;
  return ::madvise(start, len, MADV_HUGEPAGE) == 0;
#else
  (void)ptr;
  (void)bytes;
  return false;
#endif
}

bool interleave(void* ptr, std::size_t bytes) noexcept {
#if defined(PARACOSM_HAVE_MBIND)
  const unsigned nodes = num_nodes();
  if (nodes <= 1) return false;
  void* start = nullptr;
  std::size_t len = 0;
  if (!inner_range(ptr, bytes, start, len)) return false;
  // Node mask covering nodes [0, nodes). maxnode counts *bits*; the kernel
  // wants one extra (it reads maxnode-1 usable bits).
  unsigned long mask[16] = {};
  constexpr unsigned kBitsPerWord = 8 * sizeof(unsigned long);
  const unsigned capped = nodes < 16 * kBitsPerWord ? nodes : 16 * kBitsPerWord;
  for (unsigned n = 0; n < capped; ++n)
    mask[n / kBitsPerWord] |= 1UL << (n % kBitsPerWord);
  long rc = ::syscall(SYS_mbind, start, len, kMpolInterleave, mask,
                      static_cast<unsigned long>(capped + 1), kMpolFStaticNodes);
  return rc == 0;
#else
  (void)ptr;
  (void)bytes;
  return false;
#endif
}

bool place_shared(void* ptr, std::size_t bytes) noexcept {
  if (ptr == nullptr || bytes < kPlacementThreshold) return false;
  bool any = false;
  if (available()) any = interleave(ptr, bytes) || any;
  any = advise_hugepages(ptr, bytes) || any;
  return any;
}

bool place_local(void* ptr, std::size_t bytes) noexcept {
  if (ptr == nullptr || bytes < kPlacementThreshold) return false;
  return advise_hugepages(ptr, bytes);
}

}  // namespace paracosm::util::numa
