#include "util/csv.hpp"

#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <stdexcept>

namespace paracosm::util {

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& header)
    : path_(path), columns_(header.size()) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  out_.open(path);
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  row(header);
}

void CsvWriter::row(const std::vector<std::string>& values) {
  if (values.size() != columns_)
    throw std::invalid_argument("CsvWriter: row width mismatch in " + path_);
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(values[i]);
  }
  out_ << '\n';
  out_.flush();
}

std::string CsvWriter::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string CsvWriter::num(std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  return buf;
}

std::string CsvWriter::num(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  return buf;
}

std::string CsvWriter::escape(std::string_view value) {
  if (value.find_first_of(",\"\n") == std::string_view::npos)
    return std::string(value);
  std::string out = "\"";
  for (const char c : value) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace paracosm::util
