// Minimal command-line parser for bench/example binaries.
//
// Supports "--name value", "--name=value" and boolean "--flag" forms, prints
// a generated --help, and rejects unknown options so typos fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace paracosm::util {

class Cli {
 public:
  Cli(std::string program, std::string description);

  /// Register an option with a default value (all values are strings
  /// internally; typed getters convert on access).
  Cli& option(std::string name, std::string default_value, std::string help);
  /// Register a boolean flag (defaults to false).
  Cli& flag(std::string name, std::string help);

  /// Parse argv. Returns false (after printing help or an error) if the
  /// program should exit; exit_code() then says how.
  [[nodiscard]] bool parse(int argc, const char* const* argv);
  [[nodiscard]] int exit_code() const noexcept { return exit_code_; }

  [[nodiscard]] std::string get(std::string_view name) const;
  [[nodiscard]] std::int64_t get_int(std::string_view name) const;
  [[nodiscard]] double get_double(std::string_view name) const;
  [[nodiscard]] bool get_bool(std::string_view name) const;

  [[nodiscard]] std::string help_text() const;

 private:
  struct Option {
    std::string default_value;
    std::string help;
    bool is_flag = false;
  };

  std::string program_;
  std::string description_;
  // Ordered map keeps --help output stable and alphabetical.
  std::map<std::string, Option, std::less<>> options_;
  std::map<std::string, std::string, std::less<>> values_;
  int exit_code_ = 0;
};

}  // namespace paracosm::util
