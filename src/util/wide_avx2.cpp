// AVX2 twin of the SWAR kernels in wide_ops.hpp, plus the runtime dispatch.
//
// This is the only translation unit built with -mavx2 (CMake attaches the
// flag per-file when PARACOSM_SIMD is ON and the target is x86-64), so the
// rest of the binary stays runnable on any CPU: callers must route through
// use_avx2() before calling the *_avx2 entry points. When the flag is off —
// PARACOSM_SIMD=OFF, or a non-x86 target — the entry points compile as plain
// forwards to the SWAR path and avx2_compiled() reports false, so the same
// binary layout (and the Dispatch override semantics) exists everywhere.
#include "util/wide_ops.hpp"

#if defined(PARACOSM_SIMD_AVX2)
#include <immintrin.h>
#endif

namespace paracosm::util::wide {

#if defined(PARACOSM_SIMD_AVX2)

namespace {

// du >= d1 as a full-width lane mask. Signed 64-bit compare is sound: every
// gathered operand (label, degree, signature guard arithmetic result) that
// reaches a compare is < 2^63.
[[nodiscard]] inline __m256i ge_u64(__m256i a, __m256i b) noexcept {
  const __m256i lt = _mm256_cmpgt_epi64(b, a);  // b > a  <=>  a < b
  return _mm256_xor_si256(lt, _mm256_set1_epi64x(-1));
}

// SWAR containment, 4 lanes at once: (((have | G) - need) & G) == G.
[[nodiscard]] inline __m256i covers_u64(__m256i have, __m256i need,
                                        __m256i guard) noexcept {
  const __m256i t =
      _mm256_and_si256(_mm256_sub_epi64(_mm256_or_si256(have, guard), need), guard);
  return _mm256_cmpeq_epi64(t, guard);
}

}  // namespace

void edge_masks_avx2(const LaneView& v, const EdgeTerm& t,
                     std::uint64_t* any_label, std::uint64_t* any_deg,
                     std::uint64_t* any_alive) noexcept {
  const __m256i l1 = _mm256_set1_epi64x(static_cast<long long>(t.l1));
  const __m256i l2 = _mm256_set1_epi64x(static_cast<long long>(t.l2));
  const __m256i el = _mm256_set1_epi64x(static_cast<long long>(t.el));
  const __m256i d1 = _mm256_set1_epi64x(static_cast<long long>(t.d1));
  const __m256i d2 = _mm256_set1_epi64x(static_cast<long long>(t.d2));
  const __m256i sig1 = _mm256_set1_epi64x(static_cast<long long>(t.sig1));
  const __m256i sig2 = _mm256_set1_epi64x(static_cast<long long>(t.sig2));
  const __m256i guard = _mm256_set1_epi64x(static_cast<long long>(kSigGuard));

  const auto quad = [&](std::size_t i) {
    const __m256i lu = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(&v.lu[i]));
    const __m256i lv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(&v.lv[i]));
    __m256i lm = _mm256_and_si256(_mm256_cmpeq_epi64(lu, l1),
                                  _mm256_cmpeq_epi64(lv, l2));
    if (!t.blind) {
      const __m256i ev = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(&v.el[i]));
      lm = _mm256_and_si256(lm, _mm256_cmpeq_epi64(ev, el));
    }
    const __m256i du = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(&v.du[i]));
    const __m256i dv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(&v.dv[i]));
    const __m256i dm =
        _mm256_and_si256(lm, _mm256_and_si256(ge_u64(du, d1), ge_u64(dv, d2)));
    const __m256i su =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(&v.sig_u[i]));
    const __m256i sv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(&v.sig_v[i]));
    const __m256i am = _mm256_and_si256(
        dm, _mm256_and_si256(covers_u64(su, sig1, guard), covers_u64(sv, sig2, guard)));

    __m256i* const alp = reinterpret_cast<__m256i*>(&any_label[i]);
    __m256i* const adp = reinterpret_cast<__m256i*>(&any_deg[i]);
    __m256i* const aap = reinterpret_cast<__m256i*>(&any_alive[i]);
    _mm256_storeu_si256(alp, _mm256_or_si256(_mm256_loadu_si256(alp), lm));
    _mm256_storeu_si256(adp, _mm256_or_si256(_mm256_loadu_si256(adp), dm));
    _mm256_storeu_si256(aap, _mm256_or_si256(_mm256_loadu_si256(aap), am));
  };
  // kLaneBlock = 8 lanes per iteration: two 4-lane registers per column.
  for (std::size_t i = 0; i < v.padded; i += kLaneBlock) {
    quad(i);
    quad(i + 4);
  }
}

std::uint64_t count_pairs_avx2(const std::uint8_t* a, const std::uint8_t* b,
                               std::size_t padded) noexcept {
  const __m256i zero = _mm256_setzero_si256();
  __m256i acc = zero;
  for (std::size_t i = 0; i < padded; i += kByteBlock) {
    const __m256i wa = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i wb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    // Bytes are 0/1, so summing the AND bytes counts the pairs; SAD against
    // zero horizontally sums each 8-byte group into a 64-bit lane.
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(_mm256_and_si256(wa, wb), zero));
  }
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  return lanes[0] + lanes[1] + lanes[2] + lanes[3];
}

bool avx2_compiled() noexcept { return true; }

#else  // !PARACOSM_SIMD_AVX2

void edge_masks_avx2(const LaneView& v, const EdgeTerm& t,
                     std::uint64_t* any_label, std::uint64_t* any_deg,
                     std::uint64_t* any_alive) noexcept {
  edge_masks_swar(v, t, any_label, any_deg, any_alive);
}

std::uint64_t count_pairs_avx2(const std::uint8_t* a, const std::uint8_t* b,
                               std::size_t padded) noexcept {
  return count_pairs_swar(a, b, padded);
}

bool avx2_compiled() noexcept { return false; }

#endif  // PARACOSM_SIMD_AVX2

bool avx2_runtime() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  static const bool ok = __builtin_cpu_supports("avx2") != 0;
  return ok;
#else
  return false;
#endif
}

bool use_avx2(Dispatch d, bool* downgraded) noexcept {
  const bool available = avx2_compiled() && avx2_runtime();
  switch (d) {
    case Dispatch::kForceSwar:
      return false;
    case Dispatch::kForceAvx2:
      if (!available && downgraded) *downgraded = true;
      return available;
    case Dispatch::kAuto:
      break;
  }
  return available;
}

}  // namespace paracosm::util::wide
