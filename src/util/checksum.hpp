// Rolling FNV-1a checksums over incremental flag state.
//
// The candidate/support indexes summarize their boolean flag tables as a
// single 64-bit value: the XOR over all *set* flags of an FNV-1a fingerprint
// of the flag's coordinates. XOR is its own inverse, so a flip (on or off)
// updates the checksum in O(1) — the whole point: the PARACOSM_VERIFY
// safe-update invariant ("a safe batch leaves the ADS bit-identical") is
// checkable per batch in O(1) instead of an O(|Q|·|V(G)|) state scan.
// Fingerprints are order-independent, so two states are checksum-equal iff
// the same flag set is on (modulo 2^-64 collision odds).
#pragma once

#include <cstdint>

namespace paracosm::util {

inline constexpr std::uint64_t kFnv1aOffset = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnv1aPrime = 0x00000100000001b3ULL;

/// Fold one 32-bit word into an FNV-1a state, byte by byte (little-endian).
[[nodiscard]] constexpr std::uint64_t fnv1a_word(std::uint64_t h,
                                                 std::uint32_t word) noexcept {
  for (int i = 0; i < 4; ++i) {
    h ^= (word >> (8 * i)) & 0xffu;
    h *= kFnv1aPrime;
  }
  return h;
}

/// Fingerprint of one flag coordinate (kind, u, v). `kind` distinguishes the
/// flag families of one index (anc/desc, L1/L2) so their fingerprints never
/// cancel each other.
[[nodiscard]] constexpr std::uint64_t flag_fingerprint(std::uint32_t kind,
                                                       std::uint32_t u,
                                                       std::uint32_t v) noexcept {
  return fnv1a_word(fnv1a_word(fnv1a_word(kFnv1aOffset, kind), u), v);
}

}  // namespace paracosm::util
