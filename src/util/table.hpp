// Aligned plain-text tables: the bench binaries print rows that mirror the
// paper's tables and figures, so output must stay readable in a terminal.
#pragma once

#include <string>
#include <vector>

namespace paracosm::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void row(std::vector<std::string> values);

  /// Render with per-column alignment (numbers right, text left).
  [[nodiscard]] std::string to_string() const;

  /// Render straight to stdout.
  void print() const;

  [[nodiscard]] static std::string num(double v, int precision = 2);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace paracosm::util
