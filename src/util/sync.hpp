// Small synchronization helpers used by the executors.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

namespace paracosm::util {

/// One polite spin iteration: a PAUSE on x86 (frees pipeline resources for
/// the sibling hyperthread and slows the spin loop's cache-line polling)
/// and a plain compiler barrier elsewhere.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  asm volatile("" ::: "memory");
#endif
}

/// Exponential spin-then-yield backoff used by the schedulers before they
/// fall back to parking. On an oversubscribed machine (the CI container has
/// one core) the periodic yield is what lets the thread that actually holds
/// work run; on an idle multicore the PAUSE loop keeps wakeup latency in the
/// tens of nanoseconds.
class SpinBackoff {
 public:
  explicit SpinBackoff(std::uint32_t yield_every = 32) noexcept
      : yield_every_(yield_every) {}

  void pause() noexcept {
    ++spins_;
    if (yield_every_ != 0 && spins_ % yield_every_ == 0) {
      std::this_thread::yield();
    } else {
      cpu_relax();
    }
  }
  [[nodiscard]] std::uint32_t spins() const noexcept { return spins_; }
  void reset() noexcept { spins_ = 0; }

 private:
  std::uint32_t spins_ = 0;
  std::uint32_t yield_every_;
};

/// Test-and-test-and-set spinlock. Used for the striped per-vertex locks in
/// the batch executor, where critical sections are a few dozen instructions
/// and a std::mutex would dominate.
class Spinlock {
 public:
  void lock() noexcept {
    for (;;) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      while (flag_.load(std::memory_order_relaxed)) std::this_thread::yield();
    }
  }
  [[nodiscard]] bool try_lock() noexcept {
    return !flag_.exchange(true, std::memory_order_acquire);
  }
  void unlock() noexcept { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

/// Fixed array of spinlocks addressed by hash — protects per-vertex adjacency
/// mutation when safe updates are applied concurrently.
template <std::size_t N = 64>
class StripedLocks {
  static_assert((N & (N - 1)) == 0, "stripe count must be a power of two");

 public:
  [[nodiscard]] Spinlock& for_key(std::size_t key) noexcept {
    // Fibonacci hashing spreads consecutive vertex ids across stripes.
    return locks_[(key * 0x9e3779b97f4a7c15ULL >> 32) & (N - 1)];
  }

  /// Lock two stripes in address order (deadlock-free for edge endpoints).
  void lock_pair(std::size_t a, std::size_t b) noexcept {
    Spinlock* x = &for_key(a);
    Spinlock* y = &for_key(b);
    if (x == y) {
      x->lock();
      return;
    }
    if (x > y) std::swap(x, y);
    x->lock();
    y->lock();
  }
  void unlock_pair(std::size_t a, std::size_t b) noexcept {
    Spinlock* x = &for_key(a);
    Spinlock* y = &for_key(b);
    if (x == y) {
      x->unlock();
      return;
    }
    x->unlock();
    y->unlock();
  }

 private:
  Spinlock locks_[N];
};

}  // namespace paracosm::util
