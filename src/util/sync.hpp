// Small synchronization helpers used by the executors.
#pragma once

#include <atomic>
#include <thread>

namespace paracosm::util {

/// Test-and-test-and-set spinlock. Used for the striped per-vertex locks in
/// the batch executor, where critical sections are a few dozen instructions
/// and a std::mutex would dominate.
class Spinlock {
 public:
  void lock() noexcept {
    for (;;) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      while (flag_.load(std::memory_order_relaxed)) std::this_thread::yield();
    }
  }
  [[nodiscard]] bool try_lock() noexcept {
    return !flag_.exchange(true, std::memory_order_acquire);
  }
  void unlock() noexcept { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

/// Fixed array of spinlocks addressed by hash — protects per-vertex adjacency
/// mutation when safe updates are applied concurrently.
template <std::size_t N = 64>
class StripedLocks {
  static_assert((N & (N - 1)) == 0, "stripe count must be a power of two");

 public:
  [[nodiscard]] Spinlock& for_key(std::size_t key) noexcept {
    // Fibonacci hashing spreads consecutive vertex ids across stripes.
    return locks_[(key * 0x9e3779b97f4a7c15ULL >> 32) & (N - 1)];
  }

  /// Lock two stripes in address order (deadlock-free for edge endpoints).
  void lock_pair(std::size_t a, std::size_t b) noexcept {
    Spinlock* x = &for_key(a);
    Spinlock* y = &for_key(b);
    if (x == y) {
      x->lock();
      return;
    }
    if (x > y) std::swap(x, y);
    x->lock();
    y->lock();
  }
  void unlock_pair(std::size_t a, std::size_t b) noexcept {
    Spinlock* x = &for_key(a);
    Spinlock* y = &for_key(b);
    if (x == y) {
      x->unlock();
      return;
    }
    x->unlock();
    y->unlock();
  }

 private:
  Spinlock locks_[N];
};

}  // namespace paracosm::util
