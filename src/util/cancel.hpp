// Cooperative cancellation for bounded-latency search (DESIGN.md §7).
//
// A CancelToken is an epoch counter shared between a service watchdog and the
// executors. The service *arms* the token before dispatching an update (which
// bumps the epoch and clears any stale cancel) and hands the armed epoch to
// the watchdog; if the update overruns its budget the watchdog *cancels that
// epoch*. Epoch matching is what makes the race benign: a late cancel aimed at
// update N can never abort update N+1, because N+1 re-armed the token and the
// cancel carries N.
//
// The hot-path read (`CancelView::cancelled`) is two relaxed loads — the
// token is purely advisory and ordered by the executor's own quiescence
// barrier, so no acquire/release is needed. Search loops check it through
// MatchSink::tick(), amortized with the existing deadline check, keeping the
// cost under the 1%-of-bench_baseline budget (ISSUE 4).
#pragma once

#include <atomic>
#include <cstdint>

namespace paracosm::util {

class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Begin a new cancellable scope; returns its epoch. Any cancel targeting
  /// an older epoch becomes a no-op for the new scope.
  std::uint64_t arm() noexcept {
    return epoch_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Cancel the scope identified by `epoch`. Monotonic: only ever raises the
  /// cancelled watermark, so concurrent cancels of different epochs resolve
  /// to the newest one.
  void cancel(std::uint64_t epoch) noexcept {
    std::uint64_t seen = cancelled_.load(std::memory_order_relaxed);
    while (seen < epoch && !cancelled_.compare_exchange_weak(
                               seen, epoch, std::memory_order_relaxed)) {
    }
  }

  /// Cancel whatever scope is current right now.
  void cancel_current() noexcept { cancel(current()); }

  [[nodiscard]] std::uint64_t current() const noexcept {
    return epoch_.load(std::memory_order_relaxed);
  }

  /// Has the given scope (or any later one) been cancelled?
  [[nodiscard]] bool is_cancelled(std::uint64_t epoch) const noexcept {
    return cancelled_.load(std::memory_order_relaxed) >= epoch;
  }

 private:
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::uint64_t> cancelled_{0};
};

/// Value-type view pinned to one armed epoch; this is what gets threaded
/// through engines/executors into every MatchSink. Default-constructed view
/// is inert (`active() == false`) so existing call sites pay nothing.
struct CancelView {
  const CancelToken* token = nullptr;
  std::uint64_t epoch = 0;

  [[nodiscard]] bool active() const noexcept { return token != nullptr; }
  [[nodiscard]] bool cancelled() const noexcept {
    return token != nullptr && token->is_cancelled(epoch);
  }
};

/// Convenience: arm a token and return a view pinned to the fresh epoch.
[[nodiscard]] inline CancelView arm_view(CancelToken& token) noexcept {
  return CancelView{&token, token.arm()};
}

}  // namespace paracosm::util
