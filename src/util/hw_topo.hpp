// Hardware topology detection for the topology-aware runtime (DESIGN.md §10).
//
// The Chase–Lev pool used to treat all cores as interchangeable: victims were
// picked uniformly at random and batch shards stolen in ring order, so at
// 16+ threads on multi-socket (or multi-CCX) hardware the enumeration hot
// loop paid cross-node cache-line traffic for work that a sibling core could
// have supplied. This header provides the substrate for doing better:
//
//   * HwTopology — the package/node/core/SMT tree, parsed from
//     /sys/devices/system/cpu + /sys/devices/system/node, restricted to the
//     sched_getaffinity mask so taskset/cgroup-limited runs see only the CPUs
//     they may use. When sysfs is absent (macOS-shaped containers, CI
//     sandboxes) detection degrades to a flat single-node topology and every
//     consumer keeps working with today's behavior.
//   * assign_workers — deterministic worker→CPU placement: fill a node's
//     distinct cores before its SMT siblings, fill a node before moving to
//     the next, wrap modulo when oversubscribed.
//   * VictimTable — per-worker victim lists ordered by steal distance
//     (SMT sibling / same core → same node → remote) plus a dense distance
//     matrix so even a flat random sweep can account its steals per distance.
//
// Emulation: PARACOSM_TOPOLOGY="NxC" or "NxCxS" (nodes × cpus-per-node ×
// smt-ways) overrides detection, which is how the topology ablation and the
// scheduler torture tests exercise 2-node victim ordering on any machine.
// Emulated topologies are never pinned (their CPU ids may not exist).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace paracosm::util {

/// One logical CPU's position in the machine tree. All ids are normalized to
/// dense 0-based indexes (sysfs package/node ids can be sparse).
struct TopoCpu {
  unsigned cpu = 0;      ///< OS cpu id (valid for pinning only when kSysfs)
  unsigned core = 0;     ///< global core index (unique across packages)
  unsigned package = 0;  ///< physical package / socket
  unsigned node = 0;     ///< NUMA node
};

enum class TopoSource : std::uint8_t {
  kFlat,      ///< no information: one node, one core per cpu
  kSysfs,     ///< parsed from a real sysfs tree
  kEmulated,  ///< synthetic (PARACOSM_TOPOLOGY or HwTopology::emulated)
};

[[nodiscard]] constexpr const char* topo_source_name(TopoSource s) noexcept {
  switch (s) {
    case TopoSource::kFlat: return "flat";
    case TopoSource::kSysfs: return "sysfs";
    case TopoSource::kEmulated: return "emulated";
  }
  return "?";
}

/// Distance a steal travels between two workers' CPU assignments.
/// Order matters: victim lists are sorted ascending by this enum.
enum class StealDistance : std::uint8_t {
  kLocal = 0,     ///< same core (SMT sibling) — shares L1/L2
  kSameNode = 1,  ///< same NUMA node / core complex — shares LLC + memory
  kRemote = 2,    ///< different node — cross-socket interconnect traffic
};

struct HwTopology {
  std::vector<TopoCpu> cpus;  ///< sorted by os cpu id; only allowed CPUs
  unsigned num_nodes = 1;
  unsigned num_packages = 1;
  unsigned num_cores = 0;
  bool smt = false;  ///< any core carries more than one logical CPU
  TopoSource source = TopoSource::kFlat;

  [[nodiscard]] unsigned num_cpus() const noexcept {
    return static_cast<unsigned>(cpus.size());
  }

  /// One node, one core per cpu — the degraded/no-information shape.
  [[nodiscard]] static HwTopology flat(unsigned n);

  /// Synthetic topology: `nodes` NUMA nodes × `cpus_per_node` logical CPUs,
  /// grouped into cores of `smt_ways` siblings. One package per node.
  [[nodiscard]] static HwTopology emulated(unsigned nodes, unsigned cpus_per_node,
                                           unsigned smt_ways = 1);

  /// Parse an emulation spec "NxC" or "NxCxS"; nullopt when malformed.
  [[nodiscard]] static std::optional<HwTopology> parse_spec(const std::string& spec);

  /// Parse a sysfs tree rooted at `sysfs_root` (i.e. the directory that
  /// contains devices/system/cpu). `allowed` restricts to those OS cpu ids
  /// (empty = no restriction). Returns a flat topology when the tree is
  /// missing or yields no usable CPU.
  [[nodiscard]] static HwTopology from_sysfs(const std::string& sysfs_root,
                                             std::span<const unsigned> allowed = {});

  /// Full detection: PARACOSM_TOPOLOGY env override → /sys restricted to the
  /// affinity mask → flat(affinity cpu count).
  [[nodiscard]] static HwTopology detect();

  /// detect() computed once per process. Safe to call from any thread.
  [[nodiscard]] static const HwTopology& cached();
};

/// CPUs this process may run on (sched_getaffinity), ascending. Falls back to
/// 0..hardware_concurrency-1 where the syscall is unavailable.
[[nodiscard]] std::vector<unsigned> affinity_cpus();

/// |affinity_cpus()|, never 0. The correct default worker count: honors
/// taskset/cgroup cpuset restrictions that hardware_concurrency ignores.
[[nodiscard]] unsigned affinity_cpu_count();

/// Distance between two CPU assignments (see StealDistance).
[[nodiscard]] StealDistance steal_distance(const TopoCpu& a, const TopoCpu& b) noexcept;

/// Deterministic worker→CPU assignment over `topo`: CPUs ordered by
/// (node, smt-rank within core, core) — so a node's distinct cores fill
/// before its SMT siblings and a whole node fills before the next — and
/// worker w takes the w-th CPU modulo the topology size.
[[nodiscard]] std::vector<TopoCpu> assign_workers(const HwTopology& topo,
                                                  unsigned workers);

struct Victim {
  std::uint16_t wid = 0;
  StealDistance dist = StealDistance::kSameNode;
};

/// Per-worker victim lists sorted by distance plus a dense distance matrix.
/// Built once per pool; read-only afterwards (safe to share across threads).
struct VictimTable {
  unsigned n = 0;
  std::vector<Victim> order;  ///< n*(n-1) entries, worker-major, distance-sorted
  std::vector<std::uint32_t> remote_begin;  ///< per worker: index of first
                                            ///< kRemote entry in its slice
                                            ///< (== n-1 when none)
  std::vector<std::uint8_t> dist;  ///< n*n matrix of StealDistance values

  [[nodiscard]] std::span<const Victim> of(unsigned wid) const noexcept {
    return {order.data() + static_cast<std::size_t>(wid) * (n - 1), n - 1};
  }
  [[nodiscard]] StealDistance distance(unsigned a, unsigned b) const noexcept {
    return static_cast<StealDistance>(dist[static_cast<std::size_t>(a) * n + b]);
  }
  [[nodiscard]] bool has_remote() const noexcept {
    for (unsigned w = 0; w < n; ++w)
      if (n > 1 && remote_begin[w] < n - 1) return true;
    return false;
  }
};

/// Victim lists for `assignment` (one entry per worker, from assign_workers).
/// Within a distance tier victims keep ascending wid order; the queue
/// randomizes its probe start within a tier at sweep time.
[[nodiscard]] VictimTable make_victim_table(std::span<const TopoCpu> assignment);

/// Pin the calling thread to OS cpu `cpu`. Returns false where unsupported
/// or when the kernel rejects the mask (cpu offline / outside the cgroup).
bool pin_current_thread(unsigned cpu);

}  // namespace paracosm::util
