#include "util/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace paracosm::util {

Cli::Cli(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

Cli& Cli::option(std::string name, std::string default_value, std::string help) {
  options_[std::move(name)] = Option{std::move(default_value), std::move(help), false};
  return *this;
}

Cli& Cli::flag(std::string name, std::string help) {
  options_[std::move(name)] = Option{"false", std::move(help), true};
  return *this;
}

bool Cli::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(help_text().c_str(), stdout);
      exit_code_ = 0;
      return false;
    }
    if (!arg.starts_with("--")) {
      std::fprintf(stderr, "%s: unexpected positional argument '%s'\n",
                   program_.c_str(), std::string(arg).c_str());
      exit_code_ = 2;
      return false;
    }
    arg.remove_prefix(2);
    std::string name;
    std::string value;
    bool has_value = false;
    if (const auto eq = arg.find('='); eq != std::string_view::npos) {
      name = std::string(arg.substr(0, eq));
      value = std::string(arg.substr(eq + 1));
      has_value = true;
    } else {
      name = std::string(arg);
    }
    const auto it = options_.find(name);
    if (it == options_.end()) {
      std::fprintf(stderr, "%s: unknown option '--%s' (try --help)\n",
                   program_.c_str(), name.c_str());
      exit_code_ = 2;
      return false;
    }
    if (it->second.is_flag) {
      values_[name] = has_value ? value : "true";
    } else if (has_value) {
      values_[name] = value;
    } else {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: option '--%s' expects a value\n",
                     program_.c_str(), name.c_str());
        exit_code_ = 2;
        return false;
      }
      values_[name] = argv[++i];
    }
  }
  return true;
}

std::string Cli::get(std::string_view name) const {
  if (const auto it = values_.find(name); it != values_.end()) return it->second;
  if (const auto it = options_.find(name); it != options_.end())
    return it->second.default_value;
  throw std::invalid_argument("Cli: option not registered: " + std::string(name));
}

std::int64_t Cli::get_int(std::string_view name) const {
  return std::strtoll(get(name).c_str(), nullptr, 10);
}

double Cli::get_double(std::string_view name) const {
  return std::strtod(get(name).c_str(), nullptr);
}

bool Cli::get_bool(std::string_view name) const {
  const std::string v = get(name);
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

std::string Cli::help_text() const {
  std::string out = program_ + " — " + description_ + "\n\nOptions:\n";
  for (const auto& [name, opt] : options_) {
    out += "  --" + name;
    if (!opt.is_flag) out += " <value>";
    out += "\n      " + opt.help;
    if (!opt.is_flag) out += " (default: " + opt.default_value + ")";
    out += "\n";
  }
  out += "  --help\n      Show this message.\n";
  return out;
}

}  // namespace paracosm::util
