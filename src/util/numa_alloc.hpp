// Best-effort NUMA memory placement and hugepage advice (DESIGN.md §10).
//
// We deliberately avoid a libnuma dependency: the only kernel interfaces we
// need are mbind(2) (invoked via syscall(SYS_mbind, ...) — glibc does not
// wrap it) and madvise(2). Everything here is *advice*: each call returns
// whether it took effect, and failure is always safe — the memory stays
// valid, just placed by the kernel's default first-touch policy.
//
// Compile-time gate: the PARACOSM_NUMA CMake option defines
// PARACOSM_NUMA_ENABLED; with the option OFF (or off-Linux) every function
// is a portable no-op returning false, so callers never need their own #if.
//
// Placement policy for the engine's large blocks:
//   * place_shared  — structures read by all workers (vertex table,
//     candidate index columns): interleave pages across nodes so no single
//     node's memory controller bottlenecks the scan, + hugepage advice.
//   * place_local   — per-worker structures (SearchScratch stamps, match
//     sinks): hugepage advice only; locality comes from first-touch by the
//     pinned owning worker.
// Both apply only to ranges ≥ kPlacementThreshold — small blocks live
// happily in whatever the allocator chose and mbind would just fragment
// the VMA list.
#pragma once

#include <cstddef>

namespace paracosm::util::numa {

/// Ranges below this are left alone (policy calls become no-ops).
inline constexpr std::size_t kPlacementThreshold = std::size_t{1} << 20;  // 1 MiB

/// True when built with PARACOSM_NUMA=ON on Linux with mbind available.
[[nodiscard]] bool compiled() noexcept;

/// True when compiled() and the running system exposes >1 NUMA node.
[[nodiscard]] bool available() noexcept;

/// NUMA nodes visible to this process (≥1; 1 when not compiled/available).
[[nodiscard]] unsigned num_nodes() noexcept;

/// Advise transparent hugepages for [ptr, ptr+bytes). Page-aligns the inner
/// range. Returns true if the advice was applied.
bool advise_hugepages(void* ptr, std::size_t bytes) noexcept;

/// Interleave the pages of [ptr, ptr+bytes) across all visible nodes
/// (MPOL_INTERLEAVE). Only affects pages not yet faulted in; call right
/// after allocation, before first touch. Returns true on success.
bool interleave(void* ptr, std::size_t bytes) noexcept;

/// Placement for globally shared read-mostly blocks: interleave (when >1
/// node) + hugepage advice, both gated on kPlacementThreshold.
/// Returns true if any advice was applied.
bool place_shared(void* ptr, std::size_t bytes) noexcept;

/// Placement for per-worker blocks: hugepage advice only; first-touch by
/// the pinned owner provides locality. Gated on kPlacementThreshold.
bool place_local(void* ptr, std::size_t bytes) noexcept;

}  // namespace paracosm::util::numa
