// Wall-clock and CPU-time measurement.
//
// ThreadCpuClock reads CLOCK_THREAD_CPUTIME_ID: on an oversubscribed machine
// (this container has a single core) it measures the work a thread actually
// performed, independent of scheduling. The executors use it to compute the
// simulated parallel makespan described in DESIGN.md §2.
#pragma once

#include <chrono>
#include <cstdint>

namespace paracosm::util {

using Clock = std::chrono::steady_clock;
using Duration = std::chrono::nanoseconds;

/// Nanoseconds of CPU time consumed by the calling thread so far.
[[nodiscard]] std::int64_t thread_cpu_ns() noexcept;

/// Nanoseconds of CPU time consumed by the whole process so far.
[[nodiscard]] std::int64_t process_cpu_ns() noexcept;

/// Simple wall-clock stopwatch (monotonic).
class WallTimer {
 public:
  WallTimer() noexcept : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  [[nodiscard]] Clock::time_point start() const noexcept { return start_; }

  [[nodiscard]] std::int64_t elapsed_ns() const noexcept {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start_)
        .count();
  }
  [[nodiscard]] double elapsed_ms() const noexcept {
    return static_cast<double>(elapsed_ns()) / 1e6;
  }
  [[nodiscard]] double elapsed_s() const noexcept {
    return static_cast<double>(elapsed_ns()) / 1e9;
  }

 private:
  Clock::time_point start_;
};

/// Stopwatch over the calling thread's CPU time.
class ThreadCpuTimer {
 public:
  ThreadCpuTimer() noexcept : start_(thread_cpu_ns()) {}

  void reset() noexcept { start_ = thread_cpu_ns(); }

  [[nodiscard]] std::int64_t elapsed_ns() const noexcept {
    return thread_cpu_ns() - start_;
  }
  [[nodiscard]] double elapsed_ms() const noexcept {
    return static_cast<double>(elapsed_ns()) / 1e6;
  }

 private:
  std::int64_t start_;
};

}  // namespace paracosm::util
