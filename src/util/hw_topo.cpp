#include "util/hw_topo.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace paracosm::util {
namespace {

namespace fs = std::filesystem;

// Read a small sysfs attribute as an integer; nullopt on any failure.
std::optional<long> read_int_file(const fs::path& p) {
  std::ifstream in(p);
  if (!in) return std::nullopt;
  long v = 0;
  if (!(in >> v)) return std::nullopt;
  return v;
}

// Parse a kernel cpulist string ("0-3,8,10-11") into cpu ids. Returns
// nullopt on malformed input; an empty list is valid (memoryless node).
std::optional<std::vector<unsigned>> parse_cpulist(const std::string& text) {
  std::vector<unsigned> out;
  std::size_t i = 0;
  auto skip_ws = [&] {
    while (i < text.size() && (std::isspace(static_cast<unsigned char>(text[i])) != 0)) ++i;
  };
  auto parse_num = [&]() -> std::optional<unsigned> {
    skip_ws();
    if (i >= text.size() || std::isdigit(static_cast<unsigned char>(text[i])) == 0)
      return std::nullopt;
    unsigned v = 0;
    while (i < text.size() && std::isdigit(static_cast<unsigned char>(text[i])) != 0) {
      v = v * 10 + static_cast<unsigned>(text[i] - '0');
      ++i;
    }
    return v;
  };
  skip_ws();
  if (i >= text.size()) return out;  // empty list
  while (true) {
    auto lo = parse_num();
    if (!lo) return std::nullopt;
    unsigned hi = *lo;
    skip_ws();
    if (i < text.size() && text[i] == '-') {
      ++i;
      auto h = parse_num();
      if (!h || *h < *lo) return std::nullopt;
      hi = *h;
    }
    for (unsigned c = *lo; c <= hi; ++c) out.push_back(c);
    skip_ws();
    if (i >= text.size()) break;
    if (text[i] != ',') return std::nullopt;
    ++i;
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

// Renumber arbitrary (possibly sparse) ids to dense 0-based indexes in
// ascending id order, preserving relative order.
template <typename Key>
std::map<Key, unsigned> densify(const std::set<Key>& keys) {
  std::map<Key, unsigned> idx;
  unsigned next = 0;
  for (const Key& k : keys) idx.emplace(k, next++);
  return idx;
}

void finalize_counts(HwTopology& t) {
  std::set<unsigned> nodes;
  std::set<unsigned> packages;
  std::set<unsigned> cores;
  std::map<unsigned, unsigned> cpus_per_core;
  for (const TopoCpu& c : t.cpus) {
    nodes.insert(c.node);
    packages.insert(c.package);
    cores.insert(c.core);
    ++cpus_per_core[c.core];
  }
  t.num_nodes = nodes.empty() ? 1 : static_cast<unsigned>(nodes.size());
  t.num_packages = packages.empty() ? 1 : static_cast<unsigned>(packages.size());
  t.num_cores = static_cast<unsigned>(cores.size());
  t.smt = std::any_of(cpus_per_core.begin(), cpus_per_core.end(),
                      [](const auto& kv) { return kv.second > 1; });
}

}  // namespace

HwTopology HwTopology::flat(unsigned n) {
  HwTopology t;
  t.cpus.reserve(n);
  for (unsigned i = 0; i < n; ++i) t.cpus.push_back(TopoCpu{i, i, 0, 0});
  t.num_nodes = 1;
  t.num_packages = 1;
  t.num_cores = n;
  t.smt = false;
  t.source = TopoSource::kFlat;
  return t;
}

HwTopology HwTopology::emulated(unsigned nodes, unsigned cpus_per_node,
                                unsigned smt_ways) {
  if (nodes == 0) nodes = 1;
  if (cpus_per_node == 0) cpus_per_node = 1;
  if (smt_ways == 0 || smt_ways > cpus_per_node) smt_ways = 1;
  HwTopology t;
  t.cpus.reserve(static_cast<std::size_t>(nodes) * cpus_per_node);
  unsigned cores_per_node = (cpus_per_node + smt_ways - 1) / smt_ways;
  for (unsigned nd = 0; nd < nodes; ++nd) {
    for (unsigned i = 0; i < cpus_per_node; ++i) {
      TopoCpu c;
      c.cpu = nd * cpus_per_node + i;
      c.core = nd * cores_per_node + i / smt_ways;
      c.package = nd;
      c.node = nd;
      t.cpus.push_back(c);
    }
  }
  finalize_counts(t);
  t.source = TopoSource::kEmulated;
  return t;
}

std::optional<HwTopology> HwTopology::parse_spec(const std::string& spec) {
  unsigned vals[3] = {0, 0, 1};
  int n_vals = 0;
  std::size_t i = 0;
  while (i < spec.size() && n_vals < 3) {
    if (std::isdigit(static_cast<unsigned char>(spec[i])) == 0) return std::nullopt;
    unsigned v = 0;
    while (i < spec.size() && std::isdigit(static_cast<unsigned char>(spec[i])) != 0) {
      v = v * 10 + static_cast<unsigned>(spec[i] - '0');
      ++i;
    }
    vals[n_vals++] = v;
    if (i == spec.size()) break;
    if (spec[i] != 'x' && spec[i] != 'X') return std::nullopt;
    ++i;
    if (i == spec.size()) return std::nullopt;  // trailing separator
  }
  if (i != spec.size() || n_vals < 2) return std::nullopt;
  if (vals[0] == 0 || vals[1] == 0 || vals[2] == 0) return std::nullopt;
  if (static_cast<unsigned long long>(vals[0]) * vals[1] > 4096) return std::nullopt;
  return emulated(vals[0], vals[1], vals[2]);
}

HwTopology HwTopology::from_sysfs(const std::string& sysfs_root,
                                  std::span<const unsigned> allowed) {
  const fs::path cpu_dir = fs::path(sysfs_root) / "devices" / "system" / "cpu";
  std::error_code ec;
  if (!fs::is_directory(cpu_dir, ec) || ec) return flat(affinity_cpu_count());

  std::set<unsigned> allow(allowed.begin(), allowed.end());
  // cpu id → (package_id, core_id) as reported (possibly sparse).
  std::map<unsigned, std::pair<long, long>> raw;
  for (const auto& entry : fs::directory_iterator(cpu_dir, ec)) {
    if (ec) break;
    const std::string name = entry.path().filename().string();
    if (name.size() <= 3 || name.compare(0, 3, "cpu") != 0) continue;
    bool digits = std::all_of(name.begin() + 3, name.end(), [](char ch) {
      return std::isdigit(static_cast<unsigned char>(ch)) != 0;
    });
    if (!digits) continue;  // cpufreq, cpuidle, ...
    unsigned id = static_cast<unsigned>(std::stoul(name.substr(3)));
    if (!allow.empty() && allow.count(id) == 0) continue;
    const fs::path topo = entry.path() / "topology";
    // Missing attributes degrade per-CPU: package 0, core = own cpu id.
    long pkg = read_int_file(topo / "physical_package_id").value_or(0);
    long core = read_int_file(topo / "core_id").value_or(static_cast<long>(id));
    if (pkg < 0) pkg = 0;
    if (core < 0) core = static_cast<long>(id);
    raw.emplace(id, std::make_pair(pkg, core));
  }
  if (raw.empty()) return flat(affinity_cpu_count());

  // NUMA node per cpu from node*/cpulist; absent tree → everything node 0.
  std::map<unsigned, long> node_of;
  const fs::path node_dir = fs::path(sysfs_root) / "devices" / "system" / "node";
  if (fs::is_directory(node_dir, ec) && !ec) {
    for (const auto& entry : fs::directory_iterator(node_dir, ec)) {
      if (ec) break;
      const std::string name = entry.path().filename().string();
      if (name.size() <= 4 || name.compare(0, 4, "node") != 0) continue;
      bool digits = std::all_of(name.begin() + 4, name.end(), [](char ch) {
        return std::isdigit(static_cast<unsigned char>(ch)) != 0;
      });
      if (!digits) continue;
      long nid = static_cast<long>(std::stoul(name.substr(4)));
      std::ifstream in(entry.path() / "cpulist");
      std::string text;
      if (!in || !std::getline(in, text)) continue;
      auto cpus = parse_cpulist(text);
      if (!cpus) continue;
      for (unsigned c : *cpus) node_of[c] = nid;
    }
  }

  std::set<long> pkg_ids;
  std::set<std::pair<long, long>> core_keys;  // (package, core_id)
  std::set<long> node_ids;
  for (const auto& [id, pc] : raw) {
    pkg_ids.insert(pc.first);
    core_keys.insert(pc);
    auto it = node_of.find(id);
    node_ids.insert(it == node_of.end() ? 0 : it->second);
  }
  auto pkg_idx = densify(pkg_ids);
  auto core_idx = densify(core_keys);
  auto node_idx = densify(node_ids);

  HwTopology t;
  t.cpus.reserve(raw.size());
  for (const auto& [id, pc] : raw) {
    TopoCpu c;
    c.cpu = id;
    c.package = pkg_idx.at(pc.first);
    c.core = core_idx.at(pc);
    auto it = node_of.find(id);
    c.node = node_idx.at(it == node_of.end() ? 0 : it->second);
    t.cpus.push_back(c);
  }
  finalize_counts(t);
  t.source = TopoSource::kSysfs;
  return t;
}

HwTopology HwTopology::detect() {
  if (const char* spec = std::getenv("PARACOSM_TOPOLOGY")) {
    if (auto t = parse_spec(spec)) return *t;
  }
  std::vector<unsigned> mask = affinity_cpus();
  HwTopology t = from_sysfs("/sys", mask);
  if (t.source == TopoSource::kSysfs) return t;
  return flat(affinity_cpu_count());
}

const HwTopology& HwTopology::cached() {
  static const HwTopology topo = detect();
  return topo;
}

std::vector<unsigned> affinity_cpus() {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof(set), &set) == 0) {
    std::vector<unsigned> out;
    for (unsigned c = 0; c < CPU_SETSIZE; ++c)
      if (CPU_ISSET(c, &set)) out.push_back(c);
    if (!out.empty()) return out;
  }
#endif
  unsigned n = std::thread::hardware_concurrency();
  if (n == 0) n = 1;
  std::vector<unsigned> out(n);
  for (unsigned i = 0; i < n; ++i) out[i] = i;
  return out;
}

unsigned affinity_cpu_count() {
  auto cpus = affinity_cpus();
  return cpus.empty() ? 1u : static_cast<unsigned>(cpus.size());
}

StealDistance steal_distance(const TopoCpu& a, const TopoCpu& b) noexcept {
  if (a.node != b.node) return StealDistance::kRemote;
  if (a.core == b.core) return StealDistance::kLocal;
  return StealDistance::kSameNode;
}

std::vector<TopoCpu> assign_workers(const HwTopology& topo, unsigned workers) {
  std::vector<TopoCpu> order = topo.cpus;
  if (order.empty()) {
    HwTopology f = HwTopology::flat(workers == 0 ? 1 : workers);
    order = f.cpus;
  }
  // smt_rank: the k-th logical CPU seen on a core (CPUs arrive in ascending
  // os id, which is the kernel's sibling order). Sorting by (node, smt_rank,
  // core) fills every node-local distinct core before any SMT sibling.
  std::map<unsigned, unsigned> seen_on_core;
  std::vector<unsigned> smt_rank(order.size(), 0);
  {
    std::vector<TopoCpu> by_id = order;
    std::sort(by_id.begin(), by_id.end(),
              [](const TopoCpu& a, const TopoCpu& b) { return a.cpu < b.cpu; });
    std::map<unsigned, unsigned> rank_of_cpu_map;
    for (const TopoCpu& c : by_id) rank_of_cpu_map[c.cpu] = seen_on_core[c.core]++;
    for (std::size_t i = 0; i < order.size(); ++i)
      smt_rank[i] = rank_of_cpu_map[order[i].cpu];
  }
  std::vector<std::size_t> idx(order.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    const TopoCpu& ca = order[a];
    const TopoCpu& cb = order[b];
    if (ca.node != cb.node) return ca.node < cb.node;
    if (smt_rank[a] != smt_rank[b]) return smt_rank[a] < smt_rank[b];
    if (ca.core != cb.core) return ca.core < cb.core;
    return ca.cpu < cb.cpu;
  });
  std::vector<TopoCpu> out;
  out.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) out.push_back(order[idx[w % idx.size()]]);
  return out;
}

VictimTable make_victim_table(std::span<const TopoCpu> assignment) {
  VictimTable vt;
  vt.n = static_cast<unsigned>(assignment.size());
  if (vt.n == 0) return vt;
  vt.dist.assign(static_cast<std::size_t>(vt.n) * vt.n, 0);
  for (unsigned a = 0; a < vt.n; ++a)
    for (unsigned b = 0; b < vt.n; ++b)
      vt.dist[static_cast<std::size_t>(a) * vt.n + b] =
          static_cast<std::uint8_t>(steal_distance(assignment[a], assignment[b]));
  vt.order.reserve(static_cast<std::size_t>(vt.n) * (vt.n - 1));
  vt.remote_begin.assign(vt.n, vt.n - 1);
  for (unsigned w = 0; w < vt.n; ++w) {
    std::vector<Victim> row;
    row.reserve(vt.n - 1);
    for (unsigned v = 0; v < vt.n; ++v) {
      if (v == w) continue;
      row.push_back(Victim{static_cast<std::uint16_t>(v), vt.distance(w, v)});
    }
    std::stable_sort(row.begin(), row.end(), [](const Victim& a, const Victim& b) {
      return a.dist < b.dist;
    });
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (row[i].dist == StealDistance::kRemote) {
        vt.remote_begin[w] = static_cast<std::uint32_t>(i);
        break;
      }
    }
    vt.order.insert(vt.order.end(), row.begin(), row.end());
  }
  return vt;
}

bool pin_current_thread(unsigned cpu) {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  if (cpu >= CPU_SETSIZE) return false;
  CPU_SET(cpu, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

}  // namespace paracosm::util
