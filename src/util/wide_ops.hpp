// Wide-lane kernels for the batch backend (DESIGN.md §11).
//
// The safe-batch classifier evaluates the same tiny predicate — label match,
// degree feasibility, packed-NLF containment — against every update of a
// batch. These kernels run that predicate over *columns* of lanes: each
// update contributes one 64-bit lane per operand column (endpoint labels,
// degrees, packed signatures), and one oriented query edge is broadcast
// against all lanes at once. Everything is uniform uint64 width, so the
// AVX2 path is a straight 4-lanes-per-register translation of the SWAR path
// (two registers per step = 8 lanes per iteration) and the two paths are
// bit-for-bit interchangeable.
//
// Layout contract shared with the callers: every column is padded to a
// multiple of kLaneBlock lanes (kByteBlock bytes for the 0/1 candidate
// columns) and the tail is ZERO-FILLED. Kernels read the full padded extent;
// mask kernels may produce garbage verdict masks in tail lanes (callers only
// read lanes < count), but the popcount kernel *sums* the tail, so a
// non-zero tail byte is a correctness bug — tests/test_batch_backend.cpp
// pins this.
//
// This header is dependency-free on purpose (util sits below graph): the
// packed-signature constants are restated here and static_asserted equal to
// graph/nlf_signature.hpp at an include site that sees both
// (paracosm/batch_backend.cpp).
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>

namespace paracosm::util::wide {

/// uint64 lanes one kernel iteration covers (2 × 4-lane AVX2 registers).
inline constexpr std::size_t kLaneBlock = 8;
/// Bytes one candidate-column iteration covers (one AVX2 register).
inline constexpr std::size_t kByteBlock = 32;

[[nodiscard]] inline constexpr std::size_t padded_lanes(std::size_t n) noexcept {
  return (n + kLaneBlock - 1) / kLaneBlock * kLaneBlock;
}
[[nodiscard]] inline constexpr std::size_t padded_bytes(std::size_t n) noexcept {
  return (n + kByteBlock - 1) / kByteBlock * kByteBlock;
}

/// Per-lane guard bits of the packed NLF signature (== graph::kNlfSigGuard;
/// asserted where both headers are visible).
inline constexpr std::uint64_t kSigGuard = 0x8888888888888888ULL;

/// SWAR containment: every 4-bit lane of `have` >= the matching lane of
/// `need` (stored lane values <= 7, so the guard bit absorbs the borrow).
[[nodiscard]] inline constexpr bool sig_covers(std::uint64_t have,
                                               std::uint64_t need) noexcept {
  return (((have | kSigGuard) - need) & kSigGuard) == kSigGuard;
}

/// One oriented query edge, broadcast against all lanes. `blind` drops the
/// edge-label constraint (CaLiG mode — the algorithm ignores edge labels).
struct EdgeTerm {
  std::uint64_t l1 = 0, l2 = 0;      ///< endpoint vertex labels
  std::uint64_t el = 0;              ///< edge label
  std::uint64_t d1 = 0, d2 = 0;      ///< endpoint degree requirements
  std::uint64_t sig1 = 0, sig2 = 0;  ///< packed endpoint NLF signatures
  bool blind = false;
};

/// Gathered operand columns of one batch: `padded` lanes (a kLaneBlock
/// multiple), zero tails. Signatures are pre-adjusted for the pending edge
/// (nlf_sig_add on inserts) by the gatherer.
struct LaneView {
  const std::uint64_t* lu = nullptr;
  const std::uint64_t* lv = nullptr;
  const std::uint64_t* el = nullptr;
  const std::uint64_t* du = nullptr;
  const std::uint64_t* dv = nullptr;
  const std::uint64_t* sig_u = nullptr;
  const std::uint64_t* sig_v = nullptr;
  std::size_t padded = 0;
};

/// Accumulate the three per-lane verdict masks (0 or ~0) for one edge term:
///
///   any_label |= lane label-matches the term              (stage 1)
///   any_deg   |= ... and both endpoint degrees suffice    (stage 2)
///   any_alive |= ... and both endpoint signatures cover   (NLF pre-reject)
///
/// A lane with all three masks clear after every term is provably safe
/// (kSafeLabel / kSafeDegree / endpoint-local kSafeAds respectively).
void edge_masks_swar(const LaneView& v, const EdgeTerm& t,
                     std::uint64_t* any_label, std::uint64_t* any_deg,
                     std::uint64_t* any_alive) noexcept;
/// AVX2 twin (wide_avx2.cpp); forwards to SWAR when not compiled with AVX2.
void edge_masks_avx2(const LaneView& v, const EdgeTerm& t,
                     std::uint64_t* any_label, std::uint64_t* any_deg,
                     std::uint64_t* any_alive) noexcept;

/// AND + popcount over two padded 0/1 byte columns: the number of positions
/// where both bytes are 1 (candidate pairs). Tails must be zero-filled.
[[nodiscard]] std::uint64_t count_pairs_swar(const std::uint8_t* a,
                                             const std::uint8_t* b,
                                             std::size_t padded) noexcept;
[[nodiscard]] std::uint64_t count_pairs_avx2(const std::uint8_t* a,
                                             const std::uint8_t* b,
                                             std::size_t padded) noexcept;

/// Instruction-path override for tests and the --backend drivers.
enum class Dispatch : std::uint8_t {
  kAuto,       ///< AVX2 when compiled in and the CPU reports it, else SWAR
  kForceSwar,  ///< portable path even on AVX2 hardware
  kForceAvx2,  ///< AVX2 or bust; unavailable -> SWAR + downgraded flag
};

/// True when this binary contains the AVX2 translation unit (PARACOSM_SIMD
/// on an x86-64 toolchain).
[[nodiscard]] bool avx2_compiled() noexcept;
/// True when the running CPU reports AVX2 (cpuid; false off-x86).
[[nodiscard]] bool avx2_runtime() noexcept;
/// Resolve a dispatch request against reality. Sets *downgraded when a
/// kForceAvx2 request had to fall back to SWAR.
[[nodiscard]] bool use_avx2(Dispatch d, bool* downgraded = nullptr) noexcept;

inline void edge_masks_swar(const LaneView& v, const EdgeTerm& t,
                            std::uint64_t* any_label, std::uint64_t* any_deg,
                            std::uint64_t* any_alive) noexcept {
  for (std::size_t i = 0; i < v.padded; ++i) {
    // Full-width lane masks: negating a bool gives 0 or ~0.
    const std::uint64_t lm =
        -static_cast<std::uint64_t>(v.lu[i] == t.l1 && v.lv[i] == t.l2 &&
                                    (t.blind || v.el[i] == t.el));
    const std::uint64_t dm =
        lm & -static_cast<std::uint64_t>(v.du[i] >= t.d1 && v.dv[i] >= t.d2);
    const std::uint64_t am =
        dm & -static_cast<std::uint64_t>(sig_covers(v.sig_u[i], t.sig1) &&
                                         sig_covers(v.sig_v[i], t.sig2));
    any_label[i] |= lm;
    any_deg[i] |= dm;
    any_alive[i] |= am;
  }
}

inline std::uint64_t count_pairs_swar(const std::uint8_t* a, const std::uint8_t* b,
                                      std::size_t padded) noexcept {
  // Bytes are 0/1, so the AND of 8 packed bytes has popcount == the number
  // of positions where both are set.
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < padded; i += sizeof(std::uint64_t)) {
    std::uint64_t wa, wb;
    std::memcpy(&wa, a + i, sizeof wa);
    std::memcpy(&wb, b + i, sizeof wb);
    total += static_cast<std::uint64_t>(std::popcount(wa & wb));
  }
  return total;
}

}  // namespace paracosm::util::wide
