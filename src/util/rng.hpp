// Deterministic pseudo-random number generation.
//
// All randomness in the project (dataset generation, query extraction,
// workload shuffling) flows through Rng so that every experiment is
// reproducible from a single 64-bit seed.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace paracosm::util {

/// splitmix64 — used to expand a single seed into a full xoshiro state.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** by Blackman & Vigna: fast, high-quality, 2^256-1 period.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed = 0x5eedULL) noexcept { reseed(seed); }

  constexpr void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept { return ~0ULL; }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  [[nodiscard]] constexpr std::uint64_t bounded(std::uint64_t bound) noexcept {
    // Lemire's nearly-divisionless method, 64->128 bit multiply.
    const unsigned __int128 product =
        static_cast<unsigned __int128>(operator()()) * bound;
    return static_cast<std::uint64_t>(product >> 64);
  }

  /// Uniform integer in the inclusive range [lo, hi].
  [[nodiscard]] constexpr std::uint64_t range(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + bounded(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] constexpr double uniform() noexcept {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  [[nodiscard]] constexpr bool chance(double p) noexcept { return uniform() < p; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(bounded(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Derive an independent child generator (e.g. one per worker thread).
  [[nodiscard]] constexpr Rng fork() noexcept { return Rng(operator()()); }

 private:
  [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace paracosm::util
