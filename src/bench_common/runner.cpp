#include "bench_common/runner.hpp"

#include "csm/engine.hpp"
#include "util/timer.hpp"

namespace paracosm::bench {

const char* mode_name(Mode mode) noexcept {
  switch (mode) {
    case Mode::kSequential: return "sequential";
    case Mode::kInnerOnly: return "inner";
    case Mode::kInterOnly: return "inter";
    case Mode::kFull: return "paracosm";
  }
  return "?";
}

namespace {

[[nodiscard]] util::Clock::time_point deadline_for(const RunConfig& cfg,
                                                   double factor = 1.0) {
  if (cfg.timeout_ms <= 0) return {};
  return util::Clock::now() +
         std::chrono::milliseconds(
             static_cast<std::int64_t>(static_cast<double>(cfg.timeout_ms) * factor));
}

[[nodiscard]] RunResult run_sequential(const Workload& wl, const QueryGraph& q,
                                       const RunConfig& cfg) {
  RunResult result;
  auto alg = csm::make_algorithm(cfg.algorithm);
  DataGraph g = wl.graph;
  csm::SequentialEngine engine(*alg, q, g);
  const auto deadline = deadline_for(cfg);

  util::WallTimer wall;
  util::ThreadCpuTimer cpu;
  for (const GraphUpdate& upd : wl.stream) {
    if (deadline != util::Clock::time_point{} && util::Clock::now() >= deadline) {
      result.success = false;
      break;
    }
    const csm::UpdateOutcome out = engine.process(upd, deadline);
    result.delta_matches += out.delta_matches();
    result.nodes += out.nodes;
    if (out.timed_out) {
      result.success = false;
      break;
    }
  }
  result.wall_ms = wall.elapsed_ms();
  result.cpu_ms = cpu.elapsed_ms();
  result.sim_makespan_ms = result.cpu_ms;  // single thread: makespan == work
  result.ads_ms = static_cast<double>(engine.ads_update_ns()) / 1e6;
  result.search_ms = static_cast<double>(engine.find_matches_ns()) / 1e6;
  return result;
}

[[nodiscard]] RunResult run_parallel(const Workload& wl, const QueryGraph& q,
                                     const RunConfig& cfg) {
  RunResult result;
  auto alg = csm::make_algorithm(cfg.algorithm);
  DataGraph g = wl.graph;

  engine::Config pc_cfg;
  pc_cfg.threads = cfg.threads;
  pc_cfg.split_depth = cfg.split_depth;
  pc_cfg.batch_size = cfg.batch_size;
  pc_cfg.dynamic_balance = cfg.dynamic_balance;
  pc_cfg.batch_mode = cfg.batch_mode;
  pc_cfg.inner_parallelism = cfg.mode != Mode::kInterOnly;
  pc_cfg.inter_parallelism = cfg.mode != Mode::kInnerOnly;

  engine::ParaCosm pc(*alg, q, g, pc_cfg);
  const engine::StreamResult sr =
      pc.process_stream(wl.stream, deadline_for(cfg, cfg.wall_factor));

  result.sim_makespan_ms = static_cast<double>(sr.stats.simulated_makespan_ns()) / 1e6;
  // Success = the projected multicore wall time fits the paper's budget (and
  // the oversubscribed single-core execution itself completed).
  result.success = !sr.timed_out &&
                   (cfg.timeout_ms <= 0 ||
                    result.sim_makespan_ms <= static_cast<double>(cfg.timeout_ms));
  result.wall_ms = static_cast<double>(sr.wall_ns) / 1e6;
  result.cpu_ms = static_cast<double>(sr.stats.sequential_equivalent_ns()) / 1e6;
  result.delta_matches = sr.delta_matches();
  result.nodes = sr.nodes;
  result.classifier = sr.classifier;
  result.worker_busy_ns.reserve(sr.stats.workers.size());
  for (const auto& w : sr.stats.workers) result.worker_busy_ns.push_back(w.busy_ns);
  return result;
}

}  // namespace

RunResult run_stream(const Workload& wl, const QueryGraph& q, const RunConfig& cfg) {
  if (cfg.mode == Mode::kSequential) return run_sequential(wl, q, cfg);
  return run_parallel(wl, q, cfg);
}

AggregateResult run_all_queries(const Workload& wl, const RunConfig& cfg) {
  AggregateResult agg;
  if (wl.queries.empty()) return agg;
  double sum_ms = 0;
  std::uint32_t successes = 0;
  for (const QueryGraph& q : wl.queries) {
    const RunResult r = run_stream(wl, q, cfg);
    if (r.success) {
      ++successes;
      sum_ms += r.effective_ms();
      agg.delta_matches += r.delta_matches;
    }
    agg.classifier.merge(r.classifier);
  }
  agg.mean_ms = successes > 0 ? sum_ms / successes : 0.0;
  agg.success_rate =
      100.0 * static_cast<double>(successes) / static_cast<double>(wl.queries.size());
  return agg;
}

}  // namespace paracosm::bench
