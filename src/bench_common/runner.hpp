// Experiment runner: executes one (algorithm, query, stream) combination in
// a given mode and reports the metrics the paper's tables and figures use.
//
// Timing note (DESIGN.md §2): this container has a single core, so parallel
// configurations report both the raw wall clock and the *simulated makespan*
// (serial CPU + max per-worker CPU), which is the projected multicore wall
// time. Speedups in the benches are computed over simulated makespans; on
// real multicore hardware the two coincide.
#pragma once

#include <string>
#include <vector>

#include "bench_common/workload.hpp"
#include "paracosm/paracosm.hpp"

namespace paracosm::bench {

enum class Mode {
  kSequential,  ///< single-threaded baseline (original algorithm)
  kInnerOnly,   ///< inner-update parallelism only
  kInterOnly,   ///< inter-update batching only (search stays sequential)
  kFull,        ///< both levels (ParaCOSM proper)
};

[[nodiscard]] const char* mode_name(Mode mode) noexcept;

struct RunConfig {
  std::string algorithm = "graphflow";
  Mode mode = Mode::kSequential;
  unsigned threads = 32;
  std::uint32_t split_depth = 4;
  unsigned batch_size = 0;  // 0 -> threads
  std::int64_t timeout_ms = 0;  // 0 -> none; whole-stream budget (paper metric)
  bool dynamic_balance = true;
  engine::BatchMode batch_mode = engine::BatchMode::kStrict;

  /// Parallel modes on the single-core container: the run is given
  /// `timeout_ms * wall_factor` of wall clock to *execute* (all threads
  /// share one core), and counts as successful iff the simulated multicore
  /// makespan fits the original `timeout_ms` budget. On real multicore
  /// hardware set wall_factor = 1.
  double wall_factor = 8.0;
};

struct RunResult {
  bool success = true;  ///< finished within the timeout
  double wall_ms = 0;
  double cpu_ms = 0;            ///< total CPU work (serial + all workers)
  double sim_makespan_ms = 0;   ///< projected multicore wall time
  std::uint64_t delta_matches = 0;
  std::uint64_t nodes = 0;
  double ads_ms = 0;     ///< sequential mode: ADS-update share
  double search_ms = 0;  ///< sequential mode: Find_Matches share
  engine::ClassifierStats classifier;
  std::vector<std::int64_t> worker_busy_ns;  ///< per-thread totals (Fig. 10)

  /// The time a single-threaded run would take ~= cpu_ms; for parallel runs
  /// the headline number is the simulated makespan.
  [[nodiscard]] double effective_ms() const noexcept { return sim_makespan_ms; }
};

/// Run one query over the stream. The workload graph is copied, so calls are
/// independent and repeatable.
[[nodiscard]] RunResult run_stream(const Workload& wl, const QueryGraph& q,
                                   const RunConfig& cfg);

/// Average `effective_ms` over the queries that succeeded under `cfg`;
/// also reports the success rate. Convenience for the table benches.
struct AggregateResult {
  double mean_ms = 0;
  double success_rate = 0;  // percent
  std::uint64_t delta_matches = 0;
  engine::ClassifierStats classifier;
};
[[nodiscard]] AggregateResult run_all_queries(const Workload& wl, const RunConfig& cfg);

}  // namespace paracosm::bench
