// Benchmark workload construction following the paper's protocol (§5.1):
// generate the dataset stand-in, extract queries by random walk from the
// full graph, then hold out a fraction of edges as the insertion stream
// (the Sun et al. sampling methodology).
#pragma once

#include <string>
#include <vector>

#include "graph/data_graph.hpp"
#include "graph/generators.hpp"
#include "graph/query_graph.hpp"

namespace paracosm::bench {

using graph::DataGraph;
using graph::DatasetSpec;
using graph::GraphUpdate;
using graph::QueryGraph;

struct Workload {
  DatasetSpec spec;
  DataGraph graph;  ///< initial state (stream edges already removed)
  std::vector<GraphUpdate> stream;
  std::vector<QueryGraph> queries;
};

/// Build a workload: `num_queries` queries of `query_size` vertices, and a
/// `stream_fraction` share of edges as the insertion stream (paper: 10%).
/// Deterministic in `seed`.
[[nodiscard]] Workload build_workload(const DatasetSpec& spec, std::uint32_t query_size,
                                      std::uint32_t num_queries, double stream_fraction,
                                      std::uint64_t seed, double delete_fraction = 0.0,
                                      const graph::QueryExtractOptions& opts = {});

/// Edge-label-stripped copies for evaluating CaLiG (paper §5.1 Metrics:
/// "we remove edge labels from all datasets during CaLiG evaluation").
[[nodiscard]] DataGraph strip_edge_labels(const DataGraph& g);
[[nodiscard]] QueryGraph strip_edge_labels(const QueryGraph& q);
[[nodiscard]] std::vector<GraphUpdate> strip_edge_labels(
    const std::vector<GraphUpdate>& stream);
[[nodiscard]] Workload strip_edge_labels(const Workload& wl);

}  // namespace paracosm::bench
