#include "bench_common/reporting.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace paracosm::bench {

void print_experiment_banner(const std::string& artifact, const std::string& summary) {
  std::printf("\n================================================================\n");
  std::printf("ParaCOSM reproduction — %s\n", artifact.c_str());
  std::printf("%s\n", summary.c_str());
  std::printf("================================================================\n\n");
}

std::string results_path(const std::string& name) {
  return "results/" + name + ".csv";
}

std::string format_speedup(double baseline_ms, double value_ms, bool baseline_ok,
                           bool value_ok) {
  if (!value_ok) return "TO";
  if (!baseline_ok) return ">TO";  // parallel finished where baseline timed out
  if (value_ms <= 0) return "-";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2fx", baseline_ms / value_ms);
  return buf;
}

std::int64_t percentile_ns(std::vector<std::int64_t> samples, double p) {
  if (samples.empty()) return 0;
  if (p <= 0) return *std::min_element(samples.begin(), samples.end());
  // Nearest-rank: ceil(p/100 * N), clamped into [1, N].
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(samples.size())));
  rank = std::min(std::max<std::size_t>(rank, 1), samples.size());
  std::nth_element(samples.begin(), samples.begin() + (rank - 1), samples.end());
  return samples[rank - 1];
}

LatencySummary summarize_histogram(const obs::Histogram& hist) {
  LatencySummary s;
  s.count = hist.count();
  if (s.count == 0) return s;
  s.mean_ns = hist.mean();
  s.p50_ns = hist.quantile(50.0);
  s.p95_ns = hist.quantile(95.0);
  s.p99_ns = hist.quantile(99.0);
  s.p999_ns = hist.quantile(99.9);
  s.max_ns = hist.max();
  return s;
}

LatencySummary summarize_latencies(const std::vector<std::int64_t>& samples) {
  obs::Histogram hist;
  for (const std::int64_t v : samples) hist.record(v);
  return summarize_histogram(hist);
}

}  // namespace paracosm::bench
