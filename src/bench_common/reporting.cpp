#include "bench_common/reporting.hpp"

#include <cstdio>

namespace paracosm::bench {

void print_experiment_banner(const std::string& artifact, const std::string& summary) {
  std::printf("\n================================================================\n");
  std::printf("ParaCOSM reproduction — %s\n", artifact.c_str());
  std::printf("%s\n", summary.c_str());
  std::printf("================================================================\n\n");
}

std::string results_path(const std::string& name) {
  return "results/" + name + ".csv";
}

std::string format_speedup(double baseline_ms, double value_ms, bool baseline_ok,
                           bool value_ok) {
  if (!value_ok) return "TO";
  if (!baseline_ok) return ">TO";  // parallel finished where baseline timed out
  if (value_ms <= 0) return "-";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2fx", baseline_ms / value_ms);
  return buf;
}

}  // namespace paracosm::bench
