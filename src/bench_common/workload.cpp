#include "bench_common/workload.hpp"

namespace paracosm::bench {

Workload build_workload(const DatasetSpec& spec, std::uint32_t query_size,
                        std::uint32_t num_queries, double stream_fraction,
                        std::uint64_t seed, double delete_fraction,
                        const graph::QueryExtractOptions& opts) {
  util::Rng rng(seed);
  Workload wl;
  wl.spec = spec;
  wl.graph = graph::generate_power_law(spec, rng);
  wl.queries = graph::extract_queries(wl.graph, query_size, num_queries, rng, opts);
  wl.stream = delete_fraction > 0.0
                  ? graph::make_mixed_stream(wl.graph, stream_fraction,
                                             delete_fraction, rng)
                  : graph::make_insert_stream(wl.graph, stream_fraction, rng);
  return wl;
}

DataGraph strip_edge_labels(const DataGraph& g) {
  DataGraph out;
  for (graph::VertexId v = 0; v < g.vertex_capacity(); ++v)
    if (g.has_vertex(v)) out.add_vertex_with_id(v, g.label(v));
  for (const auto& e : g.edge_list()) out.add_edge(e.u, e.v, 0);
  return out;
}

QueryGraph strip_edge_labels(const QueryGraph& q) {
  std::vector<graph::Label> labels(q.num_vertices());
  for (graph::VertexId u = 0; u < q.num_vertices(); ++u) labels[u] = q.label(u);
  std::vector<graph::Edge> edges;
  for (const auto& e : q.edges()) edges.push_back({e.u, e.v, 0});
  return QueryGraph(std::move(labels), std::move(edges));
}

std::vector<GraphUpdate> strip_edge_labels(const std::vector<GraphUpdate>& stream) {
  std::vector<GraphUpdate> out = stream;
  for (GraphUpdate& upd : out)
    if (upd.is_edge_op()) upd.label = 0;
  return out;
}

Workload strip_edge_labels(const Workload& wl) {
  Workload out;
  out.spec = wl.spec;
  out.graph = strip_edge_labels(wl.graph);
  out.stream = strip_edge_labels(wl.stream);
  out.queries.reserve(wl.queries.size());
  for (const QueryGraph& q : wl.queries) out.queries.push_back(strip_edge_labels(q));
  return out;
}

}  // namespace paracosm::bench
