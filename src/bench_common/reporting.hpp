// Shared reporting for the bench binaries: banner, result directory, and
// the paper-experiment header each binary prints before its table.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/csv.hpp"
#include "util/table.hpp"

namespace paracosm::bench {

/// Print a standard header naming the paper artifact being regenerated.
void print_experiment_banner(const std::string& artifact, const std::string& summary);

/// results/<name>.csv (directory created on demand).
[[nodiscard]] std::string results_path(const std::string& name);

/// "12.3x" style speedup formatting, with "TO" for timeouts like Figure 7.
[[nodiscard]] std::string format_speedup(double baseline_ms, double value_ms,
                                         bool baseline_ok, bool value_ok);

/// Nearest-rank percentile (p in [0,100]) over a latency sample; 0 if empty.
/// Takes the sample by value — it is partially sorted in place.
[[nodiscard]] std::int64_t percentile_ns(std::vector<std::int64_t> samples,
                                         double p);

/// Per-update latency digest reported by paracosm_serve and bench_baseline's
/// service section (ISSUE 4 satellite: p50/p95/p99 in the JSON artifact).
struct LatencySummary {
  std::size_t count = 0;
  double mean_ns = 0.0;
  std::int64_t p50_ns = 0;
  std::int64_t p95_ns = 0;
  std::int64_t p99_ns = 0;
  std::int64_t max_ns = 0;
};

[[nodiscard]] LatencySummary summarize_latencies(
    const std::vector<std::int64_t>& samples);

}  // namespace paracosm::bench
