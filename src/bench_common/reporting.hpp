// Shared reporting for the bench binaries: banner, result directory, and
// the paper-experiment header each binary prints before its table.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/histogram.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace paracosm::bench {

/// Print a standard header naming the paper artifact being regenerated.
void print_experiment_banner(const std::string& artifact, const std::string& summary);

/// results/<name>.csv (directory created on demand).
[[nodiscard]] std::string results_path(const std::string& name);

/// "12.3x" style speedup formatting, with "TO" for timeouts like Figure 7.
[[nodiscard]] std::string format_speedup(double baseline_ms, double value_ms,
                                         bool baseline_ok, bool value_ok);

/// Exact nearest-rank percentile (p in [0,100]) over a latency sample; 0 if
/// empty. Takes the sample by value — it is partially sorted in place. Kept
/// as the exact reference the histogram property tests compare against;
/// production reporting goes through summarize_histogram below.
[[nodiscard]] std::int64_t percentile_ns(std::vector<std::int64_t> samples,
                                         double p);

/// Per-update latency digest reported by paracosm_serve and bench_baseline's
/// service section. Quantiles come from the log-bucketed obs::Histogram, so
/// they carry its documented ≤ 1/32 relative-error bound (histogram.hpp);
/// count, mean and max are exact.
struct LatencySummary {
  std::size_t count = 0;
  double mean_ns = 0.0;
  std::int64_t p50_ns = 0;
  std::int64_t p95_ns = 0;
  std::int64_t p99_ns = 0;
  std::int64_t p999_ns = 0;
  std::int64_t max_ns = 0;
};

[[nodiscard]] LatencySummary summarize_histogram(const obs::Histogram& hist);

/// Convenience wrapper: feed a raw sample through a histogram and summarize.
[[nodiscard]] LatencySummary summarize_latencies(
    const std::vector<std::int64_t>& samples);

}  // namespace paracosm::bench
