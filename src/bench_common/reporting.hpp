// Shared reporting for the bench binaries: banner, result directory, and
// the paper-experiment header each binary prints before its table.
#pragma once

#include <string>

#include "util/csv.hpp"
#include "util/table.hpp"

namespace paracosm::bench {

/// Print a standard header naming the paper artifact being regenerated.
void print_experiment_banner(const std::string& artifact, const std::string& summary);

/// results/<name>.csv (directory created on demand).
[[nodiscard]] std::string results_path(const std::string& name);

/// "12.3x" style speedup formatting, with "TO" for timeouts like Figure 7.
[[nodiscard]] std::string format_speedup(double baseline_ms, double value_ms,
                                         bool baseline_ok, bool value_ok);

}  // namespace paracosm::bench
