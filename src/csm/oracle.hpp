// Brute-force matching oracle (an IncIsoMatch-style recompute baseline).
//
// Enumerates ALL matches of Q in G with plain backtracking and no auxiliary
// structure. It is the ground truth for the property tests — for an edge
// insertion, |ΔM⁺| must equal count_after − count_before — and doubles as
// the offline Find_Initial_Matches step of Algorithm 1.
#pragma once

#include <cstdint>

#include "csm/match.hpp"
#include "graph/data_graph.hpp"
#include "graph/query_graph.hpp"

namespace paracosm::csm {

/// Count every subgraph-isomorphism mapping of q into g. When
/// `use_edge_labels` is false, edge labels are ignored (CaLiG semantics).
/// Honors the sink's deadline; matches/nodes are accumulated into it.
void enumerate_all_matches(const graph::QueryGraph& q, const graph::DataGraph& g,
                           MatchSink& sink, bool use_edge_labels = true);

/// Convenience wrapper returning just the count (no deadline).
[[nodiscard]] std::uint64_t count_all_matches(const graph::QueryGraph& q,
                                              const graph::DataGraph& g,
                                              bool use_edge_labels = true);

}  // namespace paracosm::csm
