// IEDyn (Idris et al., VLDB J. 2020): dynamic Yannakakis-style continuous
// matching for ACYCLIC (tree) queries — paper Table 1, row "IEDyn".
//
// For tree queries the bidirectional candidate DP is *exact*: v is a
// candidate of u iff v participates in at least one embedding of the tree.
// IEDyn exploits this — after the index update, enumeration touches only
// vertices that are guaranteed to extend to full matches, so the search
// tree contains no dead branches (the "constant-delay enumeration"
// property, modulo injectivity checks). attach() rejects cyclic queries.
#pragma once

#include "csm/backtrack.hpp"
#include "csm/candidate_index.hpp"

namespace paracosm::csm {

class IEDyn final : public BacktrackBase {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "iedyn"; }

  /// Throws std::invalid_argument if the query is not a tree.
  void attach(const QueryGraph& q, const DataGraph& g) override;

  void on_edge_inserted(const GraphUpdate& upd) override {
    index_.on_edge_inserted(upd.u, upd.v, upd.label);
  }
  void on_edge_removed(const GraphUpdate& upd) override {
    index_.on_edge_removed(upd.u, upd.v, upd.label);
  }
  void on_vertex_added(graph::VertexId id) override { index_.on_vertex_added(id); }
  void on_vertex_removed(graph::VertexId id) override { index_.on_vertex_removed(id); }

  [[nodiscard]] bool has_ads() const noexcept override { return true; }
  [[nodiscard]] std::uint64_t ads_checksum() const noexcept override {
    return index_.checksum();
  }
  [[nodiscard]] bool ads_safe(const GraphUpdate& upd) const override {
    if (!upd.is_edge_op()) return false;
    return upd.is_insert() ? index_.safe_insert(upd.u, upd.v, upd.label)
                           : index_.safe_remove(upd.u, upd.v, upd.label);
  }

  [[nodiscard]] const DagCandidateIndex& index() const noexcept { return index_; }

 protected:
  [[nodiscard]] bool candidate_ok(VertexId u, VertexId v) const override {
    return index_.candidate(u, v);
  }
  void rebuild_index() override {
    // The whole (acyclic) query is its own spanning tree: the "tree-only"
    // orientation keeps every edge and the DP is exact.
    index_.build(*query_, *graph_, /*spanning_tree_only=*/true);
  }

 private:
  DagCandidateIndex index_;
};

}  // namespace paracosm::csm
