// TurboFlux (Kim et al., SIGMOD'18): DCG-backed continuous matching.
//
// The data-centric graph is realized as a DagCandidateIndex over the BFS
// *spanning tree* of the query: cheap O(|E(G)||V(Q)|)-style maintenance,
// weaker pruning than Symbi's full-DAG DCS — the trade-off the paper's
// Table 1 records.
#pragma once

#include "csm/backtrack.hpp"
#include "csm/candidate_index.hpp"

namespace paracosm::csm {

class TurboFlux final : public BacktrackBase {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "turboflux"; }

  void on_edge_inserted(const GraphUpdate& upd) override {
    index_.on_edge_inserted(upd.u, upd.v, upd.label);
  }
  void on_edge_removed(const GraphUpdate& upd) override {
    index_.on_edge_removed(upd.u, upd.v, upd.label);
  }
  void on_vertex_added(graph::VertexId id) override { index_.on_vertex_added(id); }
  void on_vertex_removed(graph::VertexId id) override { index_.on_vertex_removed(id); }

  [[nodiscard]] bool has_ads() const noexcept override { return true; }
  [[nodiscard]] std::uint64_t ads_checksum() const noexcept override {
    return index_.checksum();
  }
  [[nodiscard]] bool ads_safe(const GraphUpdate& upd) const override {
    if (!upd.is_edge_op()) return false;
    return upd.is_insert() ? index_.safe_insert(upd.u, upd.v, upd.label)
                           : index_.safe_remove(upd.u, upd.v, upd.label);
  }

  [[nodiscard]] const DagCandidateIndex& index() const noexcept { return index_; }

 protected:
  [[nodiscard]] bool candidate_ok(VertexId u, VertexId v) const override {
    return index_.candidate(u, v);
  }
  void rebuild_index() override {
    index_.build(*query_, *graph_, /*spanning_tree_only=*/true);
  }

 private:
  DagCandidateIndex index_;
};

}  // namespace paracosm::csm
