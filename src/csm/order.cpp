#include "csm/order.hpp"

#include <stdexcept>

namespace paracosm::csm {

std::vector<VertexId> edge_rooted_order(const QueryGraph& q, VertexId u1, VertexId u2,
                                        OrderPolicy policy) {
  const std::uint32_t n = q.num_vertices();
  std::vector<VertexId> order{u1, u2};
  std::vector<bool> placed(n, false);
  placed[u1] = placed[u2] = true;
  // connected_to[w] = number of already-placed neighbors of w.
  std::vector<std::uint32_t> connected_to(n, 0);
  const auto absorb = [&](VertexId u) {
    for (const auto& nb : q.neighbors(u))
      if (!placed[nb.v]) ++connected_to[nb.v];
  };
  absorb(u1);
  absorb(u2);
  const auto is_leaf = [&](VertexId w) {
    return policy == OrderPolicy::kCoreFirst && q.degree(w) == 1;
  };
  while (order.size() < n) {
    VertexId best = graph::kInvalidVertex;
    for (VertexId w = 0; w < n; ++w) {
      if (placed[w] || connected_to[w] == 0) continue;
      if (best == graph::kInvalidVertex) {
        best = w;
        continue;
      }
      // Core-first: any non-leaf beats any leaf; within a class fall back to
      // the connectivity heuristic.
      if (is_leaf(w) != is_leaf(best)) {
        if (!is_leaf(w)) best = w;
        continue;
      }
      if (connected_to[w] > connected_to[best] ||
          (connected_to[w] == connected_to[best] && q.degree(w) > q.degree(best)))
        best = w;
    }
    if (best == graph::kInvalidVertex)
      throw std::invalid_argument("edge_rooted_order: query graph is disconnected");
    placed[best] = true;
    order.push_back(best);
    absorb(best);
  }
  return order;
}

OrderTable::OrderTable(const QueryGraph& q, OrderPolicy policy) {
  for (const auto& e : q.edges()) {
    orders_.emplace(key(e.u, e.v), edge_rooted_order(q, e.u, e.v, policy));
    orders_.emplace(key(e.v, e.u), edge_rooted_order(q, e.v, e.u, policy));
  }
}

const std::vector<VertexId>& OrderTable::order_for(VertexId u1, VertexId u2) const {
  const auto it = orders_.find(key(u1, u2));
  if (it == orders_.end())
    throw std::invalid_argument("OrderTable: no order for the given query edge");
  return it->second;
}

}  // namespace paracosm::csm
