#include "csm/algorithm.hpp"
#include "csm/calig.hpp"
#include "csm/graphflow.hpp"
#include "csm/iedyn.hpp"
#include "csm/incisomatch.hpp"
#include "csm/newsp.hpp"
#include "csm/rapidflow.hpp"
#include "csm/symbi.hpp"
#include "csm/turboflux.hpp"

namespace paracosm::csm {

std::unique_ptr<CsmAlgorithm> make_algorithm(std::string_view name) {
  if (name == "graphflow") return std::make_unique<GraphFlow>();
  if (name == "turboflux") return std::make_unique<TurboFlux>();
  if (name == "symbi") return std::make_unique<Symbi>();
  if (name == "calig") return std::make_unique<CaLiG>();
  if (name == "newsp") return std::make_unique<NewSP>();
  if (name == "incisomatch") return std::make_unique<IncIsoMatch>();
  if (name == "iedyn") return std::make_unique<IEDyn>();
  if (name == "rapidflow") return std::make_unique<RapidFlow>();
  return nullptr;
}

// The five incremental algorithms the paper parallelizes. The recomputation
// baseline ("incisomatch") is constructible by name but intentionally not in
// the default sweep — it recounts the whole graph per update.
std::vector<std::string_view> algorithm_names() {
  return {"graphflow", "turboflux", "symbi", "calig", "newsp"};
}

}  // namespace paracosm::csm
