// NewSP (Li et al., ICDE'24): decoupled CPT/EXP search process.
//
// No persistent ADS (O(1) index update). The traversal decouples
// compatible-set computation (CPT) from expansion (EXP): at every step the
// sizes of the compatible sets of ALL frontier query vertices are estimated
// first, and only the cheapest one is materialized and expanded — a dynamic
// matching order that defers expansion until it is provably needed.
#pragma once

#include "csm/algorithm.hpp"
#include "csm/scratch.hpp"

namespace paracosm::csm {

class NewSP final : public CsmAlgorithm {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "newsp"; }

  void attach(const QueryGraph& q, const DataGraph& g) override {
    query_ = &q;
    graph_ = &g;
  }

  /// Graph-only safety proof via neighbor-label-frequency containment: an
  /// endpoint that cannot NLF-dominate any compatible query vertex can never
  /// participate in a new match.
  [[nodiscard]] bool ads_safe(const GraphUpdate& upd) const override;

  /// ads_safe above returns false only when some label-matching pair passes
  /// both the pending-adjusted degree check and nlf_dominates at both
  /// endpoints, and nlf_dominates leads with the signature pre-reject — so a
  /// batch lane whose every pair fails degree or signature containment is
  /// provably safe from the gathered endpoint columns alone.
  [[nodiscard]] bool ads_safe_endpoint_nlf() const noexcept override {
    return true;
  }

  void seeds(const GraphUpdate& upd, std::vector<SearchTask>& out) const override;
  void expand(const SearchTask& task, MatchSink& sink, SplitHook* hook) const override;

 private:
  /// NLF containment of data vertex v over query vertex u, with the pending
  /// edge to `extra_label` counted when extra_valid (classifier runs before
  /// the update is applied). Signature pre-reject, then exact per-label check.
  [[nodiscard]] bool nlf_dominates(VertexId u, VertexId v, bool count_extra,
                                   Label extra_label) const;

  void expand_step(SearchScratch& s, MatchSink& sink, SplitHook* hook) const;
};

}  // namespace paracosm::csm
