// CaLiG (Yang et al., SIGMOD'23): kernel-and-light candidate classification.
//
// Candidates are classified by a symmetric mutual-support refinement over the
// whole query neighborhood (SupportIndex); search seeds only from kernel
// vertices. Like the original system, the algorithm is edge-label-blind —
// the bench harness strips edge labels from datasets before evaluating it,
// matching the paper's protocol (§5.1 Metrics).
#pragma once

#include "csm/backtrack.hpp"
#include "csm/support_index.hpp"

namespace paracosm::csm {

class CaLiG final : public BacktrackBase {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "calig"; }
  [[nodiscard]] bool uses_edge_labels() const noexcept override { return false; }

  void on_edge_inserted(const GraphUpdate& upd) override {
    index_.on_edge_inserted(upd.u, upd.v);
  }
  void on_edge_removed(const GraphUpdate& upd) override {
    index_.on_edge_removed(upd.u, upd.v);
  }
  void on_vertex_added(graph::VertexId id) override { index_.on_vertex_added(id); }
  void on_vertex_removed(graph::VertexId id) override { index_.on_vertex_removed(id); }

  [[nodiscard]] bool has_ads() const noexcept override { return true; }
  [[nodiscard]] std::uint64_t ads_checksum() const noexcept override {
    return index_.checksum();
  }
  [[nodiscard]] bool ads_safe(const GraphUpdate& upd) const override {
    if (!upd.is_edge_op()) return false;
    return upd.is_insert() ? index_.safe_insert(upd.u, upd.v)
                           : index_.safe_remove(upd.u, upd.v);
  }

  [[nodiscard]] const SupportIndex& index() const noexcept { return index_; }

 protected:
  [[nodiscard]] bool candidate_ok(VertexId u, VertexId v) const override {
    return index_.kernel(u, v);
  }
  void rebuild_index() override { index_.build(*query_, *graph_); }

 private:
  SupportIndex index_;
};

}  // namespace paracosm::csm
