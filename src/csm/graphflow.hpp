// GraphFlow (Kankanamge et al., SIGMOD'17): index-free continuous matching.
//
// No auxiliary structure is maintained (O(1) per update); every insertion is
// answered by direct enumeration from the new edge with precomputed
// edge-rooted matching orders. Because there is no ADS, the update type
// classifier can rely only on label/degree filtering for this algorithm —
// reproducing the paper's Table 1 row ("index A update: O(1)").
#pragma once

#include "csm/backtrack.hpp"

namespace paracosm::csm {

class GraphFlow final : public BacktrackBase {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "graphflow"; }

  [[nodiscard]] bool ads_safe(const GraphUpdate&) const override {
    // Nothing beyond the classifier's label/degree stages can be proven.
    return false;
  }

 protected:
  [[nodiscard]] bool candidate_ok(VertexId, VertexId) const override { return true; }
};

}  // namespace paracosm::csm
