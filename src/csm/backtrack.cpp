#include "csm/backtrack.hpp"

#include <algorithm>

#include "obs/trace_ring.hpp"

namespace paracosm::csm {

void BacktrackBase::attach(const QueryGraph& q, const DataGraph& g) {
  query_ = &q;
  graph_ = &g;
  orders_ = OrderTable(q, order_policy());
  rebuild_index();
}

void BacktrackBase::seeds(const GraphUpdate& upd, std::vector<SearchTask>& out) const {
  if (!upd.is_edge_op()) return;
  const DataGraph& g = *graph_;
  if (!g.has_vertex(upd.u) || !g.has_vertex(upd.v)) return;
  const auto pairs = query_->matching_edges(g.label(upd.u), g.label(upd.v), upd.label,
                                            !uses_edge_labels());
  for (const auto& [u1, u2] : pairs) {
    if (g.degree(upd.u) < query_->degree(u1)) continue;
    if (g.degree(upd.v) < query_->degree(u2)) continue;
    if (!candidate_ok(u1, upd.u) || !candidate_ok(u2, upd.v)) continue;
    out.push_back(SearchTask{{{u1, upd.u}, {u2, upd.v}}});
  }
}

void BacktrackBase::expand(const SearchTask& task, MatchSink& sink,
                           SplitHook* hook) const {
  // Pooled per-worker scratch: no allocation in steady state (scratch.hpp).
  SearchScratch& s = worker_scratch();
  s.prepare(query_->num_vertices(), graph_->vertex_capacity());
  for (const Assignment& a : task.assigned) {
    s.map[a.qv] = a.dv;
    s.assigned.push_back(a);
    s.mark_used(a.dv);
  }
  const auto& order = orders_.order_for(task.assigned[0].qv, task.assigned[1].qv);
  expand_depth(order, s, sink, hook);
}

void BacktrackBase::expand_depth(const std::vector<VertexId>& order, SearchScratch& s,
                                 MatchSink& sink, SplitHook* hook) const {
  if (!sink.tick()) return;
  const auto depth = static_cast<std::uint32_t>(s.assigned.size());
  // Level-2 per-node instants: trace_instant returns after one relaxed load
  // unless the user explicitly asked for search-tree granularity.
  PARACOSM_TRACE_INSTANT(obs::EventKind::kBacktrackEnter, depth);
  if (depth == query_->num_vertices()) {
    PARACOSM_TRACE_INSTANT(obs::EventKind::kEmit, depth);
    sink.emit(s.assigned);
    return;
  }
  const QueryGraph& q = *query_;
  const DataGraph& g = *graph_;
  const VertexId u = order[depth];

  // Pivot: the already-matched query neighbor whose data image has the
  // smallest adjacency list; candidates are drawn from its neighborhood.
  VertexId pivot = graph::kInvalidVertex;
  std::uint32_t pivot_deg = 0;
  for (const auto& nb : q.neighbors(u)) {
    const VertexId dv = s.map[nb.v];
    if (dv == graph::kInvalidVertex) continue;
    const std::uint32_t d = g.degree(dv);
    if (pivot == graph::kInvalidVertex || d < pivot_deg) {
      pivot = nb.v;
      pivot_deg = d;
    }
  }
  if (pivot == graph::kInvalidVertex) return;  // orders guarantee connectivity
  const Label pivot_elabel = *q.edge_label(u, pivot);
  const bool elabels = uses_edge_labels();

  const bool offload = hook != nullptr && hook->want_offload(depth);
  // Candidates come from the pivot image's label segment only — the
  // label(w) == label(u) filter is implicit in the layout.
  for (const auto& nb : g.neighbors_with_label(s.map[pivot], q.label(u))) {
    if (!sink.tick()) return;
    const VertexId w = nb.v;
    if (elabels && nb.elabel != pivot_elabel) continue;
    if (g.degree(w) < q.degree(u)) continue;
    if (s.is_used(w)) continue;
    if (!candidate_ok(u, w)) continue;
    // Every other matched query neighbor must be adjacent with the right
    // label; edge_label gallops within w's matching label segment.
    bool consistent = true;
    for (const auto& qnb : q.neighbors(u)) {
      if (qnb.v == pivot) continue;
      const VertexId dv = s.map[qnb.v];
      if (dv == graph::kInvalidVertex) continue;
      // dv's label is pinned by its query image, so the hinted lookup skips
      // the vertices_[dv] load.
      const auto el = g.edge_label(w, dv, q.label(qnb.v));
      if (!el || (elabels && *el != qnb.elabel)) {
        consistent = false;
        break;
      }
    }
    if (!consistent) {
      PARACOSM_TRACE_INSTANT(obs::EventKind::kPrune, depth);
      continue;
    }

    if (offload) {
      SearchTask child{s.assigned};
      child.assigned.push_back({u, w});
      hook->offload(std::move(child));
    } else {
      s.assigned.push_back({u, w});
      s.map[u] = w;
      s.mark_used(w);
      expand_depth(order, s, sink, hook);
      s.clear_used(w);
      s.map[u] = graph::kInvalidVertex;
      s.assigned.pop_back();
      if (sink.stopped()) return;
    }
  }
}

}  // namespace paracosm::csm
