#include "csm/oracle.hpp"

#include <vector>

namespace paracosm::csm {

namespace {

using graph::DataGraph;
using graph::QueryGraph;

struct OracleState {
  const QueryGraph* q;
  const DataGraph* g;
  bool elabels;
  std::vector<VertexId> order;  // connected vertex order
  std::vector<VertexId> map;
  std::vector<Assignment> assigned;
};

/// Greedy connected order rooted at the query vertex with the rarest label.
std::vector<VertexId> vertex_rooted_order(const QueryGraph& q, const DataGraph& g) {
  const std::uint32_t n = q.num_vertices();
  VertexId root = 0;
  std::uint64_t best = ~0ULL;
  for (VertexId u = 0; u < n; ++u) {
    const std::uint64_t freq = g.count_vertices_with_label(q.label(u));
    if (freq < best || (freq == best && q.degree(u) > q.degree(root))) {
      best = freq;
      root = u;
    }
  }
  std::vector<VertexId> order{root};
  std::vector<bool> placed(n, false);
  placed[root] = true;
  while (order.size() < n) {
    VertexId pick = graph::kInvalidVertex;
    for (VertexId u = 0; u < n; ++u) {
      if (placed[u]) continue;
      bool connected = false;
      for (const auto& nb : q.neighbors(u))
        if (placed[nb.v]) connected = true;
      if (!connected) continue;
      if (pick == graph::kInvalidVertex || q.degree(u) > q.degree(pick)) pick = u;
    }
    if (pick == graph::kInvalidVertex) break;  // disconnected query
    placed[pick] = true;
    order.push_back(pick);
  }
  return order;
}

void recurse(OracleState& s, MatchSink& sink) {
  if (!sink.tick()) return;
  const std::uint32_t depth = static_cast<std::uint32_t>(s.assigned.size());
  if (depth == s.q->num_vertices()) {
    sink.emit(s.assigned);
    return;
  }
  const VertexId u = s.order[depth];
  const auto try_vertex = [&](VertexId w) {
    if (!sink.tick()) return;
    if (s.g->label(w) != s.q->label(u)) return;
    if (s.g->degree(w) < s.q->degree(u)) return;
    for (const Assignment& a : s.assigned)
      if (a.dv == w) return;
    for (const auto& qnb : s.q->neighbors(u)) {
      const VertexId dv = s.map[qnb.v];
      if (dv == graph::kInvalidVertex) continue;
      const auto el = s.g->edge_label(w, dv);
      if (!el || (s.elabels && *el != qnb.elabel)) return;
    }
    s.assigned.push_back({u, w});
    s.map[u] = w;
    recurse(s, sink);
    s.map[u] = graph::kInvalidVertex;
    s.assigned.pop_back();
  };

  // Prefer a matched neighbor's adjacency; fall back to the label bucket for
  // the root (or if the query is disconnected).
  VertexId pivot = graph::kInvalidVertex;
  std::uint32_t pivot_deg = 0;
  for (const auto& nb : s.q->neighbors(u)) {
    const VertexId dv = s.map[nb.v];
    if (dv == graph::kInvalidVertex) continue;
    if (pivot == graph::kInvalidVertex || s.g->degree(dv) < pivot_deg) {
      pivot = nb.v;
      pivot_deg = s.g->degree(dv);
    }
  }
  if (pivot != graph::kInvalidVertex) {
    for (const auto& nb : s.g->neighbors(s.map[pivot])) {
      try_vertex(nb.v);
      if (sink.stopped()) return;
    }
  } else {
    for (const VertexId w : s.g->label_view(s.q->label(u))) {
      try_vertex(w);
      if (sink.stopped()) return;
    }
  }
}

}  // namespace

void enumerate_all_matches(const QueryGraph& q, const DataGraph& g, MatchSink& sink,
                           bool use_edge_labels) {
  if (q.num_vertices() == 0) return;
  OracleState s;
  s.q = &q;
  s.g = &g;
  s.elabels = use_edge_labels;
  s.order = vertex_rooted_order(q, g);
  if (s.order.size() != q.num_vertices()) return;  // disconnected query
  s.map.assign(q.num_vertices(), graph::kInvalidVertex);
  recurse(s, sink);
}

std::uint64_t count_all_matches(const QueryGraph& q, const DataGraph& g,
                                bool use_edge_labels) {
  MatchSink sink;
  enumerate_all_matches(q, g, sink, use_edge_labels);
  return sink.matches;
}

}  // namespace paracosm::csm
