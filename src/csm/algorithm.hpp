// The uniform CSM algorithm interface (the general two-stage model of paper
// §2.2) that ParaCOSM parallelizes. A user plugs an algorithm into ParaCOSM
// by implementing exactly the two hooks the paper names: a search-tree
// traversal routine (`seeds` + `expand`) and a filtering rule (`ads_safe`);
// everything else (scheduling, classification, batching) is framework-side.
//
// Engine contract for ADS maintenance:
//   * insertion:  graph.add_edge  ->  on_edge_inserted  ->  enumerate ΔM+
//   * deletion:   enumerate ΔM-   ->  graph.remove_edge ->  on_edge_removed
// i.e. maintenance hooks always run with the data graph already reflecting
// the change, and enumeration always runs on the state where the matches
// exist.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "csm/match.hpp"
#include "graph/data_graph.hpp"
#include "graph/query_graph.hpp"

namespace paracosm::csm {

using graph::DataGraph;
using graph::GraphUpdate;
using graph::QueryGraph;

class CsmAlgorithm {
 public:
  virtual ~CsmAlgorithm() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// False for CaLiG: the original system has no edge-label matching, so the
  /// harness strips edge labels from datasets before running it (exactly the
  /// paper's evaluation protocol).
  [[nodiscard]] virtual bool uses_edge_labels() const noexcept { return true; }

  /// True when the algorithm maintains an auxiliary data structure. The
  /// update classifier must then consult `ads_safe` even for updates whose
  /// endpoint degrees rule out a match, because the ADS may still change.
  [[nodiscard]] virtual bool has_ads() const noexcept { return false; }

  /// Offline stage: bind to (Q, G), build the auxiliary data structure and
  /// matching orders. May be called again to rebind.
  virtual void attach(const QueryGraph& q, const DataGraph& g) = 0;

  /// Rolling checksum over the ADS's flag state (0 for index-free
  /// algorithms), maintained O(1) per flip. The verification contract: a
  /// *safe* update (see `ads_safe`) must leave this value bit-identical —
  /// the PARACOSM_VERIFY build asserts exactly that around every safe batch.
  [[nodiscard]] virtual std::uint64_t ads_checksum() const noexcept { return 0; }

  /// ADS maintenance (see engine contract above). Default: no ADS.
  virtual void on_edge_inserted(const GraphUpdate& /*upd*/) {}
  virtual void on_edge_removed(const GraphUpdate& /*upd*/) {}
  virtual void on_vertex_added(graph::VertexId /*id*/) {}
  virtual void on_vertex_removed(graph::VertexId /*id*/) {}

  /// Stage-3 of the update type classifier (the user-provided "filtering
  /// rule"). Called BEFORE `upd` is applied; must return true only when the
  /// algorithm can prove that applying it flips no ADS state and can neither
  /// create nor destroy a match. Algorithms without an ADS may still prove
  /// safety from graph-only facts (e.g. NewSP's NLF check) or return false.
  [[nodiscard]] virtual bool ads_safe(const GraphUpdate& upd) const = 0;

  /// Opt-in contract for the wide batch backend (DESIGN.md §11): return true
  /// only when `ads_safe` is *implied true* whenever every label-matching
  /// oriented query edge for the update fails the pending-adjusted endpoint
  /// degree check or the pending-adjusted packed-NLF containment pre-reject
  /// at either endpoint. The wide backend then proves kSafeAds from gathered
  /// endpoint columns alone, without calling `ads_safe`. Must stay false for
  /// algorithms whose `ads_safe` consults anything beyond those endpoint
  /// facts — including ADS-bearing algorithms and constant-false rules
  /// (GraphFlow: a covers-failing update is still classified kUnsafe there).
  [[nodiscard]] virtual bool ads_safe_endpoint_nlf() const noexcept {
    return false;
  }

  /// Root-layer search tasks for an edge update (the first layer of the
  /// search tree: both endpoints mapped). For insertions the graph already
  /// contains the edge; for deletions it still does.
  virtual void seeds(const GraphUpdate& upd, std::vector<SearchTask>& out) const = 0;

  /// The traversal routine: expand `task` to completion, reporting complete
  /// matches to `sink`. When `hook` is non-null the routine may offload
  /// direct subtasks instead of recursing (inner-update parallelism,
  /// Algorithm 2). Must be const and data-race-free: many workers expand
  /// concurrently against the same (read-only between updates) ADS.
  virtual void expand(const SearchTask& task, MatchSink& sink,
                      SplitHook* hook) const = 0;

 protected:
  const QueryGraph* query_ = nullptr;
  const DataGraph* graph_ = nullptr;
};

/// Convenience: all concrete algorithms plus factory helpers live behind
/// names so benches/tests can sweep them.
[[nodiscard]] std::unique_ptr<CsmAlgorithm> make_algorithm(std::string_view name);
[[nodiscard]] std::vector<std::string_view> algorithm_names();

}  // namespace paracosm::csm
