#include "csm/scratch.hpp"

namespace paracosm::csm {

SearchScratch& worker_scratch() {
  thread_local SearchScratch scratch;
  return scratch;
}

}  // namespace paracosm::csm
