// Matching-order construction (the Build_Match_Order step of the general CSM
// framework, paper Algorithm 1).
//
// CSM searches are rooted at the two endpoints of the updated edge, so the
// offline stage precomputes one order per directed query edge: a permutation
// of V(Q) starting with (u1, u2) in which every later vertex has at least one
// earlier neighbor (connectivity keeps candidate sets intersection-based).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/query_graph.hpp"

namespace paracosm::csm {

using graph::QueryGraph;
using graph::VertexId;

enum class OrderPolicy {
  /// Greedy connectivity (GraphFlow/TurboFlux/Symbi style).
  kConnectivity,
  /// RapidFlow-style query reduction: the dense core of the query is
  /// matched first and degree-1 vertices are deferred to the end, where
  /// their candidates are cheap adjacency scans.
  kCoreFirst,
};

/// Greedy connected order rooted at the directed edge (u1, u2): repeatedly
/// append the unplaced vertex with the most already-placed neighbors
/// (tie-break: higher degree, then lower id). kCoreFirst defers leaves.
[[nodiscard]] std::vector<VertexId> edge_rooted_order(
    const QueryGraph& q, VertexId u1, VertexId u2,
    OrderPolicy policy = OrderPolicy::kConnectivity);

/// All 2|E(Q)| edge-rooted orders, indexed by directed query edge.
class OrderTable {
 public:
  OrderTable() = default;
  explicit OrderTable(const QueryGraph& q,
                      OrderPolicy policy = OrderPolicy::kConnectivity);

  [[nodiscard]] const std::vector<VertexId>& order_for(VertexId u1,
                                                       VertexId u2) const;

 private:
  std::unordered_map<std::uint64_t, std::vector<VertexId>> orders_;

  [[nodiscard]] static std::uint64_t key(VertexId u1, VertexId u2) noexcept {
    return (static_cast<std::uint64_t>(u1) << 32) | u2;
  }
};

}  // namespace paracosm::csm
