// Sequential CSM engine: the single-threaded baseline of the paper's
// evaluation (Figure 4 / Table 3) and the building block ParaCOSM's
// executors reuse for graph/ADS maintenance.
//
// The engine enforces the maintenance contract documented in algorithm.hpp
// and accounts CPU time separately for ADS updates and Find_Matches — the
// breakdown Table 3 reports.
#pragma once

#include <cstdint>

#include "csm/algorithm.hpp"
#include "util/cancel.hpp"
#include "util/timer.hpp"

namespace paracosm::csm {

struct UpdateOutcome {
  std::uint64_t positive = 0;  ///< new matches (insertions)
  std::uint64_t negative = 0;  ///< expired matches (deletions)
  std::uint64_t nodes = 0;     ///< search-tree nodes expanded
  bool applied = false;        ///< whether the graph changed
  bool timed_out = false;
  bool cancelled = false;      ///< search aborted by a CancelToken (degraded)

  [[nodiscard]] std::uint64_t delta_matches() const noexcept {
    return positive + negative;
  }
};

class SequentialEngine {
 public:
  /// Binds algorithm, query and graph; runs the offline stage (attach).
  SequentialEngine(CsmAlgorithm& alg, const QueryGraph& q, DataGraph& g);

  /// Process one update end to end (graph + ADS + incremental matching).
  /// A non-default deadline — or a raised CancelToken epoch — aborts the
  /// Find_Matches phase (the graph and ADS stay consistent; reported match
  /// counts are then partial).
  UpdateOutcome process(const GraphUpdate& upd,
                        util::Clock::time_point deadline = {},
                        util::CancelView cancel = {});

  /// Offline Find_Initial_Matches (brute-force enumeration).
  [[nodiscard]] std::uint64_t initial_matches() const;

  /// Cumulative CPU-time breakdown across processed updates (Table 3).
  [[nodiscard]] std::int64_t ads_update_ns() const noexcept { return ads_ns_; }
  [[nodiscard]] std::int64_t find_matches_ns() const noexcept { return search_ns_; }
  void reset_breakdown() noexcept { ads_ns_ = search_ns_ = 0; }

  [[nodiscard]] CsmAlgorithm& algorithm() noexcept { return alg_; }
  [[nodiscard]] DataGraph& graph() noexcept { return g_; }
  [[nodiscard]] const QueryGraph& query() const noexcept { return q_; }

 private:
  UpdateOutcome process_edge(const GraphUpdate& upd, util::Clock::time_point deadline,
                             util::CancelView cancel);

  CsmAlgorithm& alg_;
  const QueryGraph& q_;
  DataGraph& g_;
  std::int64_t ads_ns_ = 0;
  std::int64_t search_ns_ = 0;
};

}  // namespace paracosm::csm
