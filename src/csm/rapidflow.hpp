// RapidFlow (Sun et al., VLDB'22): query-reduction continuous matching —
// paper Table 1, row "RapidFlow" (the one prior CPU system with (partial)
// parallel support).
//
// RapidFlow's core idea is *query reduction*: enumerate the dense core of
// the query first and defer degree-1 vertices to the very end, where their
// candidates are plain adjacency scans — partial matches never fan out over
// leaf choices before the core is fixed. We realize the reduction as the
// kCoreFirst matching-order policy over the same full-DAG dynamic candidate
// space Symbi uses (RapidFlow also maintains an O(|E(G)||E(Q)|) index).
// The original's dual-matching optimization (deduplicating automorphic
// seeds) is not modeled.
#pragma once

#include "csm/backtrack.hpp"
#include "csm/candidate_index.hpp"

namespace paracosm::csm {

class RapidFlow final : public BacktrackBase {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "rapidflow"; }

  void on_edge_inserted(const GraphUpdate& upd) override {
    index_.on_edge_inserted(upd.u, upd.v, upd.label);
  }
  void on_edge_removed(const GraphUpdate& upd) override {
    index_.on_edge_removed(upd.u, upd.v, upd.label);
  }
  void on_vertex_added(graph::VertexId id) override { index_.on_vertex_added(id); }
  void on_vertex_removed(graph::VertexId id) override { index_.on_vertex_removed(id); }

  [[nodiscard]] bool has_ads() const noexcept override { return true; }
  [[nodiscard]] std::uint64_t ads_checksum() const noexcept override {
    return index_.checksum();
  }
  [[nodiscard]] bool ads_safe(const GraphUpdate& upd) const override {
    if (!upd.is_edge_op()) return false;
    return upd.is_insert() ? index_.safe_insert(upd.u, upd.v, upd.label)
                           : index_.safe_remove(upd.u, upd.v, upd.label);
  }

 protected:
  [[nodiscard]] bool candidate_ok(VertexId u, VertexId v) const override {
    return index_.candidate(u, v);
  }
  [[nodiscard]] OrderPolicy order_policy() const noexcept override {
    return OrderPolicy::kCoreFirst;
  }
  void rebuild_index() override {
    index_.build(*query_, *graph_, /*spanning_tree_only=*/false);
  }

 private:
  DagCandidateIndex index_;
};

}  // namespace paracosm::csm
