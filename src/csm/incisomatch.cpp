#include "csm/incisomatch.hpp"

#include "csm/oracle.hpp"

namespace paracosm::csm {

void IncIsoMatch::attach(const QueryGraph& q, const DataGraph& g) {
  query_ = &q;
  graph_ = &g;
  cached_count_ = count_all_matches(q, g);
}

void IncIsoMatch::seeds(const GraphUpdate& upd, std::vector<SearchTask>& out) const {
  if (!upd.is_edge_op()) return;
  pending_ = upd;
  // One opaque task per update: the whole recomputation is a single unit of
  // work (this is precisely why the approach cannot be load-balanced).
  out.push_back(SearchTask{{{0, upd.u}, {0, upd.v}}});
}

void IncIsoMatch::expand(const SearchTask&, MatchSink& sink, SplitHook*) const {
  if (pending_.op == graph::UpdateOp::kInsertEdge) {
    // Engine contract: the edge is already present. Recount and diff.
    MatchSink recount;
    recount.deadline = sink.deadline;
    recount.cancel = sink.cancel;
    enumerate_all_matches(*query_, *graph_, recount);
    sink.nodes += recount.nodes;
    if (recount.stopped()) {
      if (recount.timed_out()) sink.mark_timed_out();
      if (recount.cancelled()) sink.mark_cancelled();
      return;
    }
    sink.matches += recount.matches - cached_count_;
    cached_count_ = recount.matches;
  } else {
    // Deletion: matches are reported before removal, so recount on a copy
    // with the edge absent (full recomputation, faithfully expensive).
    graph::DataGraph without = *graph_;
    without.remove_edge(pending_.u, pending_.v);
    MatchSink recount;
    recount.deadline = sink.deadline;
    recount.cancel = sink.cancel;
    enumerate_all_matches(*query_, without, recount);
    sink.nodes += recount.nodes;
    if (recount.stopped()) {
      if (recount.timed_out()) sink.mark_timed_out();
      if (recount.cancelled()) sink.mark_cancelled();
      return;
    }
    sink.matches += cached_count_ - recount.matches;
    cached_count_ = recount.matches;
  }
}

}  // namespace paracosm::csm
