// Layered mutual-support index: the CaLiG-style kernel/light candidate
// classification.
//
// CaLiG classifies candidate vertices by how well their neighborhoods support
// the *whole* query neighborhood (not a tree or DAG like DCG/DCS). We realize
// this with a two-layer refinement, a standard over-approximation of the
// mutual-support greatest fixpoint that stays exactly maintainable:
//
//   stat(u,v)   = label(u)==label(v)                             ("light")
//   L1(u,v)     = stat(u,v) && for every query neighbor u' of u some data
//                 neighbor w of v has stat(u',w)
//   L2(u,v)     = stat(u,v) && for every u' some w has L1(u',w) ("kernel")
//
// Search seeds only from kernel (L2) vertices. The layering is acyclic
// (stat -> L1 -> L2), so insertions flip flags only on and deletions only
// off, and flips propagate at most two layers — O(affected) maintenance.
//
// Faithful to the original system, the index is EDGE-LABEL-BLIND: CaLiG has
// no edge-label matching, and the paper strips edge labels from datasets
// when evaluating it.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/data_graph.hpp"
#include "graph/query_graph.hpp"

namespace paracosm::csm {

using graph::DataGraph;
using graph::Label;
using graph::QueryGraph;
using graph::VertexId;

class SupportIndex {
 public:
  void build(const QueryGraph& q, const DataGraph& g);

  /// Maintenance hooks; the data graph must already reflect the change.
  void on_edge_inserted(VertexId v1, VertexId v2);
  void on_edge_removed(VertexId v1, VertexId v2);
  void on_vertex_added(VertexId id);
  void on_vertex_removed(VertexId id);

  /// Kernel membership — the candidate filter used during search.
  [[nodiscard]] bool kernel(VertexId u, VertexId v) const noexcept {
    return l2_[u][v] != 0;
  }
  /// Light membership (passes static filters and one support round).
  [[nodiscard]] bool light(VertexId u, VertexId v) const noexcept {
    return l1_[u][v] != 0;
  }

  /// Classifier stage 3, evaluated BEFORE the update is applied.
  [[nodiscard]] bool safe_insert(VertexId v1, VertexId v2) const;
  [[nodiscard]] bool safe_remove(VertexId v1, VertexId v2) const;

  [[nodiscard]] std::uint64_t num_kernel_pairs() const noexcept;
  [[nodiscard]] bool states_equal(const SupportIndex& other) const noexcept;

  /// Rolling FNV-1a/XOR checksum over the (L1, L2) flag state, maintained in
  /// O(1) per flip (util/checksum.hpp) — the PARACOSM_VERIFY safe-update
  /// invariant costs O(1) per batch instead of a full state scan.
  [[nodiscard]] std::uint64_t checksum() const noexcept { return checksum_; }
  /// O(|V(Q)|·cap) reference rescan of `checksum()` for tests.
  [[nodiscard]] std::uint64_t checksum_recompute() const noexcept;

 private:
  const QueryGraph* q_ = nullptr;
  const DataGraph* g_ = nullptr;
  std::uint32_t cap_ = 0;

  // Flags per (query vertex, data vertex).
  std::vector<std::vector<std::uint8_t>> l1_, l2_;
  std::uint64_t checksum_ = 0;

  /// Set a flag to `on`, folding the flip into `checksum_`. Returns true iff
  /// the value changed.
  bool set_l1(VertexId u, VertexId v, bool on) noexcept;
  bool set_l2(VertexId u, VertexId v, bool on) noexcept;
  // cnt1_[u][v * deg_Q(u) + i]: |{w in N(v) : stat(nbr_i(u), w)}|; cnt2_
  // likewise over L1. nbr_i(u) is q_->neighbors(u)[i].v.
  std::vector<std::vector<std::uint32_t>> cnt1_, cnt2_;

  [[nodiscard]] bool stat(VertexId u, VertexId v) const noexcept;
  [[nodiscard]] bool eval_l1(VertexId u, VertexId v) const noexcept;
  [[nodiscard]] bool eval_l2(VertexId u, VertexId v) const noexcept;
  [[nodiscard]] bool safe_edge(VertexId v1, VertexId v2, std::int32_t sign) const;

  void direct_deltas(VertexId a, VertexId b, std::int32_t sign);
  /// Re-evaluate endpoint flags and propagate L1 flips into cnt2/L2.
  void refresh(VertexId v1, VertexId v2);
};

}  // namespace paracosm::csm
