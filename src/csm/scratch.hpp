// Per-worker pooled search scratch.
//
// Every expand() call used to allocate its partial-match state from scratch;
// under inner-update parallelism that is one heap round-trip per offloaded
// task. SearchScratch instead lives in a thread_local pool (worker_scratch())
// and is re-prepared per task: vectors keep their capacity across tasks, so
// steady-state expansion performs zero allocations.
//
// The `used` check (is data vertex w already matched?) is an epoch-stamped
// array over data-vertex ids instead of the old O(depth) linear scan of the
// assignment list: prepare() bumps the epoch, mark_used stores it, is_used
// compares — so "reset" between tasks is a single increment, not a clear.
// On epoch wrap (every 2^32 tasks) the stamp array is zeroed once.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "csm/match.hpp"
#include "graph/types.hpp"
#include "util/numa_alloc.hpp"

namespace paracosm::csm {

class SearchScratch {
 public:
  /// Reset for a new task over a query with `num_query_vertices` vertices
  /// and a data graph with `data_capacity` vertex slots. O(query size)
  /// amortized; grows (never shrinks) the pooled buffers.
  void prepare(std::uint32_t num_query_vertices, std::uint32_t data_capacity) {
    map.assign(num_query_vertices, graph::kInvalidVertex);
    assigned.clear();
    if (stamp_.size() < data_capacity) {
      stamp_.resize(data_capacity, 0);
      // Worker-private block: hugepage advice only; first-touch by this
      // (pinned) thread already placed it locally (DESIGN.md §10).
      util::numa::place_local(stamp_.data(), stamp_.size() * sizeof(std::uint32_t));
    }
    if (++epoch_ == 0) {  // wrap: invalidate stale stamps from 2^32 tasks ago
      std::fill(stamp_.begin(), stamp_.end(), 0);
      epoch_ = 1;
    }
  }

  [[nodiscard]] bool is_used(graph::VertexId v) const noexcept {
    return stamp_[v] == epoch_;
  }
  void mark_used(graph::VertexId v) noexcept { stamp_[v] = epoch_; }
  /// Partial matches are injective, so un-marking on backtrack can simply
  /// zero the stamp (the vertex was marked at most once on this path).
  void clear_used(graph::VertexId v) noexcept { stamp_[v] = 0; }

  std::vector<graph::VertexId> map;  ///< query vertex -> data vertex
  std::vector<Assignment> assigned;  ///< assignment order (partial match)

 private:
  std::vector<std::uint32_t> stamp_;  ///< data vertex -> last epoch marked
  std::uint32_t epoch_ = 0;
};

/// The calling thread's pooled scratch. Each executor worker (and the
/// sequential engine's thread) gets its own instance, reused across tasks.
[[nodiscard]] SearchScratch& worker_scratch();

}  // namespace paracosm::csm
