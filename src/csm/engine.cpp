#include "csm/engine.hpp"

#include "csm/oracle.hpp"

namespace paracosm::csm {

SequentialEngine::SequentialEngine(CsmAlgorithm& alg, const QueryGraph& q, DataGraph& g)
    : alg_(alg), q_(q), g_(g) {
  alg_.attach(q_, g_);
}

UpdateOutcome SequentialEngine::process(const GraphUpdate& upd,
                                        util::Clock::time_point deadline,
                                        util::CancelView cancel) {
  switch (upd.op) {
    case graph::UpdateOp::kInsertEdge:
    case graph::UpdateOp::kRemoveEdge:
      return process_edge(upd, deadline, cancel);
    case graph::UpdateOp::kInsertVertex: {
      UpdateOutcome out;
      const bool existed = g_.has_vertex(upd.u);
      g_.add_vertex_with_id(upd.u, upd.label);
      if (!existed) alg_.on_vertex_added(upd.u);
      out.applied = true;
      return out;
    }
    case graph::UpdateOp::kRemoveVertex: {
      UpdateOutcome out;
      if (!g_.has_vertex(upd.u)) return out;
      // Expire every incident edge through the regular pipeline so ΔM⁻ and
      // the ADS stay exact, then drop the now-isolated vertex.
      std::vector<GraphUpdate> edge_removals;
      for (const auto& nb : g_.neighbors(upd.u))
        edge_removals.push_back(GraphUpdate::remove_edge(upd.u, nb.v, nb.elabel));
      for (const GraphUpdate& rm : edge_removals) {
        const UpdateOutcome sub = process_edge(rm, deadline, cancel);
        out.negative += sub.negative;
        out.nodes += sub.nodes;
        out.timed_out = out.timed_out || sub.timed_out;
        out.cancelled = out.cancelled || sub.cancelled;
      }
      g_.remove_vertex(upd.u);
      alg_.on_vertex_removed(upd.u);
      out.applied = true;
      return out;
    }
  }
  return {};
}

UpdateOutcome SequentialEngine::process_edge(const GraphUpdate& upd,
                                             util::Clock::time_point deadline,
                                             util::CancelView cancel) {
  UpdateOutcome out;
  const bool insert = upd.op == graph::UpdateOp::kInsertEdge;

  if (insert) {
    util::ThreadCpuTimer ads_timer;
    if (!g_.add_edge(upd.u, upd.v, upd.label)) return out;  // duplicate / invalid
    alg_.on_edge_inserted(upd);
    ads_ns_ += ads_timer.elapsed_ns();
    out.applied = true;

    util::ThreadCpuTimer fm_timer;
    MatchSink sink;
    sink.deadline = deadline;
    sink.cancel = cancel;
    std::vector<SearchTask> roots;
    alg_.seeds(upd, roots);
    for (const SearchTask& task : roots) {
      alg_.expand(task, sink, nullptr);
      if (sink.stopped()) break;
    }
    search_ns_ += fm_timer.elapsed_ns();
    out.positive = sink.matches;
    out.nodes = sink.nodes;
    out.timed_out = sink.timed_out();
    out.cancelled = sink.cancelled();
  } else {
    // Deletion requests may omit (or mis-state) the edge label — the
    // benchmark stream format is "-e u v [elabel]". Resolve the actual label
    // up front: seeds/ADS hooks keyed on it would otherwise enumerate
    // phantom matches or miss real ones.
    const auto actual_label = g_.edge_label(upd.u, upd.v);
    if (!actual_label) return out;
    GraphUpdate del = upd;
    del.label = *actual_label;

    // Deletions report matches BEFORE the edge disappears (paper §2.2).
    util::ThreadCpuTimer fm_timer;
    MatchSink sink;
    sink.deadline = deadline;
    sink.cancel = cancel;
    std::vector<SearchTask> roots;
    alg_.seeds(del, roots);
    for (const SearchTask& task : roots) {
      alg_.expand(task, sink, nullptr);
      if (sink.stopped()) break;
    }
    search_ns_ += fm_timer.elapsed_ns();
    out.negative = sink.matches;
    out.nodes = sink.nodes;
    out.timed_out = sink.timed_out();
    out.cancelled = sink.cancelled();

    util::ThreadCpuTimer ads_timer;
    g_.remove_edge(upd.u, upd.v);
    alg_.on_edge_removed(del);
    out.applied = true;
    ads_ns_ += ads_timer.elapsed_ns();
  }
  return out;
}

std::uint64_t SequentialEngine::initial_matches() const {
  return count_all_matches(q_, g_, alg_.uses_edge_labels());
}

}  // namespace paracosm::csm
