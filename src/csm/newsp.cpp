#include "csm/newsp.hpp"

namespace paracosm::csm {

bool NewSP::nlf_dominates(VertexId u, VertexId v, bool count_extra,
                          Label extra_label) const {
  // One-instruction signature containment first: a certain reject for most
  // non-matching vertices (nlf_signature.hpp). nlf_sig_add mirrors the
  // pending-edge adjustment exactly because lanes saturate monotonically.
  graph::NlfSig have_sig = graph_->nlf_signature(v);
  if (count_extra) have_sig = graph::nlf_sig_add(have_sig, extra_label);
  if (!graph::nlf_sig_covers(have_sig, query_->nlf_signature(u))) return false;
  for (const auto& [l, need] : query_->nlf_items(u)) {
    std::uint32_t have = graph_->nlf(v, l);
    if (count_extra && l == extra_label) ++have;
    if (have < need) return false;
  }
  return true;
}

bool NewSP::ads_safe(const GraphUpdate& upd) const {
  if (!upd.is_edge_op()) return false;
  const DataGraph& g = *graph_;
  if (!g.has_vertex(upd.u) || !g.has_vertex(upd.v)) return false;
  const bool pending_insert = upd.is_insert();
  const auto pairs =
      query_->matching_edges(g.label(upd.u), g.label(upd.v), upd.label, false);
  for (const auto& [u1, u2] : pairs) {
    // Degrees as they will be once the edge exists (insert: current + 1;
    // remove: the edge is still present, so current values).
    const std::uint32_t d1 = g.degree(upd.u) + (pending_insert ? 1 : 0);
    const std::uint32_t d2 = g.degree(upd.v) + (pending_insert ? 1 : 0);
    if (d1 < query_->degree(u1) || d2 < query_->degree(u2)) continue;
    if (nlf_dominates(u1, upd.u, pending_insert, g.label(upd.v)) &&
        nlf_dominates(u2, upd.v, pending_insert, g.label(upd.u)))
      return false;  // a match through this edge cannot be ruled out
  }
  return true;
}

void NewSP::seeds(const GraphUpdate& upd, std::vector<SearchTask>& out) const {
  if (!upd.is_edge_op()) return;
  const DataGraph& g = *graph_;
  if (!g.has_vertex(upd.u) || !g.has_vertex(upd.v)) return;
  const auto pairs =
      query_->matching_edges(g.label(upd.u), g.label(upd.v), upd.label, false);
  for (const auto& [u1, u2] : pairs) {
    if (g.degree(upd.u) < query_->degree(u1)) continue;
    if (g.degree(upd.v) < query_->degree(u2)) continue;
    if (!nlf_dominates(u1, upd.u, false, 0)) continue;
    if (!nlf_dominates(u2, upd.v, false, 0)) continue;
    out.push_back(SearchTask{{{u1, upd.u}, {u2, upd.v}}});
  }
}

void NewSP::expand(const SearchTask& task, MatchSink& sink, SplitHook* hook) const {
  SearchScratch& s = worker_scratch();
  s.prepare(query_->num_vertices(), graph_->vertex_capacity());
  for (const Assignment& a : task.assigned) {
    s.map[a.qv] = a.dv;
    s.assigned.push_back(a);
    s.mark_used(a.dv);
  }
  expand_step(s, sink, hook);
}

void NewSP::expand_step(SearchScratch& s, MatchSink& sink, SplitHook* hook) const {
  if (!sink.tick()) return;
  const QueryGraph& q = *query_;
  const DataGraph& g = *graph_;
  if (s.assigned.size() == q.num_vertices()) {
    sink.emit(s.assigned);
    return;
  }

  // CPT: estimate |C(u)| for every frontier vertex (unmatched with a matched
  // neighbor); the estimate is the smallest adjacency list among the images
  // of its matched neighbors. Only the cheapest vertex is expanded (EXP).
  VertexId next = graph::kInvalidVertex;
  VertexId next_pivot = graph::kInvalidVertex;
  std::uint32_t next_cost = 0;
  for (VertexId u = 0; u < q.num_vertices(); ++u) {
    if (s.map[u] != graph::kInvalidVertex) continue;
    VertexId pivot = graph::kInvalidVertex;
    std::uint32_t cost = 0;
    for (const auto& nb : q.neighbors(u)) {
      const VertexId dv = s.map[nb.v];
      if (dv == graph::kInvalidVertex) continue;
      const std::uint32_t d = g.degree(dv);
      if (pivot == graph::kInvalidVertex || d < cost) {
        pivot = nb.v;
        cost = d;
      }
    }
    if (pivot == graph::kInvalidVertex) continue;
    if (next == graph::kInvalidVertex || cost < next_cost) {
      next = u;
      next_pivot = pivot;
      next_cost = cost;
    }
  }
  if (next == graph::kInvalidVertex) return;  // disconnected query

  const Label pivot_elabel = *q.edge_label(next, next_pivot);
  const bool offload = hook != nullptr && hook->want_offload(
                                              static_cast<std::uint32_t>(s.assigned.size()));
  for (const auto& nb : g.neighbors_with_label(s.map[next_pivot], q.label(next))) {
    if (!sink.tick()) return;
    const VertexId w = nb.v;
    if (nb.elabel != pivot_elabel) continue;
    if (g.degree(w) < q.degree(next)) continue;
    if (s.is_used(w)) continue;
    bool consistent = true;
    for (const auto& qnb : q.neighbors(next)) {
      if (qnb.v == next_pivot) continue;
      const VertexId dv = s.map[qnb.v];
      if (dv == graph::kInvalidVertex) continue;
      const auto el = g.edge_label(w, dv, q.label(qnb.v));
      if (!el || *el != qnb.elabel) {
        consistent = false;
        break;
      }
    }
    if (!consistent) continue;

    if (offload) {
      SearchTask child{s.assigned};
      child.assigned.push_back({next, w});
      hook->offload(std::move(child));
    } else {
      s.assigned.push_back({next, w});
      s.map[next] = w;
      s.mark_used(w);
      expand_step(s, sink, hook);
      s.clear_used(w);
      s.map[next] = graph::kInvalidVertex;
      s.assigned.pop_back();
      if (sink.stopped()) return;
    }
  }
}

}  // namespace paracosm::csm
