#include "csm/iedyn.hpp"

#include <stdexcept>

namespace paracosm::csm {

void IEDyn::attach(const QueryGraph& q, const DataGraph& g) {
  if (q.num_vertices() == 0 || q.num_edges() != q.num_vertices() - 1 ||
      !q.connected())
    throw std::invalid_argument(
        "IEDyn supports acyclic (tree) queries only; got |V|=" +
        std::to_string(q.num_vertices()) + ", |E|=" + std::to_string(q.num_edges()));
  BacktrackBase::attach(q, g);
}

}  // namespace paracosm::csm
