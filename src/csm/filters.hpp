// Shared feasibility filters used by the classifier's stage-3 match checks.
#pragma once

#include "graph/data_graph.hpp"
#include "graph/nlf_signature.hpp"
#include "graph/query_graph.hpp"

namespace paracosm::csm {

/// Necessary conditions for data vertex `dv` to play query vertex `qu` in a
/// match that uses the pending edge (dv, other): degree and neighbor-label-
/// frequency containment, evaluated as they will hold once the edge exists
/// (`pending_insert` ? current + the new neighbor : current). Sound: every
/// match satisfies both, so returning false proves no match can use this endpoint.
[[nodiscard]] inline bool match_endpoint_ok(const graph::QueryGraph& q,
                                            const graph::DataGraph& g,
                                            graph::VertexId qu, graph::VertexId dv,
                                            graph::VertexId other,
                                            bool pending_insert) {
  const std::uint32_t degree = g.degree(dv) + (pending_insert ? 1 : 0);
  if (degree < q.degree(qu)) return false;
  // Packed-signature containment pre-reject (certain reject, no false
  // negatives — nlf_signature.hpp), then the exact per-label check over the
  // query vertex's distinct neighbor labels.
  graph::NlfSig have_sig = g.nlf_signature(dv);
  if (pending_insert) have_sig = graph::nlf_sig_add(have_sig, g.label(other));
  if (!graph::nlf_sig_covers(have_sig, q.nlf_signature(qu))) return false;
  for (const auto& [l, need] : q.nlf_items(qu)) {
    std::uint32_t have = g.nlf(dv, l);
    if (pending_insert && g.label(other) == l) ++have;
    if (have < need) return false;
  }
  return true;
}

}  // namespace paracosm::csm
