#include "csm/candidate_index.hpp"

#include <algorithm>
#include <queue>

#include "csm/filters.hpp"
#include "util/checksum.hpp"
#include "util/numa_alloc.hpp"
#include "util/wide_ops.hpp"

namespace paracosm::csm {

QueryDag QueryDag::build(const QueryGraph& q, bool spanning_tree_only) {
  const std::uint32_t n = q.num_vertices();
  QueryDag dag;
  dag.parents.resize(n);
  dag.children.resize(n);
  if (n == 0) return dag;

  // Root: max degree (the classic DCS/DCG heuristic), tie-break min id.
  VertexId root = 0;
  for (VertexId u = 1; u < n; ++u)
    if (q.degree(u) > q.degree(root)) root = u;
  dag.root = root;

  // BFS levels.
  std::vector<std::uint32_t> level(n, ~0u);
  std::vector<VertexId> bfs_parent(n, graph::kInvalidVertex);
  std::queue<VertexId> bfs;
  bfs.push(root);
  level[root] = 0;
  std::vector<VertexId> order;
  while (!bfs.empty()) {
    const VertexId u = bfs.front();
    bfs.pop();
    order.push_back(u);
    for (const auto& nb : q.neighbors(u)) {
      if (level[nb.v] == ~0u) {
        level[nb.v] = level[u] + 1;
        bfs_parent[nb.v] = u;
        bfs.push(nb.v);
      }
    }
  }

  // Orient: lower (level, id) -> higher. For the spanning tree keep only the
  // BFS tree arc of each non-root vertex.
  const auto before = [&](VertexId a, VertexId b) {
    return level[a] < level[b] || (level[a] == level[b] && a < b);
  };
  for (const auto& e : q.edges()) {
    const VertexId lo = before(e.u, e.v) ? e.u : e.v;
    const VertexId hi = lo == e.u ? e.v : e.u;
    if (spanning_tree_only && bfs_parent[hi] != lo) continue;
    const auto parent_slot = static_cast<std::uint32_t>(dag.parents[hi].size());
    const auto child_slot = static_cast<std::uint32_t>(dag.children[lo].size());
    dag.children[lo].push_back({hi, e.elabel, parent_slot});
    dag.parents[hi].push_back({lo, e.elabel, child_slot});
  }

  dag.topo = order;
  std::stable_sort(dag.topo.begin(), dag.topo.end(),
                   [&](VertexId a, VertexId b) { return before(a, b); });
  return dag;
}

namespace {
// flag_fingerprint kinds for the two flag families of this index.
constexpr std::uint32_t kKindAnc = 0;
constexpr std::uint32_t kKindDesc = 1;
}  // namespace

bool DagCandidateIndex::set_anc(VertexId u, VertexId v, bool on) noexcept {
  if ((anc_[u][v] != 0) == on) return false;
  anc_[u][v] = on ? 1 : 0;
  checksum_ ^= util::flag_fingerprint(kKindAnc, u, v);
  return true;
}

bool DagCandidateIndex::set_desc(VertexId u, VertexId v, bool on) noexcept {
  if ((desc_[u][v] != 0) == on) return false;
  desc_[u][v] = on ? 1 : 0;
  checksum_ ^= util::flag_fingerprint(kKindDesc, u, v);
  return true;
}

std::uint64_t DagCandidateIndex::checksum_recompute() const noexcept {
  std::uint64_t sum = 0;
  for (VertexId u = 0; u < q_->num_vertices(); ++u) {
    for (VertexId v = 0; v < cap_; ++v) {
      if (anc_[u][v]) sum ^= util::flag_fingerprint(kKindAnc, u, v);
      if (desc_[u][v]) sum ^= util::flag_fingerprint(kKindDesc, u, v);
    }
  }
  return sum;
}

bool DagCandidateIndex::stat(VertexId u, VertexId v) const noexcept {
  // Label-only, like the original DCG/DCS states: degree is enforced at
  // enumeration time instead. Keeping degree out of the index is what makes
  // the classifier's label stage sound — a label-mismatched edge then
  // provably cannot flip any index state (see DESIGN.md §4).
  return g_->has_vertex(v) && g_->label(v) == q_->label(u);
}

bool DagCandidateIndex::eval_anc(VertexId u, VertexId v) const noexcept {
  if (!stat(u, v)) return false;
  const std::size_t p = dag_.parents[u].size();
  const std::uint32_t* cnt = cnt_anc_[u].data() + static_cast<std::size_t>(v) * p;
  for (std::size_t i = 0; i < p; ++i)
    if (cnt[i] == 0) return false;
  return true;
}

bool DagCandidateIndex::eval_desc(VertexId u, VertexId v) const noexcept {
  if (!stat(u, v)) return false;
  const std::size_t c = dag_.children[u].size();
  const std::uint32_t* cnt = cnt_desc_[u].data() + static_cast<std::size_t>(v) * c;
  for (std::size_t i = 0; i < c; ++i)
    if (cnt[i] == 0) return false;
  return true;
}

bool DagCandidateIndex::would_anc(VertexId x, VertexId at, VertexId other,
                                  Label elabel, std::int32_t sign) const noexcept {
  // anc(x, at) as it will evaluate once edge (other, at) is applied with the
  // given sign. One edge can bump SEVERAL parent slots of the same entry
  // (any label-compatible parent p with anc(p, other)), so the whole counter
  // vector is evaluated at once.
  if (!stat(x, at)) return false;
  const auto& parents = dag_.parents[x];
  const std::uint32_t* cnt =
      cnt_anc_[x].data() + static_cast<std::size_t>(at) * parents.size();
  for (std::size_t i = 0; i < parents.size(); ++i) {
    std::int64_t value = cnt[i];
    if ((!use_elabels_ || parents[i].elabel == elabel) && anc_[parents[i].other][other])
      value += sign;
    if (value <= 0) return false;
  }
  return true;
}

bool DagCandidateIndex::would_desc(VertexId x, VertexId at, VertexId other,
                                   Label elabel, std::int32_t sign) const noexcept {
  if (!stat(x, at)) return false;
  const auto& kids = dag_.children[x];
  const std::uint32_t* cnt =
      cnt_desc_[x].data() + static_cast<std::size_t>(at) * kids.size();
  for (std::size_t i = 0; i < kids.size(); ++i) {
    std::int64_t value = cnt[i];
    if ((!use_elabels_ || kids[i].elabel == elabel) && desc_[kids[i].other][other])
      value += sign;
    if (value <= 0) return false;
  }
  return true;
}

bool DagCandidateIndex::safe_edge(VertexId v1, VertexId v2, Label elabel,
                                  std::int32_t sign) const {
  // Endpoint flags must not flip. Direct counter deltas only touch entries
  // at v1/v2; without endpoint flips nothing propagates, so checking the
  // would-be endpoint evaluations covers the whole index.
  for (VertexId x = 0; x < q_->num_vertices(); ++x) {
    for (const auto& [at, other] : {std::pair{v1, v2}, std::pair{v2, v1}}) {
      if (would_anc(x, at, other, elabel, sign) != (anc_[x][at] != 0)) return false;
      if (would_desc(x, at, other, elabel, sign) != (desc_[x][at] != 0)) return false;
    }
  }
  // No match may pass through the edge: every label-compatible QUERY edge
  // (not just DAG arcs — the spanning-tree orientation omits non-tree edges)
  // must miss a feasible endpoint. Feasibility = index candidacy (flags are
  // flip-free, so pre- and post-update candidacy coincide) refined by the
  // degree and NLF filters the enumeration applies anyway — necessary
  // conditions for any match, evaluated at post-update degrees.
  const bool insert = sign > 0;
  for (const auto& e : q_->edges()) {
    if (use_elabels_ && e.elabel != elabel) continue;
    const auto feasible = [&](VertexId qu, VertexId dv, VertexId other) {
      return candidate(qu, dv) && match_endpoint_ok(*q_, *g_, qu, dv, other, insert);
    };
    if (feasible(e.u, v1, v2) && feasible(e.v, v2, v1)) return false;
    if (feasible(e.u, v2, v1) && feasible(e.v, v1, v2)) return false;
  }
  return true;
}

void DagCandidateIndex::place_columns(VertexId u) noexcept {
  util::numa::place_shared(anc_[u].data(), anc_[u].size());
  util::numa::place_shared(desc_[u].data(), desc_[u].size());
  util::numa::place_shared(cnt_anc_[u].data(),
                           cnt_anc_[u].size() * sizeof(std::uint32_t));
  util::numa::place_shared(cnt_desc_[u].data(),
                           cnt_desc_[u].size() * sizeof(std::uint32_t));
}

void DagCandidateIndex::build(const QueryGraph& q, const DataGraph& g,
                              bool spanning_tree_only, bool use_edge_labels) {
  q_ = &q;
  g_ = &g;
  use_elabels_ = use_edge_labels;
  dag_ = QueryDag::build(q, spanning_tree_only);
  cap_ = g.vertex_capacity();
  const std::uint32_t n = q.num_vertices();

  anc_.assign(n, {});
  desc_.assign(n, {});
  cnt_anc_.assign(n, {});
  cnt_desc_.assign(n, {});
  for (VertexId u = 0; u < n; ++u) {
    // Columns are physically padded to a kByteBlock multiple with zero tails
    // (the wide-kernel layout contract, wide_ops.hpp); logical extent is
    // [0, cap_). The tails stay zero: flag writers only touch live ids.
    anc_[u].assign(util::wide::padded_bytes(cap_), 0);
    desc_[u].assign(util::wide::padded_bytes(cap_), 0);
    cnt_anc_[u].assign(static_cast<std::size_t>(cap_) * dag_.parents[u].size(), 0);
    cnt_desc_[u].assign(static_cast<std::size_t>(cap_) * dag_.children[u].size(), 0);
    place_columns(u);
  }

  // anc: ascending topological order. Once u's column is final, push its
  // support into the children's counters.
  for (const VertexId u : dag_.topo) {
    for (VertexId v = 0; v < cap_; ++v) anc_[u][v] = eval_anc(u, v) ? 1 : 0;
    for (const auto& arc : dag_.children[u]) {
      const VertexId c = arc.other;
      const std::size_t p = dag_.parents[c].size();
      for (VertexId v = 0; v < cap_; ++v) {
        if (!anc_[u][v]) continue;
        // Counters are only ever read for entries passing stat(c, ·), i.e.
        // data vertices labeled q.label(c) — count only that label segment.
        // Maintenance (direct_deltas/drain) applies the same restriction.
        for (const auto& nb : g.neighbors_with_label(v, q.label(c))) {
          if (use_elabels_ && nb.elabel != arc.elabel) continue;
          ++cnt_anc_[c][static_cast<std::size_t>(nb.v) * p + arc.slot];
        }
      }
    }
  }
  // desc: descending topological order, pushing into parents' counters.
  for (auto it = dag_.topo.rbegin(); it != dag_.topo.rend(); ++it) {
    const VertexId u = *it;
    for (VertexId v = 0; v < cap_; ++v) desc_[u][v] = eval_desc(u, v) ? 1 : 0;
    for (const auto& arc : dag_.parents[u]) {
      const VertexId p = arc.other;
      const std::size_t c = dag_.children[p].size();
      for (VertexId v = 0; v < cap_; ++v) {
        if (!desc_[u][v]) continue;
        for (const auto& nb : g.neighbors_with_label(v, q.label(p))) {
          if (use_elabels_ && nb.elabel != arc.elabel) continue;
          ++cnt_desc_[p][static_cast<std::size_t>(nb.v) * c + arc.slot];
        }
      }
    }
  }
  checksum_ = checksum_recompute();
}

void DagCandidateIndex::on_vertex_added(VertexId id) {
  if (id >= cap_) {
    cap_ = id + 1;
    for (VertexId u = 0; u < q_->num_vertices(); ++u) {
      anc_[u].resize(util::wide::padded_bytes(cap_), 0);
      desc_[u].resize(util::wide::padded_bytes(cap_), 0);
      cnt_anc_[u].resize(static_cast<std::size_t>(cap_) * dag_.parents[u].size(), 0);
      cnt_desc_[u].resize(static_cast<std::size_t>(cap_) * dag_.children[u].size(), 0);
      place_columns(u);
    }
  }
  // A fresh vertex is isolated, so flag initialization cannot propagate.
  for (VertexId u = 0; u < q_->num_vertices(); ++u) {
    set_anc(u, id, eval_anc(u, id));
    set_desc(u, id, eval_desc(u, id));
  }
}

void DagCandidateIndex::on_vertex_removed(VertexId id) {
  // The engine removes incident edges first, so counters referencing `id`
  // are already zero; only the vertex's own flags need clearing.
  for (VertexId u = 0; u < q_->num_vertices(); ++u) {
    set_anc(u, id, false);
    set_desc(u, id, false);
  }
}

void DagCandidateIndex::direct_deltas(VertexId a, VertexId b, Label elabel,
                                      std::int32_t sign) {
  // Contribution of data edge (a,b): for each query arc (u -> c) compatible
  // with the edge label, a supports b upward (anc) and b supports a downward
  // (desc), weighted by the *current* flag values. Counters are maintained
  // only for label-matching owners, mirroring the segment-restricted build.
  for (VertexId u = 0; u < q_->num_vertices(); ++u) {
    const auto& kids = dag_.children[u];
    const bool a_owns_u = g_->label(a) == q_->label(u);
    for (std::size_t ci = 0; ci < kids.size(); ++ci) {
      const auto& arc = kids[ci];
      if (use_elabels_ && arc.elabel != elabel) continue;
      const VertexId c = arc.other;
      if (anc_[u][a] && g_->label(b) == q_->label(c)) {
        auto& cnt =
            cnt_anc_[c][static_cast<std::size_t>(b) * dag_.parents[c].size() + arc.slot];
        cnt = static_cast<std::uint32_t>(static_cast<std::int64_t>(cnt) + sign);
      }
      if (desc_[c][b] && a_owns_u) {
        auto& cnt =
            cnt_desc_[u][static_cast<std::size_t>(a) * kids.size() + ci];
        cnt = static_cast<std::uint32_t>(static_cast<std::int64_t>(cnt) + sign);
      }
    }
  }
}

void DagCandidateIndex::reeval_pairs_of(VertexId v, std::vector<Flip>& queue) {
  for (VertexId u = 0; u < q_->num_vertices(); ++u) {
    const bool na = eval_anc(u, v);
    if (set_anc(u, v, na)) queue.push_back({Kind::kAnc, u, v, na});
    const bool nd = eval_desc(u, v);
    if (set_desc(u, v, nd)) queue.push_back({Kind::kDesc, u, v, nd});
  }
}

void DagCandidateIndex::drain(std::vector<Flip>& queue) {
  while (!queue.empty()) {
    const Flip f = queue.back();
    queue.pop_back();
    if (f.kind == Kind::kAnc) {
      // anc(u,v) flipped: adjust the anc counters of every DAG child across
      // every compatible data edge incident to v.
      for (const auto& arc : dag_.children[f.u]) {
        const VertexId c = arc.other;
        const std::size_t p = dag_.parents[c].size();
        for (const auto& nb : g_->neighbors_with_label(f.v, q_->label(c))) {
          if (use_elabels_ && nb.elabel != arc.elabel) continue;
          auto& cnt = cnt_anc_[c][static_cast<std::size_t>(nb.v) * p + arc.slot];
          cnt += f.on ? 1u : ~0u;  // unsigned -1
          const bool nv = eval_anc(c, nb.v);
          if (set_anc(c, nb.v, nv)) queue.push_back({Kind::kAnc, c, nb.v, nv});
        }
      }
    } else {
      for (const auto& arc : dag_.parents[f.u]) {
        const VertexId p = arc.other;
        const std::size_t c = dag_.children[p].size();
        for (const auto& nb : g_->neighbors_with_label(f.v, q_->label(p))) {
          if (use_elabels_ && nb.elabel != arc.elabel) continue;
          auto& cnt = cnt_desc_[p][static_cast<std::size_t>(nb.v) * c + arc.slot];
          cnt += f.on ? 1u : ~0u;
          const bool nv = eval_desc(p, nb.v);
          if (set_desc(p, nb.v, nv)) queue.push_back({Kind::kDesc, p, nb.v, nv});
        }
      }
    }
  }
}

void DagCandidateIndex::on_edge_inserted(VertexId v1, VertexId v2, Label elabel) {
  on_vertex_added(std::max(v1, v2));
  direct_deltas(v1, v2, elabel, +1);
  direct_deltas(v2, v1, elabel, +1);
  std::vector<Flip> queue;
  reeval_pairs_of(v1, queue);
  reeval_pairs_of(v2, queue);
  drain(queue);
}

void DagCandidateIndex::on_edge_removed(VertexId v1, VertexId v2, Label elabel) {
  direct_deltas(v1, v2, elabel, -1);
  direct_deltas(v2, v1, elabel, -1);
  std::vector<Flip> queue;
  reeval_pairs_of(v1, queue);
  reeval_pairs_of(v2, queue);
  drain(queue);
}

bool DagCandidateIndex::safe_insert(VertexId v1, VertexId v2, Label elabel) const {
  return safe_edge(v1, v2, elabel, +1);
}

bool DagCandidateIndex::safe_remove(VertexId v1, VertexId v2, Label elabel) const {
  return safe_edge(v1, v2, elabel, -1);
}

std::uint64_t DagCandidateIndex::num_candidate_pairs() const noexcept {
  // AND + popcount over the padded columns (zero tails contribute nothing);
  // runtime-dispatched between the AVX2 and SWAR kernels.
  const bool avx2 = util::wide::use_avx2(util::wide::Dispatch::kAuto);
  std::uint64_t total = 0;
  for (VertexId u = 0; u < q_->num_vertices(); ++u) {
    const std::size_t padded = anc_[u].size();
    total += avx2 ? util::wide::count_pairs_avx2(anc_[u].data(), desc_[u].data(),
                                                 padded)
                  : util::wide::count_pairs_swar(anc_[u].data(), desc_[u].data(),
                                                 padded);
  }
  return total;
}

bool DagCandidateIndex::states_equal(const DagCandidateIndex& other) const noexcept {
  // Compare the logical extent only: two indexes over the same flag set may
  // have different physical capacities (and therefore different padding).
  if (q_->num_vertices() != other.q_->num_vertices()) return false;
  const std::uint32_t cap = std::min(cap_, other.cap_);
  for (VertexId u = 0; u < q_->num_vertices(); ++u) {
    if (!std::equal(anc_[u].begin(), anc_[u].begin() + cap, other.anc_[u].begin()))
      return false;
    if (!std::equal(desc_[u].begin(), desc_[u].begin() + cap, other.desc_[u].begin()))
      return false;
    // Any flag beyond the shorter capacity must be off on the longer side.
    const auto& big_anc = cap_ > other.cap_ ? anc_[u] : other.anc_[u];
    const auto& big_desc = cap_ > other.cap_ ? desc_[u] : other.desc_[u];
    const std::uint32_t big_cap = std::max(cap_, other.cap_);
    for (std::uint32_t v = cap; v < big_cap; ++v)
      if (big_anc[v] || big_desc[v]) return false;
  }
  return true;
}

}  // namespace paracosm::csm
