// Dynamic candidate index: the auxiliary data structure family behind
// TurboFlux's DCG and Symbi's DCS.
//
// A query DAG is fixed offline (BFS from a root; TurboFlux keeps only the
// spanning tree arcs, Symbi keeps every edge). For each query vertex u and
// data vertex v two flags are maintained:
//
//   anc(u,v)  — v can play u considering u's ancestors:   stat(u,v) and for
//               every DAG parent p of u some neighbor w of v with a matching
//               edge label has anc(p,w).  (TurboFlux "explicit" direction /
//               Symbi D1.)
//   desc(u,v) — symmetric over DAG children.  (TurboFlux "implicit" / Symbi
//               D2.)
//
// where stat(u,v) = label(u)==label(v); the degree filter is applied at
// enumeration time, not stored in the index, which is what makes the
// classifier's label stage sound (a label-mismatched edge provably cannot
// flip any index state). A data vertex is a *candidate* of u iff both hold. Each flag is backed by per-arc counters
// (number of supporting neighbors), so a graph update costs O(affected):
// insertions can only turn flags on and deletions only off, and flips
// propagate along DAG arcs with a worklist.
//
// The index also implements the candidate-filtering stage of ParaCOSM's
// update classifier: `safe_insert`/`safe_remove` prove, *before* the update
// is applied, that it would flip no flag and that no match can pass through
// the edge (both endpoints would have to be candidates of a compatible query
// edge). Counter-only cache deltas are permitted for safe updates — they are
// confined to the two endpoints, which is what makes parallel safe
// application race-free in the batch executor's strict mode (DESIGN.md §4).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/data_graph.hpp"
#include "graph/query_graph.hpp"

namespace paracosm::csm {

using graph::DataGraph;
using graph::Label;
using graph::QueryGraph;
using graph::VertexId;

/// Rooted orientation of the query graph used by the index.
struct QueryDag {
  struct Arc {
    VertexId other;      ///< the vertex on the far side of the arc
    Label elabel;        ///< query edge label
    std::uint32_t slot;  ///< index of *this* vertex inside `other`'s reverse list
  };

  std::vector<std::vector<Arc>> parents;   // arcs towards ancestors
  std::vector<std::vector<Arc>> children;  // arcs towards descendants
  std::vector<VertexId> topo;              // ascending (level, id)
  VertexId root = 0;

  /// BFS orientation from the max-degree vertex. `spanning_tree_only` keeps
  /// just the BFS tree arc per non-root vertex (TurboFlux); otherwise every
  /// query edge is oriented (Symbi).
  [[nodiscard]] static QueryDag build(const QueryGraph& q, bool spanning_tree_only);
};

class DagCandidateIndex {
 public:
  /// Rebuild from scratch for (q, g).
  void build(const QueryGraph& q, const DataGraph& g, bool spanning_tree_only,
             bool use_edge_labels = true);

  /// Maintenance hooks; the data graph must already reflect the change.
  void on_edge_inserted(VertexId v1, VertexId v2, Label elabel);
  void on_edge_removed(VertexId v1, VertexId v2, Label elabel);
  void on_vertex_added(VertexId id);
  void on_vertex_removed(VertexId id);

  [[nodiscard]] bool anc(VertexId u, VertexId v) const noexcept {
    return anc_[u][v] != 0;
  }
  [[nodiscard]] bool desc(VertexId u, VertexId v) const noexcept {
    return desc_[u][v] != 0;
  }
  [[nodiscard]] bool candidate(VertexId u, VertexId v) const noexcept {
    return anc_[u][v] != 0 && desc_[u][v] != 0;
  }

  /// Classifier stage 3 (evaluated BEFORE applying the update).
  [[nodiscard]] bool safe_insert(VertexId v1, VertexId v2, Label elabel) const;
  [[nodiscard]] bool safe_remove(VertexId v1, VertexId v2, Label elabel) const;

  /// Total candidate pairs (pruning-power statistic). Computed by the wide
  /// AND+popcount kernel over the padded columns (util/wide_ops.hpp).
  [[nodiscard]] std::uint64_t num_candidate_pairs() const noexcept;

  /// Logical column extent (data-graph vertex capacity at last build/grow).
  [[nodiscard]] std::uint32_t capacity() const noexcept { return cap_; }
  /// Raw flag columns including the physical padding — the wide-kernel
  /// layout contract (entries [0, capacity()) live, tail zero-filled to a
  /// kByteBlock multiple) is pinned by tests/test_batch_backend.cpp.
  [[nodiscard]] std::span<const std::uint8_t> anc_column(VertexId u) const noexcept {
    return anc_[u];
  }
  [[nodiscard]] std::span<const std::uint8_t> desc_column(VertexId u) const noexcept {
    return desc_[u];
  }

  /// Flag-for-flag equality — lets tests verify incremental maintenance
  /// against a freshly built index.
  [[nodiscard]] bool states_equal(const DagCandidateIndex& other) const noexcept;

  /// Rolling FNV-1a/XOR checksum over the (anc, desc) flag state, maintained
  /// in O(1) per flip (util/checksum.hpp). Two indexes over the same (Q, G)
  /// shapes are checksum-equal iff the same flag set is on, so the
  /// PARACOSM_VERIFY safe-update invariant costs O(1) per batch.
  [[nodiscard]] std::uint64_t checksum() const noexcept { return checksum_; }
  /// O(|V(Q)|·cap) reference rescan of `checksum()` for tests.
  [[nodiscard]] std::uint64_t checksum_recompute() const noexcept;

 private:
  enum class Kind : std::uint8_t { kAnc, kDesc };
  struct Flip {
    Kind kind;
    VertexId u;
    VertexId v;
    bool on;
  };

  const QueryGraph* q_ = nullptr;
  const DataGraph* g_ = nullptr;
  QueryDag dag_;
  bool use_elabels_ = true;
  std::uint32_t cap_ = 0;

  std::vector<std::vector<std::uint8_t>> anc_, desc_;
  // cnt_anc_[u][v * parents(u).size() + slot]; likewise for desc/children.
  std::vector<std::vector<std::uint32_t>> cnt_anc_, cnt_desc_;
  std::uint64_t checksum_ = 0;

  /// Set a flag to `on`, folding the flip into `checksum_`. Returns true iff
  /// the value changed (the callers' flip-propagation predicate).
  bool set_anc(VertexId u, VertexId v, bool on) noexcept;
  bool set_desc(VertexId u, VertexId v, bool on) noexcept;

  /// NUMA/hugepage placement advice for query vertex u's candidate columns
  /// (read by every worker during search). Best-effort, DESIGN.md §10.
  void place_columns(VertexId u) noexcept;

  [[nodiscard]] bool stat(VertexId u, VertexId v) const noexcept;
  [[nodiscard]] bool eval_anc(VertexId u, VertexId v) const noexcept;
  [[nodiscard]] bool eval_desc(VertexId u, VertexId v) const noexcept;
  /// Post-update evaluations of the endpoint flags, with the pending edge's
  /// counter deltas applied virtually (sign = +1 insert / -1 remove).
  [[nodiscard]] bool would_anc(VertexId x, VertexId at, VertexId other, Label elabel,
                               std::int32_t sign) const noexcept;
  [[nodiscard]] bool would_desc(VertexId x, VertexId at, VertexId other, Label elabel,
                                std::int32_t sign) const noexcept;
  [[nodiscard]] bool safe_edge(VertexId v1, VertexId v2, Label elabel,
                               std::int32_t sign) const;

  /// Apply direct counter deltas contributed by data edge (a,b) in the given
  /// direction, for every compatible query arc; sign is +1/-1.
  void direct_deltas(VertexId a, VertexId b, Label elabel, std::int32_t sign);
  /// Re-evaluate both flags of every (x, v) pair and enqueue flips.
  void reeval_pairs_of(VertexId v, std::vector<Flip>& queue);
  void drain(std::vector<Flip>& queue);
};

}  // namespace paracosm::csm
