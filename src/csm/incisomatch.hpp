// IncIsoMatch-style recomputation baseline (Fan et al.; paper Table 1, first
// row: "index update: Recomputation").
//
// The simplest correct CSM algorithm: keep the total match count and
// recompute it from scratch around every update; ΔM is the difference. It
// anchors the cost spectrum — the reason incremental algorithms (and then
// ParaCOSM) exist — and serves as an extra cross-validation point.
//
// Counting-only: the recomputation path reports |ΔM| without materializing
// the mappings, so match callbacks see no per-match invocations.
#pragma once

#include "csm/algorithm.hpp"

namespace paracosm::csm {

class IncIsoMatch final : public CsmAlgorithm {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "incisomatch";
  }

  void attach(const QueryGraph& q, const DataGraph& g) override;

  /// Nothing can be proven without recomputing — every update is unsafe.
  [[nodiscard]] bool ads_safe(const GraphUpdate&) const override { return false; }

  void seeds(const GraphUpdate& upd, std::vector<SearchTask>& out) const override;
  void expand(const SearchTask& task, MatchSink& sink, SplitHook* hook) const override;

 private:
  // The engine drives seeds/expand with the op encoded by call order; the
  // cached count is algorithm state updated during (conceptually const)
  // enumeration, hence mutable. Sequential use only — recomputation is the
  // one algorithm the framework never fans out (a single seed per update).
  mutable std::uint64_t cached_count_ = 0;
  mutable GraphUpdate pending_{};
};

}  // namespace paracosm::csm
