// Search-tree vocabulary shared by all CSM algorithms and by ParaCOSM's
// inner-update executor.
//
// A SearchTask is a resumable node of the abstract search tree T (paper
// Fig. 3): the partial mapping accumulated so far, in assignment order. The
// root-layer tasks produced by an update are its seeds; ParaCOSM's executor
// re-enqueues deeper tasks when workers go idle (Algorithm 2), which is why
// tasks are plain values.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "graph/types.hpp"
#include "util/cancel.hpp"
#include "util/timer.hpp"

namespace paracosm::csm {

using graph::Label;
using graph::VertexId;

/// One (query vertex -> data vertex) assignment.
struct Assignment {
  VertexId qv;
  VertexId dv;

  [[nodiscard]] friend constexpr bool operator==(const Assignment&,
                                                 const Assignment&) noexcept = default;
};

/// Resumable partial match. assigned[0..1] are always the endpoints of the
/// updated edge (the first search-tree layer).
struct SearchTask {
  std::vector<Assignment> assigned;

  [[nodiscard]] std::uint32_t depth() const noexcept {
    return static_cast<std::uint32_t>(assigned.size());
  }
};

/// Receives matches and accounts for search effort. One sink per worker (or
/// per sequential update); never shared across threads.
///
/// Delivery contract (parallel executors): user-facing match callbacks are
/// NOT invoked from `emit` on worker threads. Each worker appends into a
/// private buffer; after the executor reaches quiescence the buffers are
/// merged and the callback runs on the calling thread with the mappings
/// sorted lexicographically by their (qv, dv) assignment sequence. A given
/// match set therefore produces byte-identical callback streams across the
/// sequential path and every executor/thread-count combination.
class MatchSink {
 public:
  std::uint64_t matches = 0;  ///< |ΔM| contributions seen by this sink
  std::uint64_t nodes = 0;    ///< search-tree nodes expanded (cost unit)

  /// Optional callback invoked with the full mapping in assignment order.
  std::function<void(std::span<const Assignment>)> on_match;

  /// Deadline support for the paper's success-rate metric: expired sinks
  /// abort enumeration. Zero time_point (default) means "no deadline".
  util::Clock::time_point deadline{};

  /// Cooperative cancellation (service watchdog, DESIGN.md §7). Inactive by
  /// default; when set, the epoch is polled inside tick() on the same
  /// amortization schedule as the deadline.
  util::CancelView cancel{};

  [[nodiscard]] bool timed_out() const noexcept { return timed_out_; }
  [[nodiscard]] bool cancelled() const noexcept { return cancelled_; }

  /// The search must stop for *either* reason. Control-flow sites use this;
  /// timed_out()/cancelled() stay distinct so callers can account degraded
  /// updates separately from deadline misses.
  [[nodiscard]] bool stopped() const noexcept { return timed_out_ || cancelled_; }

  /// Account one search-tree node; returns false when the search must stop.
  /// The expensive probes (clock read, shared-atomic load) run once per 1024
  /// nodes so the enabled-but-idle cost stays within the <1% budget.
  [[nodiscard]] bool tick() noexcept {
    ++nodes;
    if ((nodes & 1023) == 0) {
      if (cancel.active() && cancel.cancelled()) cancelled_ = true;
      if (deadline != util::Clock::time_point{} && util::Clock::now() >= deadline) {
        timed_out_ = true;
      }
    }
    return !(timed_out_ || cancelled_);
  }

  void emit(std::span<const Assignment> mapping) {
    ++matches;
    if (on_match) on_match(mapping);
  }

  /// Fold a worker-local sink into an aggregate one.
  void merge(const MatchSink& other) noexcept {
    matches += other.matches;
    nodes += other.nodes;
    timed_out_ = timed_out_ || other.timed_out_;
    cancelled_ = cancelled_ || other.cancelled_;
  }

  void mark_timed_out() noexcept { timed_out_ = true; }
  void mark_cancelled() noexcept { cancelled_ = true; }

 private:
  bool timed_out_ = false;
  bool cancelled_ = false;
};

/// Injected by the inner-update executor into the traversal routine
/// (Algorithm 2). `want_offload` implements the
/// `HasIdleThreads() && CQ.is_empty() && depth < SPLIT_DEPTH` predicate;
/// `offload` pushes a subtree onto the concurrent queue CQ.
class SplitHook {
 public:
  virtual ~SplitHook() = default;
  [[nodiscard]] virtual bool want_offload(std::uint32_t depth) noexcept = 0;
  virtual void offload(SearchTask&& task) = 0;
};

}  // namespace paracosm::csm
