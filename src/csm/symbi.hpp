// Symbi (Min et al., VLDB'21): DCS-backed continuous matching with
// bidirectional dynamic programming.
//
// The dynamic candidate space is the DagCandidateIndex over the full BFS DAG
// of the query (every query edge constrains the index), giving stronger
// pruning at O(|E(G)||E(Q)|)-style maintenance cost.
#pragma once

#include "csm/backtrack.hpp"
#include "csm/candidate_index.hpp"

namespace paracosm::csm {

class Symbi final : public BacktrackBase {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "symbi"; }

  void on_edge_inserted(const GraphUpdate& upd) override {
    index_.on_edge_inserted(upd.u, upd.v, upd.label);
  }
  void on_edge_removed(const GraphUpdate& upd) override {
    index_.on_edge_removed(upd.u, upd.v, upd.label);
  }
  void on_vertex_added(graph::VertexId id) override { index_.on_vertex_added(id); }
  void on_vertex_removed(graph::VertexId id) override { index_.on_vertex_removed(id); }

  [[nodiscard]] bool has_ads() const noexcept override { return true; }
  [[nodiscard]] std::uint64_t ads_checksum() const noexcept override {
    return index_.checksum();
  }
  [[nodiscard]] bool ads_safe(const GraphUpdate& upd) const override {
    if (!upd.is_edge_op()) return false;
    return upd.is_insert() ? index_.safe_insert(upd.u, upd.v, upd.label)
                           : index_.safe_remove(upd.u, upd.v, upd.label);
  }

  [[nodiscard]] const DagCandidateIndex& index() const noexcept { return index_; }

 protected:
  [[nodiscard]] bool candidate_ok(VertexId u, VertexId v) const override {
    return index_.candidate(u, v);
  }
  void rebuild_index() override {
    index_.build(*query_, *graph_, /*spanning_tree_only=*/false);
  }

 private:
  DagCandidateIndex index_;
};

}  // namespace paracosm::csm
