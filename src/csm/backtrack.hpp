// Shared backtracking enumerator for static-matching-order CSM algorithms
// (GraphFlow, TurboFlux, Symbi, CaLiG differ only in the candidate filter
// their ADS provides, which is exactly how the original systems relate).
//
// The traversal is the paper's Find_Matches routine (Algorithm 1) with the
// inner-update split hook of Algorithm 2 threaded through: when the hook
// requests offloading at the current depth, the direct children of the
// current search-tree node are pushed to the concurrent queue instead of
// being explored recursively.
#pragma once

#include "csm/algorithm.hpp"
#include "csm/order.hpp"
#include "csm/scratch.hpp"

namespace paracosm::csm {

class BacktrackBase : public CsmAlgorithm {
 public:
  void attach(const QueryGraph& q, const DataGraph& g) override;
  void seeds(const GraphUpdate& upd, std::vector<SearchTask>& out) const override;
  void expand(const SearchTask& task, MatchSink& sink, SplitHook* hook) const override;

 protected:
  /// ADS filter: may data vertex v still play query vertex u? Called after
  /// label/degree/adjacency checks already passed.
  [[nodiscard]] virtual bool candidate_ok(VertexId u, VertexId v) const = 0;

  /// Rebuild algorithm-specific state; called at the end of attach().
  virtual void rebuild_index() {}

  /// Matching-order policy for the precomputed edge-rooted orders.
  [[nodiscard]] virtual OrderPolicy order_policy() const noexcept {
    return OrderPolicy::kConnectivity;
  }

  OrderTable orders_;

 private:
  void expand_depth(const std::vector<VertexId>& order, SearchScratch& s,
                    MatchSink& sink, SplitHook* hook) const;
};

}  // namespace paracosm::csm
