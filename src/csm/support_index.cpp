#include "csm/support_index.hpp"

#include <algorithm>

#include "csm/filters.hpp"
#include "util/checksum.hpp"

namespace paracosm::csm {

// The implementation stores three acyclic layers:
//   l0 = stat (label + degree), re-evaluated from the graph but also cached
//        implicitly via flips at the update endpoints;
//   cnt1/l1 and cnt2/l2 as documented in the header.
// Convention for maintenance (shared with DagCandidateIndex): direct counter
// deltas for the updated edge use PRE-update flag values, then flags at the
// endpoints are re-evaluated, and flips propagate over POST-update adjacency.

namespace {
constexpr std::uint32_t kKindL1 = 0;
constexpr std::uint32_t kKindL2 = 1;
}  // namespace

bool SupportIndex::set_l1(VertexId u, VertexId v, bool on) noexcept {
  if ((l1_[u][v] != 0) == on) return false;
  l1_[u][v] = on ? 1 : 0;
  checksum_ ^= util::flag_fingerprint(kKindL1, u, v);
  return true;
}

bool SupportIndex::set_l2(VertexId u, VertexId v, bool on) noexcept {
  if ((l2_[u][v] != 0) == on) return false;
  l2_[u][v] = on ? 1 : 0;
  checksum_ ^= util::flag_fingerprint(kKindL2, u, v);
  return true;
}

std::uint64_t SupportIndex::checksum_recompute() const noexcept {
  std::uint64_t sum = 0;
  for (VertexId u = 0; u < q_->num_vertices(); ++u) {
    for (VertexId v = 0; v < cap_; ++v) {
      if (l1_[u][v]) sum ^= util::flag_fingerprint(kKindL1, u, v);
      if (l2_[u][v]) sum ^= util::flag_fingerprint(kKindL2, u, v);
    }
  }
  return sum;
}

bool SupportIndex::stat(VertexId u, VertexId v) const noexcept {
  // Label-only (degree is enforced at enumeration time): since labels are
  // immutable, stat never flips on edge updates, so flips cascade only
  // stat -> cnt1 -> L1 -> cnt2 -> L2.
  return g_->has_vertex(v) && g_->label(v) == q_->label(u);
}

bool SupportIndex::eval_l1(VertexId u, VertexId v) const noexcept {
  if (!stat(u, v)) return false;
  const std::size_t d = q_->neighbors(u).size();
  const std::uint32_t* cnt = cnt1_[u].data() + static_cast<std::size_t>(v) * d;
  for (std::size_t i = 0; i < d; ++i)
    if (cnt[i] == 0) return false;
  return true;
}

bool SupportIndex::eval_l2(VertexId u, VertexId v) const noexcept {
  if (!stat(u, v)) return false;
  const std::size_t d = q_->neighbors(u).size();
  const std::uint32_t* cnt = cnt2_[u].data() + static_cast<std::size_t>(v) * d;
  for (std::size_t i = 0; i < d; ++i)
    if (cnt[i] == 0) return false;
  return true;
}

void SupportIndex::build(const QueryGraph& q, const DataGraph& g) {
  q_ = &q;
  g_ = &g;
  cap_ = g.vertex_capacity();
  const std::uint32_t n = q.num_vertices();
  l1_.assign(n, {});
  l2_.assign(n, {});
  cnt1_.assign(n, {});
  cnt2_.assign(n, {});
  for (VertexId u = 0; u < n; ++u) {
    const std::size_t d = q.neighbors(u).size();
    l1_[u].assign(cap_, 0);
    l2_[u].assign(cap_, 0);
    cnt1_[u].assign(static_cast<std::size_t>(cap_) * d, 0);
    cnt2_[u].assign(static_cast<std::size_t>(cap_) * d, 0);
  }
  // cnt1 from stat, then l1; cnt2 from l1, then l2. stat is label-only over
  // alive adjacency, so cnt1[i] is exactly the NLF entry for the query
  // neighbor's label, and the cnt2 scan needs only that label segment
  // (l1 implies stat implies the label matches).
  for (VertexId u = 0; u < n; ++u) {
    const auto nbrs = q.neighbors(u);
    for (VertexId v = 0; v < cap_; ++v) {
      if (!g.has_vertex(v)) continue;
      std::uint32_t* cnt = cnt1_[u].data() + static_cast<std::size_t>(v) * nbrs.size();
      for (std::size_t i = 0; i < nbrs.size(); ++i)
        cnt[i] = g.nlf(v, q.label(nbrs[i].v));
    }
    for (VertexId v = 0; v < cap_; ++v) l1_[u][v] = eval_l1(u, v) ? 1 : 0;
  }
  for (VertexId u = 0; u < n; ++u) {
    const auto nbrs = q.neighbors(u);
    for (VertexId v = 0; v < cap_; ++v) {
      if (!g.has_vertex(v)) continue;
      std::uint32_t* cnt = cnt2_[u].data() + static_cast<std::size_t>(v) * nbrs.size();
      for (std::size_t i = 0; i < nbrs.size(); ++i)
        for (const auto& w : g.neighbors_with_label(v, q.label(nbrs[i].v)))
          if (l1_[nbrs[i].v][w.v]) ++cnt[i];
    }
    for (VertexId v = 0; v < cap_; ++v) l2_[u][v] = eval_l2(u, v) ? 1 : 0;
  }
  checksum_ = checksum_recompute();
}

void SupportIndex::on_vertex_added(VertexId id) {
  if (id >= cap_) {
    cap_ = id + 1;
    for (VertexId u = 0; u < q_->num_vertices(); ++u) {
      const std::size_t d = q_->neighbors(u).size();
      l1_[u].resize(cap_, 0);
      l2_[u].resize(cap_, 0);
      cnt1_[u].resize(static_cast<std::size_t>(cap_) * d, 0);
      cnt2_[u].resize(static_cast<std::size_t>(cap_) * d, 0);
    }
  }
  // Isolated vertex: flags evaluate directly, nothing propagates.
  for (VertexId u = 0; u < q_->num_vertices(); ++u) {
    set_l1(u, id, eval_l1(u, id));
    set_l2(u, id, eval_l2(u, id));
  }
}

void SupportIndex::on_vertex_removed(VertexId id) {
  for (VertexId u = 0; u < q_->num_vertices(); ++u) {
    set_l1(u, id, false);
    set_l2(u, id, false);
  }
}

void SupportIndex::direct_deltas(VertexId a, VertexId b, std::int32_t sign) {
  // Data vertex b became/ceased to be a neighbor of a: adjust a's counters
  // using b's pre-update layer values (stat is label-only, hence immutable).
  for (VertexId u = 0; u < q_->num_vertices(); ++u) {
    const auto nbrs = q_->neighbors(u);
    std::uint32_t* c1 = cnt1_[u].data() + static_cast<std::size_t>(a) * nbrs.size();
    std::uint32_t* c2 = cnt2_[u].data() + static_cast<std::size_t>(a) * nbrs.size();
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const VertexId up = nbrs[i].v;
      if (stat(up, b))
        c1[i] = static_cast<std::uint32_t>(static_cast<std::int64_t>(c1[i]) + sign);
      if (l1_[up][b])
        c2[i] = static_cast<std::uint32_t>(static_cast<std::int64_t>(c2[i]) + sign);
    }
  }
}

void SupportIndex::refresh(VertexId v1, VertexId v2) {
  struct Flip {
    VertexId u;
    VertexId v;
    bool on;
  };
  std::vector<Flip> l1_flips;

  // Re-evaluate all pairs at the endpoints (covers the direct deltas).
  for (const VertexId v : {v1, v2}) {
    for (VertexId x = 0; x < q_->num_vertices(); ++x) {
      const bool nv = eval_l1(x, v);
      if (set_l1(x, v, nv)) l1_flips.push_back({x, v, nv});
    }
  }
  // Propagate L1 flips into cnt2 of neighbors; re-evaluate kernel flags.
  for (const Flip& f : l1_flips) {
    for (const auto& nb : g_->neighbors(f.v)) {
      for (VertexId x = 0; x < q_->num_vertices(); ++x) {
        const auto xn = q_->neighbors(x);
        std::uint32_t* c2 =
            cnt2_[x].data() + static_cast<std::size_t>(nb.v) * xn.size();
        for (std::size_t i = 0; i < xn.size(); ++i) {
          if (xn[i].v != f.u) continue;
          c2[i] += f.on ? 1u : ~0u;
          set_l2(x, nb.v, eval_l2(x, nb.v));
        }
      }
    }
    set_l2(f.u, f.v, eval_l2(f.u, f.v));
  }
  for (const VertexId v : {v1, v2})
    for (VertexId x = 0; x < q_->num_vertices(); ++x)
      set_l2(x, v, eval_l2(x, v));
}

void SupportIndex::on_edge_inserted(VertexId v1, VertexId v2) {
  direct_deltas(v1, v2, +1);
  direct_deltas(v2, v1, +1);
  refresh(v1, v2);
}

void SupportIndex::on_edge_removed(VertexId v1, VertexId v2) {
  direct_deltas(v1, v2, -1);
  direct_deltas(v2, v1, -1);
  refresh(v1, v2);
}

bool SupportIndex::safe_edge(VertexId v1, VertexId v2, std::int32_t sign) const {
  // Endpoint flags must not flip (so nothing propagates) and no query edge
  // may see kernel candidates at both endpoints (so no match uses the edge).
  // One data edge can bump several slots of the same entry — any
  // label-compatible query neighbor — hence whole-vector evaluation.
  for (VertexId u = 0; u < q_->num_vertices(); ++u) {
    const auto nbrs = q_->neighbors(u);
    for (const auto& [at, other] : {std::pair{v1, v2}, std::pair{v2, v1}}) {
      bool would_l1 = stat(u, at);
      bool would_l2 = would_l1;
      const std::uint32_t* c1 =
          cnt1_[u].data() + static_cast<std::size_t>(at) * nbrs.size();
      const std::uint32_t* c2 =
          cnt2_[u].data() + static_cast<std::size_t>(at) * nbrs.size();
      for (std::size_t i = 0; i < nbrs.size() && (would_l1 || would_l2); ++i) {
        const VertexId up = nbrs[i].v;
        const std::int64_t b1 =
            static_cast<std::int64_t>(c1[i]) + (stat(up, other) ? sign : 0);
        const std::int64_t b2 =
            static_cast<std::int64_t>(c2[i]) + (l1_[up][other] ? sign : 0);
        if (b1 <= 0) would_l1 = false;
        if (b2 <= 0) would_l2 = false;
      }
      if (would_l1 != (l1_[u][at] != 0)) return false;
      if (would_l2 != (l2_[u][at] != 0)) return false;
    }
    // Match-pair check, refined by the degree/NLF feasibility filters the
    // enumeration applies anyway (CaLiG is edge-label blind, so only vertex
    // labels and degrees feed the refinement).
    const bool insert = sign > 0;
    const auto feasible = [&](VertexId qu, VertexId dv, VertexId other) {
      return kernel(qu, dv) && match_endpoint_ok(*q_, *g_, qu, dv, other, insert);
    };
    for (const auto& nb : nbrs) {
      if (feasible(u, v1, v2) && feasible(nb.v, v2, v1)) return false;
      if (feasible(u, v2, v1) && feasible(nb.v, v1, v2)) return false;
    }
  }
  return true;
}

bool SupportIndex::safe_insert(VertexId v1, VertexId v2) const {
  return safe_edge(v1, v2, +1);
}

bool SupportIndex::safe_remove(VertexId v1, VertexId v2) const {
  return safe_edge(v1, v2, -1);
}

std::uint64_t SupportIndex::num_kernel_pairs() const noexcept {
  std::uint64_t total = 0;
  for (const auto& column : l2_)
    total += static_cast<std::uint64_t>(
        std::count(column.begin(), column.end(), std::uint8_t{1}));
  return total;
}

bool SupportIndex::states_equal(const SupportIndex& other) const noexcept {
  return l1_ == other.l1_ && l2_ == other.l2_;
}

}  // namespace paracosm::csm
