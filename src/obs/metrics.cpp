#include "obs/metrics.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace paracosm::obs {

namespace {

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

}  // namespace

void MetricsSnapshot::add_counter(const std::string& name, std::int64_t value) {
  Entry e;
  e.name = name;
  e.int_value = value;
  entries_.push_back(std::move(e));
}

void MetricsSnapshot::add_gauge(const std::string& name, double value) {
  Entry e;
  e.name = name;
  e.is_float = true;
  e.float_value = value;
  entries_.push_back(std::move(e));
}

void MetricsSnapshot::add_histogram(const std::string& name,
                                    const Histogram& hist) {
  add_counter(name + ".count", static_cast<std::int64_t>(hist.count()));
  add_gauge(name + ".mean", hist.mean());
  add_counter(name + ".min", hist.min());
  add_counter(name + ".p50", hist.quantile(50.0));
  add_counter(name + ".p95", hist.quantile(95.0));
  add_counter(name + ".p99", hist.quantile(99.0));
  add_counter(name + ".p999", hist.quantile(99.9));
  add_counter(name + ".max", hist.max());
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\n";
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    out += "  \"";
    out += e.name;
    out += "\": ";
    out += e.is_float ? format_double(e.float_value)
                      : std::to_string(e.int_value);
    if (i + 1 < entries_.size()) out.push_back(',');
    out.push_back('\n');
  }
  out += "}\n";
  return out;
}

std::string MetricsSnapshot::to_csv() const {
  std::string out = "metric,value\n";
  for (const Entry& e : entries_) {
    out += e.name;
    out.push_back(',');
    out += e.is_float ? format_double(e.float_value)
                      : std::to_string(e.int_value);
    out.push_back('\n');
  }
  return out;
}

void MetricsSnapshot::write(const std::string& path) const {
  const bool csv =
      path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
  const std::string body = csv ? to_csv() : to_json();
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
    if (!out) throw std::runtime_error("metrics: cannot open '" + tmp + "'");
    out.write(body.data(), static_cast<std::streamsize>(body.size()));
    out.flush();
    if (!out) throw std::runtime_error("metrics: write failed on '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    throw std::runtime_error("metrics: rename to '" + path + "' failed");
}

}  // namespace paracosm::obs
