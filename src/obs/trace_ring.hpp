// Per-thread lock-free bounded trace rings (DESIGN.md §8).
//
// Design constraints, in order:
//   1. A disabled build (PARACOSM_TRACE=OFF) must cost *nothing*: the
//      instrumentation macros below compile away entirely.
//   2. An enabled-but-idle build (tracing compiled in, level 0) must cost one
//      relaxed atomic load + predictable branch per instrumentation point.
//   3. Recording must never block or allocate on the hot path: each thread
//      owns a fixed-capacity power-of-two ring of 64-byte events with an
//      overwrite-oldest policy. Overwritten events are accounted exactly
//      (dropped() == pushed() - capacity when the ring wrapped).
//
// Memory model: a ring has exactly one producer (its owning thread). Slots
// are arrays of relaxed atomics, published by a release store of head_; a
// concurrent reader (TraceRegistry::collect from another thread) acquires
// head_ and copies the window. Lapping during the copy is detected per slot
// with a double epoch stamp: the producer writes `reserved = seq` first and
// `seq` last (the words in between are release stores), so a reader that
// checks `seq` before and `reserved` after its acquire word copy — against
// the epoch the slot *should* hold — rejects any slot a producer write
// overlapped, even when a stale head_ read would have hidden the lap. Readers can therefore
// snapshot a live ring without stopping the producer and without torn
// events — at worst they see a slightly shorter suffix. Epoch stamps (`seq`,
// from the producer's own counter) are strictly monotonic per thread, which
// the deterministic concurrency test asserts under TSan.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/event.hpp"

namespace paracosm::obs {

/// Fixed 64-byte trace event. `dur_ns < 0` marks an instant; spans carry the
/// wall duration. `ts_ns` is a steady-clock stamp shared by every thread, so
/// cross-lane ordering is meaningful.
struct TraceEvent {
  std::int64_t ts_ns = 0;
  std::int64_t dur_ns = -1;
  std::uint64_t seq = 0;  ///< per-thread monotonic epoch stamp
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
  std::uint32_t kind = 0;  ///< EventKind
  std::uint32_t flags = 0;
  std::uint64_t reserved = 0;  ///< in ring slots: write-begin stamp (== seq)
};
static_assert(sizeof(TraceEvent) == 64, "events are fixed 64-byte records");
static_assert(std::is_trivially_copyable_v<TraceEvent>);

/// Steady-clock nanoseconds (the epoch stamp clock of util/timer.hpp).
[[nodiscard]] inline std::int64_t now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Global runtime verbosity: 0 = off, 1 = spans + scheduler/service instants,
/// 2 = + per-search-node instants. One relaxed load on the hot path.
inline std::atomic<int> g_trace_level{0};

[[nodiscard]] inline int trace_level() noexcept {
  return g_trace_level.load(std::memory_order_relaxed);
}
inline void set_trace_level(int level) noexcept {
  g_trace_level.store(level, std::memory_order_relaxed);
}

/// Single-producer bounded ring of TraceEvents; overwrite-oldest.
class TraceRing {
 public:
  /// `capacity` is rounded up to a power of two (minimum 8).
  explicit TraceRing(std::size_t capacity = kDefaultCapacity)
      : cap_(std::bit_ceil(capacity < 8 ? std::size_t{8} : capacity)),
        mask_(cap_ - 1),
        slots_(new Slot[cap_]) {}

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  [[nodiscard]] std::size_t capacity() const noexcept { return cap_; }

  /// Producer-only. Stamps the event's per-thread epoch and overwrites the
  /// oldest slot when full. Never blocks, never allocates.
  void push(TraceEvent ev) noexcept {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    const std::uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
    ev.seq = seq;
    ev.reserved = seq;  // write-begin stamp; `seq` (stored last) closes it
    Slot& s = slots_[h & mask_];
    const auto words = std::bit_cast<std::array<std::uint64_t, kWords>>(ev);
    // Release stores on every word after the begin stamp: a reader that
    // acquire-loads any of them sees the begin stamp too (TSan models this;
    // fences it does not). On x86 release stores are plain stores.
    s.w[kReservedWord].store(words[kReservedWord], std::memory_order_relaxed);
    for (std::size_t i = 0; i < kWords; ++i)
      if (i != kSeqWord && i != kReservedWord)
        s.w[i].store(words[i], std::memory_order_release);
    s.w[kSeqWord].store(words[kSeqWord], std::memory_order_release);
    head_.store(h + 1, std::memory_order_release);
  }

  /// Convenience producers.
  void push_span(EventKind kind, std::int64_t start_ns, std::int64_t dur_ns,
                 std::uint64_t a = 0, std::uint64_t b = 0,
                 std::uint64_t c = 0) noexcept {
    TraceEvent ev;
    ev.ts_ns = start_ns;
    ev.dur_ns = dur_ns < 0 ? 0 : dur_ns;
    ev.kind = static_cast<std::uint32_t>(kind);
    ev.a = a;
    ev.b = b;
    ev.c = c;
    push(ev);
  }
  void push_instant(EventKind kind, std::uint64_t a = 0, std::uint64_t b = 0,
                    std::uint64_t c = 0) noexcept {
    TraceEvent ev;
    ev.ts_ns = now_ns();
    ev.dur_ns = -1;
    ev.kind = static_cast<std::uint32_t>(kind);
    ev.a = a;
    ev.b = b;
    ev.c = c;
    push(ev);
  }

  /// Total events ever pushed / overwritten before being read. Exact.
  [[nodiscard]] std::uint64_t pushed() const noexcept {
    return head_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    const std::uint64_t h = pushed();
    return h > cap_ ? h - cap_ : 0;
  }

  /// Copy the surviving window (oldest first) into `out`. Safe concurrently
  /// with the producer: slots the producer overwrote mid-copy are discarded,
  /// so every returned event is intact and their seqs are consecutive.
  void snapshot(std::vector<TraceEvent>& out) const {
    out.clear();
    const std::uint64_t h1 = head_.load(std::memory_order_acquire);
    const std::uint64_t lo1 = h1 > cap_ ? h1 - cap_ : 0;
    if (h1 == lo1) return;
    std::vector<TraceEvent> tmp;
    tmp.reserve(h1 - lo1);
    std::uint64_t drop_prefix = 0;  // entries before (and incl.) the last lap
    for (std::uint64_t i = lo1; i < h1; ++i) {
      std::array<std::uint64_t, kWords> words;
      const Slot& s = slots_[i & mask_];
      // Per-slot double stamp: the slot is intact iff both epochs equal the
      // epoch this index must hold (i + 1 — seq and head advance together).
      // `seq` (stored last by the producer) is read first; `reserved`
      // (stored first) is read last. The data loads are acquire, pairing
      // with the producer's release stores: observing any word of a newer
      // write makes that write's begin stamp visible to the final load. A
      // producer write overlapping this copy therefore flips at least one
      // stamp, even when the head_ load above returned a stale value —
      // re-reading head_ instead would miss laps whose slot stores became
      // visible before the matching head_ store.
      words[kSeqWord] = s.w[kSeqWord].load(std::memory_order_acquire);
      for (std::size_t w = 0; w < kWords; ++w)
        if (w != kSeqWord && w != kReservedWord)
          words[w] = s.w[w].load(std::memory_order_acquire);
      words[kReservedWord] = s.w[kReservedWord].load(std::memory_order_relaxed);
      tmp.push_back(std::bit_cast<TraceEvent>(words));
      if (words[kSeqWord] != i + 1 || words[kReservedWord] != i + 1)
        drop_prefix = (i - lo1) + 1;
    }
    // The producer overwrites oldest-first, so keeping only the suffix after
    // the last invalid slot yields intact events with consecutive epochs.
    out.assign(tmp.begin() + static_cast<std::ptrdiff_t>(drop_prefix),
               tmp.end());
  }

  /// Reset to empty. Only meaningful while the producer is quiescent (e.g.
  /// tracing level 0 between runs); counters restart from zero.
  void clear() noexcept {
    head_.store(0, std::memory_order_release);
    next_seq_.store(0, std::memory_order_relaxed);
  }

  static constexpr std::size_t kDefaultCapacity = 1 << 14;  ///< 1 MiB/thread

 private:
  static constexpr std::size_t kWords = sizeof(TraceEvent) / sizeof(std::uint64_t);
  static constexpr std::size_t kSeqWord = offsetof(TraceEvent, seq) / sizeof(std::uint64_t);
  static constexpr std::size_t kReservedWord =
      offsetof(TraceEvent, reserved) / sizeof(std::uint64_t);
  struct Slot {
    std::atomic<std::uint64_t> w[kWords] = {};
  };

  const std::size_t cap_;
  const std::size_t mask_;
  std::unique_ptr<Slot[]> slots_;
  alignas(64) std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> next_seq_{0};  ///< producer-only RMW
};

/// One collected lane: a thread's surviving events plus its identity.
struct RingSnapshot {
  std::uint32_t tid = 0;  ///< registration-order lane id
  std::string name;       ///< "worker 3", "service", ... (may be empty)
  std::uint64_t pushed = 0;
  std::uint64_t dropped = 0;
  std::vector<TraceEvent> events;
};

/// Process-wide registry of per-thread rings. Threads register lazily on
/// their first recorded event; entries outlive their threads so a trace can
/// be collected after the pool shut down.
class TraceRegistry {
 public:
  static TraceRegistry& instance();

  /// The calling thread's ring (registered on first use; cached in a
  /// thread_local afterwards, so the steady-state cost is one TLS load).
  TraceRing& ring();

  /// Label the calling thread's lane in exported traces.
  static void set_thread_name(const std::string& name);

  /// Capacity used for rings registered from now on (existing rings keep
  /// theirs). Call before spawning the threads you want resized.
  void set_ring_capacity(std::size_t capacity);

  /// Snapshot every registered lane (safe while producers are live).
  [[nodiscard]] std::vector<RingSnapshot> collect() const;

  /// Drop all recorded events (entries and thread bindings survive). Call
  /// with tracing at level 0 and instrumented threads quiescent.
  void clear();

 private:
  struct Entry {
    std::uint32_t tid;
    std::unique_ptr<TraceRing> ring;
    std::string name;
  };

  Entry* entry_for_this_thread();

  mutable std::mutex m_;
  std::vector<std::unique_ptr<Entry>> entries_;
  std::size_t ring_capacity_ = TraceRing::kDefaultCapacity;
};

/// Record an instant event on the calling thread's ring if the current trace
/// level admits this kind.
inline void trace_instant(EventKind kind, std::uint64_t a = 0,
                          std::uint64_t b = 0, std::uint64_t c = 0) noexcept {
  if (trace_level() < event_level(kind)) return;
  TraceRegistry::instance().ring().push_instant(kind, a, b, c);
}

/// Record a span with an explicit start stamp (for call sites whose args are
/// only known after the work ran, e.g. the classifier verdict).
inline void trace_complete(EventKind kind, std::int64_t start_ns,
                           std::uint64_t a = 0, std::uint64_t b = 0,
                           std::uint64_t c = 0) noexcept {
  TraceRegistry::instance().ring().push_span(kind, start_ns,
                                             now_ns() - start_ns, a, b, c);
}

/// RAII span: stamps the start on construction (if the level admits the
/// kind) and records on destruction.
class SpanScope {
 public:
  explicit SpanScope(EventKind kind, std::uint64_t a = 0, std::uint64_t b = 0,
                     std::uint64_t c = 0) noexcept
      : a_(a), b_(b), c_(c) {
    if (trace_level() >= event_level(kind)) {
      kind_ = kind;
      start_ns_ = now_ns();
    }
  }
  ~SpanScope() {
    if (kind_ != EventKind::kNone)
      trace_complete(kind_, start_ns_, a_, b_, c_);
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  EventKind kind_ = EventKind::kNone;
  std::int64_t start_ns_ = 0;
  std::uint64_t a_, b_, c_;
};

}  // namespace paracosm::obs

// ---------------------------------------------------------------------------
// Instrumentation macros. PARACOSM_TRACE=OFF (no PARACOSM_TRACE_ENABLED
// define) compiles every point away; the obs library itself still builds so
// exporters and tests are always available.
#if defined(PARACOSM_TRACE_ENABLED)
#define PARACOSM_TRACE_SPAN(var, kind, ...) \
  ::paracosm::obs::SpanScope var(kind __VA_OPT__(, ) __VA_ARGS__)
#define PARACOSM_TRACE_INSTANT(kind, ...) \
  ::paracosm::obs::trace_instant(kind __VA_OPT__(, ) __VA_ARGS__)
#define PARACOSM_TRACE_THREAD_NAME(name) \
  ::paracosm::obs::TraceRegistry::set_thread_name(name)
#else
#define PARACOSM_TRACE_SPAN(var, kind, ...) \
  do {                                      \
  } while (0)
#define PARACOSM_TRACE_INSTANT(kind, ...) \
  do {                                    \
  } while (0)
#define PARACOSM_TRACE_THREAD_NAME(name) \
  do {                                   \
  } while (0)
#endif
