// Log-bucketed ("HDR-style") latency histograms (DESIGN.md §8).
//
// Layout: values 0..63 land in their own exact bucket; above that, each
// power-of-two octave is cut into kHistSubCount = 32 equal sub-buckets (the
// top 5 value bits index within the octave). A bucket [low, high] therefore
// satisfies (high - low) <= low / 32, which gives the documented guarantee:
//
//   quantile(p) returns the *upper bound* of the bucket holding the
//   nearest-rank sample, so for any recorded distribution
//       exact <= quantile(p) <= exact * (1 + 1/32)    (3.125% relative error)
//   and values < 64 are reported exactly. Counts, sum, min and max are exact.
//
// merge() adds per-bucket counts, so quantiles of merge(a, b) are *identical*
// to the quantiles of one histogram fed both streams — the property the
// per-thread -> aggregate latency pipeline relies on (and the property test
// in tests/test_histogram.cpp pins).
//
// Histogram is single-writer; ConcurrentHistogram allows racing record()
// calls (relaxed per-bucket atomics, CAS min/max) and snapshots into a plain
// Histogram for querying. Both fit in ~15 KiB.
#pragma once

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

namespace paracosm::obs {

inline constexpr std::uint32_t kHistSubBits = 5;
inline constexpr std::uint32_t kHistSubCount = 1u << kHistSubBits;  // 32
/// Highest index is reached by the top octave: shift = 64 - (kHistSubBits+1).
inline constexpr std::uint32_t kHistBuckets =
    (64 - kHistSubBits - 1) * kHistSubCount + 2 * kHistSubCount;  // 1920

/// Bucket index of a non-negative value.
[[nodiscard]] constexpr std::uint32_t hist_bucket(std::uint64_t v) noexcept {
  if (v < 2 * kHistSubCount) return static_cast<std::uint32_t>(v);  // exact
  const int shift = std::bit_width(v) - (static_cast<int>(kHistSubBits) + 1);
  return static_cast<std::uint32_t>(shift) * kHistSubCount +
         static_cast<std::uint32_t>(v >> shift);
}

/// Smallest / largest value mapping to bucket `idx`.
[[nodiscard]] constexpr std::uint64_t hist_bucket_low(std::uint32_t idx) noexcept {
  if (idx < 2 * kHistSubCount) return idx;
  const std::uint32_t shift = idx / kHistSubCount - 1;
  const std::uint64_t sub = kHistSubCount + idx % kHistSubCount;
  return sub << shift;
}
[[nodiscard]] constexpr std::uint64_t hist_bucket_high(std::uint32_t idx) noexcept {
  if (idx < 2 * kHistSubCount) return idx;
  const std::uint32_t shift = idx / kHistSubCount - 1;
  const std::uint64_t sub = kHistSubCount + idx % kHistSubCount;
  return ((sub + 1) << shift) - 1;
}

class Histogram {
 public:
  Histogram() : counts_(kHistBuckets, 0) {}

  /// Record one sample; negative values clamp to 0 (latencies only).
  void record(std::int64_t value) noexcept {
    const std::uint64_t v = value < 0 ? 0 : static_cast<std::uint64_t>(value);
    ++counts_[hist_bucket(v)];
    ++count_;
    sum_ += v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }

  void merge(const Histogram& other) noexcept {
    for (std::uint32_t i = 0; i < kHistBuckets; ++i) counts_[i] += other.counts_[i];
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }
  [[nodiscard]] std::int64_t min() const noexcept {
    return count_ == 0 ? 0 : static_cast<std::int64_t>(min_);
  }
  [[nodiscard]] std::int64_t max() const noexcept {
    return static_cast<std::int64_t>(max_);
  }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  [[nodiscard]] std::uint64_t bucket_count(std::uint32_t idx) const noexcept {
    return counts_[idx];
  }

  /// Nearest-rank quantile, p in [0, 100]. Returns the upper bound of the
  /// bucket holding the rank-th smallest sample, clamped into [min, max] —
  /// see the error bound in the file comment. 0 when empty.
  [[nodiscard]] std::int64_t quantile(double p) const noexcept {
    if (count_ == 0) return 0;
    if (p <= 0.0) return min();
    std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(p / 100.0 * static_cast<double>(count_)));
    rank = std::min(std::max<std::uint64_t>(rank, 1), count_);
    std::uint64_t seen = 0;
    for (std::uint32_t i = 0; i < kHistBuckets; ++i) {
      seen += counts_[i];
      if (seen >= rank)
        return static_cast<std::int64_t>(
            std::clamp(hist_bucket_high(i), min_, max_));
    }
    return max();  // unreachable: seen == count_ after the loop
  }

 private:
  friend class ConcurrentHistogram;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~std::uint64_t{0};
  std::uint64_t max_ = 0;
};

/// Multi-writer variant: record() may race from any number of threads; counts
/// are conserved exactly (the 8-thread TSan property test pins this).
class ConcurrentHistogram {
 public:
  ConcurrentHistogram() : counts_(kHistBuckets) {}

  void record(std::int64_t value) noexcept {
    const std::uint64_t v = value < 0 ? 0 : static_cast<std::uint64_t>(value);
    counts_[hist_bucket(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    std::uint64_t cur = min_.load(std::memory_order_relaxed);
    while (v < cur &&
           !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
    cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  /// Materialize a queryable copy. Linearizes per bucket (relaxed loads):
  /// exact once writers are quiescent, a consistent-enough view while live.
  [[nodiscard]] Histogram snapshot() const {
    Histogram h;
    for (std::uint32_t i = 0; i < kHistBuckets; ++i) {
      const std::uint64_t c = counts_[i].load(std::memory_order_relaxed);
      h.counts_[i] = c;
      h.count_ += c;
    }
    h.sum_ = sum_.load(std::memory_order_relaxed);
    h.min_ = min_.load(std::memory_order_relaxed);
    h.max_ = max_.load(std::memory_order_relaxed);
    return h;
  }

 private:
  std::vector<std::atomic<std::uint64_t>> counts_;
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max_{0};
};

}  // namespace paracosm::obs
