#include "obs/chrome_trace.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace paracosm::obs {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (const char ch : s) {
    if (ch == '"' || ch == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(ch) < 0x20) continue;  // drop control chars
    out.push_back(ch);
  }
}

/// Nanoseconds -> "<us>.<frac3>" with integer math (byte-stable).
void append_us(std::string& out, std::int64_t ns) {
  if (ns < 0) ns = 0;
  char buf[40];
  std::snprintf(buf, sizeof buf, "%" PRId64 ".%03" PRId64, ns / 1000, ns % 1000);
  out += buf;
}

void append_args(std::string& out, const TraceEvent& ev) {
  const auto kind = static_cast<EventKind>(
      ev.kind < kEventKindCount ? ev.kind : 0);
  const auto names = event_arg_names(kind);
  const std::uint64_t values[3] = {ev.a, ev.b, ev.c};
  out += "\"args\":{";
  bool first = true;
  for (int i = 0; i < 3; ++i) {
    if (names[i] == nullptr) continue;
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    out += names[i];
    out += "\":";
    out += std::to_string(values[i]);
  }
  out.push_back('}');
}

void append_event(std::string& out, const TraceEvent& ev, std::uint32_t tid,
                  std::int64_t base_ns) {
  const auto kind = static_cast<EventKind>(
      ev.kind < kEventKindCount ? ev.kind : 0);
  out += "{\"ph\":\"";
  out += ev.dur_ns < 0 ? "i" : "X";
  out += "\",\"pid\":1,\"tid\":";
  out += std::to_string(tid);
  out += ",\"ts\":";
  append_us(out, ev.ts_ns - base_ns);
  if (ev.dur_ns >= 0) {
    out += ",\"dur\":";
    append_us(out, ev.dur_ns);
  } else {
    out += ",\"s\":\"t\"";  // instant scope: thread
  }
  out += ",\"name\":\"";
  out += event_name(kind);
  out += "\",\"cat\":\"";
  out += event_category(kind);
  out += "\",";
  append_args(out, ev);
  out.push_back('}');
}

}  // namespace

std::string chrome_trace_json(std::vector<RingSnapshot> rings) {
  std::sort(rings.begin(), rings.end(),
            [](const RingSnapshot& a, const RingSnapshot& b) {
              if (a.name != b.name) return a.name < b.name;
              return a.tid < b.tid;
            });

  std::int64_t base_ns = std::numeric_limits<std::int64_t>::max();
  for (const RingSnapshot& ring : rings)
    for (const TraceEvent& ev : ring.events) base_ns = std::min(base_ns, ev.ts_ns);
  if (base_ns == std::numeric_limits<std::int64_t>::max()) base_ns = 0;

  std::string out;
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  const auto sep = [&] {
    if (!first) out += ",\n";
    first = false;
  };

  sep();
  out += "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\","
         "\"args\":{\"name\":\"paracosm\"}}";

  // Lane metadata first so viewers label every thread row, then the events.
  for (const RingSnapshot& ring : rings) {
    sep();
    out += "{\"ph\":\"M\",\"pid\":1,\"tid\":";
    out += std::to_string(ring.tid);
    out += ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    append_escaped(out, ring.name.empty()
                            ? "thread " + std::to_string(ring.tid)
                            : ring.name);
    out += "\"}}";
  }
  for (const RingSnapshot& ring : rings) {
    for (const TraceEvent& ev : ring.events) {
      sep();
      append_event(out, ev, ring.tid, base_ns);
    }
    if (ring.dropped > 0) {
      // Overwritten-events marker so a truncated lane is visible in-trace.
      sep();
      out += "{\"ph\":\"i\",\"pid\":1,\"tid\":";
      out += std::to_string(ring.tid);
      out += ",\"ts\":0.000,\"s\":\"t\",\"name\":\"ring_dropped\","
             "\"cat\":\"obs\",\"args\":{\"dropped\":";
      out += std::to_string(ring.dropped);
      out += "}}";
    }
  }
  out += "\n]}\n";
  return out;
}

void write_chrome_trace(const std::string& path,
                        std::vector<RingSnapshot> rings) {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  if (!out) throw std::runtime_error("trace: cannot open '" + path + "'");
  const std::string json = chrome_trace_json(std::move(rings));
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  out.flush();
  if (!out) throw std::runtime_error("trace: write failed on '" + path + "'");
}

}  // namespace paracosm::obs
