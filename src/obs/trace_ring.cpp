#include "obs/trace_ring.hpp"

namespace paracosm::obs {

TraceRegistry& TraceRegistry::instance() {
  static TraceRegistry registry;
  return registry;
}

TraceRegistry::Entry* TraceRegistry::entry_for_this_thread() {
  // Cached per-thread entry pointer: one TLS load on the steady-state path.
  // NOTE: the registry is a process singleton, so a single cache is enough.
  static thread_local Entry* t_entry = nullptr;
  if (t_entry != nullptr) return t_entry;
  const std::lock_guard<std::mutex> lock(m_);
  auto entry = std::make_unique<Entry>();
  entry->tid = static_cast<std::uint32_t>(entries_.size());
  entry->ring = std::make_unique<TraceRing>(ring_capacity_);
  t_entry = entry.get();
  entries_.push_back(std::move(entry));
  return t_entry;
}

TraceRing& TraceRegistry::ring() { return *entry_for_this_thread()->ring; }

void TraceRegistry::set_thread_name(const std::string& name) {
  TraceRegistry& reg = instance();
  Entry* entry = reg.entry_for_this_thread();
  const std::lock_guard<std::mutex> lock(reg.m_);
  entry->name = name;
}

void TraceRegistry::set_ring_capacity(std::size_t capacity) {
  const std::lock_guard<std::mutex> lock(m_);
  ring_capacity_ = capacity;
}

std::vector<RingSnapshot> TraceRegistry::collect() const {
  const std::lock_guard<std::mutex> lock(m_);
  std::vector<RingSnapshot> out;
  out.reserve(entries_.size());
  for (const auto& entry : entries_) {
    RingSnapshot snap;
    snap.tid = entry->tid;
    snap.name = entry->name;
    entry->ring->snapshot(snap.events);
    snap.pushed = entry->ring->pushed();
    snap.dropped = entry->ring->dropped();
    out.push_back(std::move(snap));
  }
  return out;
}

void TraceRegistry::clear() {
  const std::lock_guard<std::mutex> lock(m_);
  for (const auto& entry : entries_) entry->ring->clear();
}

}  // namespace paracosm::obs
