// Event taxonomy of the always-on observability layer (DESIGN.md §8).
//
// Every instrumentation point in the engine maps to one EventKind. An event
// is either a *span* (has a duration: a classifier pass, a WAL fsync, one
// task expansion) or an *instant* (a steal, a prune, a watchdog firing).
// Events carry up to three 64/32-bit args whose meaning is per-kind; the
// Chrome-trace exporter names them via event_arg_names() so Perfetto shows
// "u=12" instead of "a=12".
//
// Kinds are split into two verbosity levels: level 1 covers everything with
// per-update or per-task granularity; level 2 adds the per-search-tree-node
// instants (backtrack enter/prune/emit), which can emit millions of events
// per second and are only worth paying for when zooming into a single search.
#pragma once

#include <array>
#include <cstdint>

namespace paracosm::obs {

enum class EventKind : std::uint32_t {
  kNone = 0,

  // Engine (per update / per batch).
  kUpdate,       ///< span: one update through process(); args op, u, v
  kSeedGen,      ///< span: root-task generation for an update; args u, v
  kClassify,     ///< span: one classifier pass; args verdict, u, v
  kBatch,        ///< span: batch classify + safe-apply phases; args index, size
  kSafeApply,    ///< instant: one safe update applied in a batch; args u, v
  kBatchBackend, ///< span: one backend classify pass; args backend (0 cpu /
                 ///< 1 wide), lanes, wide_resolved (0 for cpu)

  // Inner-update runtime (per task).
  kTaskExpand,   ///< span: one search task expanded by a worker; args depth
  kSteal,        ///< instant: successful Chase-Lev steal; args victim, thief,
                 ///< distance (0 SMT-local / 1 same-node / 2 remote)
  kResplit,      ///< instant: a subtree re-split onto the queue; args depth

  // Backtracking search (level 2: per search-tree node).
  kBacktrackEnter,  ///< instant: expand_depth entered; args depth
  kPrune,           ///< instant: candidate rejected by consistency; args depth
  kEmit,            ///< instant: full mapping emitted; args depth

  // Service layer (per update).
  kServiceUpdate,  ///< span: the pop->WAL->search pipeline; args seq, op
  kWalAppend,      ///< span: WAL record append; args seq
  kWalFsync,       ///< span: WAL stream flush
  kWatchdogFire,   ///< instant: deadline enforced; args epoch
  kMetricsFlush,   ///< span: periodic metrics snapshot written; args processed

  // Shared multi-query evaluation (per update / per class).
  kMultiClassify,  ///< span: shared classification of one update across all
                   ///< classes; args candidates, u, v
  kMultiSearch,    ///< span: one shared per-class search; args class, members,
                   ///< matches

  // Sharded operation (coordinator side, per request / per incident).
  kShardRequest,   ///< span: one request/ack round trip; args shard, seq, type
  kShardRetry,     ///< instant: a transport retry; args shard, seq, error
  kShardRestart,   ///< instant: supervised shard restart; args shard, restarts

  // Feedback control (DESIGN.md §13, per decision / per certified batch).
  kControlDecision, ///< instant: a controller republished a knob; args knob,
                    ///< from, to (knob ids in control/controller.hpp)
  kInvariantCert,   ///< instant: the aggregate invariant certified a whole
                    ///< batch ahead of the exact classifier; args lanes,
                    ///< inserts

  kCount
};

inline constexpr std::uint32_t kEventKindCount =
    static_cast<std::uint32_t>(EventKind::kCount);

/// Verbosity level an event kind belongs to (see file comment).
[[nodiscard]] constexpr int event_level(EventKind k) noexcept {
  switch (k) {
    case EventKind::kBacktrackEnter:
    case EventKind::kPrune:
    case EventKind::kEmit:
      return 2;
    default:
      return 1;
  }
}

/// Stable display name (Chrome trace "name" field).
[[nodiscard]] constexpr const char* event_name(EventKind k) noexcept {
  switch (k) {
    case EventKind::kNone: return "none";
    case EventKind::kUpdate: return "update";
    case EventKind::kSeedGen: return "seed_gen";
    case EventKind::kClassify: return "classify";
    case EventKind::kBatch: return "batch";
    case EventKind::kSafeApply: return "safe_apply";
    case EventKind::kBatchBackend: return "batch_backend";
    case EventKind::kTaskExpand: return "task";
    case EventKind::kSteal: return "steal";
    case EventKind::kResplit: return "resplit";
    case EventKind::kBacktrackEnter: return "bt_enter";
    case EventKind::kPrune: return "bt_prune";
    case EventKind::kEmit: return "bt_emit";
    case EventKind::kServiceUpdate: return "service_update";
    case EventKind::kWalAppend: return "wal_append";
    case EventKind::kWalFsync: return "wal_fsync";
    case EventKind::kWatchdogFire: return "watchdog_fire";
    case EventKind::kMetricsFlush: return "metrics_flush";
    case EventKind::kMultiClassify: return "multi_classify";
    case EventKind::kMultiSearch: return "multi_search";
    case EventKind::kShardRequest: return "shard_request";
    case EventKind::kShardRetry: return "shard_retry";
    case EventKind::kShardRestart: return "shard_restart";
    case EventKind::kControlDecision: return "control_decision";
    case EventKind::kInvariantCert: return "invariant_cert";
    case EventKind::kCount: break;
  }
  return "?";
}

/// Chrome trace "cat" field: the subsystem an event belongs to.
[[nodiscard]] constexpr const char* event_category(EventKind k) noexcept {
  switch (k) {
    case EventKind::kUpdate:
    case EventKind::kSeedGen:
    case EventKind::kBatch:
    case EventKind::kSafeApply:
      return "engine";
    case EventKind::kClassify:
    case EventKind::kBatchBackend:
    case EventKind::kMultiClassify:
      return "classifier";
    case EventKind::kMultiSearch:
      return "engine";
    case EventKind::kTaskExpand:
    case EventKind::kSteal:
    case EventKind::kResplit:
      return "sched";
    case EventKind::kBacktrackEnter:
    case EventKind::kPrune:
    case EventKind::kEmit:
      return "search";
    case EventKind::kServiceUpdate:
    case EventKind::kWalAppend:
    case EventKind::kWalFsync:
    case EventKind::kWatchdogFire:
    case EventKind::kMetricsFlush:
      return "service";
    case EventKind::kShardRequest:
    case EventKind::kShardRetry:
    case EventKind::kShardRestart:
      return "shard";
    case EventKind::kControlDecision:
      return "control";
    case EventKind::kInvariantCert:
      return "classifier";
    default:
      return "misc";
  }
}

/// Names of the (a, b, c) args for the exporter; nullptr = arg unused.
[[nodiscard]] constexpr std::array<const char*, 3> event_arg_names(
    EventKind k) noexcept {
  switch (k) {
    case EventKind::kUpdate: return {"op", "u", "v"};
    case EventKind::kSeedGen: return {"u", "v", nullptr};
    case EventKind::kClassify: return {"verdict", "u", "v"};
    case EventKind::kBatch: return {"index", "size", "safe_prefix"};
    case EventKind::kSafeApply: return {"u", "v", nullptr};
    case EventKind::kBatchBackend: return {"backend", "lanes", "wide_resolved"};
    case EventKind::kTaskExpand: return {"depth", nullptr, nullptr};
    case EventKind::kSteal: return {"victim", "thief", "distance"};
    case EventKind::kResplit: return {"depth", nullptr, nullptr};
    case EventKind::kBacktrackEnter: return {"depth", nullptr, nullptr};
    case EventKind::kPrune: return {"depth", nullptr, nullptr};
    case EventKind::kEmit: return {"depth", nullptr, nullptr};
    case EventKind::kServiceUpdate: return {"seq", "op", nullptr};
    case EventKind::kWalAppend: return {"seq", nullptr, nullptr};
    case EventKind::kWalFsync: return {nullptr, nullptr, nullptr};
    case EventKind::kWatchdogFire: return {"epoch", nullptr, nullptr};
    case EventKind::kMetricsFlush: return {"processed", nullptr, nullptr};
    case EventKind::kMultiClassify: return {"candidates", "u", "v"};
    case EventKind::kMultiSearch: return {"class", "members", "matches"};
    case EventKind::kShardRequest: return {"shard", "seq", "type"};
    case EventKind::kShardRetry: return {"shard", "seq", "error"};
    case EventKind::kShardRestart: return {"shard", "restarts", nullptr};
    case EventKind::kControlDecision: return {"knob", "from", "to"};
    case EventKind::kInvariantCert: return {"lanes", "inserts", nullptr};
    default: return {"a", "b", "c"};
  }
}

}  // namespace paracosm::obs
