// Flat metrics snapshot exporter (DESIGN.md §8): named counters plus
// histogram summaries, serialized as JSON or CSV. Used by `paracosm_serve
// --metrics-out`, the in-service periodic flusher, and bench_baseline.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/histogram.hpp"

namespace paracosm::obs {

/// One flat snapshot. Entries keep insertion order so output is deterministic
/// for a fixed recording sequence.
class MetricsSnapshot {
 public:
  void add_counter(const std::string& name, std::int64_t value);
  void add_gauge(const std::string& name, double value);
  /// Expands to <name>.count/.mean/.min/.p50/.p95/.p99/.p999/.max entries.
  void add_histogram(const std::string& name, const Histogram& hist);

  [[nodiscard]] std::string to_json() const;
  [[nodiscard]] std::string to_csv() const;

  /// Write to `path`; format chosen by extension (".csv" -> CSV, else JSON).
  /// Writes to a temp file then renames, so readers never see a torn
  /// snapshot. Throws std::runtime_error on I/O failure.
  void write(const std::string& path) const;

  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }

 private:
  struct Entry {
    std::string name;
    bool is_float = false;
    std::int64_t int_value = 0;
    double float_value = 0.0;
  };
  std::vector<Entry> entries_;
};

}  // namespace paracosm::obs
