// Chrome trace_event JSON exporter: one lane per traced thread, loadable in
// Perfetto / chrome://tracing (DESIGN.md §8, README "Profiling a run").
//
// Serialization is deterministic and byte-stable for a fixed event sequence:
// lanes are sorted by (name, tid), events keep ring order (per-thread epoch
// order), timestamps are rebased to the earliest event and printed as
// microseconds with exactly three decimals via integer math — no
// double-formatting in the output path. The golden-file schema test in
// tests/test_trace_ring.cpp pins the exact bytes.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "obs/trace_ring.hpp"

namespace paracosm::obs {

/// Serialize collected lanes as Chrome trace JSON.
[[nodiscard]] std::string chrome_trace_json(std::vector<RingSnapshot> rings);

/// Write chrome_trace_json() to `path`; throws std::runtime_error on I/O
/// failure.
void write_chrome_trace(const std::string& path,
                        std::vector<RingSnapshot> rings);

}  // namespace paracosm::obs
