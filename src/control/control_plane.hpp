// The feedback loop (DESIGN.md §13): SignalBus epochs -> per-knob AIMD
// controllers -> TuningView publishes, with every decision recorded in a
// bounded log, counted in ControlStats, and emitted as a kControlDecision
// trace instant.
//
// ControlPlane is the engine-side loop: attach one to a ParaCosm via
// attach_control() and the engine posts a BatchSample per batch and a
// SearchSample per parallel unsafe search; every `epoch_batches` batches the
// plane drains the bus and steps three controllers:
//
//   batch cut      — signal: epoch safe-lane ratio (certified batches count
//                    as fully safe, feeding the invariant-stage hit rate back
//                    into the cut). Safe-heavy epochs grow k multiplicatively
//                    (amortize per-batch fixed costs); unsafe-heavy epochs
//                    shrink it (a large k wastes O(k) classification per
//                    ~1 update advanced once batches defer after an unsafe).
//   split depth    — signal: normalized worker imbalance of the epoch's
//                    parallel searches. High imbalance grows SPLIT_DEPTH
//                    (more, finer subtasks); balanced epochs whose offload
//                    overhead is high shrink it.
//   wide cutoff    — signal: relative EWMA classify cost per lane of the two
//                    backends (meaningful under BatchBackendKind::kAuto).
//                    One-sided routing would starve the comparison forever,
//                    so a streak of all-wide / all-cpu epochs triggers an
//                    exploration probe toward the unsampled backend.
//
// AdmissionController is the service-side loop over the ingest degrade
// watermark: latency/queue pressure shrinks the watermark (degrade earlier,
// shed load from the delivery path), calm windows grow it back toward
// capacity. ΔM counts stay exact either way — degradation only suppresses
// per-mapping delivery (DESIGN.md §7).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "control/controller.hpp"
#include "control/signals.hpp"
#include "control/tuning.hpp"

namespace paracosm::control {

struct DecisionRecord {
  std::uint64_t epoch = 0;
  Knob knob = Knob::kSplitDepth;
  std::uint32_t from = 0;
  std::uint32_t to = 0;
};

[[nodiscard]] ControllerConfig default_batch_policy() noexcept;
[[nodiscard]] ControllerConfig default_split_policy() noexcept;
[[nodiscard]] ControllerConfig default_wide_policy() noexcept;
[[nodiscard]] ControllerConfig default_admission_policy(
    std::uint32_t capacity) noexcept;

struct ControlPlaneOptions {
  std::uint32_t epoch_batches = 8;  ///< engine batches per control epoch
  bool adapt_batch_size = true;
  bool adapt_split_depth = true;
  bool adapt_wide_cutoff = true;
  ControllerConfig batch_policy = default_batch_policy();
  ControllerConfig split_policy = default_split_policy();
  ControllerConfig wide_policy = default_wide_policy();
  /// Balanced epochs shrink split depth only above this offloads-per-task
  /// overhead — splitting that isn't hurting is left alone.
  double offload_overhead = 0.5;
  /// Work floor for the split controller: epochs whose mean per-search
  /// worker CPU time is below this have nothing worth splitting, so their
  /// (artifactual) imbalance reading is overridden with a shrink signal —
  /// finer subtasks on micro-searches are pure queue overhead. 0 disables
  /// the floor.
  std::int64_t min_search_busy_ns = 20'000;
  /// EWMA smoothing of the per-backend cost estimates, in [0, 1].
  double cost_alpha = 0.3;
  /// Backend exploration: the cost signal needs samples from BOTH backends,
  /// but a cutoff that routes every batch one way starves the other side of
  /// samples forever (all-wide at the default cutoff is the common case).
  /// After this many consecutive one-sided epochs the plane probes by
  /// stepping the cutoff toward the unsampled backend — shrink when
  /// everything goes wide, grow when everything goes cpu — until routing
  /// mixes and the genuine cost comparison takes over. 0 disables probing.
  std::uint32_t explore_epochs = 4;
  std::size_t max_decision_log = 4096;
};

class ControlPlane {
 public:
  /// Initial knob values are read from `tuning` (i.e. from the engine's
  /// Config); the plane publishes back into the same view.
  explicit ControlPlane(TuningView& tuning, ControlPlaneOptions opts = {});

  // Engine taps (engine consumer thread only).
  void on_batch(const BatchSample& s);
  void on_search(const SearchSample& s);

  /// Close a partial epoch (stream end); no-op when nothing accumulated.
  void flush();

  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }
  [[nodiscard]] const std::vector<DecisionRecord>& decisions() const noexcept {
    return log_;
  }
  [[nodiscard]] const SignalSnapshot& last_snapshot() const noexcept {
    return last_;
  }
  /// Aggregate over the three controllers.
  [[nodiscard]] ControlStats stats() const noexcept;
  [[nodiscard]] const AimdController& batch_controller() const noexcept {
    return batch_ctl_;
  }
  [[nodiscard]] const AimdController& split_controller() const noexcept {
    return split_ctl_;
  }
  [[nodiscard]] const AimdController& wide_controller() const noexcept {
    return wide_ctl_;
  }

 private:
  void tick();
  void apply(const Decision& d);

  TuningView& tuning_;
  ControlPlaneOptions opts_;
  SignalBus bus_;
  AimdController batch_ctl_;
  AimdController split_ctl_;
  AimdController wide_ctl_;
  std::uint64_t epoch_ = 0;
  std::uint32_t batches_in_epoch_ = 0;
  double cpu_ns_per_lane_ = 0.0;   // 0 = no sample yet
  double wide_ns_per_lane_ = 0.0;  // 0 = no sample yet
  std::uint32_t wide_only_ = 0;    // consecutive epochs routed 100% wide
  std::uint32_t cpu_only_ = 0;     // consecutive epochs routed 100% cpu
  SignalSnapshot last_;
  std::vector<DecisionRecord> log_;
};

struct AdmissionOptions {
  /// Custom step policy; max_value == 0 (the default) means "derive from the
  /// queue capacity via default_admission_policy()".
  ControllerConfig policy;
  std::int64_t p99_target_ns = 5'000'000;
  AdmissionOptions() { policy.max_value = 0; }
};

class AdmissionController {
 public:
  /// Starts with the watermark at capacity (degrade only when full — the
  /// static kDegrade behaviour) and adapts from there.
  AdmissionController(std::uint32_t queue_capacity, AdmissionOptions opts);

  /// One control window; returns the (possibly unchanged) watermark decision.
  Decision step(const ServiceSample& s);

  [[nodiscard]] std::uint32_t watermark() const noexcept { return ctl_.value(); }
  [[nodiscard]] const ControlStats& stats() const noexcept {
    return ctl_.stats();
  }
  [[nodiscard]] const std::vector<DecisionRecord>& decisions() const noexcept {
    return log_;
  }

 private:
  AimdController ctl_;
  std::int64_t target_ns_;
  std::uint64_t epoch_ = 0;
  std::vector<DecisionRecord> log_;
};

}  // namespace paracosm::control
