// Epoch-published view of the engine's adaptable knobs (DESIGN.md §13).
//
// Config values are copied into a TuningView at engine construction; every
// consumer of an *adaptable* knob reads the view, never Config, so a knob
// republished mid-stream takes effect at the next batch boundary (batch cut,
// backend cutoff) or the next parallel search (split depth). This is the fix
// for the old behaviour where Config was baked into the executors' members
// and silently ignored later mutation.
//
// Concurrency contract: knobs are relaxed atomics. There is exactly one
// publisher (the control plane, ticking on the engine's consumer thread) and
// readers only ever see some recently-published value — torn reads are
// impossible (single word) and staleness is bounded by one batch. version()
// increments on every publish so tests can assert a knob change was actually
// routed through the view.
#pragma once

#include <atomic>
#include <cstdint>

namespace paracosm::control {

class TuningView {
 public:
  TuningView() = default;
  TuningView(std::uint32_t split_depth, std::uint32_t batch_size,
             std::uint32_t wide_auto_cutoff) noexcept
      : split_depth_(split_depth),
        batch_size_(batch_size),
        wide_auto_cutoff_(wide_auto_cutoff) {}

  TuningView(const TuningView&) = delete;
  TuningView& operator=(const TuningView&) = delete;

  [[nodiscard]] std::uint32_t split_depth() const noexcept {
    return split_depth_.load(std::memory_order_relaxed);
  }
  void set_split_depth(std::uint32_t v) noexcept {
    split_depth_.store(v, std::memory_order_relaxed);
    bump();
  }

  /// Updates per inter-update batch; 0 keeps Config's "same as threads".
  [[nodiscard]] std::uint32_t batch_size() const noexcept {
    return batch_size_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint32_t effective_batch_size(
      std::uint32_t threads) const noexcept {
    const std::uint32_t v = batch_size();
    return v != 0 ? v : (threads != 0 ? threads : 1);
  }
  void set_batch_size(std::uint32_t v) noexcept {
    batch_size_.store(v, std::memory_order_relaxed);
    bump();
  }

  [[nodiscard]] std::uint32_t wide_auto_cutoff() const noexcept {
    return wide_auto_cutoff_.load(std::memory_order_relaxed);
  }
  void set_wide_auto_cutoff(std::uint32_t v) noexcept {
    wide_auto_cutoff_.store(v, std::memory_order_relaxed);
    bump();
  }

  /// Number of publishes since construction.
  [[nodiscard]] std::uint64_t version() const noexcept {
    return version_.load(std::memory_order_relaxed);
  }

 private:
  void bump() noexcept { version_.fetch_add(1, std::memory_order_relaxed); }

  std::atomic<std::uint32_t> split_depth_{4};
  std::atomic<std::uint32_t> batch_size_{0};
  std::atomic<std::uint32_t> wide_auto_cutoff_{512};
  std::atomic<std::uint64_t> version_{0};
};

}  // namespace paracosm::control
