#include "control/control_plane.hpp"

#include <algorithm>

#include "obs/trace_ring.hpp"

namespace paracosm::control {

ControllerConfig default_batch_policy() noexcept {
  ControllerConfig c;
  // Signal: epoch safe-lane ratio. Streams are typically >90% safe, so the
  // band sits high: sustained unsafe pressure cuts the batch fast (MD 1/4),
  // a clean epoch reopens it by doubling.
  c.lo = 0.55;
  c.hi = 0.90;
  c.min_value = 2;
  c.max_value = 1024;
  c.cooldown = 1;
  c.grow_add = 2;
  c.grow_mul = 2.0;
  c.shrink_mul = 0.25;
  return c;
}

ControllerConfig default_split_policy() noexcept {
  ControllerConfig c;
  // Signal: normalized worker imbalance in [0, 1]. Steps are additive both
  // ways (depth is a log-scale knob already) with a longer cooldown — depth
  // changes take a few searches to show up in the signal. The floor is 1,
  // not 0: with one seed task per update, all inner parallelism comes from
  // splitting, so depth 0 would serialize every search — a policy knob must
  // not be able to turn the executor off.
  c.lo = 0.20;
  c.hi = 0.55;
  c.min_value = 1;
  c.max_value = 16;
  c.cooldown = 2;
  c.grow_add = 1;
  c.grow_mul = 1.0;
  c.shrink_mul = 0.65;  // 1 step down at small depths (floor), faster high up
  return c;
}

ControllerConfig default_wide_policy() noexcept {
  ControllerConfig c;
  // Signal: cpu_cost / (cpu_cost + wide_cost) per classified lane. 0.5 means
  // the backends tie; the wide band keeps routing sticky near the tie. The
  // floor is 0 — "never route wide" is a legitimate operating point (cutoff 0
  // sends every batch to the cpu backend), and exploration grows it back if
  // the wide side later looks cheap.
  c.lo = 0.35;
  c.hi = 0.65;
  c.min_value = 0;
  c.max_value = 4096;
  c.cooldown = 2;
  c.grow_add = 8;
  c.grow_mul = 1.5;
  c.shrink_mul = 0.5;
  return c;
}

ControllerConfig default_admission_policy(std::uint32_t capacity) noexcept {
  ControllerConfig c;
  // Signal: 1 - pressure, so calm windows (signal high) grow the watermark
  // toward capacity and overload shrinks it multiplicatively.
  c.lo = 0.30;
  c.hi = 0.70;
  c.min_value = std::max<std::uint32_t>(1, capacity / 16);
  c.max_value = std::max<std::uint32_t>(1, capacity);
  c.cooldown = 1;
  c.grow_add = std::max<std::uint32_t>(1, capacity / 8);
  c.grow_mul = 1.0;
  c.shrink_mul = 0.5;
  return c;
}

ControlPlane::ControlPlane(TuningView& tuning, ControlPlaneOptions opts)
    : tuning_(tuning),
      opts_(opts),
      batch_ctl_(Knob::kBatchSize, opts.batch_policy,
                 tuning.effective_batch_size(1)),
      split_ctl_(Knob::kSplitDepth, opts.split_policy, tuning.split_depth()),
      wide_ctl_(Knob::kWideCutoff, opts.wide_policy, tuning.wide_auto_cutoff()) {
  if (opts_.epoch_batches == 0) opts_.epoch_batches = 1;
}

void ControlPlane::on_batch(const BatchSample& s) {
  bus_.on_batch(s);
  if (++batches_in_epoch_ >= opts_.epoch_batches) tick();
}

void ControlPlane::on_search(const SearchSample& s) { bus_.on_search(s); }

void ControlPlane::flush() {
  if (batches_in_epoch_ > 0) tick();
}

ControlStats ControlPlane::stats() const noexcept {
  ControlStats s = batch_ctl_.stats();
  s.merge(split_ctl_.stats());
  s.merge(wide_ctl_.stats());
  // epochs is per-controller; report plane epochs, not the 3x sum.
  s.epochs = epoch_;
  return s;
}

void ControlPlane::apply(const Decision& d) {
  if (!d.changed) return;
  switch (d.knob) {
    case Knob::kBatchSize: tuning_.set_batch_size(d.to); break;
    case Knob::kSplitDepth: tuning_.set_split_depth(d.to); break;
    case Knob::kWideCutoff: tuning_.set_wide_auto_cutoff(d.to); break;
    case Knob::kDegradeWatermark: break;  // service-side knob, not ours
  }
  if (log_.size() < opts_.max_decision_log)
    log_.push_back({epoch_, d.knob, d.from, d.to});
  PARACOSM_TRACE_INSTANT(obs::EventKind::kControlDecision,
                         static_cast<std::uint64_t>(d.knob), d.from, d.to);
}

void ControlPlane::tick() {
  ++epoch_;
  batches_in_epoch_ = 0;
  const SignalSnapshot s = bus_.drain(epoch_);
  last_ = s;

  if (opts_.adapt_batch_size && s.lanes > 0) {
    // Certified batches are proof the whole region is safe regardless of the
    // per-lane tallies — the invariant-stage hit rate accelerates the reopen.
    double sig = s.safe_ratio();
    if (s.certified_ratio() >= 0.5) sig = 1.0;
    apply(batch_ctl_.step(sig));
  }

  if (opts_.adapt_split_depth && s.searches > 0 && s.workers > 1 &&
      s.imbalance_den_ns > 0) {
    const double norm =
        (s.imbalance() - 1.0) / static_cast<double>(s.workers - 1);
    double sig = std::clamp(norm, 0.0, 1.0);
    // Balanced epochs only shrink when re-splitting overhead is material.
    if (sig < opts_.split_policy.lo && s.offload_ratio() <= opts_.offload_overhead)
      sig = (opts_.split_policy.lo + opts_.split_policy.hi) / 2.0;  // hold
    // Work floor: searches too small to amortize a task handoff read as
    // maximally imbalanced (one worker, one indivisible task), but deeper
    // splitting can only add overhead there — override with a shrink signal.
    if (opts_.min_search_busy_ns > 0 &&
        s.mean_search_busy_ns() < opts_.min_search_busy_ns)
      sig = 0.0;
    apply(split_ctl_.step(sig));
  }

  if (opts_.adapt_wide_cutoff) {
    const double a = std::clamp(opts_.cost_alpha, 0.0, 1.0);
    if (s.cpu_lanes > 0) {
      const double cost =
          static_cast<double>(s.cpu_ns) / static_cast<double>(s.cpu_lanes);
      cpu_ns_per_lane_ =
          cpu_ns_per_lane_ == 0.0 ? cost : a * cost + (1.0 - a) * cpu_ns_per_lane_;
    }
    if (s.wide_lanes > 0) {
      const double cost =
          static_cast<double>(s.wide_ns) / static_cast<double>(s.wide_lanes);
      wide_ns_per_lane_ = wide_ns_per_lane_ == 0.0
                              ? cost
                              : a * cost + (1.0 - a) * wide_ns_per_lane_;
    }
    if (s.wide_lanes > 0 && s.cpu_lanes == 0) {
      ++wide_only_;
      cpu_only_ = 0;
    } else if (s.cpu_lanes > 0 && s.wide_lanes == 0) {
      ++cpu_only_;
      wide_only_ = 0;
    } else if (s.cpu_lanes > 0 || s.wide_lanes > 0) {
      wide_only_ = cpu_only_ = 0;
    }
    if (opts_.explore_epochs > 0 && (wide_only_ >= opts_.explore_epochs ||
                                     cpu_only_ >= opts_.explore_epochs)) {
      // One-sided routing starves the cost comparison (the unsampled backend
      // never updates its EWMA), so no genuine signal can ever move the
      // cutoff. Probe: force one step toward the starved side and re-arm.
      const double sig = wide_only_ >= opts_.explore_epochs ? 0.0 : 1.0;
      wide_only_ = cpu_only_ = 0;
      apply(wide_ctl_.step(sig));
    } else if (cpu_ns_per_lane_ > 0.0 && wide_ns_per_lane_ > 0.0) {
      const double sig =
          cpu_ns_per_lane_ / (cpu_ns_per_lane_ + wide_ns_per_lane_);
      apply(wide_ctl_.step(sig));
    }
  }
}

AdmissionController::AdmissionController(std::uint32_t queue_capacity,
                                         AdmissionOptions opts)
    : ctl_(Knob::kDegradeWatermark,
           opts.policy.max_value != 0 ? opts.policy
                                      : default_admission_policy(queue_capacity),
           std::max<std::uint32_t>(1, queue_capacity)),
      target_ns_(opts.p99_target_ns > 0 ? opts.p99_target_ns : 5'000'000) {}

Decision AdmissionController::step(const ServiceSample& s) {
  ++epoch_;
  const double depth = s.queue_capacity == 0
                           ? 0.0
                           : static_cast<double>(s.queue_depth) /
                                 static_cast<double>(s.queue_capacity);
  const std::int64_t target = s.target_ns > 0 ? s.target_ns : target_ns_;
  const double lat = target <= 0 ? 0.0
                                 : std::min(1.0, static_cast<double>(s.p99_ns) /
                                                     static_cast<double>(target));
  const double pressure = std::max(depth, lat);
  const Decision d = ctl_.step(1.0 - pressure);
  if (d.changed) {
    log_.push_back({epoch_, d.knob, d.from, d.to});
    PARACOSM_TRACE_INSTANT(obs::EventKind::kControlDecision,
                           static_cast<std::uint64_t>(d.knob), d.from, d.to);
  }
  return d;
}

}  // namespace paracosm::control
