// Per-knob feedback controllers: hysteresis + AIMD step policies with
// clamped ranges and cooldowns (DESIGN.md §13).
//
// A controller is a pure function of its scripted signal trace: step() takes
// one [0, 1] signal per control epoch and returns at most one knob movement.
// No threads, no clocks, no randomness — tests/test_control.cpp drives the
// exact production objects with synthetic traces.
//
// Semantics of one step:
//   signal >  hi  -> grow   (additive/multiplicative increase, AI)
//   signal <  lo  -> shrink (multiplicative decrease, MD)
//   otherwise     -> hold   (the hysteresis band)
// A decision starts a cooldown of `cooldown` epochs during which further
// out-of-band signals are counted (cooldown_suppressed) but not acted on —
// the anti-oscillation guard. Steps that would leave [min_value, max_value]
// clamp and count instead of moving, so a saturated controller is quiescent.
//
// Stability argument (the "no limit cycle" property the tests pin): for any
// *constant* signal the value sequence is monotone until it reaches the band
// or a clamp and is then constant forever; for any signal the number of
// decisions in N epochs is at most ceil(N / (cooldown + 1)).
#pragma once

#include <cstdint>
#include <string_view>

namespace paracosm::control {

/// Knob identity — the `knob` arg of kControlDecision trace events.
enum class Knob : std::uint8_t {
  kSplitDepth = 0,
  kBatchSize = 1,
  kWideCutoff = 2,
  kDegradeWatermark = 3,
};

[[nodiscard]] constexpr std::string_view knob_name(Knob k) noexcept {
  switch (k) {
    case Knob::kSplitDepth: return "split_depth";
    case Knob::kBatchSize: return "batch_size";
    case Knob::kWideCutoff: return "wide_auto_cutoff";
    case Knob::kDegradeWatermark: return "degrade_watermark";
  }
  return "?";
}

struct ControllerConfig {
  double lo = 0.35;  ///< hysteresis band lower edge (shrink below)
  double hi = 0.65;  ///< hysteresis band upper edge (grow above)
  std::uint32_t min_value = 1;
  std::uint32_t max_value = 1024;
  std::uint32_t cooldown = 2;  ///< quiescent epochs after a decision
  std::uint32_t grow_add = 1;  ///< additive increase step
  double grow_mul = 1.0;       ///< optional multiplicative increase (>= 1)
  double shrink_mul = 0.5;     ///< multiplicative decrease factor (< 1)
};

/// Counter block exported to bench JSON / metrics snapshots.
struct ControlStats {
  std::uint64_t epochs = 0;
  std::uint64_t decisions = 0;
  std::uint64_t grows = 0;
  std::uint64_t shrinks = 0;
  std::uint64_t clamped = 0;              ///< steps absorbed by min/max
  std::uint64_t cooldown_suppressed = 0;  ///< steps absorbed by a cooldown
  std::uint64_t in_band = 0;              ///< epochs inside the hysteresis band

  void merge(const ControlStats& other) noexcept {
    epochs += other.epochs;
    decisions += other.decisions;
    grows += other.grows;
    shrinks += other.shrinks;
    clamped += other.clamped;
    cooldown_suppressed += other.cooldown_suppressed;
    in_band += other.in_band;
  }
};

/// Outcome of one controller step.
struct Decision {
  bool changed = false;
  Knob knob = Knob::kSplitDepth;
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  bool grew = false;
};

class AimdController {
 public:
  AimdController(Knob knob, ControllerConfig cfg, std::uint32_t initial) noexcept;

  /// One control epoch; `signal` is clamped into [0, 1].
  Decision step(double signal) noexcept;

  [[nodiscard]] std::uint32_t value() const noexcept { return value_; }
  [[nodiscard]] Knob knob() const noexcept { return knob_; }
  [[nodiscard]] const ControllerConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const ControlStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::uint32_t cooldown_remaining() const noexcept {
    return cooldown_left_;
  }

 private:
  [[nodiscard]] std::uint32_t grown() const noexcept;
  [[nodiscard]] std::uint32_t shrunk() const noexcept;

  Knob knob_;
  ControllerConfig cfg_;
  std::uint32_t value_;
  std::uint32_t cooldown_left_ = 0;
  ControlStats stats_;
};

}  // namespace paracosm::control
