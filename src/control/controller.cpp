#include "control/controller.hpp"

#include <algorithm>
#include <cmath>

namespace paracosm::control {

AimdController::AimdController(Knob knob, ControllerConfig cfg,
                               std::uint32_t initial) noexcept
    : knob_(knob), cfg_(cfg) {
  value_ = std::clamp(initial, cfg_.min_value, cfg_.max_value);
}

std::uint32_t AimdController::grown() const noexcept {
  const double scaled = static_cast<double>(value_) * std::max(1.0, cfg_.grow_mul);
  const std::uint64_t mul = static_cast<std::uint64_t>(std::llround(scaled));
  const std::uint64_t add = static_cast<std::uint64_t>(value_) + cfg_.grow_add;
  const std::uint64_t next = std::max(mul, add);
  return static_cast<std::uint32_t>(
      std::min<std::uint64_t>(next, cfg_.max_value));
}

std::uint32_t AimdController::shrunk() const noexcept {
  const double scaled = static_cast<double>(value_) * cfg_.shrink_mul;
  std::uint32_t next = static_cast<std::uint32_t>(scaled);  // floor
  if (next >= value_ && value_ > 0) next = value_ - 1;  // strict decrease
  return std::max(next, cfg_.min_value);
}

Decision AimdController::step(double signal) noexcept {
  ++stats_.epochs;
  signal = std::clamp(signal, 0.0, 1.0);

  Decision d;
  d.knob = knob_;
  d.from = d.to = value_;

  const bool wants_grow = signal > cfg_.hi;
  const bool wants_shrink = signal < cfg_.lo;
  if (!wants_grow && !wants_shrink) {
    ++stats_.in_band;
    if (cooldown_left_ > 0) --cooldown_left_;
    return d;
  }
  if (cooldown_left_ > 0) {
    --cooldown_left_;
    ++stats_.cooldown_suppressed;
    return d;
  }

  const std::uint32_t next = wants_grow ? grown() : shrunk();
  if (next == value_) {
    ++stats_.clamped;  // saturated at min/max: quiescent, no cooldown restart
    return d;
  }

  d.changed = true;
  d.grew = wants_grow;
  d.to = next;
  value_ = next;
  cooldown_left_ = cfg_.cooldown;
  ++stats_.decisions;
  if (wants_grow)
    ++stats_.grows;
  else
    ++stats_.shrinks;
  return d;
}

}  // namespace paracosm::control
