// Signal taps between the engine/service and the per-knob controllers
// (DESIGN.md §13).
//
// The engine posts one BatchSample per inter-update batch and one
// SearchSample per parallel unsafe-update search; the service posts
// ServiceSamples from its consumer loop. The SignalBus accumulates them and
// drains into a fixed-size SignalSnapshot once per control epoch — the
// controllers never see raw samples, only epoch aggregates, which is what
// makes the control loop a pure function of the (snapshot sequence, policy)
// pair and hence deterministically testable.
#pragma once

#include <cstdint>

namespace paracosm::control {

/// One inter-update batch through ParaCosm::process_stream.
struct BatchSample {
  std::uint32_t lanes = 0;        ///< updates classified in the batch
  std::uint32_t safe_prefix = 0;  ///< updates applied in parallel
  bool hit_unsafe = false;        ///< batch ended at an unsafe update
  bool certified = false;         ///< aggregate invariant certified the batch
  bool wide_backend = false;      ///< classified by the wide backend
  std::int64_t classify_ns = 0;   ///< classify + safe-apply wall time
  std::int64_t batch_ns = 0;      ///< whole batch incl. the sequential update
};

/// One unsafe update's parallel search (the inner executor run).
struct SearchSample {
  std::uint32_t workers = 1;
  std::uint64_t tasks = 0;
  std::uint64_t offloads = 0;
  std::uint64_t steals_local = 0;
  std::uint64_t steals_same_node = 0;
  std::uint64_t steals_remote = 0;
  std::int64_t max_busy_ns = 0;    ///< slowest worker's CPU time
  std::int64_t total_busy_ns = 0;  ///< all workers' CPU time
};

/// Service-consumer pressure reading (one control window).
struct ServiceSample {
  std::uint64_t queue_depth = 0;
  std::uint64_t queue_capacity = 1;
  std::uint64_t degraded = 0;  ///< degraded admissions in the window
  std::uint64_t shed = 0;      ///< shed pushes in the window
  std::int64_t p99_ns = 0;     ///< window p99 end-to-end latency
  std::int64_t target_ns = 0;  ///< latency target (0 = none)
};

/// Fixed-size per-epoch aggregate of the engine-side signals.
struct SignalSnapshot {
  std::uint64_t epoch = 0;

  // Batch executor.
  std::uint32_t batches = 0;
  std::uint64_t lanes = 0;
  std::uint64_t safe_lanes = 0;
  std::uint32_t certified_batches = 0;
  std::uint32_t unsafe_hits = 0;

  // Backend cost accounting (classify + safe-apply, per backend).
  std::uint64_t cpu_lanes = 0;
  std::uint64_t wide_lanes = 0;
  std::int64_t cpu_ns = 0;
  std::int64_t wide_ns = 0;

  // Parallel searches.
  std::uint32_t workers = 1;
  std::uint64_t searches = 0;
  std::uint64_t tasks = 0;
  std::uint64_t offloads = 0;
  std::uint64_t steals_local = 0;
  std::uint64_t steals_same_node = 0;
  std::uint64_t steals_remote = 0;
  /// Sum over searches of max_busy_ns * workers (imbalance numerator) and of
  /// total_busy_ns (denominator): imbalance() == 1 means perfectly even.
  std::int64_t imbalance_num_ns = 0;
  std::int64_t imbalance_den_ns = 0;

  [[nodiscard]] double safe_ratio() const noexcept {
    return lanes == 0 ? 1.0
                      : static_cast<double>(safe_lanes) /
                            static_cast<double>(lanes);
  }
  [[nodiscard]] double certified_ratio() const noexcept {
    return batches == 0 ? 0.0
                        : static_cast<double>(certified_batches) /
                              static_cast<double>(batches);
  }
  /// >= 1; ratio of the critical path to the mean worker busy time.
  [[nodiscard]] double imbalance() const noexcept {
    return imbalance_den_ns <= 0 ? 1.0
                                 : static_cast<double>(imbalance_num_ns) /
                                       static_cast<double>(imbalance_den_ns);
  }
  [[nodiscard]] double offload_ratio() const noexcept {
    return tasks == 0 ? 0.0
                      : static_cast<double>(offloads) /
                            static_cast<double>(tasks);
  }
  /// Mean worker CPU time per parallel search — how much work there was to
  /// split. The split controller treats epochs below its work floor as
  /// overhead-dominated: imbalance measured on indivisible micro-searches is
  /// an artifact (one tiny task on one worker), not evidence for more
  /// splitting.
  [[nodiscard]] std::int64_t mean_search_busy_ns() const noexcept {
    return searches == 0 ? 0
                         : imbalance_den_ns /
                               static_cast<std::int64_t>(searches);
  }
};

/// Accumulates samples between epoch boundaries. Single-writer: every tap
/// fires on the engine's consumer thread.
class SignalBus {
 public:
  void on_batch(const BatchSample& s) noexcept {
    ++cur_.batches;
    cur_.lanes += s.lanes;
    cur_.safe_lanes += s.safe_prefix;
    if (s.certified) ++cur_.certified_batches;
    if (s.hit_unsafe) ++cur_.unsafe_hits;
    if (s.wide_backend) {
      cur_.wide_lanes += s.lanes;
      cur_.wide_ns += s.classify_ns;
    } else {
      cur_.cpu_lanes += s.lanes;
      cur_.cpu_ns += s.classify_ns;
    }
  }

  void on_search(const SearchSample& s) noexcept {
    ++cur_.searches;
    cur_.workers = s.workers > cur_.workers ? s.workers : cur_.workers;
    cur_.tasks += s.tasks;
    cur_.offloads += s.offloads;
    cur_.steals_local += s.steals_local;
    cur_.steals_same_node += s.steals_same_node;
    cur_.steals_remote += s.steals_remote;
    cur_.imbalance_num_ns +=
        s.max_busy_ns * static_cast<std::int64_t>(s.workers);
    cur_.imbalance_den_ns += s.total_busy_ns;
  }

  [[nodiscard]] const SignalSnapshot& pending() const noexcept { return cur_; }

  /// Close the epoch: returns the aggregate and resets the accumulator.
  [[nodiscard]] SignalSnapshot drain(std::uint64_t epoch) noexcept {
    SignalSnapshot out = cur_;
    out.epoch = epoch;
    cur_ = SignalSnapshot{};
    return out;
  }

 private:
  SignalSnapshot cur_;
};

}  // namespace paracosm::control
