// Chase–Lev work-stealing deque (Chase & Lev, SPAA'05) in the weak-memory
// formulation of Lê, Pop, Cohen & Zappa Nardelli (PPoPP'13), restricted to
// pointer-sized elements.
//
// Ownership protocol: exactly one thread (the owner) calls push_bottom /
// pop_bottom; any thread may call steal_top. The owner operates LIFO on the
// bottom (deepest subtree first, cache-hot), thieves FIFO on the top
// (shallowest, i.e. largest, subtrees first) — the task-granularity property
// work stealing depends on.
//
// Memory-ordering argument (see also DESIGN.md §5):
//   * push_bottom publishes the slot with a relaxed store and then the new
//     bottom with a release store; a thief's acquire load of bottom therefore
//     observes the slot contents (release/acquire pair on `bottom_`).
//   * pop_bottom decrements bottom with a seq_cst store and then loads top
//     seq_cst: the store;load pair needs a StoreLoad barrier so the owner and
//     a racing thief cannot both observe "one element left and the other side
//     hasn't claimed it". We use seq_cst operations instead of the paper's
//     standalone fences because ThreadSanitizer does not model
//     atomic_thread_fence — this keeps the deque TSan-verifiable at identical
//     x86 codegen cost (seq_cst store = XCHG, exactly what the fence compiled
//     to).
//   * steal_top loads top seq_cst, then bottom seq_cst, reads the slot
//     (relaxed — the value is only *used* if the claim succeeds), and claims
//     it by CASing top forward (seq_cst). A lost CAS means the owner popped
//     the last element or another thief won; the element must not be used.
//   * top only ever increases, so indices cannot ABA.
//
// The ring buffer grows by doubling. Retired rings are kept alive on a
// garbage list until the deque is destroyed: a thief that loaded the old ring
// pointer may still read a slot from it, and every live index [top, bottom)
// was copied to the new ring before publication, so a stale read still
// returns the correct element.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace paracosm::engine {

template <typename T>
class ChaseLevDeque {
  static_assert(std::is_pointer_v<T>,
                "ChaseLevDeque elements must be pointers: a steal may read a "
                "slot it then fails to claim, which is only harmless for "
                "trivially copyable, self-contained values");

 public:
  explicit ChaseLevDeque(std::size_t initial_capacity = 64) {
    auto ring = std::make_unique<Ring>(round_up_pow2(initial_capacity));
    ring_.store(ring.get(), std::memory_order_relaxed);
    rings_.push_back(std::move(ring));
  }

  ChaseLevDeque(const ChaseLevDeque&) = delete;
  ChaseLevDeque& operator=(const ChaseLevDeque&) = delete;

  /// Owner only. Never fails; grows the ring when full.
  void push_bottom(T item) noexcept {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Ring* ring = ring_.load(std::memory_order_relaxed);
    if (b - t >= static_cast<std::int64_t>(ring->capacity)) ring = grow(ring, t, b);
    ring->slot(b).store(item, std::memory_order_relaxed);
    bottom_.store(b + 1, std::memory_order_release);
  }

  /// Owner only. Returns nullptr when the deque is empty (or a thief claimed
  /// the last element first).
  [[nodiscard]] T pop_bottom() noexcept {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Ring* ring = ring_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {  // was already empty
      bottom_.store(b + 1, std::memory_order_relaxed);
      return nullptr;
    }
    T item = ring->slot(b).load(std::memory_order_relaxed);
    if (t == b) {
      // Last element: race the thieves for it via the same CAS they use.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed))
        item = nullptr;  // a thief got it
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return item;
  }

  /// Any thread. Returns nullptr when empty or when the claim raced (caller
  /// simply moves on to the next victim).
  [[nodiscard]] T steal_top() noexcept {
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return nullptr;
    Ring* ring = ring_.load(std::memory_order_acquire);
    T item = ring->slot(t).load(std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed))
      return nullptr;  // owner or another thief won the race
    return item;
  }

  /// Approximate (racy) number of queued elements; never negative.
  [[nodiscard]] std::size_t size_approx() const noexcept {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

  [[nodiscard]] bool empty_approx() const noexcept { return size_approx() == 0; }

  /// Current ring capacity (for stats/tests).
  [[nodiscard]] std::size_t capacity() const noexcept {
    return ring_.load(std::memory_order_relaxed)->capacity;
  }

 private:
  struct Ring {
    explicit Ring(std::size_t cap)
        : capacity(cap), mask(cap - 1), slots(new std::atomic<T>[cap]) {}
    std::size_t capacity;
    std::size_t mask;
    std::unique_ptr<std::atomic<T>[]> slots;

    [[nodiscard]] std::atomic<T>& slot(std::int64_t i) noexcept {
      return slots[static_cast<std::size_t>(i) & mask];
    }
  };

  static std::size_t round_up_pow2(std::size_t n) noexcept {
    std::size_t c = 8;
    while (c < n) c <<= 1;
    return c;
  }

  Ring* grow(Ring* old, std::int64_t t, std::int64_t b) {
    auto bigger = std::make_unique<Ring>(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i)
      bigger->slot(i).store(old->slot(i).load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
    Ring* raw = bigger.get();
    // Publish before any slot of the new ring becomes reachable via bottom_;
    // the old ring stays on rings_ for stale thieves (see header comment).
    ring_.store(raw, std::memory_order_release);
    rings_.push_back(std::move(bigger));
    return raw;
  }

  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
  alignas(64) std::atomic<Ring*> ring_{nullptr};
  std::vector<std::unique_ptr<Ring>> rings_;  // owner-only; retired rings kept alive
};

}  // namespace paracosm::engine
