#include "paracosm/query_index.hpp"

namespace paracosm::engine {

void QueryIndex::add_bit(std::unordered_map<std::uint64_t, QueryBitmap>& table,
                         const std::uint64_t key, const std::size_t class_id) {
  table[key].set(class_id);
}

void QueryIndex::clear_bit(std::unordered_map<std::uint64_t, QueryBitmap>& table,
                           const std::uint64_t key, const std::size_t class_id) {
  const auto it = table.find(key);
  if (it == table.end()) return;
  it->second.clear(class_id);
  if (!it->second.any()) table.erase(it);
}

void QueryIndex::add_class(const std::size_t class_id, const graph::QueryGraph& q,
                           const bool ignore_edge_labels) {
  for (const graph::Edge& e : q.edges()) {
    const graph::Label la = q.label(e.u), lb = q.label(e.v);
    if (ignore_edge_labels) {
      add_bit(wildcard_, pack_pair(la, lb), class_id);
      add_bit(wildcard_, pack_pair(lb, la), class_id);
    } else {
      add_bit(exact_, pack(la, lb, e.elabel), class_id);
      add_bit(exact_, pack(lb, la, e.elabel), class_id);
    }
  }
}

void QueryIndex::remove_class(const std::size_t class_id, const graph::QueryGraph& q,
                              const bool ignore_edge_labels) {
  for (const graph::Edge& e : q.edges()) {
    const graph::Label la = q.label(e.u), lb = q.label(e.v);
    if (ignore_edge_labels) {
      clear_bit(wildcard_, pack_pair(la, lb), class_id);
      clear_bit(wildcard_, pack_pair(lb, la), class_id);
    } else {
      clear_bit(exact_, pack(la, lb, e.elabel), class_id);
      clear_bit(exact_, pack(lb, la, e.elabel), class_id);
    }
  }
}

void QueryIndex::probe(const graph::Label lu, const graph::Label lv,
                       const graph::Label le, QueryBitmap& out) const {
  if (const auto it = exact_.find(pack(lu, lv, le)); it != exact_.end())
    out.or_with(it->second);
  if (const auto it = wildcard_.find(pack_pair(lu, lv)); it != wildcard_.end())
    out.or_with(it->second);
}

}  // namespace paracosm::engine
