// Sub-pattern sharing across registered queries (ISSUE 6 tier 3).
//
// Two instruments:
//
//  * canonical_query_key — a canonical form for small patterns under
//    label-preserving isomorphism (WL color refinement, then the
//    lexicographically minimal edge list over the refinement-respecting
//    vertex orderings). Queries with equal keys have identical match counts
//    against every data graph, so the engine evaluates one representative
//    per (algorithm, key, budget) class and fans the counts out to members.
//    When the orbit enumeration would exceed kCanonicalPermBudget orderings
//    the key falls back to the exact (non-canonicalized) representation —
//    still a sound dedup key, it just shares less.
//
//  * AnchorTable — the shared seed-expansion prefix of every class's search.
//    A class's searches for an updated edge (u, v) are seeded by mapping some
//    query edge (a, b) onto it; for an embedding to exist the endpoints'
//    neighbor-label multisets must dominate the query vertices' (each query
//    neighbor needs a distinct same-label data neighbor). The table stores,
//    per label triple, the deduplicated packed-NLF requirement pairs
//    (sig(a), sig(b)) with the classes demanding them; evaluating one pair is
//    two SWAR containment tests (nlf_signature.hpp), shared by every class
//    with that prefix. A class none of whose anchors pass cannot gain or lose
//    a match through this edge, so its search is skipped with ΔM = 0 — the
//    signature test is a certain-reject, never a false accept of "skip".
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/nlf_signature.hpp"
#include "graph/query_graph.hpp"
#include "paracosm/query_index.hpp"

namespace paracosm::engine {

/// Orderings tried before canonicalization falls back to the exact key.
inline constexpr std::size_t kCanonicalPermBudget = 40320;  // 8!

/// Canonical (isomorphism-invariant) key, or an exact fallback prefixed so
/// the two key families never collide.
[[nodiscard]] std::string canonical_query_key(const graph::QueryGraph& q);

class AnchorTable {
 public:
  void add_class(std::size_t class_id, const graph::QueryGraph& q,
                 bool ignore_edge_labels);
  void remove_class(std::size_t class_id, const graph::QueryGraph& q,
                    bool ignore_edge_labels);

  /// OR into `passing` every class with at least one anchor for triple
  /// (lu, lv, le) whose signature requirements are covered by (sig_u, sig_v).
  /// `checked` counts distinct anchor evaluations performed.
  void filter(graph::Label lu, graph::Label lv, graph::Label le,
              graph::NlfSig sig_u, graph::NlfSig sig_v, QueryBitmap& passing,
              std::uint64_t& checked) const;

  [[nodiscard]] std::size_t num_entries() const noexcept {
    return exact_.size() + wildcard_.size();
  }

 private:
  struct Anchor {
    graph::NlfSig need_u = 0;
    graph::NlfSig need_v = 0;
    QueryBitmap classes;
  };
  using Table = std::unordered_map<std::uint64_t, std::vector<Anchor>>;

  static void add_anchor(Table& table, std::uint64_t key, graph::NlfSig need_u,
                         graph::NlfSig need_v, std::size_t class_id);
  static void remove_anchor(Table& table, std::uint64_t key, graph::NlfSig need_u,
                            graph::NlfSig need_v, std::size_t class_id);
  void visit_class_anchors(const graph::QueryGraph& q, bool ignore_edge_labels,
                           std::size_t class_id, bool add);

  Table exact_;     ///< keyed by QueryIndex::pack(lu, lv, le)
  Table wildcard_;  ///< keyed by QueryIndex::pack_pair(lu, lv)
};

}  // namespace paracosm::engine
