// Update type classifier (paper §4.2): the three-stage filter that decides
// whether an update is *safe* — i.e. provably affects neither the match set
// nor the algorithm's auxiliary data structure — and may therefore be
// processed in parallel by the batch executor.
//
//   stage 1 (label):  the edge's (endpoint label, endpoint label, edge label)
//                     triple matches no query edge;
//   stage 2 (degree): every label-compatible query edge fails the degree
//                     filter at the endpoints;
//   stage 3 (ADS):    the algorithm's own filtering rule (CsmAlgorithm::
//                     ads_safe) proves the ADS is untouched and no match can
//                     pass through the edge.
//
// Soundness subtlety (DESIGN.md §4): for algorithms that maintain an ADS,
// stage 2 alone proves only that no *match* appears — the ADS could still
// change (the edge may support candidates elsewhere). The classifier
// therefore consults stage 3 for every ADS-bearing algorithm, and stage 2 is
// decisive on its own only for index-free algorithms (GraphFlow, NewSP).
#pragma once

#include <optional>

#include "csm/algorithm.hpp"
#include "paracosm/stats.hpp"

namespace paracosm::engine {

enum class UpdateClass : std::uint8_t {
  kSafeLabel,      // decided by stage 1
  kSafeDegree,     // decided by stage 2 (stage 3 consulted when an ADS exists)
  kSafeAds,        // decided by stage 3
  kSafeInvariant,  // whole batch certified by the aggregate-invariant stage
                   // ahead of stages 1-3 (invariant_stage.hpp); never
                   // produced by classify() or the batch backends
  kUnsafe,
};

[[nodiscard]] constexpr bool is_safe(UpdateClass c) noexcept {
  return c != UpdateClass::kUnsafe;
}

class UpdateClassifier {
 public:
  UpdateClassifier(const graph::QueryGraph& q, const graph::DataGraph& g,
                   const csm::CsmAlgorithm& alg) noexcept
      : q_(q), g_(g), alg_(alg) {}

  /// Classify `upd` against the current graph/ADS state (read-only; safe to
  /// call concurrently for updates with pairwise-disjoint endpoints while
  /// safe updates are being applied — see DESIGN.md §4).
  [[nodiscard]] UpdateClass classify(const graph::GraphUpdate& upd) const;

  /// classify + stats bookkeeping.
  UpdateClass classify_counted(const graph::GraphUpdate& upd,
                               ClassifierStats& stats) const;

  /// Prepass shared with the batch backends (batch_backend.cpp): validity
  /// screening plus delete-label resolution. nullopt means the update is
  /// kUnsafe before any stage runs (vertex op, missing endpoint, self-loop,
  /// duplicate insert / phantom removal); otherwise the returned update has
  /// its edge label resolved and classify_effective() decides stages 1–3.
  [[nodiscard]] std::optional<graph::GraphUpdate> effective_update(
      const graph::GraphUpdate& upd) const;

  /// Stages 1–3 on an already-resolved update (see effective_update()).
  [[nodiscard]] UpdateClass classify_effective(const graph::GraphUpdate& eff) const;

 private:
  [[nodiscard]] UpdateClass classify_impl(const graph::GraphUpdate& upd) const;

  const graph::QueryGraph& q_;
  const graph::DataGraph& g_;
  const csm::CsmAlgorithm& alg_;
};

}  // namespace paracosm::engine
