#include "paracosm/classifier.hpp"

#include "obs/trace_ring.hpp"

namespace paracosm::engine {

UpdateClass UpdateClassifier::classify(const graph::GraphUpdate& upd) const {
#if defined(PARACOSM_TRACE_ENABLED)
  // The verdict is part of the span's args, so an RAII scope cannot capture
  // it; stamp the start and record the completed span around the impl.
  if (obs::trace_level() >= obs::event_level(obs::EventKind::kClassify)) {
    const std::int64_t t0 = obs::now_ns();
    const UpdateClass c = classify_impl(upd);
    obs::trace_complete(obs::EventKind::kClassify, t0,
                        static_cast<std::uint64_t>(c), upd.u, upd.v);
    return c;
  }
#endif
  return classify_impl(upd);
}

std::optional<graph::GraphUpdate> UpdateClassifier::effective_update(
    const graph::GraphUpdate& upd) const {
  using graph::UpdateOp;
  // Vertex operations are trivial but touch index storage; the sequential
  // path handles them (they are rare in CSM streams).
  if (!upd.is_edge_op()) return std::nullopt;
  if (!g_.has_vertex(upd.u) || !g_.has_vertex(upd.v) || upd.u == upd.v)
    return std::nullopt;
  // Duplicate inserts / phantom removals are no-ops; route them through the
  // sequential path, which detects and skips them.
  const bool insert = upd.op == UpdateOp::kInsertEdge;
  if (insert == g_.has_edge(upd.u, upd.v)) return std::nullopt;

  // Deletion requests may omit the edge label ("-e u v"); classify against
  // the actual label or stage 1/3 would judge the wrong edge (the engines
  // resolve it the same way — see csm/engine.cpp).
  graph::GraphUpdate eff = upd;
  if (!insert) {
    const auto actual_label = g_.edge_label(upd.u, upd.v);
    if (!actual_label) return std::nullopt;
    eff.label = *actual_label;
  }
  return eff;
}

UpdateClass UpdateClassifier::classify_impl(const graph::GraphUpdate& upd) const {
  const std::optional<graph::GraphUpdate> eff = effective_update(upd);
  if (!eff) return UpdateClass::kUnsafe;
  return classify_effective(*eff);
}

UpdateClass UpdateClassifier::classify_effective(const graph::GraphUpdate& eff) const {
  const bool insert = eff.op == graph::UpdateOp::kInsertEdge;

  // Stage 1: label filtering.
  const auto pairs = q_.matching_edges(g_.label(eff.u), g_.label(eff.v), eff.label,
                                       !alg_.uses_edge_labels());
  if (pairs.empty()) return UpdateClass::kSafeLabel;

  // Stage 2: degree filtering (with degrees as they will be once the edge
  // exists: insertion adds one to both endpoints).
  const std::uint32_t du = g_.degree(eff.u) + (insert ? 1 : 0);
  const std::uint32_t dv = g_.degree(eff.v) + (insert ? 1 : 0);
  bool degree_feasible = false;
  for (const auto& [u1, u2] : pairs) {
    if (du >= q_.degree(u1) && dv >= q_.degree(u2)) {
      degree_feasible = true;
      break;
    }
  }

  if (!alg_.has_ads()) {
    if (!degree_feasible) return UpdateClass::kSafeDegree;
    return alg_.ads_safe(eff) ? UpdateClass::kSafeAds : UpdateClass::kUnsafe;
  }
  // ADS-bearing algorithm: stage 3 must always confirm the index is
  // untouched; stage 2 only contributes the attribution.
  if (!alg_.ads_safe(eff)) return UpdateClass::kUnsafe;
  return degree_feasible ? UpdateClass::kSafeAds : UpdateClass::kSafeDegree;
}

UpdateClass UpdateClassifier::classify_counted(const graph::GraphUpdate& upd,
                                               ClassifierStats& stats) const {
  const UpdateClass c = classify(upd);
  ++stats.total;
  switch (c) {
    case UpdateClass::kSafeLabel: ++stats.safe_label; break;
    case UpdateClass::kSafeDegree: ++stats.safe_degree; break;
    case UpdateClass::kSafeAds: ++stats.safe_ads; break;
    case UpdateClass::kSafeInvariant: ++stats.safe_invariant; break;
    case UpdateClass::kUnsafe: ++stats.unsafe_updates; break;
  }
  return c;
}

}  // namespace paracosm::engine
