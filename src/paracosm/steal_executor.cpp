#include "paracosm/steal_executor.hpp"

#include <atomic>

#include "obs/trace_ring.hpp"
#include "paracosm/inner_executor.hpp"
#include "paracosm/match_buffer.hpp"
#include "util/timer.hpp"

namespace paracosm::engine {

namespace {

/// Split hook: keep the owner's deque primed with stealable work while the
/// depth budget lasts, without flooding it.
class StealHook final : public csm::SplitHook {
 public:
  StealHook(TaskQueue& queue, unsigned wid, std::uint32_t split_depth,
            WorkerStats& ws) noexcept
      : queue_(queue), wid_(wid), split_depth_(split_depth), ws_(ws) {}

  [[nodiscard]] bool want_offload(std::uint32_t depth) noexcept override {
    return depth < split_depth_ && queue_.local_size(wid_) < 4;
  }
  void offload(csm::SearchTask&& task) override {
    ++ws_.offloads;
    PARACOSM_TRACE_INSTANT(obs::EventKind::kResplit, task.depth());
    queue_.push(wid_, std::move(task));
  }

 private:
  TaskQueue& queue_;
  unsigned wid_;
  std::uint32_t split_depth_;
  WorkerStats& ws_;
};

}  // namespace

StealingExecutor::StealingExecutor(WorkerPool& pool, std::uint32_t split_depth,
                                   QueueKnobs knobs)
    : pool_(pool),
      split_depth_(split_depth),
      queue_(std::make_unique<TaskQueue>(pool.size(), knobs)) {}

StealingExecutor::~StealingExecutor() = default;

InnerRunResult StealingExecutor::run(
    const csm::CsmAlgorithm& alg, std::vector<csm::SearchTask> seeds,
    util::Clock::time_point deadline,
    const std::function<void(std::span<const csm::Assignment>)>* on_match,
    util::CancelView cancel) {
  InnerRunResult result;
  if (seeds.empty()) return result;
  const unsigned n = pool_.size();
  result.stats.ensure_size(n);
  TaskQueue& queue = *queue_;

  for (csm::SearchTask& seed : seeds) queue.seed(std::move(seed));

  std::vector<MatchBuffer> match_bufs;
  if (on_match != nullptr) match_bufs.resize(n);

  std::atomic<bool> any_timed_out{false};
  std::atomic<bool> any_cancelled{false};
  pool_.run([&](unsigned wid) {
    WorkerStats& ws = result.stats.workers[wid];
    csm::MatchSink sink;
    sink.deadline = deadline;
    sink.cancel = cancel;
    if (on_match != nullptr)
      sink.on_match = [buf = &match_bufs[wid]](std::span<const csm::Assignment> m) {
        buf->append(m);
      };
    StealHook hook(queue, wid, split_depth_, ws);
    // Busy time counts expand but not the idle steal-spin, so the simulated
    // makespan stays comparable with the central-queue executor. Per-worker
    // pooled SearchScratch (csm/scratch.hpp) keeps expansion allocation-free
    // across stolen tasks in steady state.
    while (auto task = queue.pop_or_finish(wid)) {
      // Dispatch-path cancel check (ISSUE 4): drain without expanding once
      // the epoch is cancelled so the stealing swarm converges promptly.
      if (cancel.active() && cancel.cancelled()) {
        sink.mark_cancelled();
        queue.retire();
        ++ws.tasks;
        continue;
      }
      util::ThreadCpuTimer timer;
      {
        PARACOSM_TRACE_SPAN(task_span, obs::EventKind::kTaskExpand,
                            task->depth());
        alg.expand(*task, sink, &hook);
      }
      queue.retire();
      ++ws.tasks;
      ws.busy_ns += timer.elapsed_ns();
    }
    ws.nodes += sink.nodes;
    ws.matches += sink.matches;
    queue.export_counters(wid, ws);
    if (sink.timed_out()) any_timed_out.store(true, std::memory_order_relaxed);
    if (sink.cancelled()) any_cancelled.store(true, std::memory_order_relaxed);
  });
  result.stats.dispatch_ns += pool_.last_dispatch_ns();
  for (const WorkerStats& ws : result.stats.workers) {
    result.matches += ws.matches;
    result.nodes += ws.nodes;
  }
  result.timed_out = any_timed_out.load(std::memory_order_relaxed);
  result.cancelled = any_cancelled.load(std::memory_order_relaxed);

  if (on_match != nullptr) emit_merged_sorted(match_bufs, *on_match);
  return result;
}

}  // namespace paracosm::engine
