#include "paracosm/steal_executor.hpp"

#include <atomic>
#include <deque>
#include <mutex>
#include <thread>

#include "paracosm/inner_executor.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace paracosm::engine {

namespace {

/// One worker's deque: the owner uses the back (LIFO), thieves the front
/// (FIFO — stolen tasks are the shallowest, i.e. largest, subtrees).
struct WorkDeque {
  std::mutex mutex;
  std::deque<csm::SearchTask> tasks;

  void push(csm::SearchTask&& t) {
    const std::lock_guard lock(mutex);
    tasks.push_back(std::move(t));
  }
  [[nodiscard]] bool pop_back(csm::SearchTask& out) {
    const std::lock_guard lock(mutex);
    if (tasks.empty()) return false;
    out = std::move(tasks.back());
    tasks.pop_back();
    return true;
  }
  [[nodiscard]] bool steal_front(csm::SearchTask& out) {
    const std::lock_guard lock(mutex);
    if (tasks.empty()) return false;
    out = std::move(tasks.front());
    tasks.pop_front();
    return true;
  }
  [[nodiscard]] std::size_t size() {
    const std::lock_guard lock(mutex);
    return tasks.size();
  }
};

/// Split hook: keep the owner's deque primed with stealable work while the
/// depth budget lasts, without flooding it.
class StealHook final : public csm::SplitHook {
 public:
  StealHook(WorkDeque& own, std::atomic<std::int64_t>& in_flight,
            std::uint32_t split_depth) noexcept
      : own_(own), in_flight_(in_flight), split_depth_(split_depth) {}

  [[nodiscard]] bool want_offload(std::uint32_t depth) noexcept override {
    return depth < split_depth_ && own_.size() < 4;
  }
  void offload(csm::SearchTask&& task) override {
    in_flight_.fetch_add(1, std::memory_order_relaxed);
    own_.push(std::move(task));
  }

 private:
  WorkDeque& own_;
  std::atomic<std::int64_t>& in_flight_;
  std::uint32_t split_depth_;
};

}  // namespace

InnerRunResult StealingExecutor::run(
    const csm::CsmAlgorithm& alg, std::vector<csm::SearchTask> seeds,
    util::Clock::time_point deadline,
    const std::function<void(std::span<const csm::Assignment>)>* on_match) {
  InnerRunResult result;
  if (seeds.empty()) return result;
  const unsigned n = pool_.size();
  result.stats.ensure_size(n);

  std::vector<WorkDeque> deques(n);
  std::atomic<std::int64_t> in_flight{static_cast<std::int64_t>(seeds.size())};
  for (std::size_t i = 0; i < seeds.size(); ++i)
    deques[i % n].push(std::move(seeds[i]));

  std::mutex merge_mutex;
  const auto guarded_match = [&](std::span<const csm::Assignment> m) {
    const std::lock_guard lock(merge_mutex);
    (*on_match)(m);
  };

  pool_.run([&](unsigned wid) {
    WorkerStats& ws = result.stats.workers[wid];
    csm::MatchSink sink;
    sink.deadline = deadline;
    if (on_match != nullptr) sink.on_match = guarded_match;
    StealHook hook(deques[wid], in_flight, split_depth_);
    util::Rng rng(0x57ea1ULL * (wid + 1));

    csm::SearchTask task;
    while (in_flight.load(std::memory_order_acquire) > 0) {
      // Busy time counts pop + expand but not the idle steal-spin, so the
      // simulated-makespan accounting stays comparable with the blocking
      // central-queue executor (whose idle waits consume no CPU either).
      util::ThreadCpuTimer timer;
      bool got = deques[wid].pop_back(task);
      if (!got) {
        // Random victim order; one full sweep per attempt.
        const unsigned start = static_cast<unsigned>(rng.bounded(n));
        for (unsigned k = 0; k < n && !got; ++k)
          got = deques[(start + k) % n].steal_front(task);
      }
      if (!got) {
        std::this_thread::yield();
        continue;
      }
      // Per-worker pooled SearchScratch (csm/scratch.hpp): expansion reuses
      // this thread's buffers across stolen tasks, allocation-free in steady
      // state.
      alg.expand(task, sink, &hook);
      ++ws.tasks;
      ws.busy_ns += timer.elapsed_ns();
      in_flight.fetch_sub(1, std::memory_order_acq_rel);
    }
    ws.nodes += sink.nodes;
    ws.matches += sink.matches;
    {
      const std::lock_guard lock(merge_mutex);
      result.matches += sink.matches;
      result.nodes += sink.nodes;
      result.timed_out = result.timed_out || sink.timed_out();
    }
  });
  return result;
}

}  // namespace paracosm::engine
