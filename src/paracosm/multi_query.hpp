// Multi-query ParaCOSM (extension): continuous matching of MANY query
// patterns over one shared update stream — the deployment shape of the
// paper's motivating applications (a fraud system monitors a catalogue of
// patterns, not one).
//
// The two-level parallel structure carries over: per update, the search
// trees of all affected queries feed one inner-update executor; per batch,
// an update is safe iff every registered query's classifier says so, and
// safe updates apply the graph once plus each algorithm's counter-cache
// deltas. Queries may use different CSM algorithms.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "paracosm/classifier.hpp"
#include "paracosm/config.hpp"
#include "paracosm/inner_executor.hpp"
#include "paracosm/worker_pool.hpp"
#include "util/sync.hpp"

namespace paracosm::engine {

struct MultiStreamResult {
  std::vector<std::uint64_t> positive;  ///< per registered query
  std::vector<std::uint64_t> negative;
  std::uint64_t updates_processed = 0;
  std::uint64_t safe_applied = 0;
  std::uint64_t unsafe_sequential = 0;
  bool timed_out = false;
  ParallelStats stats;

  [[nodiscard]] std::uint64_t total_matches() const noexcept {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < positive.size(); ++i)
      total += positive[i] + negative[i];
    return total;
  }
};

class MultiQueryEngine {
 public:
  MultiQueryEngine(graph::DataGraph& g, Config config = {});

  /// Register a pattern with its own algorithm instance. Returns the query
  /// handle (index into MultiStreamResult vectors). The query graph is
  /// copied and owned by the engine.
  std::size_t add_query(std::string_view algorithm, graph::QueryGraph query);

  [[nodiscard]] std::size_t num_queries() const noexcept { return queries_.size(); }

  /// Process a whole stream with batched classification. An update is safe
  /// iff safe for every query.
  MultiStreamResult process_stream(std::span<const graph::GraphUpdate> stream,
                                   util::Clock::time_point deadline = {});

 private:
  struct Registered {
    std::unique_ptr<graph::QueryGraph> query;  // stable address for the alg
    std::unique_ptr<csm::CsmAlgorithm> algorithm;
    std::unique_ptr<UpdateClassifier> classifier;
  };

  [[nodiscard]] bool safe_for_all(const graph::GraphUpdate& upd) const;
  void apply_safe(const graph::GraphUpdate& upd);
  void process_unsafe(const graph::GraphUpdate& upd, util::Clock::time_point deadline,
                      MultiStreamResult& result);

  graph::DataGraph& g_;
  Config config_;
  WorkerPool pool_;
  InnerExecutor inner_;
  util::StripedLocks<64> locks_;
  std::vector<Registered> queries_;
};

}  // namespace paracosm::engine
