// Multi-query ParaCOSM: continuous matching of MANY query patterns over one
// shared update stream — the deployment shape of the paper's motivating
// applications (a fraud system monitors a catalogue of patterns, not one).
//
// Shared evaluation (ISSUE 6): per-update cost is sub-linear in the number
// of registered queries. Three tiers, each sound by construction:
//
//  tier 1 — query index (query_index.hpp): one hash probe on the update's
//    (endpoint label, endpoint label, edge label) triple yields the bitmap of
//    possibly-affected evaluation classes; every query outside the bitmap is
//    kSafeLabel without any per-query dispatch.
//  tier 2 — grouped classification: classes over label-isomorphic patterns
//    share one degree-stage evaluation per update (ClassifyGroup memoizes the
//    stage-2 feasibility result across classes within a classification pass).
//  tier 3 — sub-pattern sharing (pattern_share.hpp): queries equal under
//    label-preserving isomorphism (same algorithm, same budget) collapse into
//    one evaluation class — classified once, searched once, counts fanned out
//    to every member — and each class's seed-expansion prefix is gated by the
//    shared packed-NLF anchor table, so searches that provably cannot change
//    ΔM are skipped.
//
// Queries can be registered and removed at runtime (add_query/remove_query);
// the index, anchor table and grouping structures are maintained
// incrementally, and per-query search budgets give deadline/degrade isolation
// (one pathological query cannot stall the rest beyond its budget).
//
// The two-level parallel structure carries over: per update, the search
// trees of all affected classes feed one inner-update executor; per batch,
// an update is safe iff every registered query's (shared) classification says
// so, and safe updates apply the graph once plus each algorithm's
// counter-cache deltas. Queries may use different CSM algorithms.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "paracosm/classifier.hpp"
#include "paracosm/config.hpp"
#include "paracosm/inner_executor.hpp"
#include "paracosm/pattern_share.hpp"
#include "paracosm/query_index.hpp"
#include "paracosm/worker_pool.hpp"
#include "util/sync.hpp"

namespace paracosm::engine {

struct MultiStreamResult {
  // Indexed by query handle (slot id, as returned by add_query). Slots of
  // removed queries stay allocated and report zero.
  std::vector<std::uint64_t> positive;
  std::vector<std::uint64_t> negative;
  std::vector<std::uint64_t> degraded;  ///< searches cut short by the query's budget
  std::uint64_t updates_processed = 0;
  std::uint64_t safe_applied = 0;
  std::uint64_t unsafe_sequential = 0;
  bool timed_out = false;
  ParallelStats stats;
  MultiQueryStats mq;

  [[nodiscard]] std::uint64_t total_matches() const noexcept {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < positive.size(); ++i)
      total += positive[i] + negative[i];
    return total;
  }
};

struct QueryOptions {
  /// Per-update search budget for this query in microseconds; 0 = none.
  /// A class search exceeding it is cut at the budget and recorded in
  /// MultiStreamResult::degraded for the query (its ΔM counts for that
  /// update may be partial); other queries are unaffected.
  std::int64_t budget_us = 0;
};

class MultiQueryEngine {
 public:
  MultiQueryEngine(graph::DataGraph& g, Config config = {});

  /// Register a pattern with its own algorithm instance. Returns the query
  /// handle (index into MultiStreamResult vectors; freed handles are
  /// reused). The query graph is copied and owned by the engine. Not
  /// thread-safe against a concurrent process_stream.
  std::size_t add_query(std::string_view algorithm, graph::QueryGraph query,
                        QueryOptions opts = {});

  /// Deregister a query. Index bits, anchor entries and — when this was the
  /// last member — the whole evaluation class are released; the handle is
  /// recycled by a later add_query. Returns false for unknown/stale handles.
  bool remove_query(std::size_t handle);

  /// Disable the shared-evaluation tiers (every query gets a private class,
  /// classified and searched independently — the O(queries) baseline the
  /// scaling bench compares against). Call before registering queries.
  void set_shared_evaluation(bool enabled) noexcept { shared_eval_ = enabled; }
  [[nodiscard]] bool shared_evaluation() const noexcept { return shared_eval_; }

  [[nodiscard]] std::size_t num_queries() const noexcept { return active_queries_; }
  [[nodiscard]] std::size_t num_slots() const noexcept { return slots_.size(); }
  /// Distinct evaluation classes currently active (== num_queries() when
  /// sharing is off or all patterns differ).
  [[nodiscard]] std::size_t num_classes() const noexcept { return active_classes_; }

  /// Process a whole stream with batched classification. An update is safe
  /// iff safe for every query.
  MultiStreamResult process_stream(std::span<const graph::GraphUpdate> stream,
                                   util::Clock::time_point deadline = {});

 private:
  /// One evaluation class: a representative pattern + algorithm instance
  /// shared by every member query (label-isomorphic patterns registered with
  /// the same algorithm and budget).
  struct EvalClass {
    std::unique_ptr<graph::QueryGraph> query;  // stable address for the alg
    std::unique_ptr<csm::CsmAlgorithm> algorithm;
    std::unique_ptr<UpdateClassifier> classifier;
    std::vector<std::size_t> members;  ///< active query handles
    std::string share_key;             ///< empty when sharing is off
    std::size_t group_id = 0;
    std::int64_t budget_us = 0;
    bool ignore_edge_labels = false;
    bool has_ads = false;
    bool active = false;
  };

  /// Classes over the same structural pattern (same canonical key and
  /// edge-label mode, any algorithm) share stage-2 degree feasibility: the
  /// per-triple degree-requirement pairs are evaluated once per update and
  /// memoized across the group's classes.
  struct ClassifyGroup {
    std::string key;
    std::unordered_map<std::uint64_t,
                       std::vector<std::pair<std::uint32_t, std::uint32_t>>>
        deg_pairs;  ///< packed triple/pair -> (deg(u1), deg(u2)) requirements
    std::size_t refs = 0;
    bool ignore_edge_labels = false;
    bool active = false;
  };

  struct Slot {
    bool active = false;
    std::size_t class_id = 0;
  };

  /// Per-worker classification scratch: candidate bitmap plus the
  /// epoch-stamped per-group degree-feasibility memo (reset per pass by
  /// bumping the epoch, SearchScratch idiom).
  struct ClassifyScratch {
    QueryBitmap candidates;
    MultiQueryStats mq;
    std::vector<std::uint32_t> group_epoch;
    std::vector<std::uint8_t> group_feasible;
    std::uint32_t epoch = 0;
  };

  /// Epoch-stamped open-addressing set over vertex ids: the batch loop's
  /// endpoint-disjointness check without per-batch construction (the
  /// SearchScratch idiom; reset = one epoch bump, clear only on wrap).
  class TouchedSet {
   public:
    void prepare(std::size_t expected_inserts);
    [[nodiscard]] bool contains(graph::VertexId v) const noexcept;
    void insert(graph::VertexId v) noexcept;

   private:
    std::vector<graph::VertexId> keys_;
    std::vector<std::uint32_t> stamps_;
    std::uint32_t epoch_ = 0;
  };

  struct SearchOutcome {
    std::uint64_t matches = 0;
    bool degraded = false;
    bool timed_out = false;
  };

  /// Shared classification of one update against the current graph state.
  /// Returns true iff the update is safe for every registered query. When
  /// `need` is non-null, the bit of every class whose verdict is kUnsafe is
  /// set (the classes that must search if the update is processed).
  bool classify_shared(const graph::GraphUpdate& upd, ClassifyScratch& s,
                       QueryBitmap* need) const;
  [[nodiscard]] bool safe_for_all_legacy(const graph::GraphUpdate& upd) const;
  [[nodiscard]] static bool group_degree_feasible(
      const ClassifyGroup& grp, graph::Label lu, graph::Label lv, graph::Label le,
      std::uint32_t du, std::uint32_t dv);

  void apply_safe(const graph::GraphUpdate& upd);
  void process_unsafe(const graph::GraphUpdate& upd, util::Clock::time_point deadline,
                      MultiStreamResult& result);
  void run_searches(const graph::GraphUpdate& eff, bool positive,
                    util::Clock::time_point deadline, MultiStreamResult& result);
  SearchOutcome search_class(EvalClass& cls, const graph::GraphUpdate& eff,
                             util::Clock::time_point deadline,
                             MultiStreamResult& result);

  std::size_t acquire_group(const graph::QueryGraph& q, bool ignore_edge_labels);
  void release_group(std::size_t group_id);
  void ensure_scratch(unsigned nthreads);

  graph::DataGraph& g_;
  Config config_;
  WorkerPool pool_;
  InnerExecutor inner_;
  util::StripedLocks<64> locks_;

  std::vector<Slot> slots_;
  std::vector<std::size_t> free_slots_;
  std::vector<EvalClass> classes_;
  std::vector<std::size_t> free_classes_;
  std::vector<ClassifyGroup> groups_;
  std::vector<std::size_t> free_groups_;
  std::unordered_map<std::string, std::size_t> class_by_key_;
  std::unordered_map<std::string, std::size_t> group_by_key_;
  QueryIndex index_;
  AnchorTable anchors_;
  std::size_t active_queries_ = 0;
  std::size_t active_classes_ = 0;
  bool shared_eval_ = true;

  // Reusable batch scratch (no per-batch allocation, ISSUE 6 satellite).
  std::vector<std::uint8_t> safe_;
  TouchedSet touched_;
  std::vector<ClassifyScratch> scratch_;  ///< one per worker
  QueryBitmap need_scratch_;
  QueryBitmap anchor_scratch_;
};

}  // namespace paracosm::engine
