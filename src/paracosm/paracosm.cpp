#include "paracosm/paracosm.hpp"

#include <stdexcept>
#include <unordered_set>

#include "obs/trace_ring.hpp"
#include "util/timer.hpp"

namespace paracosm::engine {

using graph::GraphUpdate;
using graph::UpdateOp;
using graph::VertexId;

namespace {

[[nodiscard]] PoolOptions pool_options(const Config& config) {
  PoolOptions o;
  o.spin_iters = config.pool_spin_iters;
  o.pin = config.pin_threads;
  return o;
}

// The pool member precedes the executors, so its victim table is valid in
// their initializers and outlives both queues.
[[nodiscard]] QueueKnobs queue_knobs(const Config& config, const WorkerPool& pool) {
  QueueKnobs k;
  k.spin_iters = config.queue_spin_iters;
  k.victims = &pool.victim_table();
  k.topo_order = config.topo_aware_steal;
  return k;
}

}  // namespace

ParaCosm::ParaCosm(csm::CsmAlgorithm& alg, const graph::QueryGraph& q,
                   graph::DataGraph& g, Config config)
    : alg_(alg),
      q_(q),
      g_(g),
      config_(config),
      tuning_(config.split_depth, config.batch_size, config.wide_auto_cutoff),
      pool_(config.effective_threads(), pool_options(config)),
      inner_(pool_, config.split_depth, config.dynamic_balance,
             queue_knobs(config, pool_)),
      stealing_(pool_, config.split_depth, queue_knobs(config, pool_)),
      classifier_(q, g, alg) {
  alg_.attach(q_, g_);
  // Both batch backends are constructed up front (the wide bind is a few
  // dozen broadcast operands); Config::batch_backend only routes batches.
  const BackendBind bind{&q_, &g_, &alg_, &classifier_, &pool_, &locks_};
  backend_cpu_ = make_batch_backend(BatchBackendKind::kCpu, bind);
  backend_wide_ =
      make_batch_backend(BatchBackendKind::kWide, bind, config_.wide_dispatch);
  // The aggregate-invariant certifier only engages where it is sound: no
  // ADS to perturb and strict batches (see invariant_stage.hpp).
  if (config_.invariant_stage && !alg_.has_ads() &&
      config_.batch_mode == BatchMode::kStrict && q_.num_edges() > 0)
    invariant_ =
        std::make_unique<InvariantStage>(q_, g_, !alg_.uses_edge_labels());
}

BatchBackend& ParaCosm::backend_for(std::size_t batch_lanes) noexcept {
  switch (config_.batch_backend) {
    case BatchBackendKind::kCpu: return *backend_cpu_;
    case BatchBackendKind::kWide: return *backend_wide_;
    case BatchBackendKind::kAuto: break;
  }
  if (pool_.size() <= 1) return *backend_wide_;
  return batch_lanes <= tuning_.wide_auto_cutoff() ? *backend_wide_
                                                   : *backend_cpu_;
}

csm::UpdateOutcome ParaCosm::process(const GraphUpdate& upd,
                                     util::Clock::time_point deadline,
                                     util::CancelView cancel) {
  return process_into(upd, deadline, cancel, loose_stats_);
}

csm::UpdateOutcome ParaCosm::process_into(const GraphUpdate& upd,
                                          util::Clock::time_point deadline,
                                          util::CancelView cancel,
                                          ParallelStats& stats) {
  PARACOSM_TRACE_SPAN(update_span, obs::EventKind::kUpdate,
                      static_cast<std::uint64_t>(upd.op), upd.u, upd.v);
  switch (upd.op) {
    case UpdateOp::kInsertEdge:
    case UpdateOp::kRemoveEdge:
      return process_edge(upd, deadline, cancel, stats);
    case UpdateOp::kInsertVertex: {
      csm::UpdateOutcome out;
      const bool existed = g_.has_vertex(upd.u);
      const bool relabel = existed && g_.label(upd.u) != upd.label;
      g_.add_vertex_with_id(upd.u, upd.label);
      if (!existed) alg_.on_vertex_added(upd.u);
      // A relabel shifts every incident edge to a different label triple;
      // vertex ops are rare in CSM streams, so an O(E) rebuild is cheaper
      // than threading old-label deltas through the graph call.
      if (invariant_ && relabel) invariant_->rebuild(g_);
      out.applied = true;
      return out;
    }
    case UpdateOp::kRemoveVertex: {
      csm::UpdateOutcome out;
      if (!g_.has_vertex(upd.u)) return out;
      std::vector<GraphUpdate> removals;
      for (const auto& nb : g_.neighbors(upd.u))
        removals.push_back(GraphUpdate::remove_edge(upd.u, nb.v, nb.elabel));
      for (const GraphUpdate& rm : removals) {
        const csm::UpdateOutcome sub = process_edge(rm, deadline, cancel, stats);
        out.negative += sub.negative;
        out.nodes += sub.nodes;
        out.timed_out = out.timed_out || sub.timed_out;
        out.cancelled = out.cancelled || sub.cancelled;
      }
      g_.remove_vertex(upd.u);
      alg_.on_vertex_removed(upd.u);
      out.applied = true;
      return out;
    }
  }
  return {};
}

csm::UpdateOutcome ParaCosm::process_edge(const GraphUpdate& upd,
                                          util::Clock::time_point deadline,
                                          util::CancelView cancel,
                                          ParallelStats& stats) {
  csm::UpdateOutcome out;
  const bool insert = upd.op == UpdateOp::kInsertEdge;

  // Forward the epoch-published SPLIT_DEPTH before the search starts; both
  // executors read it only between run() calls (single-threaded caller).
  const std::uint32_t sd = tuning_.split_depth();
  inner_.set_split_depth(sd);
  stealing_.set_split_depth(sd);

  const auto explore = [&](const std::vector<csm::SearchTask>& roots)
      -> std::pair<std::uint64_t, std::uint64_t> {
    if (roots.empty()) return {0, 0};
    if (config_.inner_parallelism) {
      const auto* cb = on_match_ ? &on_match_ : nullptr;
      InnerRunResult run = config_.scheduler == Scheduler::kWorkStealing
                               ? stealing_.run(alg_, roots, deadline, cb, cancel)
                               : inner_.run(alg_, roots, deadline, cb, cancel);
      stats.merge(run.stats);
      out.timed_out = out.timed_out || run.timed_out;
      out.cancelled = out.cancelled || run.cancelled;
      return {run.matches, run.nodes};
    }
    util::ThreadCpuTimer timer;
    csm::MatchSink sink;
    sink.deadline = deadline;
    sink.cancel = cancel;
    if (on_match_) sink.on_match = on_match_;
    for (const csm::SearchTask& task : roots) {
      PARACOSM_TRACE_SPAN(task_span, obs::EventKind::kTaskExpand, task.depth());
      alg_.expand(task, sink, nullptr);
      if (sink.stopped()) break;
    }
    stats.serial_ns += timer.elapsed_ns();
    out.timed_out = out.timed_out || sink.timed_out();
    out.cancelled = out.cancelled || sink.cancelled();
    return {sink.matches, sink.nodes};
  };

  if (insert) {
    util::ThreadCpuTimer serial;
    if (!g_.add_edge(upd.u, upd.v, upd.label)) return out;
    if (invariant_)
      invariant_->on_edge(g_.label(upd.u), g_.label(upd.v), upd.label, +1);
    alg_.on_edge_inserted(upd);
    std::vector<csm::SearchTask> roots;
    {
      PARACOSM_TRACE_SPAN(seed_span, obs::EventKind::kSeedGen, upd.u, upd.v);
      alg_.seeds(upd, roots);
    }
    stats.serial_ns += serial.elapsed_ns();
    out.applied = true;
    const auto [matches, nodes] = explore(roots);
    out.positive = matches;
    out.nodes = nodes;
  } else {
    // Resolve the actual edge label before seeding: deletion requests may
    // omit it ("-e u v"), and label-keyed seeds would enumerate phantom
    // matches or miss real ones (see csm/engine.cpp).
    const auto actual_label = g_.edge_label(upd.u, upd.v);
    if (!actual_label) return out;
    GraphUpdate del = upd;
    del.label = *actual_label;
    util::ThreadCpuTimer serial;
    std::vector<csm::SearchTask> roots;
    {
      PARACOSM_TRACE_SPAN(seed_span, obs::EventKind::kSeedGen, del.u, del.v);
      alg_.seeds(del, roots);
    }
    stats.serial_ns += serial.elapsed_ns();
    const auto [matches, nodes] = explore(roots);
    out.negative = matches;
    out.nodes = nodes;
    util::ThreadCpuTimer serial2;
    if (invariant_)
      invariant_->on_edge(g_.label(upd.u), g_.label(upd.v), del.label, -1);
    g_.remove_edge(upd.u, upd.v);
    alg_.on_edge_removed(del);
    out.applied = true;
    stats.serial_ns += serial2.elapsed_ns();
  }
  return out;
}

StreamResult ParaCosm::process_stream(std::span<const GraphUpdate> stream,
                                      util::Clock::time_point deadline,
                                      util::CancelView cancel) {
  StreamResult result;
  util::WallTimer wall;

  const auto expired = [&] {
    return deadline != util::Clock::time_point{} && util::Clock::now() >= deadline;
  };
  const auto absorb = [&](const csm::UpdateOutcome& out) {
    result.positive += out.positive;
    result.negative += out.negative;
    result.nodes += out.nodes;
    result.timed_out = result.timed_out || out.timed_out;
    result.cancelled = result.cancelled || out.cancelled;
    if (!out.applied) ++result.noop_skipped;
  };

  if (!config_.inter_parallelism) {
    for (const GraphUpdate& upd : stream) {
      if (expired()) {
        result.timed_out = true;
        break;
      }
      absorb(process_into(upd, deadline, cancel, result.stats));
      ++result.updates_processed;
    }
    result.wall_ns = wall.elapsed_ns();
    return result;
  }

  // Per-stream backend accounting: reset here, snapshot into the result at
  // the end (conservation: cpu.batches + wide.batches +
  // invariant.batches_certified == result.batches).
  backend_cpu_->reset_stats();
  backend_wide_->reset_stats();

  const unsigned nthreads = pool_.size();
  std::size_t i = 0;
  std::vector<UpdateClass> verdicts;
  result.stats.ensure_size(nthreads);

  while (i < stream.size()) {
    if (expired()) {
      result.timed_out = true;
      break;
    }
    // Batch cut is re-read every batch from the epoch-published TuningView,
    // so a control-plane (or test) mutation takes effect at the next batch
    // boundary rather than being baked in at construction.
    const unsigned k = std::max(1u, tuning_.effective_batch_size(nthreads));
    const std::size_t count = std::min<std::size_t>(k, stream.size() - i);
    ++result.batches;
    util::WallTimer batch_timer;
#if defined(PARACOSM_TRACE_ENABLED)
    // The batch span covers classify + safe-apply (phases 1–2b) and is
    // recorded *before* the sequential unsafe update of phase 2c runs, so a
    // trace never shows an unsafe kUpdate span inside a kBatch span — the
    // integration test asserts exactly that nesting.
    const std::int64_t trace_batch_t0 =
        obs::trace_level() >= 1 ? obs::now_ns() : 0;
#endif

    // Phase 1 — classification against the batch-start snapshot (read-only
    // on graph and ADS), routed through the configured batch backend
    // (batch_backend.hpp): the CPU backend strides the scalar classifier
    // over the pool, the wide backend runs the mask kernels. Both produce
    // byte-identical verdicts (the wide path self-diffs per batch under
    // PARACOSM_VERIFY).
    verdicts.assign(count, UpdateClass::kUnsafe);
    bool certified = false;
    bool used_wide = false;
    if (invariant_) {
      std::size_t inserts = 0;
      for (std::size_t j = 0; j < count; ++j)
        if (stream[i + j].op == UpdateOp::kInsertEdge) ++inserts;
      ++result.invariant.batches_checked;
      certified = invariant_->certify_batch(inserts);
    }
    if (certified) {
      // Phase 1' — the aggregate invariant proved the whole batch match-free
      // under any interleaving, so every *effective* edge update is safe
      // without per-lane classification. Ineffective lanes (no-ops, vertex
      // ops) still route through the sequential path as usual.
      ++result.invariant.batches_certified;
      std::size_t lanes = 0;
      for (std::size_t j = 0; j < count; ++j)
        if (classifier_.effective_update(stream[i + j]))
          verdicts[j] = UpdateClass::kSafeInvariant, ++lanes;
      PARACOSM_TRACE_INSTANT(obs::EventKind::kInvariantCert, lanes, count);
    } else {
      BatchBackend& be = backend_for(count);
      used_wide = &be == backend_wide_.get();
      be.classify_batch(stream.subspan(i, count), verdicts, result.stats);
    }

    // Phase 2a — commit plan (cheap, sequential): the safe prefix up to the
    // first unsafe update (Figure 6) or, in strict mode, the first update
    // whose endpoints were already touched in this batch (DESIGN.md §4).
    std::unordered_set<VertexId> touched;
    std::size_t safe_prefix = 0;
    bool hit_unsafe = false;
    while (safe_prefix < count) {
      const GraphUpdate& upd = stream[i + safe_prefix];
      const UpdateClass verdict = verdicts[safe_prefix];
      if (!is_safe(verdict)) {
        hit_unsafe = true;
        break;
      }
      if (config_.batch_mode == BatchMode::kStrict && upd.is_edge_op() &&
          (touched.contains(upd.u) || touched.contains(upd.v))) {
        // Snapshot verdict may be stale: defer for re-classification.
        ++result.deferred_conflicts;
        break;
      }
      if (upd.is_edge_op()) {
        touched.insert(upd.u);
        touched.insert(upd.v);
      }
      ++safe_prefix;
    }
    for (std::size_t j = 0; j < safe_prefix + (hit_unsafe ? 1 : 0); ++j) {
      ++result.classifier.total;
      switch (verdicts[j]) {
        case UpdateClass::kSafeLabel: ++result.classifier.safe_label; break;
        case UpdateClass::kSafeDegree: ++result.classifier.safe_degree; break;
        case UpdateClass::kSafeAds: ++result.classifier.safe_ads; break;
        case UpdateClass::kSafeInvariant:
          ++result.classifier.safe_invariant;
          ++result.invariant.lanes_certified;
          break;
        case UpdateClass::kUnsafe: ++result.classifier.unsafe_updates; break;
      }
    }

    // Invariant maintenance for the parallel apply (which bypasses
    // process_edge): walk the safe prefix sequentially while the graph is
    // still at the batch-start snapshot — delete labels resolve exactly, and
    // the strict-mode endpoint rule guarantees each prefix lane is an
    // effective op on a distinct edge, so the pass is exact.
    if (invariant_ && safe_prefix > 0) {
      for (std::size_t j = 0; j < safe_prefix; ++j) {
        const auto eff = classifier_.effective_update(stream[i + j]);
        if (!eff) continue;  // unreachable for a safe verdict; stay robust
        invariant_->on_edge(g_.label(eff->u), g_.label(eff->v), eff->label,
                            eff->op == UpdateOp::kInsertEdge ? +1 : -1);
      }
    }

    // Phase 2b — apply the safe prefix in parallel: safety guarantees
    // confine each application to its endpoints' adjacency and counter
    // caches, and the striped per-vertex locks serialize the rare stripe
    // collisions (in strict mode the endpoints are pairwise disjoint).
    // The batch is sharded across the pool via per-worker striped cursors
    // (shard_cursor.hpp): each worker drains a contiguous slice with
    // uncontended claims and only steals from stragglers' shards.
    if (safe_prefix > 0) {
#ifdef PARACOSM_VERIFY
      // Metamorphic invariant (verify/invariants.hpp): a safe-classified
      // update must not flip ADS state, so a whole batch of them must leave
      // the rolling checksum bit-identical. Reading it only at the batch
      // boundaries keeps the check O(1) per batch and outside the window
      // where workers mutate counter caches concurrently.
      const std::uint64_t verify_ads_before = alg_.ads_checksum();
#endif
      backend_for(count).apply_safe_prefix(stream.subspan(i, safe_prefix),
                                           result.stats);
#ifdef PARACOSM_VERIFY
      if (alg_.ads_checksum() != verify_ads_before)
        throw std::logic_error(
            "PARACOSM_VERIFY: a safe-classified batch mutated the ADS "
            "checksum — the classifier or an ads_safe rule is unsound");
#endif
      result.safe_applied += safe_prefix;
      result.updates_processed += safe_prefix;
    }
#if defined(PARACOSM_TRACE_ENABLED)
    if (obs::trace_level() >= 1)
      obs::trace_complete(obs::EventKind::kBatch, trace_batch_t0,
                          result.batches - 1, count, safe_prefix);
#endif
    i += safe_prefix;
    // Classify + safe-apply cost, sampled before the sequential phase so the
    // control plane can attribute it separately from search time.
    const std::int64_t classify_ns = batch_timer.elapsed_ns();

    // Phase 2c — the unsafe update runs sequentially (ADS) with the
    // inner-update executor searching; the batch remainder is deferred.
    if (hit_unsafe) {
      ++result.unsafe_sequential;
      // Route through a per-update accumulator so the worker busy deltas of
      // THIS search (not the whole stream) feed the imbalance signal.
      ParallelStats ustats;
      ustats.ensure_size(nthreads);
      absorb(process_into(stream[i], deadline, cancel, ustats));
      if (control_) {
        control::SearchSample ss;
        ss.workers = nthreads;
        for (const WorkerStats& w : ustats.workers) ss.tasks += w.tasks;
        ss.offloads = ustats.total_offloads();
        ss.steals_local = ustats.total_steals_local();
        ss.steals_same_node = ustats.total_steals_same_node();
        ss.steals_remote = ustats.total_steals_remote();
        ss.max_busy_ns = ustats.max_worker_ns();
        ss.total_busy_ns = ustats.total_worker_ns();
        control_->on_search(ss);
      }
      result.stats.merge(ustats);
      ++result.updates_processed;
      ++i;
      result.deferred_after_unsafe += count - safe_prefix - 1;
    }

    const std::int64_t batch_ns = batch_timer.elapsed_ns();
    result.batch_latency.record(batch_ns);
    if (control_) {
      control::BatchSample bs;
      bs.lanes = static_cast<std::uint32_t>(count);
      bs.safe_prefix = static_cast<std::uint32_t>(safe_prefix);
      bs.hit_unsafe = hit_unsafe;
      bs.certified = certified;
      bs.wide_backend = used_wide;
      bs.classify_ns = classify_ns;
      bs.batch_ns = batch_ns;
      control_->on_batch(bs);
    }
  }

  result.backend_cpu = backend_cpu_->stats();
  result.backend_wide = backend_wide_->stats();
  result.wall_ns = wall.elapsed_ns();
  return result;
}

}  // namespace paracosm::engine
