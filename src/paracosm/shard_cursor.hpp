// Striped work cursor for the §4.2 batch executor.
//
// The batch executor used to hand the safe prefix to the pool through ONE
// shared atomic cursor: every applied update paid a fetch_add on the same
// cache line, so at 8+ workers the cursor itself became the contended object.
// ShardedCursor splits [0, total) into one contiguous shard per worker, each
// with its own cache-line-aligned cursor; a worker drains its shard with
// uncontended CAS claims and only visits other shards (stealing the
// straggler's remainder) once its own is empty. Contiguous shards also keep
// each worker walking a contiguous slice of the batch — sequential access on
// the update array instead of an interleaved scatter.
#pragma once

#include <atomic>
#include <cstddef>
#include <limits>
#include <memory>

namespace paracosm::engine {

class ShardedCursor {
 public:
  static constexpr std::size_t npos = std::numeric_limits<std::size_t>::max();

  ShardedCursor(std::size_t total, unsigned workers)
      : n_(workers == 0 ? 1u : workers), shards_(new Shard[n_]) {
    const std::size_t base = total / n_;
    const std::size_t extra = total % n_;
    std::size_t begin = 0;
    for (unsigned i = 0; i < n_; ++i) {
      const std::size_t len = base + (i < extra ? 1 : 0);
      shards_[i].next.store(begin, std::memory_order_relaxed);
      shards_[i].end = begin + len;
      begin += len;
    }
  }

  /// Claim the next index for worker `wid`, own shard first; npos when the
  /// whole range is drained.
  [[nodiscard]] std::size_t claim(unsigned wid) noexcept {
    for (unsigned k = 0; k < n_; ++k) {
      Shard& s = shards_[(wid + k) % n_];
      std::size_t j = s.next.load(std::memory_order_relaxed);
      // CAS loop (not fetch_add) so losing thieves never push the cursor
      // past `end` — overshoot would make shard-size accounting lie.
      while (j < s.end) {
        if (s.next.compare_exchange_weak(j, j + 1, std::memory_order_acq_rel,
                                         std::memory_order_relaxed))
          return j;
      }
    }
    return npos;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::size_t> next{0};
    std::size_t end = 0;
  };

  unsigned n_;
  std::unique_ptr<Shard[]> shards_;
};

}  // namespace paracosm::engine
