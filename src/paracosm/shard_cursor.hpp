// Striped work cursor for the §4.2 batch executor.
//
// The batch executor used to hand the safe prefix to the pool through ONE
// shared atomic cursor: every applied update paid a fetch_add on the same
// cache line, so at 8+ workers the cursor itself became the contended object.
// ShardedCursor splits [0, total) into one contiguous shard per worker, each
// with its own cache-line-aligned cursor; a worker drains its shard with
// uncontended CAS claims and only visits other shards (stealing the
// straggler's remainder) once its own is empty. Contiguous shards also keep
// each worker walking a contiguous slice of the batch — sequential access on
// the update array instead of an interleaved scatter.
//
// Topology awareness (DESIGN.md §10): given the pool's worker→node map, each
// worker's probe order visits its own shard, then the shards of same-node
// workers, then remote ones — so straggler cleanup stays on the local memory
// controller for as long as any same-node work remains. An empty node map
// reproduces the plain ring probe.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <vector>

namespace paracosm::engine {

class ShardedCursor {
 public:
  static constexpr std::size_t npos = std::numeric_limits<std::size_t>::max();

  /// `node_of`: NUMA node per worker (WorkerPool::node_map()); empty (or
  /// wrong-sized) span -> ring probe order, exactly the pre-topology
  /// behavior.
  ShardedCursor(std::size_t total, unsigned workers,
                std::span<const std::uint8_t> node_of = {})
      : n_(workers == 0 ? 1u : workers), shards_(new Shard[n_]) {
    const std::size_t base = total / n_;
    const std::size_t extra = total % n_;
    std::size_t begin = 0;
    for (unsigned i = 0; i < n_; ++i) {
      const std::size_t len = base + (i < extra ? 1 : 0);
      shards_[i].next.store(begin, std::memory_order_relaxed);
      shards_[i].end = begin + len;
      begin += len;
    }
    if (node_of.size() == n_) {
      bool multi = false;
      for (std::uint8_t n : node_of)
        if (n != node_of[0]) { multi = true; break; }
      if (multi) {
        // Per-worker probe permutation: self, same-node (ring order from
        // self for spread), then remote (likewise).
        probe_.resize(static_cast<std::size_t>(n_) * n_);
        for (unsigned w = 0; w < n_; ++w) {
          std::uint16_t* row = probe_.data() + static_cast<std::size_t>(w) * n_;
          unsigned out = 0;
          row[out++] = static_cast<std::uint16_t>(w);
          for (unsigned k = 1; k < n_; ++k) {
            const unsigned v = (w + k) % n_;
            if (node_of[v] == node_of[w]) row[out++] = static_cast<std::uint16_t>(v);
          }
          for (unsigned k = 1; k < n_; ++k) {
            const unsigned v = (w + k) % n_;
            if (node_of[v] != node_of[w]) row[out++] = static_cast<std::uint16_t>(v);
          }
        }
      }
    }
  }

  /// Claim the next index for worker `wid`, own shard first, then same-node
  /// shards, then remote; npos when the whole range is drained.
  [[nodiscard]] std::size_t claim(unsigned wid) noexcept {
    const std::uint16_t* row =
        probe_.empty() ? nullptr
                       : probe_.data() + static_cast<std::size_t>(wid) * n_;
    for (unsigned k = 0; k < n_; ++k) {
      Shard& s = shards_[row != nullptr ? row[k] : (wid + k) % n_];
      std::size_t j = s.next.load(std::memory_order_relaxed);
      // CAS loop (not fetch_add) so losing thieves never push the cursor
      // past `end` — overshoot would make shard-size accounting lie.
      while (j < s.end) {
        if (s.next.compare_exchange_weak(j, j + 1, std::memory_order_acq_rel,
                                         std::memory_order_relaxed))
          return j;
      }
    }
    return npos;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::size_t> next{0};
    std::size_t end = 0;
  };

  unsigned n_;
  std::unique_ptr<Shard[]> shards_;
  std::vector<std::uint16_t> probe_;  ///< empty -> ring order
};

}  // namespace paracosm::engine
