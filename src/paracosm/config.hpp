// Framework configuration knobs (paper §4 and DESIGN.md §4).
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "util/hw_topo.hpp"
#include "util/wide_ops.hpp"

namespace paracosm::engine {

/// Inner-update scheduling strategy.
enum class Scheduler : std::uint8_t {
  /// The paper's Algorithm 2: one concurrent queue, idle-triggered
  /// re-splitting.
  kCentralQueue,
  /// Per-worker deques with stealing (see steal_executor.hpp); often faster
  /// when updates produce plentiful fan-out.
  kWorkStealing,
};

/// Semantics of the inter-update batch executor.
enum class BatchMode : std::uint8_t {
  /// Paper-faithful: every update of a batch is classified against the
  /// batch-start snapshot; all safe updates are applied.
  kPaper,
  /// Default: additionally defers any update whose endpoints were already
  /// touched inside the current batch, making parallel batches provably
  /// equivalent to sequential processing (DESIGN.md §4).
  kStrict,
};

/// Which classifier backend the batch executor routes safe batches through
/// (DESIGN.md §11). The registry lives in batch_backend.hpp; the kind is
/// declared here so Config stays include-light.
enum class BatchBackendKind : std::uint8_t {
  kCpu,   ///< worker-pool scalar classification (the PR-2 path)
  kWide,  ///< AVX2/SWAR wide-lane classification (util/wide_ops.hpp)
  kAuto,  ///< per batch: wide up to Config::wide_auto_cutoff lanes (and
          ///  always on single-thread pools), pool-strided cpu beyond
};

[[nodiscard]] constexpr std::string_view batch_backend_name(
    BatchBackendKind k) noexcept {
  switch (k) {
    case BatchBackendKind::kCpu: return "cpu";
    case BatchBackendKind::kWide: return "wide";
    case BatchBackendKind::kAuto: return "auto";
  }
  return "?";
}

[[nodiscard]] constexpr std::optional<BatchBackendKind> parse_batch_backend(
    std::string_view name) noexcept {
  if (name == "cpu") return BatchBackendKind::kCpu;
  if (name == "wide") return BatchBackendKind::kWide;
  if (name == "auto") return BatchBackendKind::kAuto;
  return std::nullopt;
}

struct Config {
  /// Worker threads for both executors. 0 -> CPUs in the affinity mask
  /// (sched_getaffinity), so taskset/cgroup-restricted runs don't
  /// oversubscribe the way hardware_concurrency() would.
  unsigned threads = 0;

  /// Maximum search-tree depth at which the inner-update executor may still
  /// split a task into subtasks (SPLIT_DEPTH in Algorithm 2).
  std::uint32_t split_depth = 4;

  /// Updates per inter-update batch (k in §4.2). 0 -> same as threads.
  unsigned batch_size = 0;

  /// Enable inner-update parallelism (parallel search-tree exploration).
  bool inner_parallelism = true;

  /// Enable inter-update parallelism (classifier + batch executor).
  bool inter_parallelism = true;

  /// Dynamic task re-splitting / load balancing. Disabling reproduces the
  /// "unbalanced" baseline of the paper's Figure 10 (static seed partition).
  bool dynamic_balance = true;

  BatchMode batch_mode = BatchMode::kStrict;

  Scheduler scheduler = Scheduler::kCentralQueue;

  /// Idle-protocol knobs of the low-contention runtime (DESIGN.md §5).
  /// Spin iterations a worker hunts for stealable work before parking on the
  /// queue's condvar. Parked workers still satisfy HasIdleThreads(), so the
  /// split predicate is unaffected; the knob only trades wake latency
  /// against burned cycles on oversubscribed machines.
  std::uint32_t queue_spin_iters = 256;

  /// Spin iterations a pool worker polls the dispatch epoch before parking
  /// on the epoch futex. Larger values make back-to-back updates dispatch
  /// syscall-free; smaller values release the core sooner.
  std::uint32_t pool_spin_iters = 1024;

  /// Topology-aware runtime knobs (DESIGN.md §10).
  /// Pin each pool worker to its assigned CPU. Only takes effect when the
  /// topology came from a real sysfs tree — emulated/flat topologies carry
  /// CPU ids that may not exist, so pinning is skipped for them.
  bool pin_threads = false;

  /// Order steal victims by topology distance (SMT sibling → same node →
  /// remote, with bounded remote back-off). OFF reproduces the PR-2 flat
  /// randomized sweep — the ablation baseline.
  bool topo_aware_steal = true;

  /// Batch classifier backend (DESIGN.md §11). Every backend produces
  /// byte-identical verdicts (and therefore identical ΔM); they differ only
  /// in how the classification work is executed.
  BatchBackendKind batch_backend = BatchBackendKind::kCpu;

  /// kAuto crossover: batches with at most this many lanes go wide; larger
  /// batches go to the pool-strided cpu backend (with >1 worker the pooled
  /// scalar path overtakes the mostly-serial wide gather once the batch is
  /// big enough to amortize pool dispatch — bench/ablation_backend.cpp; on
  /// a single-thread pool kAuto always picks wide). Default is the measured
  /// crossover on the Orkut stand-in at 4 threads.
  unsigned wide_auto_cutoff = 512;

  /// Instruction-path override for the wide backend (tests force the SWAR
  /// and AVX2 paths explicitly; kForceAvx2 without hardware support
  /// downgrades to SWAR and counts a fallback activation).
  util::wide::Dispatch wide_dispatch = util::wide::Dispatch::kAuto;

  /// Pre-ADS aggregate-invariant batch certifier (DESIGN.md §13.4): when a
  /// whole batch is provably match-free, its effective edge updates are
  /// applied without classification or enumeration. Only engages for
  /// index-free algorithms (has_ads() == false) in BatchMode::kStrict —
  /// the engine silently skips the stage otherwise. ΔM is unchanged either
  /// way; the knob exists so static runs stay byte-comparable to PR 9.
  bool invariant_stage = false;

  [[nodiscard]] unsigned effective_threads() const {
    if (threads != 0) return threads;
    return util::affinity_cpu_count();
  }
  [[nodiscard]] unsigned effective_batch_size() const noexcept {
    return batch_size != 0 ? batch_size : effective_threads();
  }
};

}  // namespace paracosm::engine
